package har

import (
	"math/rand"
	"reflect"
	"testing"
)

// UniqueASNs deduplicates through a set and sorts numerically, so the
// result must not depend on the order requests appear in the page.
func TestUniqueASNsEntryOrderInvariant(t *testing.T) {
	asns := []uint32{13335, 15169, 13335, 16509, 15169, 13335, 714}
	build := func(order []int) *Page {
		p := &Page{Host: "www.example.com"}
		for _, i := range order {
			p.Entries = append(p.Entries, Entry{Host: "www.example.com", ServerASN: asns[i]})
		}
		return p
	}
	want := build([]int{0, 1, 2, 3, 4, 5, 6}).UniqueASNs()
	if len(want) != 4 {
		t.Fatalf("UniqueASNs = %v, want 4 distinct", want)
	}
	for i := 1; i < len(want); i++ {
		if want[i-1] >= want[i] {
			t.Fatalf("UniqueASNs not strictly sorted: %v", want)
		}
	}
	rs := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		if got := build(rs.Perm(len(asns))).UniqueASNs(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: UniqueASNs depends on entry order: got %v, want %v", trial, got, want)
		}
	}
}
