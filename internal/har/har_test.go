package har

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func samplePage() *Page {
	ip1 := netip.MustParseAddr("192.0.2.1")
	ip2 := netip.MustParseAddr("192.0.2.2")
	return &Page{
		URL:  "https://www.example.com/",
		Host: "www.example.com",
		Rank: 12,
		Entries: []Entry{
			{
				StartedMs: 0, URL: "https://www.example.com/", Host: "www.example.com",
				Method: "GET", Protocol: "h2", Status: 200, MimeType: "text/html",
				Secure: true, ServerIP: ip1, ServerASN: 13335,
				DNSAnswer: []netip.Addr{ip1}, NewDNS: true, NewTLS: true,
				CertIssuer: "Test CA", CertSANs: []string{"www.example.com"},
				Initiator: -1,
				Timings:   Timings{DNS: 20, Connect: 30, SSL: 40, Send: 1, Wait: 50, Receive: 10},
			},
			{
				StartedMs: 160, URL: "https://static.example.com/app.js", Host: "static.example.com",
				Method: "GET", Protocol: "h2", Status: 200, MimeType: "application/javascript",
				Secure: true, ServerIP: ip2, ServerASN: 13335,
				DNSAnswer: []netip.Addr{ip2}, NewDNS: true, NewTLS: true,
				Initiator: 0, RenderBlocking: true,
				Timings: Timings{Blocked: 5, DNS: 15, Connect: 25, SSL: 35, Send: 1, Wait: 40, Receive: 20},
			},
			{
				StartedMs: 170, URL: "https://tracker.example.net/t.gif", Host: "tracker.example.net",
				Method: "GET", Protocol: "http/1.1", Status: 200, MimeType: "image/gif",
				Secure: true, ServerIP: netip.MustParseAddr("203.0.113.9"), ServerASN: 15169,
				NewDNS: true, NewTLS: true, Initiator: 1,
				Timings: Timings{DNS: 10, Connect: 20, SSL: 30, Send: 1, Wait: 25, Receive: 5},
			},
		},
		DOMLoadMs: 300,
		OnLoadMs:  400,
	}
}

func TestTimingsTotalAndSetup(t *testing.T) {
	tm := Timings{Blocked: 1, DNS: 2, Connect: 3, SSL: 4, Send: 5, Wait: 6, Receive: 7}
	if tm.Total() != 28 {
		t.Errorf("total = %v", tm.Total())
	}
	if tm.SetupTime() != 9 {
		t.Errorf("setup = %v", tm.SetupTime())
	}
}

func TestPageAccessors(t *testing.T) {
	p := samplePage()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.PLT() != 400 {
		t.Errorf("PLT = %v", p.PLT())
	}
	if p.DNSQueries() != 3 || p.TLSConnections() != 3 {
		t.Errorf("dns=%d tls=%d", p.DNSQueries(), p.TLSConnections())
	}
	if asns := p.UniqueASNs(); len(asns) != 2 || asns[0] != 13335 || asns[1] != 15169 {
		t.Errorf("asns = %v", asns)
	}
	hosts := p.Hosts()
	if len(hosts) != 3 || hosts[0] != "www.example.com" {
		t.Errorf("hosts = %v", hosts)
	}
	if p.Entries[0].EndMs() != 151 {
		t.Errorf("end = %v", p.Entries[0].EndMs())
	}
}

func TestPLTFallsBackToLastEntry(t *testing.T) {
	p := samplePage()
	p.OnLoadMs = 0
	want := p.LastEntryEnd()
	if p.PLT() != want {
		t.Errorf("PLT = %v, want %v", p.PLT(), want)
	}
}

func TestValidateCatchesBadPages(t *testing.T) {
	p := samplePage()
	p.Entries = nil
	if p.Validate() == nil {
		t.Error("empty page validated")
	}

	p = samplePage()
	p.Entries[0].Initiator = 0
	if p.Validate() == nil {
		t.Error("non-root entry 0 validated")
	}

	p = samplePage()
	p.Entries[2].Initiator = 5
	if p.Validate() == nil {
		t.Error("forward initiator validated")
	}

	p = samplePage()
	p.Entries[1].Timings.DNS = -3
	if p.Validate() == nil {
		t.Error("negative timing validated")
	}

	p = samplePage()
	p.Entries[1].StartedMs = -100
	if p.Validate() == nil {
		t.Error("child starting before parent validated")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := []*Page{samplePage(), samplePage()}
	in[1].Rank = 99
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1].Rank != 99 {
		t.Fatalf("read %d pages", len(out))
	}
	if out[0].Entries[0].ServerIP != in[0].Entries[0].ServerIP {
		t.Error("server IP lost in round trip")
	}
	if out[0].Entries[0].CertSANs[0] != "www.example.com" {
		t.Error("cert SANs lost")
	}
	if out[0].Entries[1].Timings != in[0].Entries[1].Timings {
		t.Error("timings lost")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := samplePage()
	q := p.Clone()
	q.Entries[0].Timings.DNS = 999
	q.Entries[0].CertSANs[0] = "mutated"
	q.Entries[0].DNSAnswer[0] = netip.MustParseAddr("203.0.113.200")
	if p.Entries[0].Timings.DNS == 999 {
		t.Error("clone shares timings")
	}
	if p.Entries[0].CertSANs[0] == "mutated" {
		t.Error("clone shares cert SANs")
	}
	if p.Entries[0].DNSAnswer[0] == netip.MustParseAddr("203.0.113.200") {
		t.Error("clone shares DNS answers")
	}
}

func TestWaterfallRendering(t *testing.T) {
	p := samplePage()
	w := Waterfall(p, 60)
	if !strings.Contains(w, "www.example.com") {
		t.Error("waterfall missing host")
	}
	if !strings.Contains(w, "D") || !strings.Contains(w, "S") {
		t.Error("waterfall missing phase bars")
	}
	lines := strings.Split(strings.TrimSpace(w), "\n")
	if len(lines) != 4 { // title + 3 entries
		t.Errorf("waterfall lines = %d", len(lines))
	}
}

func TestTimingsTotalNonNegativeQuick(t *testing.T) {
	f := func(b, d, c, s, sn, wt, r float64) bool {
		abs := func(x float64) float64 {
			if x < 0 {
				return -x
			}
			return x
		}
		tm := Timings{Blocked: abs(b), DNS: abs(d), Connect: abs(c), SSL: abs(s), Send: abs(sn), Wait: abs(wt), Receive: abs(r)}
		return tm.Total() >= tm.SetupTime()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
