// Package har models page-load timelines in the spirit of the HTTP
// Archive (HAR) format the paper's dataset was collected in: every
// subresource request carries the phase timings {blocked, dns, connect,
// ssl, send, wait, receive}, its destination, protocol, certificate
// context and the request that triggered it.
//
// The §4.1 timeline reconstruction operates directly on these values,
// so this package also defines the invariants a well-formed timeline
// satisfies and a compact JSON serialization for dataset corpora.
package har

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/netip"
	"sort"
	"strings"
)

// Timings are the per-phase durations of a request in milliseconds.
// A zero value means the phase did not occur (e.g. no DNS query when a
// connection was reused).
type Timings struct {
	Blocked float64 `json:"blocked"` // queueing + dependency wait
	DNS     float64 `json:"dns"`
	Connect float64 `json:"connect"` // TCP handshake
	SSL     float64 `json:"ssl"`     // TLS handshake
	Send    float64 `json:"send"`
	Wait    float64 `json:"wait"` // first byte
	Receive float64 `json:"receive"`
}

// Total returns the wall-clock duration of the request.
func (t Timings) Total() float64 {
	return t.Blocked + t.DNS + t.Connect + t.SSL + t.Send + t.Wait + t.Receive
}

// SetupTime returns the portion removable by coalescing: DNS plus
// connection establishment (TCP+TLS).
func (t Timings) SetupTime() float64 { return t.DNS + t.Connect + t.SSL }

// Entry is one request in a page-load timeline.
type Entry struct {
	// StartedMs is the request start relative to navigation start.
	StartedMs float64 `json:"started_ms"`
	URL       string  `json:"url"`
	Host      string  `json:"host"`
	Method    string  `json:"method"`
	Protocol  string  `json:"protocol"` // "h2", "http/1.1", "h3", ...
	Status    int     `json:"status"`
	MimeType  string  `json:"mime_type"`
	BodySize  int64   `json:"body_size"`
	Secure    bool    `json:"secure"`

	// ServerIP is the connected address; ServerASN its origin AS.
	ServerIP  netip.Addr `json:"server_ip"`
	ServerASN uint32     `json:"server_asn"`

	// DNSAnswer is the full address set DNS returned for Host (§2.3:
	// browsers' coalescing decisions depend on the whole set).
	DNSAnswer []netip.Addr `json:"dns_answer,omitempty"`

	// NewDNS and NewTLS report whether this request issued a fresh DNS
	// query / TLS handshake rather than reusing state.
	NewDNS bool `json:"new_dns"`
	NewTLS bool `json:"new_tls"`

	// Certificate context, present when NewTLS.
	CertIssuer string   `json:"cert_issuer,omitempty"`
	CertSANs   []string `json:"cert_sans,omitempty"`

	// Initiator is the index of the entry that triggered this request;
	// -1 for the root document.
	Initiator int `json:"initiator"`

	// RenderBlocking marks requests on the critical path (CSS, sync JS).
	RenderBlocking bool `json:"render_blocking,omitempty"`

	Timings Timings `json:"timings"`
}

// EndMs returns when the request finished, relative to navigation start.
func (e Entry) EndMs() float64 { return e.StartedMs + e.Timings.Total() }

// Page is a complete page-load record.
type Page struct {
	URL     string  `json:"url"`
	Host    string  `json:"host"`
	Rank    int     `json:"rank"` // popularity rank (1-based)
	Entries []Entry `json:"entries"`

	// DOMLoadMs and OnLoadMs are the DOMContentLoaded and load events.
	DOMLoadMs float64 `json:"dom_load_ms"`
	OnLoadMs  float64 `json:"on_load_ms"`

	// ExtraDNS and ExtraTLS count DNS queries and TLS connections from
	// browser race behaviours — happy eyeballs and speculative
	// connections (§4.2) — that do not correspond to any entry.
	ExtraDNS int `json:"extra_dns,omitempty"`
	ExtraTLS int `json:"extra_tls,omitempty"`
}

// PLT returns the page load time: the recorded onLoad event if present,
// otherwise the last entry end.
func (p *Page) PLT() float64 {
	if p.OnLoadMs > 0 {
		return p.OnLoadMs
	}
	return p.LastEntryEnd()
}

// LastEntryEnd returns the finish time of the latest-finishing entry.
func (p *Page) LastEntryEnd() float64 {
	end := 0.0
	for _, e := range p.Entries {
		if v := e.EndMs(); v > end {
			end = v
		}
	}
	return end
}

// DNSQueries counts DNS queries: entries that issued a fresh query plus
// race-effect extras.
func (p *Page) DNSQueries() int {
	n := p.ExtraDNS
	for _, e := range p.Entries {
		if e.NewDNS {
			n++
		}
	}
	return n
}

// TLSConnections counts TLS handshakes: entries that performed a fresh
// handshake plus race-effect extras.
func (p *Page) TLSConnections() int {
	n := p.ExtraTLS
	for _, e := range p.Entries {
		if e.NewTLS {
			n++
		}
	}
	return n
}

// UniqueASNs returns the distinct server ASNs contacted.
func (p *Page) UniqueASNs() []uint32 {
	seen := map[uint32]bool{}
	var out []uint32
	for _, e := range p.Entries {
		if !seen[e.ServerASN] {
			seen[e.ServerASN] = true
			out = append(out, e.ServerASN)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Hosts returns the distinct hostnames contacted, in first-use order.
func (p *Page) Hosts() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range p.Entries {
		if !seen[e.Host] {
			seen[e.Host] = true
			out = append(out, e.Host)
		}
	}
	return out
}

// Validate checks timeline invariants:
//
//   - at least one entry, and entry 0 is the root (Initiator == -1);
//   - initiators reference earlier entries;
//   - timings are non-negative and finite;
//   - a child never starts before its initiator started.
func (p *Page) Validate() error {
	if len(p.Entries) == 0 {
		return fmt.Errorf("har: page %s has no entries", p.URL)
	}
	if p.Entries[0].Initiator != -1 {
		return fmt.Errorf("har: page %s entry 0 must be the root", p.URL)
	}
	for i, e := range p.Entries {
		if i > 0 && (e.Initiator < 0 || e.Initiator >= i) {
			return fmt.Errorf("har: entry %d initiator %d out of range", i, e.Initiator)
		}
		for _, v := range []float64{e.Timings.Blocked, e.Timings.DNS, e.Timings.Connect,
			e.Timings.SSL, e.Timings.Send, e.Timings.Wait, e.Timings.Receive, e.StartedMs} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("har: entry %d (%s) has invalid timing %v", i, e.URL, v)
			}
		}
		if i > 0 {
			parent := p.Entries[e.Initiator]
			if e.StartedMs+1e-9 < parent.StartedMs {
				return fmt.Errorf("har: entry %d starts before its initiator", i)
			}
		}
	}
	return nil
}

// Clone deep-copies the page (entries are value types except slices).
func (p *Page) Clone() *Page {
	q := *p
	q.Entries = make([]Entry, len(p.Entries))
	copy(q.Entries, p.Entries)
	for i := range q.Entries {
		q.Entries[i].DNSAnswer = append([]netip.Addr(nil), p.Entries[i].DNSAnswer...)
		q.Entries[i].CertSANs = append([]string(nil), p.Entries[i].CertSANs...)
	}
	return &q
}

// WriteJSON writes pages as newline-delimited JSON.
//
// Deprecated: new code should write through the unified corpus API —
// internal/corpus.NewWriter(w, corpus.FormatNDJSON) produces these
// exact bytes and also offers the compact columnar encoding. WriteJSON
// remains as a thin convenience so existing callers and examples
// compile unchanged; the corpus package's NDJSON implementation
// delegates here, so the two can never diverge.
func WriteJSON(w io.Writer, pages []*Page) error {
	sw := NewStreamWriter(w)
	for _, p := range pages {
		if err := sw.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// StreamWriter writes pages incrementally as newline-delimited JSON —
// the streaming counterpart of WriteJSON, producing identical bytes.
//
// Deprecated: use internal/corpus.NewWriter(w, corpus.FormatNDJSON),
// which satisfies corpus.Writer and is interchangeable with the
// columnar encoder. StreamWriter stays as the NDJSON codec the corpus
// package delegates to, keeping the historical golden bytes pinned in
// one place.
type StreamWriter struct {
	enc *json.Encoder
}

// NewStreamWriter returns a StreamWriter emitting to w.
//
// Deprecated: see StreamWriter; new code should obtain a writer from
// internal/corpus instead.
func NewStreamWriter(w io.Writer) *StreamWriter {
	return &StreamWriter{enc: json.NewEncoder(w)}
}

// Write appends one page to the stream.
func (s *StreamWriter) Write(p *Page) error { return s.enc.Encode(p) }

// ReadJSON reads newline-delimited JSON pages.
//
// Deprecated: use internal/corpus.NewReader(r, corpus.FormatNDJSON)
// with corpus.ReadAll, or corpus.Open to sniff the encoding; both
// formats decode through one interface there.
func ReadJSON(r io.Reader) ([]*Page, error) {
	dec := json.NewDecoder(r)
	var out []*Page
	for {
		var p Page
		if err := dec.Decode(&p); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		out = append(out, &p)
	}
}

// ReadAll is ReadJSON under the name the corpus API uses, so callers
// migrating between the packages need only swap the import.
//
// Deprecated: use internal/corpus.ReadAll over a corpus.Reader.
func ReadAll(r io.Reader) ([]*Page, error) { return ReadJSON(r) }

// Waterfall renders an ASCII waterfall of the page (Figure 2 style):
// one row per request, proportional phase bars.
//
//	1 www.example.com          |BBDDCCSSWWRR         |
func Waterfall(p *Page, width int) string {
	if width <= 0 {
		width = 80
	}
	end := p.LastEntryEnd()
	if end <= 0 {
		end = 1
	}
	scale := float64(width) / end
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (PLT %.0f ms)\n", p.URL, p.PLT())
	for i, e := range p.Entries {
		bar := make([]byte, width)
		for j := range bar {
			bar[j] = ' '
		}
		pos := e.StartedMs * scale
		draw := func(dur float64, ch byte) {
			n := dur * scale
			for j := int(pos); j < int(pos+n) && j < width; j++ {
				bar[j] = ch
			}
			pos += n
		}
		draw(e.Timings.Blocked, '.')
		draw(e.Timings.DNS, 'D')
		draw(e.Timings.Connect, 'C')
		draw(e.Timings.SSL, 'S')
		draw(e.Timings.Send, 's')
		draw(e.Timings.Wait, 'w')
		draw(e.Timings.Receive, 'R')
		host := e.Host
		if len(host) > 28 {
			host = host[:28]
		}
		fmt.Fprintf(&b, "%2d %-28s |%s|\n", i+1, host, bar)
	}
	return b.String()
}
