package har

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"net/url"
	"sort"
	"strings"
	"time"
)

// This file imports standard HAR 1.2 archives — the format WebPageTest
// and browser DevTools export, and the format the paper's crawl stored
// (§3.1) — into this repository's page model, so the §4 pipeline can
// run over real captures as well as synthetic corpora.

// harFile mirrors the HAR 1.2 structure we consume.
type harFile struct {
	Log struct {
		Pages []struct {
			ID              string `json:"id"`
			StartedDateTime string `json:"startedDateTime"`
			Title           string `json:"title"`
			PageTimings     struct {
				OnContentLoad float64 `json:"onContentLoad"`
				OnLoad        float64 `json:"onLoad"`
			} `json:"pageTimings"`
		} `json:"pages"`
		Entries []harEntry `json:"entries"`
	} `json:"log"`
}

type harEntry struct {
	Pageref         string  `json:"pageref"`
	StartedDateTime string  `json:"startedDateTime"`
	Time            float64 `json:"time"`
	Request         struct {
		Method  string `json:"method"`
		URL     string `json:"url"`
		Headers []struct {
			Name  string `json:"name"`
			Value string `json:"value"`
		} `json:"headers"`
	} `json:"request"`
	Response struct {
		Status  int `json:"status"`
		Content struct {
			Size     int64  `json:"size"`
			MimeType string `json:"mimeType"`
		} `json:"content"`
		HTTPVersion string `json:"httpVersion"`
	} `json:"response"`
	ServerIPAddress string `json:"serverIPAddress"`
	Timings         struct {
		Blocked float64 `json:"blocked"`
		DNS     float64 `json:"dns"`
		Connect float64 `json:"connect"`
		SSL     float64 `json:"ssl"`
		Send    float64 `json:"send"`
		Wait    float64 `json:"wait"`
		Receive float64 `json:"receive"`
	} `json:"timings"`
}

// ImportOptions configures HAR 1.2 import.
type ImportOptions struct {
	// LookupASN resolves a server address to its origin AS; nil leaves
	// ServerASN zero (the §4 model then falls back to per-IP services).
	LookupASN func(netip.Addr) uint32
	// Rank annotates the imported pages' popularity rank.
	Rank int
}

// ImportHAR parses a standard HAR 1.2 archive into pages. Entries are
// grouped by pageref (entries without one join the first page), ordered
// by start time, and re-based so each page starts at 0 ms. Initiator
// relationships are not recorded in HAR 1.2; the importer approximates
// them by nesting each request under the latest request that started
// before it (the root for the earliest).
func ImportHAR(r io.Reader, opts ImportOptions) ([]*Page, error) {
	var f harFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("har: parsing archive: %w", err)
	}
	if len(f.Log.Entries) == 0 {
		return nil, fmt.Errorf("har: archive has no entries")
	}

	byPage := map[string][]harEntry{}
	var pageOrder []string
	addPage := func(id string) {
		if _, ok := byPage[id]; !ok {
			byPage[id] = nil
			pageOrder = append(pageOrder, id)
		}
	}
	for _, p := range f.Log.Pages {
		addPage(p.ID)
	}
	for _, e := range f.Log.Entries {
		id := e.Pageref
		if id == "" {
			if len(pageOrder) == 0 {
				addPage("page_0")
			}
			id = pageOrder[0]
		}
		addPage(id)
		byPage[id] = append(byPage[id], e)
	}

	var out []*Page
	for _, id := range pageOrder {
		entries := byPage[id]
		if len(entries) == 0 {
			continue
		}
		page, err := buildPage(id, entries, &f, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, page)
	}
	return out, nil
}

func buildPage(id string, entries []harEntry, f *harFile, opts ImportOptions) (*Page, error) {
	type timed struct {
		e     harEntry
		start time.Time
	}
	ts := make([]timed, 0, len(entries))
	for _, e := range entries {
		t, err := time.Parse(time.RFC3339Nano, e.StartedDateTime)
		if err != nil {
			return nil, fmt.Errorf("har: entry time %q: %w", e.StartedDateTime, err)
		}
		ts = append(ts, timed{e, t})
	}
	sort.SliceStable(ts, func(i, j int) bool { return ts[i].start.Before(ts[j].start) })
	base := ts[0].start

	page := &Page{Rank: opts.Rank}
	seenDNSHost := map[string]bool{}
	for i, te := range ts {
		e := te.e
		u, err := url.Parse(e.Request.URL)
		if err != nil {
			return nil, fmt.Errorf("har: entry URL %q: %w", e.Request.URL, err)
		}
		host := u.Hostname()
		entry := Entry{
			StartedMs: te.start.Sub(base).Seconds() * 1000,
			URL:       e.Request.URL,
			Host:      host,
			Method:    e.Request.Method,
			Protocol:  normalizeProto(e.Response.HTTPVersion),
			Status:    e.Response.Status,
			MimeType:  e.Response.Content.MimeType,
			BodySize:  e.Response.Content.Size,
			Secure:    u.Scheme == "https",
			Initiator: -1,
		}
		if e.ServerIPAddress != "" {
			if a, err := netip.ParseAddr(strings.Trim(e.ServerIPAddress, "[]")); err == nil {
				entry.ServerIP = a
				if opts.LookupASN != nil {
					entry.ServerASN = opts.LookupASN(a)
				}
			}
		}
		entry.Timings = Timings{
			Blocked: clampNeg(e.Timings.Blocked),
			DNS:     clampNeg(e.Timings.DNS),
			Connect: clampNeg(e.Timings.Connect),
			SSL:     clampNeg(e.Timings.SSL),
			Send:    clampNeg(e.Timings.Send),
			Wait:    clampNeg(e.Timings.Wait),
			Receive: clampNeg(e.Timings.Receive),
		}
		// HAR folds SSL time into connect in some exporters; when both
		// are present, connect includes ssl — unfold it.
		if entry.Timings.SSL > 0 && entry.Timings.Connect >= entry.Timings.SSL {
			entry.Timings.Connect -= entry.Timings.SSL
		}
		entry.NewDNS = entry.Timings.DNS > 0 || (!seenDNSHost[host] && i == 0)
		if entry.Timings.DNS > 0 {
			seenDNSHost[host] = true
		}
		entry.NewTLS = entry.Timings.SSL > 0
		if i > 0 {
			// Approximate initiators: the latest earlier entry.
			entry.Initiator = i - 1
			for j := i - 1; j >= 0; j-- {
				if page.Entries[j].StartedMs <= entry.StartedMs {
					entry.Initiator = j
					break
				}
			}
		}
		page.Entries = append(page.Entries, entry)
	}
	page.URL = page.Entries[0].URL
	page.Host = page.Entries[0].Host

	for _, p := range f.Log.Pages {
		if p.ID == id {
			page.DOMLoadMs = clampNeg(p.PageTimings.OnContentLoad)
			page.OnLoadMs = clampNeg(p.PageTimings.OnLoad)
		}
	}
	if page.OnLoadMs == 0 {
		page.OnLoadMs = page.LastEntryEnd()
	}
	return page, page.Validate()
}

func clampNeg(v float64) float64 {
	if v < 0 { // HAR uses -1 for "not applicable"
		return 0
	}
	return v
}

func normalizeProto(v string) string {
	switch strings.ToLower(v) {
	case "h2", "http/2", "http/2.0", "http/2+quic/43":
		return "h2"
	case "h3", "http/3", "http/3.0":
		return "h3"
	case "http/1.1":
		return "http/1.1"
	case "http/1.0":
		return "http/1.0"
	case "":
		return "unknown"
	default:
		return strings.ToLower(v)
	}
}
