package har

import (
	"net/netip"
	"strings"
	"testing"
)

// sampleHAR is a minimal but standard-shaped HAR 1.2 archive: a root
// document, a sharded subresource with full DNS+TLS setup, and a reused
// connection fetch.
const sampleHAR = `{
  "log": {
    "version": "1.2",
    "creator": {"name": "WebPageTest", "version": "21.02"},
    "pages": [
      {
        "id": "page_1",
        "startedDateTime": "2021-02-14T10:00:00.000Z",
        "title": "https://www.example.com/",
        "pageTimings": {"onContentLoad": 900, "onLoad": 1500}
      }
    ],
    "entries": [
      {
        "pageref": "page_1",
        "startedDateTime": "2021-02-14T10:00:00.000Z",
        "time": 350,
        "request": {"method": "GET", "url": "https://www.example.com/", "headers": []},
        "response": {"status": 200, "httpVersion": "h2",
          "content": {"size": 12345, "mimeType": "text/html"}},
        "serverIPAddress": "192.0.2.1",
        "timings": {"blocked": 5, "dns": 20, "connect": 75, "ssl": 45,
          "send": 1, "wait": 150, "receive": 30}
      },
      {
        "pageref": "page_1",
        "startedDateTime": "2021-02-14T10:00:00.400Z",
        "time": 200,
        "request": {"method": "GET", "url": "https://static.example.com/app.js", "headers": []},
        "response": {"status": 200, "httpVersion": "HTTP/2",
          "content": {"size": 54321, "mimeType": "application/javascript"}},
        "serverIPAddress": "192.0.2.2",
        "timings": {"blocked": 2, "dns": 15, "connect": 60, "ssl": 40,
          "send": 1, "wait": 60, "receive": 22}
      },
      {
        "pageref": "page_1",
        "startedDateTime": "2021-02-14T10:00:00.700Z",
        "time": 80,
        "request": {"method": "GET", "url": "https://www.example.com/style.css", "headers": []},
        "response": {"status": 200, "httpVersion": "h2",
          "content": {"size": 999, "mimeType": "text/css"}},
        "serverIPAddress": "192.0.2.1",
        "timings": {"blocked": -1, "dns": -1, "connect": -1, "ssl": -1,
          "send": 1, "wait": 50, "receive": 29}
      }
    ]
  }
}`

func TestImportHAR(t *testing.T) {
	pages, err := ImportHAR(strings.NewReader(sampleHAR), ImportOptions{
		Rank: 42,
		LookupASN: func(a netip.Addr) uint32 {
			if a == netip.MustParseAddr("192.0.2.1") || a == netip.MustParseAddr("192.0.2.2") {
				return 13335
			}
			return 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 1 {
		t.Fatalf("pages = %d", len(pages))
	}
	p := pages[0]
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Host != "www.example.com" || p.Rank != 42 {
		t.Errorf("page = %s rank %d", p.Host, p.Rank)
	}
	if p.OnLoadMs != 1500 || p.DOMLoadMs != 900 {
		t.Errorf("events = %v / %v", p.DOMLoadMs, p.OnLoadMs)
	}
	if len(p.Entries) != 3 {
		t.Fatalf("entries = %d", len(p.Entries))
	}

	root := p.Entries[0]
	if root.StartedMs != 0 || !root.NewDNS || !root.NewTLS || !root.Secure {
		t.Errorf("root = %+v", root)
	}
	// SSL unfolded out of connect: 75 includes 45 of ssl.
	if root.Timings.Connect != 30 || root.Timings.SSL != 45 {
		t.Errorf("root connect/ssl = %v/%v", root.Timings.Connect, root.Timings.SSL)
	}
	if root.ServerASN != 13335 {
		t.Errorf("root ASN = %d", root.ServerASN)
	}

	shard := p.Entries[1]
	if shard.StartedMs != 400 || shard.Host != "static.example.com" || !shard.NewTLS {
		t.Errorf("shard = %+v", shard)
	}
	if shard.Protocol != "h2" {
		t.Errorf("shard protocol = %s", shard.Protocol)
	}

	reuse := p.Entries[2]
	if reuse.NewDNS || reuse.NewTLS {
		t.Errorf("reused entry marked fresh: %+v", reuse)
	}
	if reuse.Timings.DNS != 0 || reuse.Timings.Connect != 0 {
		t.Errorf("HAR -1 timings not clamped: %+v", reuse.Timings)
	}

	// The page works with the accessors downstream code relies on.
	if p.DNSQueries() != 2 || p.TLSConnections() != 2 {
		t.Errorf("dns=%d tls=%d", p.DNSQueries(), p.TLSConnections())
	}
	if asns := p.UniqueASNs(); len(asns) != 1 || asns[0] != 13335 {
		t.Errorf("asns = %v", asns)
	}
}

func TestImportHARErrors(t *testing.T) {
	if _, err := ImportHAR(strings.NewReader("{"), ImportOptions{}); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ImportHAR(strings.NewReader(`{"log":{"entries":[]}}`), ImportOptions{}); err == nil {
		t.Error("empty archive accepted")
	}
	bad := strings.Replace(sampleHAR, "2021-02-14T10:00:00.400Z", "not-a-time", 1)
	if _, err := ImportHAR(strings.NewReader(bad), ImportOptions{}); err == nil {
		t.Error("bad timestamp accepted")
	}
	bad = strings.Replace(sampleHAR, `"url": "https://www.example.com/"`, `"url": "://bad url"`, 1)
	if _, err := ImportHAR(strings.NewReader(bad), ImportOptions{}); err == nil {
		t.Error("bad URL accepted")
	}
}

func TestImportHAREntriesWithoutPageref(t *testing.T) {
	har := strings.ReplaceAll(sampleHAR, `"pageref": "page_1",`, ``)
	pages, err := ImportHAR(strings.NewReader(har), ImportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 1 || len(pages[0].Entries) != 3 {
		t.Fatalf("pages = %+v", pages)
	}
}
