package hpack

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(strings.ReplaceAll(s, " ", ""))
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// --- RFC 7541 Appendix C.1: integer representation examples ---

func TestVarIntC1(t *testing.T) {
	cases := []struct {
		n     uint8
		first byte
		v     uint64
		want  []byte
	}{
		{5, 0, 10, []byte{0x0a}},               // C.1.1
		{5, 0, 1337, []byte{0x1f, 0x9a, 0x0a}}, // C.1.2
		{8, 0, 42, []byte{0x2a}},               // C.1.3
	}
	for _, c := range cases {
		got := appendVarInt(nil, c.n, c.first, c.v)
		if !bytes.Equal(got, c.want) {
			t.Errorf("appendVarInt(%d-bit, %d) = %x, want %x", c.n, c.v, got, c.want)
		}
		v, rest, err := readVarInt(got, c.n)
		if err != nil || v != c.v || len(rest) != 0 {
			t.Errorf("readVarInt(%x) = %d,%v rest=%d", got, v, err, len(rest))
		}
	}
}

func TestVarIntRoundTrip(t *testing.T) {
	f := func(v uint32, prefix uint8, pattern byte) bool {
		n := prefix%8 + 1
		first := pattern &^ byte(uint16(1)<<n-1)
		enc := appendVarInt(nil, n, first, uint64(v))
		got, rest, err := readVarInt(enc, n)
		return err == nil && got == uint64(v) && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarIntOverflow(t *testing.T) {
	// 5-bit prefix followed by continuation bytes pushing past 32 bits.
	buf := []byte{0x1f, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, _, err := readVarInt(buf, 5); err != ErrIntegerOverflow {
		t.Errorf("want ErrIntegerOverflow, got %v", err)
	}
}

func TestVarIntTruncated(t *testing.T) {
	if _, _, err := readVarInt([]byte{0x1f, 0x9a}, 5); err != ErrTruncated {
		t.Errorf("want ErrTruncated, got %v", err)
	}
	if _, _, err := readVarInt(nil, 5); err != ErrTruncated {
		t.Errorf("want ErrTruncated for empty, got %v", err)
	}
}

// --- RFC 7541 Appendix C.2: literal header field examples ---

func TestDecodeC2(t *testing.T) {
	cases := []struct {
		hexIn string
		want  HeaderField
	}{
		{"400a637573746f6d2d6b65790d637573746f6d2d686561646572",
			HeaderField{Name: "custom-key", Value: "custom-header"}},
		{"040c2f73616d706c652f70617468",
			HeaderField{Name: ":path", Value: "/sample/path"}},
		{"100870617373776f726406736563726574",
			HeaderField{Name: "password", Value: "secret", Sensitive: true}},
		{"82", HeaderField{Name: ":method", Value: "GET"}},
	}
	for _, c := range cases {
		d := NewDecoder()
		fields, err := d.DecodeFull(mustHex(t, c.hexIn))
		if err != nil {
			t.Fatalf("DecodeFull(%s): %v", c.hexIn, err)
		}
		if len(fields) != 1 || fields[0] != c.want {
			t.Errorf("DecodeFull(%s) = %v, want %v", c.hexIn, fields, c.want)
		}
	}
}

// --- RFC 7541 Appendix C.3: request examples without Huffman ---

func TestDecodeC3(t *testing.T) {
	d := NewDecoder()

	f1, err := d.DecodeFull(mustHex(t, "828684410f7777772e6578616d706c652e636f6d"))
	if err != nil {
		t.Fatal(err)
	}
	want1 := []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "http"},
		{Name: ":path", Value: "/"},
		{Name: ":authority", Value: "www.example.com"},
	}
	if !reflect.DeepEqual(f1, want1) {
		t.Fatalf("request 1 = %v", f1)
	}
	if d.DynamicTableSize() != 57 {
		t.Fatalf("after request 1, table size = %d, want 57", d.DynamicTableSize())
	}

	f2, err := d.DecodeFull(mustHex(t, "828684be58086e6f2d6361636865"))
	if err != nil {
		t.Fatal(err)
	}
	want2 := append(want1[:3:3], HeaderField{Name: ":authority", Value: "www.example.com"},
		HeaderField{Name: "cache-control", Value: "no-cache"})
	if !reflect.DeepEqual(f2, want2) {
		t.Fatalf("request 2 = %v", f2)
	}
	if d.DynamicTableSize() != 110 {
		t.Fatalf("after request 2, table size = %d, want 110", d.DynamicTableSize())
	}

	f3, err := d.DecodeFull(mustHex(t, "828785bf400a637573746f6d2d6b65790c637573746f6d2d76616c7565"))
	if err != nil {
		t.Fatal(err)
	}
	want3 := []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":path", Value: "/index.html"},
		{Name: ":authority", Value: "www.example.com"},
		{Name: "custom-key", Value: "custom-value"},
	}
	if !reflect.DeepEqual(f3, want3) {
		t.Fatalf("request 3 = %v", f3)
	}
	if d.DynamicTableSize() != 164 {
		t.Fatalf("after request 3, table size = %d, want 164", d.DynamicTableSize())
	}
}

// --- RFC 7541 Appendix C.4: request examples with Huffman ---

func TestDecodeC4(t *testing.T) {
	d := NewDecoder()
	blocks := []string{
		"828684418cf1e3c2e5f23a6ba0ab90f4ff",
		"828684be5886a8eb10649cbf",
		"828785bf408825a849e95ba97d7f8925a849e95bb8e8b4bf",
	}
	var last []HeaderField
	for i, blk := range blocks {
		var err error
		last, err = d.DecodeFull(mustHex(t, blk))
		if err != nil {
			t.Fatalf("block %d: %v", i+1, err)
		}
	}
	want := []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":path", Value: "/index.html"},
		{Name: ":authority", Value: "www.example.com"},
		{Name: "custom-key", Value: "custom-value"},
	}
	if !reflect.DeepEqual(last, want) {
		t.Fatalf("request 3 = %v", last)
	}
	if d.DynamicTableSize() != 164 {
		t.Fatalf("table size = %d, want 164", d.DynamicTableSize())
	}
}

// --- Huffman coding ---

func TestHuffmanKnownVectors(t *testing.T) {
	// From RFC 7541 C.4.1 and C.6.1.
	cases := []struct{ raw, hexEnc string }{
		{"www.example.com", "f1e3c2e5f23a6ba0ab90f4ff"},
		{"no-cache", "a8eb10649cbf"},
		{"custom-key", "25a849e95ba97d7f"},
		{"custom-value", "25a849e95bb8e8b4bf"},
		{"302", "6402"},
		{"private", "aec3771a4b"},
	}
	for _, c := range cases {
		enc := AppendHuffmanString(nil, c.raw)
		if got := hex.EncodeToString(enc); got != c.hexEnc {
			t.Errorf("huffman(%q) = %s, want %s", c.raw, got, c.hexEnc)
		}
		dec, err := HuffmanDecode(enc, 0)
		if err != nil || dec != c.raw {
			t.Errorf("decode(%s) = %q, %v", c.hexEnc, dec, err)
		}
		if n := HuffmanEncodeLength(c.raw); n != uint64(len(enc)) {
			t.Errorf("HuffmanEncodeLength(%q) = %d, want %d", c.raw, n, len(enc))
		}
	}
}

func TestHuffmanRoundTrip(t *testing.T) {
	f := func(s string) bool {
		enc := AppendHuffmanString(nil, s)
		dec, err := HuffmanDecode(enc, 0)
		return err == nil && dec == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHuffmanRoundTripBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		n := rng.Intn(300)
		raw := make([]byte, n)
		rng.Read(raw)
		enc := AppendHuffmanString(nil, string(raw))
		dec, err := HuffmanDecode(enc, 0)
		if err != nil || dec != string(raw) {
			t.Fatalf("round trip failed for %x: %v", raw, err)
		}
	}
}

func TestHuffmanBadPadding(t *testing.T) {
	// 'w' is 0x78/7 bits ("1111000"); padding the final octet with a 0
	// bit instead of ones must fail.
	bad := []byte{0xf0} // 1111000 + single 0 pad
	if _, err := HuffmanDecode(bad, 0); err != ErrHuffman {
		t.Errorf("want ErrHuffman for zero padding, got %v", err)
	}
	// A full byte of EOS prefix (8 bits of padding) must fail too.
	bad2 := []byte{0xff}
	if _, err := HuffmanDecode(bad2, 0); err != ErrHuffman {
		t.Errorf("want ErrHuffman for 8-bit padding, got %v", err)
	}
}

func TestHuffmanMaxLen(t *testing.T) {
	enc := AppendHuffmanString(nil, "www.example.com")
	if _, err := HuffmanDecode(enc, 5); err != ErrStringLength {
		t.Errorf("want ErrStringLength, got %v", err)
	}
}

// --- Encoder behaviour ---

func TestEncoderUsesStaticTable(t *testing.T) {
	e := NewEncoder()
	got := e.AppendField(nil, HeaderField{Name: ":method", Value: "GET"})
	if !bytes.Equal(got, []byte{0x82}) {
		t.Errorf(":method GET = %x, want 82", got)
	}
}

func TestEncoderIndexesRepeats(t *testing.T) {
	e := NewEncoder()
	d := NewDecoder()
	f := HeaderField{Name: "x-custom", Value: "abcdefgh"}

	b1 := e.AppendField(nil, f)
	b2 := e.AppendField(nil, f)
	if len(b2) >= len(b1) {
		t.Errorf("second encoding (%d bytes) not shorter than first (%d)", len(b2), len(b1))
	}
	for i, blk := range [][]byte{b1, b2} {
		fields, err := d.DecodeFull(blk)
		if err != nil || len(fields) != 1 || fields[0] != f {
			t.Fatalf("block %d: fields=%v err=%v", i, fields, err)
		}
	}
}

func TestEncoderSensitiveNeverIndexed(t *testing.T) {
	e := NewEncoder()
	f := HeaderField{Name: "authorization", Value: "Bearer tok", Sensitive: true}
	b := e.AppendField(nil, f)
	if b[0]&0xf0 != 0x10 {
		t.Errorf("first byte %02x, want 0001xxxx never-indexed", b[0])
	}
	if e.DynamicTableSize() != 0 {
		t.Error("sensitive field entered dynamic table")
	}
	d := NewDecoder()
	fields, err := d.DecodeFull(b)
	if err != nil || len(fields) != 1 || !fields[0].Sensitive {
		t.Fatalf("decode: %v %v", fields, err)
	}
}

func TestEncoderTableSizeUpdate(t *testing.T) {
	e := NewEncoder()
	d := NewDecoder()
	f := HeaderField{Name: "k", Value: "v"}

	e.SetMaxDynamicTableSize(100)
	b := e.AppendField(nil, f)
	if b[0]&0xe0 != 0x20 {
		t.Fatalf("expected table size update prefix, got %02x", b[0])
	}
	if _, err := d.DecodeFull(b); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderRejectsOversizeUpdate(t *testing.T) {
	d := NewDecoder()
	d.SetAllowedMaxDynamicTableSize(64)
	// Size update to 4096 exceeds the 64-byte allowance.
	blk := appendVarInt(nil, 5, 0x20, 4096)
	if _, err := d.DecodeFull(blk); err != ErrTableSizeUpdate {
		t.Errorf("want ErrTableSizeUpdate, got %v", err)
	}
}

func TestDecoderRejectsMidBlockUpdate(t *testing.T) {
	d := NewDecoder()
	blk := []byte{0x82}                 // :method: GET
	blk = appendVarInt(blk, 5, 0x20, 0) // then a size update
	if _, err := d.DecodeFull(blk); err != ErrTableSizeUpdate {
		t.Errorf("want ErrTableSizeUpdate for mid-block update, got %v", err)
	}
}

func TestDecoderInvalidIndex(t *testing.T) {
	d := NewDecoder()
	blk := appendVarInt(nil, 7, 0x80, 200) // beyond static, empty dynamic
	if _, err := d.DecodeFull(blk); err != ErrInvalidIndex {
		t.Errorf("want ErrInvalidIndex, got %v", err)
	}
	blk0 := []byte{0x80} // index 0 is invalid
	if _, err := d.DecodeFull(blk0); err != ErrInvalidIndex {
		t.Errorf("want ErrInvalidIndex for index 0, got %v", err)
	}
}

func TestDecoderTruncatedLiteral(t *testing.T) {
	d := NewDecoder()
	full := NewEncoder().AppendField(nil, HeaderField{Name: "custom", Value: "value-here"})
	for i := 1; i < len(full); i++ {
		if _, err := d.DecodeFull(full[:i]); err == nil {
			t.Errorf("truncation at %d decoded without error", i)
		}
	}
}

// --- Response examples (RFC 7541 C.5 semantics): eviction at 256 bytes ---

func TestResponseEvictionAt256(t *testing.T) {
	const capacity = 256
	e := NewEncoder()
	e.SetMaxDynamicTableSize(capacity)
	d := NewDecoder()

	resp1 := []HeaderField{
		{Name: ":status", Value: "302"},
		{Name: "cache-control", Value: "private"},
		{Name: "date", Value: "Mon, 21 Oct 2013 20:13:21 GMT"},
		{Name: "location", Value: "https://www.example.com"},
	}
	resp2 := []HeaderField{
		{Name: ":status", Value: "307"},
		{Name: "cache-control", Value: "private"},
		{Name: "date", Value: "Mon, 21 Oct 2013 20:13:21 GMT"},
		{Name: "location", Value: "https://www.example.com"},
	}
	resp3 := []HeaderField{
		{Name: ":status", Value: "200"},
		{Name: "cache-control", Value: "private"},
		{Name: "date", Value: "Mon, 21 Oct 2013 20:13:22 GMT"},
		{Name: "location", Value: "https://www.example.com"},
		{Name: "content-encoding", Value: "gzip"},
		{Name: "set-cookie", Value: "foo=ASDJKHQKBZXOQWEOPIUAXQWEOIU; max-age=3600; version=1"},
	}

	for i, resp := range [][]HeaderField{resp1, resp2, resp3} {
		blk := e.AppendHeaderBlock(nil, resp)
		got, err := d.DecodeFull(blk)
		if err != nil {
			t.Fatalf("response %d: %v", i+1, err)
		}
		if !reflect.DeepEqual(got, resp) {
			t.Fatalf("response %d = %v", i+1, got)
		}
		if e.DynamicTableSize() > capacity {
			t.Fatalf("encoder table %d exceeds capacity", e.DynamicTableSize())
		}
		if e.DynamicTableSize() != d.DynamicTableSize() {
			t.Fatalf("table size mismatch enc=%d dec=%d", e.DynamicTableSize(), d.DynamicTableSize())
		}
	}
	// RFC 7541 C.5.3: final table holds set-cookie, content-encoding and
	// date entries totalling 215 bytes.
	if d.DynamicTableSize() != 215 {
		t.Errorf("final table size = %d, want 215", d.DynamicTableSize())
	}
	if n := d.dt.len(); n != 3 {
		t.Errorf("final table entries = %d, want 3", n)
	}
}

// --- Full round-trip property over random header lists ---

func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	type hl struct {
		Names  []string
		Values []string
	}
	e := NewEncoder()
	d := NewDecoder()
	f := func(in hl) bool {
		var fields []HeaderField
		for i := range in.Names {
			v := ""
			if i < len(in.Values) {
				v = in.Values[i]
			}
			fields = append(fields, HeaderField{Name: in.Names[i], Value: v})
		}
		blk := e.AppendHeaderBlock(nil, fields)
		got, err := d.DecodeFull(blk)
		if err != nil {
			return false
		}
		if len(got) != len(fields) {
			return false
		}
		for i := range got {
			if got[i].Name != fields[i].Name || got[i].Value != fields[i].Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDynamicTableOversizeEntryClearsTable(t *testing.T) {
	dt := newDynamicTable(64)
	dt.add(HeaderField{Name: "a", Value: "b"})
	if dt.len() != 1 {
		t.Fatal("entry not added")
	}
	dt.add(HeaderField{Name: strings.Repeat("x", 64), Value: "y"})
	if dt.len() != 0 || dt.size != 0 {
		t.Errorf("oversize add: len=%d size=%d, want empty", dt.len(), dt.size)
	}
}

func TestHuffmanAblationInterop(t *testing.T) {
	// An encoder with Huffman disabled must interoperate with any decoder.
	e := NewEncoder()
	e.SetHuffman(false)
	d := NewDecoder()
	f := HeaderField{Name: "content-type", Value: "text/html; charset=utf-8"}
	blk := e.AppendField(nil, f)
	got, err := d.DecodeFull(blk)
	if err != nil || len(got) != 1 || got[0] != f {
		t.Fatalf("interop: %v %v", got, err)
	}
}
