package hpack

// An Encoder writes header blocks in HPACK form. It maintains the
// encoder-side dynamic table and emits dynamic table size updates when
// its capacity is lowered by the peer's SETTINGS_HEADER_TABLE_SIZE.
//
// An Encoder is not safe for concurrent use; HTTP/2 serializes header
// block emission per connection, which matches this constraint.
type Encoder struct {
	dt *dynamicTable

	// useHuffman controls whether string literals are Huffman-coded
	// when that shortens them.
	useHuffman bool

	// minSize tracks the smallest capacity seen since the last emitted
	// size update; tableSizeUpdate marks that updates must be emitted at
	// the start of the next header block (RFC 7541 §4.2).
	minSize         uint32
	pendingCapacity uint32
	tableSizeUpdate bool
}

// NewEncoder returns an Encoder with the default 4096-byte dynamic table
// and Huffman coding enabled.
func NewEncoder() *Encoder {
	return &Encoder{
		dt:         newDynamicTable(DefaultDynamicTableSize),
		useHuffman: true,
		// minSize tracks the lowest capacity since the last emitted
		// update. Starting it at the current capacity (not zero) keeps a
		// capacity *increase* from emitting a spurious shrink-to-zero
		// update that would flush the peer decoder's dynamic table.
		minSize: DefaultDynamicTableSize,
	}
}

// SetHuffman toggles Huffman coding of string literals. Disabling it is
// always interoperable: the H bit is simply left clear.
func (e *Encoder) SetHuffman(on bool) { e.useHuffman = on }

// SetMaxDynamicTableSize schedules the encoder's dynamic table capacity
// change to n, to be signalled at the start of the next header block.
func (e *Encoder) SetMaxDynamicTableSize(n uint32) {
	if n < e.minSize {
		e.minSize = n
	}
	e.pendingCapacity = n
	e.tableSizeUpdate = true
}

// DynamicTableSize reports the current size in bytes of the encoder's
// dynamic table.
func (e *Encoder) DynamicTableSize() uint32 { return e.dt.size }

// AppendField appends the HPACK representation of f to dst.
//
// Representation choice follows the usual policy: indexed when an exact
// match exists; literal-with-incremental-indexing otherwise, unless the
// field is Sensitive (never-indexed) or too large to be worth indexing.
func (e *Encoder) AppendField(dst []byte, f HeaderField) []byte {
	dst = e.flushTableSizeUpdates(dst)

	k := tableKey{f.Name, f.Value}
	if !f.Sensitive {
		if i, ok := staticIndex[k]; ok {
			return appendVarInt(dst, 7, 0x80, i)
		}
		if di, _ := e.dt.search(f); di != 0 {
			return appendVarInt(dst, 7, 0x80, uint64(staticTableLen)+di)
		}
	}

	nameIdx := uint64(0)
	if i, ok := staticNameIndex[f.Name]; ok {
		nameIdx = i
	} else if _, ni := e.dt.search(f); ni != 0 {
		nameIdx = uint64(staticTableLen) + ni
	}

	switch {
	case f.Sensitive:
		// Literal never indexed (§6.2.3): 0001xxxx.
		dst = appendVarInt(dst, 4, 0x10, nameIdx)
	case f.Size() > e.dt.maxSize:
		// Literal without indexing (§6.2.2): 0000xxxx.
		dst = appendVarInt(dst, 4, 0, nameIdx)
	default:
		// Literal with incremental indexing (§6.2.1): 01xxxxxx.
		dst = appendVarInt(dst, 6, 0x40, nameIdx)
		e.dt.add(f)
	}
	if nameIdx == 0 {
		dst = appendString(dst, f.Name, e.useHuffman)
	}
	return appendString(dst, f.Value, e.useHuffman)
}

// AppendHeaderBlock encodes all fields into a single header block.
func (e *Encoder) AppendHeaderBlock(dst []byte, fields []HeaderField) []byte {
	for _, f := range fields {
		dst = e.AppendField(dst, f)
	}
	return dst
}

// flushTableSizeUpdates emits pending §6.3 dynamic table size updates.
// When the capacity dipped below the final value, two updates are
// emitted (the minimum then the final), per §4.2.
func (e *Encoder) flushTableSizeUpdates(dst []byte) []byte {
	if !e.tableSizeUpdate {
		return dst
	}
	if e.minSize < e.pendingCapacity {
		dst = appendVarInt(dst, 5, 0x20, uint64(e.minSize))
	}
	dst = appendVarInt(dst, 5, 0x20, uint64(e.pendingCapacity))
	e.dt.setMaxSize(e.pendingCapacity)
	e.minSize = e.pendingCapacity
	e.tableSizeUpdate = false
	return dst
}
