// Package hpack implements HPACK header compression for HTTP/2 as
// specified by RFC 7541.
//
// The package provides an Encoder and a Decoder operating on complete
// header blocks, the primitive integer and string representations from
// RFC 7541 §5, the full static table from Appendix A, a size-bounded
// dynamic table with FIFO eviction, and canonical Huffman coding from
// Appendix B.
//
// It is written from scratch against the RFC; the Huffman code table is
// the canonical table published in RFC 7541 Appendix B.
package hpack

import (
	"errors"
	"fmt"
)

// A HeaderField is a name/value pair carried in a header block.
type HeaderField struct {
	Name  string
	Value string

	// Sensitive marks the field as never-indexed (RFC 7541 §6.2.3):
	// intermediaries must not add it to any dynamic table.
	Sensitive bool
}

// String renders the field as "name: value" with a secrecy marker for
// sensitive fields.
func (f HeaderField) String() string {
	var suffix string
	if f.Sensitive {
		suffix = " (sensitive)"
	}
	return fmt.Sprintf("%s: %s%s", f.Name, f.Value, suffix)
}

// Size returns the RFC 7541 §4.1 size of the field: name length plus
// value length plus 32 bytes of per-entry overhead.
func (f HeaderField) Size() uint32 {
	return uint32(len(f.Name)) + uint32(len(f.Value)) + 32
}

// DefaultDynamicTableSize is the SETTINGS_HEADER_TABLE_SIZE default from
// RFC 9113 §6.5.2.
const DefaultDynamicTableSize = 4096

// Decoding errors.
var (
	// ErrStringLength is returned when a decoded string exceeds the
	// decoder's configured maximum.
	ErrStringLength = errors.New("hpack: string too long")

	// ErrInvalidIndex is returned for an index outside both tables.
	ErrInvalidIndex = errors.New("hpack: invalid table index")

	// ErrIntegerOverflow is returned when a varint exceeds 32 bits.
	ErrIntegerOverflow = errors.New("hpack: integer overflow")

	// ErrTruncated is returned when a header block ends mid-field.
	ErrTruncated = errors.New("hpack: truncated header block")

	// ErrTableSizeUpdate is returned for a dynamic table size update
	// exceeding the limit set by the decoder's owner.
	ErrTableSizeUpdate = errors.New("hpack: dynamic table size update exceeds limit")

	// ErrHuffman is returned for invalid Huffman-coded data, including
	// the forbidden 30-bit-padding EOS encoding.
	ErrHuffman = errors.New("hpack: invalid huffman-coded data")
)

// appendVarInt appends the RFC 7541 §5.1 prefix-integer representation of
// i using an n-bit prefix (1 ≤ n ≤ 8) OR-ed into first, which carries the
// pattern bits above the prefix.
func appendVarInt(dst []byte, n uint8, first byte, i uint64) []byte {
	k := uint64(1)<<n - 1
	if i < k {
		return append(dst, first|byte(i))
	}
	dst = append(dst, first|byte(k))
	i -= k
	for i >= 128 {
		dst = append(dst, byte(i)|0x80)
		i >>= 7
	}
	return append(dst, byte(i))
}

// maxVarInt bounds decoded prefix integers. Indices, string lengths and
// table sizes all fit in 32 bits; RFC 7541 §5.1 explicitly allows
// implementations to set a limit on accepted integer values.
const maxVarInt = 1<<32 - 1

// readVarInt decodes an n-bit-prefix integer from buf. It returns the
// value and the remaining bytes. Values above maxVarInt — including
// continuation sequences long enough to wrap a uint64 accumulator — are
// ErrIntegerOverflow.
func readVarInt(buf []byte, n uint8) (uint64, []byte, error) {
	if len(buf) == 0 {
		return 0, nil, ErrTruncated
	}
	k := uint64(1)<<n - 1
	i := uint64(buf[0]) & k
	buf = buf[1:]
	if i < k {
		return i, buf, nil
	}
	var shift uint
	for {
		if len(buf) == 0 {
			return 0, nil, ErrTruncated
		}
		b := buf[0]
		buf = buf[1:]
		// Five continuation octets already cover 2^35 > maxVarInt; a
		// sixth can only overflow (or, at larger shifts, wrap uint64),
		// so reject it before touching the accumulator.
		if shift > 28 {
			return 0, nil, ErrIntegerOverflow
		}
		i += uint64(b&0x7f) << shift
		if i > maxVarInt {
			return 0, nil, ErrIntegerOverflow
		}
		if b&0x80 == 0 {
			return i, buf, nil
		}
		shift += 7
	}
}

// appendString appends the §5.2 string literal representation of s.
// When huffman is true and Huffman coding shortens the string, the
// Huffman form is used; otherwise the raw form is used.
func appendString(dst []byte, s string, huffman bool) []byte {
	if huffman {
		if hl := HuffmanEncodeLength(s); hl < uint64(len(s)) {
			dst = appendVarInt(dst, 7, 0x80, hl)
			return AppendHuffmanString(dst, s)
		}
	}
	dst = appendVarInt(dst, 7, 0, uint64(len(s)))
	return append(dst, s...)
}

// DefaultMaxStringLength bounds a single decoded string when the
// decoder's owner did not set an explicit limit. A header block larger
// than this is cut off at the HTTP/2 layer anyway (ENHANCE_YOUR_CALM),
// so an unconfigured decoder should never expand further than this —
// it keeps a hostile Huffman literal from ballooning unchecked.
const DefaultMaxStringLength = 1 << 20

// readString decodes a §5.2 string literal, applying Huffman decoding
// when the H bit is set. maxLen bounds the decoded length; zero applies
// DefaultMaxStringLength rather than no bound at all. scratch, when
// non-nil, is used as the Huffman decode buffer so the only allocation
// is the returned string; the (possibly grown) buffer comes back to the
// caller for reuse.
func readString(buf []byte, maxLen uint64, scratch []byte) (s string, rest, scratchOut []byte, err error) {
	if maxLen == 0 {
		maxLen = DefaultMaxStringLength
	}
	if len(buf) == 0 {
		return "", nil, scratch, ErrTruncated
	}
	huff := buf[0]&0x80 != 0
	n, rest, err := readVarInt(buf, 7)
	if err != nil {
		return "", nil, scratch, err
	}
	if uint64(len(rest)) < n {
		return "", nil, scratch, ErrTruncated
	}
	raw := rest[:n]
	rest = rest[n:]
	if !huff {
		if n > maxLen {
			return "", nil, scratch, ErrStringLength
		}
		return string(raw), rest, scratch, nil
	}
	dec, err := AppendHuffmanDecode(scratch[:0], raw, maxLen)
	if err != nil {
		return "", nil, dec, err
	}
	return string(dec), rest, dec, nil
}
