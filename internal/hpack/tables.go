package hpack

// staticTable is the RFC 7541 Appendix A static table. Index 0 is unused;
// entries occupy indices 1..61.
var staticTable = [...]HeaderField{
	{},
	{Name: ":authority"},
	{Name: ":method", Value: "GET"},
	{Name: ":method", Value: "POST"},
	{Name: ":path", Value: "/"},
	{Name: ":path", Value: "/index.html"},
	{Name: ":scheme", Value: "http"},
	{Name: ":scheme", Value: "https"},
	{Name: ":status", Value: "200"},
	{Name: ":status", Value: "204"},
	{Name: ":status", Value: "206"},
	{Name: ":status", Value: "304"},
	{Name: ":status", Value: "400"},
	{Name: ":status", Value: "404"},
	{Name: ":status", Value: "500"},
	{Name: "accept-charset"},
	{Name: "accept-encoding", Value: "gzip, deflate"},
	{Name: "accept-language"},
	{Name: "accept-ranges"},
	{Name: "accept"},
	{Name: "access-control-allow-origin"},
	{Name: "age"},
	{Name: "allow"},
	{Name: "authorization"},
	{Name: "cache-control"},
	{Name: "content-disposition"},
	{Name: "content-encoding"},
	{Name: "content-language"},
	{Name: "content-length"},
	{Name: "content-location"},
	{Name: "content-range"},
	{Name: "content-type"},
	{Name: "cookie"},
	{Name: "date"},
	{Name: "etag"},
	{Name: "expect"},
	{Name: "expires"},
	{Name: "from"},
	{Name: "host"},
	{Name: "if-match"},
	{Name: "if-modified-since"},
	{Name: "if-none-match"},
	{Name: "if-range"},
	{Name: "if-unmodified-since"},
	{Name: "last-modified"},
	{Name: "link"},
	{Name: "location"},
	{Name: "max-forwards"},
	{Name: "proxy-authenticate"},
	{Name: "proxy-authorization"},
	{Name: "range"},
	{Name: "referer"},
	{Name: "refresh"},
	{Name: "retry-after"},
	{Name: "server"},
	{Name: "set-cookie"},
	{Name: "strict-transport-security"},
	{Name: "transfer-encoding"},
	{Name: "user-agent"},
	{Name: "vary"},
	{Name: "via"},
	{Name: "www-authenticate"},
}

const staticTableLen = len(staticTable) - 1

// tableKey identifies an exact name/value pair for reverse lookup.
type tableKey struct{ name, value string }

// staticIndex maps exact pairs to their static-table index, and
// staticNameIndex maps a name to the lowest index carrying that name.
var (
	staticIndex     = map[tableKey]uint64{}
	staticNameIndex = map[string]uint64{}
)

func init() {
	for i := 1; i <= staticTableLen; i++ {
		e := staticTable[i]
		k := tableKey{e.Name, e.Value}
		if _, ok := staticIndex[k]; !ok {
			staticIndex[k] = uint64(i)
		}
		if _, ok := staticNameIndex[e.Name]; !ok {
			staticNameIndex[e.Name] = uint64(i)
		}
	}
}

// dynamicTable is the RFC 7541 §2.3.2 dynamic table: a FIFO of entries
// bounded by maxSize, with §4.1 size accounting and §4.3 eviction.
//
// Entries are stored oldest-first in ents; the newest entry has HPACK
// index 1 and lives at ents[len(ents)-1].
type dynamicTable struct {
	ents    []HeaderField
	size    uint32 // sum of entry sizes
	maxSize uint32 // current effective capacity
}

func newDynamicTable(maxSize uint32) *dynamicTable {
	return &dynamicTable{maxSize: maxSize}
}

func (t *dynamicTable) len() int { return len(t.ents) }

// setMaxSize applies a dynamic table size update, evicting as needed.
func (t *dynamicTable) setMaxSize(n uint32) {
	t.maxSize = n
	t.evict()
}

// add inserts f as the newest entry. Per §4.4, an entry larger than the
// table capacity empties the table and inserts nothing.
func (t *dynamicTable) add(f HeaderField) {
	if f.Size() > t.maxSize {
		t.ents = t.ents[:0]
		t.size = 0
		return
	}
	t.ents = append(t.ents, f)
	t.size += f.Size()
	t.evict()
}

func (t *dynamicTable) evict() {
	drop := 0
	for t.size > t.maxSize && drop < len(t.ents) {
		t.size -= t.ents[drop].Size()
		drop++
	}
	if drop > 0 {
		copy(t.ents, t.ents[drop:])
		t.ents = t.ents[:len(t.ents)-drop]
	}
}

// at returns the entry with dynamic index i (1 = newest).
func (t *dynamicTable) at(i uint64) (HeaderField, bool) {
	if i == 0 || i > uint64(len(t.ents)) {
		return HeaderField{}, false
	}
	return t.ents[uint64(len(t.ents))-i], true
}

// search returns the dynamic index of an exact name/value match, or the
// index of a name-only match, preferring exact matches and newer entries.
func (t *dynamicTable) search(f HeaderField) (idx uint64, nameIdx uint64) {
	for j := len(t.ents) - 1; j >= 0; j-- {
		e := t.ents[j]
		if e.Name != f.Name {
			continue
		}
		i := uint64(len(t.ents) - j)
		if nameIdx == 0 {
			nameIdx = i
		}
		if e.Value == f.Value {
			return i, nameIdx
		}
	}
	return 0, nameIdx
}

// lookup resolves an absolute HPACK index against the static table then
// the dynamic table.
func lookup(t *dynamicTable, i uint64) (HeaderField, bool) {
	if i == 0 {
		return HeaderField{}, false
	}
	if i <= uint64(staticTableLen) {
		return staticTable[i], true
	}
	return t.at(i - uint64(staticTableLen))
}
