package hpack

import (
	"bufio"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// corpusBlobs loads every []byte/string literal from the checked-in Go
// fuzz corpora under testdata/fuzz, so the differential tests replay
// everything the fuzzer ever found interesting — including the
// regression inputs — against both decoders.
func corpusBlobs(t *testing.T) [][]byte {
	t.Helper()
	var blobs [][]byte
	root := filepath.Join("testdata", "fuzz")
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
		for sc.Scan() {
			line := sc.Text()
			var lit string
			switch {
			case strings.HasPrefix(line, "[]byte("):
				lit = strings.TrimSuffix(strings.TrimPrefix(line, "[]byte("), ")")
			case strings.HasPrefix(line, "string("):
				lit = strings.TrimSuffix(strings.TrimPrefix(line, "string("), ")")
			default:
				continue
			}
			s, err := strconv.Unquote(lit)
			if err != nil {
				continue
			}
			blobs = append(blobs, []byte(s))
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("walking fuzz corpora: %v", err)
	}
	if len(blobs) == 0 {
		t.Fatal("no corpus inputs found under testdata/fuzz")
	}
	return blobs
}

// diffDecode runs one input through the LUT and tree decoders under the
// same maxLen and fails unless both the decoded bytes and the error
// classification agree exactly.
func diffDecode(t *testing.T, data []byte, maxLen uint64) {
	t.Helper()
	lut, lutErr := HuffmanDecode(data, maxLen)
	tree, treeErr := HuffmanDecodeTree(data, maxLen)
	if lutErr != treeErr {
		t.Fatalf("decoders disagree on error for %x (maxLen=%d): LUT %v, tree %v", data, maxLen, lutErr, treeErr)
	}
	if lut != tree {
		t.Fatalf("decoders disagree on output for %x (maxLen=%d): LUT %q, tree %q", data, maxLen, lut, tree)
	}
}

// TestHuffmanLUTMatchesTreeOnCorpora replays the checked-in fuzz corpora
// through both decoders at several length bounds.
func TestHuffmanLUTMatchesTreeOnCorpora(t *testing.T) {
	blobs := corpusBlobs(t)
	for _, data := range blobs {
		for _, maxLen := range []uint64{0, 1, 5, 64} {
			diffDecode(t, data, maxLen)
		}
		// The corpus entry may itself be decodable text: its canonical
		// encoding must round-trip identically through both decoders.
		if uint64(len(data)) <= DefaultMaxStringLength {
			enc := AppendHuffmanString(nil, string(data))
			diffDecode(t, enc, 0)
		}
	}
}

// TestHuffmanLUTMatchesTreeRandom cross-checks the decoders on seeded
// random inputs: raw noise, valid encodings, and valid encodings with a
// single bit flipped or a truncated tail — the mutations most likely to
// land on an EOS/padding edge case.
func TestHuffmanLUTMatchesTreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		raw := make([]byte, n)
		rng.Read(raw)
		diffDecode(t, raw, 0)
		diffDecode(t, raw, uint64(rng.Intn(8)))

		enc := AppendHuffmanString(nil, string(raw))
		diffDecode(t, enc, 0)
		if len(enc) > 0 {
			flipped := append([]byte(nil), enc...)
			flipped[rng.Intn(len(flipped))] ^= 1 << uint(rng.Intn(8))
			diffDecode(t, flipped, 0)
			diffDecode(t, enc[:rng.Intn(len(enc))], 0)
		}
	}
}

// TestHuffmanLUTRoundTripAllSymbols decodes the encoding of every
// single-byte string and a string containing all 256 symbols, so every
// code in the canonical table passes through the LUT at least once.
func TestHuffmanLUTRoundTripAllSymbols(t *testing.T) {
	all := make([]byte, 256)
	for i := range all {
		all[i] = byte(i)
		enc := AppendHuffmanString(nil, string([]byte{byte(i)}))
		got, err := HuffmanDecode(enc, 0)
		if err != nil || got != string([]byte{byte(i)}) {
			t.Fatalf("symbol %#x: decode = %q, %v", i, got, err)
		}
		diffDecode(t, enc, 0)
	}
	enc := AppendHuffmanString(nil, string(all))
	got, err := HuffmanDecode(enc, 0)
	if err != nil || got != string(all) {
		t.Fatalf("all-symbols string: decode err = %v", err)
	}
	diffDecode(t, enc, 0)
}

// TestAppendHuffmanDecodeReusesScratch asserts the scratch-buffer decode
// path appends after existing bytes and bounds only the decoded length.
func TestAppendHuffmanDecodeReusesScratch(t *testing.T) {
	enc := AppendHuffmanString(nil, "no-cache")
	scratch := append(make([]byte, 0, 64), "prefix"...)
	out, err := AppendHuffmanDecode(scratch, enc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "prefixno-cache" {
		t.Fatalf("AppendHuffmanDecode = %q, want %q", out, "prefixno-cache")
	}
	if &out[0] != &scratch[:1][0] {
		t.Error("decode into large-enough scratch reallocated the buffer")
	}
	// maxLen bounds the decoded suffix, not the whole buffer.
	if _, err := AppendHuffmanDecode(scratch, enc, 8); err != nil {
		t.Errorf("maxLen equal to decoded length: %v", err)
	}
	if _, err := AppendHuffmanDecode(scratch, enc, 7); err != ErrStringLength {
		t.Errorf("maxLen below decoded length: err = %v, want ErrStringLength", err)
	}
}
