package hpack

// Canonical Huffman code from RFC 7541 Appendix B. huffmanCodes[i] holds
// the code for octet i, right-aligned; huffmanCodeLen[i] its bit length.
// The 256th symbol (EOS) is used only as padding and is never emitted.
var huffmanCodes = [256]uint32{
	0x1ff8, 0x7fffd8, 0xfffffe2, 0xfffffe3, 0xfffffe4, 0xfffffe5, 0xfffffe6, 0xfffffe7,
	0xfffffe8, 0xffffea, 0x3ffffffc, 0xfffffe9, 0xfffffea, 0x3ffffffd, 0xfffffeb, 0xfffffec,
	0xfffffed, 0xfffffee, 0xfffffef, 0xffffff0, 0xffffff1, 0xffffff2, 0x3ffffffe, 0xffffff3,
	0xffffff4, 0xffffff5, 0xffffff6, 0xffffff7, 0xffffff8, 0xffffff9, 0xffffffa, 0xffffffb,
	0x14, 0x3f8, 0x3f9, 0xffa, 0x1ff9, 0x15, 0xf8, 0x7fa,
	0x3fa, 0x3fb, 0xf9, 0x7fb, 0xfa, 0x16, 0x17, 0x18,
	0x0, 0x1, 0x2, 0x19, 0x1a, 0x1b, 0x1c, 0x1d,
	0x1e, 0x1f, 0x5c, 0xfb, 0x7ffc, 0x20, 0xffb, 0x3fc,
	0x1ffa, 0x21, 0x5d, 0x5e, 0x5f, 0x60, 0x61, 0x62,
	0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a,
	0x6b, 0x6c, 0x6d, 0x6e, 0x6f, 0x70, 0x71, 0x72,
	0xfc, 0x73, 0xfd, 0x1ffb, 0x7fff0, 0x1ffc, 0x3ffc, 0x22,
	0x7ffd, 0x3, 0x23, 0x4, 0x24, 0x5, 0x25, 0x26,
	0x27, 0x6, 0x74, 0x75, 0x28, 0x29, 0x2a, 0x7,
	0x2b, 0x76, 0x2c, 0x8, 0x9, 0x2d, 0x77, 0x78,
	0x79, 0x7a, 0x7b, 0x7ffe, 0x7fc, 0x3ffd, 0x1ffd, 0xffffffc,
	0xfffe6, 0x3fffd2, 0xfffe7, 0xfffe8, 0x3fffd3, 0x3fffd4, 0x3fffd5, 0x7fffd9,
	0x3fffd6, 0x7fffda, 0x7fffdb, 0x7fffdc, 0x7fffdd, 0x7fffde, 0xffffeb, 0x7fffdf,
	0xffffec, 0xffffed, 0x3fffd7, 0x7fffe0, 0xffffee, 0x7fffe1, 0x7fffe2, 0x7fffe3,
	0x7fffe4, 0x1fffdc, 0x3fffd8, 0x7fffe5, 0x3fffd9, 0x7fffe6, 0x7fffe7, 0xffffef,
	0x3fffda, 0x1fffdd, 0xfffe9, 0x3fffdb, 0x3fffdc, 0x7fffe8, 0x7fffe9, 0x1fffde,
	0x7fffea, 0x3fffdd, 0x3fffde, 0xfffff0, 0x1fffdf, 0x3fffdf, 0x7fffeb, 0x7fffec,
	0x1fffe0, 0x1fffe1, 0x3fffe0, 0x1fffe2, 0x7fffed, 0x3fffe1, 0x7fffee, 0x7fffef,
	0xfffea, 0x3fffe2, 0x3fffe3, 0x3fffe4, 0x7ffff0, 0x3fffe5, 0x3fffe6, 0x7ffff1,
	0x3ffffe0, 0x3ffffe1, 0xfffeb, 0x7fff1, 0x3fffe7, 0x7ffff2, 0x3fffe8, 0x1ffffec,
	0x3ffffe2, 0x3ffffe3, 0x3ffffe4, 0x7ffffde, 0x7ffffdf, 0x3ffffe5, 0xfffff1, 0x1ffffed,
	0x7fff2, 0x1fffe3, 0x3ffffe6, 0x7ffffe0, 0x7ffffe1, 0x3ffffe7, 0x7ffffe2, 0xfffff2,
	0x1fffe4, 0x1fffe5, 0x3ffffe8, 0x3ffffe9, 0xffffffd, 0x7ffffe3, 0x7ffffe4, 0x7ffffe5,
	0xfffec, 0xfffff3, 0xfffed, 0x1fffe6, 0x3fffe9, 0x1fffe7, 0x1fffe8, 0x7ffff3,
	0x3fffea, 0x3fffeb, 0x1ffffee, 0x1ffffef, 0xfffff4, 0xfffff5, 0x3ffffea, 0x7ffff4,
	0x3ffffeb, 0x7ffffe6, 0x3ffffec, 0x3ffffed, 0x7ffffe7, 0x7ffffe8, 0x7ffffe9, 0x7ffffea,
	0x7ffffeb, 0xffffffe, 0x7ffffec, 0x7ffffed, 0x7ffffee, 0x7ffffef, 0x7fffff0, 0x3ffffee,
}

var huffmanCodeLen = [256]uint8{
	13, 23, 28, 28, 28, 28, 28, 28, 28, 24, 30, 28, 28, 30, 28, 28,
	28, 28, 28, 28, 28, 28, 30, 28, 28, 28, 28, 28, 28, 28, 28, 28,
	6, 10, 10, 12, 13, 6, 8, 11, 10, 10, 8, 11, 8, 6, 6, 6,
	5, 5, 5, 6, 6, 6, 6, 6, 6, 6, 7, 8, 15, 6, 12, 10,
	13, 6, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7,
	7, 7, 7, 7, 7, 7, 7, 7, 8, 7, 8, 13, 19, 13, 14, 6,
	15, 5, 6, 5, 6, 5, 6, 6, 6, 5, 7, 7, 6, 6, 6, 5,
	6, 7, 6, 5, 5, 6, 7, 7, 7, 7, 7, 15, 11, 14, 13, 28,
	20, 22, 20, 20, 22, 22, 22, 23, 22, 23, 23, 23, 23, 23, 24, 23,
	24, 24, 22, 23, 24, 23, 23, 23, 23, 21, 22, 23, 22, 23, 23, 24,
	22, 21, 20, 22, 22, 23, 23, 21, 23, 22, 22, 24, 21, 22, 23, 23,
	21, 21, 22, 21, 23, 22, 23, 23, 20, 22, 22, 22, 23, 22, 22, 23,
	26, 26, 20, 19, 22, 23, 22, 25, 26, 26, 26, 27, 27, 26, 24, 25,
	19, 21, 26, 27, 27, 26, 27, 24, 21, 21, 26, 26, 28, 27, 27, 27,
	20, 24, 20, 21, 22, 21, 21, 23, 22, 22, 25, 25, 24, 24, 26, 23,
	26, 27, 26, 26, 27, 27, 27, 27, 27, 28, 27, 27, 27, 27, 27, 26,
}

// huffmanNode is a binary decoding-tree node. Leaves carry the decoded
// symbol; interior nodes carry child links.
type huffmanNode struct {
	children [2]*huffmanNode
	sym      byte
	leaf     bool
}

var huffmanRoot = buildHuffmanTree()

func buildHuffmanTree() *huffmanNode {
	root := &huffmanNode{}
	for sym := 0; sym < 256; sym++ {
		code := huffmanCodes[sym]
		n := root
		for bit := int(huffmanCodeLen[sym]) - 1; bit >= 0; bit-- {
			b := (code >> uint(bit)) & 1
			if n.children[b] == nil {
				n.children[b] = &huffmanNode{}
			}
			n = n.children[b]
		}
		n.sym = byte(sym)
		n.leaf = true
	}
	return root
}

// HuffmanEncodeLength returns the number of octets the Huffman coding of
// s occupies, including the final padding bits.
func HuffmanEncodeLength(s string) uint64 {
	var bits uint64
	for i := 0; i < len(s); i++ {
		bits += uint64(huffmanCodeLen[s[i]])
	}
	return (bits + 7) / 8
}

// AppendHuffmanString appends the Huffman coding of s to dst, padding the
// final octet with the most-significant bits of the EOS symbol (all ones)
// per RFC 7541 §5.2.
func AppendHuffmanString(dst []byte, s string) []byte {
	var acc uint64 // bit accumulator, most-recent code in low bits
	var nbits uint
	for i := 0; i < len(s); i++ {
		c := s[i]
		acc = acc<<uint(huffmanCodeLen[c]) | uint64(huffmanCodes[c])
		nbits += uint(huffmanCodeLen[c])
		for nbits >= 8 {
			nbits -= 8
			dst = append(dst, byte(acc>>nbits))
		}
	}
	if nbits > 0 {
		// Pad with ones (EOS prefix).
		acc = acc<<(8-nbits) | (1<<(8-nbits) - 1)
		dst = append(dst, byte(acc))
	}
	return dst
}

// HuffmanDecodeTree decodes Huffman-coded data by walking the decoding
// tree one bit at a time. It is the reference implementation: the
// production decoder (HuffmanDecode) is a flat byte-at-a-time lookup
// table built from the same tree, and the differential tests and fuzz
// targets assert the two agree byte for byte, including error
// classification. Per RFC 7541 §5.2 a padding longer than 7 bits, a
// padding that is not the EOS prefix, or an incomplete code is a
// decoding error.
func HuffmanDecodeTree(data []byte, maxLen uint64) (string, error) {
	if maxLen == 0 {
		maxLen = DefaultMaxStringLength
	}
	var out []byte
	n := huffmanRoot
	depth := 0      // bits consumed within the current code
	onesRun := true // whether all bits since the last symbol were ones
	for _, b := range data {
		for bit := 7; bit >= 0; bit-- {
			v := (b >> uint(bit)) & 1
			if v == 0 {
				onesRun = false
			}
			n = n.children[v]
			if n == nil {
				return "", ErrHuffman
			}
			depth++
			if n.leaf {
				out = append(out, n.sym)
				if uint64(len(out)) > maxLen {
					return "", ErrStringLength
				}
				n = huffmanRoot
				depth = 0
				onesRun = true
			}
		}
	}
	// Trailing partial code must be a ones-only EOS prefix of < 8 bits.
	if depth > 7 || !onesRun {
		return "", ErrHuffman
	}
	return string(out), nil
}

// --- Flat LUT decoder ---
//
// The production decoder consumes input one byte at a time. A state is
// a node of the decoding tree reachable at a byte boundary (the code
// residue carried across bytes); for every (state, next byte) pair the
// table below precomputes the walk over those 8 bits: up to two decoded
// symbols (the shortest code is 5 bits, so 8 bits complete at most a
// residue plus one 5-bit code), the next state, and whether the walk
// fell off the tree (invalid coding). Padding legality is a property of
// the final state alone — its depth is the number of bits into the
// pending code and huffmanStateOnes records whether that partial path
// is the all-ones EOS prefix — so the RFC 7541 §5.2 checks carry over
// from the tree decoder unchanged.

// huffmanLUTEntry is one (state, byte) transition.
type huffmanLUTEntry struct {
	next    uint16 // state index after consuming the byte
	syms    [2]byte
	nsyms   uint8
	invalid bool // walk reached a nil child (after emitting syms)
}

var (
	// huffmanLUT is the flat transition table, indexed state<<8|byte.
	huffmanLUT []huffmanLUTEntry
	// huffmanStateDepth is the bit depth of each state's pending code.
	huffmanStateDepth []uint8
	// huffmanStateOnes records whether each state's pending-code path
	// consists entirely of ones (a legal EOS-prefix padding).
	huffmanStateOnes []bool
)

func init() { buildHuffmanLUT() }

// buildHuffmanLUT discovers the byte-boundary states by breadth-first
// search from the tree root and precomputes every 8-bit walk.
func buildHuffmanLUT() {
	type stateInfo struct {
		n     *huffmanNode
		depth uint8
		ones  bool
	}
	index := map[*huffmanNode]uint16{huffmanRoot: 0}
	states := []stateInfo{{huffmanRoot, 0, true}}
	for si := 0; si < len(states); si++ {
		start := states[si]
		for b := 0; b < 256; b++ {
			var e huffmanLUTEntry
			n := start.n
			depth, ones := start.depth, start.ones
			for bit := 7; bit >= 0; bit-- {
				v := (byte(b) >> uint(bit)) & 1
				if v == 0 {
					ones = false
				}
				n = n.children[v]
				if n == nil {
					e.invalid = true
					break
				}
				depth++
				if n.leaf {
					if e.nsyms >= 2 {
						panic("hpack: >2 symbols in one huffman LUT step")
					}
					e.syms[e.nsyms] = n.sym
					e.nsyms++
					n = huffmanRoot
					depth, ones = 0, true
				}
			}
			if !e.invalid {
				idx, seen := index[n]
				if !seen {
					idx = uint16(len(states))
					index[n] = idx
					states = append(states, stateInfo{n, depth, ones})
				}
				e.next = idx
			}
			huffmanLUT = append(huffmanLUT, e)
		}
		// Entries for states discovered during this pass are appended by
		// the outer loop as si advances.
	}
	huffmanStateDepth = make([]uint8, len(states))
	huffmanStateOnes = make([]bool, len(states))
	for i, s := range states {
		huffmanStateDepth[i] = s.depth
		huffmanStateOnes[i] = s.ones
	}
}

// AppendHuffmanDecode decodes Huffman-coded data into dst (which may be
// a reused scratch buffer) and returns the extended slice. maxLen bounds
// len(result) (0 means DefaultMaxStringLength). Error semantics are
// identical to HuffmanDecodeTree; on error the returned slice holds the
// symbols decoded so far and must be discarded by the caller.
func AppendHuffmanDecode(dst, data []byte, maxLen uint64) ([]byte, error) {
	if maxLen == 0 {
		maxLen = DefaultMaxStringLength
	}
	base := uint64(len(dst))
	st := uint16(0)
	for _, b := range data {
		e := &huffmanLUT[int(st)<<8|int(b)]
		if e.nsyms > 0 {
			dst = append(dst, e.syms[:e.nsyms]...)
			if uint64(len(dst))-base > maxLen {
				return dst, ErrStringLength
			}
		}
		if e.invalid {
			return dst, ErrHuffman
		}
		st = e.next
	}
	if huffmanStateDepth[st] > 7 || !huffmanStateOnes[st] {
		return dst, ErrHuffman
	}
	return dst, nil
}

// HuffmanDecode decodes Huffman-coded data via the flat lookup table.
// maxLen bounds the decoded length (0 means DefaultMaxStringLength).
func HuffmanDecode(data []byte, maxLen uint64) (string, error) {
	// The shortest code is 5 bits, so decoded length ≤ ⌈len(data)*8/5⌉;
	// sizing the buffer to that bound makes growth reallocation
	// impossible and leaves one string materialization as the only
	// variable-size allocation.
	out, err := AppendHuffmanDecode(make([]byte, 0, (len(data)*8+4)/5), data, maxLen)
	if err != nil {
		return "", err
	}
	return string(out), nil
}
