package hpack

import (
	"bytes"
	"strings"
	"testing"
)

// --- varint (prefix integer) overflow hardening ---

// TestVarIntRejectsExactly2To32 pins the off-by-one in the old bound:
// i > 1<<32 accepted the value 2^32 itself, which silently truncates in
// every uint32 cast downstream.
func TestVarIntRejectsExactly2To32(t *testing.T) {
	enc := appendVarInt(nil, 7, 0, 1<<32)
	if _, _, err := readVarInt(enc, 7); err != ErrIntegerOverflow {
		t.Errorf("readVarInt(2^32) err = %v, want ErrIntegerOverflow", err)
	}
}

// TestVarIntMaxValueAccepted checks the bound is exactly 2^32-1.
func TestVarIntMaxValueAccepted(t *testing.T) {
	enc := appendVarInt(nil, 7, 0, maxVarInt)
	v, rest, err := readVarInt(enc, 7)
	if err != nil || v != maxVarInt || len(rest) != 0 {
		t.Errorf("readVarInt(2^32-1) = %d, %v; want %d, nil", v, err, uint64(maxVarInt))
	}
}

// TestVarIntLongContinuationRejected: more than five continuation octets
// cannot encode a value within the 32-bit bound, and at large shifts the
// old accumulator arithmetic approached uint64 wrap-around. All such
// sequences must fail fast, including non-canonical zero padding.
func TestVarIntLongContinuationRejected(t *testing.T) {
	cases := [][]byte{
		// Prefix full, then 0x80 continuation padding far past 32 bits.
		append([]byte{0xff}, bytes.Repeat([]byte{0x80}, 8)...),
		// The shift-wrap shape: eight max continuation octets.
		append([]byte{0xff}, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}...),
		// Zero-valued but overlong: 6 continuation bytes ending cleanly.
		{0x7f, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00},
	}
	for i, in := range cases {
		if _, _, err := readVarInt(in, 7); err != ErrIntegerOverflow {
			t.Errorf("case %d: readVarInt(%x) err = %v, want ErrIntegerOverflow", i, in, err)
		}
	}
}

// TestDecodeFullHugeIndexRejected drives the overflow through the public
// entry point: an indexed field whose index is an overlong varint.
func TestDecodeFullHugeIndexRejected(t *testing.T) {
	blk := append([]byte{0xff}, bytes.Repeat([]byte{0xff}, 9)...)
	if _, err := NewDecoder().DecodeFull(blk); err != ErrIntegerOverflow {
		t.Errorf("DecodeFull(huge index) err = %v, want ErrIntegerOverflow", err)
	}
}

// --- default string expansion bound ---

// TestRawStringDefaultBound: with no explicit SetMaxStringLength, a raw
// literal longer than DefaultMaxStringLength must be rejected rather
// than decoded unbounded.
func TestRawStringDefaultBound(t *testing.T) {
	name := strings.Repeat("a", DefaultMaxStringLength+1)
	blk := appendVarInt(nil, 4, 0, 0) // literal without indexing, new name
	blk = appendVarInt(blk, 7, 0, uint64(len(name)))
	blk = append(blk, name...)
	blk = appendString(blk, "v", false)
	if _, err := NewDecoder().DecodeFull(blk); err != ErrStringLength {
		t.Errorf("DecodeFull(oversize raw literal) err = %v, want ErrStringLength", err)
	}
}

// TestHuffmanDecodeDefaultBound: HuffmanDecode with maxLen 0 previously
// meant "unbounded"; it must now stop at DefaultMaxStringLength.
func TestHuffmanDecodeDefaultBound(t *testing.T) {
	// The 5-bit code for '1' repeated 8 times fills exactly 5 octets, so
	// repeating the block decodes 8 symbols per 5 bytes with no padding.
	block := []byte{0x08, 0x42, 0x10, 0x84, 0x21}
	if s, err := HuffmanDecode(block, 0); err != nil || s != "11111111" {
		t.Fatalf("block sanity check: %q, %v", s, err)
	}
	reps := DefaultMaxStringLength/8 + 1 // expands past the bound
	data := bytes.Repeat(block, reps)
	if _, err := HuffmanDecode(data, 0); err != ErrStringLength {
		t.Errorf("HuffmanDecode(expanding input, maxLen=0) err = %v, want ErrStringLength", err)
	}
}

// --- encoder table size update hardening ---

// TestEncoderCapacityIncreaseNoSpuriousFlush pins a fuzz-surfaced interop
// bug: minSize was zero-initialized, so the first capacity *increase*
// emitted a shrink-to-zero update before the real one. The peer decoder
// obediently flushed its dynamic table and the encoder's next dynamic
// index pointed at an entry the decoder no longer had.
func TestEncoderCapacityIncreaseNoSpuriousFlush(t *testing.T) {
	e := NewEncoder()
	d := NewDecoder()
	d.SetAllowedMaxDynamicTableSize(8192)
	f := HeaderField{Name: "x-custom", Value: "abc"}

	b1 := e.AppendField(nil, f) // literal with incremental indexing
	if _, err := d.DecodeFull(b1); err != nil {
		t.Fatalf("first block: %v", err)
	}
	if d.DynamicTableSize() != f.Size() {
		t.Fatalf("decoder table size = %d, want %d", d.DynamicTableSize(), f.Size())
	}

	e.SetMaxDynamicTableSize(8192) // capacity raise, no dip below it
	b2 := e.AppendField(nil, f)    // should be a dynamic indexed field

	updates := 0
	for _, c := range b2 {
		if c&0xe0 == 0x20 && c&0x80 == 0 {
			updates++
		} else {
			break
		}
	}
	if updates != 1 {
		t.Errorf("capacity increase emitted %d size updates, want exactly 1 (no shrink-to-zero)", updates)
	}
	fields, err := d.DecodeFull(b2)
	if err != nil {
		t.Fatalf("second block after capacity raise: %v", err)
	}
	if len(fields) != 1 || fields[0].Name != f.Name || fields[0].Value != f.Value {
		t.Errorf("round trip after capacity raise = %+v, want %+v", fields, f)
	}
	if d.DynamicTableSize() == 0 {
		t.Error("decoder dynamic table was flushed by a capacity increase")
	}
}
