package hpack

import (
	"strings"
	"testing"
)

// benchHuffmanSamples mirrors the header strings a corpus crawl decodes
// most: authority/path/user-agent/accept-style literals.
var benchHuffmanSamples = []string{
	"www.site-123456.example",
	"/assets/js/application-3f2a1b.min.js",
	"Mozilla/5.0 (X11; Linux x86_64; rv:96.0) Gecko/20100101 Firefox/96.0",
	"text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8",
	"gzip, deflate, br",
	"session=1f4c2d8a9b3e5f7a; theme=dark; consent=granted",
}

func benchHuffmanEncoded(b *testing.B) [][]byte {
	b.Helper()
	enc := make([][]byte, len(benchHuffmanSamples))
	for i, s := range benchHuffmanSamples {
		enc[i] = AppendHuffmanString(nil, s)
	}
	return enc
}

// BenchmarkHuffmanDecode measures the production LUT decoder on
// corpus-style header strings.
func BenchmarkHuffmanDecode(b *testing.B) {
	enc := benchHuffmanEncoded(b)
	var n int
	for _, e := range enc {
		n += len(e)
	}
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range enc {
			if _, err := HuffmanDecode(e, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkHuffmanDecodeTree measures the reference bit-walking decoder
// on the same inputs; the ratio against BenchmarkHuffmanDecode is the
// LUT speedup tracked in EXPERIMENTS.md.
func BenchmarkHuffmanDecodeTree(b *testing.B) {
	enc := benchHuffmanEncoded(b)
	var n int
	for _, e := range enc {
		n += len(e)
	}
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range enc {
			if _, err := HuffmanDecodeTree(e, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkHuffmanDecodeLong stresses the decoder on a long maximally
// compressible literal (the digit-heavy case hit by cookie values).
func BenchmarkHuffmanDecodeLong(b *testing.B) {
	s := strings.Repeat("0123456789abcdef-", 256)
	enc := AppendHuffmanString(nil, s)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := HuffmanDecode(enc, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeFull measures full header-block decoding, the per-
// request HPACK hot path (dynamic table lookups + string decode).
func BenchmarkDecodeFull(b *testing.B) {
	fields := []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "www.site-123456.example"},
		{Name: ":path", Value: "/assets/js/application-3f2a1b.min.js"},
		{Name: "user-agent", Value: "Mozilla/5.0 (X11; Linux x86_64; rv:96.0) Gecko/20100101 Firefox/96.0"},
		{Name: "accept", Value: "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8"},
		{Name: "accept-encoding", Value: "gzip, deflate, br"},
		{Name: "cookie", Value: "session=1f4c2d8a9b3e5f7a; theme=dark; consent=granted"},
	}
	enc := NewEncoder()
	blk := enc.AppendHeaderBlock(nil, fields)
	dec := NewDecoder()
	b.SetBytes(int64(len(blk)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dec.DecodeFull(blk); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeBlock measures header-block encoding with Huffman on.
func BenchmarkEncodeBlock(b *testing.B) {
	fields := []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":authority", Value: "www.site-123456.example"},
		{Name: ":path", Value: "/assets/js/application-3f2a1b.min.js"},
		{Name: "accept-encoding", Value: "gzip, deflate, br"},
	}
	enc := NewEncoder()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = enc.AppendHeaderBlock(buf[:0], fields)
	}
}
