package hpack

// A Decoder reads HPACK header blocks. It maintains the decoder-side
// dynamic table and enforces the capacity limit the connection owner set
// via SETTINGS_HEADER_TABLE_SIZE.
//
// A Decoder is not safe for concurrent use.
type Decoder struct {
	dt *dynamicTable

	// maxAllowed is the upper bound for dynamic table size updates,
	// i.e. the value this endpoint advertised in SETTINGS.
	maxAllowed uint32

	// maxStringLen bounds individual decoded strings; 0 means the
	// package-wide DefaultMaxStringLength, never "unbounded".
	maxStringLen uint64

	// scratch is the reusable Huffman decode buffer: string literals
	// decode into it before the single string materialization, so
	// steady-state decoding allocates once per header string instead of
	// once per buffer growth step.
	scratch []byte
}

// NewDecoder returns a Decoder whose dynamic table capacity and update
// limit are the RFC default of 4096 bytes.
func NewDecoder() *Decoder {
	return &Decoder{
		dt:         newDynamicTable(DefaultDynamicTableSize),
		maxAllowed: DefaultDynamicTableSize,
	}
}

// SetMaxStringLength bounds the length of any single decoded name or
// value. Zero restores the DefaultMaxStringLength bound.
func (d *Decoder) SetMaxStringLength(n uint64) { d.maxStringLen = n }

// SetAllowedMaxDynamicTableSize sets the limit this endpoint advertised
// for the peer encoder's dynamic table; size updates above it are a
// compression error.
func (d *Decoder) SetAllowedMaxDynamicTableSize(n uint32) {
	d.maxAllowed = n
	if d.dt.maxSize > n {
		d.dt.setMaxSize(n)
	}
}

// DynamicTableSize reports the current size in bytes of the decoder's
// dynamic table.
func (d *Decoder) DynamicTableSize() uint32 { return d.dt.size }

// DecodeFull decodes a complete header block and returns its fields.
// Any error is a COMPRESSION_ERROR at the HTTP/2 layer.
func (d *Decoder) DecodeFull(block []byte) ([]HeaderField, error) {
	var fields []HeaderField
	seenField := false
	for len(block) > 0 {
		b := block[0]
		switch {
		case b&0x80 != 0: // §6.1 indexed
			i, rest, err := readVarInt(block, 7)
			if err != nil {
				return nil, err
			}
			f, ok := lookup(d.dt, i)
			if !ok {
				return nil, ErrInvalidIndex
			}
			fields = append(fields, f)
			block = rest
			seenField = true

		case b&0xc0 == 0x40: // §6.2.1 literal with incremental indexing
			f, rest, err := d.readLiteral(block, 6)
			if err != nil {
				return nil, err
			}
			d.dt.add(f)
			fields = append(fields, f)
			block = rest
			seenField = true

		case b&0xe0 == 0x20: // §6.3 dynamic table size update
			if seenField {
				// Updates must precede all fields in a block (§4.2).
				return nil, ErrTableSizeUpdate
			}
			n, rest, err := readVarInt(block, 5)
			if err != nil {
				return nil, err
			}
			if n > uint64(d.maxAllowed) {
				return nil, ErrTableSizeUpdate
			}
			d.dt.setMaxSize(uint32(n))
			block = rest

		default: // §6.2.2 / §6.2.3 literal without indexing / never indexed
			sensitive := b&0xf0 == 0x10
			f, rest, err := d.readLiteral(block, 4)
			if err != nil {
				return nil, err
			}
			f.Sensitive = sensitive
			fields = append(fields, f)
			block = rest
			seenField = true
		}
	}
	return fields, nil
}

// readLiteral reads a literal field whose name-index prefix is n bits.
func (d *Decoder) readLiteral(block []byte, n uint8) (HeaderField, []byte, error) {
	idx, rest, err := readVarInt(block, n)
	if err != nil {
		return HeaderField{}, nil, err
	}
	var f HeaderField
	if idx != 0 {
		ref, ok := lookup(d.dt, idx)
		if !ok {
			return HeaderField{}, nil, ErrInvalidIndex
		}
		f.Name = ref.Name
	} else {
		f.Name, rest, d.scratch, err = readString(rest, d.maxStringLen, d.scratch)
		if err != nil {
			return HeaderField{}, nil, err
		}
	}
	f.Value, rest, d.scratch, err = readString(rest, d.maxStringLen, d.scratch)
	if err != nil {
		return HeaderField{}, nil, err
	}
	return f, rest, nil
}
