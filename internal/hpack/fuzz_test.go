package hpack

import (
	"bytes"
	"testing"
)

// FuzzHPACKDecodeFull throws arbitrary bytes at the header-block decoder.
// The decoder must never panic; when it accepts a block, the decoded
// fields must survive a fresh encode→decode round trip semantically.
func FuzzHPACKDecodeFull(f *testing.F) {
	f.Add([]byte{0x82})                       // indexed :method GET
	f.Add([]byte{0x40, 0x01, 'a', 0x01, 'b'}) // incremental literal
	f.Add([]byte{0x3f, 0xe1, 0x1f})           // table size update 4096
	f.Add([]byte{0x10, 0x01, 'k', 0x01, 'v'}) // never-indexed literal
	f.Add([]byte{0x00, 0x81, 0x8c})           // huffman-coded literal name
	// Regression: overlong varint (the old bound accepted 2^32 and let
	// continuation bytes run past any 32-bit value).
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x7f, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		fields, err := NewDecoder().DecodeFull(data)
		if err != nil {
			return
		}
		blk := NewEncoder().AppendHeaderBlock(nil, fields)
		got, err := NewDecoder().DecodeFull(blk)
		if err != nil {
			t.Fatalf("re-encoded block rejected: %v", err)
		}
		if len(got) != len(fields) {
			t.Fatalf("round trip field count %d, want %d", len(got), len(fields))
		}
		for i := range fields {
			if got[i].Name != fields[i].Name || got[i].Value != fields[i].Value || got[i].Sensitive != fields[i].Sensitive {
				t.Fatalf("field %d round trip %+v, want %+v", i, got[i], fields[i])
			}
		}
	})
}

// FuzzHPACKRoundTrip encodes fuzzer-chosen fields and requires the
// decoder to reproduce them exactly — twice on the same connection, so
// the second block exercises dynamic-table hits and the capacity
// handshake rather than only cold encoding.
func FuzzHPACKRoundTrip(f *testing.F) {
	f.Add("content-type", "text/html", false, ":authority", "a.example")
	f.Add("x-custom", "", true, "cookie", "k=v; n=m")
	f.Add("", "", false, "", "")
	f.Add("x-caps", "VaLuE \x00\xff", false, "i", "12345678901234567890")
	f.Fuzz(func(t *testing.T, n1, v1 string, sensitive bool, n2, v2 string) {
		if uint64(len(n1)) > DefaultMaxStringLength || uint64(len(v1)) > DefaultMaxStringLength ||
			uint64(len(n2)) > DefaultMaxStringLength || uint64(len(v2)) > DefaultMaxStringLength {
			t.Skip("beyond the decoder's string bound by construction")
		}
		fields := []HeaderField{
			{Name: n1, Value: v1, Sensitive: sensitive},
			{Name: n2, Value: v2},
		}
		e := NewEncoder()
		d := NewDecoder()
		for round := 0; round < 2; round++ {
			blk := e.AppendHeaderBlock(nil, fields)
			got, err := d.DecodeFull(blk)
			if err != nil {
				t.Fatalf("round %d: decode: %v", round, err)
			}
			if len(got) != len(fields) {
				t.Fatalf("round %d: got %d fields, want %d", round, len(got), len(fields))
			}
			for i := range fields {
				if got[i].Name != fields[i].Name || got[i].Value != fields[i].Value || got[i].Sensitive != fields[i].Sensitive {
					t.Fatalf("round %d field %d: %+v, want %+v", round, i, got[i], fields[i])
				}
			}
		}
	})
}

// FuzzHuffmanRoundTrip: every string must survive Huffman encode→decode,
// and HuffmanEncodeLength must agree with the bytes actually produced.
func FuzzHuffmanRoundTrip(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("www.example.com"))
	f.Add([]byte("no-cache"))
	f.Add([]byte{0x00, 0xff, 0x80, 0x7f}) // symbols with 26-30 bit codes
	f.Fuzz(func(t *testing.T, data []byte) {
		if uint64(len(data)) > DefaultMaxStringLength {
			t.Skip("beyond the decode bound by construction")
		}
		s := string(data)
		enc := AppendHuffmanString(nil, s)
		if want := HuffmanEncodeLength(s); want != uint64(len(enc)) {
			t.Fatalf("HuffmanEncodeLength = %d, encoder produced %d bytes", want, len(enc))
		}
		dec, err := HuffmanDecode(enc, 0)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if dec != s {
			t.Fatalf("round trip %q, want %q", dec, s)
		}
	})
}

// FuzzHuffmanDecode hammers the decoder with raw bytes. The flat-LUT
// production decoder and the bit-walking reference tree decoder must
// agree on every input — decoded bytes and error classification alike —
// so the fuzzer hunts for divergence between the two implementations.
// Accepted inputs must additionally re-encode to the identical byte
// string: the code is prefix-free and the enforced EOS padding is
// canonical, so decode is injective.
func FuzzHuffmanDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xf1, 0xe3, 0xc2, 0xe5, 0xf2, 0x3a, 0x6b, 0xa0, 0xab, 0x90, 0xf4, 0xff}) // "www.example.com"
	f.Add([]byte{0xff})                                                                   // 8-bit ones padding: invalid
	f.Add([]byte{0x08, 0x42, 0x10, 0x84, 0x21})                                           // "11111111", no padding
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := HuffmanDecode(data, 0)
		ts, terr := HuffmanDecodeTree(data, 0)
		if err != terr {
			t.Fatalf("LUT err %v, tree err %v for %x", err, terr, data)
		}
		if s != ts {
			t.Fatalf("LUT decoded %q, tree decoded %q for %x", s, ts, data)
		}
		if err != nil {
			return
		}
		re := AppendHuffmanString(nil, s)
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode of %q = %x, want original input %x", s, re, data)
		}
	})
}
