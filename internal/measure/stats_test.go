package measure

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(xs)
	if s.N != 10 || s.Min != 1 || s.Max != 10 {
		t.Errorf("summary = %+v", s)
	}
	if s.Median != 5.5 {
		t.Errorf("median = %v", s.Median)
	}
	if s.Mean != 5.5 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.P25 != 3.25 || s.P75 != 7.75 {
		t.Errorf("quartiles = %v, %v", s.P25, s.P75)
	}
	if math.Abs(s.IQR-4.5) > 1e-9 {
		t.Errorf("IQR = %v", s.IQR)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestQuantileEdges(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 3 {
		t.Error("extreme quantiles wrong")
	}
	if Quantile(xs, 0.5) != 2 {
		t.Error("median wrong")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile not NaN")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pa := math.Mod(math.Abs(a), 1)
		pb := math.Mod(math.Abs(b), 1)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Quantile(xs, pa) <= Quantile(xs, pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMedianInts(t *testing.T) {
	if MedianInts([]int{1, 2, 3, 4}) != 2.5 {
		t.Error("MedianInts wrong")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{1, 1, 2, 3, 3, 3})
	want := []CDFPoint{{1, 2.0 / 6}, {2, 3.0 / 6}, {3, 1.0}}
	if len(pts) != len(want) {
		t.Fatalf("pts = %v", pts)
	}
	for i := range pts {
		if pts[i] != want[i] {
			t.Errorf("pts[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	if CDFAt(pts, 0.5) != 0 || CDFAt(pts, 1) != 2.0/6 || CDFAt(pts, 2.5) != 0.5 || CDFAt(pts, 99) != 1 {
		t.Error("CDFAt wrong")
	}
}

func TestCDFIsMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		pts := CDF(xs)
		if len(xs) == 0 {
			return pts == nil
		}
		if pts[len(pts)-1].P != 1 {
			return false
		}
		return sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].X < pts[j].X }) &&
			sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].P < pts[j].P })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// cdfAtLinear is the pre-optimization reference implementation.
func cdfAtLinear(pts []CDFPoint, x float64) float64 {
	p := 0.0
	for _, pt := range pts {
		if pt.X > x {
			break
		}
		p = pt.P
	}
	return p
}

// TestCDFAtProperties pins the sort.Search rewrite of CDFAt against the
// CDF invariants: the CDF evaluates to exactly 1 at (and beyond) the
// sample maximum, to 0 below the minimum, and is monotone in x.
func TestCDFAtProperties(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pts := CDF(xs)
		max := xs[0]
		min := xs[0]
		for _, v := range xs {
			if v > max {
				max = v
			}
			if v < min {
				min = v
			}
		}
		if CDFAt(pts, max) != 1.0 {
			return false
		}
		if min > math.Inf(-1) && CDFAt(pts, math.Nextafter(min, math.Inf(-1))) != 0 {
			return false
		}
		// Monotone: CDFAt(x1) ≤ CDFAt(x2) for x1 ≤ x2.
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return CDFAt(pts, a) <= CDFAt(pts, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestCDFAtMatchesLinearScan checks the binary search against the old
// linear scan on arbitrary inputs, including between-point and
// out-of-range evaluation.
func TestCDFAtMatchesLinearScan(t *testing.T) {
	f := func(raw []float64, probes []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		pts := CDF(xs)
		for _, x := range probes {
			if math.IsNaN(x) {
				continue
			}
			if CDFAt(pts, x) != cdfAtLinear(pts, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]int{1, 1, 2, 5})
	if h[1] != 2 || h[2] != 1 || h[5] != 1 || len(h) != 3 {
		t.Errorf("h = %v", h)
	}
}

func TestReductionPct(t *testing.T) {
	if ReductionPct(16, 5) < 68 || ReductionPct(16, 5) > 69 {
		t.Errorf("reduction = %v", ReductionPct(16, 5))
	}
	if ReductionPct(0, 5) != 0 {
		t.Error("zero base not handled")
	}
}

func TestCounterRanking(t *testing.T) {
	c := NewCounter()
	c.Add("google", 50)
	c.Add("cloudflare", 30)
	c.Add("amazon", 20)
	top := c.Top(2)
	if len(top) != 2 || top[0].Key != "google" || top[1].Key != "cloudflare" {
		t.Errorf("top = %v", top)
	}
	if top[0].Share != 50 {
		t.Errorf("share = %v", top[0].Share)
	}
	if c.Total() != 100 || c.Count("amazon") != 20 {
		t.Error("totals wrong")
	}
	if s := c.TableString("title", 3); s == "" {
		t.Error("empty table")
	}
}

func TestCounterTieBreak(t *testing.T) {
	c := NewCounter()
	c.Add("b", 5)
	c.Add("a", 5)
	top := c.Top(0)
	if top[0].Key != "a" || top[1].Key != "b" {
		t.Errorf("tie break = %v", top)
	}
}

// TestTableStringEmptyCounter pins the empty-counter rendering: just
// the title, no phantom 0.00% cumulative row.
func TestTableStringEmptyCounter(t *testing.T) {
	c := NewCounter()
	got := c.TableString("Table X: nothing", 5)
	if got != "Table X: nothing\n" {
		t.Errorf("empty counter table = %q", got)
	}
	if strings.Contains(got, "cumulative") {
		t.Error("empty counter printed a cumulative row")
	}
}

// TestTableStringCumulativeClamp forces per-row shares whose displayed
// sum exceeds 100% and checks the cumulative row is clamped.
func TestTableStringCumulativeClamp(t *testing.T) {
	c := NewCounter()
	// 3 × 1/3: each share is 33.333…%, summing to 100.000…01% in
	// float arithmetic on some n; use many keys to force drift upward.
	for i := 0; i < 7; i++ {
		c.Add(string(rune('a'+i)), 1)
	}
	s := c.TableString("clamp", 0)
	var cum float64
	if _, err := fmt.Sscanf(s[strings.LastIndex(s, "  ")-8:], "%f%% (cumulative)", &cum); err == nil {
		if cum > 100 {
			t.Errorf("cumulative share %v exceeds 100%%", cum)
		}
	}
	// Direct check: the rendered cumulative never exceeds "100.00%".
	if strings.Contains(s, "100.01") || strings.Contains(s, "100.1") {
		t.Errorf("cumulative row over 100%%:\n%s", s)
	}
	// And a non-empty counter still has its cumulative row.
	if !strings.Contains(s, "cumulative") {
		t.Error("cumulative row missing for non-empty counter")
	}
}

func TestSeriesMean(t *testing.T) {
	s := Series{Label: "x", Values: []float64{1, 2, 3, 4}}
	if s.Mean(1, 3) != 2.5 {
		t.Errorf("mean = %v", s.Mean(1, 3))
	}
	if s.Mean(-5, 99) != 2.5 {
		t.Errorf("clamped mean = %v", s.Mean(-5, 99))
	}
	if s.Mean(3, 3) != 0 {
		t.Error("empty window not zero")
	}
}

func TestFormatCDF(t *testing.T) {
	if FormatCDF("dns", []float64{1, 2, 3}) == "" {
		t.Error("empty format")
	}
}

func TestCounterMerge(t *testing.T) {
	a := NewCounter()
	a.Add("x", 3)
	a.Add("y", 1)
	b := NewCounter()
	b.Add("x", 2)
	b.Add("z", 5)
	a.Merge(b)
	if a.Count("x") != 5 || a.Count("y") != 1 || a.Count("z") != 5 {
		t.Errorf("merged counts: x=%d y=%d z=%d", a.Count("x"), a.Count("y"), a.Count("z"))
	}
	if a.Total() != 11 {
		t.Errorf("total = %d", a.Total())
	}
	// Self/nil merges are no-ops.
	a.Merge(a)
	a.Merge(nil)
	if a.Total() != 11 {
		t.Errorf("total after self/nil merge = %d", a.Total())
	}
	// Source counter untouched.
	if b.Total() != 7 {
		t.Errorf("source total = %d", b.Total())
	}
}
