package measure

import (
	"math/rand"
	"reflect"
	"testing"
)

// Top sorts by (Count desc, Key asc); keys are unique map keys, so the
// composite comparison is a strict total order and the ranking must be
// independent of insertion order even with heavily tied counts.
func TestTopTiedCountsInsertionOrderInvariant(t *testing.T) {
	keys := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	counts := []int64{3, 3, 3, 7, 7, 1} // two tie groups
	rank := func(order []int) []RankedEntry {
		c := NewCounter()
		for _, i := range order {
			c.Add(keys[i], counts[i])
		}
		return c.Top(0)
	}
	want := rank([]int{0, 1, 2, 3, 4, 5})
	rs := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		if got := rank(rs.Perm(len(keys))); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Top depends on insertion order: got %v, want %v", trial, got, want)
		}
	}
	// The tie groups themselves must rank lexicographically.
	wantOrder := []string{"delta", "echo", "alpha", "bravo", "charlie", "foxtrot"}
	for i, e := range want {
		if e.Key != wantOrder[i] {
			t.Fatalf("rank %d = %q, want %q", i, e.Key, wantOrder[i])
		}
	}
}
