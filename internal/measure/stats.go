// Package measure provides the statistics toolkit used by the modeling
// and deployment harnesses: order statistics (median, arbitrary
// percentiles, interquartile range), empirical CDFs, frequency
// histograms, and longitudinal time series with control/experiment
// labeling — the quantities every table and figure in the paper reports.
package measure

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the order statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	P25    float64
	P75    float64
	P90    float64
	P95    float64
	P99    float64
	P999   float64 // the SLO-reporting tail quantile (p99.9)
	IQR    float64
}

// Summarize computes a Summary. It returns a zero Summary for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	q := func(p float64) float64 { return quantileSorted(s, p) }
	out := Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   sum / float64(len(s)),
		Median: q(0.50),
		P25:    q(0.25),
		P75:    q(0.75),
		P90:    q(0.90),
		P95:    q(0.95),
		P99:    q(0.99),
		P999:   q(0.999),
	}
	out.IQR = out.P75 - out.P25
	return out
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the numpy default).
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, p)
}

func quantileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	h := p * float64(len(s)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return s[lo]
	}
	return s[lo] + (h-float64(lo))*(s[hi]-s[lo])
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// MedianInts is Median over integer samples.
func MedianInts(xs []int) float64 {
	f := make([]float64, len(xs))
	for i, v := range xs {
		f[i] = float64(v)
	}
	return Median(f)
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // fraction of samples ≤ X
}

// CDF computes the empirical CDF of xs with one point per distinct value.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var pts []CDFPoint
	n := float64(len(s))
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j] == s[i] {
			j++
		}
		pts = append(pts, CDFPoint{X: s[i], P: float64(j) / n})
		i = j
	}
	return pts
}

// CDFAt evaluates an empirical CDF at x in O(log n): the points are
// sorted by X (the CDF invariant), so the answer is the P of the last
// point with X ≤ x, found by binary search. Report passes evaluate
// CDFs once per rank over the whole corpus, so the former linear scan
// made those passes O(n²) in the number of distinct values.
func CDFAt(pts []CDFPoint, x float64) float64 {
	i := sort.Search(len(pts), func(i int) bool { return pts[i].X > x })
	if i == 0 {
		return 0
	}
	return pts[i-1].P
}

// Histogram counts samples per integer value.
func Histogram(xs []int) map[int]int {
	h := make(map[int]int)
	for _, v := range xs {
		h[v]++
	}
	return h
}

// FormatCDF renders selected percentiles of a CDF for report output.
func FormatCDF(name string, xs []float64) string {
	s := Summarize(xs)
	return fmt.Sprintf("%-34s n=%-7d p25=%-8.1f p50=%-8.1f p75=%-8.1f p90=%-8.1f p99=%.1f",
		name, s.N, s.P25, s.Median, s.P75, s.P90, s.P99)
}

// ReductionPct returns the percentage reduction from base to new
// (positive = improvement).
func ReductionPct(base, now float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - now) / base
}

// Counter tallies string-keyed occurrences and reports ranked shares,
// the shape of Tables 2, 4, 5, 6, 7 and 9.
type Counter struct {
	counts map[string]int64
	total  int64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int64)} }

// Add increments key by n.
func (c *Counter) Add(key string, n int64) {
	c.counts[key] += n
	c.total += n
}

// Merge adds every count of other into c. Merging is associative and
// commutative, so shard counters recombine deterministically in any
// order — the property the parallel report passes rely on.
func (c *Counter) Merge(other *Counter) {
	if other == nil || other == c {
		return
	}
	for k, v := range other.counts {
		c.counts[k] += v
	}
	c.total += other.total
}

// Total returns the sum of all counts.
func (c *Counter) Total() int64 { return c.total }

// Count returns the count for one key.
func (c *Counter) Count(key string) int64 { return c.counts[key] }

// RankedEntry is one row of a ranked share table.
type RankedEntry struct {
	Key   string
	Count int64
	Share float64 // percent of total
}

// Top returns the n highest-count entries with their share of the total.
// Ties break lexicographically for determinism.
func (c *Counter) Top(n int) []RankedEntry {
	entries := make([]RankedEntry, 0, len(c.counts))
	for k, v := range c.counts {
		share := 0.0
		if c.total > 0 {
			share = 100 * float64(v) / float64(c.total)
		}
		entries = append(entries, RankedEntry{Key: k, Count: v, Share: share})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Key < entries[j].Key
	})
	if n > 0 && len(entries) > n {
		entries = entries[:n]
	}
	return entries
}

// TableString renders the top-n entries as an aligned text table. An
// empty counter renders as the bare title (no bogus 0.00% cumulative
// row), and the cumulative share is clamped to 100% so float rounding
// across many rows can never report more than the whole.
func (c *Counter) TableString(title string, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	rows := c.Top(n)
	if len(rows) == 0 {
		return b.String()
	}
	cum := 0.0
	for i, e := range rows {
		cum += e.Share
		fmt.Fprintf(&b, "%3d  %-42s %12d  %6.2f%%\n", i+1, e.Key, e.Count, e.Share)
	}
	if cum > 100 {
		cum = 100
	}
	fmt.Fprintf(&b, "     %-42s %12s  %6.2f%% (cumulative)\n", "", "", cum)
	return b.String()
}

// Series is a labeled longitudinal series of per-bucket values, e.g.
// daily new-TLS-connection counts for control vs experiment (Figure 8).
type Series struct {
	Label  string
	Values []float64
}

// Mean returns the mean of the series values within [lo, hi) bucket
// indexes, clamped to the series bounds.
func (s Series) Mean(lo, hi int) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.Values) {
		hi = len(s.Values)
	}
	if hi <= lo {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}
