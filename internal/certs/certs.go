// Package certs is the certificate substrate for the reproduction: a
// small certificate authority that issues real X.509 certificates with
// configurable Subject Alternative Name (SAN) sets, plus the SAN-set
// arithmetic the paper's §4.3 model and §5.1 deployment rely on:
//
//   - diffing a certificate's SANs against the names a webpage needs;
//   - renewing certificates with added SANs;
//   - issuing byte-equalized control/experiment certificate pairs
//     (Figure 6), where the control group receives an unused name of
//     exactly the same byte length as the experiment group's third-party
//     domain;
//   - wire-size accounting, including the §6.5 observation that
//     certificates above the 16 KB TLS record size cost extra records
//     and round trips.
package certs

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"sort"
	"strings"
	"time"
)

// tlsRecordSize is the maximum TLS record payload (§6.5 of the paper).
const tlsRecordSize = 16 * 1024

// A CA issues leaf certificates chained to a self-signed root.
type CA struct {
	// Name is the issuer organization, e.g. "Cloudflare Inc ECC CA-3".
	Name string

	root    *x509.Certificate
	rootDER []byte
	key     *ecdsa.PrivateKey

	serial int64
	now    func() time.Time
}

// NewCA creates a certificate authority with a fresh self-signed root.
func NewCA(name string) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("certs: generating CA key: %w", err)
	}
	ca := &CA{Name: name, key: key, serial: 1, now: time.Now}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject: pkix.Name{
			Organization: []string{name},
			CommonName:   name + " Root",
		},
		NotBefore:             ca.now().Add(-time.Hour),
		NotAfter:              ca.now().Add(10 * 365 * 24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("certs: creating CA root: %w", err)
	}
	root, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	ca.root = root
	ca.rootDER = der
	return ca, nil
}

// Root returns the CA root certificate for client trust pools.
func (ca *CA) Root() *x509.Certificate { return ca.root }

// Pool returns an x509.CertPool containing only this CA's root.
func (ca *CA) Pool() *x509.CertPool {
	p := x509.NewCertPool()
	p.AddCert(ca.root)
	return p
}

// A Leaf is an issued certificate plus its private key, ready for use in
// a tls.Config and inspectable for SAN analysis.
type Leaf struct {
	Cert   *x509.Certificate
	DER    []byte
	key    *ecdsa.PrivateKey
	issuer *CA
}

// Issue creates a leaf certificate. The first name is used as the
// subject common name; all names land in the SAN extension, as browsers
// require.
func (ca *CA) Issue(names ...string) (*Leaf, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("certs: certificate needs at least one name")
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	ca.serial++
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(ca.serial),
		Subject: pkix.Name{
			Organization: []string{ca.Name},
			CommonName:   names[0],
		},
		NotBefore:   ca.now().Add(-time.Hour),
		NotAfter:    ca.now().Add(90 * 24 * time.Hour),
		KeyUsage:    x509.KeyUsageDigitalSignature,
		ExtKeyUsage: []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		DNSNames:    dedupe(names),
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.root, &key.PublicKey, ca.key)
	if err != nil {
		return nil, fmt.Errorf("certs: issuing %s: %w", names[0], err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Leaf{Cert: cert, DER: der, key: key, issuer: ca}, nil
}

// Renew reissues the leaf with additional SAN names, preserving the
// existing set. This is the §5.1 certificate modification operation.
func (l *Leaf) Renew(addNames ...string) (*Leaf, error) {
	names := append(append([]string(nil), l.Cert.DNSNames...), addNames...)
	return l.issuer.Issue(dedupe(names)...)
}

// TLSCertificate assembles a tls.Certificate with the full chain.
func (l *Leaf) TLSCertificate() tls.Certificate {
	return tls.Certificate{
		Certificate: [][]byte{l.DER, l.issuer.rootDER},
		PrivateKey:  l.key,
		Leaf:        l.Cert,
	}
}

// SANs returns the certificate's DNS SAN entries, sorted.
func (l *Leaf) SANs() []string {
	out := append([]string(nil), l.Cert.DNSNames...)
	sort.Strings(out)
	return out
}

// Covers reports whether the certificate is valid for host, honoring
// wildcard entries.
func (l *Leaf) Covers(host string) bool {
	return l.Cert.VerifyHostname(host) == nil
}

// WireSize returns the DER-encoded size of the leaf in bytes.
func (l *Leaf) WireSize() int { return len(l.DER) }

// ChainWireSize returns the total DER size of leaf + issuer chain.
func (l *Leaf) ChainWireSize() int { return len(l.DER) + len(l.issuer.rootDER) }

// TLSRecords returns how many TLS records the certificate chain needs
// during the handshake (§6.5: chains above 16 KB spill into additional
// records and can cost extra round trips).
func (l *Leaf) TLSRecords() int {
	n := l.ChainWireSize()
	return (n + tlsRecordSize - 1) / tlsRecordSize
}

// SANDiff returns the names in needed that cert does not already cover,
// sorted. This is the per-website "changes required" computation of
// §4.3: names already covered (including via wildcards) need no change.
func SANDiff(cert *x509.Certificate, needed []string) []string {
	var missing []string
	seen := map[string]bool{}
	for _, n := range needed {
		n = strings.ToLower(strings.TrimSpace(n))
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		if cert.VerifyHostname(n) != nil {
			missing = append(missing, n)
		}
	}
	sort.Strings(missing)
	return missing
}

// EqualLengthControlName derives an unused control-group domain of
// exactly the same byte length as target (Figure 6): the target's first
// label is prefixed with zeros after dropping leading characters, e.g.
// "unpopular.resource.com" -> "00popular.resource.com". The result never
// equals the target.
func EqualLengthControlName(target string, pad int) string {
	if pad <= 0 {
		pad = 2
	}
	labels := strings.SplitN(target, ".", 2)
	first := labels[0]
	if pad > len(first) {
		pad = len(first)
	}
	control := strings.Repeat("0", pad) + first[pad:]
	if len(labels) == 2 {
		control += "." + labels[1]
	}
	if control == target {
		// All-zero label collided; flip to "1"s.
		control = strings.Repeat("1", pad) + first[pad:]
		if len(labels) == 2 {
			control += "." + labels[1]
		}
	}
	return control
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		s = strings.ToLower(strings.TrimSpace(s))
		if s == "" || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}
