package certs

import (
	"crypto/x509"
	"strings"
	"testing"
	"testing/quick"
)

func mustCA(t *testing.T) *CA {
	t.Helper()
	ca, err := NewCA("Test CA")
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func TestIssueAndVerify(t *testing.T) {
	ca := mustCA(t)
	leaf, err := ca.Issue("www.example.com", "example.com", "*.cdn.example.com")
	if err != nil {
		t.Fatal(err)
	}
	for _, host := range []string{"www.example.com", "example.com", "img.cdn.example.com"} {
		if !leaf.Covers(host) {
			t.Errorf("certificate does not cover %s", host)
		}
	}
	if leaf.Covers("other.example.org") {
		t.Error("certificate covers unrelated host")
	}
	// The chain must verify against the CA pool.
	if _, err := leaf.Cert.Verify(verifyOpts(ca)); err != nil {
		t.Errorf("chain verification failed: %v", err)
	}
}

func TestIssueRequiresName(t *testing.T) {
	ca := mustCA(t)
	if _, err := ca.Issue(); err == nil {
		t.Error("issuing a certificate with no names succeeded")
	}
}

func TestIssueDedupesNames(t *testing.T) {
	ca := mustCA(t)
	leaf, err := ca.Issue("a.example", "A.example", " a.example ", "b.example")
	if err != nil {
		t.Fatal(err)
	}
	if got := leaf.SANs(); len(got) != 2 {
		t.Errorf("SANs = %v, want deduped pair", got)
	}
}

func TestRenewAddsSANs(t *testing.T) {
	ca := mustCA(t)
	leaf, err := ca.Issue("site.example")
	if err != nil {
		t.Fatal(err)
	}
	renewed, err := leaf.Renew("third-party.example", "fonts.example")
	if err != nil {
		t.Fatal(err)
	}
	for _, host := range []string{"site.example", "third-party.example", "fonts.example"} {
		if !renewed.Covers(host) {
			t.Errorf("renewed cert missing %s", host)
		}
	}
	if len(renewed.SANs()) != 3 {
		t.Errorf("SANs = %v", renewed.SANs())
	}
	// The original is untouched.
	if leaf.Covers("third-party.example") {
		t.Error("renewal mutated original leaf")
	}
}

func TestSANDiff(t *testing.T) {
	ca := mustCA(t)
	leaf, err := ca.Issue("www.site.example", "*.shard.site.example")
	if err != nil {
		t.Fatal(err)
	}
	needed := []string{
		"www.site.example",        // covered directly
		"img1.shard.site.example", // covered by wildcard
		"cdnjs.provider.example",  // missing
		"fonts.provider.example",  // missing
		"CDNJS.provider.example",  // duplicate of missing, case-folded
	}
	got := SANDiff(leaf.Cert, needed)
	want := []string{"cdnjs.provider.example", "fonts.provider.example"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("SANDiff = %v, want %v", got, want)
	}
}

func TestSANDiffEmptyWhenAllCovered(t *testing.T) {
	ca := mustCA(t)
	leaf, _ := ca.Issue("a.example", "b.example")
	if d := SANDiff(leaf.Cert, []string{"a.example", "b.example"}); len(d) != 0 {
		t.Errorf("diff = %v, want empty", d)
	}
}

func TestEqualLengthControlName(t *testing.T) {
	// The Figure 6 example: unpopular.resource.com -> 00popular.resource.com.
	got := EqualLengthControlName("unpopular.resource.com", 2)
	if got != "00popular.resource.com" {
		t.Errorf("control name = %q", got)
	}
	if len(got) != len("unpopular.resource.com") {
		t.Error("length not preserved")
	}
}

func TestEqualLengthControlNameProperties(t *testing.T) {
	f := func(label string, domain string, pad uint8) bool {
		label = sanitizeLabel(label)
		domain = sanitizeLabel(domain)
		if label == "" || domain == "" {
			return true
		}
		target := label + "." + domain + ".com"
		got := EqualLengthControlName(target, int(pad%5)+1)
		return len(got) == len(target) && got != target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sanitizeLabel(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' {
			b.WriteRune(r)
		}
	}
	if b.Len() > 20 {
		return b.String()[:20]
	}
	return b.String()
}

func TestByteEqualizedReissue(t *testing.T) {
	// §5.1: experiment certs gain the third-party domain; control certs
	// gain an unused domain of identical byte length. Wire-size growth
	// must match to within DER length-encoding noise.
	ca := mustCA(t)
	third := "cdnjs.cloudflare.com"
	control := EqualLengthControlName(third, 2)
	if len(control) != len(third) {
		t.Fatal("control name length mismatch")
	}

	base1, _ := ca.Issue("site-one.example")
	base2, _ := ca.Issue("site-two.example")
	exp, err := base1.Renew(third)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := base2.Renew(control)
	if err != nil {
		t.Fatal(err)
	}
	growExp := exp.WireSize() - base1.WireSize()
	growCtl := ctl.WireSize() - base2.WireSize()
	if diff := growExp - growCtl; diff < -4 || diff > 4 {
		t.Errorf("asymmetric growth: experiment +%d, control +%d", growExp, growCtl)
	}
}

func TestTLSRecordAccounting(t *testing.T) {
	ca := mustCA(t)
	small, _ := ca.Issue("small.example")
	if small.TLSRecords() != 1 {
		t.Errorf("small cert records = %d", small.TLSRecords())
	}
	// A certificate with hundreds of long SANs exceeds one TLS record.
	names := make([]string, 0, 600)
	names = append(names, "big.example")
	for i := 0; i < 599; i++ {
		names = append(names, strings.Repeat("x", 20)+"-"+strings.Repeat("s", i%10)+num(i)+".huge-certificate-test.example")
	}
	big, err := ca.Issue(names...)
	if err != nil {
		t.Fatal(err)
	}
	if big.WireSize() <= tlsRecordSize {
		t.Skipf("big cert only %d bytes", big.WireSize())
	}
	if big.TLSRecords() < 2 {
		t.Errorf("big cert records = %d, size %d", big.TLSRecords(), big.WireSize())
	}
}

func num(i int) string {
	const digits = "0123456789"
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{digits[i%10]}, b...)
		i /= 10
	}
	return string(b)
}

func TestTLSCertificateUsable(t *testing.T) {
	ca := mustCA(t)
	leaf, _ := ca.Issue("h2.example")
	tc := leaf.TLSCertificate()
	if len(tc.Certificate) != 2 {
		t.Errorf("chain length = %d", len(tc.Certificate))
	}
	if tc.PrivateKey == nil || tc.Leaf == nil {
		t.Error("incomplete tls.Certificate")
	}
}

func verifyOpts(ca *CA) x509.VerifyOptions {
	return x509.VerifyOptions{Roots: ca.Pool()}
}
