// Package scenario is the matrix engine: a deterministic cross-product
// sweep over client personas × page archetypes × network profiles ×
// resolver transports. Each cell replays one archetype's corpus through
// one persona's connection pool, priced under one network profile, and
// reports who coalesces, who shards, and what it costs — connections
// opened, sockets wasted, setup milliseconds, coalescing rate.
//
// Every cell is a pure function of (seed, cell coordinates): the
// cross-product fans out through internal/parallel and the output is
// byte-identical at any worker count.
package scenario

import (
	"fmt"

	"respectorigin/internal/browser"
)

// Persona is a client model: a coalescing policy plus the pool-shape
// knobs real browsers differ on — total and per-host connection caps
// and how many speculative pre-connect sockets are raced at page start.
type Persona struct {
	Name   string
	Policy browser.Policy

	// MaxConns / MaxConnsPerHost bound the connection pool (0 = that
	// dimension unbounded); see browser.Browser.
	MaxConns        int
	MaxConnsPerHost int

	// PreconnectN speculative sockets are opened to the first distinct
	// hostnames of each page before any request runs. Sockets no
	// request ends up riding are the persona's wasted-socket cost.
	PreconnectN int

	// SkipOriginDNS applies the §6.8 recommended client change (only
	// meaningful with PolicyFirefoxOrigin).
	SkipOriginDNS bool
}

// Personas returns the built-in client personas in matrix order.
func Personas() []Persona {
	return []Persona{
		// Chrome-like: connected-IP-only coalescing, a big pool with
		// per-host multiplexing at 6, and aggressive pre-connect.
		{Name: "chrome", Policy: browser.PolicyChromium, MaxConns: 256, MaxConnsPerHost: 6, PreconnectN: 4},
		// Safari-like: transitive IP coalescing over the cached answer
		// set, a mid-sized pool, no speculative sockets.
		{Name: "safari", Policy: browser.PolicyFirefox, MaxConns: 128, MaxConnsPerHost: 6},
		// Mobile small-pool: ORIGIN-frame coalescing with the paper's
		// recommended DNS skip, under tight memory-driven caps.
		{Name: "mobile", Policy: browser.PolicyFirefoxOrigin, MaxConns: 10, MaxConnsPerHost: 2, SkipOriginDNS: true},
	}
}

// PersonaByName resolves a built-in persona.
func PersonaByName(name string) (Persona, error) {
	for _, p := range Personas() {
		if p.Name == name {
			return p, nil
		}
	}
	return Persona{}, fmt.Errorf("scenario: unknown persona %q", name)
}
