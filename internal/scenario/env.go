package scenario

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"respectorigin/internal/har"
)

// pageEnv is the browser.Environment a replayed page presents: DNS
// answers, certificates, origin sets and server reachability
// reconstructed from the page's own entries. It is mutable — a
// mid-crawl CDN migration recorded in the corpus (a later NewDNS entry
// with a different answer) re-homes the host as the replay reaches it.
type pageEnv struct {
	addrs map[string][]netip.Addr // current answer set per host
	sans  map[string][]string     // certificate SANs per SNI host

	// The first-party cluster (root + sharded subdomains). Cluster
	// servers are interchangeable — the site operator controls them all
	// — so any current cluster address serves any cluster hostname, and
	// cluster connections advertise the cluster as their origin set.
	// That is what lets ORIGIN-frame coalescing merge shards that have
	// no address overlap, and what makes pre-migration connections go
	// stale (421) once the cluster re-homes.
	cluster      map[string]bool
	clusterAddrs map[netip.Addr]bool
	origins      []string
}

func newPageEnv(p *har.Page) *pageEnv {
	e := &pageEnv{
		addrs:        map[string][]netip.Addr{},
		sans:         map[string][]string{},
		cluster:      map[string]bool{},
		clusterAddrs: map[netip.Addr]bool{},
	}
	apexSuffix := "." + strings.TrimPrefix(p.Host, "www.")
	for i := range p.Entries {
		en := &p.Entries[i]
		if en.NewDNS && e.addrs[en.Host] == nil {
			e.addrs[en.Host] = en.DNSAnswer
		}
		if len(en.CertSANs) > 0 && e.sans[en.Host] == nil {
			e.sans[en.Host] = en.CertSANs
		}
		if en.Host == p.Host || strings.HasSuffix(en.Host, apexSuffix) {
			e.cluster[en.Host] = true
		}
	}
	e.origins = make([]string, 0, len(e.cluster))
	for h := range e.cluster {
		e.origins = append(e.origins, h)
	}
	sort.Strings(e.origins)
	e.rebuildClusterAddrs()
	return e
}

func (e *pageEnv) rebuildClusterAddrs() {
	e.clusterAddrs = map[netip.Addr]bool{}
	for h := range e.cluster {
		for _, a := range e.addrs[h] {
			e.clusterAddrs[a] = true
		}
	}
}

// migrate re-homes host onto a new answer set (the replayed form of a
// recorded re-resolution).
func (e *pageEnv) migrate(host string, addrs []netip.Addr) {
	e.addrs[host] = addrs
	if e.cluster[host] {
		e.rebuildClusterAddrs()
	}
}

// answerChanged reports whether the entry records a re-resolution whose
// answer differs from the environment's current view of the host.
func (e *pageEnv) answerChanged(en *har.Entry) bool {
	if !en.NewDNS || len(en.DNSAnswer) == 0 {
		return false
	}
	cur := e.addrs[en.Host]
	if len(cur) != len(en.DNSAnswer) {
		return true
	}
	for i, a := range cur {
		if a != en.DNSAnswer[i] {
			return true
		}
	}
	return false
}

// --- browser.Environment ---

func (e *pageEnv) Lookup(host string) ([]netip.Addr, error) {
	addrs := e.addrs[host]
	if len(addrs) == 0 {
		return nil, fmt.Errorf("scenario: no recorded answer for %s", host)
	}
	return addrs, nil
}

func (e *pageEnv) CertSANs(host string, ip netip.Addr) []string {
	if sans := e.sans[host]; sans != nil {
		return sans
	}
	return []string{host}
}

func (e *pageEnv) OriginSet(host string, ip netip.Addr) []string {
	if e.cluster[host] {
		return e.origins
	}
	return nil
}

func (e *pageEnv) Reachable(host string, ip netip.Addr) bool {
	if e.cluster[host] {
		return e.clusterAddrs[ip]
	}
	for _, a := range e.addrs[host] {
		if a == ip {
			return true
		}
	}
	return false
}
