package scenario

import (
	"bytes"
	"fmt"

	"respectorigin/internal/browser"
	"respectorigin/internal/cache"
	"respectorigin/internal/corpus"
	"respectorigin/internal/har"
	"respectorigin/internal/netsim"
	"respectorigin/internal/parallel"
	"respectorigin/internal/webgen"
)

// Config parameterizes a matrix sweep. Zero-value slices select the
// full built-in axis.
type Config struct {
	// Seed and Sites parameterize the per-archetype corpora. Sites is
	// the attempt count per archetype (the usual success rate applies).
	Seed  int64
	Sites int
	// Workers fans the cell cross-product out; ≤ 0 selects GOMAXPROCS.
	// Output is byte-identical for every worker count.
	Workers int

	Personas   []Persona
	Archetypes []webgen.Archetype
	Profiles   []netsim.Profile
	Transports []cache.DNSTransport
}

// DefaultConfig returns the full built-in matrix at a small corpus
// scale.
func DefaultConfig() Config {
	return Config{
		Seed:       1,
		Sites:      150,
		Personas:   Personas(),
		Archetypes: webgen.Archetypes(),
		Profiles:   netsim.Profiles(),
		Transports: []cache.DNSTransport{cache.TransportDo53, cache.TransportDoH},
	}
}

// Cell is one point of the cross-product: one persona replaying one
// archetype's corpus under one network profile and resolver transport.
type Cell struct {
	Persona   string `json:"persona"`
	Archetype string `json:"archetype"`
	Profile   string `json:"profile"`
	DNS       string `json:"dns"`

	Pages    int `json:"pages"`
	Requests int `json:"requests"`

	// Connection economy.
	Conns     int `json:"conns"`          // fresh connections opened by requests
	Preconns  int `json:"preconns"`       // speculative sockets opened
	Wasted    int `json:"wasted_sockets"` // speculative sockets never ridden
	Evicted   int `json:"evicted"`        // connections closed by cap pressure
	Reused    int `json:"reused"`         // requests satisfied on a pooled connection
	Coalesced int `json:"coalesced"`      // reuses that crossed hostnames
	ViaOrigin int `json:"via_origin"`     // coalesced via an ORIGIN frame
	Got421    int `json:"got_421"`        // reuse attempts bounced with 421

	// Resolution and pricing.
	DNSQueries int     `json:"dns_queries"` // wire queries (cache hits excluded)
	SetupMs    float64 `json:"setup_ms"`    // modelled DNS + connection setup cost
}

// CoalescePct is the share of requests satisfied by cross-host
// coalescing.
func (c Cell) CoalescePct() float64 {
	if c.Requests == 0 {
		return 0
	}
	return 100 * float64(c.Coalesced) / float64(c.Requests)
}

// Result is a completed sweep: cells in cross-product order
// (archetype → persona → profile → transport).
type Result struct {
	Cells []Cell
}

// Run executes the sweep. One corpus is generated per archetype and
// streamed through the corpus API (encoded once, decoded by every cell
// that replays it); cells fan out through internal/parallel in fixed
// cross-product order, so the result — and every byte derived from it —
// is identical at any worker count.
func Run(cfg Config) (*Result, error) {
	if cfg.Sites <= 0 {
		return nil, fmt.Errorf("scenario: Sites must be positive")
	}
	if len(cfg.Personas) == 0 {
		cfg.Personas = Personas()
	}
	if len(cfg.Archetypes) == 0 {
		cfg.Archetypes = webgen.Archetypes()
	}
	if len(cfg.Profiles) == 0 {
		cfg.Profiles = netsim.Profiles()
	}
	if len(cfg.Transports) == 0 {
		cfg.Transports = []cache.DNSTransport{cache.TransportDo53, cache.TransportDoH}
	}
	for _, a := range cfg.Archetypes {
		if err := a.Validate(); err != nil {
			return nil, err
		}
	}
	for _, pr := range cfg.Profiles {
		if err := pr.Params.Validate(); err != nil {
			return nil, fmt.Errorf("scenario: profile %q: %w", pr.Name, err)
		}
	}

	// One corpus per archetype, round-tripped through the corpus API:
	// cells replay the decoded stream, never the generator directly.
	blobs := make([][]byte, len(cfg.Archetypes))
	for i, a := range cfg.Archetypes {
		var buf bytes.Buffer
		w := corpus.NewWriter(&buf, corpus.FormatColumnar)
		gcfg := webgen.DefaultConfig()
		gcfg.Sites = cfg.Sites
		gcfg.Seed = cfg.Seed
		gcfg.Workers = cfg.Workers
		gcfg.Archetype = a
		if _, err := webgen.GenerateStream(gcfg, w.Write); err != nil {
			return nil, err
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		blobs[i] = buf.Bytes()
	}

	type spec struct {
		blob      []byte
		archetype webgen.Archetype
		persona   Persona
		profile   netsim.Profile
		transport cache.DNSTransport
	}
	var specs []spec
	for i, a := range cfg.Archetypes {
		for _, pe := range cfg.Personas {
			for _, pr := range cfg.Profiles {
				for _, t := range cfg.Transports {
					specs = append(specs, spec{blobs[i], a, pe, pr, t})
				}
			}
		}
	}

	type cellOrErr struct {
		cell Cell
		err  error
	}
	results := parallel.Map(len(specs), cfg.Workers, func(i int) cellOrErr {
		s := specs[i]
		c, err := runCell(s.blob, s.archetype, s.persona, s.profile, s.transport)
		return cellOrErr{c, err}
	})
	cells := make([]Cell, 0, len(results))
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		cells = append(cells, r.cell)
	}
	return &Result{Cells: cells}, nil
}

// runCell replays one archetype corpus through one persona under one
// profile and transport. The browser's pool resets per page (each load
// is a fresh browsing context) while the warm-path cache persists
// across the cell, so repeated third parties resolve and resume warm —
// under the cell's own transport key.
func runCell(blob []byte, archetype webgen.Archetype, persona Persona, profile netsim.Profile, transport cache.DNSTransport) (Cell, error) {
	cell := Cell{
		Persona:   persona.Name,
		Archetype: archetype.String(),
		Profile:   profile.Name,
		DNS:       transport.String(),
	}
	cc := cache.New(cache.Options{})
	b := browser.New(persona.Policy,
		browser.WithPoolLimits(persona.MaxConns, persona.MaxConnsPerHost),
		browser.WithSkipOriginDNS(persona.SkipOriginDNS),
		browser.WithDNSTransport(transport),
		browser.WithCache(cc),
	)

	resolverConns := 0 // pages that touched the DoH resolver's wire
	resumed := 0
	r := corpus.NewReader(bytes.NewReader(blob), corpus.FormatColumnar)
	err := corpus.ForEach(r, func(p *har.Page) error {
		env := newPageEnv(p)
		// Each page load is a fresh browsing context: the pool and the
		// per-page totals reset, the warm-path cache persists.
		b.Reset()
		cell.Pages++

		if persona.PreconnectN > 0 {
			seen := map[string]bool{}
			opened := 0
			for i := range p.Entries {
				if opened >= persona.PreconnectN {
					break
				}
				h := p.Entries[i].Host
				if seen[h] {
					continue
				}
				seen[h] = true
				if b.Preconnect(env, h) {
					opened++
				}
			}
		}

		for i := range p.Entries {
			en := &p.Entries[i]
			if env.answerChanged(en) {
				// A recorded re-resolution (CDN migration): the
				// environment re-homes the host and the client's cached
				// answer is superseded the way a TTL expiry would.
				env.migrate(en.Host, en.DNSAnswer)
				cc.PutDNSVia(transport, en.Host, en.DNSAnswer, cc.DefaultTTL())
			}
			out := b.Request(env, en.Host)
			cell.Requests++
			if out.Coalesced() {
				cell.Coalesced++
			}
			if out.ViaOrigin {
				cell.ViaOrigin++
			}
		}
		cell.Conns += b.TotalNewConn
		cell.Preconns += b.TotalPreconns
		cell.Wasted += b.TotalPreconns - b.TotalPreconnsUsed
		cell.Evicted += b.TotalEvicted
		cell.Reused += b.TotalReused
		cell.Got421 += b.Total421
		cell.DNSQueries += b.TotalDNS
		resumed += b.TotalResumed
		if b.TotalDNS > 0 {
			resolverConns++
		}
		return nil
	})
	if err != nil {
		return cell, err
	}
	cell.SetupMs = setupMs(cell, resumed, resolverConns, profile.Params, transport)
	return cell, nil
}

// setupMs prices the cell's connection economy under the profile, in
// pure arithmetic from the profile parameters (no RNG — cells must be
// byte-stable). A full TLS setup costs the TCP round trip, the
// handshake round trips, and certificate verification; a resumed
// handshake skips verification. Do53 resolution costs DNSMs per wire
// query; DoH pays one resolver-connection setup per page that reached
// the wire plus one resolver round trip per query — the transport's
// amortization trade.
func setupMs(cell Cell, resumed, resolverConns int, p netsim.Params, t cache.DNSTransport) float64 {
	scale := p.CostScale()
	fullMs := (p.RTTMs + p.TLSRoundTrips*p.RTTMs + p.CertVerifyMs) * scale
	resumedMs := (p.RTTMs + p.TLSRoundTrips*p.RTTMs) * scale
	sockets := cell.Conns + cell.Preconns
	full := sockets - resumed
	if full < 0 {
		full = 0
	}
	ms := float64(full)*fullMs + float64(resumed)*resumedMs
	switch t {
	case cache.TransportDoH:
		ms += float64(resolverConns) * (p.RTTMs + p.TLSRoundTrips*p.RTTMs) * scale
		ms += float64(cell.DNSQueries) * p.RTTMs * scale
	default:
		ms += float64(cell.DNSQueries) * p.DNSMs * scale
	}
	return ms
}
