package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table renders the sweep as the "who coalesces, who shards, what it
// costs" matrix: one row per cell in cross-product order, fixed-width
// columns, deterministic byte for byte.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario matrix: who coalesces, who shards, what it costs\n")
	fmt.Fprintf(&b, "%-8s %-10s %-10s %-5s %6s %7s %7s %7s %6s %6s %6s %9s %6s %12s\n",
		"persona", "archetype", "profile", "dns",
		"pages", "reqs", "conns", "reused", "coal%", "421", "evict", "wasted", "dnsq", "setup-ms")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-8s %-10s %-10s %-5s %6d %7d %7d %7d %6.2f %6d %6d %9d %6d %12.1f\n",
			c.Persona, c.Archetype, c.Profile, c.DNS,
			c.Pages, c.Requests, c.Conns, c.Reused, c.CoalescePct(),
			c.Got421, c.Evicted, c.Wasted, c.DNSQueries, c.SetupMs)
	}
	return b.String()
}

// WriteNDJSON emits one JSON object per cell, in cross-product order —
// the machine-readable twin of Table for the bench harness and diffing.
func (r *Result) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, c := range r.Cells {
		if err := enc.Encode(c); err != nil {
			return err
		}
	}
	return nil
}
