package scenario

import (
	"fmt"
	"strings"

	"respectorigin/internal/cache"
	"respectorigin/internal/netsim"
	"respectorigin/internal/webgen"
)

// ParseTransport resolves a resolver-transport selector name.
func ParseTransport(name string) (cache.DNSTransport, error) {
	switch name {
	case "do53":
		return cache.TransportDo53, nil
	case "doh":
		return cache.TransportDoH, nil
	}
	return 0, fmt.Errorf("scenario: unknown dns transport %q (do53, doh)", name)
}

// ConfigFromSelectors builds a sweep Config from the CLI's
// comma-separated axis selectors. An empty selector keeps the full
// built-in axis; names resolve against the built-ins in the order
// given.
func ConfigFromSelectors(seed int64, sites, workers int, personas, archetypes, profiles, transports string) (Config, error) {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Sites = sites
	cfg.Workers = workers
	if personas != "" {
		cfg.Personas = nil
		for _, name := range strings.Split(personas, ",") {
			p, err := PersonaByName(strings.TrimSpace(name))
			if err != nil {
				return cfg, err
			}
			cfg.Personas = append(cfg.Personas, p)
		}
	}
	if archetypes != "" {
		cfg.Archetypes = nil
		for _, name := range strings.Split(archetypes, ",") {
			a := webgen.Archetype(strings.TrimSpace(name))
			if err := a.Validate(); err != nil {
				return cfg, err
			}
			cfg.Archetypes = append(cfg.Archetypes, a)
		}
	}
	if profiles != "" {
		cfg.Profiles = nil
		for _, name := range strings.Split(profiles, ",") {
			p, err := netsim.ProfileByName(strings.TrimSpace(name))
			if err != nil {
				return cfg, err
			}
			cfg.Profiles = append(cfg.Profiles, p)
		}
	}
	if transports != "" {
		cfg.Transports = nil
		for _, name := range strings.Split(transports, ",") {
			t, err := ParseTransport(strings.TrimSpace(name))
			if err != nil {
				return cfg, err
			}
			cfg.Transports = append(cfg.Transports, t)
		}
	}
	return cfg, nil
}
