package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"respectorigin/internal/cache"
	"respectorigin/internal/netsim"
	"respectorigin/internal/webgen"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

func smallConfig(sites, workers int) Config {
	cfg := DefaultConfig()
	cfg.Sites = sites
	cfg.Workers = workers
	return cfg
}

// renderAll is the full byte surface of a sweep: the table and the
// NDJSON cells.
func renderAll(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(res.Table())
	if err := res.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The engine's core guarantee: the full matrix output is byte-identical
// at any worker count.
func TestMatrixWorkerInvariant(t *testing.T) {
	seq := renderAll(t, mustRun(t, smallConfig(30, 1)))
	for _, w := range []int{4, 16} {
		if got := renderAll(t, mustRun(t, smallConfig(30, w))); !bytes.Equal(got, seq) {
			t.Fatalf("Workers=%d: matrix output differs from sequential", w)
		}
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The default matrix covers the acceptance floor: ≥3 personas, 3
// archetypes, ≥3 network profiles, and both resolver transports.
func TestDefaultMatrixDimensions(t *testing.T) {
	res := mustRun(t, smallConfig(20, 4))
	personas := map[string]bool{}
	archetypes := map[string]bool{}
	profiles := map[string]bool{}
	dns := map[string]bool{}
	for _, c := range res.Cells {
		personas[c.Persona] = true
		archetypes[c.Archetype] = true
		profiles[c.Profile] = true
		dns[c.DNS] = true
	}
	if len(personas) < 3 || len(archetypes) < 3 || len(profiles) < 3 || len(dns) != 2 {
		t.Fatalf("matrix dims: %d personas × %d archetypes × %d profiles × %d transports, want ≥3×≥3×≥3×2",
			len(personas), len(archetypes), len(profiles), len(dns))
	}
	want := len(personas) * len(archetypes) * len(profiles) * len(dns)
	if len(res.Cells) != want {
		t.Fatalf("%d cells, want the full cross-product %d", len(res.Cells), want)
	}
}

// The matrix reproduces the sweep's headline structure: domain sharding
// zeroes out IP-based coalescing while the ORIGIN-frame persona keeps
// coalescing, and the migration universe is the only one that produces
// 421 bounces (on the ORIGIN persona, whose pooled cluster connections
// go stale mid-page).
func TestMatrixReproducesShardingObservation(t *testing.T) {
	res := mustRun(t, smallConfig(40, 4))
	cell := func(persona, archetype string) Cell {
		for _, c := range res.Cells {
			if c.Persona == persona && c.Archetype == archetype && c.Profile == "wired" && c.DNS == "do53" {
				return c
			}
		}
		t.Fatalf("cell %s/%s missing", persona, archetype)
		return Cell{}
	}
	if c := cell("chrome", "sharded"); c.CoalescePct() != 0 {
		t.Errorf("chrome on sharded pages coalesces %.2f%%, want 0 (distinct shard servers defeat IP matching)", c.CoalescePct())
	}
	if c := cell("safari", "sharded"); c.CoalescePct() != 0 {
		t.Errorf("safari on sharded pages coalesces %.2f%%, want 0", c.CoalescePct())
	}
	if c := cell("mobile", "sharded"); c.CoalescePct() <= 0 || c.ViaOrigin == 0 {
		t.Errorf("ORIGIN persona on sharded pages: coalesce %.2f%%, via-origin %d — the frame should recover the shards", c.CoalescePct(), c.ViaOrigin)
	}
	base := cell("chrome", "baseline")
	if base.CoalescePct() <= 0 {
		t.Errorf("chrome on baseline pages coalesces %.2f%%, want > 0 (shared-server shards exist)", base.CoalescePct())
	}
	if c := cell("mobile", "migration"); c.Got421 == 0 || c.Evicted == 0 {
		t.Errorf("migration universe produced no stale-pool pressure: 421=%d evicted=%d", c.Got421, c.Evicted)
	}
	if c := cell("chrome", "baseline"); c.Preconns == 0 {
		t.Errorf("chrome persona opened no speculative sockets")
	}
}

// DoH and Do53 cells differ only in resolution pricing, never in the
// connection economy: the resolver transport must not perturb pool
// behaviour.
func TestTransportAffectsOnlyPricing(t *testing.T) {
	res := mustRun(t, smallConfig(30, 4))
	byKey := map[string]Cell{}
	for _, c := range res.Cells {
		byKey[c.Persona+"/"+c.Archetype+"/"+c.Profile+"/"+c.DNS] = c
	}
	for _, c := range res.Cells {
		if c.DNS != "do53" {
			continue
		}
		o, ok := byKey[c.Persona+"/"+c.Archetype+"/"+c.Profile+"/doh"]
		if !ok {
			t.Fatalf("missing doh twin for %+v", c)
		}
		if c.Conns != o.Conns || c.Reused != o.Reused || c.Got421 != o.Got421 ||
			c.Evicted != o.Evicted || c.DNSQueries != o.DNSQueries {
			t.Fatalf("transport changed the connection economy:\n do53: %+v\n doh:  %+v", c, o)
		}
		if c.SetupMs == o.SetupMs {
			t.Fatalf("transport did not change pricing: %+v vs %+v", c, o)
		}
	}
}

// Bad axis values are rejected up front.
func TestRunRejectsBadAxes(t *testing.T) {
	cfg := smallConfig(10, 1)
	cfg.Archetypes = []webgen.Archetype{"nope"}
	if _, err := Run(cfg); err == nil {
		t.Error("unknown archetype accepted")
	}
	cfg = smallConfig(10, 1)
	bad := netsim.DefaultParams()
	bad.LossRate = 1.5
	cfg.Profiles = []netsim.Profile{{Name: "bad", Params: bad}}
	if _, err := Run(cfg); err == nil {
		t.Error("invalid profile accepted")
	}
	cfg = smallConfig(0, 1)
	if _, err := Run(cfg); err == nil {
		t.Error("zero sites accepted")
	}
}

// The seed-1 matrix table is pinned byte for byte. Regenerate with
//
//	go test ./internal/scenario -run TestMatrixGolden -update-golden
func TestMatrixGolden(t *testing.T) {
	cfg := Config{
		Seed:       1,
		Sites:      25,
		Workers:    4,
		Personas:   Personas(),
		Archetypes: webgen.Archetypes(),
		Profiles:   []netsim.Profile{netsim.ProfileWired(), netsim.Profile4G(), netsim.Profile3G()},
		Transports: []cache.DNSTransport{cache.TransportDo53, cache.TransportDoH},
	}
	got := []byte(mustRun(t, cfg).Table())
	path := filepath.Join("testdata", "matrix_seed1.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("seed-1 matrix table drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
