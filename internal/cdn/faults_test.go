package cdn

import (
	"fmt"
	"testing"

	"respectorigin/internal/faults"
	"respectorigin/internal/measure"
)

// newFaultedExperiment builds a full-sampling experiment under a plan.
func newFaultedExperiment(sample int, seed int64, plan faults.Plan, retries int) (*CDN, *Experiment) {
	c := New(Config{SampleRate: 1, Seed: seed})
	cfg := DefaultExperimentConfig()
	cfg.SampleSize = sample
	cfg.Seed = seed
	cfg.Faults = plan
	cfg.FaultRetries = retries
	return c, SetupExperiment(c, cfg)
}

func longitudinalSeries(seed int64, plan faults.Plan, total, start, end int) (measure.Series, measure.Series) {
	_, e := newFaultedExperiment(300, seed, plan, 1)
	return e.Longitudinal(total, start, end, PhaseOrigin, ip("104.19.99.99"), "")
}

// TestLongitudinalZeroLengthWindow is the regression test for the
// phase-transition bug: with phaseStart == phaseEnd the deployment must
// enter and immediately exit on that day, leaving every day at baseline
// — not stick in the ORIGIN phase for the rest of the run.
func TestLongitudinalZeroLengthWindow(t *testing.T) {
	const total = 8
	ctlZero, expZero := longitudinalSeries(3, faults.Plan{}, total, 4, 4)
	// phaseStart beyond the run: the phase never activates at all.
	ctlBase, expBase := longitudinalSeries(3, faults.Plan{}, total, total, total)
	for day := 0; day < total; day++ {
		if ctlZero.Values[day] != ctlBase.Values[day] || expZero.Values[day] != expBase.Values[day] {
			t.Errorf("day %d: zero-length window (ctl %v, exp %v) != baseline (ctl %v, exp %v)",
				day, ctlZero.Values[day], expZero.Values[day], ctlBase.Values[day], expBase.Values[day])
		}
	}
	// Sanity: a real window does move the experiment series.
	_, expReal := longitudinalSeries(3, faults.Plan{}, total, 2, 6)
	if expReal.Mean(2, 6) >= expBase.Mean(2, 6) {
		t.Errorf("real deployment window did not reduce experiment conns: %v vs baseline %v",
			expReal.Mean(2, 6), expBase.Mean(2, 6))
	}
}

// TestVisitLogRecordInvariants pins the log-record contract the §5.2
// counting rules depend on: under a zero fault plan with full sampling,
// each connection's arrival orders are exactly 1, 2, 3, ... in log
// order, and a coalesced record (Host ≠ SNI) is never a connection's
// first arrival.
func TestVisitLogRecordInvariants(t *testing.T) {
	c, e := newFaultedExperiment(200, 5, faults.Plan{}, 0)
	c.EnterPhaseOrigin(ip("104.19.99.99"))
	for day := 0; day < 3; day++ {
		e.RunDay(day)
	}
	c.ExitExperiment()

	orders := map[uint64][]int{}
	coalesced := 0
	for _, r := range c.Pipeline().Records() {
		orders[r.ConnID] = append(orders[r.ConnID], r.ArrivalOrder)
		if r.FlagHostNeSNI {
			coalesced++
			if r.ArrivalOrder < 2 {
				t.Errorf("coalesced record on conn %d at arrival order %d; must ride an existing connection",
					r.ConnID, r.ArrivalOrder)
			}
		}
	}
	if coalesced == 0 {
		t.Fatal("no coalesced records observed; invariant test is vacuous")
	}
	for id, seq := range orders {
		if seq[0] != 1 {
			t.Errorf("conn %d first sampled order = %d, want 1", id, seq[0])
		}
		for i := 1; i < len(seq); i++ {
			if seq[i] != seq[i-1]+1 {
				t.Errorf("conn %d arrival orders not consecutive: %v", id, seq)
				break
			}
		}
	}
}

// TestFaultedDeploymentDeterminism: the injector draws on its own
// seeded stream, so two same-seed deployments under the same plan are
// byte-identical — and a different seed is not.
func TestFaultedDeploymentDeterminism(t *testing.T) {
	plan := faults.Plan{ResetProb: 0.05, DNSFailProb: 0.01, GoAwayProb: 0.02, LossPct: 2}
	run := func(seed int64) string {
		_, e := newFaultedExperiment(250, seed, plan, 1)
		ctl, exp := e.Longitudinal(6, 1, 5, PhaseOrigin, ip("104.19.99.99"), "")
		return fmt.Sprint(ctl.Values, exp.Values, e.Injector().Report())
	}
	a, b := run(9), run(9)
	if a != b {
		t.Errorf("same seed, different runs:\n%s\nvs\n%s", a, b)
	}
	if run(10) == a {
		t.Error("different seeds produced identical faulted runs")
	}
}

// TestLogRestartDefensivePath forces telemetry restarts on every pool
// request, which mints reconstructed connection state in observeOutcome
// (first sampled record at arrival order ≥ 2) — and checks that the
// §5.2 tally skips exactly those connections.
func TestLogRestartDefensivePath(t *testing.T) {
	_, e := newFaultedExperiment(150, 11, faults.Plan{LogRestartProb: 1}, 0)
	ctl, exp := e.Longitudinal(4, 1, 3, PhaseOrigin, ip("104.19.99.99"), "")

	counted := 0
	for day := 0; day < 4; day++ {
		counted += int(ctl.Values[day]) + int(exp.Values[day])
	}

	// Recount from the surviving records with the same qualifying rules.
	first := map[uint64]int{}
	for _, r := range e.CDN.Pipeline().Records() {
		if r.Host != e.CDN.ThirdParty || r.FlagHostNeSNI {
			continue
		}
		if _, ok := first[r.ConnID]; !ok {
			first[r.ConnID] = r.ArrivalOrder
		}
	}
	opened, reconstructed := 0, 0
	for _, order := range first {
		if order == 1 {
			opened++
		} else {
			reconstructed++
		}
	}
	if reconstructed == 0 {
		t.Fatal("log-restart plan never exercised the reconstructed-connection path")
	}
	if counted != opened {
		t.Errorf("§5.2 tally counted %d conns, want %d (the %d reconstructed conns must be excluded)",
			counted, opened, reconstructed)
	}
}
