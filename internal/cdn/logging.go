package cdn

import (
	"math/rand"
	"sync"
)

// LogRecord is one sampled request log line, carrying exactly the
// fields §5.2 describes: the connection identifier, the truncated
// Referer (domain only, privacy), the SNI≠Host coalescing flag bit,
// the treatment label, the request's arrival order on its connection,
// and a user-agent family for the §5.3 Firefox filter.
type LogRecord struct {
	Day           int
	ConnID        uint64
	SNI           string
	Host          string
	RefererHost   string // truncated at the domain
	ArrivalOrder  int    // 1-based order within the connection
	FlagHostNeSNI bool
	Treatment     Treatment
	UserAgent     string // "firefox", "chrome", ...
}

// LogPipeline samples a fixed fraction of requests, as the production
// pipeline did (1%).
type LogPipeline struct {
	mu      sync.Mutex
	rate    float64
	rng     *rand.Rand
	records []LogRecord

	total   int64
	sampled int64
}

// NewLogPipeline creates a pipeline with the given sampling rate.
func NewLogPipeline(rate float64, seed int64) *LogPipeline {
	return &LogPipeline{rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Observe ingests one request, sampling it with the configured rate.
func (lp *LogPipeline) Observe(r LogRecord) {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	lp.total++
	if lp.rng.Float64() < lp.rate {
		r.FlagHostNeSNI = r.Host != r.SNI
		lp.records = append(lp.records, r)
		lp.sampled++
	}
}

// Totals reports total and sampled request counts.
func (lp *LogPipeline) Totals() (total, sampled int64) {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	return lp.total, lp.sampled
}

// Records returns the sampled log.
func (lp *LogPipeline) Records() []LogRecord {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	return append([]LogRecord(nil), lp.records...)
}

// Reset clears the sampled log (between measurement windows).
func (lp *LogPipeline) Reset() {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	lp.records = nil
	lp.total = 0
	lp.sampled = 0
}

// PassiveCounts are the §5.2 passive-measurement aggregates for
// requests to the third-party domain, per treatment.
type PassiveCounts struct {
	// NewTLSConns counts distinct connections whose first request for
	// the third party arrived with SNI == Host (a dedicated third-party
	// connection, i.e. a fresh TLS connection to it).
	NewTLSConns map[Treatment]int
	// CoalescedConns counts distinct connections carrying third-party
	// requests with the flag bit set and arrival order ≥ 2, counted
	// once per connection (the paper's coalescing signal).
	CoalescedConns map[Treatment]int
}

// CountPassive applies the paper's §5.2 counting rules to the sampled
// log, optionally filtering by user-agent family (§5.3 used "firefox").
func CountPassive(records []LogRecord, thirdParty, uaFilter string) PassiveCounts {
	pc := PassiveCounts{
		NewTLSConns:    map[Treatment]int{},
		CoalescedConns: map[Treatment]int{},
	}
	seenNew := map[uint64]bool{}
	seenCoal := map[uint64]bool{}
	for _, r := range records {
		if r.Host != thirdParty {
			continue
		}
		if uaFilter != "" && r.UserAgent != uaFilter {
			continue
		}
		if r.FlagHostNeSNI && r.ArrivalOrder >= 2 {
			if !seenCoal[r.ConnID] {
				seenCoal[r.ConnID] = true
				pc.CoalescedConns[r.Treatment]++
			}
			continue
		}
		if !r.FlagHostNeSNI {
			if !seenNew[r.ConnID] {
				seenNew[r.ConnID] = true
				pc.NewTLSConns[r.Treatment]++
			}
		}
	}
	return pc
}

// ReductionPct returns the percentage reduction of new third-party TLS
// connections in the experiment group relative to control.
func (pc PassiveCounts) ReductionPct() float64 {
	ctl := float64(pc.NewTLSConns[TreatmentControl])
	exp := float64(pc.NewTLSConns[TreatmentExperiment])
	if ctl == 0 {
		return 0
	}
	return 100 * (ctl - exp) / ctl
}
