package cdn

import (
	"net/netip"
	"testing"

	"respectorigin/internal/browser"
	"respectorigin/internal/measure"
)

func ip(s string) netip.Addr { return netip.MustParseAddr(s) }

func newTestCDN(sampleRate float64) *CDN {
	return New(Config{SampleRate: sampleRate, Seed: 7})
}

func TestZoneSetupAndCertReissue(t *testing.T) {
	c := newTestCDN(1)
	z1 := c.AddZone("www.a.example", SLATierFree, ip("104.18.0.1"))
	z2 := c.AddZone("www.b.example", SLATierFree, ip("104.18.0.2"))
	z1.Treatment = TreatmentExperiment
	z2.Treatment = TreatmentControl

	if n := c.ReissueCertificates(); n != 2 {
		t.Errorf("reissued %d", n)
	}
	if !hasSAN(z1.SANs, c.ThirdParty) {
		t.Errorf("experiment cert lacks third party: %v", z1.SANs)
	}
	if hasSAN(z2.SANs, c.ThirdParty) {
		t.Error("control cert has third party")
	}
	if !hasSAN(z2.SANs, c.ControlName) {
		t.Errorf("control cert lacks control name: %v", z2.SANs)
	}
	// Figure 6: identical byte additions.
	if len(c.ControlName) != len(c.ThirdParty) {
		t.Errorf("control name %q not byte-equal to %q", c.ControlName, c.ThirdParty)
	}
	// Reissue is idempotent on SAN content.
	c.ReissueCertificates()
	if len(z1.SANs) != 2 {
		t.Errorf("SANs grew on reissue: %v", z1.SANs)
	}
}

func hasSAN(sans []string, name string) bool {
	for _, s := range sans {
		if s == name {
			return true
		}
	}
	return false
}

func TestPhaseTransitionsMoveDNS(t *testing.T) {
	c := newTestCDN(1)
	z := c.AddZone("www.a.example", SLATierFree, ip("104.18.0.1"))
	z.Treatment = TreatmentExperiment
	origZone, _ := c.Lookup("www.a.example")
	origThird, _ := c.Lookup(c.ThirdParty)

	c.EnterPhaseIP()
	za, _ := c.Lookup("www.a.example")
	ta, _ := c.Lookup(c.ThirdParty)
	if za[0] != ta[0] {
		t.Errorf("IP phase did not align addresses: %v vs %v", za, ta)
	}
	if !c.Reachable(c.ThirdParty, za[0]) || !c.Reachable("www.a.example", za[0]) {
		t.Error("aligned address not serving both hosts")
	}

	iso := ip("104.19.99.99")
	c.EnterPhaseOrigin(iso)
	zb, _ := c.Lookup("www.a.example")
	tb, _ := c.Lookup(c.ThirdParty)
	if zb[0] != iso {
		t.Errorf("zone not on isolated addr: %v", zb)
	}
	if tb[0] != origThird[0] {
		t.Errorf("third party DNS not reverted: %v vs %v", tb, origThird)
	}
	if !c.Reachable(c.ThirdParty, iso) {
		t.Error("isolated edge does not serve third party")
	}

	c.ExitExperiment()
	zc, _ := c.Lookup("www.a.example")
	if zc[0] != origZone[0] {
		t.Errorf("exit did not restore zone DNS: %v vs %v", zc, origZone)
	}
	if c.Phase() != PhaseBaseline {
		t.Errorf("phase = %v", c.Phase())
	}
}

func TestOriginSetPerTreatmentAndPhase(t *testing.T) {
	c := newTestCDN(1)
	ze := c.AddZone("www.e.example", SLATierFree, ip("104.18.0.1"))
	zc := c.AddZone("www.c.example", SLATierFree, ip("104.18.0.2"))
	ze.Treatment = TreatmentExperiment
	zc.Treatment = TreatmentControl

	if got := c.OriginSet("www.e.example", ip("104.18.0.1")); got != nil {
		t.Errorf("origin set before origin phase: %v", got)
	}
	c.EnterPhaseOrigin(netip.Addr{})
	got := c.OriginSet("www.e.example", ip("104.18.0.1"))
	if len(got) != 1 || got[0] != c.ThirdParty {
		t.Errorf("experiment origin set = %v", got)
	}
	got = c.OriginSet("www.c.example", ip("104.18.0.2"))
	if len(got) != 1 || got[0] != c.ControlName {
		t.Errorf("control origin set = %v", got)
	}
	if c.OriginSet("unknown.example", ip("104.18.0.9")) != nil {
		t.Error("origin set for unknown zone")
	}
}

func TestLogPipelineSampling(t *testing.T) {
	lp := NewLogPipeline(0.5, 1)
	for i := 0; i < 10000; i++ {
		lp.Observe(LogRecord{ConnID: uint64(i)})
	}
	total, sampled := lp.Totals()
	if total != 10000 {
		t.Errorf("total = %d", total)
	}
	frac := float64(sampled) / float64(total)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("sampled fraction = %.3f, want ≈0.5", frac)
	}
	lp.Reset()
	if total, sampled := lp.Totals(); total != 0 || sampled != 0 {
		t.Error("reset incomplete")
	}
}

func TestLogPipelineSetsFlagBit(t *testing.T) {
	lp := NewLogPipeline(1, 1)
	lp.Observe(LogRecord{ConnID: 1, SNI: "a", Host: "b"})
	lp.Observe(LogRecord{ConnID: 2, SNI: "a", Host: "a"})
	recs := lp.Records()
	if !recs[0].FlagHostNeSNI || recs[1].FlagHostNeSNI {
		t.Errorf("flag bits wrong: %+v", recs)
	}
}

func TestCountPassiveRules(t *testing.T) {
	third := "cdnjs.cloudflare.com"
	records := []LogRecord{
		// Coalesced: flag bit + arrival ≥2, same conn twice (count once).
		{ConnID: 1, SNI: "site", Host: third, FlagHostNeSNI: true, ArrivalOrder: 2, Treatment: TreatmentExperiment},
		{ConnID: 1, SNI: "site", Host: third, FlagHostNeSNI: true, ArrivalOrder: 3, Treatment: TreatmentExperiment},
		// New conn to third party.
		{ConnID: 2, SNI: third, Host: third, ArrivalOrder: 1, Treatment: TreatmentControl},
		// Unrelated host ignored.
		{ConnID: 3, SNI: "x", Host: "x", ArrivalOrder: 1, Treatment: TreatmentControl},
	}
	pc := CountPassive(records, third, "")
	if pc.CoalescedConns[TreatmentExperiment] != 1 {
		t.Errorf("coalesced = %v", pc.CoalescedConns)
	}
	if pc.NewTLSConns[TreatmentControl] != 1 {
		t.Errorf("new = %v", pc.NewTLSConns)
	}
}

// TestPassiveIPReduction reproduces the §5.2 headline: a ≈56% reduction
// in the rate of new TLS connections to the third party from the
// experiment group, across all browsers.
func TestPassiveIPReduction(t *testing.T) {
	c := newTestCDN(1) // sample every request for test precision
	cfg := DefaultExperimentConfig()
	cfg.SampleSize = 1200
	cfg.VisitsPerZonePerDay = 2
	e := SetupExperiment(c, cfg)

	c.EnterPhaseIP()
	for day := 0; day < 5; day++ {
		e.RunDay(day)
	}
	pc := CountPassive(c.Pipeline().Records(), c.ThirdParty, "")
	red := pc.ReductionPct()
	t.Logf("IP-phase passive reduction = %.1f%% (paper: 56%%)", red)
	if red < 40 || red > 70 {
		t.Errorf("reduction = %.1f%%, want ≈56%%", red)
	}
	if pc.CoalescedConns[TreatmentExperiment] == 0 {
		t.Error("no coalesced connections observed")
	}
	if pc.CoalescedConns[TreatmentControl] != 0 {
		t.Errorf("control group coalesced %d connections", pc.CoalescedConns[TreatmentControl])
	}
}

// TestActiveMeasurementIPPhase reproduces Figure 7a's shape.
func TestActiveMeasurementIPPhase(t *testing.T) {
	c := newTestCDN(0.01)
	cfg := DefaultExperimentConfig()
	cfg.SampleSize = 2000
	e := SetupExperiment(c, cfg)
	c.EnterPhaseIP()
	ctl, exp := e.ActiveMeasurement()

	zeroFrac := frac(ctl, 0)
	oneFrac := frac(ctl, 1)
	t.Logf("7a control: zero=%.2f one=%.2f | experiment: zero=%.2f one=%.2f",
		zeroFrac, oneFrac, frac(exp, 0), frac(exp, 1))
	// Control: ≈9% zero (churn), ≈83% one.
	if zeroFrac < 0.02 || zeroFrac > 0.15 {
		t.Errorf("control zero fraction = %.2f, paper ≈0.09", zeroFrac)
	}
	if oneFrac < 0.65 || oneFrac > 0.90 {
		t.Errorf("control one fraction = %.2f, paper ≈0.83", oneFrac)
	}
	// Experiment: ≈70% zero.
	if z := frac(exp, 0); z < 0.55 || z > 0.85 {
		t.Errorf("experiment zero fraction = %.2f, paper ≈0.70", z)
	}
	if maxInt(exp) > maxInt(ctl) {
		t.Errorf("experiment max (%d) exceeds control max (%d)", maxInt(exp), maxInt(ctl))
	}
}

// TestActiveMeasurementOriginPhase reproduces Figure 7b's shape.
func TestActiveMeasurementOriginPhase(t *testing.T) {
	c := newTestCDN(0.01)
	cfg := DefaultExperimentConfig()
	cfg.SampleSize = 2000
	e := SetupExperiment(c, cfg)
	c.EnterPhaseOrigin(ip("104.19.99.99"))
	ctl, exp := e.ActiveMeasurement()

	t.Logf("7b control: zero=%.2f one=%.2f | experiment: zero=%.2f one=%.2f",
		frac(ctl, 0), frac(ctl, 1), frac(exp, 0), frac(exp, 1))
	// Experiment: ≈64% zero, ≈33% one; none above 4.
	if z := frac(exp, 0); z < 0.50 || z > 0.80 {
		t.Errorf("experiment zero fraction = %.2f, paper ≈0.64", z)
	}
	// Control stays ≈6% zero, ≈84% one.
	if z := frac(ctl, 0); z < 0.02 || z > 0.15 {
		t.Errorf("control zero fraction = %.2f, paper ≈0.06", z)
	}
	// Control zero-connection visits come only from churned sites: the
	// control origin set names the unused control domain, so nothing
	// coalesces.
	churned := 0
	for _, z := range e.SampleZones {
		if z.Treatment == TreatmentControl && z.Churned {
			churned++
		}
	}
	zeroCtl := 0
	for _, v := range ctl {
		if v == 0 {
			zeroCtl++
		}
	}
	if zeroCtl != churned {
		t.Errorf("control zero-conn sites = %d, churned control sites = %d", zeroCtl, churned)
	}
}

// TestLongitudinalOriginDeployment reproduces Figure 8: during the
// two-week ORIGIN deployment the experiment group's new TLS connections
// drop to roughly half of control, and recover afterwards.
func TestLongitudinalOriginDeployment(t *testing.T) {
	c := newTestCDN(1)
	cfg := DefaultExperimentConfig()
	cfg.SampleSize = 600
	cfg.VisitsPerZonePerDay = 3
	e := SetupExperiment(c, cfg)

	const total, start, end = 28, 7, 21
	ctl, exp := e.Longitudinal(total, start, end, PhaseOrigin, ip("104.19.99.99"), "firefox")

	before := exp.Mean(0, start) / nonZero(ctl.Mean(0, start))
	during := exp.Mean(start, end) / nonZero(ctl.Mean(start, end))
	after := exp.Mean(end, total) / nonZero(ctl.Mean(end, total))
	t.Logf("exp/ctl ratio: before=%.2f during=%.2f after=%.2f", before, during, after)

	if before < 0.75 || before > 1.3 {
		t.Errorf("pre-deployment ratio = %.2f, want ≈1", before)
	}
	if during > 0.7 {
		t.Errorf("deployment ratio = %.2f, want ≈0.5 (paper: ~50%% reduction)", during)
	}
	if after < 0.75 || after > 1.3 {
		t.Errorf("post-deployment ratio = %.2f, want ≈1", after)
	}
}

func nonZero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

func frac(xs []int, v int) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x == v {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestVisitChromeIPPhaseCoalesces(t *testing.T) {
	// Chromium coalesces in the IP phase (exact address match) — the
	// §5.2 result held across all browsers.
	c := newTestCDN(0.01)
	cfg := DefaultExperimentConfig()
	cfg.AnonymousFrac = 0
	cfg.ChurnFrac = 0
	cfg.SampleSize = 50
	e := SetupExperiment(c, cfg)
	c.EnterPhaseIP()
	for _, z := range e.SampleZones {
		if z.Treatment != TreatmentExperiment || z.ThirdPartyPools != 1 {
			continue
		}
		res := e.Visit(z, "chrome", -1)
		if res.CoalescedPools != 1 || res.NewThirdParty != 0 {
			t.Fatalf("chrome IP-phase visit: %+v", res)
		}
	}
}

func TestVisitChromeOriginPhaseDoesNotCoalesce(t *testing.T) {
	// Chromium has no ORIGIN support: nothing coalesces once DNS
	// reverts, even for experiment zones.
	c := newTestCDN(0.01)
	cfg := DefaultExperimentConfig()
	cfg.AnonymousFrac = 0
	cfg.ChurnFrac = 0
	cfg.OriginFetchFailFrac = 0
	cfg.SampleSize = 50
	e := SetupExperiment(c, cfg)
	c.EnterPhaseOrigin(ip("104.19.99.99"))
	for _, z := range e.SampleZones {
		if z.Treatment != TreatmentExperiment {
			continue
		}
		res := e.Visit(z, "chrome", -1)
		if res.CoalescedPools != 0 {
			t.Fatalf("chrome coalesced via ORIGIN: %+v", res)
		}
	}
}

func TestSampleSelectionRemovesSubpageOnly(t *testing.T) {
	c := newTestCDN(0.01)
	cfg := DefaultExperimentConfig()
	cfg.SampleSize = 5000
	e := SetupExperiment(c, cfg)
	removedFrac := float64(e.Removed) / float64(cfg.SampleSize)
	if removedFrac < 0.19 || removedFrac > 0.25 {
		t.Errorf("removed fraction = %.3f, paper 0.22", removedFrac)
	}
	if len(e.SampleZones)+e.Removed != cfg.SampleSize {
		t.Error("zone accounting wrong")
	}
}

func TestBrowserEnvironmentInterface(t *testing.T) {
	var _ browser.Environment = (*CDN)(nil)
}

func TestPhaseStrings(t *testing.T) {
	if PhaseBaseline.String() != "baseline" || PhaseIP.String() != "ip-coalescing" ||
		PhaseOrigin.String() != "origin-frame" || Phase(9).String() != "unknown" {
		t.Error("phase strings")
	}
	if TreatmentControl.String() != "control" || TreatmentExperiment.String() != "experiment" ||
		TreatmentNone.String() != "none" {
		t.Error("treatment strings")
	}
}

func TestMeasureSeriesIntegration(t *testing.T) {
	s := measure.Series{Label: "x", Values: []float64{2, 4}}
	if s.Mean(0, 2) != 3 {
		t.Error("series mean")
	}
}
