// Package cdn simulates the deployment CDN of §5: a multi-PoP content
// delivery network hosting customer zones and the popular third-party
// domain, with the operational machinery the paper's experiments used —
// certificate reissue with byte-equalized control names (Figure 6),
// DNS alignment for IP-based coalescing (§5.2), a connection-
// termination process that sends ORIGIN frames (§5.3), a 1%-sampled
// logging pipeline with the SNI≠Host coalescing flag bit, and
// treatment-group assignment.
//
// The simulator implements browser.Environment so the client policies
// in internal/browser drive it directly, and its telemetry reproduces
// the paper's passive (Figure 8) and active (Figure 7) measurements.
package cdn

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"

	"respectorigin/internal/certs"
	"respectorigin/internal/dns"
)

// Phase is the deployment phase.
type Phase int

// Phases of the §5 deployment.
const (
	// PhaseBaseline: no changes; every hostname on its own addresses.
	PhaseBaseline Phase = iota
	// PhaseIP (§5.2): sample zones and the third party share a single
	// new address; web servers answer for all of them on it.
	PhaseIP
	// PhaseOrigin (§5.3): DNS reverted; the termination process sends
	// ORIGIN frames listing the third party (experiment) or the unused
	// control domain (control).
	PhaseOrigin
)

func (p Phase) String() string {
	switch p {
	case PhaseBaseline:
		return "baseline"
	case PhaseIP:
		return "ip-coalescing"
	case PhaseOrigin:
		return "origin-frame"
	default:
		return "unknown"
	}
}

// Treatment labels a zone's experimental group.
type Treatment int

// Treatments.
const (
	TreatmentNone Treatment = iota
	TreatmentControl
	TreatmentExperiment
)

func (t Treatment) String() string {
	switch t {
	case TreatmentControl:
		return "control"
	case TreatmentExperiment:
		return "experiment"
	default:
		return "none"
	}
}

// SLA tiers; the third-party domain runs at SLATierCritical, which is
// why the §5.2 experiment had to use a new unallocated address.
type SLA int

// SLA tiers.
const (
	SLATierFree SLA = iota
	SLATierPro
	SLATierCritical
)

// Zone is one customer domain on the CDN.
type Zone struct {
	Host      string
	SANs      []string // certificate SAN list currently served
	SLA       SLA
	Treatment Treatment
	Addrs     []netip.Addr

	// UsesAnonymousFetch marks zones whose pages request the third
	// party with crossorigin=anonymous or fetch()/XHR, which do not
	// coalesce (§5.3 discussion).
	UsesAnonymousFetch bool
	// Churned marks zones that stopped referencing the third party
	// after sample selection (site churn, §5.3).
	Churned bool
	// ThirdPartyPools is how many independent connection pools the
	// zone's page opens toward the third party (1 for most sites).
	ThirdPartyPools int
}

// CDN is the simulated provider.
type CDN struct {
	mu sync.Mutex

	// ThirdParty is the popular shared domain (cdnjs-like).
	ThirdParty string
	// ControlName is the equal-length unused domain added to control
	// certificates (Figure 6).
	ControlName string

	zones map[string]*Zone
	auth  *dns.Authority

	phase Phase

	// alignedAddr is the single new address used during PhaseIP.
	alignedAddr netip.Addr
	// thirdPartyAddrs are the third party's standard anycast addresses.
	thirdPartyAddrs []netip.Addr
	// ipServes maps an address to the set of hostnames authoritatively
	// served on it.
	ipServes map[netip.Addr]map[string]bool

	// PoPs is the number of points of presence (§5.3: over 275).
	PoPs int

	pipeline *LogPipeline
}

// Config for New.
type Config struct {
	ThirdParty      string
	ThirdPartyAddrs []netip.Addr
	AlignedAddr     netip.Addr
	PoPs            int
	SampleRate      float64 // log sampling, default 0.01
	Seed            int64
}

// New creates a CDN hosting the third-party domain.
func New(c Config) *CDN {
	if c.ThirdParty == "" {
		c.ThirdParty = "cdnjs.cloudflare.com"
	}
	if len(c.ThirdPartyAddrs) == 0 {
		c.ThirdPartyAddrs = []netip.Addr{netip.MustParseAddr("104.16.9.9")}
	}
	if !c.AlignedAddr.IsValid() {
		c.AlignedAddr = netip.MustParseAddr("104.16.200.1")
	}
	if c.PoPs == 0 {
		c.PoPs = 275
	}
	if c.SampleRate == 0 {
		c.SampleRate = 0.01
	}
	cdn := &CDN{
		ThirdParty:      c.ThirdParty,
		ControlName:     certs.EqualLengthControlName(c.ThirdParty, 2),
		zones:           make(map[string]*Zone),
		auth:            dns.NewAuthority(),
		alignedAddr:     c.AlignedAddr,
		thirdPartyAddrs: c.ThirdPartyAddrs,
		ipServes:        make(map[netip.Addr]map[string]bool),
		PoPs:            c.PoPs,
		pipeline:        NewLogPipeline(c.SampleRate, c.Seed),
	}
	cdn.auth.AddA(c.ThirdParty, c.ThirdPartyAddrs...)
	cdn.serveOn(c.ThirdPartyAddrs, c.ThirdParty)
	return cdn
}

// Pipeline returns the CDN's logging pipeline.
func (c *CDN) Pipeline() *LogPipeline { return c.pipeline }

// Authority returns the CDN's DNS authority.
func (c *CDN) Authority() *dns.Authority { return c.auth }

// Phase returns the current deployment phase.
func (c *CDN) Phase() Phase {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.phase
}

// AddZone registers a customer zone with its serving addresses and an
// initial certificate covering just the zone host.
func (c *CDN) AddZone(host string, sla SLA, addrs ...netip.Addr) *Zone {
	c.mu.Lock()
	defer c.mu.Unlock()
	z := &Zone{
		Host:            host,
		SANs:            []string{host},
		SLA:             sla,
		Addrs:           addrs,
		ThirdPartyPools: 1,
	}
	c.zones[host] = z
	c.auth.AddA(host, addrs...)
	c.lockedServeOn(addrs, host)
	return z
}

// Zone returns a registered zone.
func (c *CDN) Zone(host string) *Zone {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.zones[host]
}

// Zones returns all zones sorted by host.
func (c *CDN) Zones() []*Zone {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Zone, 0, len(c.zones))
	for _, z := range c.zones {
		out = append(out, z)
	}
	// Hosts are the c.zones map keys, so they are distinct and the
	// unstable sort is total: the result is independent of both map
	// iteration order and zone registration order.
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

func (c *CDN) serveOn(addrs []netip.Addr, host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lockedServeOn(addrs, host)
}

func (c *CDN) lockedServeOn(addrs []netip.Addr, host string) {
	for _, a := range addrs {
		m, ok := c.ipServes[a]
		if !ok {
			m = make(map[string]bool)
			c.ipServes[a] = m
		}
		m[host] = true
	}
}

// ReissueCertificates performs the §5.1 certificate setup: experiment
// zones gain the third-party domain in their SANs; control zones gain
// the byte-equalized unused control name. Returns how many were
// modified.
func (c *CDN) ReissueCertificates() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, z := range c.zones {
		switch z.Treatment {
		case TreatmentExperiment:
			z.SANs = appendUnique(z.SANs, c.ThirdParty)
			n++
		case TreatmentControl:
			z.SANs = appendUnique(z.SANs, c.ControlName)
			n++
		}
	}
	return n
}

// EnterPhaseIP deploys the §5.2 IP-coalescing setup: every treated
// zone and the third party move onto the single aligned address, and
// the web servers are configured to answer for the third party even
// when the TLS SNI differs from the Host (domain-fronting checks).
func (c *CDN) EnterPhaseIP() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.phase = PhaseIP
	for _, z := range c.zones {
		if z.Treatment == TreatmentNone {
			continue
		}
		c.auth.SetA(z.Host, c.alignedAddr)
		c.lockedServeOn([]netip.Addr{c.alignedAddr}, z.Host)
	}
	c.auth.SetA(c.ThirdParty, c.alignedAddr)
	c.lockedServeOn([]netip.Addr{c.alignedAddr}, c.ThirdParty)
}

// EnterPhaseOrigin deploys the §5.3 ORIGIN setup: DNS reverts to
// standard traffic engineering (restoring the third party's SLA) and
// the ORIGIN-capable termination process takes over for sample zones.
// Sample zones move to an isolated anycast address for observability.
func (c *CDN) EnterPhaseOrigin(isolated netip.Addr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.phase = PhaseOrigin
	for _, z := range c.zones {
		if z.Treatment == TreatmentNone {
			continue
		}
		if isolated.IsValid() {
			c.auth.SetA(z.Host, isolated)
			c.lockedServeOn([]netip.Addr{isolated}, z.Host)
		} else {
			c.auth.SetA(z.Host, z.Addrs...)
		}
		// Zone edges answer for the third party: the ORIGIN frame
		// directs clients there and the request pipeline routes it.
		addrs := z.Addrs
		if isolated.IsValid() {
			addrs = []netip.Addr{isolated}
		}
		c.lockedServeOn(addrs, c.ThirdParty)
	}
	// Third party returns to its standard addresses.
	c.auth.SetA(c.ThirdParty, c.thirdPartyAddrs...)
}

// ExitExperiment reverts to baseline.
func (c *CDN) ExitExperiment() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.phase = PhaseBaseline
	for _, z := range c.zones {
		if z.Treatment != TreatmentNone {
			c.auth.SetA(z.Host, z.Addrs...)
		}
	}
	c.auth.SetA(c.ThirdParty, c.thirdPartyAddrs...)
}

// --- browser.Environment implementation ---

// Lookup resolves a hostname through the CDN's authority.
func (c *CDN) Lookup(host string) ([]netip.Addr, error) {
	addrs, _, err := c.LookupTTL(host)
	return addrs, err
}

// LookupTTL implements browser.TTLLookuper: the address set plus the
// minimum TTL across its A records, the budget a client cache may keep
// the answer for.
func (c *CDN) LookupTTL(host string) ([]netip.Addr, uint32, error) {
	q := &dns.Message{
		Header:    dns.Header{ID: 1, RD: true},
		Questions: []dns.Question{{Name: host, Type: dns.TypeA, Class: dns.ClassINET}},
	}
	resp := c.auth.Handle(q)
	if resp.Header.Rcode != dns.RcodeSuccess {
		return nil, 0, fmt.Errorf("cdn: DNS rcode %d for %s", resp.Header.Rcode, host)
	}
	var addrs []netip.Addr
	var ttl uint32
	for _, rr := range resp.Answers {
		if rr.Type == dns.TypeA {
			addrs = append(addrs, rr.Addr)
			if ttl == 0 || rr.TTL < ttl {
				ttl = rr.TTL
			}
		}
	}
	return addrs, ttl, nil
}

// CertSANs returns the SAN list served for an SNI of host.
func (c *CDN) CertSANs(host string, ip netip.Addr) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if z, ok := c.zones[host]; ok {
		return z.SANs
	}
	if host == c.ThirdParty {
		return []string{c.ThirdParty, "*." + firstLabelParent(c.ThirdParty)}
	}
	return nil
}

// OriginSet returns the ORIGIN frame content for a connection opened to
// host during the current phase: experiment zones advertise the third
// party, control zones the unused control name, per the §5.3 design.
func (c *CDN) OriginSet(host string, ip netip.Addr) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.phase != PhaseOrigin {
		return nil
	}
	z, ok := c.zones[host]
	if !ok {
		return nil
	}
	switch z.Treatment {
	case TreatmentExperiment:
		return []string{c.ThirdParty}
	case TreatmentControl:
		return []string{c.ControlName}
	default:
		return nil
	}
}

// SupportsH3 implements browser.AltSvcer: the CDN's termination process
// speaks QUIC at every edge, so HTTP/3 is advertised for every hosted
// name — registered zones and the third party — and for nothing else.
func (c *CDN) SupportsH3(host string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.zones[host]; ok {
		return true
	}
	return host == c.ThirdParty
}

// Reachable reports whether the server at ip authoritatively serves
// host (the 421 check).
func (c *CDN) Reachable(host string, ip netip.Addr) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.ipServes[ip]
	return ok && m[host]
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func firstLabelParent(host string) string {
	if i := strings.IndexByte(host, '.'); i >= 0 {
		return host[i+1:]
	}
	return host
}
