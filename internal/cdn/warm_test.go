package cdn

import (
	"testing"

	"respectorigin/internal/cache"
)

// TestExperimentWarmColdRevisitsCheaper checks the deployment-side
// warm/cold measurement: returning visits pay strictly less in DNS
// queries, full handshakes, and validations, demand stays fixed across
// visits (the exact-decomposition precondition), and the pass is
// deterministic — a rerun on a fresh identical experiment matches
// field for field.
func TestExperimentWarmColdRevisitsCheaper(t *testing.T) {
	setup := func() *Experiment {
		c := newTestCDN(0.01)
		cfg := DefaultExperimentConfig()
		cfg.SampleSize = 500
		e := SetupExperiment(c, cfg)
		c.EnterPhaseIP()
		return e
	}
	e := setup()
	costs := e.WarmCold(3, cache.Options{})
	if len(costs) != 3 {
		t.Fatalf("visits = %d", len(costs))
	}
	cold := costs[0]
	if cold.DNSQueries == 0 || cold.FullHandshakes == 0 || cold.Validations == 0 {
		t.Fatalf("cold visit empty: %+v", cold)
	}
	for v, warm := range costs[1:] {
		if warm.DNSQueries >= cold.DNSQueries {
			t.Errorf("visit %d DNS queries %d not below cold %d", v+2, warm.DNSQueries, cold.DNSQueries)
		}
		if warm.FullHandshakes >= cold.FullHandshakes {
			t.Errorf("visit %d handshakes %d not below cold %d", v+2, warm.FullHandshakes, cold.FullHandshakes)
		}
		if warm.Validations >= cold.Validations {
			t.Errorf("visit %d validations %d not below cold %d", v+2, warm.Validations, cold.Validations)
		}
		if !warm.Consistent() {
			t.Errorf("visit %d ledger inconsistent: %+v", v+2, warm)
		}
		if warm.LookupsNeeded() != cold.LookupsNeeded() || warm.ConnsNeeded != cold.ConnsNeeded {
			t.Errorf("visit %d demand drifted from cold: %+v vs %+v", v+2, warm, cold)
		}
	}
	again := setup().WarmCold(3, cache.Options{})
	for v := range costs {
		if costs[v] != again[v] {
			t.Errorf("rerun visit %d differs: %+v vs %+v", v+1, costs[v], again[v])
		}
	}
}

// TestExperimentWarmColdLeavesMeasurementsUntouched checks the no-side-
// effect contract: running WarmCold between two active measurements
// leaves the second identical to a run without it.
func TestExperimentWarmColdLeavesMeasurementsUntouched(t *testing.T) {
	run := func(withWarm bool) ([]int, []int) {
		c := newTestCDN(0.01)
		cfg := DefaultExperimentConfig()
		cfg.SampleSize = 500
		e := SetupExperiment(c, cfg)
		c.EnterPhaseIP()
		if withWarm {
			e.WarmCold(2, cache.Options{})
		}
		return e.ActiveMeasurement()
	}
	ctl1, exp1 := run(false)
	ctl2, exp2 := run(true)
	if len(ctl1) != len(ctl2) || len(exp1) != len(exp2) {
		t.Fatalf("measurement sizes differ")
	}
	for i := range ctl1 {
		if ctl1[i] != ctl2[i] {
			t.Fatalf("control[%d] differs: %d vs %d", i, ctl1[i], ctl2[i])
		}
	}
	for i := range exp1 {
		if exp1[i] != exp2[i] {
			t.Fatalf("experiment[%d] differs: %d vs %d", i, exp1[i], exp2[i])
		}
	}
}
