package cdn

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync/atomic"

	"respectorigin/internal/browser"
	"respectorigin/internal/faults"
	"respectorigin/internal/measure"
	"respectorigin/internal/obs"
)

// ExperimentConfig parameterizes the §5 deployment experiment.
type ExperimentConfig struct {
	// SampleSize is the number of candidate domains (the paper used the
	// 5000 domains with the most third-party requests by Referer).
	SampleSize int
	// SubpageOnlyFrac is the fraction removed because only their
	// subpages request the third party (§5.1: 22%).
	SubpageOnlyFrac float64
	// AnonymousFrac is the fraction of zones whose third-party requests
	// use crossorigin=anonymous or fetch()/XHR and never coalesce.
	AnonymousFrac float64
	// ChurnFrac is the fraction of zones that stopped requesting the
	// third party between selection and measurement.
	ChurnFrac float64
	// OriginFetchFailFrac is the per-visit probability that a visit's
	// third-party request goes through a non-coalescing API path during
	// the ORIGIN phase only (the §5.3 XMLHttpRequest/fetch observation).
	OriginFetchFailFrac float64
	// UA shares of visiting clients.
	FirefoxShare float64
	ChromeShare  float64 // remainder is HTTP/1.1-era clients
	// VisitsPerZonePerDay drives passive volume.
	VisitsPerZonePerDay int
	Seed                int64

	// Faults is the degradation plan sampled per visit; the zero plan
	// disables injection entirely and leaves every output byte-identical
	// to a fault-free build.
	Faults faults.Plan
	// FaultSeed seeds the fault injector's own RNG stream (so the plan
	// never perturbs the experiment's sampling streams); 0 derives it
	// from Seed.
	FaultSeed int64
	// FaultRetries is the per-request retry budget browsers get under a
	// nonzero plan (bounded retry-with-backoff).
	FaultRetries int
}

// DefaultExperimentConfig mirrors the paper's setup at reduced scale.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{
		SampleSize:          5000,
		SubpageOnlyFrac:     0.22,
		AnonymousFrac:       0.30,
		ChurnFrac:           0.06,
		OriginFetchFailFrac: 0.12,
		FirefoxShare:        0.08,
		ChromeShare:         0.72,
		VisitsPerZonePerDay: 4,
		Seed:                1,
	}
}

// Experiment drives the deployment experiment against a CDN.
type Experiment struct {
	CDN *CDN
	Cfg ExperimentConfig

	rng    *rand.Rand
	connID atomic.Uint64
	inj    *faults.Injector

	// rec, when set, receives "cdn.*" counters and per-visit trace
	// spans; visitSeq ranks the spans in visit order. Observation only:
	// the recorder never touches e.rng or the injector stream, so traced
	// and untraced runs emit identical log records.
	rec      obs.Recorder
	visitSeq atomic.Int64

	// SampleZones are the retained treated zones (after the 22% cut).
	SampleZones []*Zone
	// Removed is how many candidates were cut at selection.
	Removed int
}

// SetupExperiment creates the sample zones on the CDN, assigns
// treatments randomly, and reissues their certificates (Figure 6).
func SetupExperiment(c *CDN, cfg ExperimentConfig) *Experiment {
	e := &Experiment{CDN: c, Cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if !cfg.Faults.Zero() {
		seed := cfg.FaultSeed
		if seed == 0 {
			// An independent stream: never shared with e.rng or the log
			// pipeline, so the plan's draws cannot realign them.
			seed = cfg.Seed ^ 0x5fa17e
		}
		e.inj = faults.NewInjector(cfg.Faults, seed)
	}
	for i := 0; i < cfg.SampleSize; i++ {
		if e.rng.Float64() < cfg.SubpageOnlyFrac {
			e.Removed++
			continue
		}
		host := fmt.Sprintf("www.sample-%d.example", i)
		addr := netip.AddrFrom4([4]byte{104, 18, byte(i >> 8), byte(i)})
		z := c.AddZone(host, SLATierFree, addr)
		if e.rng.Float64() < 0.5 {
			z.Treatment = TreatmentExperiment
		} else {
			z.Treatment = TreatmentControl
		}
		z.UsesAnonymousFetch = e.rng.Float64() < cfg.AnonymousFrac
		z.Churned = e.rng.Float64() < cfg.ChurnFrac
		z.ThirdPartyPools = samplePools(e.rng)
		e.SampleZones = append(e.SampleZones, z)
	}
	c.ReissueCertificates()
	return e
}

// samplePools draws the number of independent third-party connection
// pools a page opens (Figure 7a control: 83% one, tail up to 7).
func samplePools(rng *rand.Rand) int {
	x := rng.Float64()
	switch {
	case x < 0.83:
		return 1
	case x < 0.93:
		return 2
	case x < 0.97:
		return 3
	case x < 0.985:
		return 4
	case x < 0.993:
		return 5
	case x < 0.998:
		return 6
	default:
		return 7
	}
}

// policyForUA maps a user-agent family to its coalescing policy.
func policyForUA(ua string) (browser.Policy, bool) {
	switch ua {
	case "firefox":
		return browser.PolicyFirefoxOrigin, true
	case "chrome":
		return browser.PolicyChromium, true
	default:
		return 0, false // HTTP/1.1-era clients: no H2 coalescing
	}
}

// VisitResult summarizes one page view.
type VisitResult struct {
	Zone            string
	UA              string
	NewThirdParty   int // fresh TLS connections opened to the third party
	CoalescedPools  int
	ThirdPartyTotal int // third-party request pools exercised

	// Fault accounting (all zero under a zero plan).
	ZoneFailed     bool // the zone's own connection never came up
	FailedRequests int  // third-party requests lost to injected faults
	Retries        int  // browser retry attempts consumed
	Resets         int  // TCP resets suffered mid-visit
	GoAways        int  // graceful GOAWAY drains suffered mid-visit
	Misdirected421 int  // reuse attempts bounced with 421
}

// connState is the CDN-side per-connection log bookkeeping; connections
// are identified by the hostname they were opened for (the TLS SNI).
type connState struct {
	id    uint64
	order int
}

// Injector returns the experiment's fault injector (nil under a zero
// plan).
func (e *Experiment) Injector() *faults.Injector { return e.inj }

// SetRecorder installs an observability recorder on the experiment and
// every visit's browser. A nil recorder (the default) disables all
// instrumentation.
func (e *Experiment) SetRecorder(rec obs.Recorder) { e.rec = rec }

// beginVisit opens a trace span for one page view. It returns the
// span's rank and a closure that stamps the page_end summary once the
// VisitResult is final; under a nil recorder both are inert and the
// visit runs exactly as if untraced. The span brackets every event the
// visit's browser emits: page_start sorts first within the rank
// (Seq -1) and page_end last (Seq 1<<30), whatever the browser's own
// sequence numbers reach.
func (e *Experiment) beginVisit(z *Zone, ua string) (int, func(*VisitResult)) {
	if e.rec == nil {
		return 0, func(*VisitResult) {}
	}
	rank := int(e.visitSeq.Add(1))
	obs.Count(e.rec, "cdn.visits", 1)
	obs.Emit(e.rec, obs.Event{Rank: rank, Seq: -1, Kind: obs.KindPageStart, Host: z.Host, Detail: ua})
	return rank, func(res *VisitResult) {
		obs.Count(e.rec, "cdn.third_party_pools", int64(res.ThirdPartyTotal))
		obs.Count(e.rec, "cdn.new_third_party_conns", int64(res.NewThirdParty))
		obs.Count(e.rec, "cdn.coalesced_pools", int64(res.CoalescedPools))
		obs.Count(e.rec, "cdn.failed_requests", int64(res.FailedRequests))
		obs.Count(e.rec, "cdn.misdirected_421", int64(res.Misdirected421))
		obs.Count(e.rec, "cdn.retries", int64(res.Retries))
		obs.Count(e.rec, "cdn.resets", int64(res.Resets))
		obs.Count(e.rec, "cdn.goaways", int64(res.GoAways))
		if res.ZoneFailed {
			obs.Count(e.rec, "cdn.zone_failures", 1)
		}
		obs.Emit(e.rec, obs.Event{
			Rank: rank, Seq: 1 << 30, Kind: obs.KindPageEnd, Host: z.Host, Detail: ua,
			N: res.ThirdPartyTotal,
		})
	}
}

// Visit simulates one page view of zone by a client with the given
// user-agent on the given day, emitting sampled log records.
func (e *Experiment) Visit(z *Zone, ua string, day int) VisitResult {
	if e.inj != nil {
		return e.visitFaulted(z, ua, day)
	}
	res := VisitResult{Zone: z.Host, UA: ua}
	rank, endVisit := e.beginVisit(z, ua)
	defer func() { endVisit(&res) }()
	observe := func(r LogRecord) {
		if day >= 0 { // day < 0: active measurement, not production logs
			e.CDN.Pipeline().Observe(r)
		}
	}
	zoneConn := e.connID.Add(1)
	observe(LogRecord{
		Day: day, ConnID: zoneConn, SNI: z.Host, Host: z.Host,
		ArrivalOrder: 1, Treatment: z.Treatment, UserAgent: ua,
	})
	if z.Churned {
		return res
	}

	policy, h2 := policyForUA(ua)
	var b *browser.Browser
	if h2 {
		b = browser.New(policy)
		b.Rec, b.Rank = e.rec, rank
		b.Request(e.CDN, z.Host)
	}

	conns := map[string]*connState{z.Host: {id: zoneConn, order: 1}}

	for pool := 0; pool < z.ThirdPartyPools; pool++ {
		res.ThirdPartyTotal++
		anonymous := false
		if pool == 0 {
			anonymous = z.UsesAnonymousFetch
		} else {
			anonymous = e.rng.Float64() < 0.5
		}
		if e.CDN.Phase() == PhaseOrigin && e.rng.Float64() < e.Cfg.OriginFetchFailFrac {
			anonymous = true
		}
		if !h2 || anonymous {
			// Separate, uncredentialed pool: always a fresh connection.
			res.NewThirdParty++
			id := e.connID.Add(1)
			observe(LogRecord{
				Day: day, ConnID: id, SNI: e.CDN.ThirdParty, Host: e.CDN.ThirdParty,
				RefererHost: z.Host, ArrivalOrder: 1, Treatment: z.Treatment, UserAgent: ua,
			})
			continue
		}
		out := b.Request(e.CDN, e.CDN.ThirdParty)
		e.observeOutcome(&res, conns, observe, out, z, ua, day)
	}
	return res
}

// observeOutcome turns one browser outcome into log records and result
// accounting, maintaining the per-connection arrival orders.
func (e *Experiment) observeOutcome(res *VisitResult, conns map[string]*connState,
	observe func(LogRecord), out browser.Outcome, z *Zone, ua string, day int) {
	switch {
	case out.Reused:
		cs := conns[out.ConnHost]
		if cs == nil {
			// Defensive: the carrier connection's bookkeeping was lost
			// (telemetry restart). The connection itself pre-exists this
			// request — it served at least its own first request — so
			// its reconstructed state starts at order 1 and this reuse
			// logs at order ≥ 2, never as a connection's first arrival;
			// the §5.2 counting rules must not tally it as a fresh TLS
			// connection even though the collector mints a new ConnID.
			cs = &connState{id: e.connID.Add(1), order: 1}
			conns[out.ConnHost] = cs
		}
		cs.order++
		if out.Coalesced() {
			res.CoalescedPools++
		}
		observe(LogRecord{
			Day: day, ConnID: cs.id, SNI: out.ConnHost, Host: e.CDN.ThirdParty,
			RefererHost: z.Host, ArrivalOrder: cs.order, Treatment: z.Treatment, UserAgent: ua,
		})
	case out.NewConnection:
		res.NewThirdParty++
		id := e.connID.Add(1)
		conns[e.CDN.ThirdParty] = &connState{id: id, order: 1}
		observe(LogRecord{
			Day: day, ConnID: id, SNI: e.CDN.ThirdParty, Host: e.CDN.ThirdParty,
			RefererHost: z.Host, ArrivalOrder: 1, Treatment: z.Treatment, UserAgent: ua,
		})
	}
}

// visitFaulted is Visit under a nonzero fault plan: the same flow, with
// per-visit fault sampling at every opportunity the plan names. All
// injector draws happen in request order on the injector's own stream,
// so two runs with the same seeds and plan are byte-identical.
func (e *Experiment) visitFaulted(z *Zone, ua string, day int) VisitResult {
	res := VisitResult{Zone: z.Host, UA: ua}
	rank, endVisit := e.beginVisit(z, ua)
	defer func() { endVisit(&res) }()
	observe := func(r LogRecord) {
		if day >= 0 {
			e.CDN.Pipeline().Observe(r)
		}
	}
	env := &faults.Env{Inner: e.CDN, Inj: e.inj}
	policy, h2 := policyForUA(ua)

	// The zone's own connection must survive DNS and the TLS handshake
	// before any third-party request exists.
	var b *browser.Browser
	if h2 {
		b = browser.New(policy)
		b.Rec, b.Rank = e.rec, rank
		b.MaxRetries = e.Cfg.FaultRetries
		b.RetryBackoffMs = 250
		out := b.Request(env, z.Host)
		res.Retries += out.Retries
		if out.Err != nil {
			res.ZoneFailed = true
			res.FailedRequests++
			return res
		}
	} else {
		// Legacy clients: model the same DNS + handshake gauntlet
		// without a coalescing pool.
		if _, err := env.Lookup(z.Host); err != nil {
			res.ZoneFailed = true
			res.FailedRequests++
			return res
		}
		if e.inj.Hit(faults.KindTLSFail) {
			res.ZoneFailed = true
			res.FailedRequests++
			return res
		}
	}

	zoneConn := e.connID.Add(1)
	observe(LogRecord{
		Day: day, ConnID: zoneConn, SNI: z.Host, Host: z.Host,
		ArrivalOrder: 1, Treatment: z.Treatment, UserAgent: ua,
	})
	if z.Churned {
		return res
	}

	conns := map[string]*connState{z.Host: {id: zoneConn, order: 1}}

	for pool := 0; pool < z.ThirdPartyPools; pool++ {
		res.ThirdPartyTotal++

		// Mid-visit connection faults hit the busiest established
		// connection: the third-party carrier when one exists, else the
		// zone connection.
		target := e.CDN.ThirdParty
		if _, ok := conns[target]; !ok {
			target = z.Host
		}
		if e.inj.Hit(faults.KindReset) {
			res.Resets++
			if b != nil {
				b.DropConns(target)
			}
			delete(conns, target)
		} else if e.inj.Hit(faults.KindGoAway) {
			// Graceful drain: no new requests ride the connection, but
			// its log state stays valid for records already emitted.
			res.GoAways++
			if b != nil {
				b.DropConns(target)
			}
		}
		if e.inj.Hit(faults.KindLogRestart) {
			// Telemetry restart: the collector loses every conn's
			// bookkeeping while the browser pool lives on — the exact
			// situation the defensive path in observeOutcome handles.
			for host := range conns {
				delete(conns, host)
			}
		}

		anonymous := false
		if pool == 0 {
			anonymous = z.UsesAnonymousFetch
		} else {
			anonymous = e.rng.Float64() < 0.5
		}
		if e.CDN.Phase() == PhaseOrigin && e.rng.Float64() < e.Cfg.OriginFetchFailFrac {
			anonymous = true
		}
		if !h2 || anonymous {
			if _, err := env.Lookup(e.CDN.ThirdParty); err != nil {
				res.FailedRequests++
				continue
			}
			if e.inj.Hit(faults.KindTLSFail) {
				res.FailedRequests++
				continue
			}
			res.NewThirdParty++
			id := e.connID.Add(1)
			observe(LogRecord{
				Day: day, ConnID: id, SNI: e.CDN.ThirdParty, Host: e.CDN.ThirdParty,
				RefererHost: z.Host, ArrivalOrder: 1, Treatment: z.Treatment, UserAgent: ua,
			})
			continue
		}
		out := b.Request(env, e.CDN.ThirdParty)
		res.Retries += out.Retries
		if out.Got421 {
			res.Misdirected421++
		}
		if out.Err != nil {
			res.FailedRequests++
			continue
		}
		e.observeOutcome(&res, conns, observe, out, z, ua, day)
	}
	return res
}

// sampleUA draws a user-agent family from the configured shares.
func (e *Experiment) sampleUA() string {
	x := e.rng.Float64()
	switch {
	case x < e.Cfg.FirefoxShare:
		return "firefox"
	case x < e.Cfg.FirefoxShare+e.Cfg.ChromeShare:
		return "chrome"
	default:
		return "legacy"
	}
}

// RunDay simulates one day of passive traffic over all sample zones.
func (e *Experiment) RunDay(day int) {
	for _, z := range e.SampleZones {
		for v := 0; v < e.Cfg.VisitsPerZonePerDay; v++ {
			e.Visit(z, e.sampleUA(), day)
		}
	}
}

// Longitudinal runs a multi-day deployment: days [0, total); the given
// phase is active during [phaseStart, phaseEnd); baseline otherwise.
// It returns per-day new-TLS-connection counts to the third party for
// control and experiment, computed from the sampled log with the §5.2
// rules (Figure 8). For the ORIGIN phase the paper filtered to Firefox;
// pass uaFilter="firefox" for that view.
func (e *Experiment) Longitudinal(total, phaseStart, phaseEnd int, phase Phase, isolated netip.Addr, uaFilter string) (control, experiment measure.Series) {
	e.CDN.Pipeline().Reset()
	for day := 0; day < total; day++ {
		// Independent checks, enter before exit: a zero-length window
		// (phaseStart == phaseEnd) enters and immediately exits on the
		// same day, so the day runs at baseline instead of leaving the
		// phase stuck on for the rest of the deployment.
		if day == phaseStart {
			switch phase {
			case PhaseIP:
				e.CDN.EnterPhaseIP()
			case PhaseOrigin:
				e.CDN.EnterPhaseOrigin(isolated)
			}
		}
		if day == phaseEnd {
			e.CDN.ExitExperiment()
		}
		e.RunDay(day)
	}
	e.CDN.ExitExperiment()

	ctl := make([]float64, total)
	exp := make([]float64, total)
	seen := map[uint64]bool{}
	for _, r := range e.CDN.Pipeline().Records() {
		if r.Host != e.CDN.ThirdParty || r.FlagHostNeSNI {
			continue
		}
		if uaFilter != "" && r.UserAgent != uaFilter {
			continue
		}
		if seen[r.ConnID] {
			continue
		}
		seen[r.ConnID] = true
		if r.ArrivalOrder != 1 {
			// A ConnID whose first sampled record arrives at order ≥ 2
			// is a reused connection whose opening record was lost (the
			// telemetry-restart path in observeOutcome), not a new TLS
			// handshake — keep it out of the §5.2 tally.
			continue
		}
		switch r.Treatment {
		case TreatmentControl:
			ctl[r.Day]++
		case TreatmentExperiment:
			exp[r.Day]++
		}
	}
	return measure.Series{Label: "control", Values: ctl},
		measure.Series{Label: "experiment", Values: exp}
}

// ActiveMeasurement repeats the §3 methodology on the sample set with a
// fresh Firefox per site (caches cleared between loads): it returns the
// number of new third-party connections per site for the control and
// experiment groups (Figures 7a/7b).
func (e *Experiment) ActiveMeasurement() (control, experiment []int) {
	for _, z := range e.SampleZones {
		res := e.Visit(z, "firefox", -1)
		switch z.Treatment {
		case TreatmentControl:
			control = append(control, res.NewThirdParty)
		case TreatmentExperiment:
			experiment = append(experiment, res.NewThirdParty)
		}
	}
	return control, experiment
}
