package cdn

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync/atomic"

	"respectorigin/internal/browser"
	"respectorigin/internal/measure"
)

// ExperimentConfig parameterizes the §5 deployment experiment.
type ExperimentConfig struct {
	// SampleSize is the number of candidate domains (the paper used the
	// 5000 domains with the most third-party requests by Referer).
	SampleSize int
	// SubpageOnlyFrac is the fraction removed because only their
	// subpages request the third party (§5.1: 22%).
	SubpageOnlyFrac float64
	// AnonymousFrac is the fraction of zones whose third-party requests
	// use crossorigin=anonymous or fetch()/XHR and never coalesce.
	AnonymousFrac float64
	// ChurnFrac is the fraction of zones that stopped requesting the
	// third party between selection and measurement.
	ChurnFrac float64
	// OriginFetchFailFrac is the per-visit probability that a visit's
	// third-party request goes through a non-coalescing API path during
	// the ORIGIN phase only (the §5.3 XMLHttpRequest/fetch observation).
	OriginFetchFailFrac float64
	// UA shares of visiting clients.
	FirefoxShare float64
	ChromeShare  float64 // remainder is HTTP/1.1-era clients
	// VisitsPerZonePerDay drives passive volume.
	VisitsPerZonePerDay int
	Seed                int64
}

// DefaultExperimentConfig mirrors the paper's setup at reduced scale.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{
		SampleSize:          5000,
		SubpageOnlyFrac:     0.22,
		AnonymousFrac:       0.30,
		ChurnFrac:           0.06,
		OriginFetchFailFrac: 0.12,
		FirefoxShare:        0.08,
		ChromeShare:         0.72,
		VisitsPerZonePerDay: 4,
		Seed:                1,
	}
}

// Experiment drives the deployment experiment against a CDN.
type Experiment struct {
	CDN *CDN
	Cfg ExperimentConfig

	rng    *rand.Rand
	connID atomic.Uint64

	// SampleZones are the retained treated zones (after the 22% cut).
	SampleZones []*Zone
	// Removed is how many candidates were cut at selection.
	Removed int
}

// SetupExperiment creates the sample zones on the CDN, assigns
// treatments randomly, and reissues their certificates (Figure 6).
func SetupExperiment(c *CDN, cfg ExperimentConfig) *Experiment {
	e := &Experiment{CDN: c, Cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	for i := 0; i < cfg.SampleSize; i++ {
		if e.rng.Float64() < cfg.SubpageOnlyFrac {
			e.Removed++
			continue
		}
		host := fmt.Sprintf("www.sample-%d.example", i)
		addr := netip.AddrFrom4([4]byte{104, 18, byte(i >> 8), byte(i)})
		z := c.AddZone(host, SLATierFree, addr)
		if e.rng.Float64() < 0.5 {
			z.Treatment = TreatmentExperiment
		} else {
			z.Treatment = TreatmentControl
		}
		z.UsesAnonymousFetch = e.rng.Float64() < cfg.AnonymousFrac
		z.Churned = e.rng.Float64() < cfg.ChurnFrac
		z.ThirdPartyPools = samplePools(e.rng)
		e.SampleZones = append(e.SampleZones, z)
	}
	c.ReissueCertificates()
	return e
}

// samplePools draws the number of independent third-party connection
// pools a page opens (Figure 7a control: 83% one, tail up to 7).
func samplePools(rng *rand.Rand) int {
	x := rng.Float64()
	switch {
	case x < 0.83:
		return 1
	case x < 0.93:
		return 2
	case x < 0.97:
		return 3
	case x < 0.985:
		return 4
	case x < 0.993:
		return 5
	case x < 0.998:
		return 6
	default:
		return 7
	}
}

// policyForUA maps a user-agent family to its coalescing policy.
func policyForUA(ua string) (browser.Policy, bool) {
	switch ua {
	case "firefox":
		return browser.PolicyFirefoxOrigin, true
	case "chrome":
		return browser.PolicyChromium, true
	default:
		return 0, false // HTTP/1.1-era clients: no H2 coalescing
	}
}

// VisitResult summarizes one page view.
type VisitResult struct {
	Zone            string
	UA              string
	NewThirdParty   int // fresh TLS connections opened to the third party
	CoalescedPools  int
	ThirdPartyTotal int // third-party request pools exercised
}

// Visit simulates one page view of zone by a client with the given
// user-agent on the given day, emitting sampled log records.
func (e *Experiment) Visit(z *Zone, ua string, day int) VisitResult {
	res := VisitResult{Zone: z.Host, UA: ua}
	observe := func(r LogRecord) {
		if day >= 0 { // day < 0: active measurement, not production logs
			e.CDN.Pipeline().Observe(r)
		}
	}
	zoneConn := e.connID.Add(1)
	observe(LogRecord{
		Day: day, ConnID: zoneConn, SNI: z.Host, Host: z.Host,
		ArrivalOrder: 1, Treatment: z.Treatment, UserAgent: ua,
	})
	if z.Churned {
		return res
	}

	policy, h2 := policyForUA(ua)
	var b *browser.Browser
	if h2 {
		b = browser.New(policy)
		b.Request(e.CDN, z.Host)
	}

	// Per-connection log state; connections are identified by the
	// hostname they were opened for (the TLS SNI).
	type connState struct {
		id    uint64
		order int
	}
	conns := map[string]*connState{z.Host: {id: zoneConn, order: 1}}

	for pool := 0; pool < z.ThirdPartyPools; pool++ {
		res.ThirdPartyTotal++
		anonymous := false
		if pool == 0 {
			anonymous = z.UsesAnonymousFetch
		} else {
			anonymous = e.rng.Float64() < 0.5
		}
		if e.CDN.Phase() == PhaseOrigin && e.rng.Float64() < e.Cfg.OriginFetchFailFrac {
			anonymous = true
		}
		if !h2 || anonymous {
			// Separate, uncredentialed pool: always a fresh connection.
			res.NewThirdParty++
			id := e.connID.Add(1)
			observe(LogRecord{
				Day: day, ConnID: id, SNI: e.CDN.ThirdParty, Host: e.CDN.ThirdParty,
				RefererHost: z.Host, ArrivalOrder: 1, Treatment: z.Treatment, UserAgent: ua,
			})
			continue
		}
		out := b.Request(e.CDN, e.CDN.ThirdParty)
		switch {
		case out.Reused:
			cs := conns[out.ConnHost]
			if cs == nil { // defensive: unknown carrier connection
				cs = &connState{id: e.connID.Add(1)}
				conns[out.ConnHost] = cs
			}
			cs.order++
			if out.Coalesced() {
				res.CoalescedPools++
			}
			observe(LogRecord{
				Day: day, ConnID: cs.id, SNI: out.ConnHost, Host: e.CDN.ThirdParty,
				RefererHost: z.Host, ArrivalOrder: cs.order, Treatment: z.Treatment, UserAgent: ua,
			})
		case out.NewConnection:
			res.NewThirdParty++
			id := e.connID.Add(1)
			conns[e.CDN.ThirdParty] = &connState{id: id, order: 1}
			observe(LogRecord{
				Day: day, ConnID: id, SNI: e.CDN.ThirdParty, Host: e.CDN.ThirdParty,
				RefererHost: z.Host, ArrivalOrder: 1, Treatment: z.Treatment, UserAgent: ua,
			})
		}
	}
	return res
}

// sampleUA draws a user-agent family from the configured shares.
func (e *Experiment) sampleUA() string {
	x := e.rng.Float64()
	switch {
	case x < e.Cfg.FirefoxShare:
		return "firefox"
	case x < e.Cfg.FirefoxShare+e.Cfg.ChromeShare:
		return "chrome"
	default:
		return "legacy"
	}
}

// RunDay simulates one day of passive traffic over all sample zones.
func (e *Experiment) RunDay(day int) {
	for _, z := range e.SampleZones {
		for v := 0; v < e.Cfg.VisitsPerZonePerDay; v++ {
			e.Visit(z, e.sampleUA(), day)
		}
	}
}

// Longitudinal runs a multi-day deployment: days [0, total); the given
// phase is active during [phaseStart, phaseEnd); baseline otherwise.
// It returns per-day new-TLS-connection counts to the third party for
// control and experiment, computed from the sampled log with the §5.2
// rules (Figure 8). For the ORIGIN phase the paper filtered to Firefox;
// pass uaFilter="firefox" for that view.
func (e *Experiment) Longitudinal(total, phaseStart, phaseEnd int, phase Phase, isolated netip.Addr, uaFilter string) (control, experiment measure.Series) {
	e.CDN.Pipeline().Reset()
	for day := 0; day < total; day++ {
		switch {
		case day == phaseStart:
			switch phase {
			case PhaseIP:
				e.CDN.EnterPhaseIP()
			case PhaseOrigin:
				e.CDN.EnterPhaseOrigin(isolated)
			}
		case day == phaseEnd:
			e.CDN.ExitExperiment()
		}
		e.RunDay(day)
	}
	e.CDN.ExitExperiment()

	ctl := make([]float64, total)
	exp := make([]float64, total)
	seen := map[uint64]bool{}
	for _, r := range e.CDN.Pipeline().Records() {
		if r.Host != e.CDN.ThirdParty || r.FlagHostNeSNI {
			continue
		}
		if uaFilter != "" && r.UserAgent != uaFilter {
			continue
		}
		if seen[r.ConnID] {
			continue
		}
		seen[r.ConnID] = true
		switch r.Treatment {
		case TreatmentControl:
			ctl[r.Day]++
		case TreatmentExperiment:
			exp[r.Day]++
		}
	}
	return measure.Series{Label: "control", Values: ctl},
		measure.Series{Label: "experiment", Values: exp}
}

// ActiveMeasurement repeats the §3 methodology on the sample set with a
// fresh Firefox per site (caches cleared between loads): it returns the
// number of new third-party connections per site for the control and
// experiment groups (Figures 7a/7b).
func (e *Experiment) ActiveMeasurement() (control, experiment []int) {
	for _, z := range e.SampleZones {
		res := e.Visit(z, "firefox", -1)
		switch z.Treatment {
		case TreatmentControl:
			control = append(control, res.NewThirdParty)
		case TreatmentExperiment:
			experiment = append(experiment, res.NewThirdParty)
		}
	}
	return control, experiment
}
