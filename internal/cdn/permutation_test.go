package cdn

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
)

// Zones sorts by host, the zones map key, so the listing must be
// independent of both registration order and map iteration order.
func TestZonesRegistrationOrderInvariant(t *testing.T) {
	hosts := make([]string, 12)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("www.zone-%02d.example", i)
	}
	list := func(order []int) []string {
		c := New(Config{})
		for _, i := range order {
			c.AddZone(hosts[i], SLATierFree, netip.AddrFrom4([4]byte{10, 0, byte(i), 1}))
		}
		var out []string
		for _, z := range c.Zones() {
			out = append(out, z.Host)
		}
		return out
	}
	want := list([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	for i := 1; i < len(want); i++ {
		if want[i-1] >= want[i] {
			t.Fatalf("Zones not strictly sorted: %q before %q", want[i-1], want[i])
		}
	}
	rs := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		got := list(rs.Perm(len(hosts)))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: Zones depends on registration order: got %v, want %v", trial, got, want)
			}
		}
	}
}
