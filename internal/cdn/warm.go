package cdn

import (
	"math/rand"
	"net/netip"

	"respectorigin/internal/browser"
	"respectorigin/internal/cache"
	"respectorigin/internal/core"
)

// UseSession adopts a core.Session's shared wiring: the experiment's
// recorder becomes the session's. The fault plan and retry budget are
// intentionally NOT taken from the session here — they flow through
// ExperimentConfig at SetupExperiment time, where the injector's stream
// is seeded (Seed ^ 0x5fa17e), so a session-driven run stays
// byte-identical to a config-driven one.
func (e *Experiment) UseSession(s *core.Session) {
	e.SetRecorder(s.Rec)
}

// WarmCold measures the marginal cost of returning visitors: every
// sample zone's page is visited revisits times by one Firefox client
// whose warm-path cache (built fresh per zone from opts) persists
// across visits, with the cache clock advanced by the configured
// revisit interval between them. Element i of the result sums what
// visit i+1 cost across all zones; element 0 is the cold load.
//
// The visit structure — which third-party pools are anonymous — is
// drawn once per zone from a dedicated stream, so every revisit replays
// the identical request sequence and per-visit differences decompose
// exactly into {coalescing, DNS cache, TLS resumption, cert memo}.
// Visits never touch the log pipeline or the experiment's own RNG, so
// running WarmCold leaves every other measurement untouched.
func (e *Experiment) WarmCold(revisits int, opts cache.Options) []core.VisitCosts {
	return e.WarmColdProto(revisits, opts, core.ProtoH2)
}

// WarmColdProto is WarmCold under an explicit application protocol.
// ProtoH2 reproduces WarmCold byte for byte (the protocol field's zero
// value changes nothing); ProtoH1 disables cross-host coalescing;
// ProtoH3 pays QUIC handshake paths and tracks token/0-RTT state. The
// per-zone anonymity stream is drawn identically for every protocol, so
// per-protocol differences isolate the transport effect.
func (e *Experiment) WarmColdProto(revisits int, opts cache.Options, proto core.Protocol) []core.VisitCosts {
	if revisits <= 0 {
		return nil
	}
	costs := make([]core.VisitCosts, revisits)
	for zi, z := range e.SampleZones {
		if z.Churned {
			continue
		}
		zrng := rand.New(rand.NewSource(e.Cfg.Seed ^ (int64(zi)+1)*0x9e3779b9))
		anon := make([]bool, z.ThirdPartyPools)
		for p := range anon {
			if p == 0 {
				anon[p] = z.UsesAnonymousFetch
			} else {
				anon[p] = zrng.Float64() < 0.5
			}
		}
		c := cache.New(opts)
		b := browser.New(browser.PolicyFirefoxOrigin, browser.WithCache(c), browser.WithProtocol(proto))
		for v := 0; v < revisits; v++ {
			if v > 0 {
				c.Clock().AdvanceMs(c.Opts().RevisitIntervalMs)
				b.Reset() // fresh browsing session; warm state survives in c
			}
			costs[v].Add(e.warmVisit(z, b, c, anon, proto))
		}
	}
	return costs
}

// warmVisit is one page view of z through a persistent-cache browser,
// returning the visit's cost ledger. Anonymous third-party pools do not
// ride the coalescing pool but still see the client's DNS cache, ticket
// store and chain memo, mirroring how uncredentialed requests share
// OS- and TLS-layer state.
func (e *Experiment) warmVisit(z *Zone, b *browser.Browser, c *cache.Cache, anon []bool, proto core.Protocol) core.VisitCosts {
	vc := core.VisitCosts{Pages: 1}
	out := b.Request(e.CDN, z.Host)
	addOutcome(&vc, out)
	if out.Err != nil {
		return vc
	}
	for _, anonymous := range anon {
		if anonymous {
			e.anonymousFetch(&vc, c, proto)
			continue
		}
		addOutcome(&vc, b.Request(e.CDN, e.CDN.ThirdParty))
	}
	return vc
}

// anonymousFetch models one uncredentialed third-party fetch: always a
// fresh connection (never coalesced), but DNS, resumption and the memo
// still apply — under the visit's protocol key, with h3 fetches also
// settling address validation.
func (e *Experiment) anonymousFetch(vc *core.VisitCosts, c *cache.Cache, proto core.Protocol) {
	tp := e.CDN.ThirdParty
	if _, negative, ok := c.LookupDNS(tp); ok && !negative {
		vc.DNSCacheHits++
	} else {
		vc.DNSQueries++
		if addrs, ttl, err := e.CDN.LookupTTL(tp); err == nil && len(addrs) > 0 {
			c.PutDNS(tp, addrs, ttl)
		}
	}
	vc.ConnsNeeded++
	sans := e.CDN.CertSANs(tp, netip.Addr{})
	wire := proto.Wire()
	resumed := c.RedeemTicketProto(tp, wire)
	if resumed {
		vc.ResumedTLS++
	} else {
		vc.FullHandshakes++
		if c.ValidateChain("", sans) {
			vc.CertMemoHits++
		} else {
			vc.Validations++
		}
	}
	c.StoreTicketProto(sans, wire)
	if proto == core.ProtoH3 {
		if c.RedeemToken(tp, wire) {
			vc.AddrTokenHits++
			if resumed {
				vc.ZeroRTT++
			}
		} else {
			vc.AddrValidations++
		}
		c.StoreToken(sans, wire)
	}
}

// addOutcome folds one browser outcome into a cost ledger, attributing
// each avoided unit to its cause exactly as the browser accounted it.
func addOutcome(vc *core.VisitCosts, out browser.Outcome) {
	vc.DNSQueries += out.DNSQueries
	vc.DNSCacheHits += out.DNSCacheHits
	if out.NegCacheHit {
		vc.DNSNegHits++
	}
	if out.Err != nil {
		return
	}
	switch {
	case out.Reused:
		vc.ConnsNeeded++
		vc.ReusedConns++
		if out.DNSQueries == 0 && out.DNSCacheHits == 0 {
			// Reuse that issued no lookup at all (the SkipOriginDNS
			// path): the coalescing decision absorbed the DNS need too.
			vc.DNSCoalesced++
		}
	case out.NewConnection:
		vc.ConnsNeeded++
		if out.ResumedTLS {
			vc.ResumedTLS++
		} else {
			vc.FullHandshakes++
			if out.CertMemoHit {
				vc.CertMemoHits++
			} else {
				vc.Validations++
			}
		}
		if out.Proto == browser.ProtoH3 {
			if out.AddrTokenHit {
				vc.AddrTokenHits++
			} else {
				vc.AddrValidations++
			}
			if out.ZeroRTT {
				vc.ZeroRTT++
			}
		}
	}
}
