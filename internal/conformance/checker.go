// Package conformance provides protocol-correctness tooling for the
// ORIGIN stack: an RFC 9113 flow-control invariant checker that plugs
// into the h2 layer's FlowHook, and a determinism differential checker
// that replays a seeded crawl at several worker counts and diffs every
// artifact byte-for-byte.
//
// The package deliberately does not import internal/h2. The hook
// interface there uses only built-in types, so FlowChecker satisfies it
// structurally — which lets h2's own (package-internal) tests import
// this package without an import cycle.
package conformance

import (
	"fmt"
	"sync"
)

// RFC 9113 flow-control constants, mirrored here rather than imported
// (see the package comment for why).
const (
	initialWindowSize = 65535
	maxWindow         = 1<<31 - 1
)

// streamLedger mirrors one stream's send-side accounting.
type streamLedger struct {
	window  int64 // mirrored send window
	taken   int64 // cumulative bytes reserved via take
	written int64 // cumulative DATA payload bytes reported written
	open    bool
}

// FlowChecker is a FlowHook implementation that mirrors an endpoint's
// flow-control state and records every invariant violation it observes:
//
//   - take must reserve at least 1 byte and never more than either the
//     stream or the connection window held (RFC 9113 §6.9.1);
//   - accepted WINDOW_UPDATE and SETTINGS_INITIAL_WINDOW_SIZE changes
//     must keep every window at or below 2^31-1 (§6.9.1);
//   - DATA bytes written never exceed bytes reserved, per stream and in
//     total (byte conservation, checked continuously);
//   - the receive window never goes negative and the available+unsent
//     split always sums to the initial window.
//
// Use one FlowChecker per connection endpoint: the ledger models a
// single connection window, so sharing one checker across connections
// conflates their accounting.
//
// All methods are safe for concurrent use.
type FlowChecker struct {
	name string

	mu         sync.Mutex
	conn       int64 // mirrored connection send window
	connTaken  int64
	connData   int64
	initial    int64
	streams    map[uint32]*streamLedger
	closed     map[uint32]*streamLedger // retained for conservation checks
	recvAvail  int64
	recvUnsent int64

	wentNegative bool
	violations   []string
}

// NewFlowChecker returns a checker with the RFC-default 65535-byte
// windows. The name prefixes every violation message, so a test driving
// both endpoints can tell client from server.
func NewFlowChecker(name string) *FlowChecker {
	return &FlowChecker{
		name:      name,
		conn:      initialWindowSize,
		initial:   initialWindowSize,
		streams:   make(map[uint32]*streamLedger),
		closed:    make(map[uint32]*streamLedger),
		recvAvail: initialWindowSize,
	}
}

func (c *FlowChecker) violatef(format string, args ...any) {
	c.violations = append(c.violations, c.name+": "+fmt.Sprintf(format, args...))
}

// FlowEvent implements the h2 FlowHook interface.
func (c *FlowChecker) FlowEvent(op string, streamID uint32, n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch op {
	case "open":
		if _, dup := c.streams[streamID]; dup {
			c.violatef("stream %d opened twice", streamID)
		}
		if n != c.initial {
			c.violatef("stream %d opened with window %d, initial is %d", streamID, n, c.initial)
		}
		c.streams[streamID] = &streamLedger{window: n, open: true}

	case "close":
		st, ok := c.streams[streamID]
		if !ok {
			c.violatef("close of unknown stream %d", streamID)
			return
		}
		st.open = false
		c.closed[streamID] = st
		delete(c.streams, streamID)

	case "take":
		st, ok := c.streams[streamID]
		if !ok {
			c.violatef("take of %d bytes on unknown stream %d", n, streamID)
			return
		}
		if n < 1 {
			c.violatef("take reserved %d bytes on stream %d; must be at least 1", n, streamID)
		}
		if n > st.window {
			c.violatef("take of %d exceeds stream %d window %d", n, streamID, st.window)
		}
		if n > c.conn {
			c.violatef("take of %d on stream %d exceeds connection window %d", n, streamID, c.conn)
		}
		st.window -= n
		st.taken += n
		c.conn -= n
		c.connTaken += n

	case "add":
		if streamID == 0 {
			if c.conn+n > maxWindow {
				c.violatef("accepted WINDOW_UPDATE drives connection window to %d, above 2^31-1", c.conn+n)
			}
			c.conn += n
			return
		}
		st, ok := c.streams[streamID]
		if !ok {
			// WINDOW_UPDATE racing stream closure is legal and ignored by
			// the endpoint; the hook should not have reported it applied.
			c.violatef("WINDOW_UPDATE applied to unknown stream %d", streamID)
			return
		}
		if st.window+n > maxWindow {
			c.violatef("accepted WINDOW_UPDATE drives stream %d window to %d, above 2^31-1", streamID, st.window+n)
		}
		st.window += n

	case "set_initial":
		if n > maxWindow {
			c.violatef("accepted SETTINGS_INITIAL_WINDOW_SIZE %d above 2^31-1", n)
		}
		delta := n - c.initial
		c.initial = n
		for id, st := range c.streams {
			st.window += delta
			if st.window > maxWindow {
				c.violatef("initial-window change drives stream %d window to %d, above 2^31-1", id, st.window)
			}
			if st.window < 0 {
				// Legal per RFC 9113 §6.9.2 — recorded, not a violation.
				c.wentNegative = true
			}
		}

	case "data":
		st := c.streams[streamID]
		if st == nil {
			st = c.closed[streamID]
		}
		if st == nil {
			c.violatef("DATA of %d bytes on unknown stream %d", n, streamID)
			return
		}
		st.written += n
		c.connData += n
		if st.written > st.taken {
			c.violatef("stream %d wrote %d DATA bytes but reserved only %d", streamID, st.written, st.taken)
		}
		if c.connData > c.connTaken {
			c.violatef("connection wrote %d DATA bytes but reserved only %d", c.connData, c.connTaken)
		}

	case "recv":
		c.recvAvail -= n
		c.recvUnsent += n
		if c.recvAvail < 0 {
			c.violatef("receive window driven to %d by %d accepted DATA bytes", c.recvAvail, n)
		}

	case "recv_replenish":
		c.recvUnsent -= n
		c.recvAvail += n
		if c.recvUnsent < 0 {
			c.violatef("replenished %d bytes more than were consumed", -c.recvUnsent)
		}
		if c.recvAvail > maxWindow {
			c.violatef("replenish drives receive window to %d, above 2^31-1", c.recvAvail)
		}

	default:
		c.violatef("unknown flow event %q (stream %d, n %d)", op, streamID, n)
	}
}

// Check returns the violations of the continuously-enforceable
// invariants observed so far (nil when the endpoint behaved). It is safe
// to call under fault injection: aborted streams legitimately write
// fewer DATA bytes than they reserved, which Check does not flag.
func (c *FlowChecker) Check() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.recvAvail+c.recvUnsent != initialWindowSize {
		c.violatef("receive ledger out of balance: avail %d + unsent %d != %d",
			c.recvAvail, c.recvUnsent, int64(initialWindowSize))
	}
	return append([]string(nil), c.violations...)
}

// CheckConservation additionally demands strict byte conservation — every
// reserved byte was written — which holds only for runs with no aborted
// streams. Call it in clean (non-chaos) tests after all streams closed.
func (c *FlowChecker) CheckConservation() []string {
	out := c.Check()
	c.mu.Lock()
	defer c.mu.Unlock()
	check := func(id uint32, st *streamLedger) {
		if st.taken != st.written {
			out = append(out, fmt.Sprintf("%s: stream %d reserved %d bytes but wrote %d",
				c.name, id, st.taken, st.written))
		}
	}
	for id, st := range c.streams {
		check(id, st)
	}
	for id, st := range c.closed {
		check(id, st)
	}
	if c.connTaken != c.connData {
		out = append(out, fmt.Sprintf("%s: connection reserved %d bytes but wrote %d",
			c.name, c.connTaken, c.connData))
	}
	return out
}

// WentNegative reports whether any stream window was legally driven
// negative by a SETTINGS_INITIAL_WINDOW_SIZE shrink (RFC 9113 §6.9.2) —
// useful for tests asserting that the negative-window path was actually
// exercised.
func (c *FlowChecker) WentNegative() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wentNegative
}
