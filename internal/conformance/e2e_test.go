package conformance_test

import (
	"bytes"
	"net"
	"testing"

	"respectorigin/internal/conformance"
	"respectorigin/internal/h2"
)

// TestFlowCheckerOnLiveConnection runs the invariant checker as the
// FlowHook of both endpoints of a real h2 connection pushing bodies in
// both directions, and requires strict byte conservation: every reserved
// flow-control byte became a DATA byte on the wire.
func TestFlowCheckerOnLiveConnection(t *testing.T) {
	clientCheck := conformance.NewFlowChecker("client")
	serverCheck := conformance.NewFlowChecker("server")

	respBody := bytes.Repeat([]byte("origin!"), 9000) // 63000 B: spans frames
	srv := &h2.Server{
		Handler: h2.HandlerFunc(func(w *h2.ResponseWriter, r *h2.Request) {
			_, _ = w.Write(respBody)
		}),
		FlowHook: serverCheck,
	}
	clientEnd, serverEnd := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(serverEnd) }()

	cc, err := h2.NewClientConn(clientEnd, h2.ClientConnOptions{
		Origin:   "a.example",
		FlowHook: clientCheck,
	})
	if err != nil {
		t.Fatalf("NewClientConn: %v", err)
	}
	reqBody := bytes.Repeat([]byte("payload."), 5000) // 40000 B upload
	for i := 0; i < 3; i++ {
		resp, err := cc.RoundTrip(&h2.Request{
			Method: "POST", Scheme: "https", Authority: "a.example", Path: "/up",
			Body: reqBody,
		})
		if err != nil {
			t.Fatalf("RoundTrip %d: %v", i, err)
		}
		if !bytes.Equal(resp.Body, respBody) {
			t.Fatalf("RoundTrip %d: body %d bytes, want %d", i, len(resp.Body), len(respBody))
		}
	}
	_ = cc.Close()
	<-done

	for _, v := range clientCheck.CheckConservation() {
		t.Error(v)
	}
	for _, v := range serverCheck.CheckConservation() {
		t.Error(v)
	}
}

// TestReplayDeterminismSmall cross-checks a small seeded crawl at three
// worker counts: corpus, trace, and report must be byte-identical.
func TestReplayDeterminismSmall(t *testing.T) {
	divs, err := conformance.RunReplay(conformance.ReplayConfig{
		Sites:   60,
		Seed:    7,
		Workers: []int{1, 3, 8},
		Repeats: 2,
	})
	if err != nil {
		t.Fatalf("RunReplay: %v", err)
	}
	for _, d := range divs {
		t.Error(d.String())
	}
}
