package conformance

import (
	"strings"
	"testing"
)

func assertViolation(t *testing.T, got []string, want string) {
	t.Helper()
	for _, v := range got {
		if strings.Contains(v, want) {
			return
		}
	}
	t.Errorf("violations %q do not mention %q", got, want)
}

func TestCleanExchangeNoViolations(t *testing.T) {
	c := NewFlowChecker("clean")
	c.FlowEvent("open", 1, 65535)
	c.FlowEvent("take", 1, 1000)
	c.FlowEvent("data", 1, 1000)
	c.FlowEvent("add", 1, 1000)
	c.FlowEvent("add", 0, 1000)
	c.FlowEvent("recv", 0, 40000)
	c.FlowEvent("recv_replenish", 0, 40000)
	c.FlowEvent("close", 1, 0)
	if got := c.CheckConservation(); len(got) != 0 {
		t.Errorf("clean exchange produced violations: %q", got)
	}
	if c.WentNegative() {
		t.Error("WentNegative without an initial-window shrink")
	}
}

func TestOverReservationDetected(t *testing.T) {
	c := NewFlowChecker("x")
	c.FlowEvent("open", 1, 65535)
	c.FlowEvent("take", 1, 65536) // one past the stream window
	assertViolation(t, c.Check(), "exceeds stream 1 window")
	assertViolation(t, c.Check(), "exceeds connection window")
}

func TestZeroByteTakeDetected(t *testing.T) {
	c := NewFlowChecker("x")
	c.FlowEvent("open", 1, 65535)
	c.FlowEvent("take", 1, 0)
	assertViolation(t, c.Check(), "must be at least 1")
}

func TestWindowOverflowDetected(t *testing.T) {
	c := NewFlowChecker("x")
	c.FlowEvent("open", 1, 65535)
	c.FlowEvent("add", 0, 1<<31) // drives conn window past 2^31-1
	assertViolation(t, c.Check(), "above 2^31-1")

	c2 := NewFlowChecker("y")
	c2.FlowEvent("open", 1, 65535)
	c2.FlowEvent("add", 1, 1<<31)
	assertViolation(t, c2.Check(), "stream 1 window")
}

func TestConservationMismatchDetected(t *testing.T) {
	c := NewFlowChecker("x")
	c.FlowEvent("open", 1, 65535)
	c.FlowEvent("take", 1, 500)
	c.FlowEvent("data", 1, 200) // 300 reserved bytes never written
	c.FlowEvent("close", 1, 0)
	if got := c.Check(); len(got) != 0 {
		t.Errorf("continuous check flagged an under-write: %q", got)
	}
	assertViolation(t, c.CheckConservation(), "reserved 500 bytes but wrote 200")
}

func TestDataBeyondReservationDetected(t *testing.T) {
	c := NewFlowChecker("x")
	c.FlowEvent("open", 1, 65535)
	c.FlowEvent("take", 1, 100)
	c.FlowEvent("data", 1, 101)
	assertViolation(t, c.Check(), "wrote 101 DATA bytes but reserved only 100")
}

func TestNegativeWindowLegalAndRecorded(t *testing.T) {
	c := NewFlowChecker("x")
	c.FlowEvent("open", 1, 65535)
	c.FlowEvent("take", 1, 1000)
	c.FlowEvent("set_initial", 0, 0) // stream window now -1000
	if got := c.Check(); len(got) != 0 {
		t.Errorf("legal §6.9.2 negative window flagged: %q", got)
	}
	if !c.WentNegative() {
		t.Error("negative window not recorded")
	}
	// Credit restores the window; writing the reserved bytes conserves.
	c.FlowEvent("add", 1, 1500)
	c.FlowEvent("data", 1, 1000)
	c.FlowEvent("close", 1, 0)
	if got := c.CheckConservation(); len(got) != 0 {
		t.Errorf("post-recovery violations: %q", got)
	}
}

func TestRecvOverflowDetected(t *testing.T) {
	c := NewFlowChecker("x")
	c.FlowEvent("recv", 0, 65536) // one past the receive window
	assertViolation(t, c.Check(), "receive window driven to -1")
}

func TestUnknownOpDetected(t *testing.T) {
	c := NewFlowChecker("x")
	c.FlowEvent("warp", 9, 1)
	assertViolation(t, c.Check(), `unknown flow event "warp"`)
}
