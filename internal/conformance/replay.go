package conformance

import (
	"bytes"
	"fmt"

	"respectorigin/internal/cache"
	"respectorigin/internal/core"
	"respectorigin/internal/corpus"
	"respectorigin/internal/har"
	"respectorigin/internal/netsim"
	"respectorigin/internal/obs"
	"respectorigin/internal/report"
	"respectorigin/internal/webgen"
)

// ReplayConfig parameterizes a determinism differential run.
type ReplayConfig struct {
	Sites   int   // corpus size per run
	Seed    int64 // generator seed, fixed across all runs
	Workers []int // worker counts to cross-check (e.g. 1, 4, 16)
	Repeats int   // runs per worker count; minimum 1
}

// A Divergence pinpoints the first byte at which a run's artifact
// differed from the baseline run.
type Divergence struct {
	Artifact string // "corpus", "trace", or "report"
	Workers  int    // worker count of the diverging run
	Repeat   int    // repeat index of the diverging run
	Offset   int    // first differing byte offset
	Detail   string // short context around the difference
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s diverged at byte %d (workers=%d repeat=%d): %s",
		d.Artifact, d.Offset, d.Workers, d.Repeat, d.Detail)
}

// artifacts is one run's complete observable output.
type artifacts struct {
	corpus   []byte // crawl NDJSON
	columnar []byte // the same pages in the columnar encoding
	trace    []byte // obs trace NDJSON
	report   []byte // analysis tables and headline
}

// RunReplay replays the seeded crawl once per (worker count, repeat)
// pair and byte-compares every artifact against the first run. The
// crawl pipeline promises output independent of both scheduling and
// worker count; any nonzero result is a determinism bug.
func RunReplay(cfg ReplayConfig) ([]Divergence, error) {
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 4, 16}
	}
	if cfg.Repeats < 1 {
		cfg.Repeats = 1
	}
	var base *artifacts
	var divs []Divergence
	for _, w := range cfg.Workers {
		for r := 0; r < cfg.Repeats; r++ {
			got, err := runOnce(cfg.Sites, cfg.Seed, w)
			if err != nil {
				return nil, fmt.Errorf("run workers=%d repeat=%d: %w", w, r, err)
			}
			if base == nil {
				base = got
				continue
			}
			for _, cmp := range []struct {
				name       string
				want, have []byte
			}{
				{"corpus", base.corpus, got.corpus},
				{"columnar", base.columnar, got.columnar},
				{"trace", base.trace, got.trace},
				{"report", base.report, got.report},
			} {
				if off, detail, same := firstDiff(cmp.want, cmp.have); !same {
					divs = append(divs, Divergence{
						Artifact: cmp.name, Workers: w, Repeat: r,
						Offset: off, Detail: detail,
					})
				}
			}
		}
	}
	return divs, nil
}

// runOnce mirrors the cmd/crawl + cmd/report pipeline in memory: stream
// the generated corpus through the corpus API into both encodings while
// recording trace events, cross-check the encodings against each other,
// then re-parse the NDJSON (exactly what the report command would read
// back) and render the analysis.
func runOnce(sites int, seed int64, workers int) (*artifacts, error) {
	cfg := webgen.DefaultConfig()
	cfg.Sites = sites
	cfg.Seed = seed
	cfg.Workers = workers

	var ndjsonBuf, colBuf bytes.Buffer
	trace := obs.NewTrace()
	nw := corpus.NewWriter(&ndjsonBuf, corpus.FormatNDJSON)
	cw := corpus.NewWriter(&colBuf, corpus.FormatColumnar)
	if _, err := webgen.GenerateStream(cfg, func(p *har.Page) error {
		core.EmitPageEvents(trace, p)
		if err := nw.Write(p); err != nil {
			return err
		}
		return cw.Write(p)
	}); err != nil {
		return nil, err
	}
	if err := nw.Close(); err != nil {
		return nil, err
	}
	if err := cw.Close(); err != nil {
		return nil, err
	}
	var traceOut bytes.Buffer
	if err := trace.WriteNDJSON(&traceOut); err != nil {
		return nil, err
	}

	// Cross-format gate: decoding the columnar bytes and re-encoding as
	// NDJSON must reproduce the direct NDJSON byte for byte. A mismatch
	// is a codec bug, not a scheduling divergence, so it fails the run
	// outright rather than producing a Divergence.
	var roundtrip bytes.Buffer
	rw := corpus.NewWriter(&roundtrip, corpus.FormatNDJSON)
	if _, err := corpus.Copy(rw, corpus.NewReader(bytes.NewReader(colBuf.Bytes()), corpus.FormatColumnar)); err != nil {
		return nil, fmt.Errorf("columnar decode: %w", err)
	}
	if err := rw.Close(); err != nil {
		return nil, err
	}
	if off, detail, same := firstDiff(ndjsonBuf.Bytes(), roundtrip.Bytes()); !same {
		return nil, fmt.Errorf("columnar->NDJSON round trip diverged from direct NDJSON at byte %d: %s", off, detail)
	}

	pages, err := corpus.ReadAll(corpus.NewReader(bytes.NewReader(ndjsonBuf.Bytes()), corpus.FormatNDJSON))
	if err != nil {
		return nil, err
	}
	ds := &webgen.Dataset{Pages: pages, ASDB: webgen.RebuildASDB(pages)}
	c := report.NewCorpusWorkers(ds, workers)
	var rep bytes.Buffer
	_, t1 := c.Table1(5)
	rep.WriteString(t1)
	_, t2 := c.Table2(10)
	rep.WriteString(t2)
	_, _, t3 := c.Table3()
	rep.WriteString(t3)
	_, f3 := c.Figure3()
	rep.WriteString(f3)
	_, hl := c.Headline()
	rep.WriteString(hl)
	// Per-protocol savings decomposition: replays the corpus under h1,
	// h2 and h3, so protocol-versioned warm paths are inside the
	// byte-identity gate too.
	sweep := c.ProtoSweep(2, cache.Options{})
	rep.WriteString(report.ProtoSweepTable(sweep, netsim.DefaultParams(), "corpus"))

	return &artifacts{
		corpus:   ndjsonBuf.Bytes(),
		columnar: colBuf.Bytes(),
		trace:    traceOut.Bytes(),
		report:   rep.Bytes(),
	}, nil
}

// firstDiff locates the first differing byte and returns a short
// context window around it from both sides.
func firstDiff(want, have []byte) (off int, detail string, same bool) {
	if bytes.Equal(want, have) {
		return 0, "", true
	}
	n := len(want)
	if len(have) < n {
		n = len(have)
	}
	off = n
	for i := 0; i < n; i++ {
		if want[i] != have[i] {
			off = i
			break
		}
	}
	ctx := func(b []byte) string {
		lo, hi := off-20, off+20
		if lo < 0 {
			lo = 0
		}
		if hi > len(b) {
			hi = len(b)
		}
		return fmt.Sprintf("%q", b[lo:hi])
	}
	if off == n {
		detail = fmt.Sprintf("lengths differ: baseline %d bytes, run %d bytes", len(want), len(have))
	} else {
		detail = fmt.Sprintf("baseline %s vs run %s", ctx(want), ctx(have))
	}
	return off, detail, false
}
