package conformance

import (
	"bytes"
	"fmt"

	"respectorigin/internal/cache"
	"respectorigin/internal/core"
	"respectorigin/internal/har"
	"respectorigin/internal/netsim"
	"respectorigin/internal/obs"
	"respectorigin/internal/report"
	"respectorigin/internal/webgen"
)

// ReplayConfig parameterizes a determinism differential run.
type ReplayConfig struct {
	Sites   int   // corpus size per run
	Seed    int64 // generator seed, fixed across all runs
	Workers []int // worker counts to cross-check (e.g. 1, 4, 16)
	Repeats int   // runs per worker count; minimum 1
}

// A Divergence pinpoints the first byte at which a run's artifact
// differed from the baseline run.
type Divergence struct {
	Artifact string // "corpus", "trace", or "report"
	Workers  int    // worker count of the diverging run
	Repeat   int    // repeat index of the diverging run
	Offset   int    // first differing byte offset
	Detail   string // short context around the difference
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s diverged at byte %d (workers=%d repeat=%d): %s",
		d.Artifact, d.Offset, d.Workers, d.Repeat, d.Detail)
}

// artifacts is one run's complete observable output.
type artifacts struct {
	corpus []byte // crawl NDJSON
	trace  []byte // obs trace NDJSON
	report []byte // analysis tables and headline
}

// RunReplay replays the seeded crawl once per (worker count, repeat)
// pair and byte-compares every artifact against the first run. The
// crawl pipeline promises output independent of both scheduling and
// worker count; any nonzero result is a determinism bug.
func RunReplay(cfg ReplayConfig) ([]Divergence, error) {
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 4, 16}
	}
	if cfg.Repeats < 1 {
		cfg.Repeats = 1
	}
	var base *artifacts
	var divs []Divergence
	for _, w := range cfg.Workers {
		for r := 0; r < cfg.Repeats; r++ {
			got, err := runOnce(cfg.Sites, cfg.Seed, w)
			if err != nil {
				return nil, fmt.Errorf("run workers=%d repeat=%d: %w", w, r, err)
			}
			if base == nil {
				base = got
				continue
			}
			for _, cmp := range []struct {
				name       string
				want, have []byte
			}{
				{"corpus", base.corpus, got.corpus},
				{"trace", base.trace, got.trace},
				{"report", base.report, got.report},
			} {
				if off, detail, same := firstDiff(cmp.want, cmp.have); !same {
					divs = append(divs, Divergence{
						Artifact: cmp.name, Workers: w, Repeat: r,
						Offset: off, Detail: detail,
					})
				}
			}
		}
	}
	return divs, nil
}

// runOnce mirrors the cmd/crawl + cmd/report pipeline in memory: stream
// the generated corpus to NDJSON while recording trace events, then
// re-parse the NDJSON (exactly what the report command would read back)
// and render the analysis.
func runOnce(sites int, seed int64, workers int) (*artifacts, error) {
	cfg := webgen.DefaultConfig()
	cfg.Sites = sites
	cfg.Seed = seed
	cfg.Workers = workers

	var corpus bytes.Buffer
	trace := obs.NewTrace()
	sw := har.NewStreamWriter(&corpus)
	if _, err := webgen.GenerateStream(cfg, func(p *har.Page) error {
		core.EmitPageEvents(trace, p)
		return sw.Write(p)
	}); err != nil {
		return nil, err
	}
	var traceOut bytes.Buffer
	if err := trace.WriteNDJSON(&traceOut); err != nil {
		return nil, err
	}

	pages, err := har.ReadJSON(bytes.NewReader(corpus.Bytes()))
	if err != nil {
		return nil, err
	}
	ds := &webgen.Dataset{Pages: pages, ASDB: webgen.RebuildASDB(pages)}
	c := report.NewCorpusWorkers(ds, workers)
	var rep bytes.Buffer
	_, t1 := c.Table1(5)
	rep.WriteString(t1)
	_, t2 := c.Table2(10)
	rep.WriteString(t2)
	_, _, t3 := c.Table3()
	rep.WriteString(t3)
	_, f3 := c.Figure3()
	rep.WriteString(f3)
	_, hl := c.Headline()
	rep.WriteString(hl)
	// Per-protocol savings decomposition: replays the corpus under h1,
	// h2 and h3, so protocol-versioned warm paths are inside the
	// byte-identity gate too.
	sweep := c.ProtoSweep(2, cache.Options{})
	rep.WriteString(report.ProtoSweepTable(sweep, netsim.DefaultParams(), "corpus"))

	return &artifacts{
		corpus: append([]byte(nil), corpus.Bytes()...),
		trace:  traceOut.Bytes(),
		report: rep.Bytes(),
	}, nil
}

// firstDiff locates the first differing byte and returns a short
// context window around it from both sides.
func firstDiff(want, have []byte) (off int, detail string, same bool) {
	if bytes.Equal(want, have) {
		return 0, "", true
	}
	n := len(want)
	if len(have) < n {
		n = len(have)
	}
	off = n
	for i := 0; i < n; i++ {
		if want[i] != have[i] {
			off = i
			break
		}
	}
	ctx := func(b []byte) string {
		lo, hi := off-20, off+20
		if lo < 0 {
			lo = 0
		}
		if hi > len(b) {
			hi = len(b)
		}
		return fmt.Sprintf("%q", b[lo:hi])
	}
	if off == n {
		detail = fmt.Sprintf("lengths differ: baseline %d bytes, run %d bytes", len(want), len(have))
	} else {
		detail = fmt.Sprintf("baseline %s vs run %s", ctx(want), ctx(have))
	}
	return off, detail, false
}
