package loadgen

import (
	"bytes"
	"math"
	"testing"

	"respectorigin/internal/cdn"
	"respectorigin/internal/obs"
)

// testConfig is a small-but-representative run: enough users for the
// warm paths, churn, and queueing to all engage.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Users = 4000
	cfg.RatePerSec = 400
	cfg.Zones = 16
	cfg.PoPs = 4
	cfg.PoPServers = 4
	cfg.RevisitMeanSec = 120
	cfg.IdleTimeoutSec = 60
	return cfg
}

func TestRunByteIdenticalAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 4, 16} {
		cfg := testConfig()
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := WriteNDJSON(&buf, res); err != nil {
			t.Fatalf("workers=%d: WriteNDJSON: %v", workers, err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("workers=%d summary differs:\n got %s\nwant %s", workers, buf.Bytes(), want)
		}
	}
}

func TestPoissonEmpiricalRate(t *testing.T) {
	// Property: the empirical arrival rate of the Poisson schedule
	// matches λ. With n exponential gaps the last arrival is Gamma(n,
	// 1/λ) with relative sd 1/√n, so 5% tolerance at n = 20000 is > 7σ.
	for _, lambda := range []float64{50, 500, 5000} {
		cfg := DefaultConfig()
		cfg.Users = 20000
		cfg.RatePerSec = lambda
		ts := cfg.withDefaults().arrivalTimes()
		if len(ts) != cfg.Users {
			t.Fatalf("λ=%g: got %d arrivals, want %d", lambda, len(ts), cfg.Users)
		}
		empirical := float64(len(ts)) / (ts[len(ts)-1] / 1000)
		if math.Abs(empirical-lambda)/lambda > 0.05 {
			t.Errorf("λ=%g: empirical rate %.1f departs more than 5%%", lambda, empirical)
		}
		for i := 1; i < len(ts); i++ {
			if ts[i] <= ts[i-1] {
				t.Fatalf("λ=%g: arrivals not strictly increasing at %d", lambda, i)
			}
		}
	}
}

func TestModulatedArrivalsShapeTheRate(t *testing.T) {
	// Flash crowd: the window around the burst must be denser than the
	// same-width window well before it.
	cfg := DefaultConfig()
	cfg.Users = 30000
	cfg.Arrival = ArrivalFlash
	cfg.RatePerSec = 100
	cfg.FlashAtSec = 60
	cfg.FlashWidthSec = 10
	cfg.FlashHeight = 8
	ts := cfg.withDefaults().arrivalTimes()
	inWindow := func(loSec, hiSec float64) int {
		n := 0
		for _, t := range ts {
			if t >= loSec*1000 && t < hiSec*1000 {
				n++
			}
		}
		return n
	}
	burst := inWindow(50, 70)
	calm := inWindow(20, 40)
	if burst < 3*calm {
		t.Errorf("flash burst window has %d arrivals vs %d calm — burst not expressed", burst, calm)
	}

	// Diurnal: t=0 is the trough, half a period later is the peak.
	cfg = DefaultConfig()
	cfg.Users = 30000
	cfg.Arrival = ArrivalDiurnal
	cfg.RatePerSec = 100
	cfg.DiurnalPeriodSec = 600
	cfg.DiurnalDepth = 0.9
	ts = cfg.withDefaults().arrivalTimes()
	trough := 0
	peak := 0
	for _, tt := range ts {
		switch {
		case tt < 60_000:
			trough++
		case tt >= 270_000 && tt < 330_000:
			peak++
		}
	}
	if peak < 3*trough {
		t.Errorf("diurnal peak window has %d arrivals vs %d trough — modulation not expressed", peak, trough)
	}
}

func TestWarmRevisitsChurnAndCoalescing(t *testing.T) {
	cfg := testConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visits < res.Users {
		t.Fatalf("visits %d < users %d: revisits missing", res.Visits, res.Users)
	}
	if res.DNSCacheHits == 0 {
		t.Error("no DNS cache hits: warm path not carried across revisits")
	}
	if res.ResumedConns == 0 {
		t.Error("no resumed handshakes: ticket store not engaged")
	}
	if res.ChurnedConns == 0 {
		t.Error("no churned connections: idle-timeout churn not engaged")
	}
	if res.CoalescedReqs == 0 || res.CoalesceRate <= 0 {
		t.Error("no coalesced requests under PhaseIP")
	}
	if res.P50Ms <= 0 || res.P999Ms < res.P99Ms || res.P99Ms < res.P90Ms || res.P90Ms < res.P50Ms {
		t.Errorf("percentiles not monotone: p50=%.1f p90=%.1f p99=%.1f p99.9=%.1f",
			res.P50Ms, res.P90Ms, res.P99Ms, res.P999Ms)
	}
	if res.SLOAttainment <= 0 || res.SLOAttainment > 1 {
		t.Errorf("SLO attainment %.3f out of range", res.SLOAttainment)
	}
}

func TestBaselineCoalescesLessThanPhaseIP(t *testing.T) {
	cfg := testConfig()
	cfg.Phase = cdn.PhaseBaseline
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Phase = cdn.PhaseIP
	ip, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ip.CoalesceRate <= base.CoalesceRate {
		t.Errorf("PhaseIP coalesce rate %.4f not above baseline %.4f",
			ip.CoalesceRate, base.CoalesceRate)
	}
	if ip.FreshConns >= base.FreshConns {
		t.Errorf("PhaseIP fresh conns %d not below baseline %d — coalescing saved no handshakes",
			ip.FreshConns, base.FreshConns)
	}
}

func TestOverloadShowsQueueing(t *testing.T) {
	cfg := testConfig()
	cfg.Users = 3000
	cfg.RatePerSec = 2000 // well past the PoPs' service capacity
	cfg.PoPs = 2
	cfg.PoPServers = 1
	hot, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RatePerSec = 20
	cool, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hot.MeanWaitMs <= cool.MeanWaitMs {
		t.Errorf("overload mean wait %.1f not above light-load %.1f", hot.MeanWaitMs, cool.MeanWaitMs)
	}
	if hot.SLOAttainment >= cool.SLOAttainment {
		t.Errorf("overload SLO %.3f not below light-load %.3f", hot.SLOAttainment, cool.SLOAttainment)
	}
}

func TestRecorderSeesQueuePassOnly(t *testing.T) {
	cfg := testConfig()
	cfg.Users = 500
	m := obs.NewMetrics()
	cfg.Rec = m
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Get("loadgen.visits"); got != int64(res.Visits) {
		t.Errorf("recorder visits %d, result %d", got, res.Visits)
	}
	if s := m.HistSummary("loadgen.latency_ms"); s.N != res.Visits {
		t.Errorf("latency histogram n=%d, want %d", s.N, res.Visits)
	}
	// Installing the recorder must not change the numbers.
	cfg.Rec = nil
	bare, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare != res {
		t.Error("recorder installation changed the result")
	}
}

func TestSweepAndValidate(t *testing.T) {
	cfg := testConfig()
	cfg.Users = 800
	rs, err := Sweep(cfg, []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("sweep returned %d results, want 2", len(rs))
	}
	if rs[1].RatePerSec != 2*rs[0].RatePerSec*2 {
		// 0.5x and 2x of the same base differ by 4x.
		t.Errorf("sweep rates %.0f / %.0f not in 1:4 ratio", rs[0].RatePerSec, rs[1].RatePerSec)
	}
	cfg.Arrival = "bursty"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown arrival process accepted")
	}
}
