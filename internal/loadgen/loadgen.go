// Package loadgen is the open-loop live-traffic serving mode: it drives
// the deployment stack (internal/cdn + internal/netsim + internal/sched
// queueing) with an arrival process of independent users on the shared
// virtual clock, and reports tail latency, SLO attainment, and the
// coalescing rate as a function of offered load — the serving-side view
// of the paper's question, where connection coalescing shows up as
// fewer handshakes competing for PoP capacity under the same demand.
//
// The generator is open-loop: users arrive on a schedule drawn from the
// configured arrival process (Poisson, diurnal, or flash-crowd) and
// never slow down because the system is loaded, so queueing delay is
// visible instead of being absorbed by client back-pressure. Each user
// carries its own warm-path cache (internal/cache) across revisits, its
// own connection pool with idle-timeout churn, and its own seeded
// network model, so revisit warmth and coalescing behaviour match the
// single-page experiments.
//
// Determinism is the package invariant: Run is a pure function of
// (Config, Seed), byte-identical for any worker count. The run is three
// phases — (1) arrival times are drawn sequentially from one seeded
// stream; (2) each user's visits are simulated in parallel, every user
// a pure function of its splitmix-derived seed (own RNG, own browser,
// own cache, own netsim stream, no shared recorder); (3) a sequential
// queueing pass replays all visits in arrival order through per-PoP
// server pools on the virtual clock, and only this phase touches the
// observability recorder and the float accumulators whose addition
// order matters.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"

	"respectorigin/internal/browser"
	"respectorigin/internal/cache"
	"respectorigin/internal/cdn"
	"respectorigin/internal/netsim"
	"respectorigin/internal/obs"
	"respectorigin/internal/parallel"
)

// Arrival process names accepted by Config.Arrival.
const (
	ArrivalPoisson = "poisson" // homogeneous Poisson at RatePerSec
	ArrivalDiurnal = "diurnal" // sinusoidal day/night modulation
	ArrivalFlash   = "flash"   // Poisson baseline plus a Gaussian burst
)

// Config parameterizes one load-generation run.
type Config struct {
	// Users is the number of arriving users (each makes one or more
	// visits). The run simulates arrivals until this many users exist.
	Users int
	// Seed drives every random draw in the run.
	Seed int64
	// Workers bounds the parallel user-simulation phase; ≤ 0 selects
	// parallel.DefaultWorkers. The output is byte-identical for every
	// value.
	Workers int

	// Arrival selects the arrival process (ArrivalPoisson default).
	Arrival string
	// RatePerSec is the mean user arrival rate λ (users/second).
	RatePerSec float64
	// DiurnalPeriodSec is the modulation period for ArrivalDiurnal.
	DiurnalPeriodSec float64
	// DiurnalDepth in [0,1) is how far the trough falls below the peak
	// rate (0.8 ⇒ night runs at 20% of the daytime peak).
	DiurnalDepth float64
	// FlashAtSec / FlashWidthSec / FlashHeight shape the ArrivalFlash
	// burst: a Gaussian bump centred at FlashAtSec with the given width,
	// multiplying the baseline rate by FlashHeight at its peak.
	FlashAtSec    float64
	FlashWidthSec float64
	FlashHeight   float64

	// Zones is how many customer zones the simulated CDN hosts; each
	// user is pinned to one home zone.
	Zones int
	// Phase is the deployment phase the CDN serves under (baseline,
	// ip-coalescing, or origin-frame), which is what moves the
	// coalescing rate — and with it the handshake load on the PoPs.
	Phase cdn.Phase

	// PoPs is the number of points of presence; each user is anchored
	// to one (nearest-PoP routing). PoPServers is the per-PoP server
	// count — the c of the per-PoP G/G/c queue.
	PoPs       int
	PoPServers int
	// ServiceMs is the server work per request; HandshakeSvcMs is the
	// extra server work per fresh TLS handshake (the term coalescing
	// removes).
	ServiceMs      float64
	HandshakeSvcMs float64

	// VisitsMean is the mean number of visits per user (geometric,
	// minimum 1). RevisitMeanSec is the mean gap between a user's
	// successive visits (exponential). IdleTimeoutSec is the server
	// idle timeout: a revisit gap at or above it finds the user's
	// pooled connections closed and must reconnect (connection churn).
	VisitsMean     float64
	RevisitMeanSec float64
	IdleTimeoutSec float64

	// SLOMs is the per-visit latency objective for SLO attainment.
	SLOMs float64

	// FirefoxShare and ChromeShare split users across client families
	// (the remainder are legacy HTTP/1.1-era clients that never
	// coalesce and carry no warm-path cache).
	FirefoxShare float64
	ChromeShare  float64

	// Proto is the application protocol modern (Firefox/Chrome) clients
	// speak: h1 disables cross-host coalescing, h2 (the zero value) is
	// the historical baseline, h3 pays QUIC handshake paths with
	// token-gated 0-RTT. Legacy clients are unaffected. The protocol is
	// configuration, not a random draw, so toggling it never shifts the
	// arrival schedule or any user's profile/visit stream.
	Proto browser.Protocol

	// Cache configures each user's warm-path state; Net the per-user
	// network model.
	Cache cache.Options
	Net   netsim.Params

	// Rec, when non-nil, receives "loadgen.*" counters and latency
	// histograms. It is only written from the sequential queueing pass,
	// so installing one never perturbs determinism.
	Rec obs.Recorder
}

// DefaultConfig returns a runnable medium-load configuration.
func DefaultConfig() Config {
	return Config{
		Users:            100_000,
		Seed:             1,
		Arrival:          ArrivalPoisson,
		RatePerSec:       200,
		DiurnalPeriodSec: 3600,
		DiurnalDepth:     0.8,
		FlashAtSec:       120,
		FlashWidthSec:    30,
		FlashHeight:      8,
		Zones:            64,
		Phase:            cdn.PhaseIP,
		PoPs:             16,
		PoPServers:       8,
		ServiceMs:        4,
		HandshakeSvcMs:   12,
		VisitsMean:       2.5,
		RevisitMeanSec:   600,
		IdleTimeoutSec:   300,
		SLOMs:            1500,
		FirefoxShare:     0.08,
		ChromeShare:      0.72,
		Net:              netsim.DefaultParams(),
	}
}

// withDefaults resolves zero values so partial configs stay runnable.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Users <= 0 {
		c.Users = d.Users
	}
	if c.Arrival == "" {
		c.Arrival = d.Arrival
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = d.RatePerSec
	}
	if c.DiurnalPeriodSec <= 0 {
		c.DiurnalPeriodSec = d.DiurnalPeriodSec
	}
	if c.DiurnalDepth < 0 || c.DiurnalDepth >= 1 {
		c.DiurnalDepth = d.DiurnalDepth
	}
	if c.FlashWidthSec <= 0 {
		c.FlashWidthSec = d.FlashWidthSec
	}
	if c.FlashHeight <= 1 {
		c.FlashHeight = d.FlashHeight
	}
	if c.Zones <= 0 {
		c.Zones = d.Zones
	}
	if c.PoPs <= 0 {
		c.PoPs = d.PoPs
	}
	if c.PoPServers <= 0 {
		c.PoPServers = d.PoPServers
	}
	if c.ServiceMs <= 0 {
		c.ServiceMs = d.ServiceMs
	}
	if c.HandshakeSvcMs < 0 {
		c.HandshakeSvcMs = d.HandshakeSvcMs
	}
	if c.VisitsMean < 1 {
		c.VisitsMean = d.VisitsMean
	}
	if c.RevisitMeanSec <= 0 {
		c.RevisitMeanSec = d.RevisitMeanSec
	}
	if c.IdleTimeoutSec <= 0 {
		c.IdleTimeoutSec = d.IdleTimeoutSec
	}
	if c.SLOMs <= 0 {
		c.SLOMs = d.SLOMs
	}
	if c.FirefoxShare <= 0 && c.ChromeShare <= 0 {
		c.FirefoxShare, c.ChromeShare = d.FirefoxShare, d.ChromeShare
	}
	if c.Net == (netsim.Params{}) {
		c.Net = d.Net
	}
	return c
}

// mix derives an independent 64-bit seed from (seed, id) via the
// splitmix64 finalizer — the per-user seeding discipline that makes
// every user a pure function of its index, independent of worker count.
func mix(seed int64, id uint64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(id+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// rate returns the instantaneous arrival rate λ(t) at t seconds, and
// peakRate its supremum — the homogeneous rate the thinning sampler
// draws candidates at.
func (c Config) rate(tSec float64) float64 {
	switch c.Arrival {
	case ArrivalDiurnal:
		// Peak λ at mid-cycle, trough λ·(1-depth) at t=0 (cosine phase).
		return c.RatePerSec * (1 - c.DiurnalDepth*(0.5+0.5*math.Cos(2*math.Pi*tSec/c.DiurnalPeriodSec)))
	case ArrivalFlash:
		x := (tSec - c.FlashAtSec) / c.FlashWidthSec
		return c.RatePerSec * (1 + (c.FlashHeight-1)*math.Exp(-x*x))
	default:
		return c.RatePerSec
	}
}

func (c Config) peakRate() float64 {
	if c.Arrival == ArrivalFlash {
		return c.RatePerSec * c.FlashHeight
	}
	return c.RatePerSec
}

// arrivalTimes draws the Users arrival instants (milliseconds,
// ascending) from one sequential seeded stream. Inhomogeneous processes
// use Lewis–Shedler thinning against the peak rate, so every accepted
// and rejected candidate consumes draws in schedule order and the
// schedule is independent of everything downstream.
func (c Config) arrivalTimes() []float64 {
	rs := rand.New(rand.NewSource(mix(c.Seed, 0)))
	peak := c.peakRate()
	times := make([]float64, 0, c.Users)
	t := 0.0
	for len(times) < c.Users {
		t += rs.ExpFloat64() / peak
		if c.Arrival == ArrivalPoisson || rs.Float64() < c.rate(t)/peak {
			times = append(times, t*1000)
		}
	}
	return times
}

// Validate reports configuration errors a run cannot proceed past.
func (c Config) Validate() error {
	switch c.Arrival {
	case "", ArrivalPoisson, ArrivalDiurnal, ArrivalFlash:
	default:
		return fmt.Errorf("loadgen: unknown arrival process %q", c.Arrival)
	}
	return nil
}

// buildCDN constructs the shared serving environment: Zones customer
// zones with alternating control/experiment treatment, certificates
// reissued, and the configured deployment phase entered. The CDN is
// read-only during the parallel phase (its DNS authority and zone maps
// are mutex-guarded and answer queries order-independently; rotation
// stays off).
func buildCDN(cfg Config) *cdn.CDN {
	c := cdn.New(cdn.Config{Seed: cfg.Seed})
	for i := 0; i < cfg.Zones; i++ {
		host := fmt.Sprintf("www.zone-%d.example", i)
		addr := [4]byte{104, 18, byte(i >> 8), byte(i)}
		z := c.AddZone(host, cdn.SLATierFree, addrFrom4(addr))
		if i%2 == 0 {
			z.Treatment = cdn.TreatmentExperiment
		} else {
			z.Treatment = cdn.TreatmentControl
		}
	}
	c.ReissueCertificates()
	switch cfg.Phase {
	case cdn.PhaseIP:
		c.EnterPhaseIP()
	case cdn.PhaseOrigin:
		c.EnterPhaseOrigin(addrFrom4([4]byte{104, 19, 0, 1}))
	}
	return c
}

// Run executes the three-phase simulation and returns its aggregate
// result. Same Config ⇒ byte-identical Result for any Workers value.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}

	// Phase 1: sequential arrival schedule.
	arrivals := cfg.arrivalTimes()

	// Phase 2: parallel per-user simulation. Results land at the user's
	// index, and each user reads only its own seeded state plus the
	// shared read-only CDN, so scheduling cannot reorder anything.
	env := buildCDN(cfg)
	perUser := parallel.Map(cfg.Users, cfg.Workers, func(i int) []visit {
		return simulateUser(cfg, env, i, arrivals[i])
	})

	// Phase 3: sequential queueing pass over all visits in arrival
	// order — the only phase that owns the recorder and the order-
	// sensitive float accumulators.
	res := runQueue(cfg, flatten(perUser))
	if last := arrivals[len(arrivals)-1]; last > 0 {
		res.OfferedUPS = float64(cfg.Users) / (last / 1000)
	}
	return res, nil
}

func flatten(perUser [][]visit) []visit {
	n := 0
	for _, vs := range perUser {
		n += len(vs)
	}
	out := make([]visit, 0, n)
	for _, vs := range perUser {
		out = append(out, vs...)
	}
	return out
}
