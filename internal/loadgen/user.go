package loadgen

import (
	"fmt"
	"math/rand"
	"net/netip"

	"respectorigin/internal/browser"
	"respectorigin/internal/cache"
	"respectorigin/internal/cdn"
	"respectorigin/internal/netsim"
	"respectorigin/internal/quic"
)

// visit is one page view by one user, as produced by the parallel
// simulation phase: everything the sequential queueing pass needs to
// replay it on the virtual clock.
type visit struct {
	UserID    int
	Seq       int     // visit index within the user
	ArrivalMs float64 // absolute virtual time of the visit
	PoP       int     // anchored point of presence

	ClientMs  float64 // client-side network latency (DNS/connect/TLS/wait/transfer)
	ServiceMs float64 // server work the PoP queue must perform

	Requests   int
	FreshConns int // full TLS handshakes
	Resumed    int // ticket-resumption handshakes
	ZeroRTT    int // h3 0-RTT handshakes (ticket + address token)
	AddrTokens int // h3 address-validation token hits
	Reused     int // requests satisfied on a pooled connection
	Coalesced  int // reused across hostnames (Outcome.Coalesced)
	DNSQueries int
	DNSHits    int // positive DNS-cache hits
	Churned    int // pooled connections lost to the idle timeout
	Failed     int
}

func addrFrom4(b [4]byte) netip.Addr { return netip.AddrFrom4(b) }

// userProfile is the per-user identity drawn before any visit runs.
type userProfile struct {
	ua       string
	policy   browser.Policy
	h2       bool
	zoneHost string
	pop      int
}

// drawProfile fixes a user's client family, home zone, and anchored
// PoP from the user's own stream.
func drawProfile(cfg Config, rs *rand.Rand, uid int) userProfile {
	p := userProfile{
		zoneHost: fmt.Sprintf("www.zone-%d.example", rs.Intn(cfg.Zones)),
		pop:      rs.Intn(cfg.PoPs),
	}
	switch x := rs.Float64(); {
	case x < cfg.FirefoxShare:
		p.ua, p.policy, p.h2 = "firefox", browser.PolicyFirefoxOrigin, true
	case x < cfg.FirefoxShare+cfg.ChromeShare:
		p.ua, p.policy, p.h2 = "chrome", browser.PolicyChromium, true
	default:
		p.ua = "legacy"
	}
	return p
}

// drawPools draws how many independent third-party pools a page view
// opens (the Figure 7a control distribution: 83% one, tail to 7).
func drawPools(rs *rand.Rand) int {
	x := rs.Float64()
	switch {
	case x < 0.83:
		return 1
	case x < 0.93:
		return 2
	case x < 0.97:
		return 3
	case x < 0.985:
		return 4
	case x < 0.993:
		return 5
	case x < 0.998:
		return 6
	default:
		return 7
	}
}

// drawVisits draws the user's visit count: geometric with the
// configured mean, minimum one.
func drawVisits(cfg Config, rs *rand.Rand) int {
	n := 1
	p := 1 - 1/cfg.VisitsMean // geometric continuation probability
	for rs.Float64() < p {
		n++
	}
	return n
}

// simulateUser runs one user's whole browsing history: a pure function
// of (cfg, uid, arrivalMs) plus the shared read-only environment. The
// user owns every piece of mutable state it touches — RNG, browser
// pool, warm-path cache, and netsim stream — so users simulate in
// parallel without ordering effects.
func simulateUser(cfg Config, env *cdn.CDN, uid int, arrivalMs float64) []visit {
	rs := rand.New(rand.NewSource(mix(cfg.Seed, uint64(uid)*2+1)))
	net := netsim.New(cfg.Net, mix(cfg.Seed, uint64(uid)*2+2))
	prof := drawProfile(cfg, rs, uid)

	var b *browser.Browser
	var cc *cache.Cache
	if prof.h2 {
		cc = cache.New(cfg.Cache)
		b = browser.New(prof.policy)
		b.Cache = cc
		b.Proto = cfg.Proto
	}

	nVisits := drawVisits(cfg, rs)
	visits := make([]visit, 0, nVisits)
	now := arrivalMs
	for seq := 0; seq < nVisits; seq++ {
		if seq > 0 {
			gapMs := rs.ExpFloat64() * cfg.RevisitMeanSec * 1000
			now += gapMs
			cc.Clock().AdvanceMs(int64(gapMs))
			v := visit{UserID: uid, Seq: seq, ArrivalMs: now, PoP: prof.pop}
			if b != nil && gapMs >= cfg.IdleTimeoutSec*1000 {
				// The server's idle timeout closed every pooled
				// connection while the user was away.
				for _, host := range pooledHosts(b) {
					v.Churned += b.DropConns(host)
				}
			}
			runVisit(cfg, env, prof, b, rs, net, &v)
			visits = append(visits, v)
			continue
		}
		v := visit{UserID: uid, Seq: seq, ArrivalMs: now, PoP: prof.pop}
		runVisit(cfg, env, prof, b, rs, net, &v)
		visits = append(visits, v)
	}
	return visits
}

// pooledHosts snapshots the distinct hosts of the browser's pool
// (DropConns mutates the pool, so the walk is taken first).
func pooledHosts(b *browser.Browser) []string {
	seen := map[string]bool{}
	var hosts []string
	for _, c := range b.Conns() {
		if !seen[c.Host] {
			seen[c.Host] = true
			hosts = append(hosts, c.Host)
		}
	}
	return hosts
}

// runVisit performs one page view: the home-zone request followed by
// the page's third-party pools, accounting latency and connection
// outcomes into v.
func runVisit(cfg Config, env *cdn.CDN, prof userProfile, b *browser.Browser,
	rs *rand.Rand, net *netsim.Network, v *visit) {
	pools := drawPools(rs)
	if !prof.h2 {
		// Legacy clients: one fresh connection per request, no
		// coalescing, no warm path.
		for r := 0; r < 1+pools; r++ {
			v.Requests++
			v.FreshConns++
			v.DNSQueries++
			v.ClientMs += net.DNSTime() + net.ConnectTime() +
				net.TLSTime(2, 1) + requestTime(rs, net)
		}
		v.ServiceMs = cfg.ServiceMs*float64(v.Requests) +
			cfg.HandshakeSvcMs*float64(v.FreshConns)
		return
	}
	accountRequest(b.Request(env, prof.zoneHost), rs, net, v)
	for p := 0; p < pools; p++ {
		accountRequest(b.Request(env, env.ThirdParty), rs, net, v)
	}
	v.ServiceMs = cfg.ServiceMs*float64(v.Requests) +
		cfg.HandshakeSvcMs*float64(v.FreshConns)
}

// accountRequest folds one browser outcome into the visit, charging
// the network phases the outcome implies.
func accountRequest(out browser.Outcome, rs *rand.Rand, net *netsim.Network, v *visit) {
	v.Requests++
	v.DNSQueries += out.DNSQueries
	v.DNSHits += out.DNSCacheHits
	for q := 0; q < out.DNSQueries; q++ {
		v.ClientMs += net.DNSTime()
	}
	if out.Err != nil {
		v.Failed++
		return
	}
	switch {
	case out.Reused:
		v.Reused++
		if out.Coalesced() {
			v.Coalesced++
		}
	case out.NewConnection:
		v.FreshConns++
		if out.Proto == browser.ProtoH3 {
			// QUIC folds transport and crypto into one handshake; the
			// path (resumed/token) decides how many round trips it takes.
			path := quic.Path{Resumed: out.ResumedTLS, TokenHit: out.AddrTokenHit}
			v.ClientMs += path.HandshakeTime(net, 1)
			if out.ResumedTLS {
				v.Resumed++
			}
			if out.AddrTokenHit {
				v.AddrTokens++
			}
			if out.ZeroRTT {
				v.ZeroRTT++
			}
		} else {
			v.ClientMs += net.ConnectTime()
			if out.ResumedTLS {
				// Abbreviated handshake: no certificate chain to verify.
				v.Resumed++
				v.ClientMs += net.TLSTime(0, 1)
			} else {
				v.ClientMs += net.TLSTime(2, 1)
			}
		}
	}
	v.ClientMs += requestTime(rs, net)
}

// requestTime is the per-request cost every satisfied request pays:
// time-to-first-byte plus body transfer for a drawn resource size.
func requestTime(rs *rand.Rand, net *netsim.Network) float64 {
	bytes := int64(2048 + rs.Intn(131072))
	return net.WaitTime() + net.TransferTime(bytes)
}
