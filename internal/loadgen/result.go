package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Result is the aggregate outcome of one run. Its JSON form is the
// NDJSON summary the CLI emits and the CI determinism gate diffs;
// field order and float formatting come from encoding/json over this
// fixed struct, so byte-identity across worker counts follows from
// value-identity.
type Result struct {
	Users      int     `json:"users"`
	Seed       int64   `json:"seed"`
	Proto      string  `json:"proto"` // protocol modern clients spoke (h1/h2/h3)
	Arrival    string  `json:"arrival"`
	RatePerSec float64 `json:"rate_per_sec"`
	PoPs       int     `json:"pops"`
	PoPServers int     `json:"pop_servers"`

	Visits        int     `json:"visits"`
	Requests      int64   `json:"requests"`
	SpanSec       float64 `json:"span_sec"`    // first arrival to last completion
	OfferedRPS    float64 `json:"offered_rps"` // demand rate: λ times mean requests per user
	OfferedUPS    float64 `json:"offered_ups"` // empirical user-arrival rate of the schedule
	FreshConns    int64   `json:"fresh_conns"`
	ResumedConns  int64   `json:"resumed_conns"`
	ZeroRTTConns  int64   `json:"zero_rtt_conns"` // h3 0-RTT handshakes
	AddrTokenHits int64   `json:"addr_token_hits"`
	ReusedReqs    int64   `json:"reused_reqs"`
	CoalescedReqs int64   `json:"coalesced_reqs"`
	CoalesceRate  float64 `json:"coalesce_rate"`
	DNSQueries    int64   `json:"dns_queries"`
	DNSCacheHits  int64   `json:"dns_cache_hits"`
	ChurnedConns  int64   `json:"churned_conns"`
	FailedReqs    int64   `json:"failed_reqs"`

	MeanMs        float64 `json:"mean_ms"`
	MeanWaitMs    float64 `json:"mean_wait_ms"`
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`
	P999Ms        float64 `json:"p999_ms"`
	MaxMs         float64 `json:"max_ms"`
	SLOMs         float64 `json:"slo_ms"`
	SLOAttainment float64 `json:"slo_attainment"`
}

// WriteNDJSON writes results as newline-delimited JSON, one object per
// line — the machine-readable artifact of a run or a sweep.
func WriteNDJSON(w io.Writer, results ...Result) error {
	for _, r := range results {
		b, err := json.Marshal(r)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// String renders the result as an aligned human-readable block.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d users (%s), %s arrivals @ %.0f/s, %d PoPs x %d servers\n",
		r.Users, r.Proto, r.Arrival, r.RatePerSec, r.PoPs, r.PoPServers)
	fmt.Fprintf(&b, "  visits %d, requests %d over %.1f s (%.0f req/s offered)\n",
		r.Visits, r.Requests, r.SpanSec, r.OfferedRPS)
	fmt.Fprintf(&b, "  conns: %d fresh (%d resumed, %d 0-RTT, %d token hits), %d reused, %d coalesced (rate %.3f), %d churned\n",
		r.FreshConns, r.ResumedConns, r.ZeroRTTConns, r.AddrTokenHits,
		r.ReusedReqs, r.CoalescedReqs, r.CoalesceRate, r.ChurnedConns)
	fmt.Fprintf(&b, "  dns: %d queries, %d cache hits\n", r.DNSQueries, r.DNSCacheHits)
	fmt.Fprintf(&b, "  latency ms: mean %.1f  p50 %.1f  p90 %.1f  p99 %.1f  p99.9 %.1f  max %.1f (wait mean %.1f)\n",
		r.MeanMs, r.P50Ms, r.P90Ms, r.P99Ms, r.P999Ms, r.MaxMs, r.MeanWaitMs)
	fmt.Fprintf(&b, "  SLO %.0f ms: %.2f%% attained\n", r.SLOMs, 100*r.SLOAttainment)
	return b.String()
}

// Sweep runs the configuration at each rate multiplier in turn (same
// seed, same user count), returning one Result per offered-load point —
// the tail-latency-vs-load curve of the under-load report.
func Sweep(cfg Config, multipliers []float64) ([]Result, error) {
	out := make([]Result, 0, len(multipliers))
	base := cfg.withDefaults().RatePerSec
	for _, m := range multipliers {
		c := cfg
		c.RatePerSec = base * m
		r, err := Run(c)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
