package loadgen

import (
	"bytes"
	"testing"

	"respectorigin/internal/browser"
)

// The protocol is configuration, never a random draw: the zero-value
// config (pre-protocol behaviour) and an explicit ProtoH2 must produce
// byte-identical summaries, pinning that threading Proto through the
// simulation shifted no RNG stream.
func TestExplicitH2MatchesDefaultByteForByte(t *testing.T) {
	run := func(p browser.Protocol) []byte {
		cfg := testConfig()
		cfg.Users = 1500
		cfg.Proto = p
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteNDJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	def := run(browser.Protocol(0))
	h2 := run(browser.ProtoH2)
	if !bytes.Equal(def, h2) {
		t.Fatalf("explicit h2 differs from default:\n got %s\nwant %s", h2, def)
	}
}

// Toggling the protocol must not shift the seeded streams of unrelated
// phases: the arrival schedule, user profiles, visit counts, and visit
// arrival times are all drawn before any protocol-dependent branch, so
// every per-visit identity field must agree between an h2 and an h3 run
// of the same seed.
func TestProtoToggleLeavesUnrelatedStreamsFixed(t *testing.T) {
	collect := func(p browser.Protocol) []visit {
		cfg := testConfig()
		cfg.Users = 800
		cfg.Proto = p
		cfg = cfg.withDefaults()
		arrivals := cfg.arrivalTimes()
		env := buildCDN(cfg)
		var out []visit
		for i := 0; i < cfg.Users; i++ {
			out = append(out, simulateUser(cfg, env, i, arrivals[i])...)
		}
		return out
	}
	h2 := collect(browser.ProtoH2)
	h3 := collect(browser.ProtoH3)
	if len(h2) != len(h3) {
		t.Fatalf("visit counts differ: h2 %d, h3 %d", len(h2), len(h3))
	}
	for i := range h2 {
		a, b := h2[i], h3[i]
		if a.UserID != b.UserID || a.Seq != b.Seq || a.ArrivalMs != b.ArrivalMs || a.PoP != b.PoP {
			t.Fatalf("visit %d identity shifted with the protocol:\n h2 %+v\n h3 %+v", i, a, b)
		}
		if a.Requests != b.Requests {
			t.Fatalf("visit %d request count shifted with the protocol: h2 %d, h3 %d", i, a.Requests, b.Requests)
		}
	}
}
