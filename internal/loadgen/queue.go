package loadgen

import (
	"sort"

	"respectorigin/internal/obs"
)

// popQueue is one PoP's server pool: a min-heap of per-server
// next-free times, the event state of a G/G/c queue replayed in
// arrival order on the virtual clock.
type popQueue struct {
	free []float64 // heap-ordered next-free instants, one per server
}

func newPopQueue(servers int) *popQueue {
	return &popQueue{free: make([]float64, servers)}
}

// admit assigns one visit arriving at arrivalMs needing serviceMs of
// server work to the earliest-free server, returning the queueing
// delay. The heap root is always the earliest-free server; after the
// assignment its new free time sifts back down.
func (q *popQueue) admit(arrivalMs, serviceMs float64) (waitMs float64) {
	start := q.free[0]
	if arrivalMs > start {
		start = arrivalMs
	}
	waitMs = start - arrivalMs
	q.free[0] = start + serviceMs
	q.siftDown(0)
	return waitMs
}

func (q *popQueue) siftDown(i int) {
	n := len(q.free)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.free[l] < q.free[min] {
			min = l
		}
		if r < n && q.free[r] < q.free[min] {
			min = r
		}
		if min == i {
			return
		}
		q.free[i], q.free[min] = q.free[min], q.free[i]
		i = min
	}
}

// runQueue is the sequential aggregation phase: it replays every visit
// in (arrival, user, seq) order through its PoP's queue, accumulates
// the run totals in that one fixed order, and feeds the recorder and
// the exact quantile accumulator. Nothing here runs concurrently, so
// float addition order — and with it every output byte — is a pure
// function of the visit set.
func runQueue(cfg Config, visits []visit) Result {
	sort.Slice(visits, func(i, j int) bool {
		a, b := visits[i], visits[j]
		if a.ArrivalMs != b.ArrivalMs {
			return a.ArrivalMs < b.ArrivalMs
		}
		if a.UserID != b.UserID {
			return a.UserID < b.UserID
		}
		return a.Seq < b.Seq
	})

	pops := make([]*popQueue, cfg.PoPs)
	for i := range pops {
		pops[i] = newPopQueue(cfg.PoPServers)
	}

	lat := obs.NewQuantile()
	res := Result{
		Users: cfg.Users, Arrival: cfg.Arrival, Seed: cfg.Seed,
		Proto:      cfg.Proto.String(),
		RatePerSec: cfg.RatePerSec, SLOMs: cfg.SLOMs,
		PoPs: cfg.PoPs, PoPServers: cfg.PoPServers,
	}
	sloMet := 0
	var sumLatency, sumWait, maxLatency, lastDone float64
	for _, v := range visits {
		wait := pops[v.PoP].admit(v.ArrivalMs, v.ServiceMs)
		latency := wait + v.ServiceMs + v.ClientMs
		done := v.ArrivalMs + latency
		if done > lastDone {
			lastDone = done
		}
		lat.Observe(latency)
		sumLatency += latency
		sumWait += wait
		if latency > maxLatency {
			maxLatency = latency
		}
		if latency <= cfg.SLOMs {
			sloMet++
		}

		res.Visits++
		res.Requests += int64(v.Requests)
		res.FreshConns += int64(v.FreshConns)
		res.ResumedConns += int64(v.Resumed)
		res.ZeroRTTConns += int64(v.ZeroRTT)
		res.AddrTokenHits += int64(v.AddrTokens)
		res.ReusedReqs += int64(v.Reused)
		res.CoalescedReqs += int64(v.Coalesced)
		res.DNSQueries += int64(v.DNSQueries)
		res.DNSCacheHits += int64(v.DNSHits)
		res.ChurnedConns += int64(v.Churned)
		res.FailedReqs += int64(v.Failed)

		if cfg.Rec != nil {
			obs.Count(cfg.Rec, "loadgen.visits", 1)
			obs.Count(cfg.Rec, "loadgen.requests", int64(v.Requests))
			obs.Observe(cfg.Rec, "loadgen.latency_ms", latency)
			obs.Observe(cfg.Rec, "loadgen.wait_ms", wait)
		}
	}

	if n := len(visits); n > 0 {
		res.SpanSec = lastDone / 1000
		// Offered load in the open-loop sense: the demand rate the
		// arrival process pushes (λ users/s times mean requests per
		// user), independent of how fast the system drains it. The
		// achieved throughput is Requests/SpanSec, which under overload
		// falls below this.
		res.OfferedRPS = cfg.RatePerSec * float64(res.Requests) / float64(cfg.Users)
		res.MeanMs = sumLatency / float64(n)
		res.MeanWaitMs = sumWait / float64(n)
		res.MaxMs = maxLatency
		res.P50Ms = lat.At(0.50)
		res.P90Ms = lat.At(0.90)
		res.P99Ms = lat.At(0.99)
		res.P999Ms = lat.At(0.999)
		res.SLOAttainment = float64(sloMet) / float64(n)
	}
	if res.Requests > 0 {
		res.CoalesceRate = float64(res.CoalescedReqs) / float64(res.Requests)
	}
	return res
}
