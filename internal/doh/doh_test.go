package doh

import (
	"net"
	"net/netip"
	"sync"
	"testing"

	"respectorigin/internal/dns"
	"respectorigin/internal/h2"
	"respectorigin/internal/hpack"
)

func startDoH(t *testing.T) (*Client, *Handler, func()) {
	t.Helper()
	auth := dns.NewAuthority()
	auth.AddA("www.example.com", netip.MustParseAddr("192.0.2.10"), netip.MustParseAddr("192.0.2.11"))
	auth.AddAAAA("www.example.com", netip.MustParseAddr("2001:db8::10"))
	auth.AddCNAME("alias.example.com", "www.example.com")

	handler := &Handler{Authority: auth}
	srv := &h2.Server{Handler: handler}
	cn, sn := net.Pipe()
	done := make(chan struct{})
	go func() {
		srv.ServeConn(sn)
		close(done)
	}()
	cc, err := h2.NewClientConn(cn, h2.ClientConnOptions{Origin: "doh.resolver.example"})
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(cc, "doh.resolver.example")
	return client, handler, func() {
		cc.Close()
		<-done
	}
}

func TestLookupAOverDoH(t *testing.T) {
	client, handler, stop := startDoH(t)
	defer stop()

	addrs, err := client.LookupA("www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 || addrs[0] != netip.MustParseAddr("192.0.2.10") {
		t.Errorf("addrs = %v", addrs)
	}
	if client.Queries() != 1 || handler.Served() != 1 {
		t.Errorf("counters: client=%d server=%d", client.Queries(), handler.Served())
	}
}

func TestLookupAAAAAndCNAME(t *testing.T) {
	client, _, stop := startDoH(t)
	defer stop()

	v6, err := client.LookupAAAA("www.example.com")
	if err != nil || len(v6) != 1 {
		t.Fatalf("AAAA = %v, %v", v6, err)
	}
	via, err := client.LookupA("alias.example.com")
	if err != nil || len(via) != 2 {
		t.Fatalf("CNAME chase = %v, %v", via, err)
	}
}

func TestNXDomainOverDoH(t *testing.T) {
	client, _, stop := startDoH(t)
	defer stop()
	_, err := client.LookupA("missing.example.com")
	if _, ok := err.(*dns.NXDomainError); !ok {
		t.Errorf("want NXDomainError, got %v", err)
	}
}

func TestConcurrentQueriesMultiplex(t *testing.T) {
	client, handler, stop := startDoH(t)
	defer stop()
	var wg sync.WaitGroup
	errs := make(chan error, 30)
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.LookupA("www.example.com"); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if handler.Served() != 30 {
		t.Errorf("served = %d", handler.Served())
	}
}

func TestGETQueryPath(t *testing.T) {
	client, _, stop := startDoH(t)
	defer stop()

	q := &dns.Message{
		Header:    dns.Header{RD: true},
		Questions: []dns.Question{{Name: "www.example.com", Type: dns.TypeA, Class: dns.ClassINET}},
	}
	path, err := EncodeGETPath(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.cc.RoundTrip(&h2.Request{
		Method: "GET", Scheme: "https", Authority: "doh.resolver.example", Path: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("status = %d", resp.Status)
	}
	msg, err := dns.Unpack(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Answers) != 2 {
		t.Errorf("answers = %v", msg.Answers)
	}
}

func TestRejectsWrongContentType(t *testing.T) {
	client, _, stop := startDoH(t)
	defer stop()
	resp, err := client.cc.RoundTrip(&h2.Request{
		Method: "POST", Scheme: "https", Authority: "doh.resolver.example", Path: Path,
		Header: []hpack.HeaderField{{Name: "content-type", Value: "text/plain"}},
		Body:   []byte("not dns"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 415 {
		t.Errorf("status = %d, want 415", resp.Status)
	}
}

func TestRejectsWrongPathAndMethod(t *testing.T) {
	client, _, stop := startDoH(t)
	defer stop()
	resp, _ := client.cc.RoundTrip(&h2.Request{
		Method: "GET", Scheme: "https", Authority: "doh.resolver.example", Path: "/other",
	})
	if resp.Status != 404 {
		t.Errorf("wrong path status = %d", resp.Status)
	}
	resp, _ = client.cc.RoundTrip(&h2.Request{
		Method: "DELETE", Scheme: "https", Authority: "doh.resolver.example", Path: Path,
	})
	if resp.Status != 405 {
		t.Errorf("wrong method status = %d", resp.Status)
	}
	resp, _ = client.cc.RoundTrip(&h2.Request{
		Method: "GET", Scheme: "https", Authority: "doh.resolver.example", Path: Path + "?dns=!!!bad",
	})
	if resp.Status != 400 {
		t.Errorf("bad base64 status = %d", resp.Status)
	}
}
