package doh

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"

	"respectorigin/internal/cache"
	"respectorigin/internal/dns"
	"respectorigin/internal/quic"
)

// dohTTLSeconds mirrors the handler's cache-control max-age: the
// freshness lifetime a DoH answer carries into the client's DNS cache.
const dohTTLSeconds = 300

// resolveH3 is the DoH-fed h3 lookup path: consult the warm-path DNS
// cache first, fall back to a wire DoH query, and record the answer —
// positive under the DoH freshness lifetime, NXDOMAIN in the negative
// cache — exactly as a browser's resolver feeds its QUIC connector.
// Every cache touch is keyed under TransportDoH: answers this resolver
// produces must never be confused with the Do53 resolver's view of the
// same names (and vice versa) when a sweep toggles transports.
func resolveH3(cc *cache.Cache, client *Client, host string) (addrs []netip.Addr, cached bool, err error) {
	if got, negative, ok := cc.LookupDNSVia(cache.TransportDoH, host); ok {
		if negative {
			return nil, true, &dns.NXDomainError{Name: host}
		}
		return got, true, nil
	}
	addrs, err = client.LookupA(host)
	var nx *dns.NXDomainError
	if errors.As(err, &nx) {
		cc.PutNegativeDNSVia(cache.TransportDoH, host)
		return nil, false, err
	}
	if err != nil {
		return nil, false, err
	}
	cc.PutDNSVia(cache.TransportDoH, host, addrs, dohTTLSeconds)
	return addrs, false, nil
}

// A DoH-resolved lookup feeds a QUIC connection: the cold visit pays a
// wire query and the full 2-RTT establishment, the warm revisit is a
// DNS-cache hit riding straight into a 0-RTT handshake — no DoH query,
// no Retry, no certificate validation.
func TestDoHResolvedLookupFeedsQUICConnection(t *testing.T) {
	client, handler, stop := startDoH(t)
	defer stop()
	cc := cache.New(cache.Options{})
	sans := []string{"www.example.com", "*.example.com"}

	addrs, cached, err := resolveH3(cc, client, "www.example.com")
	if err != nil || cached || len(addrs) != 2 {
		t.Fatalf("cold resolve: addrs=%v cached=%v err=%v", addrs, cached, err)
	}
	path := quic.Establish(cc, "www.example.com", sans)
	if path.Resumed || path.TokenHit || path.RTTs() != 2 {
		t.Fatalf("cold establishment not full-no-token: %+v (%.0f RTTs)", path, path.RTTs())
	}
	conn := quic.NewConn(rand.New(rand.NewSource(1)), "www.example.com", sans)
	if _, err := conn.OpenStream(); err != nil {
		t.Fatal(err)
	}

	// Warm revisit: same cache, fresh connection.
	addrs, cached, err = resolveH3(cc, client, "www.example.com")
	if err != nil || !cached || len(addrs) != 2 {
		t.Fatalf("warm resolve: addrs=%v cached=%v err=%v", addrs, cached, err)
	}
	path = quic.Establish(cc, "www.example.com", sans)
	if !path.ZeroRTT() || path.RTTs() != 0 {
		t.Fatalf("warm establishment not 0-RTT: %+v (%.0f RTTs)", path, path.RTTs())
	}
	if client.Queries() != 1 || handler.Served() != 1 {
		t.Fatalf("warm revisit hit the wire: client=%d server=%d", client.Queries(), handler.Served())
	}

	// SAN coverage extends both the ticket and the token across
	// hostnames: a first visit to a covered sibling is already 0-RTT.
	if p := quic.Establish(cc, "static.example.com", sans); !p.ZeroRTT() {
		t.Fatalf("SAN-covered sibling not 0-RTT: %+v", p)
	}
}

// The cached DoH answer dies exactly at its max-age boundary: one
// millisecond before expiry it still feeds the connection, at expiry
// the resolver goes back to the wire.
func TestDoHAnswerTTLBoundary(t *testing.T) {
	client, _, stop := startDoH(t)
	defer stop()
	cc := cache.New(cache.Options{})

	if _, _, err := resolveH3(cc, client, "www.example.com"); err != nil {
		t.Fatal(err)
	}
	cc.Clock().AdvanceMs(dohTTLSeconds*1000 - 1)
	if _, cached, err := resolveH3(cc, client, "www.example.com"); err != nil || !cached {
		t.Fatalf("1ms before max-age: cached=%v err=%v", cached, err)
	}
	if client.Queries() != 1 {
		t.Fatalf("fresh answer re-queried: %d queries", client.Queries())
	}
	cc.Clock().AdvanceMs(1)
	if _, cached, err := resolveH3(cc, client, "www.example.com"); err != nil || cached {
		t.Fatalf("at max-age: cached=%v err=%v", cached, err)
	}
	if client.Queries() != 2 {
		t.Fatalf("expired answer not re-queried: %d queries", client.Queries())
	}
}

// The mid-sweep transport toggle: one shared client cache, resolver
// transport switching between Do53 and DoH. A Do53 NXDOMAIN must not
// answer the DoH path — resolveH3 goes to the wire and gets the DoH
// resolver's own verdict — and a DoH NXDOMAIN must not poison a
// subsequent Do53-keyed lookup of the same name.
func TestTransportToggleDoesNotCrossServeNegatives(t *testing.T) {
	client, _, stop := startDoH(t)
	defer stop()
	cc := cache.New(cache.Options{})

	// Sweep leg 1 (Do53): the name failed over Do53 and was negatively
	// cached under the Do53 key, as dns.Resolver does.
	cc.PutNegativeDNS("www.example.com")

	// Sweep leg 2 (DoH): the same cache, resolver transport toggled.
	// The Do53 failure must not short-circuit the DoH lookup — the DoH
	// resolver actually answers this name.
	addrs, cached, err := resolveH3(cc, client, "www.example.com")
	if err != nil || cached || len(addrs) == 0 {
		t.Fatalf("DoH lookup served the Do53 negative entry: addrs=%v cached=%v err=%v", addrs, cached, err)
	}
	if client.Queries() != 1 {
		t.Fatalf("DoH lookup did not go to the wire: %d queries", client.Queries())
	}

	// And the other direction: a DoH NXDOMAIN stays out of the Do53
	// keyspace.
	var nx *dns.NXDomainError
	if _, _, err := resolveH3(cc, client, "nohost.example.com"); !errors.As(err, &nx) {
		t.Fatalf("DoH NXDOMAIN expected, got %v", err)
	}
	if _, neg, ok := cc.LookupDNS("nohost.example.com"); ok || neg {
		t.Fatalf("DoH NXDOMAIN visible under the Do53 key: ok=%v neg=%v", ok, neg)
	}
	if _, neg, ok := cc.LookupDNSVia(cache.TransportDoH, "nohost.example.com"); !ok || !neg {
		t.Fatalf("DoH NXDOMAIN missing under its own key: ok=%v neg=%v", ok, neg)
	}
}

// An NXDOMAIN over DoH lands in the negative cache: the retry is
// answered locally (no wire query) and no QUIC connection is attempted;
// once the negative TTL passes, the resolver asks the wire again.
func TestDoHNXDomainNegativeCache(t *testing.T) {
	client, _, stop := startDoH(t)
	defer stop()
	cc := cache.New(cache.Options{})

	var nx *dns.NXDomainError
	if _, cached, err := resolveH3(cc, client, "nohost.example.com"); !errors.As(err, &nx) || cached {
		t.Fatalf("cold NXDOMAIN: cached=%v err=%v", cached, err)
	}
	if _, cached, err := resolveH3(cc, client, "nohost.example.com"); !errors.As(err, &nx) || !cached {
		t.Fatalf("negative-cache hit: cached=%v err=%v", cached, err)
	}
	if client.Queries() != 1 {
		t.Fatalf("negative hit went to the wire: %d queries", client.Queries())
	}
	// The failed lookup minted no h3 warm state for the name.
	if p := quic.Establish(cc, "nohost.example.com", nil); p.Resumed || p.TokenHit {
		t.Fatalf("NXDOMAIN produced warm h3 state: %+v", p)
	}
	// Past the negative TTL the name is retried on the wire.
	cc.Clock().AdvanceMs(int64(cache.DefaultNegativeTTLSeconds) * 1000)
	if _, cached, err := resolveH3(cc, client, "nohost.example.com"); !errors.As(err, &nx) || cached {
		t.Fatalf("post-TTL retry: cached=%v err=%v", cached, err)
	}
	if client.Queries() != 2 {
		t.Fatalf("expired negative entry not re-queried: %d queries", client.Queries())
	}
}
