// Package doh implements DNS over HTTPS (RFC 8484) on top of this
// repository's own HTTP/2 and DNS stacks. It exists for the §6.2
// privacy discussion: DoH hides query contents from on-path observers,
// while connection coalescing removes the queries entirely — the two
// compose, and this package lets both be exercised on real wire formats.
//
// The server side is an h2.Handler serving application/dns-message on
// /dns-query; the client side is a resolver that multiplexes queries as
// HTTP/2 POST requests over a single connection.
package doh

import (
	"encoding/base64"
	"fmt"
	"net/netip"
	"strings"
	"sync"

	"respectorigin/internal/dns"
	"respectorigin/internal/h2"
	"respectorigin/internal/hpack"
)

// ContentType is the RFC 8484 media type.
const ContentType = "application/dns-message"

// Path is the conventional resolution endpoint.
const Path = "/dns-query"

// Handler serves RFC 8484 queries from a dns.Authority.
type Handler struct {
	Authority *dns.Authority

	mu      sync.Mutex
	served  int64
	badReqs int64
}

// Served reports how many queries were answered.
func (h *Handler) Served() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.served
}

// ServeHTTP2 implements h2.Handler.
func (h *Handler) ServeHTTP2(w *h2.ResponseWriter, r *h2.Request) {
	if !strings.HasPrefix(r.Path, Path) {
		w.WriteHeader(404)
		return
	}
	var query []byte
	switch r.Method {
	case "POST":
		if r.HeaderValue("content-type") != ContentType {
			h.reject(w, 415)
			return
		}
		query = r.Body
	case "GET":
		// RFC 8484 §4.1: ?dns=<base64url(message)>.
		idx := strings.Index(r.Path, "dns=")
		if idx < 0 {
			h.reject(w, 400)
			return
		}
		enc := r.Path[idx+4:]
		if amp := strings.IndexByte(enc, '&'); amp >= 0 {
			enc = enc[:amp]
		}
		raw, err := base64.RawURLEncoding.DecodeString(enc)
		if err != nil {
			h.reject(w, 400)
			return
		}
		query = raw
	default:
		h.reject(w, 405)
		return
	}
	resp, err := h.Authority.HandleWire(query)
	if err != nil {
		h.reject(w, 500)
		return
	}
	h.mu.Lock()
	h.served++
	h.mu.Unlock()
	w.WriteHeader(200,
		hpack.HeaderField{Name: "content-type", Value: ContentType},
		hpack.HeaderField{Name: "cache-control", Value: "max-age=300"},
	)
	w.Write(resp)
}

func (h *Handler) reject(w *h2.ResponseWriter, status int) {
	h.mu.Lock()
	h.badReqs++
	h.mu.Unlock()
	w.WriteHeader(status)
}

// Client resolves names over an established HTTP/2 connection to a DoH
// server. It is safe for concurrent use; queries multiplex as streams.
type Client struct {
	cc        *h2.ClientConn
	authority string // :authority of the DoH server

	mu      sync.Mutex
	nextID  uint16
	queries int64
}

// NewClient wraps an HTTP/2 connection to a DoH server.
func NewClient(cc *h2.ClientConn, authority string) *Client {
	return &Client{cc: cc, authority: authority, nextID: 1}
}

// Queries reports how many DoH queries were sent.
func (c *Client) Queries() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queries
}

// LookupA resolves a hostname's IPv4 addresses via RFC 8484 POST.
func (c *Client) LookupA(name string) ([]netip.Addr, error) {
	return c.lookup(name, dns.TypeA)
}

// LookupAAAA resolves a hostname's IPv6 addresses.
func (c *Client) LookupAAAA(name string) ([]netip.Addr, error) {
	return c.lookup(name, dns.TypeAAAA)
}

func (c *Client) lookup(name string, typ uint16) ([]netip.Addr, error) {
	c.mu.Lock()
	// RFC 8484 §4.1 recommends ID 0 for cache friendliness.
	id := uint16(0)
	c.queries++
	c.mu.Unlock()

	q := &dns.Message{
		Header:    dns.Header{ID: id, RD: true},
		Questions: []dns.Question{{Name: name, Type: typ, Class: dns.ClassINET}},
	}
	wire, err := q.Pack()
	if err != nil {
		return nil, err
	}
	resp, err := c.cc.RoundTrip(&h2.Request{
		Method:    "POST",
		Scheme:    "https",
		Authority: c.authority,
		Path:      Path,
		Header: []hpack.HeaderField{
			{Name: "content-type", Value: ContentType},
			{Name: "accept", Value: ContentType},
		},
		Body: wire,
	})
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 {
		return nil, fmt.Errorf("doh: server returned %d", resp.Status)
	}
	if resp.HeaderValue("content-type") != ContentType {
		return nil, fmt.Errorf("doh: unexpected content type %q", resp.HeaderValue("content-type"))
	}
	msg, err := dns.Unpack(resp.Body)
	if err != nil {
		return nil, err
	}
	if msg.Header.Rcode == dns.RcodeNameError {
		return nil, &dns.NXDomainError{Name: name}
	}
	if msg.Header.Rcode != dns.RcodeSuccess {
		return nil, fmt.Errorf("doh: rcode %d for %s", msg.Header.Rcode, name)
	}
	var addrs []netip.Addr
	for _, rr := range msg.Answers {
		if rr.Type == typ {
			addrs = append(addrs, rr.Addr)
		}
	}
	return addrs, nil
}

// EncodeGETPath builds the RFC 8484 §4.1 GET path for a query.
func EncodeGETPath(q *dns.Message) (string, error) {
	wire, err := q.Pack()
	if err != nil {
		return "", err
	}
	return Path + "?dns=" + base64.RawURLEncoding.EncodeToString(wire), nil
}
