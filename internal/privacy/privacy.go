// Package privacy quantifies the paper's §6.2 argument — the authors'
// stated *primary* motivation for ORIGIN frames: every coalesced
// connection removes cleartext signals from the network path that
// on-path observers use to profile user activity.
//
// Two signal families are modelled per page load:
//
//   - DNS queries over UDP/TCP port 53, which expose the queried
//     hostname in cleartext unless DoT/DoH is deployed;
//   - TLS ClientHello SNI values, which expose the hostname unless
//     Encrypted Client Hello is deployed.
//
// Exposure reports how many distinct hostnames an on-path observer
// learns under a client configuration, and how coalescing (which
// removes both the DNS query and the new handshake) compares with
// transport encryption (DoH/ECH, which hides the signal but still
// spends the round trips).
package privacy

import (
	"fmt"
	"strings"

	"respectorigin/internal/core"
	"respectorigin/internal/har"
	"respectorigin/internal/measure"
)

// ClientConfig describes the privacy-relevant client configuration.
type ClientConfig struct {
	// EncryptedDNS models DoT/DoH: DNS queries leave no cleartext
	// hostname on path.
	EncryptedDNS bool
	// EncryptedClientHello models ECH: the SNI is encrypted.
	EncryptedClientHello bool
	// Coalescing selects the connection-reuse model applied to the
	// timeline before counting signals.
	Coalescing core.Mode
	// CoalescingEnabled toggles whether Coalescing applies at all.
	CoalescingEnabled bool
}

// Exposure is the per-page cleartext footprint.
type Exposure struct {
	// DNSQueries and TLSHandshakes count network events.
	DNSQueries    int
	TLSHandshakes int
	// CleartextDNSHosts and CleartextSNIHosts are the distinct
	// hostnames leaked via each channel.
	CleartextDNSHosts []string
	CleartextSNIHosts []string
}

// LeakedHosts returns the union of hostnames an on-path observer
// learns, sorted.
func (e Exposure) LeakedHosts() []string {
	set := map[string]bool{}
	for _, h := range e.CleartextDNSHosts {
		set[h] = true
	}
	for _, h := range e.CleartextSNIHosts {
		set[h] = true
	}
	out := make([]string, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sortStrings(out)
	return out
}

// Analyze computes the exposure of one page load under a client
// configuration. Coalescing removes the DNS query and handshake (and
// therefore both signals); encryption hides a signal but keeps the
// event.
func Analyze(p *har.Page, cfg ClientConfig) Exposure {
	page := p
	if cfg.CoalescingEnabled {
		page = core.Reconstruct(p, cfg.Coalescing, 0)
	}
	var e Exposure
	dnsSeen := map[string]bool{}
	sniSeen := map[string]bool{}
	for i := range page.Entries {
		ent := &page.Entries[i]
		if ent.NewDNS {
			e.DNSQueries++
			if !cfg.EncryptedDNS && !dnsSeen[ent.Host] {
				dnsSeen[ent.Host] = true
				e.CleartextDNSHosts = append(e.CleartextDNSHosts, ent.Host)
			}
		}
		if ent.NewTLS {
			e.TLSHandshakes++
			if !cfg.EncryptedClientHello && !sniSeen[ent.Host] {
				sniSeen[ent.Host] = true
				e.CleartextSNIHosts = append(e.CleartextSNIHosts, ent.Host)
			}
		}
	}
	sortStrings(e.CleartextDNSHosts)
	sortStrings(e.CleartextSNIHosts)
	return e
}

// Scenario is a named client configuration for comparison tables.
type Scenario struct {
	Name string
	Cfg  ClientConfig
}

// StandardScenarios are the §6.2 comparison points: today's default
// client, coalescing alone, transport encryption alone, and both.
func StandardScenarios() []Scenario {
	return []Scenario{
		{"baseline (no coalescing, cleartext)", ClientConfig{}},
		{"origin coalescing only", ClientConfig{
			CoalescingEnabled: true, Coalescing: core.ModeOrigin}},
		{"DoH + ECH only", ClientConfig{
			EncryptedDNS: true, EncryptedClientHello: true}},
		{"origin coalescing + DoH + ECH", ClientConfig{
			CoalescingEnabled: true, Coalescing: core.ModeOrigin,
			EncryptedDNS: true, EncryptedClientHello: true}},
	}
}

// CorpusExposure aggregates a scenario over a corpus.
type CorpusExposure struct {
	Scenario          string
	MedianLeakedHosts float64
	MedianDNSQueries  float64
	MedianHandshakes  float64
}

// AnalyzeCorpus compares scenarios over a corpus of pages.
func AnalyzeCorpus(pages []*har.Page, scenarios []Scenario) []CorpusExposure {
	out := make([]CorpusExposure, 0, len(scenarios))
	for _, sc := range scenarios {
		var leaked, dns, hs []float64
		for _, p := range pages {
			e := Analyze(p, sc.Cfg)
			leaked = append(leaked, float64(len(e.LeakedHosts())))
			dns = append(dns, float64(e.DNSQueries))
			hs = append(hs, float64(e.TLSHandshakes))
		}
		out = append(out, CorpusExposure{
			Scenario:          sc.Name,
			MedianLeakedHosts: measure.Median(leaked),
			MedianDNSQueries:  measure.Median(dns),
			MedianHandshakes:  measure.Median(hs),
		})
	}
	return out
}

// Report renders a comparison table.
func Report(rows []CorpusExposure) string {
	var sb strings.Builder
	sb.WriteString("Privacy exposure per page load (§6.2), medians:\n")
	sb.WriteString("  scenario                                   leaked-hosts  dns-events  handshakes\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-42s %12.0f %11.0f %11.0f\n",
			r.Scenario, r.MedianLeakedHosts, r.MedianDNSQueries, r.MedianHandshakes)
	}
	sb.WriteString("  (coalescing removes the events; DoH/ECH only hides their contents)\n")
	return sb.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
