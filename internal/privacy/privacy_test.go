package privacy

import (
	"reflect"
	"strings"
	"testing"

	"respectorigin/internal/core"
	"respectorigin/internal/har"
	"respectorigin/internal/webgen"
)

func testPage(t *testing.T) *har.Page {
	t.Helper()
	cfg := webgen.DefaultConfig()
	cfg.Sites = 40
	ds, err := webgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Pages {
		if len(p.Hosts()) >= 5 {
			return p
		}
	}
	t.Fatal("no multi-host page")
	return nil
}

func TestBaselineLeaksEveryFreshHost(t *testing.T) {
	p := testPage(t)
	e := Analyze(p, ClientConfig{})
	if e.DNSQueries == 0 || e.TLSHandshakes == 0 {
		t.Fatalf("no events: %+v", e)
	}
	if len(e.CleartextDNSHosts) == 0 || len(e.CleartextSNIHosts) == 0 {
		t.Fatal("baseline leaked nothing")
	}
	// Every host with a fresh DNS query leaks via DNS.
	fresh := map[string]bool{}
	for _, ent := range p.Entries {
		if ent.NewDNS {
			fresh[ent.Host] = true
		}
	}
	if len(e.CleartextDNSHosts) != len(fresh) {
		t.Errorf("leaked %d DNS hosts, want %d", len(e.CleartextDNSHosts), len(fresh))
	}
}

func TestEncryptionHidesButKeepsEvents(t *testing.T) {
	p := testPage(t)
	base := Analyze(p, ClientConfig{})
	enc := Analyze(p, ClientConfig{EncryptedDNS: true, EncryptedClientHello: true})
	if len(enc.LeakedHosts()) != 0 {
		t.Errorf("encryption leaked %v", enc.LeakedHosts())
	}
	// The network events are unchanged: encryption costs the same RTTs.
	if enc.DNSQueries != base.DNSQueries || enc.TLSHandshakes != base.TLSHandshakes {
		t.Errorf("encryption changed event counts: %+v vs %+v", enc, base)
	}
}

func TestCoalescingRemovesEventsAndLeaks(t *testing.T) {
	p := testPage(t)
	base := Analyze(p, ClientConfig{})
	coal := Analyze(p, ClientConfig{CoalescingEnabled: true, Coalescing: core.ModeOrigin})
	if coal.DNSQueries >= base.DNSQueries {
		t.Errorf("coalescing did not reduce DNS events: %d vs %d", coal.DNSQueries, base.DNSQueries)
	}
	if coal.TLSHandshakes >= base.TLSHandshakes {
		t.Errorf("coalescing did not reduce handshakes: %d vs %d", coal.TLSHandshakes, base.TLSHandshakes)
	}
	if len(coal.LeakedHosts()) >= len(base.LeakedHosts()) {
		t.Errorf("coalescing did not reduce leaked hosts: %d vs %d",
			len(coal.LeakedHosts()), len(base.LeakedHosts()))
	}
}

func TestLeakedHostsUnion(t *testing.T) {
	e := Exposure{
		CleartextDNSHosts: []string{"b.example", "a.example"},
		CleartextSNIHosts: []string{"b.example", "c.example"},
	}
	want := []string{"a.example", "b.example", "c.example"}
	if got := e.LeakedHosts(); !reflect.DeepEqual(got, want) {
		t.Errorf("union = %v", got)
	}
}

func TestCorpusScenarioOrdering(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Sites = 300
	ds, err := webgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := AnalyzeCorpus(ds.Pages, StandardScenarios())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	baseline, coalOnly, encOnly, both := rows[0], rows[1], rows[2], rows[3]

	// Coalescing reduces leaked hosts AND events.
	if coalOnly.MedianLeakedHosts >= baseline.MedianLeakedHosts {
		t.Error("coalescing did not reduce median leaked hosts")
	}
	if coalOnly.MedianHandshakes >= baseline.MedianHandshakes {
		t.Error("coalescing did not reduce median handshakes")
	}
	// Encryption zeroes leaks but keeps event counts.
	if encOnly.MedianLeakedHosts != 0 {
		t.Errorf("DoH+ECH still leaks %.0f hosts", encOnly.MedianLeakedHosts)
	}
	if encOnly.MedianHandshakes != baseline.MedianHandshakes {
		t.Error("encryption changed handshake count")
	}
	// Both: zero leaks and fewer events.
	if both.MedianLeakedHosts != 0 || both.MedianHandshakes >= baseline.MedianHandshakes {
		t.Errorf("combined scenario wrong: %+v", both)
	}

	txt := Report(rows)
	if !strings.Contains(txt, "Privacy exposure") || !strings.Contains(txt, "DoH") {
		t.Error("report format")
	}
}
