// Package browser implements the client-side connection-coalescing
// policies the paper derives from browser source inspection (§2.3):
//
//   - PolicyChromium: IP-based coalescing against the connected address
//     only. A subresource's DNS answer must contain the exact address of
//     an existing connection; address-set transitivity is lost.
//   - PolicyFirefox: IP-based coalescing with transitivity. Firefox
//     caches the full address set from each DNS answer, so any overlap
//     between a cached set and a new answer permits reuse.
//   - PolicyFirefoxOrigin: Firefox plus RFC 8336 ORIGIN frame support —
//     a connection whose origin set contains the hostname (and whose
//     certificate covers it) is reused. Matching Firefox's shipped
//     behaviour (§6.8), a blocking DNS query is still issued unless
//     SkipOriginDNS is set (the paper's recommended client change).
//
// Every policy requires the connection's certificate to cover the
// hostname, and models the 421 Misdirected Request fallback when the
// reused server turns out not to serve the host (§2.2).
package browser

import (
	"errors"
	"net/netip"

	"respectorigin/internal/cache"
	"respectorigin/internal/obs"
)

// ErrNoAddresses reports a DNS response that succeeded but carried no
// usable addresses. For connection purposes this is a failure: without
// it, such a request would produce an Outcome with no connection, no
// reuse, and a nil Err, silently vanishing from the per-page failure
// tally (TotalFailed).
var ErrNoAddresses = errors.New("browser: DNS answer contained no addresses")

// ErrNegativeCache reports a lookup answered by the warm-path negative
// DNS cache: the name failed recently and the cached failure is served
// without querying the authority again.
var ErrNegativeCache = errors.New("browser: cached DNS failure (negative cache)")

// Policy selects a coalescing behaviour.
type Policy int

// Policies.
const (
	PolicyChromium Policy = iota
	PolicyFirefox
	PolicyFirefoxOrigin
)

func (p Policy) String() string {
	switch p {
	case PolicyChromium:
		return "chromium"
	case PolicyFirefox:
		return "firefox"
	case PolicyFirefoxOrigin:
		return "firefox+origin"
	default:
		return "unknown"
	}
}

// Environment is what the browser sees of the network: DNS, and the
// certificate / origin-set / reachability of servers. The CDN simulator
// and test fakes implement it.
type Environment interface {
	// Lookup resolves host, returning its address set in answer order.
	// Implementations count every call as one DNS query.
	Lookup(host string) ([]netip.Addr, error)

	// CertSANs returns the SAN list of the certificate a server at ip
	// presents for connections whose SNI is host.
	CertSANs(host string, ip netip.Addr) []string

	// OriginSet returns the origin set the server at ip advertises on a
	// connection opened for host (nil when the server sends no ORIGIN
	// frame).
	OriginSet(host string, ip netip.Addr) []string

	// Reachable reports whether the server at ip can authoritatively
	// serve host; false produces a 421 on attempted reuse.
	Reachable(host string, ip netip.Addr) bool
}

// ConnectFailer is an optional Environment extension for environments
// that model connection-setup faults (TLS handshake failures, resets
// during setup). A non-nil error fails the attempt; the browser then
// retries per its retry budget, rotating through the answer set.
// Environments without the extension connect unconditionally.
type ConnectFailer interface {
	ConnectFail(host string, ip netip.Addr) error
}

// TTLLookuper is an optional Environment extension exposing the
// answer's TTL budget alongside its address set, so a cache-carrying
// browser can honor per-name TTLs sourced from the authority. A
// browser only calls it when a cache is installed; environments
// without the extension fall back to Lookup and the cache's default
// TTL.
type TTLLookuper interface {
	LookupTTL(host string) (addrs []netip.Addr, ttlSeconds uint32, err error)
}

// Conn is a pooled connection.
type Conn struct {
	Host string     // hostname the connection was opened for
	IP   netip.Addr // connected address

	// Available is the full DNS answer set observed when connecting
	// (Firefox caches this; Chromium discards all but IP).
	Available []netip.Addr

	// SANs is the server certificate's SAN list.
	SANs []string

	// Origins is the origin set advertised on this connection.
	Origins map[string]bool

	// Proto is the protocol this connection speaks (may differ from the
	// browser's configured protocol after an Alt-Svc h3→h2 downgrade).
	Proto Protocol

	// lastUse orders the pool for LRU eviction: it is the browser's
	// use-sequence number at the connection's most recent open or reuse.
	lastUse int
	// speculative marks a connection opened by Preconnect rather than by
	// a request; used flips when a request first rides it. A speculative
	// connection that is never used is a wasted socket.
	speculative bool
	used        bool
}

// Speculative reports whether the connection was opened by Preconnect,
// and whether any request has ridden it since.
func (c *Conn) Speculative() (speculative, used bool) {
	return c.speculative, c.used
}

// covers reports whether the connection's certificate covers host,
// honoring single-label wildcards.
func (c *Conn) covers(host string) bool {
	return sanMatch(c.SANs, host)
}

func sanMatch(sans []string, host string) bool {
	for _, san := range sans {
		if san == host {
			return true
		}
		if len(san) > 2 && san[0] == '*' && san[1] == '.' {
			suffix := san[1:] // ".example.com"
			if len(host) > len(suffix) && host[len(host)-len(suffix):] == suffix {
				// The wildcard matches exactly one label.
				label := host[:len(host)-len(suffix)]
				if label != "" && !contains(label, '.') {
					return true
				}
			}
		}
	}
	return false
}

func contains(s string, b byte) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return true
		}
	}
	return false
}

// Outcome reports how one request was satisfied.
type Outcome struct {
	Host          string
	Reused        bool    // satisfied on an existing connection
	NewConnection bool    // opened a fresh TCP+TLS connection
	ViaOrigin     bool    // reuse authorized by an ORIGIN frame
	ConnHost      string  // host the carrying connection was opened for
	DNSQueries    int     // queries issued for this request
	Got421        bool    // reuse attempt bounced with 421
	Retries       int     // retry attempts consumed by this request
	BackoffMs     float64 // modelled backoff delay accumulated before retries
	FailedConnect bool    // at least one connection attempt failed
	Err           error

	// Warm-path accounting, only ever set when a cache is installed.
	// ResumedTLS is accounted separately from Reused: a resumed
	// handshake still opens a new connection (NewConnection is true),
	// it just skips the full handshake and certificate validation,
	// whereas Reused skips the connection entirely (coalescing).
	DNSCacheHits int  // lookups served from the positive DNS cache
	NegCacheHit  bool // lookup answered by the negative DNS cache
	ResumedTLS   bool // new connection established via ticket resumption
	CertMemoHit  bool // full handshake, but chain validation memoized

	// Protocol accounting. Proto is the protocol the satisfying
	// connection speaks (for reuse, the carrying connection's protocol).
	// ZeroRTT and AddrTokenHit are only ever set on h3 connections: a
	// 0-RTT handshake requires both a session ticket (ResumedTLS) and an
	// address-validation token (AddrTokenHit); a token alone merely
	// skips the Retry round trip.
	Proto        Protocol
	ZeroRTT      bool // h3 handshake completed in zero round trips
	AddrTokenHit bool // address-validation token skipped the Retry RTT
}

// Coalesced reports whether the request rode a connection opened for a
// different hostname (true cross-host coalescing, as opposed to plain
// same-host connection reuse).
func (o Outcome) Coalesced() bool { return o.Reused && o.ConnHost != o.Host }

// Browser is a connection pool governed by a Policy. It is not safe for
// concurrent use; page loads are sequential per browsing context.
type Browser struct {
	Policy Policy

	// Proto is the application protocol the browser speaks on fresh
	// connections. The zero value (ProtoH2) preserves the historical
	// TCP+TLS behaviour byte for byte; ProtoH1 disables cross-host
	// coalescing (keep-alive only); ProtoH3 pays QUIC handshake costs
	// and may redeem address-validation tokens for 0-RTT.
	Proto Protocol

	// SkipOriginDNS suppresses the DNS query for hosts found in an
	// origin set (the §6.8 recommended client behaviour). Only
	// meaningful for PolicyFirefoxOrigin.
	SkipOriginDNS bool

	// MaxRetries bounds retry attempts after a failed DNS lookup or a
	// failed connection attempt. 0 (the default) fails immediately,
	// preserving the pre-fault behaviour.
	MaxRetries int
	// RetryBackoffMs is the base of the exponential backoff schedule:
	// retry k is preceded by a modelled delay of RetryBackoffMs·2^(k-1)
	// milliseconds, accumulated in BackoffMs/TotalBackoffMs (the pool
	// does not sleep in wall-clock time).
	RetryBackoffMs float64

	// MaxConns caps the pool's total size. When opening a fresh
	// connection would exceed it, the least recently used pooled
	// connection is evicted first. 0 (the default) leaves the pool
	// unbounded, preserving the historical behaviour.
	MaxConns int
	// MaxConnsPerHost caps how many pooled connections may exist for one
	// hostname. At the cap, a request that would open another connection
	// for the host instead multiplexes onto a reachable existing one
	// (same-host reuse); if every pooled connection for the host is
	// stale — the server moved, every reuse would 421 — the oldest are
	// evicted to make room for exactly one replacement, so a capped pool
	// never leaks dead sockets. 0 means uncapped.
	MaxConnsPerHost int

	// DNSTransport keys every warm-path DNS cache touch (lookups,
	// positive answers, negative entries). The zero value (TransportDo53)
	// preserves the historical cache keying byte for byte; a sweep that
	// toggles resolver transport mid-run gets per-transport entries that
	// never cross-serve.
	DNSTransport cache.DNSTransport

	// Rec, when non-nil, receives one span-style event per step of
	// every request (DNS query → TLS handshake → coalesce decision)
	// plus "browser.*" counters. Rank tags the events with the page
	// load they belong to; Seq within a rank is assigned here in
	// request order. Pure observation: no policy decision reads it.
	Rec  obs.Recorder
	Rank int

	// Cache, when non-nil, is the warm-path state consulted before the
	// environment: the DNS answer cache short-circuits lookups, the
	// ticket store resumes handshakes across hostnames the certificate
	// covers, and the chain memo skips repeat validations. nil (the
	// default) disables every warm path and leaves behaviour — and
	// every output byte — identical to a cache-free build. Reset does
	// NOT clear it: the cache models client state that survives across
	// browsing sessions.
	Cache *cache.Cache

	seq    int
	useSeq int // monotone use counter feeding Conn.lastUse
	conns  []*Conn

	// Totals across all requests.
	TotalDNS     int
	TotalNewConn int
	Total421     int
	TotalReused  int

	// Warm-path totals (all zero when Cache is nil).
	TotalDNSCacheHits int // lookups served from the positive DNS cache
	TotalNegCacheHits int // lookups answered by the negative DNS cache
	TotalResumed      int // connections established via ticket resumption
	TotalCertMemoHits int // chain validations skipped via the memo
	TotalValidations  int // full certificate-chain validations performed

	// h3-path totals (all zero unless Proto is ProtoH3).
	TotalZeroRTT    int // 0-RTT handshakes (ticket + token both on hand)
	TotalAddrTokens int // address-validation token hits

	// Pool-management totals (all zero unless a cap is set or
	// Preconnect is called).
	TotalEvicted      int // pooled connections closed by cap enforcement
	TotalPreconns     int // speculative connections opened by Preconnect
	TotalPreconnsUsed int // speculative connections a request later rode

	// Per-outcome failure accounting.
	TotalRetries   int
	TotalBackoffMs float64
	TotalDNSFail   int // failed DNS lookup attempts (incl. retried ones)
	TotalConnFail  int // failed connection attempts (incl. retried ones)
	TotalFailed    int // requests that exhausted their retry budget
}

// New returns a Browser with the given policy, configured by functional
// options. Calling New(p) with no options is byte-for-byte equivalent to
// the historical field-poking construction, so existing callers keep
// their behaviour.
func New(p Policy, opts ...Option) *Browser {
	b := &Browser{Policy: p}
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// Conns returns the current connection pool.
func (b *Browser) Conns() []*Conn { return b.conns }

// Reset drops all pooled connections and counters (a fresh browsing
// session, as in the paper's active measurements).
func (b *Browser) Reset() {
	b.conns = nil
	b.TotalDNS = 0
	b.TotalNewConn = 0
	b.Total421 = 0
	b.TotalReused = 0
	b.TotalRetries = 0
	b.TotalBackoffMs = 0
	b.TotalDNSFail = 0
	b.TotalConnFail = 0
	b.TotalFailed = 0
	b.TotalDNSCacheHits = 0
	b.TotalNegCacheHits = 0
	b.TotalResumed = 0
	b.TotalCertMemoHits = 0
	b.TotalValidations = 0
	b.TotalZeroRTT = 0
	b.TotalAddrTokens = 0
	b.TotalEvicted = 0
	b.TotalPreconns = 0
	b.TotalPreconnsUsed = 0
	b.useSeq = 0
}

// DropConns removes every pooled connection opened for host (the pool's
// reaction to a TCP reset or a server GOAWAY drain) and reports how
// many were dropped. Subsequent requests must reconnect.
func (b *Browser) DropConns(host string) int {
	kept := b.conns[:0]
	dropped := 0
	for _, c := range b.conns {
		if c.Host == host {
			dropped++
			continue
		}
		kept = append(kept, c)
	}
	b.conns = kept
	return dropped
}

// FailureCounts returns the per-outcome failure accounting as a map
// keyed by failure class.
func (b *Browser) FailureCounts() map[string]int {
	return map[string]int{
		"dns":     b.TotalDNSFail,
		"connect": b.TotalConnFail,
		"421":     b.Total421,
		"retries": b.TotalRetries,
		"failed":  b.TotalFailed,
	}
}

// emit appends one event to the recorder, stamping it with the
// browser's rank and the next sequence number. A nil recorder skips
// the sequence bump so uninstrumented runs stay allocation-free.
func (b *Browser) emit(ev obs.Event) {
	if b.Rec == nil {
		return
	}
	ev.Rank = b.Rank
	ev.Seq = b.seq
	b.seq++
	b.Rec.Event(ev)
}

// markUsed stamps a use on the connection for LRU ordering, and counts
// the first request to ride a speculative socket (converting it from a
// wasted pre-connect to a used one).
func (b *Browser) markUsed(c *Conn) {
	c.lastUse = b.useSeq
	b.useSeq++
	if c.speculative && !c.used {
		b.TotalPreconnsUsed++
	}
	c.used = true
}

// evict closes one pooled connection under cap pressure.
func (b *Browser) evict(victim *Conn) {
	for i, c := range b.conns {
		if c == victim {
			b.conns = append(b.conns[:i], b.conns[i+1:]...)
			break
		}
	}
	b.TotalEvicted++
}

// Request fetches host through the pool, coalescing when the policy
// permits.
func (b *Browser) Request(env Environment, host string) Outcome {
	out := Outcome{Host: host, Proto: b.Proto}

	// ORIGIN-frame path: check origin sets before DNS. HTTP/1.1 has no
	// frame layer to carry ORIGIN on, so the path only exists for the
	// multiplexed protocols.
	if b.Policy == PolicyFirefoxOrigin && b.Proto != ProtoH1 {
		if c := b.findByOrigin(host); c != nil {
			var addrs []netip.Addr
			var lookupErr error
			looked := false
			if !b.SkipOriginDNS {
				// Shipped Firefox still issues a blocking query.
				addrs, lookupErr = b.lookup(env, host, &out)
				looked = true
			}
			if env.Reachable(host, c.IP) {
				out.Reused, out.ViaOrigin = true, true
				out.ConnHost = c.Host
				out.Proto = c.Proto
				b.markUsed(c)
				b.emit(obs.Event{Kind: obs.KindCoalesceHit, Host: host, Conn: c.Host, Detail: "origin"})
				b.account(out)
				return out
			}
			// Misconfigured origin set: fail open (§5.3) with a 421. The
			// fallback reuses the blocking query's answer set; a second
			// lookup would double-count DNS for this one request.
			out.Got421 = true
			b.emit(obs.Event{Kind: obs.KindMisdirected, Host: host, Conn: c.Host, Detail: "origin"})
			if looked {
				if lookupErr != nil || len(addrs) == 0 {
					if lookupErr == nil {
						lookupErr = ErrNoAddresses
					}
					out.Err = lookupErr
					b.account(out)
					return out
				}
				return b.connectFreshWithAddrs(env, host, addrs, out)
			}
			return b.connectFresh(env, host, out)
		}
	}

	// IP-based paths always query DNS.
	addrs, err := b.lookup(env, host, &out)
	if err != nil || len(addrs) == 0 {
		if err == nil {
			err = ErrNoAddresses
		}
		out.Err = err
		b.account(out)
		return out
	}

	if c := b.findByIP(host, addrs); c != nil {
		if env.Reachable(host, c.IP) {
			out.Reused = true
			out.ConnHost = c.Host
			out.Proto = c.Proto
			b.markUsed(c)
			b.emit(obs.Event{Kind: obs.KindCoalesceHit, Host: host, Conn: c.Host, Detail: "ip"})
			b.account(out)
			return out
		}
		out.Got421 = true
		b.emit(obs.Event{Kind: obs.KindMisdirected, Host: host, Conn: c.Host, Detail: "ip"})
	}
	return b.connectFreshWithAddrs(env, host, addrs, out)
}

// findByOrigin returns a pooled connection whose origin set contains
// host and whose certificate covers it.
func (b *Browser) findByOrigin(host string) *Conn {
	for _, c := range b.conns {
		if c.Origins[host] && c.covers(host) {
			return c
		}
	}
	return nil
}

// findByIP implements the two IP-matching disciplines.
func (b *Browser) findByIP(host string, answer []netip.Addr) *Conn {
	for _, c := range b.conns {
		if !c.covers(host) {
			continue
		}
		// HTTP/1.1 connections are keep-alive only: a second hostname
		// cannot ride them even when the certificate would allow it.
		if b.Proto == ProtoH1 && c.Host != host {
			continue
		}
		switch b.Policy {
		case PolicyChromium:
			// Only the connected address survives in Chromium's set.
			for _, a := range answer {
				if a == c.IP {
					return c
				}
			}
		case PolicyFirefox, PolicyFirefoxOrigin:
			// Transitivity over the cached available-set.
			for _, a := range answer {
				for _, av := range c.Available {
					if a == av {
						return c
					}
				}
			}
		}
	}
	return nil
}

// lookup resolves host, retrying failed queries up to MaxRetries with
// exponential-backoff accounting. Every attempt is a real query and
// counts toward DNSQueries; empty-but-successful answers are not
// faults and are returned as-is.
//
// When a cache is installed it is consulted first: a positive hit
// serves the cached answer without touching the environment (no DNS
// query is issued or counted), and a negative hit fails the lookup
// immediately — a cached failure is definitive, so it consumes no
// retry budget. Wire answers populate the cache with the answer's TTL
// when the environment exposes one (TTLLookuper), or the cache's
// default TTL otherwise; terminal failures populate the negative
// cache.
func (b *Browser) lookup(env Environment, host string, out *Outcome) ([]netip.Addr, error) {
	if b.Cache != nil {
		if addrs, negative, ok := b.Cache.LookupDNSVia(b.DNSTransport, host); ok {
			if negative {
				out.NegCacheHit = true
				b.TotalNegCacheHits++
				b.emit(obs.Event{Kind: obs.KindDNSCacheHit, Host: host, Detail: "negative"})
				return nil, ErrNegativeCache
			}
			out.DNSCacheHits++
			b.TotalDNSCacheHits++
			b.emit(obs.Event{Kind: obs.KindDNSCacheHit, Host: host})
			return addrs, nil
		}
	}
	for try := 0; ; try++ {
		out.DNSQueries++
		b.emit(obs.Event{Kind: obs.KindDNSQuery, Host: host, N: try + 1})
		addrs, ttl, err := b.envLookup(env, host)
		if err == nil {
			if b.Cache != nil && len(addrs) > 0 {
				b.Cache.PutDNSVia(b.DNSTransport, host, addrs, ttl)
			}
			return addrs, nil
		}
		b.TotalDNSFail++
		b.emit(obs.Event{Kind: obs.KindDNSFail, Host: host, Detail: err.Error()})
		if try >= b.MaxRetries {
			if b.Cache != nil {
				b.Cache.PutNegativeDNSVia(b.DNSTransport, host)
			}
			return nil, err
		}
		b.retryDelay(try, out)
	}
}

// envLookup issues one lookup against the environment. Only a
// cache-carrying browser takes the TTLLookuper path — without a cache
// the TTL is unused, and calling Lookup keeps the environment's side
// effects identical to a cache-free build.
func (b *Browser) envLookup(env Environment, host string) ([]netip.Addr, uint32, error) {
	if b.Cache != nil {
		if tl, ok := env.(TTLLookuper); ok {
			return tl.LookupTTL(host)
		}
	}
	addrs, err := env.Lookup(host)
	return addrs, b.Cache.DefaultTTL(), err
}

// retryDelay accounts one retry and its modelled backoff before attempt
// try+1 (exponential in the retry index).
func (b *Browser) retryDelay(try int, out *Outcome) {
	out.Retries++
	b.TotalRetries++
	d := b.RetryBackoffMs * float64(int64(1)<<try)
	out.BackoffMs += d
	b.TotalBackoffMs += d
	b.emit(obs.Event{Kind: obs.KindRetry, Host: out.Host, N: out.Retries, MS: d})
}

func (b *Browser) connectFresh(env Environment, host string, out Outcome) Outcome {
	addrs, err := b.lookup(env, host, &out)
	if err != nil || len(addrs) == 0 {
		if err == nil {
			err = ErrNoAddresses
		}
		out.Err = err
		b.account(out)
		return out
	}
	return b.connectFreshWithAddrs(env, host, addrs, out)
}

// enforceHostCap applies MaxConnsPerHost before a fresh connection is
// opened for host. At the cap the request is forced onto a reachable
// same-host connection (multiplexing — real browsers queue rather than
// over-open); when every pooled connection for the host is stale (the
// server moved, so reuse would only 421), the oldest are evicted down
// to cap-1 so the replacement fits without leaking dead sockets. The
// returned Outcome is final only when done is true.
func (b *Browser) enforceHostCap(env Environment, host string, out *Outcome) (final Outcome, done bool) {
	if b.MaxConnsPerHost <= 0 {
		return Outcome{}, false
	}
	var same []*Conn
	for _, c := range b.conns {
		if c.Host == host {
			same = append(same, c)
		}
	}
	if len(same) < b.MaxConnsPerHost {
		return Outcome{}, false
	}
	for _, c := range same {
		if env.Reachable(host, c.IP) {
			out.Reused = true
			out.ConnHost = c.Host
			out.Proto = c.Proto
			b.markUsed(c)
			b.emit(obs.Event{Kind: obs.KindCoalesceHit, Host: host, Conn: c.Host, Detail: "pool-cap"})
			b.account(*out)
			return *out, true
		}
	}
	for excess := len(same) - (b.MaxConnsPerHost - 1); excess > 0; excess-- {
		oldest := same[0]
		for _, c := range same[1:] {
			if c.lastUse < oldest.lastUse {
				oldest = c
			}
		}
		b.evict(oldest)
		kept := same[:0]
		for _, c := range same {
			if c != oldest {
				kept = append(kept, c)
			}
		}
		same = kept
	}
	return Outcome{}, false
}

func (b *Browser) connectFreshWithAddrs(env Environment, host string, addrs []netip.Addr, out Outcome) Outcome {
	if final, done := b.enforceHostCap(env, host, &out); done {
		return final
	}
	ip := addrs[0]
	if cf, ok := env.(ConnectFailer); ok {
		connected := false
		var connErr error
		for try := 0; try <= b.MaxRetries; try++ {
			if try > 0 {
				b.retryDelay(try-1, &out)
			}
			// Rotate through the answer set across attempts, as clients
			// do when an address misbehaves.
			ip = addrs[try%len(addrs)]
			if connErr = cf.ConnectFail(host, ip); connErr == nil {
				connected = true
				break
			}
			out.FailedConnect = true
			b.TotalConnFail++
			b.emit(obs.Event{Kind: obs.KindConnectFail, Host: host, Detail: ip.String()})
		}
		if !connected {
			out.Err = connErr
			b.account(out)
			return out
		}
	}
	b.openConn(env, host, ip, addrs, &out)
	b.account(out)
	return out
}

// openConn builds the connection for host at ip, runs the warm-path
// ticket/token/memo block, and pools it — evicting the least recently
// used pooled connection first when MaxConns is at its bound. Callers
// account the outcome themselves (Preconnect deliberately does not).
func (b *Browser) openConn(env Environment, host string, ip netip.Addr, addrs []netip.Addr, out *Outcome) *Conn {
	proto := b.connProto(env, host)
	c := &Conn{
		Host:      host,
		IP:        ip,
		Available: append([]netip.Addr(nil), addrs...),
		SANs:      env.CertSANs(host, ip),
		Origins:   map[string]bool{},
		Proto:     proto,
	}
	if b.Policy == PolicyFirefoxOrigin && proto != ProtoH1 {
		for _, o := range env.OriginSet(host, ip) {
			c.Origins[o] = true
		}
		// The connection's own host is always in its origin set.
		c.Origins[host] = true
	}
	if b.Policy == PolicyChromium {
		// Chromium keeps only the connected address (§2.3).
		c.Available = []netip.Addr{ip}
	}
	if b.MaxConns > 0 {
		for len(b.conns) >= b.MaxConns {
			lru := b.conns[0]
			for _, o := range b.conns[1:] {
				if o.lastUse < lru.lastUse {
					lru = o
				}
			}
			b.evict(lru)
		}
	}
	b.conns = append(b.conns, c)
	b.markUsed(c)
	out.NewConnection = true
	out.ConnHost = host
	out.Proto = proto
	if b.Cache != nil {
		// Warm path: a stored ticket whose certificate coverage includes
		// this host resumes the handshake — no full handshake, no chain
		// validation (arXiv:1902.02531 resumption-across-hostnames).
		// Otherwise a full handshake runs, validating the chain unless
		// the memo has seen it before. Either way the new session mints
		// a ticket for future visits. Tickets are protocol-keyed: an h2
		// ticket never resumes an h3 session or vice versa.
		wire := proto.Wire()
		if out.ResumedTLS = b.Cache.RedeemTicketProto(host, wire); out.ResumedTLS {
			b.TotalResumed++
			b.emit(obs.Event{Kind: obs.KindTLSResume, Host: host, Detail: ip.String()})
		} else {
			b.emit(obs.Event{Kind: handshakeKind(proto), Host: host, Detail: ip.String()})
			if out.CertMemoHit = b.Cache.ValidateChain("", c.SANs); out.CertMemoHit {
				b.TotalCertMemoHits++
				b.emit(obs.Event{Kind: obs.KindCertMemoHit, Host: host})
			} else {
				b.TotalValidations++
			}
		}
		b.Cache.StoreTicketProto(c.SANs, wire)
		if proto == ProtoH3 {
			// Shared address validation (arXiv:2204.03399-style): a token
			// minted for any SAN-covered hostname skips the Retry round
			// trip; with a ticket on hand as well the handshake is 0-RTT.
			if out.AddrTokenHit = b.Cache.RedeemToken(host, wire); out.AddrTokenHit {
				b.TotalAddrTokens++
				b.emit(obs.Event{Kind: obs.KindAddrTokenHit, Host: host})
			}
			if out.ZeroRTT = out.ResumedTLS && out.AddrTokenHit; out.ZeroRTT {
				b.TotalZeroRTT++
				b.emit(obs.Event{Kind: obs.KindZeroRTT, Host: host, Detail: ip.String()})
			}
			b.Cache.StoreToken(c.SANs, wire)
		}
	} else {
		b.TotalValidations++
		b.emit(obs.Event{Kind: handshakeKind(proto), Host: host, Detail: ip.String()})
	}
	if len(c.Origins) > 0 {
		b.emit(obs.Event{Kind: obs.KindOriginFrame, Host: host, N: len(c.Origins)})
	}
	return c
}

// Preconnect opens a speculative connection to host ahead of any
// request — the pre-connect sockets aggressive clients race against
// the parser. The DNS and handshake work is real (TotalDNS and the
// warm-path totals move) but no request is satisfied: the socket joins
// the pool unused, and only a later request that rides it converts it
// from a wasted socket into a win (TotalPreconnsUsed). Nothing is
// opened — and false is returned — when the host already has a pooled
// connection, the lookup fails, or the connection attempt faults.
func (b *Browser) Preconnect(env Environment, host string) bool {
	for _, c := range b.conns {
		if c.Host == host {
			return false
		}
	}
	out := Outcome{Host: host, Proto: b.Proto}
	addrs, err := b.lookup(env, host, &out)
	b.TotalDNS += out.DNSQueries
	if err != nil || len(addrs) == 0 {
		return false
	}
	ip := addrs[0]
	if cf, ok := env.(ConnectFailer); ok {
		// Speculative sockets get no retry budget: a faulted attempt is
		// simply abandoned.
		if cf.ConnectFail(host, ip) != nil {
			b.TotalConnFail++
			b.emit(obs.Event{Kind: obs.KindConnectFail, Host: host, Detail: ip.String()})
			return false
		}
	}
	c := b.openConn(env, host, ip, addrs, &out)
	c.speculative = true
	c.used = false
	b.TotalPreconns++
	return true
}

func (b *Browser) account(out Outcome) {
	b.TotalDNS += out.DNSQueries
	if out.NewConnection {
		b.TotalNewConn++
	}
	if out.Reused {
		b.TotalReused++
	}
	if out.Got421 {
		b.Total421++
	}
	if out.Err != nil {
		b.TotalFailed++
	}
	if b.Rec != nil {
		obs.Count(b.Rec, "browser.dns_queries", int64(out.DNSQueries))
		obs.Count(b.Rec, "browser.requests", 1)
		if out.NewConnection {
			obs.Count(b.Rec, "browser.new_conns", 1)
		}
		if out.Reused {
			obs.Count(b.Rec, "browser.reused", 1)
		}
		if out.Got421 {
			obs.Count(b.Rec, "browser.421", 1)
		}
		if out.Retries > 0 {
			obs.Count(b.Rec, "browser.retries", int64(out.Retries))
		}
		if out.Err != nil {
			obs.Count(b.Rec, "browser.failed", 1)
		}
		if out.DNSCacheHits > 0 {
			obs.Count(b.Rec, "browser.dns_cache_hits", int64(out.DNSCacheHits))
		}
		if out.ResumedTLS {
			obs.Count(b.Rec, "browser.tls_resumed", 1)
		}
		if out.CertMemoHit {
			obs.Count(b.Rec, "browser.cert_memo_hits", 1)
		}
		if out.NewConnection && out.Proto == ProtoH3 {
			obs.Count(b.Rec, "browser.quic_handshakes", 1)
		}
		if out.ZeroRTT {
			obs.Count(b.Rec, "browser.zero_rtt", 1)
		}
		if out.AddrTokenHit {
			obs.Count(b.Rec, "browser.addr_token_hits", 1)
		}
	}
}
