package browser

import (
	"net/netip"
	"testing"
)

// poolEnv builds the one-host environment the cap tests revolve
// around: www.example.com at ipA with a wildcard certificate.
func poolEnv(ipA netip.Addr) *fakeEnv {
	return &fakeEnv{
		answers: map[string][]netip.Addr{
			"www.example.com": {ipA},
		},
		sans: map[string][]string{
			"www.example.com": {"www.example.com", "*.example.com"},
		},
	}
}

// The regression the capped pool exists to fix: after a CDN migration,
// the 421-fallback path opens a replacement connection while the stale
// connection is still pooled. Uncapped, both linger — DropConns(host)
// reports 2, double-counting what is logically one live connection.
// With MaxConnsPerHost=1 the stale socket must be evicted when the
// replacement opens: exactly one pooled connection (on the live
// address), one eviction, and DropConns returns 1.
func TestHostCapEvictsStaleConnOn421Fallback(t *testing.T) {
	ipA, ipB := ip("192.0.2.1"), ip("203.0.113.9")
	migrate := func(env *fakeEnv) {
		// The server moves to ipB; the answer still leaks the dead
		// address, so IP coalescing finds the stale conn and 421s.
		env.answers["www.example.com"] = []netip.Addr{ipB, ipA}
		env.reachable = map[string]bool{
			"www.example.com@" + ipA.String(): false,
		}
	}

	// Uncapped baseline: the historical leak, documented.
	b := New(PolicyChromium)
	env := poolEnv(ipA)
	b.Request(env, "www.example.com")
	migrate(env)
	out := b.Request(env, "www.example.com")
	if !out.Got421 || !out.NewConnection {
		t.Fatalf("migration revisit not a 421-fallback reconnect: %+v", out)
	}
	if n := b.DropConns("www.example.com"); n != 2 {
		t.Fatalf("uncapped pool after 421-fallback: DropConns = %d, want the documented leak of 2", n)
	}

	// Capped, coalescing enabled: the stale socket is evicted when the
	// replacement opens.
	b = New(PolicyChromium, WithPoolLimits(0, 1))
	env = poolEnv(ipA)
	b.Request(env, "www.example.com")
	migrate(env)
	out = b.Request(env, "www.example.com")
	if !out.Got421 || !out.NewConnection || out.Reused {
		t.Fatalf("capped migration revisit: %+v", out)
	}
	if got := len(b.Conns()); got != 1 {
		t.Fatalf("capped pool holds %d conns after 421-fallback, want 1", got)
	}
	if b.Conns()[0].IP != ipB {
		t.Fatalf("surviving conn pinned to %v, want the live address %v", b.Conns()[0].IP, ipB)
	}
	if b.TotalEvicted != 1 || b.TotalNewConn != 2 || b.Total421 != 1 {
		t.Fatalf("accounting: evicted=%d newconn=%d 421=%d, want 1/2/1",
			b.TotalEvicted, b.TotalNewConn, b.Total421)
	}
	if n := b.DropConns("www.example.com"); n != 1 {
		t.Fatalf("capped pool after 421-fallback: DropConns = %d, want 1 (no double-count)", n)
	}
}

// At the per-host cap, a request whose answer no longer overlaps the
// pooled connection's address set must not open a second socket when
// the pooled server still serves the host: the cap forces same-host
// multiplexing (Reused, not Coalesced — the carrying connection is the
// host's own).
func TestHostCapForcesSameHostMultiplexing(t *testing.T) {
	ipA, ipB := ip("192.0.2.1"), ip("203.0.113.9")
	b := New(PolicyChromium, WithPoolLimits(0, 1))
	env := poolEnv(ipA)
	b.Request(env, "www.example.com")
	// A rotated answer with no overlap (Chromium kept only ipA), but
	// the original server is alive and well.
	env.answers["www.example.com"] = []netip.Addr{ipB}
	out := b.Request(env, "www.example.com")
	if !out.Reused || out.NewConnection || out.Got421 {
		t.Fatalf("capped revisit did not multiplex: %+v", out)
	}
	if out.Coalesced() {
		t.Fatalf("same-host multiplexing misreported as cross-host coalescing: %+v", out)
	}
	if b.TotalNewConn != 1 || len(b.Conns()) != 1 || b.TotalEvicted != 0 {
		t.Fatalf("accounting: newconn=%d pool=%d evicted=%d, want 1/1/0",
			b.TotalNewConn, len(b.Conns()), b.TotalEvicted)
	}
}

// Cross-host coalescing still works under a per-host cap of 1: the
// coalesced host rides another host's connection, which its own cap
// does not govern.
func TestHostCapDoesNotBlockCoalescing(t *testing.T) {
	b := New(PolicyFirefox, WithPoolLimits(0, 1))
	env := twoHostEnv()
	b.Request(env, "www.example.com")
	out := b.Request(env, "static.example.com")
	if !out.Reused || !out.Coalesced() {
		t.Fatalf("cap=1 broke cross-host coalescing: %+v", out)
	}
	if b.TotalNewConn != 1 || b.TotalEvicted != 0 {
		t.Fatalf("accounting: newconn=%d evicted=%d, want 1/0", b.TotalNewConn, b.TotalEvicted)
	}
}

// The total-pool cap evicts the least recently used connection, where
// "use" includes reuse — a connection touched by a coalesced request
// outlives an older untouched one.
func TestTotalCapEvictsLeastRecentlyUsed(t *testing.T) {
	ipA, ipB, ipC := ip("192.0.2.1"), ip("192.0.2.2"), ip("192.0.2.3")
	env := &fakeEnv{
		answers: map[string][]netip.Addr{
			"a.example.com": {ipA},
			"b.example.com": {ipB},
			"c.example.com": {ipC},
		},
		sans: map[string][]string{
			"a.example.com": {"a.example.com"},
			"b.example.com": {"b.example.com"},
			"c.example.com": {"c.example.com"},
		},
	}
	b := New(PolicyChromium, WithPoolLimits(2, 0))
	b.Request(env, "a.example.com")
	b.Request(env, "b.example.com")
	// Touch a: it becomes the most recently used.
	if out := b.Request(env, "a.example.com"); !out.Reused {
		t.Fatalf("same-host revisit not reused: %+v", out)
	}
	// c needs a slot: b (LRU) must go, a must survive.
	b.Request(env, "c.example.com")
	if b.TotalEvicted != 1 || len(b.Conns()) != 2 {
		t.Fatalf("evicted=%d pool=%d, want 1/2", b.TotalEvicted, len(b.Conns()))
	}
	hosts := map[string]bool{}
	for _, c := range b.Conns() {
		hosts[c.Host] = true
	}
	if !hosts["a.example.com"] || !hosts["c.example.com"] || hosts["b.example.com"] {
		t.Fatalf("pool after LRU eviction: %v, want {a, c}", hosts)
	}
}

// Preconnect opens a real socket with real DNS, but it is not a
// request: TotalNewConn stays put, and the socket counts as wasted
// until a request rides it.
func TestPreconnectAccounting(t *testing.T) {
	ipA, ipB := ip("192.0.2.1"), ip("192.0.2.2")
	env := &fakeEnv{
		answers: map[string][]netip.Addr{
			"www.example.com":  {ipA},
			"idle.example.com": {ipB},
		},
		sans: map[string][]string{
			"www.example.com":  {"www.example.com"},
			"idle.example.com": {"idle.example.com"},
		},
	}
	b := New(PolicyChromium)
	if !b.Preconnect(env, "www.example.com") || !b.Preconnect(env, "idle.example.com") {
		t.Fatal("preconnects did not open")
	}
	if b.Preconnect(env, "www.example.com") {
		t.Fatal("preconnect re-opened an already-pooled host")
	}
	if b.TotalPreconns != 2 || b.TotalNewConn != 0 || b.TotalDNS != 2 || len(b.Conns()) != 2 {
		t.Fatalf("after preconnects: preconns=%d newconn=%d dns=%d pool=%d, want 2/0/2/2",
			b.TotalPreconns, b.TotalNewConn, b.TotalDNS, len(b.Conns()))
	}
	// The request rides the speculative socket: a reuse, and the socket
	// converts from wasted to used.
	out := b.Request(env, "www.example.com")
	if !out.Reused || out.NewConnection {
		t.Fatalf("request did not ride the preconnected socket: %+v", out)
	}
	if b.TotalPreconnsUsed != 1 {
		t.Fatalf("TotalPreconnsUsed = %d, want 1", b.TotalPreconnsUsed)
	}
	if wasted := b.TotalPreconns - b.TotalPreconnsUsed; wasted != 1 {
		t.Fatalf("wasted sockets = %d, want 1 (idle.example.com)", wasted)
	}
	// Riding it twice counts it used once.
	b.Request(env, "www.example.com")
	if b.TotalPreconnsUsed != 1 {
		t.Fatalf("TotalPreconnsUsed double-counted: %d", b.TotalPreconnsUsed)
	}
}

// Reset clears the pool-management counters along with everything
// else.
func TestResetClearsPoolCounters(t *testing.T) {
	ipA := ip("192.0.2.1")
	b := New(PolicyChromium, WithPoolLimits(1, 1))
	env := poolEnv(ipA)
	b.Preconnect(env, "www.example.com")
	env.answers["www.example.com"] = []netip.Addr{ip("203.0.113.9"), ipA}
	env.reachable = map[string]bool{"www.example.com@" + ipA.String(): false}
	b.Request(env, "www.example.com")
	if b.TotalPreconns == 0 || b.TotalEvicted == 0 {
		t.Fatalf("scenario did not exercise the counters: preconns=%d evicted=%d",
			b.TotalPreconns, b.TotalEvicted)
	}
	b.Reset()
	if b.TotalEvicted != 0 || b.TotalPreconns != 0 || b.TotalPreconnsUsed != 0 || len(b.Conns()) != 0 {
		t.Fatalf("Reset left pool counters: evicted=%d preconns=%d used=%d pool=%d",
			b.TotalEvicted, b.TotalPreconns, b.TotalPreconnsUsed, len(b.Conns()))
	}
}
