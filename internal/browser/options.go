package browser

import (
	"respectorigin/internal/cache"
	"respectorigin/internal/obs"
)

// Option configures a Browser at construction. Options replace the
// historical pattern of poking exported fields after New: a call like
//
//	b := browser.New(p, browser.WithRetries(2, 250), browser.WithCache(c))
//
// builds a fully-configured pool in one expression. The exported fields
// remain writable for compatibility, but new call sites should prefer
// options so construction-time invariants stay in one place.
type Option func(*Browser)

// WithSkipOriginDNS suppresses the blocking DNS query for hosts found
// in an ORIGIN frame's origin set (the §6.8 recommended client change).
// Only meaningful for PolicyFirefoxOrigin.
func WithSkipOriginDNS(skip bool) Option {
	return func(b *Browser) { b.SkipOriginDNS = skip }
}

// WithRetries sets the retry budget for failed lookups and connection
// attempts and the base of the exponential backoff schedule.
func WithRetries(max int, backoffMs float64) Option {
	return func(b *Browser) {
		b.MaxRetries = max
		b.RetryBackoffMs = backoffMs
	}
}

// WithRecorder installs an observability recorder and the rank tag for
// the events it receives. A nil recorder keeps observation off.
func WithRecorder(rec obs.Recorder, rank int) Option {
	return func(b *Browser) {
		b.Rec = rec
		b.Rank = rank
	}
}

// WithCache installs the warm-path cache (DNS answers, TLS session
// tickets, validated-chain memo). nil keeps every warm path disabled.
func WithCache(c *cache.Cache) Option {
	return func(b *Browser) { b.Cache = c }
}

// WithPoolLimits caps the connection pool: maxConns bounds the total
// pool size (LRU eviction at the bound) and maxPerHost bounds the
// connections pooled per hostname (same-host multiplexing at the
// bound). 0 for either leaves that dimension unbounded — the
// historical behaviour.
func WithPoolLimits(maxConns, maxPerHost int) Option {
	return func(b *Browser) {
		b.MaxConns = maxConns
		b.MaxConnsPerHost = maxPerHost
	}
}

// WithDNSTransport keys the browser's warm-path DNS cache touches by
// resolver transport. The default (TransportDo53) preserves the
// historical keying byte for byte.
func WithDNSTransport(t cache.DNSTransport) Option {
	return func(b *Browser) { b.DNSTransport = t }
}

// SetRecorder installs an observability recorder post-construction.
//
// Deprecated: pass WithRecorder to New instead.
func (b *Browser) SetRecorder(rec obs.Recorder, rank int) {
	b.Rec = rec
	b.Rank = rank
}
