package browser

import (
	"errors"
	"net/netip"
	"testing"
)

// originEnv builds an environment where a carrier connection for
// www.example advertises origin coverage of api.example, but the edge
// no longer serves it — the §5.3 stale-origin 421 path.
func staleOriginEnv(reachable bool) *fakeEnv {
	ipA := ip("192.0.2.1")
	env := &fakeEnv{
		answers: map[string][]netip.Addr{
			"www.example": {ipA},
			"api.example": {ipA},
		},
		sans: map[string][]string{
			"www.example": {"www.example", "api.example"},
			"api.example": {"www.example", "api.example"},
		},
		origins: map[string][]string{
			"www.example": {"www.example", "api.example"},
		},
	}
	if !reachable {
		env.reachable = map[string]bool{"api.example@" + ipA.String(): false}
	}
	return env
}

// TestOrigin421FallbackSingleLookup is the regression test for the
// double-DNS bug: the ORIGIN path issued a blocking query, got a 421 on
// reuse, and then connectFresh issued a second query for the same
// request, double-counting DNSQueries against the §4.2 ideal.
func TestOrigin421FallbackSingleLookup(t *testing.T) {
	b := New(PolicyFirefoxOrigin)
	env := staleOriginEnv(false)
	first := b.Request(env, "www.example")
	if !first.NewConnection || first.DNSQueries != 1 {
		t.Fatalf("carrier request: %+v", first)
	}

	out := b.Request(env, "api.example")
	if !out.Got421 {
		t.Fatalf("stale origin set did not produce a 421: %+v", out)
	}
	if !out.NewConnection {
		t.Fatalf("421 fallback did not open a fresh connection: %+v", out)
	}
	if out.DNSQueries != 1 {
		t.Errorf("421 fallback issued %d DNS queries for one request, want 1", out.DNSQueries)
	}
	if env.lookups != 2 {
		t.Errorf("environment saw %d lookups across both requests, want 2", env.lookups)
	}
	if b.TotalDNS != 2 {
		t.Errorf("TotalDNS = %d, want 2 (one per request)", b.TotalDNS)
	}
}

// TestOrigin421FallbackSkipOriginDNS covers the §6.8 client: with the
// blocking query suppressed, the 421 fallback must issue exactly one
// (first) query, not zero.
func TestOrigin421FallbackSkipOriginDNS(t *testing.T) {
	b := New(PolicyFirefoxOrigin)
	b.SkipOriginDNS = true
	env := staleOriginEnv(false)
	b.Request(env, "www.example")

	out := b.Request(env, "api.example")
	if !out.Got421 || !out.NewConnection {
		t.Fatalf("fallback outcome: %+v", out)
	}
	if out.DNSQueries != 1 {
		t.Errorf("SkipOriginDNS fallback issued %d queries, want 1", out.DNSQueries)
	}
}

// TestOriginReuseStillSingleLookup pins the healthy path: shipped
// Firefox issues one blocking query per ORIGIN-coalesced request.
func TestOriginReuseStillSingleLookup(t *testing.T) {
	b := New(PolicyFirefoxOrigin)
	env := staleOriginEnv(true)
	b.Request(env, "www.example")
	out := b.Request(env, "api.example")
	if !out.Reused || !out.ViaOrigin {
		t.Fatalf("expected ORIGIN reuse: %+v", out)
	}
	if out.DNSQueries != 1 || b.TotalDNS != 2 {
		t.Errorf("queries: out=%d total=%d, want 1 and 2", out.DNSQueries, b.TotalDNS)
	}
}

// failingEnv fails lookups and/or connection attempts a set number of
// times before succeeding.
type failingEnv struct {
	fakeEnv
	dnsFailures  int
	connFailures int
	connAttempts []netip.Addr // records the address of each attempt
}

var errDNS = errors.New("test: dns down")
var errConn = errors.New("test: connect refused")

func (f *failingEnv) Lookup(host string) ([]netip.Addr, error) {
	f.lookups++
	if f.dnsFailures > 0 {
		f.dnsFailures--
		return nil, errDNS
	}
	return f.answers[host], nil
}

func (f *failingEnv) ConnectFail(host string, ip netip.Addr) error {
	f.connAttempts = append(f.connAttempts, ip)
	if f.connFailures > 0 {
		f.connFailures--
		return errConn
	}
	return nil
}

func retryEnv() *failingEnv {
	return &failingEnv{fakeEnv: fakeEnv{
		answers: map[string][]netip.Addr{
			"www.example": {ip("192.0.2.1"), ip("192.0.2.2")},
		},
		sans: map[string][]string{"www.example": {"www.example"}},
	}}
}

func TestDNSRetryWithBackoff(t *testing.T) {
	b := New(PolicyFirefox)
	b.MaxRetries = 2
	b.RetryBackoffMs = 100
	env := retryEnv()
	env.dnsFailures = 2
	out := b.Request(env, "www.example")
	if out.Err != nil || !out.NewConnection {
		t.Fatalf("request failed despite budget: %+v", out)
	}
	if out.DNSQueries != 3 {
		t.Errorf("DNSQueries = %d, want 3 (two failures + success)", out.DNSQueries)
	}
	if out.Retries != 2 || b.TotalRetries != 2 {
		t.Errorf("retries = %d/%d, want 2/2", out.Retries, b.TotalRetries)
	}
	// Exponential schedule: 100 + 200.
	if out.BackoffMs != 300 {
		t.Errorf("BackoffMs = %v, want 300", out.BackoffMs)
	}
	if b.TotalDNSFail != 2 {
		t.Errorf("TotalDNSFail = %d, want 2", b.TotalDNSFail)
	}
}

func TestDNSRetryBudgetExhausted(t *testing.T) {
	b := New(PolicyFirefox)
	b.MaxRetries = 1
	env := retryEnv()
	env.dnsFailures = 5
	out := b.Request(env, "www.example")
	if !errors.Is(out.Err, errDNS) {
		t.Fatalf("Err = %v, want errDNS", out.Err)
	}
	if out.NewConnection || out.Reused {
		t.Fatalf("failed request recorded a connection: %+v", out)
	}
	if out.DNSQueries != 2 {
		t.Errorf("DNSQueries = %d, want 2", out.DNSQueries)
	}
	if b.TotalFailed != 1 {
		t.Errorf("TotalFailed = %d, want 1", b.TotalFailed)
	}
}

func TestConnectRetryRotatesAddresses(t *testing.T) {
	b := New(PolicyFirefox)
	b.MaxRetries = 2
	b.RetryBackoffMs = 50
	env := retryEnv()
	env.connFailures = 1
	out := b.Request(env, "www.example")
	if out.Err != nil || !out.NewConnection {
		t.Fatalf("request failed: %+v", out)
	}
	if len(env.connAttempts) != 2 {
		t.Fatalf("connection attempts = %d, want 2", len(env.connAttempts))
	}
	// Second attempt must rotate to the next answer.
	if env.connAttempts[0] != ip("192.0.2.1") || env.connAttempts[1] != ip("192.0.2.2") {
		t.Errorf("attempts did not rotate the answer set: %v", env.connAttempts)
	}
	if !out.FailedConnect || b.TotalConnFail != 1 {
		t.Errorf("connect-failure accounting: FailedConnect=%v TotalConnFail=%d", out.FailedConnect, b.TotalConnFail)
	}
}

func TestConnectRetryBudgetExhausted(t *testing.T) {
	b := New(PolicyFirefox)
	b.MaxRetries = 1
	env := retryEnv()
	env.connFailures = 5
	out := b.Request(env, "www.example")
	if !errors.Is(out.Err, errConn) {
		t.Fatalf("Err = %v, want errConn", out.Err)
	}
	if b.TotalConnFail != 2 || b.TotalFailed != 1 {
		t.Errorf("accounting: conn fails=%d failed=%d, want 2 and 1", b.TotalConnFail, b.TotalFailed)
	}
	if len(b.Conns()) != 0 {
		t.Errorf("failed request left %d pooled conns", len(b.Conns()))
	}
}

// staleOriginRetryEnv is staleOriginEnv with fault hooks: the carrier
// for www.example advertises api.example in its origin set, the edge
// refuses api.example on reuse (421), and the fallback connection can
// be made to fail DNS lookups or connection attempts.
func staleOriginRetryEnv() *failingEnv {
	ipA := ip("192.0.2.1")
	return &failingEnv{fakeEnv: fakeEnv{
		answers: map[string][]netip.Addr{
			"www.example": {ipA},
			"api.example": {ipA, ip("192.0.2.7")},
		},
		sans: map[string][]string{
			"www.example": {"www.example", "api.example"},
			"api.example": {"www.example", "api.example"},
		},
		origins:   map[string][]string{"www.example": {"www.example", "api.example"}},
		reachable: map[string]bool{"api.example@" + ipA.String(): false},
	}}
}

// TestOrigin421FallbackWithConnectRetry combines the two fault paths:
// a request bounces off a stale origin set with a 421, its fallback
// connection fails once and succeeds on retry. The per-request DNS
// tally must stay at one — neither the 421 fallback nor the connect
// retry may issue a second lookup — or the §4.2 per-page DNS counts
// double-count every degraded-but-recovered request.
func TestOrigin421FallbackWithConnectRetry(t *testing.T) {
	b := New(PolicyFirefoxOrigin)
	b.MaxRetries = 2
	b.RetryBackoffMs = 100
	env := staleOriginRetryEnv()
	if first := b.Request(env, "www.example"); !first.NewConnection || first.DNSQueries != 1 {
		t.Fatalf("carrier request: %+v", first)
	}

	env.connFailures = 1
	out := b.Request(env, "api.example")
	if !out.Got421 || !out.NewConnection || out.Err != nil {
		t.Fatalf("combined 421+retry outcome: %+v", out)
	}
	if out.DNSQueries != 1 {
		t.Errorf("DNSQueries = %d, want 1 (421 fallback and connect retry must reuse the blocking query's answer)", out.DNSQueries)
	}
	if out.Retries != 1 || b.TotalRetries != 1 {
		t.Errorf("retries = %d/%d, want 1/1", out.Retries, b.TotalRetries)
	}
	if env.lookups != 2 {
		t.Errorf("environment saw %d lookups, want 2 (one per request)", env.lookups)
	}
	if b.TotalDNS != 2 {
		t.Errorf("TotalDNS = %d, want 2", b.TotalDNS)
	}
	// The retry rotated off the refused address.
	if n := len(env.connAttempts); n != 3 {
		t.Fatalf("connection attempts = %d, want 3 (carrier + failed + retried)", n)
	}
	if env.connAttempts[1] != ip("192.0.2.1") || env.connAttempts[2] != ip("192.0.2.7") {
		t.Errorf("fallback attempts did not rotate the answer set: %v", env.connAttempts[1:])
	}
	if out.BackoffMs != 100 {
		t.Errorf("BackoffMs = %v, want 100", out.BackoffMs)
	}
}

// TestOrigin421FallbackWithDNSRetry puts the fault before the 421: the
// blocking origin query fails once and succeeds on retry, then reuse
// bounces with a 421. The fallback must ride the retried answer — two
// lookup attempts total for the request, never a third.
func TestOrigin421FallbackWithDNSRetry(t *testing.T) {
	b := New(PolicyFirefoxOrigin)
	b.MaxRetries = 2
	b.RetryBackoffMs = 100
	env := staleOriginRetryEnv()
	b.Request(env, "www.example")

	env.dnsFailures = 1
	out := b.Request(env, "api.example")
	if !out.Got421 || !out.NewConnection || out.Err != nil {
		t.Fatalf("combined DNS-retry+421 outcome: %+v", out)
	}
	if out.DNSQueries != 2 {
		t.Errorf("DNSQueries = %d, want 2 (failed attempt + retried success, no post-421 lookup)", out.DNSQueries)
	}
	if out.Retries != 1 {
		t.Errorf("Retries = %d, want 1", out.Retries)
	}
	if env.lookups != 3 {
		t.Errorf("environment saw %d lookups, want 3", env.lookups)
	}
	if b.TotalDNS != 3 || b.TotalDNSFail != 1 {
		t.Errorf("TotalDNS=%d TotalDNSFail=%d, want 3 and 1", b.TotalDNS, b.TotalDNSFail)
	}
}

// TestEmptyAnswerIsAccountedFailure pins the audit fix: a successful
// DNS response with no addresses must surface as ErrNoAddresses and
// count toward TotalFailed instead of vanishing silently.
func TestEmptyAnswerIsAccountedFailure(t *testing.T) {
	b := New(PolicyFirefox)
	env := &fakeEnv{answers: map[string][]netip.Addr{}}
	out := b.Request(env, "missing.example")
	if !errors.Is(out.Err, ErrNoAddresses) {
		t.Fatalf("Err = %v, want ErrNoAddresses", out.Err)
	}
	if out.NewConnection || out.Reused {
		t.Fatalf("empty answer produced a connection: %+v", out)
	}
	if b.TotalFailed != 1 {
		t.Errorf("TotalFailed = %d, want 1", b.TotalFailed)
	}
}

func TestDropConns(t *testing.T) {
	b := New(PolicyFirefox)
	env := retryEnv()
	b.Request(env, "www.example")
	if n := b.DropConns("www.example"); n != 1 {
		t.Fatalf("DropConns = %d, want 1", n)
	}
	if len(b.Conns()) != 0 {
		t.Fatalf("pool not empty after drop")
	}
	out := b.Request(env, "www.example")
	if !out.NewConnection {
		t.Fatalf("request after drop did not reconnect: %+v", out)
	}
	if n := b.DropConns("other.example"); n != 0 {
		t.Fatalf("DropConns for absent host = %d, want 0", n)
	}
}

// TestSanMatchWildcardEdges pins the wildcard edge cases: a wildcard
// never matches its bare suffix, never spans multiple labels, and the
// degenerate "*." SAN matches nothing.
func TestSanMatchWildcardEdges(t *testing.T) {
	cases := []struct {
		sans []string
		host string
		want bool
	}{
		{[]string{"*.example.com"}, "www.example.com", true},
		{[]string{"*.example.com"}, "example.com", false},     // host == suffix
		{[]string{"*.example.com"}, "a.b.example.com", false}, // multi-label
		{[]string{"*."}, "anything", false},                   // bare wildcard
		{[]string{"*."}, "", false},
		{[]string{"*.example.com"}, ".example.com", false}, // empty label
		{[]string{"example.com"}, "example.com", true},     // exact
		{[]string{"*.example.com", "example.com"}, "example.com", true},
		{[]string{"*.co.uk"}, "example.co.uk", true}, // single label over ccTLD
		{[]string{"*.example.com"}, "wwwexample.com", false},
	}
	for _, c := range cases {
		if got := sanMatch(c.sans, c.host); got != c.want {
			t.Errorf("sanMatch(%v, %q) = %v, want %v", c.sans, c.host, got, c.want)
		}
	}
}
