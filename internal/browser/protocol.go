package browser

import (
	"fmt"

	"respectorigin/internal/obs"
)

// Protocol selects the application protocol a browser speaks when it
// opens connections, and therefore which transport costs a connection
// setup pays and which warm-path state it may redeem:
//
//   - ProtoH1: HTTP/1.1 over TLS/TCP. Connections are per-host
//     keep-alive only — no cross-hostname coalescing, since there is no
//     multiplexed connection for a second origin to ride.
//   - ProtoH2: HTTP/2 over TLS/TCP, the paper's baseline. Coalescing
//     follows the configured Policy (IP-based or ORIGIN-frame).
//   - ProtoH3: HTTP/3 over QUIC. Coalescing follows the same
//     ORIGIN-equivalent SAN rules as h2, but connection setup pays QUIC
//     handshake costs instead of TCP+TLS: a combined 1-RTT handshake,
//     0-RTT when a session ticket and an address-validation token are
//     both on hand, and an extra Retry round trip when no token covers
//     the server (the shared-address-validation cost model).
//
// The zero value is ProtoH2 so every pre-protocol call site keeps its
// historical behaviour byte for byte.
type Protocol int

// Protocols, zero value first.
const (
	ProtoH2 Protocol = iota // historical default: HTTP/2 over TLS/TCP
	ProtoH1                 // HTTP/1.1 over TLS/TCP, keep-alive only
	ProtoH3                 // HTTP/3 over QUIC
)

// Protocols lists every protocol in sweep order (h1, h2, h3).
var Protocols = []Protocol{ProtoH1, ProtoH2, ProtoH3}

func (p Protocol) String() string {
	switch p {
	case ProtoH1:
		return "h1"
	case ProtoH2:
		return "h2"
	case ProtoH3:
		return "h3"
	default:
		return fmt.Sprintf("proto(%d)", int(p))
	}
}

// Wire returns the protocol's warm-state key (1, 2, or 3) — the value
// the cache layer keys session tickets and address-validation tokens
// by, so state minted under one protocol can never resume a session
// under another.
func (p Protocol) Wire() int {
	switch p {
	case ProtoH1:
		return 1
	case ProtoH3:
		return 3
	default:
		return 2
	}
}

// ParseProtocol parses the -proto flag values "h1", "h2" and "h3".
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "h1":
		return ProtoH1, nil
	case "h2":
		return ProtoH2, nil
	case "h3":
		return ProtoH3, nil
	default:
		return ProtoH2, fmt.Errorf("browser: unknown protocol %q (want h1, h2 or h3)", s)
	}
}

// WithProtocol selects the application protocol the browser speaks.
// The zero value (ProtoH2) preserves the historical behaviour.
func WithProtocol(p Protocol) Option {
	return func(b *Browser) { b.Proto = p }
}

// AltSvcer is an optional Environment extension advertising HTTP/3
// support per host (the Alt-Svc discovery step of the cross-layer
// QUIC/DNS/HTTP-3 interaction papers). A browser configured for
// ProtoH3 falls back to ProtoH2 for connections to hosts the
// environment does not advertise; environments without the extension
// are assumed to support h3 everywhere.
type AltSvcer interface {
	SupportsH3(host string) bool
}

// handshakeKind returns the obs event kind for a non-resumed handshake
// under p: QUIC's combined handshake for h3, the TCP+TLS handshake
// otherwise. Keeping h1/h2 on the historical kind preserves byte
// identity of pre-protocol event streams.
func handshakeKind(p Protocol) string {
	if p == ProtoH3 {
		return obs.KindQUICHandshake
	}
	return obs.KindTLSHandshake
}

// connProto returns the protocol one fresh connection to host will
// actually speak: the browser's configured protocol, downgraded to h2
// when an h3 browser learns via Alt-Svc that the host does not serve
// QUIC.
func (b *Browser) connProto(env Environment, host string) Protocol {
	if b.Proto != ProtoH3 {
		return b.Proto
	}
	if as, ok := env.(AltSvcer); ok && !as.SupportsH3(host) {
		return ProtoH2
	}
	return ProtoH3
}
