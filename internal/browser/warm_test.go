package browser

import (
	"errors"
	"net/netip"
	"testing"

	"respectorigin/internal/cache"
	"respectorigin/internal/obs"
)

// ttlEnv wraps fakeEnv with a TTLLookuper so cache-carrying browsers
// exercise the TTL-honoring path.
type ttlEnv struct {
	fakeEnv
	ttl        uint32
	ttlLookups int
}

func (f *ttlEnv) LookupTTL(host string) ([]netip.Addr, uint32, error) {
	f.ttlLookups++
	f.lookups++
	return f.answers[host], f.ttl, nil
}

func warmEnv() *ttlEnv {
	return &ttlEnv{
		ttl: 300,
		fakeEnv: fakeEnv{
			answers: map[string][]netip.Addr{
				"www.example.com":    {ip("192.0.2.1")},
				"static.example.com": {ip("192.0.2.2")},
			},
			sans: map[string][]string{
				"www.example.com":    {"www.example.com", "static.example.com"},
				"static.example.com": {"www.example.com", "static.example.com"},
			},
		},
	}
}

func TestOptionsConfigureBrowser(t *testing.T) {
	c := cache.New(cache.Options{})
	var tr obs.Trace
	b := New(PolicyFirefoxOrigin,
		WithSkipOriginDNS(true),
		WithRetries(3, 125),
		WithRecorder(&tr, 7),
		WithCache(c),
	)
	if !b.SkipOriginDNS || b.MaxRetries != 3 || b.RetryBackoffMs != 125 {
		t.Fatalf("options not applied: %+v", b)
	}
	if b.Rec != &tr || b.Rank != 7 || b.Cache != c {
		t.Fatal("recorder/cache options not applied")
	}
	// No options at all must equal the historical zero-value construction.
	plain := New(PolicyChromium)
	if plain.MaxRetries != 0 || plain.Rec != nil || plain.Cache != nil {
		t.Fatalf("optionless New changed defaults: %+v", plain)
	}
}

func TestWarmVisitServesDNSFromCache(t *testing.T) {
	c := cache.New(cache.Options{})
	env := warmEnv()
	b := New(PolicyFirefox, WithCache(c))

	first := b.Request(env, "www.example.com")
	if first.DNSQueries != 1 || first.DNSCacheHits != 0 {
		t.Fatalf("cold visit: %+v, want one real query", first)
	}
	if env.ttlLookups != 1 {
		t.Fatal("cache-carrying browser must use the TTLLookuper path")
	}

	b.Reset() // new browsing session; the cache survives
	second := b.Request(env, "www.example.com")
	if second.DNSQueries != 0 || second.DNSCacheHits != 1 {
		t.Fatalf("warm visit: %+v, want zero queries and one cache hit", second)
	}
	if env.lookups != 1 {
		t.Fatalf("env lookups = %d, warm visit must not touch the wire", env.lookups)
	}

	// Past the TTL the cache must re-query.
	c.Clock().AdvanceMs(300_000)
	b.Reset()
	third := b.Request(env, "www.example.com")
	if third.DNSQueries != 1 || third.DNSCacheHits != 0 {
		t.Fatalf("expired visit: %+v, want a real query", third)
	}
}

func TestWarmVisitResumesTLS(t *testing.T) {
	c := cache.New(cache.Options{})
	env := warmEnv()
	b := New(PolicyFirefox, WithCache(c))

	first := b.Request(env, "www.example.com")
	if !first.NewConnection || first.ResumedTLS {
		t.Fatalf("cold visit: %+v, want a full handshake", first)
	}
	if b.TotalValidations != 1 {
		t.Fatalf("TotalValidations = %d, want 1", b.TotalValidations)
	}

	b.Reset()
	second := b.Request(env, "www.example.com")
	if !second.NewConnection || !second.ResumedTLS {
		t.Fatalf("warm visit: %+v, want ticket resumption", second)
	}
	if second.Reused {
		t.Fatal("resumption must not be confused with coalescing reuse")
	}
	// Totals are per-session (Reset zeroed the cold visit's): the warm
	// session resumed once and validated nothing.
	if b.TotalValidations != 0 || b.TotalResumed != 1 {
		t.Fatalf("validations=%d resumed=%d, resumption must skip validation",
			b.TotalValidations, b.TotalResumed)
	}
}

func TestTicketResumesAcrossHostnames(t *testing.T) {
	// The www certificate covers static too; its ticket resumes a
	// connection to static even under Chromium, which never coalesces
	// the two (arXiv:1902.02531 resumption-across-hostnames).
	c := cache.New(cache.Options{})
	env := warmEnv()
	b := New(PolicyChromium, WithCache(c))

	b.Request(env, "www.example.com")
	second := b.Request(env, "static.example.com")
	if second.Reused {
		t.Fatalf("chromium must not coalesce here: %+v", second)
	}
	if !second.NewConnection || !second.ResumedTLS {
		t.Fatalf("cross-host resumption failed: %+v", second)
	}
}

func TestCertMemoSkipsRepeatValidation(t *testing.T) {
	// With tickets disabled every connection does a full handshake, but
	// the second handshake over the same chain hits the memo.
	c := cache.New(cache.Options{TicketLifetimeSeconds: cache.TicketsDisabled})
	env := warmEnv()
	b := New(PolicyChromium, WithCache(c))

	first := b.Request(env, "www.example.com")
	second := b.Request(env, "static.example.com")
	if first.ResumedTLS || second.ResumedTLS {
		t.Fatal("tickets are disabled; nothing may resume")
	}
	if first.CertMemoHit || !second.CertMemoHit {
		t.Fatalf("memo: first=%+v second=%+v, want hit only on repeat chain", first, second)
	}
	if b.TotalValidations != 1 || b.TotalCertMemoHits != 1 {
		t.Fatalf("validations=%d memoHits=%d, want 1/1", b.TotalValidations, b.TotalCertMemoHits)
	}
}

func TestNegativeCacheShortCircuitsRetries(t *testing.T) {
	c := cache.New(cache.Options{})
	env := &failingEnv{fakeEnv: fakeEnv{answers: map[string][]netip.Addr{}}}
	env.dnsFailures = 10
	b := New(PolicyFirefox, WithRetries(1, 100), WithCache(c))

	first := b.Request(env, "down.example")
	if first.Err == nil || first.DNSQueries != 2 {
		t.Fatalf("cold failure: %+v, want 2 attempts (1 retry)", first)
	}
	wireQueries := env.lookups

	second := b.Request(env, "down.example")
	if !errors.Is(second.Err, ErrNegativeCache) {
		t.Fatalf("err = %v, want ErrNegativeCache", second.Err)
	}
	if !second.NegCacheHit || second.DNSQueries != 0 || second.Retries != 0 {
		t.Fatalf("warm failure: %+v, want instant negative-cache answer", second)
	}
	if env.lookups != wireQueries {
		t.Fatal("negative-cache hit must not touch the wire")
	}
}

func TestCachelessBrowserUnchanged(t *testing.T) {
	// Without a cache the TTLLookuper path must not be taken and no
	// warm-path accounting may move.
	env := warmEnv()
	b := New(PolicyFirefox)
	b.Request(env, "www.example.com")
	b.Request(env, "www.example.com")
	if env.ttlLookups != 0 {
		t.Fatalf("ttlLookups = %d, cacheless browser must call Lookup", env.ttlLookups)
	}
	if b.TotalDNSCacheHits != 0 || b.TotalResumed != 0 || b.TotalCertMemoHits != 0 {
		t.Fatal("warm-path totals moved without a cache")
	}
	if b.TotalValidations != 1 {
		t.Fatalf("TotalValidations = %d, want 1 (one new connection)", b.TotalValidations)
	}
}
