package browser

import (
	"net/netip"
	"testing"
)

func ip(s string) netip.Addr { return netip.MustParseAddr(s) }

// fakeEnv is a scriptable Environment.
type fakeEnv struct {
	answers   map[string][]netip.Addr
	sans      map[string][]string // keyed by SNI host
	origins   map[string][]string // keyed by SNI host
	reachable map[string]bool     // "host@ip" -> reachable; default true
	lookups   int
}

func (f *fakeEnv) Lookup(host string) ([]netip.Addr, error) {
	f.lookups++
	return f.answers[host], nil
}
func (f *fakeEnv) CertSANs(host string, ip netip.Addr) []string { return f.sans[host] }
func (f *fakeEnv) OriginSet(host string, ip netip.Addr) []string {
	return f.origins[host]
}
func (f *fakeEnv) Reachable(host string, addr netip.Addr) bool {
	if f.reachable == nil {
		return true
	}
	v, ok := f.reachable[host+"@"+addr.String()]
	if !ok {
		return true
	}
	return v
}

// twoHostEnv: www and static share a server; DNS returns overlapping
// but not identical sets, the §2.3 transitivity example.
func twoHostEnv() *fakeEnv {
	ipA, ipB, ipC := ip("192.0.2.1"), ip("192.0.2.2"), ip("192.0.2.3")
	return &fakeEnv{
		answers: map[string][]netip.Addr{
			"www.example.com":    {ipA, ipB},
			"static.example.com": {ipB, ipC},
		},
		sans: map[string][]string{
			"www.example.com":    {"www.example.com", "static.example.com"},
			"static.example.com": {"www.example.com", "static.example.com"},
		},
	}
}

func TestChromiumLosesTransitivity(t *testing.T) {
	// Paper §2.3: Chromium keeps only IP_A; the subresource answer
	// {IP_B, IP_C} has no overlap with {IP_A}, so a new connection is
	// opened despite the shared server.
	b := New(PolicyChromium)
	env := twoHostEnv()
	first := b.Request(env, "www.example.com")
	if !first.NewConnection {
		t.Fatal("first request must connect")
	}
	second := b.Request(env, "static.example.com")
	if second.Reused || !second.NewConnection {
		t.Errorf("chromium reused across transitive sets: %+v", second)
	}
	if b.TotalNewConn != 2 {
		t.Errorf("connections = %d", b.TotalNewConn)
	}
}

func TestFirefoxUsesTransitivity(t *testing.T) {
	// Firefox cached {IP_A, IP_B}; answer {IP_B, IP_C} overlaps at IP_B
	// and the certificate covers the host, so the connection is reused.
	b := New(PolicyFirefox)
	env := twoHostEnv()
	b.Request(env, "www.example.com")
	second := b.Request(env, "static.example.com")
	if !second.Reused {
		t.Errorf("firefox did not coalesce: %+v", second)
	}
	if b.TotalNewConn != 1 {
		t.Errorf("connections = %d", b.TotalNewConn)
	}
	// DNS was still queried for both requests.
	if b.TotalDNS != 2 {
		t.Errorf("dns queries = %d", b.TotalDNS)
	}
}

func TestChromiumExactIPMatchCoalesces(t *testing.T) {
	ipA := ip("192.0.2.1")
	env := &fakeEnv{
		answers: map[string][]netip.Addr{
			"www.example.com": {ipA},
			"img.example.com": {ipA},
		},
		sans: map[string][]string{
			"www.example.com": {"www.example.com", "img.example.com"},
		},
	}
	b := New(PolicyChromium)
	b.Request(env, "www.example.com")
	second := b.Request(env, "img.example.com")
	if !second.Reused {
		t.Errorf("chromium must reuse on exact IP match: %+v", second)
	}
}

func TestCertificateMustCoverHost(t *testing.T) {
	// Same IP, but the cert does not list the subresource host: no reuse
	// regardless of policy.
	ipA := ip("192.0.2.1")
	for _, pol := range []Policy{PolicyChromium, PolicyFirefox, PolicyFirefoxOrigin} {
		env := &fakeEnv{
			answers: map[string][]netip.Addr{
				"www.example.com":   {ipA},
				"other.example.com": {ipA},
			},
			sans: map[string][]string{
				"www.example.com":   {"www.example.com"},
				"other.example.com": {"other.example.com"},
			},
		}
		b := New(pol)
		b.Request(env, "www.example.com")
		second := b.Request(env, "other.example.com")
		if second.Reused {
			t.Errorf("%v reused without SAN coverage", pol)
		}
	}
}

func TestWildcardSANCoverage(t *testing.T) {
	ipA := ip("192.0.2.1")
	env := &fakeEnv{
		answers: map[string][]netip.Addr{
			"www.example.com": {ipA},
			"img.example.com": {ipA},
			"a.b.example.com": {ipA},
			"wwwexample.com":  {ipA},
		},
		sans: map[string][]string{
			"www.example.com": {"*.example.com"},
		},
	}
	b := New(PolicyFirefox)
	b.Request(env, "www.example.com")
	if out := b.Request(env, "img.example.com"); !out.Reused {
		t.Error("wildcard did not cover sibling label")
	}
	if out := b.Request(env, "a.b.example.com"); out.Reused {
		t.Error("wildcard covered two labels")
	}
	if out := b.Request(env, "wwwexample.com"); out.Reused {
		t.Error("wildcard covered apex-like host")
	}
}

func originEnv() *fakeEnv {
	// www and thirdparty share a CDN server but have DISJOINT address
	// sets (different traffic engineering, the §5.3 deployment shape).
	ipA, ipB := ip("203.0.113.1"), ip("203.0.113.99")
	return &fakeEnv{
		answers: map[string][]netip.Addr{
			"www.example.com":     {ipA},
			"third.cdnshared.com": {ipB},
		},
		sans: map[string][]string{
			"www.example.com":     {"www.example.com", "third.cdnshared.com"},
			"third.cdnshared.com": {"third.cdnshared.com"},
		},
		origins: map[string][]string{
			"www.example.com": {"third.cdnshared.com"},
		},
	}
}

func TestOriginFrameEnablesCoalescingAcrossIPs(t *testing.T) {
	env := originEnv()

	// Without ORIGIN support no policy can coalesce (disjoint IPs).
	for _, pol := range []Policy{PolicyChromium, PolicyFirefox} {
		b := New(pol)
		b.Request(env, "www.example.com")
		if out := b.Request(env, "third.cdnshared.com"); out.Reused {
			t.Errorf("%v coalesced across disjoint IPs without ORIGIN", pol)
		}
	}

	b := New(PolicyFirefoxOrigin)
	b.Request(env, "www.example.com")
	out := b.Request(env, "third.cdnshared.com")
	if !out.Reused || !out.ViaOrigin {
		t.Errorf("origin coalescing failed: %+v", out)
	}
	if b.TotalNewConn != 1 {
		t.Errorf("connections = %d", b.TotalNewConn)
	}
}

func TestFirefoxStillQueriesDNSForOriginHits(t *testing.T) {
	// §6.8: shipped Firefox issues a blocking DNS query even when the
	// ORIGIN frame (plus cert) already authorizes the connection.
	env := originEnv()
	b := New(PolicyFirefoxOrigin)
	b.Request(env, "www.example.com")
	out := b.Request(env, "third.cdnshared.com")
	if !out.Reused {
		t.Fatal("expected origin reuse")
	}
	if out.DNSQueries != 1 {
		t.Errorf("dns queries on origin hit = %d, want 1 (conservative Firefox)", out.DNSQueries)
	}

	// The recommended client skips that query.
	b2 := New(PolicyFirefoxOrigin)
	b2.SkipOriginDNS = true
	b2.Request(env, "www.example.com")
	out2 := b2.Request(env, "third.cdnshared.com")
	if !out2.Reused || out2.DNSQueries != 0 {
		t.Errorf("ideal client outcome: %+v", out2)
	}
}

func TestOriginWithoutSANDoesNotCoalesce(t *testing.T) {
	// RFC 8336 §2.4: origin-set membership alone is insufficient; the
	// certificate must cover the name.
	env := originEnv()
	env.sans["www.example.com"] = []string{"www.example.com"} // drop third-party SAN
	b := New(PolicyFirefoxOrigin)
	b.Request(env, "www.example.com")
	out := b.Request(env, "third.cdnshared.com")
	if out.Reused {
		t.Errorf("coalesced on origin set without SAN coverage: %+v", out)
	}
}

func Test421FallbackOpensNewConnection(t *testing.T) {
	env := twoHostEnv()
	env.reachable = map[string]bool{
		"static.example.com@192.0.2.1": false, // reuse target bounces
	}
	b := New(PolicyFirefox)
	b.Request(env, "www.example.com")
	out := b.Request(env, "static.example.com")
	if !out.Got421 {
		t.Errorf("no 421 recorded: %+v", out)
	}
	if !out.NewConnection {
		t.Error("client did not fail open with a new connection")
	}
	if b.Total421 != 1 || b.TotalNewConn != 2 {
		t.Errorf("totals: %+v", b)
	}
}

func TestOrigin421FailOpen(t *testing.T) {
	// A misconfigured origin set (unreachable name) must fail open.
	env := originEnv()
	env.reachable = map[string]bool{
		"third.cdnshared.com@203.0.113.1": false,
	}
	b := New(PolicyFirefoxOrigin)
	b.Request(env, "www.example.com")
	out := b.Request(env, "third.cdnshared.com")
	if out.Reused {
		t.Error("reused unreachable origin")
	}
	if !out.Got421 || !out.NewConnection {
		t.Errorf("did not fail open: %+v", out)
	}
}

func TestResetClearsPool(t *testing.T) {
	env := twoHostEnv()
	b := New(PolicyFirefox)
	b.Request(env, "www.example.com")
	b.Reset()
	if len(b.Conns()) != 0 || b.TotalNewConn != 0 {
		t.Error("reset incomplete")
	}
	out := b.Request(env, "static.example.com")
	if !out.NewConnection {
		t.Error("fresh session reused phantom connection")
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyChromium.String() != "chromium" ||
		PolicyFirefox.String() != "firefox" ||
		PolicyFirefoxOrigin.String() != "firefox+origin" ||
		Policy(99).String() != "unknown" {
		t.Error("policy strings wrong")
	}
}

func TestEmptyDNSAnswer(t *testing.T) {
	env := &fakeEnv{answers: map[string][]netip.Addr{}}
	b := New(PolicyChromium)
	out := b.Request(env, "missing.example.com")
	if out.NewConnection || out.Reused {
		t.Errorf("request succeeded without DNS: %+v", out)
	}
}
