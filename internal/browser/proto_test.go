package browser

import (
	"testing"

	"respectorigin/internal/cache"
)

// Warm state minted under one protocol must not warm another: an h2
// visit's session ticket never produces an h3 resumption (let alone a
// 0-RTT one), and an h3 visit's ticket and address token never warm a
// later h2 client. Fresh browsers share one cache, the returning-
// visitor setup.
func TestH2TicketDoesNotProduceH3ZeroRTT(t *testing.T) {
	cc := cache.New(cache.Options{})

	h2 := New(PolicyFirefoxOrigin)
	h2.Cache = cc
	if out := h2.Request(twoHostEnv(), "www.example.com"); !out.NewConnection || out.ResumedTLS {
		t.Fatalf("h2 cold visit: %+v", out)
	}

	// Returning visitor speaks h3: the h2 ticket must not match, so the
	// first h3 connection is a full handshake with address validation.
	h3 := New(PolicyFirefoxOrigin, WithProtocol(ProtoH3))
	h3.Cache = cc
	out := h3.Request(twoHostEnv(), "www.example.com")
	if !out.NewConnection {
		t.Fatalf("h3 visit reused a connection: %+v", out)
	}
	if out.ResumedTLS {
		t.Fatal("h2 ticket produced an h3 resumption")
	}
	if out.ZeroRTT || out.AddrTokenHit {
		t.Fatalf("h2 warm state produced h3 0-RTT state: %+v", out)
	}

	// A second h3 visitor finds the h3 ticket and token the first one
	// minted: resumed with a token hit is exactly 0-RTT.
	h3b := New(PolicyFirefoxOrigin, WithProtocol(ProtoH3))
	h3b.Cache = cc
	out = h3b.Request(twoHostEnv(), "www.example.com")
	if !out.ResumedTLS || !out.AddrTokenHit || !out.ZeroRTT {
		t.Fatalf("h3 revisit not 0-RTT: %+v", out)
	}

	// The reverse direction, against a cache holding only h3 state
	// (the shared cache above still carries the first visit's live h2
	// ticket, which would legitimately resume): an h3 visit's ticket
	// and token warm no h2 client.
	cc3 := cache.New(cache.Options{})
	h3c := New(PolicyFirefoxOrigin, WithProtocol(ProtoH3))
	h3c.Cache = cc3
	if out := h3c.Request(twoHostEnv(), "www.example.com"); !out.NewConnection {
		t.Fatalf("h3 cold visit: %+v", out)
	}
	h2b := New(PolicyFirefoxOrigin)
	h2b.Cache = cc3
	out = h2b.Request(twoHostEnv(), "www.example.com")
	if out.ResumedTLS {
		t.Fatal("h3 ticket produced an h2 resumption")
	}
	if out.ZeroRTT || out.AddrTokenHit {
		t.Fatalf("h2 outcome carries h3 fields: %+v", out)
	}
}
