// Package sched implements HTTP/2 stream prioritization (RFC 7540
// §5.3): the dependency tree with weighted bandwidth allocation, and a
// delivery simulator that quantifies the paper's §6.1 argument — on a
// single coalesced connection the server controls delivery order, while
// resources split across parallel connections arrive in an order set by
// network effects, violating the page's intended priorities.
package sched

import (
	"fmt"
	"sort"
)

// Tree is an RFC 7540 §5.3 stream dependency tree. Stream 0 is the
// implicit root. The zero value is not usable; call NewTree.
type Tree struct {
	nodes map[uint32]*node
}

type node struct {
	id       uint32
	parent   *node
	children []*node
	weight   uint8 // RFC value 1..256 stored as weight+1 on the wire; here actual-1
	active   bool  // has data to send
}

// NewTree returns a tree containing only the root (stream 0).
func NewTree() *Tree {
	root := &node{id: 0, weight: 15}
	return &Tree{nodes: map[uint32]*node{0: root}}
}

// Add inserts a stream depending on parent with the given weight
// (1..256). When exclusive, the new stream adopts the parent's previous
// children (RFC 7540 §5.3.1).
func (t *Tree) Add(id, parent uint32, weight int, exclusive bool) error {
	if _, ok := t.nodes[id]; ok {
		return fmt.Errorf("sched: stream %d already exists", id)
	}
	if weight < 1 || weight > 256 {
		return fmt.Errorf("sched: weight %d out of range", weight)
	}
	p, ok := t.nodes[parent]
	if !ok {
		// RFC 9113 deprecates priorities; an unknown parent defaults to
		// the root rather than erroring.
		p = t.nodes[0]
	}
	n := &node{id: id, parent: p, weight: uint8(weight - 1), active: true}
	if exclusive {
		for _, c := range p.children {
			c.parent = n
		}
		n.children = p.children
		p.children = nil
	}
	p.children = append(p.children, n)
	t.nodes[id] = n
	return nil
}

// Reprioritize moves a stream under a new parent (RFC 7540 §5.3.3).
// If the new parent is a descendant of the stream, the parent is first
// moved up to the stream's current parent.
func (t *Tree) Reprioritize(id, parent uint32, weight int, exclusive bool) error {
	n, ok := t.nodes[id]
	if !ok || id == 0 {
		return fmt.Errorf("sched: unknown stream %d", id)
	}
	if weight < 1 || weight > 256 {
		return fmt.Errorf("sched: weight %d out of range", weight)
	}
	p, ok := t.nodes[parent]
	if !ok {
		p = t.nodes[0]
	}
	if parent == id {
		return fmt.Errorf("sched: stream %d cannot depend on itself", id)
	}
	// §5.3.3: if the new parent is a descendant of id, move it up first.
	if t.isDescendant(p, n) {
		t.detach(p)
		t.attach(p, n.parent)
	}
	t.detach(n)
	n.weight = uint8(weight - 1)
	if exclusive {
		for _, c := range p.children {
			c.parent = n
		}
		n.children = append(n.children, p.children...)
		p.children = nil
	}
	t.attach(n, p)
	return nil
}

// Remove closes a stream; its children are redistributed to its parent
// (RFC 7540 §5.3.4).
func (t *Tree) Remove(id uint32) {
	n, ok := t.nodes[id]
	if !ok || id == 0 {
		return
	}
	p := n.parent
	t.detach(n)
	for _, c := range n.children {
		c.parent = p
		p.children = append(p.children, c)
	}
	delete(t.nodes, id)
}

// SetActive marks whether a stream currently has data to send.
func (t *Tree) SetActive(id uint32, active bool) {
	if n, ok := t.nodes[id]; ok {
		n.active = active
	}
}

// Len reports the number of streams excluding the root.
func (t *Tree) Len() int { return len(t.nodes) - 1 }

// Parent returns the parent stream ID.
func (t *Tree) Parent(id uint32) (uint32, bool) {
	n, ok := t.nodes[id]
	if !ok || n.parent == nil {
		return 0, false
	}
	return n.parent.id, true
}

func (t *Tree) detach(n *node) {
	p := n.parent
	if p == nil {
		return
	}
	for i, c := range p.children {
		if c == n {
			p.children = append(p.children[:i], p.children[i+1:]...)
			break
		}
	}
	n.parent = nil
}

func (t *Tree) attach(n *node, p *node) {
	n.parent = p
	p.children = append(p.children, n)
}

func (t *Tree) isDescendant(n, ancestor *node) bool {
	for cur := n.parent; cur != nil; cur = cur.parent {
		if cur == ancestor {
			return true
		}
	}
	return false
}

// Allocate distributes an amount of bandwidth over the active streams
// per RFC 7540 semantics: a stream receives resources only when no
// active stream exists on the path between it and the root; siblings
// share in proportion to their weights; an inactive stream passes its
// share down to its children.
func (t *Tree) Allocate(total float64) map[uint32]float64 {
	out := make(map[uint32]float64)
	t.allocate(t.nodes[0], total, out)
	return out
}

func (t *Tree) allocate(n *node, amount float64, out map[uint32]float64) {
	if amount <= 0 {
		return
	}
	if n.id != 0 && n.active {
		out[n.id] += amount
		return
	}
	// Share among children carrying active descendants.
	type share struct {
		c *node
		w float64
	}
	var shares []share
	var totalW float64
	for _, c := range n.children {
		if t.hasActive(c) {
			w := float64(c.weight) + 1
			shares = append(shares, share{c, w})
			totalW += w
		}
	}
	if totalW == 0 {
		return
	}
	// Deterministic order for reproducibility: stream ids are the
	// t.nodes map keys, so every share carries a distinct id and the
	// comparison is a strict total order — the unstable sort has no
	// equal elements to permute, whatever order children were added in.
	sort.Slice(shares, func(i, j int) bool { return shares[i].c.id < shares[j].c.id })
	for _, s := range shares {
		t.allocate(s.c, amount*s.w/totalW, out)
	}
}

func (t *Tree) hasActive(n *node) bool {
	if n.active {
		return true
	}
	for _, c := range n.children {
		if t.hasActive(c) {
			return true
		}
	}
	return false
}
