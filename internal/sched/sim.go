package sched

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Resource is one response body to deliver to the client.
type Resource struct {
	ID uint32
	// Priority orders resources by importance (lower = more critical;
	// e.g. 0 = HTML, 1 = CSS, 2 = sync JS, 3 = fonts, 4 = images).
	Priority int
	// Bytes is the body size.
	Bytes float64
}

// Delivery records when a resource finished arriving.
type Delivery struct {
	ID         uint32
	Priority   int
	CompleteMs float64
}

// Inversions counts priority-order violations: pairs where a
// less-important resource completed before a more-important one.
func Inversions(ds []Delivery) int {
	inv := 0
	for i := 0; i < len(ds); i++ {
		for j := 0; j < len(ds); j++ {
			if ds[i].Priority < ds[j].Priority && ds[i].CompleteMs > ds[j].CompleteMs {
				inv++
			}
		}
	}
	return inv
}

// CriticalCompleteMs returns when the last resource at or below the
// given priority finished — the render-blocking completion time.
func CriticalCompleteMs(ds []Delivery, maxPriority int) float64 {
	t := 0.0
	for _, d := range ds {
		if d.Priority <= maxPriority && d.CompleteMs > t {
			t = d.CompleteMs
		}
	}
	return t
}

// DeliverCoalesced simulates delivery of all resources over one HTTP/2
// connection whose server schedules with a priority tree: resources of
// a more important priority class fully preempt less important ones
// (strict ordering via exclusive dependencies), and resources within a
// class share bandwidth by weight. bandwidthKBps is the connection's
// bottleneck share; the single connection owns the whole bottleneck.
//
// Because one sender controls the ordering, the client receives bytes
// exactly in intended priority order (§6.1: "coalesced resources are
// always received in the ordering intended").
func DeliverCoalesced(resources []Resource, bandwidthKBps float64) []Delivery {
	byPri := map[int][]Resource{}
	var pris []int
	for _, r := range resources {
		if _, ok := byPri[r.Priority]; !ok {
			pris = append(pris, r.Priority)
		}
		byPri[r.Priority] = append(byPri[r.Priority], r)
	}
	sort.Ints(pris)
	now := 0.0
	var out []Delivery
	for _, pri := range pris {
		group := byPri[pri]
		// Within a class, equal weights: round-robin means all finish
		// together at the group transfer time, except that smaller
		// resources finish proportionally earlier. Model exact weighted
		// fair sharing: resources finish in order of size; when one
		// finishes, the rest share its bandwidth.
		remaining := append([]Resource(nil), group...)
		// Key by (Bytes, ID): sort.Slice is not stable, so equal-size
		// resources would otherwise complete in implementation-defined
		// order that varies with the input permutation.
		sort.Slice(remaining, func(i, j int) bool {
			if remaining[i].Bytes != remaining[j].Bytes {
				return remaining[i].Bytes < remaining[j].Bytes
			}
			return remaining[i].ID < remaining[j].ID
		})
		left := make([]float64, len(remaining))
		for i, r := range remaining {
			left[i] = r.Bytes
		}
		done := 0
		for done < len(remaining) {
			active := len(remaining) - done
			// The smallest remaining finishes first under fair sharing.
			idx := done
			v := left[idx]
			dt := v * float64(active) / bandwidthKBps
			for i := done; i < len(remaining); i++ {
				left[i] -= v
			}
			now += dt
			out = append(out, Delivery{ID: remaining[idx].ID, Priority: pri, CompleteMs: now})
			done++
		}
	}
	return out
}

// ParallelParams configures DeliverParallel.
type ParallelParams struct {
	// Connections is the number of competing connections the resources
	// are spread over (one per sharded hostname).
	Connections int
	// BandwidthKBps is the shared bottleneck capacity.
	BandwidthKBps float64
	// HandshakeMs staggers each connection's start (TCP+TLS setup).
	HandshakeMs float64
	// HandshakeJitterMs randomizes per-connection start.
	HandshakeJitterMs float64
	// SlowStartPenalty multiplies early transfer time on each
	// connection (congestion-window ramp); 1 = none.
	SlowStartPenalty float64
	Seed             int64
}

// DeliverParallel simulates the sharded status quo: resources are
// assigned round-robin to independent connections that compete for the
// bottleneck. Each connection delivers its own queue in order, but the
// client has no cross-connection ordering control: arrival order is set
// by connection start times, queue lengths, and bandwidth competition.
func DeliverParallel(resources []Resource, p ParallelParams) []Delivery {
	if p.Connections < 1 {
		p.Connections = 1
	}
	if p.SlowStartPenalty < 1 {
		p.SlowStartPenalty = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	queues := make([][]Resource, p.Connections)
	// Requests are issued in priority order, but hostname sharding
	// scatters them across connections.
	ordered := append([]Resource(nil), resources...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Priority < ordered[j].Priority })
	for i, r := range ordered {
		c := i % p.Connections
		queues[c] = append(queues[c], r)
	}
	perConn := p.BandwidthKBps / float64(p.Connections)
	var out []Delivery
	for c, q := range queues {
		now := p.HandshakeMs + rng.Float64()*p.HandshakeJitterMs
		first := true
		for _, r := range q {
			rate := perConn
			if first {
				rate = perConn / p.SlowStartPenalty
				first = false
			}
			now += r.Bytes / rate
			out = append(out, Delivery{ID: r.ID, Priority: r.Priority, CompleteMs: now})
		}
		_ = c
	}
	// Key by (CompleteMs, ID): simultaneous completions (equal queue
	// shapes across connections) must not land in implementation-defined
	// order.
	sort.Slice(out, func(i, j int) bool {
		if out[i].CompleteMs != out[j].CompleteMs {
			return out[i].CompleteMs < out[j].CompleteMs
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Comparison summarizes coalesced vs parallel delivery of one workload.
type Comparison struct {
	CoalescedInversions int
	ParallelInversions  int
	CoalescedCriticalMs float64
	ParallelCriticalMs  float64
}

// Compare runs both disciplines over the same workload.
func Compare(resources []Resource, p ParallelParams) Comparison {
	co := DeliverCoalesced(resources, p.BandwidthKBps)
	pa := DeliverParallel(resources, p)
	return Comparison{
		CoalescedInversions: Inversions(co),
		ParallelInversions:  Inversions(pa),
		CoalescedCriticalMs: CriticalCompleteMs(co, 2),
		ParallelCriticalMs:  CriticalCompleteMs(pa, 2),
	}
}

// Report renders a comparison.
func (c Comparison) Report() string {
	var sb strings.Builder
	sb.WriteString("Scheduling comparison (§6.1):\n")
	fmt.Fprintf(&sb, "  priority inversions:       coalesced %d, parallel %d\n",
		c.CoalescedInversions, c.ParallelInversions)
	fmt.Fprintf(&sb, "  critical-path completion:  coalesced %.0f ms, parallel %.0f ms\n",
		c.CoalescedCriticalMs, c.ParallelCriticalMs)
	return sb.String()
}
