package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTreeAddAndAllocate(t *testing.T) {
	tr := NewTree()
	if err := tr.Add(1, 0, 64, false); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(3, 0, 192, false); err != nil {
		t.Fatal(err)
	}
	alloc := tr.Allocate(400)
	if math.Abs(alloc[1]-100) > 1e-9 || math.Abs(alloc[3]-300) > 1e-9 {
		t.Errorf("alloc = %v, want 100/300 split", alloc)
	}
}

func TestTreeWeightRange(t *testing.T) {
	tr := NewTree()
	if err := tr.Add(1, 0, 0, false); err == nil {
		t.Error("weight 0 accepted")
	}
	if err := tr.Add(1, 0, 257, false); err == nil {
		t.Error("weight 257 accepted")
	}
	if err := tr.Add(1, 0, 256, false); err != nil {
		t.Errorf("weight 256 rejected: %v", err)
	}
	if err := tr.Add(1, 0, 1, false); err == nil {
		t.Error("duplicate stream accepted")
	}
}

func TestDependencyBlocksChild(t *testing.T) {
	tr := NewTree()
	tr.Add(1, 0, 16, false)
	tr.Add(3, 1, 16, false) // 3 depends on 1
	alloc := tr.Allocate(100)
	if alloc[3] != 0 {
		t.Errorf("child received %v while parent active", alloc[3])
	}
	if alloc[1] != 100 {
		t.Errorf("parent alloc = %v", alloc[1])
	}
	// Once the parent has nothing to send, the child inherits.
	tr.SetActive(1, false)
	alloc = tr.Allocate(100)
	if alloc[3] != 100 {
		t.Errorf("idle parent did not pass through: %v", alloc)
	}
}

func TestExclusiveInsertionAdoptsSiblings(t *testing.T) {
	// RFC 7540 §5.3.1 example: A with children B, C; new exclusive D
	// under A adopts B and C.
	tr := NewTree()
	tr.Add(1, 0, 16, false) // A
	tr.Add(3, 1, 16, false) // B
	tr.Add(5, 1, 16, false) // C
	tr.Add(7, 1, 16, true)  // D exclusive under A
	if p, _ := tr.Parent(3); p != 7 {
		t.Errorf("B's parent = %d, want 7", p)
	}
	if p, _ := tr.Parent(5); p != 7 {
		t.Errorf("C's parent = %d, want 7", p)
	}
	if p, _ := tr.Parent(7); p != 1 {
		t.Errorf("D's parent = %d, want 1", p)
	}
}

func TestReprioritizeUnderDescendant(t *testing.T) {
	// §5.3.3: moving A under its own descendant D first moves D up.
	tr := NewTree()
	tr.Add(1, 0, 16, false) // A
	tr.Add(3, 1, 16, false) // B under A
	tr.Add(5, 3, 16, false) // D under B
	if err := tr.Reprioritize(1, 5, 16, false); err != nil {
		t.Fatal(err)
	}
	if p, _ := tr.Parent(5); p != 0 {
		t.Errorf("descendant not moved up: parent = %d", p)
	}
	if p, _ := tr.Parent(1); p != 5 {
		t.Errorf("stream not under new parent: %d", p)
	}
}

func TestReprioritizeSelfRejected(t *testing.T) {
	tr := NewTree()
	tr.Add(1, 0, 16, false)
	if err := tr.Reprioritize(1, 1, 16, false); err == nil {
		t.Error("self-dependency accepted")
	}
}

func TestRemoveRedistributesChildren(t *testing.T) {
	tr := NewTree()
	tr.Add(1, 0, 16, false)
	tr.Add(3, 1, 16, false)
	tr.Add(5, 1, 16, false)
	tr.Remove(1)
	if p, _ := tr.Parent(3); p != 0 {
		t.Errorf("orphan parent = %d", p)
	}
	if tr.Len() != 2 {
		t.Errorf("len = %d", tr.Len())
	}
	alloc := tr.Allocate(100)
	if math.Abs(alloc[3]-50) > 1e-9 || math.Abs(alloc[5]-50) > 1e-9 {
		t.Errorf("alloc after removal = %v", alloc)
	}
}

func TestUnknownParentDefaultsToRoot(t *testing.T) {
	tr := NewTree()
	if err := tr.Add(9, 7777, 16, false); err != nil {
		t.Fatal(err)
	}
	if p, _ := tr.Parent(9); p != 0 {
		t.Errorf("parent = %d, want root", p)
	}
}

func TestAllocationConservationQuick(t *testing.T) {
	f := func(weights []uint8) bool {
		tr := NewTree()
		n := 0
		for i, w := range weights {
			if n == 20 {
				break
			}
			if err := tr.Add(uint32(2*i+1), 0, int(w)%256+1, false); err != nil {
				return false
			}
			n++
		}
		if n == 0 {
			return true
		}
		alloc := tr.Allocate(1000)
		sum := 0.0
		for _, v := range alloc {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1000) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// --- delivery simulation ---

func pageWorkload() []Resource {
	return []Resource{
		{ID: 1, Priority: 0, Bytes: 30_000},   // HTML
		{ID: 3, Priority: 1, Bytes: 20_000},   // CSS
		{ID: 5, Priority: 1, Bytes: 15_000},   // CSS
		{ID: 7, Priority: 2, Bytes: 60_000},   // sync JS
		{ID: 9, Priority: 3, Bytes: 40_000},   // font
		{ID: 11, Priority: 4, Bytes: 200_000}, // hero image
		{ID: 13, Priority: 4, Bytes: 150_000}, // image
		{ID: 15, Priority: 4, Bytes: 90_000},  // image
	}
}

func TestCoalescedDeliveryHasNoInversions(t *testing.T) {
	ds := DeliverCoalesced(pageWorkload(), 1000)
	if inv := Inversions(ds); inv != 0 {
		t.Errorf("coalesced inversions = %d (§6.1 says intended order always holds)", inv)
	}
	// All bytes delivered: last completion = total bytes / bandwidth.
	total := 0.0
	for _, r := range pageWorkload() {
		total += r.Bytes
	}
	last := 0.0
	for _, d := range ds {
		if d.CompleteMs > last {
			last = d.CompleteMs
		}
	}
	if math.Abs(last-total/1000) > 1e-6 {
		t.Errorf("last completion %v, want %v", last, total/1000)
	}
}

func TestParallelDeliveryInvertsPriorities(t *testing.T) {
	p := ParallelParams{
		Connections:       6,
		BandwidthKBps:     1000,
		HandshakeMs:       100,
		HandshakeJitterMs: 120,
		SlowStartPenalty:  2,
		Seed:              3,
	}
	ds := DeliverParallel(pageWorkload(), p)
	if inv := Inversions(ds); inv == 0 {
		t.Error("parallel delivery produced perfect ordering; network effects should reorder")
	}
}

func TestCompareFavorsCoalescedOrdering(t *testing.T) {
	cmp := Compare(pageWorkload(), ParallelParams{
		Connections:       6,
		BandwidthKBps:     1000,
		HandshakeMs:       100,
		HandshakeJitterMs: 120,
		SlowStartPenalty:  2,
		Seed:              7,
	})
	if cmp.CoalescedInversions != 0 {
		t.Errorf("coalesced inversions = %d", cmp.CoalescedInversions)
	}
	if cmp.ParallelInversions <= cmp.CoalescedInversions {
		t.Error("parallel did not invert more than coalesced")
	}
	// Critical resources (priority ≤ 2) finish earlier when the single
	// connection dedicates full bandwidth to them first.
	if cmp.CoalescedCriticalMs >= cmp.ParallelCriticalMs {
		t.Errorf("critical path: coalesced %.0f >= parallel %.0f",
			cmp.CoalescedCriticalMs, cmp.ParallelCriticalMs)
	}
	if cmp.Report() == "" {
		t.Error("empty report")
	}
}

// permute returns a deterministic permutation of rs keyed by k.
func permute(rs []Resource, k int) []Resource {
	out := append([]Resource(nil), rs...)
	rng := rand.New(rand.NewSource(int64(k)))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func deliveryOrder(ds []Delivery) []uint32 {
	ids := make([]uint32, len(ds))
	for i, d := range ds {
		ids[i] = d.ID
	}
	return ids
}

// TestCoalescedEqualSizeTieOrder is the regression test for the
// non-stable sort.Slice on Bytes alone: equal-size resources in one
// priority class completed in implementation-defined order that varied
// with the input permutation. The sort is now keyed by (Bytes, ID), so
// every permutation of the same workload must deliver identically.
func TestCoalescedEqualSizeTieOrder(t *testing.T) {
	ties := []Resource{
		{ID: 9, Priority: 2, Bytes: 50_000},
		{ID: 1, Priority: 2, Bytes: 50_000},
		{ID: 5, Priority: 2, Bytes: 50_000},
		{ID: 3, Priority: 2, Bytes: 50_000},
		{ID: 7, Priority: 2, Bytes: 25_000},
	}
	want := deliveryOrder(DeliverCoalesced(ties, 1000))
	// The smaller resource finishes first; ties then complete in ID order.
	wantIDs := []uint32{7, 1, 3, 5, 9}
	for i, id := range wantIDs {
		if want[i] != id {
			t.Fatalf("delivery order %v, want %v", want, wantIDs)
		}
	}
	for k := 0; k < 20; k++ {
		got := deliveryOrder(DeliverCoalesced(permute(ties, k), 1000))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("permutation %d delivered %v, want %v (tie order depends on input order)", k, got, want)
			}
		}
	}
}

// TestParallelCompleteMsTieOrder audits DeliverParallel's output sort
// the same way: two connections with identical queues complete their
// resources at identical instants, and the final sort must order those
// ties by ID rather than leaving them in implementation-defined order.
// (Queue assignment itself is round-robin over request order, so the
// input permutation legitimately changes which connection a resource
// rides — only the tie ordering in the sorted output is pinned here.)
func TestParallelCompleteMsTieOrder(t *testing.T) {
	// Request order 8,6,4,2 over 2 symmetric connections: queues are
	// [8,4] and [6,2], so 8 and 6 complete together at t1, then 4 and 2
	// at t2. The (CompleteMs, ID) key must yield 6,8,2,4 exactly.
	rs := []Resource{
		{ID: 8, Priority: 1, Bytes: 40_000},
		{ID: 6, Priority: 1, Bytes: 40_000},
		{ID: 4, Priority: 1, Bytes: 40_000},
		{ID: 2, Priority: 1, Bytes: 40_000},
	}
	p := ParallelParams{Connections: 2, BandwidthKBps: 1000, SlowStartPenalty: 1}
	ds := DeliverParallel(rs, p)
	if ds[0].CompleteMs != ds[1].CompleteMs || ds[2].CompleteMs != ds[3].CompleteMs {
		t.Fatalf("workload did not produce the intended completion ties: %+v", ds)
	}
	got := deliveryOrder(ds)
	want := []uint32{6, 8, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery order %v, want %v (CompleteMs ties not keyed by ID)", got, want)
		}
	}
}

// TestCoalescedByteConservationQuick is the byte-conservation property:
// under strict priority preemption, the last completion within each
// priority class equals the cumulative bytes of all classes up to and
// including it divided by the bandwidth — no bytes are lost, duplicated,
// or delivered out of class order.
func TestCoalescedByteConservationQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		const bw = 1250.0
		rs := make([]Resource, n)
		for i := range rs {
			rs[i] = Resource{
				ID:       uint32(i + 1),
				Priority: rng.Intn(5),
				Bytes:    float64(1 + rng.Intn(100_000)),
			}
		}
		ds := DeliverCoalesced(rs, bw)
		if len(ds) != n {
			return false
		}
		if Inversions(ds) != 0 {
			return false
		}
		// Cumulative bytes per ascending priority class.
		cum := 0.0
		for pri := 0; pri <= 4; pri++ {
			classBytes, classLast, present := 0.0, 0.0, false
			for i, r := range rs {
				if r.Priority == pri {
					classBytes += r.Bytes
					present = true
					_ = i
				}
			}
			if !present {
				continue
			}
			cum += classBytes
			for _, d := range ds {
				if d.Priority == pri && d.CompleteMs > classLast {
					classLast = d.CompleteMs
				}
			}
			if math.Abs(classLast-cum/bw) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDeliverParallelSingleConnDegeneratesToCoalesced(t *testing.T) {
	// One connection with no handicaps delivers in priority order.
	ds := DeliverParallel(pageWorkload(), ParallelParams{
		Connections: 1, BandwidthKBps: 1000, SlowStartPenalty: 1,
	})
	if inv := Inversions(ds); inv != 0 {
		t.Errorf("single parallel connection inverted %d pairs", inv)
	}
}
