package sched

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTreeAddAndAllocate(t *testing.T) {
	tr := NewTree()
	if err := tr.Add(1, 0, 64, false); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(3, 0, 192, false); err != nil {
		t.Fatal(err)
	}
	alloc := tr.Allocate(400)
	if math.Abs(alloc[1]-100) > 1e-9 || math.Abs(alloc[3]-300) > 1e-9 {
		t.Errorf("alloc = %v, want 100/300 split", alloc)
	}
}

func TestTreeWeightRange(t *testing.T) {
	tr := NewTree()
	if err := tr.Add(1, 0, 0, false); err == nil {
		t.Error("weight 0 accepted")
	}
	if err := tr.Add(1, 0, 257, false); err == nil {
		t.Error("weight 257 accepted")
	}
	if err := tr.Add(1, 0, 256, false); err != nil {
		t.Errorf("weight 256 rejected: %v", err)
	}
	if err := tr.Add(1, 0, 1, false); err == nil {
		t.Error("duplicate stream accepted")
	}
}

func TestDependencyBlocksChild(t *testing.T) {
	tr := NewTree()
	tr.Add(1, 0, 16, false)
	tr.Add(3, 1, 16, false) // 3 depends on 1
	alloc := tr.Allocate(100)
	if alloc[3] != 0 {
		t.Errorf("child received %v while parent active", alloc[3])
	}
	if alloc[1] != 100 {
		t.Errorf("parent alloc = %v", alloc[1])
	}
	// Once the parent has nothing to send, the child inherits.
	tr.SetActive(1, false)
	alloc = tr.Allocate(100)
	if alloc[3] != 100 {
		t.Errorf("idle parent did not pass through: %v", alloc)
	}
}

func TestExclusiveInsertionAdoptsSiblings(t *testing.T) {
	// RFC 7540 §5.3.1 example: A with children B, C; new exclusive D
	// under A adopts B and C.
	tr := NewTree()
	tr.Add(1, 0, 16, false) // A
	tr.Add(3, 1, 16, false) // B
	tr.Add(5, 1, 16, false) // C
	tr.Add(7, 1, 16, true)  // D exclusive under A
	if p, _ := tr.Parent(3); p != 7 {
		t.Errorf("B's parent = %d, want 7", p)
	}
	if p, _ := tr.Parent(5); p != 7 {
		t.Errorf("C's parent = %d, want 7", p)
	}
	if p, _ := tr.Parent(7); p != 1 {
		t.Errorf("D's parent = %d, want 1", p)
	}
}

func TestReprioritizeUnderDescendant(t *testing.T) {
	// §5.3.3: moving A under its own descendant D first moves D up.
	tr := NewTree()
	tr.Add(1, 0, 16, false) // A
	tr.Add(3, 1, 16, false) // B under A
	tr.Add(5, 3, 16, false) // D under B
	if err := tr.Reprioritize(1, 5, 16, false); err != nil {
		t.Fatal(err)
	}
	if p, _ := tr.Parent(5); p != 0 {
		t.Errorf("descendant not moved up: parent = %d", p)
	}
	if p, _ := tr.Parent(1); p != 5 {
		t.Errorf("stream not under new parent: %d", p)
	}
}

func TestReprioritizeSelfRejected(t *testing.T) {
	tr := NewTree()
	tr.Add(1, 0, 16, false)
	if err := tr.Reprioritize(1, 1, 16, false); err == nil {
		t.Error("self-dependency accepted")
	}
}

func TestRemoveRedistributesChildren(t *testing.T) {
	tr := NewTree()
	tr.Add(1, 0, 16, false)
	tr.Add(3, 1, 16, false)
	tr.Add(5, 1, 16, false)
	tr.Remove(1)
	if p, _ := tr.Parent(3); p != 0 {
		t.Errorf("orphan parent = %d", p)
	}
	if tr.Len() != 2 {
		t.Errorf("len = %d", tr.Len())
	}
	alloc := tr.Allocate(100)
	if math.Abs(alloc[3]-50) > 1e-9 || math.Abs(alloc[5]-50) > 1e-9 {
		t.Errorf("alloc after removal = %v", alloc)
	}
}

func TestUnknownParentDefaultsToRoot(t *testing.T) {
	tr := NewTree()
	if err := tr.Add(9, 7777, 16, false); err != nil {
		t.Fatal(err)
	}
	if p, _ := tr.Parent(9); p != 0 {
		t.Errorf("parent = %d, want root", p)
	}
}

func TestAllocationConservationQuick(t *testing.T) {
	f := func(weights []uint8) bool {
		tr := NewTree()
		n := 0
		for i, w := range weights {
			if n == 20 {
				break
			}
			if err := tr.Add(uint32(2*i+1), 0, int(w)%256+1, false); err != nil {
				return false
			}
			n++
		}
		if n == 0 {
			return true
		}
		alloc := tr.Allocate(1000)
		sum := 0.0
		for _, v := range alloc {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1000) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// --- delivery simulation ---

func pageWorkload() []Resource {
	return []Resource{
		{ID: 1, Priority: 0, Bytes: 30_000},   // HTML
		{ID: 3, Priority: 1, Bytes: 20_000},   // CSS
		{ID: 5, Priority: 1, Bytes: 15_000},   // CSS
		{ID: 7, Priority: 2, Bytes: 60_000},   // sync JS
		{ID: 9, Priority: 3, Bytes: 40_000},   // font
		{ID: 11, Priority: 4, Bytes: 200_000}, // hero image
		{ID: 13, Priority: 4, Bytes: 150_000}, // image
		{ID: 15, Priority: 4, Bytes: 90_000},  // image
	}
}

func TestCoalescedDeliveryHasNoInversions(t *testing.T) {
	ds := DeliverCoalesced(pageWorkload(), 1000)
	if inv := Inversions(ds); inv != 0 {
		t.Errorf("coalesced inversions = %d (§6.1 says intended order always holds)", inv)
	}
	// All bytes delivered: last completion = total bytes / bandwidth.
	total := 0.0
	for _, r := range pageWorkload() {
		total += r.Bytes
	}
	last := 0.0
	for _, d := range ds {
		if d.CompleteMs > last {
			last = d.CompleteMs
		}
	}
	if math.Abs(last-total/1000) > 1e-6 {
		t.Errorf("last completion %v, want %v", last, total/1000)
	}
}

func TestParallelDeliveryInvertsPriorities(t *testing.T) {
	p := ParallelParams{
		Connections:       6,
		BandwidthKBps:     1000,
		HandshakeMs:       100,
		HandshakeJitterMs: 120,
		SlowStartPenalty:  2,
		Seed:              3,
	}
	ds := DeliverParallel(pageWorkload(), p)
	if inv := Inversions(ds); inv == 0 {
		t.Error("parallel delivery produced perfect ordering; network effects should reorder")
	}
}

func TestCompareFavorsCoalescedOrdering(t *testing.T) {
	cmp := Compare(pageWorkload(), ParallelParams{
		Connections:       6,
		BandwidthKBps:     1000,
		HandshakeMs:       100,
		HandshakeJitterMs: 120,
		SlowStartPenalty:  2,
		Seed:              7,
	})
	if cmp.CoalescedInversions != 0 {
		t.Errorf("coalesced inversions = %d", cmp.CoalescedInversions)
	}
	if cmp.ParallelInversions <= cmp.CoalescedInversions {
		t.Error("parallel did not invert more than coalesced")
	}
	// Critical resources (priority ≤ 2) finish earlier when the single
	// connection dedicates full bandwidth to them first.
	if cmp.CoalescedCriticalMs >= cmp.ParallelCriticalMs {
		t.Errorf("critical path: coalesced %.0f >= parallel %.0f",
			cmp.CoalescedCriticalMs, cmp.ParallelCriticalMs)
	}
	if cmp.Report() == "" {
		t.Error("empty report")
	}
}

func TestDeliverParallelSingleConnDegeneratesToCoalesced(t *testing.T) {
	// One connection with no handicaps delivers in priority order.
	ds := DeliverParallel(pageWorkload(), ParallelParams{
		Connections: 1, BandwidthKBps: 1000, SlowStartPenalty: 1,
	})
	if inv := Inversions(ds); inv != 0 {
		t.Errorf("single parallel connection inverted %d pairs", inv)
	}
}
