package sched

import (
	"math/rand"
	"reflect"
	"testing"
)

// Allocation must be a pure function of the tree's shape, not of the
// order streams were added: allocate sorts sibling shares by stream id,
// which is unique (the nodes map key), so the unstable sort is total.
func TestAllocateInsertionOrderInvariant(t *testing.T) {
	type add struct {
		id, parent uint32
		weight     int
	}
	adds := []add{
		{1, 0, 16}, {3, 0, 16}, {5, 0, 16}, // equal-weight siblings
		{7, 1, 32}, {9, 1, 32},             // equal-weight subtree
		{11, 3, 8},
	}
	build := func(order []int) map[uint32]float64 {
		tr := NewTree()
		for _, i := range order {
			a := adds[i]
			if err := tr.Add(a.id, a.parent, a.weight, false); err != nil {
				t.Fatal(err)
			}
		}
		// Leave interior stream 1 inactive so its weight passes down to
		// its equal-weight children — the tie the sort must not reorder.
		tr.SetActive(1, false)
		return tr.Allocate(9600)
	}
	// The dependency constraint (parents before children) leaves several
	// legal insertion orders; all must allocate identically.
	want := build([]int{0, 1, 2, 3, 4, 5})
	for _, order := range [][]int{
		{2, 1, 0, 5, 3, 4},
		{1, 5, 0, 2, 4, 3},
	} {
		if got := build(order); !reflect.DeepEqual(got, want) {
			t.Errorf("Allocate depends on insertion order %v: got %v, want %v", order, got, want)
		}
	}
}

// DeliverCoalesced keys its fair-sharing walk by (Bytes, ID), so
// permuting the input — including resources with identical sizes and
// priorities — must not change a single delivery record.
func TestDeliverCoalescedPermutationInvariant(t *testing.T) {
	base := []Resource{
		{ID: 1, Priority: 0, Bytes: 40},
		{ID: 3, Priority: 1, Bytes: 100},
		{ID: 5, Priority: 1, Bytes: 100}, // ties with 3 and 7
		{ID: 7, Priority: 1, Bytes: 100},
		{ID: 9, Priority: 2, Bytes: 60},
		{ID: 11, Priority: 2, Bytes: 60}, // ties with 9
	}
	want := DeliverCoalesced(base, 1000)
	rs := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		perm := make([]Resource, len(base))
		for i, j := range rs.Perm(len(base)) {
			perm[i] = base[j]
		}
		if got := DeliverCoalesced(perm, 1000); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: delivery depends on input order: got %v, want %v", trial, got, want)
		}
	}
}
