package dns

import (
	"net/netip"
	"strings"
	"testing"
)

// TestAuthorityFailureHook verifies the fault-injection hook: a SERVFAIL
// decision surfaces through the full wire path as a resolver error, and
// a success decision resolves normally — with the authority's query
// counter advancing either way.
func TestAuthorityFailureHook(t *testing.T) {
	auth := NewAuthority()
	auth.AddA("www.example.com", netip.MustParseAddr("192.0.2.1"))

	fail := true
	auth.Failure = func(name string, typ uint16) uint8 {
		if fail && strings.HasPrefix(name, "www.") {
			return RcodeServerFailure
		}
		return RcodeSuccess
	}

	r := NewResolver(auth)
	if _, err := r.LookupA("www.example.com"); err == nil {
		t.Fatal("lookup succeeded despite SERVFAIL hook")
	}
	if auth.Queries() != 1 {
		t.Fatalf("queries = %d, want 1 (failures still count)", auth.Queries())
	}

	fail = false
	addrs, err := r.LookupA("www.example.com")
	if err != nil || len(addrs) != 1 {
		t.Fatalf("lookup after hook cleared: addrs=%v err=%v", addrs, err)
	}

	// NXDOMAIN semantics are untouched by an installed hook.
	if _, err := r.LookupA("missing.example.com"); err == nil {
		t.Fatal("NXDOMAIN lookup succeeded")
	}
}
