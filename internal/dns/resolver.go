package dns

import (
	"fmt"
	"net/netip"
	"sync"

	"respectorigin/internal/cache"
	"respectorigin/internal/obs"
)

// Source reports where a lookup's answer came from.
type Source string

// Answer sources.
const (
	// SourceAuthority: the answer came off the wire from the upstream
	// authority (a real query was issued).
	SourceAuthority Source = "authority"
	// SourceCache: the answer was served from the warm-path DNS cache;
	// no query left the resolver.
	SourceCache Source = "cache"
	// SourceNegativeCache: a cached failure was served; no query left
	// the resolver and the lookup failed immediately.
	SourceNegativeCache Source = "negative-cache"
)

// LookupResult is the unified return of Resolver.Lookup: the answer's
// address set in answer order, the minimum TTL across its address
// records (the budget a cache may keep it for), and where it came from.
type LookupResult struct {
	Addrs  []netip.Addr
	TTL    uint32
	Source Source
}

// A Resolver is a stub resolver over an Authority. It speaks real wire
// format (queries are packed and responses unpacked, exercising the
// codec on every lookup), counts every query it issues, consults the
// warm-path cache before the wire when one is installed, and keeps the
// per-name answer sets that the Firefox coalescing policy caches.
type Resolver struct {
	upstream *Authority

	mu      sync.Mutex
	nextID  uint16
	queries int64
	rec     obs.Recorder
	cache   *cache.Cache
	// lastAnswers records the most recent address set per hostname, in
	// answer order. Browser policies read this to build connected-sets
	// and available-sets (§2.3).
	lastAnswers map[string][]netip.Addr
}

// NewResolver returns a stub resolver querying upstream.
func NewResolver(upstream *Authority) *Resolver {
	return &Resolver{upstream: upstream, nextID: 1, lastAnswers: make(map[string][]netip.Addr)}
}

// SetRecorder installs an observability recorder counting the stub
// resolver's queries and failures ("dns.resolver.*"); nil disables.
func (r *Resolver) SetRecorder(rec obs.Recorder) {
	r.mu.Lock()
	r.rec = rec
	r.mu.Unlock()
}

// UseCache installs a warm-path cache consulted before the authority on
// every lookup; nil (the default) disables caching and restores the
// query-always behaviour byte for byte.
func (r *Resolver) UseCache(c *cache.Cache) {
	r.mu.Lock()
	r.cache = c
	r.mu.Unlock()
}

// Queries reports how many DNS queries this resolver has sent. Lookups
// served from cache issue none.
func (r *Resolver) Queries() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queries
}

// ResetQueries zeroes the query counter (between measurement trials).
func (r *Resolver) ResetQueries() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queries = 0
}

// LookupA resolves a hostname to its IPv4 address set via the wire
// codec, following CNAMEs.
func (r *Resolver) LookupA(name string) ([]netip.Addr, error) {
	res, err := r.Lookup(name, TypeA)
	return res.Addrs, err
}

// LookupAAAA resolves a hostname to its IPv6 address set.
func (r *Resolver) LookupAAAA(name string) ([]netip.Addr, error) {
	res, err := r.Lookup(name, TypeAAAA)
	return res.Addrs, err
}

// Lookup is the unified resolver surface: it resolves (name, type)
// through the cache when one is installed and the authority otherwise,
// returning the address set, its remaining TTL budget, and the source
// that served it. Cache hits — positive and negative — issue no wire
// query and are counted under "dns.resolver.cache_hits"; misses fall
// through to the authority and populate the cache with the answer's
// minimum TTL (zero-TTL answers are uncacheable), or a negative entry
// on NXDOMAIN.
func (r *Resolver) Lookup(name string, typ uint16) (LookupResult, error) {
	r.mu.Lock()
	rec, c := r.rec, r.cache
	r.mu.Unlock()

	if c != nil {
		if addrs, negative, ok := c.DNS.Get(name, typ, c.Clock().NowMs()); ok {
			obs.Count(rec, "dns.resolver.cache_hits", 1)
			if negative {
				return LookupResult{Source: SourceNegativeCache}, &NXDomainError{Name: name}
			}
			return LookupResult{Addrs: addrs, Source: SourceCache}, nil
		}
		obs.Count(rec, "dns.resolver.cache_misses", 1)
	}

	res, err := r.lookupWire(name, typ, rec)
	if c == nil {
		return res, err
	}
	switch {
	case err == nil && len(res.Addrs) > 0:
		c.DNS.Put(name, typ, res.Addrs, res.TTL, c.Clock().NowMs())
	case err != nil:
		if _, nx := err.(*NXDomainError); nx {
			c.DNS.PutNegative(name, typ, uint32(c.Opts().NegativeTTLSeconds), c.Clock().NowMs())
		}
	}
	return res, err
}

// lookupWire issues one wire-format query to the authority.
func (r *Resolver) lookupWire(name string, typ uint16, rec obs.Recorder) (LookupResult, error) {
	r.mu.Lock()
	id := r.nextID
	r.nextID++
	r.queries++
	r.mu.Unlock()
	obs.Count(rec, "dns.resolver.queries", 1)

	q := &Message{
		Header:    Header{ID: id, RD: true},
		Questions: []Question{{Name: name, Type: typ, Class: ClassINET}},
	}
	wire, err := q.Pack()
	if err != nil {
		return LookupResult{}, err
	}
	respWire, err := r.upstream.HandleWire(wire)
	if err != nil {
		return LookupResult{}, err
	}
	resp, err := Unpack(respWire)
	if err != nil {
		return LookupResult{}, err
	}
	if resp.Header.ID != id {
		return LookupResult{}, fmt.Errorf("dns: response ID %d for query %d", resp.Header.ID, id)
	}
	if resp.Header.Rcode == RcodeNameError {
		obs.Count(rec, "dns.resolver.nxdomain", 1)
		return LookupResult{Source: SourceAuthority}, &NXDomainError{Name: name}
	}
	if resp.Header.Rcode != RcodeSuccess {
		obs.Count(rec, "dns.resolver.failures", 1)
		return LookupResult{Source: SourceAuthority}, fmt.Errorf("dns: rcode %d for %s", resp.Header.Rcode, name)
	}
	res := LookupResult{Source: SourceAuthority}
	for _, rr := range resp.Answers {
		if rr.Type == typ {
			res.Addrs = append(res.Addrs, rr.Addr)
			if res.TTL == 0 || rr.TTL < res.TTL {
				res.TTL = rr.TTL
			}
		}
	}
	if len(res.Addrs) > 0 {
		r.mu.Lock()
		r.lastAnswers[canonicalName(name)] = res.Addrs
		r.mu.Unlock()
	}
	return res, nil
}

// LastAnswer returns the most recently observed address set for name.
func (r *Resolver) LastAnswer(name string) []netip.Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]netip.Addr(nil), r.lastAnswers[canonicalName(name)]...)
}

// NXDomainError reports a name that does not exist.
type NXDomainError struct{ Name string }

func (e *NXDomainError) Error() string { return "dns: NXDOMAIN for " + e.Name }
