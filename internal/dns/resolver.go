package dns

import (
	"fmt"
	"net/netip"
	"sync"

	"respectorigin/internal/obs"
)

// A Resolver is a stub resolver over an Authority. It speaks real wire
// format (queries are packed and responses unpacked, exercising the
// codec on every lookup), counts every query it issues, and keeps the
// per-name answer sets that the Firefox coalescing policy caches.
type Resolver struct {
	upstream *Authority

	mu      sync.Mutex
	nextID  uint16
	queries int64
	rec     obs.Recorder
	// lastAnswers records the most recent address set per hostname, in
	// answer order. Browser policies read this to build connected-sets
	// and available-sets (§2.3).
	lastAnswers map[string][]netip.Addr
}

// NewResolver returns a stub resolver querying upstream.
func NewResolver(upstream *Authority) *Resolver {
	return &Resolver{upstream: upstream, nextID: 1, lastAnswers: make(map[string][]netip.Addr)}
}

// SetRecorder installs an observability recorder counting the stub
// resolver's queries and failures ("dns.resolver.*"); nil disables.
func (r *Resolver) SetRecorder(rec obs.Recorder) {
	r.mu.Lock()
	r.rec = rec
	r.mu.Unlock()
}

// Queries reports how many DNS queries this resolver has sent.
func (r *Resolver) Queries() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queries
}

// ResetQueries zeroes the query counter (between measurement trials).
func (r *Resolver) ResetQueries() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queries = 0
}

// LookupA resolves a hostname to its IPv4 address set via the wire
// codec, following CNAMEs.
func (r *Resolver) LookupA(name string) ([]netip.Addr, error) {
	return r.lookup(name, TypeA)
}

// LookupAAAA resolves a hostname to its IPv6 address set.
func (r *Resolver) LookupAAAA(name string) ([]netip.Addr, error) {
	return r.lookup(name, TypeAAAA)
}

func (r *Resolver) lookup(name string, typ uint16) ([]netip.Addr, error) {
	r.mu.Lock()
	id := r.nextID
	r.nextID++
	r.queries++
	rec := r.rec
	r.mu.Unlock()
	obs.Count(rec, "dns.resolver.queries", 1)

	q := &Message{
		Header:    Header{ID: id, RD: true},
		Questions: []Question{{Name: name, Type: typ, Class: ClassINET}},
	}
	wire, err := q.Pack()
	if err != nil {
		return nil, err
	}
	respWire, err := r.upstream.HandleWire(wire)
	if err != nil {
		return nil, err
	}
	resp, err := Unpack(respWire)
	if err != nil {
		return nil, err
	}
	if resp.Header.ID != id {
		return nil, fmt.Errorf("dns: response ID %d for query %d", resp.Header.ID, id)
	}
	if resp.Header.Rcode == RcodeNameError {
		obs.Count(rec, "dns.resolver.nxdomain", 1)
		return nil, &NXDomainError{Name: name}
	}
	if resp.Header.Rcode != RcodeSuccess {
		obs.Count(rec, "dns.resolver.failures", 1)
		return nil, fmt.Errorf("dns: rcode %d for %s", resp.Header.Rcode, name)
	}
	var addrs []netip.Addr
	for _, rr := range resp.Answers {
		if rr.Type == typ {
			addrs = append(addrs, rr.Addr)
		}
	}
	if len(addrs) > 0 {
		r.mu.Lock()
		r.lastAnswers[canonicalName(name)] = addrs
		r.mu.Unlock()
	}
	return addrs, nil
}

// LastAnswer returns the most recently observed address set for name.
func (r *Resolver) LastAnswer(name string) []netip.Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]netip.Addr(nil), r.lastAnswers[canonicalName(name)]...)
}

// NXDomainError reports a name that does not exist.
type NXDomainError struct{ Name string }

func (e *NXDomainError) Error() string { return "dns: NXDOMAIN for " + e.Name }
