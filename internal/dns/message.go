// Package dns is a DNS substrate: an RFC 1035 wire-format codec with
// name compression, an in-process authoritative server, and a stub
// resolver that counts queries and models the answer-set rotation that
// DNS load balancing performs in production.
//
// The paper's browser coalescing policies (§2.3) hinge on exactly which
// IP addresses a DNS answer returns and in what order; this package
// makes those mechanics explicit and testable.
package dns

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Record types.
const (
	TypeA     uint16 = 1
	TypeNS    uint16 = 2
	TypeCNAME uint16 = 5
	TypeSOA   uint16 = 6
	TypeTXT   uint16 = 16
	TypeAAAA  uint16 = 28
)

// Classes.
const ClassINET uint16 = 1

// Response codes.
const (
	RcodeSuccess        = 0
	RcodeFormatError    = 1
	RcodeServerFailure  = 2
	RcodeNameError      = 3 // NXDOMAIN
	RcodeNotImplemented = 4
	RcodeRefused        = 5
)

// Codec errors.
var (
	ErrTruncatedMessage = errors.New("dns: truncated message")
	ErrBadPointer       = errors.New("dns: bad compression pointer")
	ErrNameTooLong      = errors.New("dns: name exceeds 255 octets")
	ErrLabelTooLong     = errors.New("dns: label exceeds 63 octets")
)

// Header is the fixed 12-byte DNS message header.
type Header struct {
	ID      uint16
	QR      bool // response flag
	Opcode  uint8
	AA      bool // authoritative answer
	TC      bool // truncated
	RD      bool // recursion desired
	RA      bool // recursion available
	Rcode   uint8
	QDCount uint16
	ANCount uint16
	NSCount uint16
	ARCount uint16
}

// Question is a DNS question section entry.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// RR is a DNS resource record. Addr is used for A/AAAA records, Target
// for CNAME/NS, Text for TXT.
type RR struct {
	Name   string
	Type   uint16
	Class  uint16
	TTL    uint32
	Addr   netip.Addr
	Target string
	Text   string
}

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// nameOffsets tracks domain-name positions for compression pointers.
type nameOffsets map[string]int

// appendName appends name in wire format with RFC 1035 §4.1.4
// compression against previously written names.
func appendName(dst []byte, name string, offs nameOffsets) ([]byte, error) {
	name = canonicalName(name)
	if name == "." {
		return append(dst, 0), nil
	}
	if len(name) > 255 {
		return nil, ErrNameTooLong
	}
	labels := strings.Split(strings.TrimSuffix(name, "."), ".")
	for i := range labels {
		suffix := strings.Join(labels[i:], ".") + "."
		if off, ok := offs[suffix]; ok && off < 0x3fff {
			return binary.BigEndian.AppendUint16(dst, 0xc000|uint16(off)), nil
		}
		if len(dst) < 0x3fff {
			offs[suffix] = len(dst)
		}
		l := labels[i]
		if len(l) > 63 {
			return nil, ErrLabelTooLong
		}
		if l == "" {
			return nil, fmt.Errorf("dns: empty label in %q", name)
		}
		dst = append(dst, byte(len(l)))
		dst = append(dst, l...)
	}
	return append(dst, 0), nil
}

// readName decodes a possibly compressed name starting at off,
// returning the name and the offset just past it.
func readName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	jumped := false
	after := -1
	hops := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncatedMessage
		}
		b := msg[off]
		switch {
		case b == 0:
			if !jumped {
				after = off + 1
			}
			name := sb.String()
			if name == "" {
				name = "."
			}
			return name, after, nil
		case b&0xc0 == 0xc0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			ptr := int(binary.BigEndian.Uint16(msg[off:off+2]) & 0x3fff)
			if !jumped {
				after = off + 2
			}
			if ptr >= off && !jumped || ptr >= len(msg) {
				return "", 0, ErrBadPointer
			}
			hops++
			if hops > 32 {
				return "", 0, ErrBadPointer
			}
			off = ptr
			jumped = true
		case b&0xc0 != 0:
			return "", 0, fmt.Errorf("dns: unsupported label type 0x%x", b&0xc0)
		default:
			n := int(b)
			if off+1+n > len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			sb.Write(msg[off+1 : off+1+n])
			sb.WriteByte('.')
			off += 1 + n
			if sb.Len() > 256 {
				return "", 0, ErrNameTooLong
			}
		}
	}
}

// Pack serializes the message.
func (m *Message) Pack() ([]byte, error) {
	h := m.Header
	h.QDCount = uint16(len(m.Questions))
	h.ANCount = uint16(len(m.Answers))
	h.NSCount = uint16(len(m.Authority))
	h.ARCount = uint16(len(m.Additional))

	buf := make([]byte, 0, 512)
	buf = binary.BigEndian.AppendUint16(buf, h.ID)
	var flags uint16
	if h.QR {
		flags |= 1 << 15
	}
	flags |= uint16(h.Opcode&0xf) << 11
	if h.AA {
		flags |= 1 << 10
	}
	if h.TC {
		flags |= 1 << 9
	}
	if h.RD {
		flags |= 1 << 8
	}
	if h.RA {
		flags |= 1 << 7
	}
	flags |= uint16(h.Rcode & 0xf)
	buf = binary.BigEndian.AppendUint16(buf, flags)
	buf = binary.BigEndian.AppendUint16(buf, h.QDCount)
	buf = binary.BigEndian.AppendUint16(buf, h.ANCount)
	buf = binary.BigEndian.AppendUint16(buf, h.NSCount)
	buf = binary.BigEndian.AppendUint16(buf, h.ARCount)

	offs := nameOffsets{}
	var err error
	for _, q := range m.Questions {
		if buf, err = appendName(buf, q.Name, offs); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, q.Type)
		buf = binary.BigEndian.AppendUint16(buf, q.Class)
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			if buf, err = appendRR(buf, rr, offs); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

func appendRR(buf []byte, rr RR, offs nameOffsets) ([]byte, error) {
	var err error
	if buf, err = appendName(buf, rr.Name, offs); err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, rr.Type)
	cl := rr.Class
	if cl == 0 {
		cl = ClassINET
	}
	buf = binary.BigEndian.AppendUint16(buf, cl)
	buf = binary.BigEndian.AppendUint32(buf, rr.TTL)

	rdlenAt := len(buf)
	buf = append(buf, 0, 0) // placeholder
	switch rr.Type {
	case TypeA:
		if !rr.Addr.Is4() {
			return nil, fmt.Errorf("dns: A record %s with non-IPv4 address %v", rr.Name, rr.Addr)
		}
		a := rr.Addr.As4()
		buf = append(buf, a[:]...)
	case TypeAAAA:
		if !rr.Addr.Is6() || rr.Addr.Is4In6() {
			return nil, fmt.Errorf("dns: AAAA record %s with non-IPv6 address %v", rr.Name, rr.Addr)
		}
		a := rr.Addr.As16()
		buf = append(buf, a[:]...)
	case TypeCNAME, TypeNS:
		if buf, err = appendName(buf, rr.Target, offs); err != nil {
			return nil, err
		}
	case TypeTXT:
		if len(rr.Text) > 255 {
			return nil, fmt.Errorf("dns: TXT segment too long")
		}
		buf = append(buf, byte(len(rr.Text)))
		buf = append(buf, rr.Text...)
	default:
		return nil, fmt.Errorf("dns: cannot pack record type %d", rr.Type)
	}
	binary.BigEndian.PutUint16(buf[rdlenAt:], uint16(len(buf)-rdlenAt-2))
	return buf, nil
}

// Unpack parses a wire-format message.
func Unpack(msg []byte) (*Message, error) {
	if len(msg) < 12 {
		return nil, ErrTruncatedMessage
	}
	var m Message
	m.Header.ID = binary.BigEndian.Uint16(msg[0:2])
	flags := binary.BigEndian.Uint16(msg[2:4])
	m.Header.QR = flags>>15&1 == 1
	m.Header.Opcode = uint8(flags >> 11 & 0xf)
	m.Header.AA = flags>>10&1 == 1
	m.Header.TC = flags>>9&1 == 1
	m.Header.RD = flags>>8&1 == 1
	m.Header.RA = flags>>7&1 == 1
	m.Header.Rcode = uint8(flags & 0xf)
	m.Header.QDCount = binary.BigEndian.Uint16(msg[4:6])
	m.Header.ANCount = binary.BigEndian.Uint16(msg[6:8])
	m.Header.NSCount = binary.BigEndian.Uint16(msg[8:10])
	m.Header.ARCount = binary.BigEndian.Uint16(msg[10:12])

	off := 12
	var err error
	for i := 0; i < int(m.Header.QDCount); i++ {
		var q Question
		q.Name, off, err = readName(msg, off)
		if err != nil {
			return nil, err
		}
		if off+4 > len(msg) {
			return nil, ErrTruncatedMessage
		}
		q.Type = binary.BigEndian.Uint16(msg[off : off+2])
		q.Class = binary.BigEndian.Uint16(msg[off+2 : off+4])
		off += 4
		m.Questions = append(m.Questions, q)
	}
	for _, sec := range []*[]RR{&m.Answers, &m.Authority, &m.Additional} {
		var count uint16
		switch sec {
		case &m.Answers:
			count = m.Header.ANCount
		case &m.Authority:
			count = m.Header.NSCount
		default:
			count = m.Header.ARCount
		}
		for i := 0; i < int(count); i++ {
			var rr RR
			rr, off, err = readRR(msg, off)
			if err != nil {
				return nil, err
			}
			*sec = append(*sec, rr)
		}
	}
	return &m, nil
}

func readRR(msg []byte, off int) (RR, int, error) {
	var rr RR
	var err error
	rr.Name, off, err = readName(msg, off)
	if err != nil {
		return rr, 0, err
	}
	if off+10 > len(msg) {
		return rr, 0, ErrTruncatedMessage
	}
	rr.Type = binary.BigEndian.Uint16(msg[off : off+2])
	rr.Class = binary.BigEndian.Uint16(msg[off+2 : off+4])
	rr.TTL = binary.BigEndian.Uint32(msg[off+4 : off+8])
	rdlen := int(binary.BigEndian.Uint16(msg[off+8 : off+10]))
	off += 10
	if off+rdlen > len(msg) {
		return rr, 0, ErrTruncatedMessage
	}
	rdata := msg[off : off+rdlen]
	switch rr.Type {
	case TypeA:
		if rdlen != 4 {
			return rr, 0, fmt.Errorf("dns: A rdata length %d", rdlen)
		}
		rr.Addr = netip.AddrFrom4([4]byte(rdata))
	case TypeAAAA:
		if rdlen != 16 {
			return rr, 0, fmt.Errorf("dns: AAAA rdata length %d", rdlen)
		}
		rr.Addr = netip.AddrFrom16([16]byte(rdata))
	case TypeCNAME, TypeNS:
		rr.Target, _, err = readName(msg, off)
		if err != nil {
			return rr, 0, err
		}
	case TypeTXT:
		if rdlen > 0 {
			n := int(rdata[0])
			if n+1 > rdlen {
				return rr, 0, ErrTruncatedMessage
			}
			rr.Text = string(rdata[1 : 1+n])
		}
	}
	return rr, off + rdlen, nil
}

// canonicalName lowercases and ensures a trailing dot.
func canonicalName(name string) string {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" || name == "." {
		return "."
	}
	if !strings.HasSuffix(name, ".") {
		name += "."
	}
	return name
}
