package dns

import (
	"net/netip"
	"sync"

	"respectorigin/internal/obs"
)

// An Authority is an in-process authoritative DNS server over wire-format
// messages. Zones map owner names to record sets; A/AAAA answers rotate
// round-robin per query when rotation is enabled, modelling the DNS
// load balancing of RFC 1794 that the paper's §2.3 identifies as the
// reason IP-based coalescing breaks.
type Authority struct {
	mu      sync.Mutex
	records map[string][]RR // canonical name -> records
	rotate  int             // global rotation cursor (LB VIP pool)
	// Rotation enables per-query round-robin of address answers.
	Rotation bool
	// AnswerLimit caps returned address records per answer (0 = all).
	AnswerLimit int

	// Failure, when non-nil, is consulted per question before resolution
	// and may force a non-success rcode (e.g. RcodeServerFailure for an
	// injected SERVFAIL). Returning RcodeSuccess resolves normally. Fault
	// injection installs it; it must be deterministic for reproducible
	// runs.
	Failure func(name string, typ uint16) uint8

	// rec, when set, receives per-query counters ("dns.authority.*").
	// Observation only: it never alters resolution or answer bytes.
	rec obs.Recorder

	queries int64
}

// NewAuthority returns an empty authoritative server.
func NewAuthority() *Authority {
	return &Authority{
		records: make(map[string][]RR),
	}
}

// AddA registers IPv4 addresses for a name.
func (a *Authority) AddA(name string, addrs ...netip.Addr) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := canonicalName(name)
	for _, ip := range addrs {
		a.records[n] = append(a.records[n], RR{Name: n, Type: TypeA, Class: ClassINET, TTL: 300, Addr: ip})
	}
}

// AddAAAA registers IPv6 addresses for a name.
func (a *Authority) AddAAAA(name string, addrs ...netip.Addr) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := canonicalName(name)
	for _, ip := range addrs {
		a.records[n] = append(a.records[n], RR{Name: n, Type: TypeAAAA, Class: ClassINET, TTL: 300, Addr: ip})
	}
}

// AddCNAME registers an alias.
func (a *Authority) AddCNAME(name, target string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := canonicalName(name)
	a.records[n] = append(a.records[n], RR{Name: n, Type: TypeCNAME, Class: ClassINET, TTL: 300, Target: canonicalName(target)})
}

// SetA replaces all A records for a name; used by deployments that move
// hostnames between addresses (the paper's §5.2 single-IP alignment and
// its §5.3 rollback).
func (a *Authority) SetA(name string, addrs ...netip.Addr) {
	a.mu.Lock()
	n := canonicalName(name)
	var kept []RR
	for _, rr := range a.records[n] {
		if rr.Type != TypeA {
			kept = append(kept, rr)
		}
	}
	a.records[n] = kept
	a.mu.Unlock()
	a.AddA(name, addrs...)
}

// SetRecorder installs an observability recorder on the authority. A
// nil recorder (the default) disables instrumentation.
func (a *Authority) SetRecorder(rec obs.Recorder) {
	a.mu.Lock()
	a.rec = rec
	a.mu.Unlock()
}

// Queries reports how many queries this authority has answered.
func (a *Authority) Queries() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queries
}

// HandleWire answers a wire-format query with a wire-format response.
func (a *Authority) HandleWire(query []byte) ([]byte, error) {
	q, err := Unpack(query)
	if err != nil {
		resp := &Message{Header: Header{QR: true, Rcode: RcodeFormatError}}
		return resp.Pack()
	}
	resp := a.Handle(q)
	return resp.Pack()
}

// Handle answers a parsed query.
func (a *Authority) Handle(q *Message) *Message {
	a.mu.Lock()
	a.queries++
	rec := a.rec
	a.mu.Unlock()
	obs.Count(rec, "dns.authority.queries", 1)

	resp := &Message{Header: Header{
		ID: q.Header.ID, QR: true, AA: true, RD: q.Header.RD, RA: false,
	}}
	resp.Questions = q.Questions
	if len(q.Questions) == 0 {
		resp.Header.Rcode = RcodeFormatError
		return resp
	}
	question := q.Questions[0]
	if a.Failure != nil {
		if rcode := a.Failure(question.Name, question.Type); rcode != RcodeSuccess {
			resp.Header.AA = false
			resp.Header.Rcode = rcode
			obs.Count(rec, "dns.authority.injected_failures", 1)
			return resp
		}
	}
	answers, found := a.resolve(question.Name, question.Type, 0)
	if !found {
		resp.Header.Rcode = RcodeNameError
		obs.Count(rec, "dns.authority.nxdomain", 1)
		return resp
	}
	resp.Answers = answers
	return resp
}

// resolve follows CNAME chains up to depth 8 and applies rotation.
func (a *Authority) resolve(name string, typ uint16, depth int) ([]RR, bool) {
	if depth > 8 {
		return nil, false
	}
	a.mu.Lock()
	n := canonicalName(name)
	rrs, ok := a.records[n]
	if !ok {
		a.mu.Unlock()
		return nil, false
	}
	var answers, addrs []RR
	var cname *RR
	for i := range rrs {
		rr := rrs[i]
		switch {
		case rr.Type == typ:
			addrs = append(addrs, rr)
		case rr.Type == TypeCNAME:
			cname = &rr
		}
	}
	if len(addrs) > 0 {
		if a.Rotation && len(addrs) > 1 {
			k := a.rotate % len(addrs)
			a.rotate++
			rotated := make([]RR, 0, len(addrs))
			rotated = append(rotated, addrs[k:]...)
			rotated = append(rotated, addrs[:k]...)
			addrs = rotated
		}
		if a.AnswerLimit > 0 && len(addrs) > a.AnswerLimit {
			addrs = addrs[:a.AnswerLimit]
		}
		answers = append(answers, addrs...)
		a.mu.Unlock()
		return answers, true
	}
	a.mu.Unlock()
	if cname != nil {
		chain, ok := a.resolve(cname.Target, typ, depth+1)
		if !ok {
			// The alias exists even if the target does not resolve.
			return []RR{*cname}, true
		}
		return append([]RR{*cname}, chain...), true
	}
	// Name exists with other record types: NOERROR, empty answer.
	return nil, true
}
