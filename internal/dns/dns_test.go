package dns

import (
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func ip(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestNameRoundTrip(t *testing.T) {
	names := []string{"example.com", "www.example.com.", "a.b.c.d.e.example", "."}
	for _, name := range names {
		offs := nameOffsets{}
		enc, err := appendName(nil, name, offs)
		if err != nil {
			t.Fatalf("appendName(%q): %v", name, err)
		}
		got, next, err := readName(enc, 0)
		if err != nil {
			t.Fatalf("readName(%q): %v", name, err)
		}
		if next != len(enc) {
			t.Errorf("readName(%q) consumed %d of %d", name, next, len(enc))
		}
		if got != canonicalName(name) {
			t.Errorf("round trip %q -> %q", name, got)
		}
	}
}

func TestNameCompression(t *testing.T) {
	offs := nameOffsets{}
	buf, _ := appendName(nil, "www.example.com", offs)
	before := len(buf)
	buf, _ = appendName(buf, "img.example.com", offs)
	// "example.com." must be a 2-byte pointer in the second name.
	if len(buf)-before >= len("img.example.com")+2 {
		t.Errorf("no compression: second name used %d bytes", len(buf)-before)
	}
	got1, next, err := readName(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := readName(buf, next)
	if err != nil {
		t.Fatal(err)
	}
	if got1 != "www.example.com." || got2 != "img.example.com." {
		t.Errorf("decoded %q, %q", got1, got2)
	}
}

func TestNameLimits(t *testing.T) {
	if _, err := appendName(nil, strings.Repeat("a", 64)+".example", nameOffsets{}); err != ErrLabelTooLong {
		t.Errorf("want ErrLabelTooLong, got %v", err)
	}
	long := strings.Repeat("abcdefg.", 40) // > 255 octets
	if _, err := appendName(nil, long, nameOffsets{}); err != ErrNameTooLong {
		t.Errorf("want ErrNameTooLong, got %v", err)
	}
}

func TestBadPointerRejected(t *testing.T) {
	// Self-referential pointer.
	if _, _, err := readName([]byte{0xc0, 0x00}, 0); err == nil {
		t.Error("self-pointer accepted")
	}
	// Pointer past message end.
	if _, _, err := readName([]byte{0xc0, 0x7f}, 0); err == nil {
		t.Error("out-of-range pointer accepted")
	}
}

func TestMessagePackUnpack(t *testing.T) {
	m := &Message{
		Header: Header{ID: 42, RD: true},
		Questions: []Question{
			{Name: "www.example.com", Type: TypeA, Class: ClassINET},
		},
		Answers: []RR{
			{Name: "www.example.com", Type: TypeCNAME, Class: ClassINET, TTL: 60, Target: "edge.cdn.example"},
			{Name: "edge.cdn.example", Type: TypeA, Class: ClassINET, TTL: 60, Addr: ip("192.0.2.1")},
			{Name: "edge.cdn.example", Type: TypeA, Class: ClassINET, TTL: 60, Addr: ip("192.0.2.2")},
			{Name: "edge.cdn.example", Type: TypeAAAA, Class: ClassINET, TTL: 60, Addr: ip("2001:db8::1")},
		},
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.ID != 42 || !got.Header.RD || got.Header.QR {
		t.Errorf("header = %+v", got.Header)
	}
	if len(got.Answers) != 4 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	if got.Answers[0].Target != "edge.cdn.example." {
		t.Errorf("cname target = %q", got.Answers[0].Target)
	}
	if got.Answers[1].Addr != ip("192.0.2.1") || got.Answers[3].Addr != ip("2001:db8::1") {
		t.Errorf("addresses wrong: %+v", got.Answers)
	}
}

func TestMessageRoundTripQuick(t *testing.T) {
	f := func(id uint16, labels [][]byte, a4 [4]byte, a16 [16]byte) bool {
		name := ""
		for _, l := range labels {
			clean := sanitize(l)
			if clean == "" {
				continue
			}
			name += clean + "."
		}
		if name == "" {
			name = "x."
		}
		if len(name) > 200 {
			name = "trim.example."
		}
		m := &Message{
			Header:    Header{ID: id, QR: true, AA: true},
			Questions: []Question{{Name: name, Type: TypeA, Class: ClassINET}},
			Answers: []RR{
				{Name: name, Type: TypeA, Class: ClassINET, TTL: 1, Addr: netip.AddrFrom4(a4)},
				{Name: name, Type: TypeAAAA, Class: ClassINET, TTL: 1, Addr: netip.AddrFrom16(a16)},
			},
		}
		// AddrFrom16 of a v4-mapped prefix yields Is4In6; skip those.
		if m.Answers[1].Addr.Is4In6() {
			return true
		}
		wire, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			return false
		}
		return got.Header.ID == id &&
			len(got.Answers) == 2 &&
			got.Answers[0].Addr == m.Answers[0].Addr &&
			got.Answers[1].Addr == m.Answers[1].Addr &&
			got.Questions[0].Name == canonicalName(name)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sanitize(l []byte) string {
	var b strings.Builder
	for _, c := range l {
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
			b.WriteByte(c)
		}
		if b.Len() == 20 {
			break
		}
	}
	return b.String()
}

func TestTruncatedMessages(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 9},
		Questions: []Question{{Name: "e.com", Type: TypeA, Class: ClassINET}},
		Answers:   []RR{{Name: "e.com", Type: TypeA, Class: ClassINET, TTL: 1, Addr: ip("192.0.2.9")}},
	}
	wire, _ := m.Pack()
	for i := 1; i < len(wire); i++ {
		if _, err := Unpack(wire[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
}

func TestAuthorityBasic(t *testing.T) {
	auth := NewAuthority()
	auth.AddA("www.site.example", ip("192.0.2.10"), ip("192.0.2.11"))
	r := NewResolver(auth)

	addrs, err := r.LookupA("www.site.example")
	if err != nil {
		t.Fatal(err)
	}
	want := []netip.Addr{ip("192.0.2.10"), ip("192.0.2.11")}
	if !reflect.DeepEqual(addrs, want) {
		t.Errorf("addrs = %v", addrs)
	}
	if r.Queries() != 1 || auth.Queries() != 1 {
		t.Errorf("query counters: resolver=%d authority=%d", r.Queries(), auth.Queries())
	}
}

func TestAuthorityNXDomain(t *testing.T) {
	auth := NewAuthority()
	r := NewResolver(auth)
	_, err := r.LookupA("nope.example")
	if _, ok := err.(*NXDomainError); !ok {
		t.Errorf("want NXDomainError, got %v", err)
	}
}

func TestAuthorityCNAMEChain(t *testing.T) {
	auth := NewAuthority()
	auth.AddCNAME("www.site.example", "edge.cdn.example")
	auth.AddA("edge.cdn.example", ip("203.0.113.5"))
	r := NewResolver(auth)
	addrs, err := r.LookupA("www.site.example")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != ip("203.0.113.5") {
		t.Errorf("addrs = %v", addrs)
	}
}

func TestAuthorityCNAMELoopBounded(t *testing.T) {
	auth := NewAuthority()
	auth.AddCNAME("a.example", "b.example")
	auth.AddCNAME("b.example", "a.example")
	r := NewResolver(auth)
	addrs, err := r.LookupA("a.example")
	if err != nil {
		t.Fatalf("loop not handled: %v", err)
	}
	if len(addrs) != 0 {
		t.Errorf("addrs = %v", addrs)
	}
}

func TestRotationModelsLoadBalancing(t *testing.T) {
	auth := NewAuthority()
	auth.Rotation = true
	auth.AddA("lb.example", ip("192.0.2.1"), ip("192.0.2.2"), ip("192.0.2.3"))
	r := NewResolver(auth)

	first, _ := r.LookupA("lb.example")
	second, _ := r.LookupA("lb.example")
	third, _ := r.LookupA("lb.example")
	fourth, _ := r.LookupA("lb.example")
	if first[0] == second[0] && second[0] == third[0] {
		t.Error("rotation did not rotate")
	}
	if !reflect.DeepEqual(first, fourth) {
		t.Errorf("rotation period wrong: %v vs %v", first, fourth)
	}
	// All sets contain the same addresses.
	if len(first) != 3 || len(second) != 3 {
		t.Error("rotation dropped addresses")
	}
}

func TestAnswerLimit(t *testing.T) {
	auth := NewAuthority()
	auth.AnswerLimit = 2
	auth.AddA("many.example", ip("192.0.2.1"), ip("192.0.2.2"), ip("192.0.2.3"), ip("192.0.2.4"))
	r := NewResolver(auth)
	addrs, _ := r.LookupA("many.example")
	if len(addrs) != 2 {
		t.Errorf("got %d answers, want 2", len(addrs))
	}
}

func TestSetAReplacesAddresses(t *testing.T) {
	auth := NewAuthority()
	auth.AddA("move.example", ip("192.0.2.1"))
	auth.SetA("move.example", ip("198.51.100.7"))
	r := NewResolver(auth)
	addrs, _ := r.LookupA("move.example")
	if len(addrs) != 1 || addrs[0] != ip("198.51.100.7") {
		t.Errorf("addrs = %v", addrs)
	}
}

func TestResolverLastAnswerCache(t *testing.T) {
	auth := NewAuthority()
	auth.AddA("cache.example", ip("192.0.2.77"))
	r := NewResolver(auth)
	if got := r.LastAnswer("cache.example"); len(got) != 0 {
		t.Error("cache non-empty before lookup")
	}
	r.LookupA("cache.example")
	got := r.LastAnswer("cache.example")
	if len(got) != 1 || got[0] != ip("192.0.2.77") {
		t.Errorf("cached = %v", got)
	}
}

func TestAAAALookup(t *testing.T) {
	auth := NewAuthority()
	auth.AddAAAA("v6.example", ip("2001:db8::42"))
	r := NewResolver(auth)
	addrs, err := r.LookupAAAA("v6.example")
	if err != nil || len(addrs) != 1 || addrs[0] != ip("2001:db8::42") {
		t.Errorf("v6 = %v, %v", addrs, err)
	}
	// A lookup for the same name yields empty NOERROR.
	a4, err := r.LookupA("v6.example")
	if err != nil || len(a4) != 0 {
		t.Errorf("A for v6-only = %v, %v", a4, err)
	}
}
