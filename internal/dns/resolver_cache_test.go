package dns

import (
	"net/netip"
	"testing"

	"respectorigin/internal/cache"
)

func TestLookupUnifiedSurface(t *testing.T) {
	a := NewAuthority()
	a.AddA("www.example.com", netip.MustParseAddr("192.0.2.1"), netip.MustParseAddr("192.0.2.2"))
	r := NewResolver(a)

	res, err := r.Lookup("www.example.com", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Addrs) != 2 || res.TTL != 300 || res.Source != SourceAuthority {
		t.Fatalf("Lookup = %+v, want 2 addrs, TTL 300, authority source", res)
	}
	// The legacy surface rides on top of Lookup.
	addrs, err := r.LookupA("www.example.com")
	if err != nil || len(addrs) != 2 {
		t.Fatalf("LookupA = %v, %v", addrs, err)
	}
	if got := r.LastAnswer("www.example.com"); len(got) != 2 {
		t.Fatalf("LastAnswer = %v, want the answer set", got)
	}
}

func TestResolverConsultsCacheBeforeAuthority(t *testing.T) {
	a := NewAuthority()
	a.AddA("cached.example", netip.MustParseAddr("192.0.2.7"))
	r := NewResolver(a)
	c := cache.New(cache.Options{})
	r.UseCache(c)

	if _, err := r.Lookup("cached.example", TypeA); err != nil {
		t.Fatal(err)
	}
	if r.Queries() != 1 {
		t.Fatalf("cold lookup queries = %d, want 1", r.Queries())
	}
	res, err := r.Lookup("cached.example", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceCache {
		t.Fatalf("warm lookup source = %q, want cache", res.Source)
	}
	if r.Queries() != 1 {
		t.Fatalf("warm lookup issued a query: queries = %d, want 1", r.Queries())
	}

	// TTL boundary: the authority's 300s budget expires exactly at
	// 300_000 ms — the lookup at that instant must go back to the wire.
	c.Clock().AdvanceMs(300_000)
	res, err = r.Lookup("cached.example", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceAuthority || r.Queries() != 2 {
		t.Fatalf("expired entry: source %q queries %d, want authority re-query", res.Source, r.Queries())
	}
}

func TestResolverNegativeCache(t *testing.T) {
	a := NewAuthority()
	r := NewResolver(a)
	c := cache.New(cache.Options{NegativeTTLSeconds: 60})
	r.UseCache(c)

	if _, err := r.Lookup("no-such.example", TypeA); err == nil {
		t.Fatal("expected NXDOMAIN")
	}
	res, err := r.Lookup("no-such.example", TypeA)
	if err == nil {
		t.Fatal("negative-cache hit must still fail the lookup")
	}
	if _, ok := err.(*NXDomainError); !ok {
		t.Fatalf("err = %v, want NXDomainError", err)
	}
	if res.Source != SourceNegativeCache {
		t.Fatalf("source = %q, want negative-cache", res.Source)
	}
	if r.Queries() != 1 {
		t.Fatalf("queries = %d, want 1 (second failure served from cache)", r.Queries())
	}
	// After the negative TTL the name is re-queried.
	c.Clock().AdvanceMs(60_000)
	if _, err := r.Lookup("no-such.example", TypeA); err == nil {
		t.Fatal("expected NXDOMAIN after negative expiry")
	}
	if r.Queries() != 2 {
		t.Fatalf("queries = %d, want 2 after negative entry expired", r.Queries())
	}
}

func TestResolverWithoutCacheUnchanged(t *testing.T) {
	a := NewAuthority()
	a.AddA("plain.example", netip.MustParseAddr("192.0.2.9"))
	r := NewResolver(a)
	for i := 0; i < 3; i++ {
		if _, err := r.LookupA("plain.example"); err != nil {
			t.Fatal(err)
		}
	}
	if r.Queries() != 3 {
		t.Fatalf("uncached resolver queries = %d, want 3 (one per lookup)", r.Queries())
	}
}
