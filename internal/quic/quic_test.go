package quic

import (
	"math/rand"
	"testing"

	"respectorigin/internal/cache"
	"respectorigin/internal/netsim"
)

func TestConnIDDeterministic(t *testing.T) {
	a := NewConnID(rand.New(rand.NewSource(7)))
	b := NewConnID(rand.New(rand.NewSource(7)))
	if a != b {
		t.Fatalf("same seed minted different conn IDs: %s vs %s", a, b)
	}
	c := NewConnID(rand.New(rand.NewSource(8)))
	if a == c {
		t.Fatalf("different seeds minted the same conn ID %s", a)
	}
	if len(a.String()) != 2*ConnIDLen {
		t.Fatalf("String() = %q, want %d hex chars", a, 2*ConnIDLen)
	}
}

func TestConnStreamMultiplexing(t *testing.T) {
	c := NewConn(rand.New(rand.NewSource(1)), "www.example.com", []string{"*.example.com"})
	var ids []uint64
	for i := 0; i < 4; i++ {
		s, err := c.OpenStream()
		if err != nil {
			t.Fatalf("OpenStream: %v", err)
		}
		ids = append(ids, s.ID)
	}
	// Client-initiated bidirectional stream IDs: 0, 4, 8, 12 (§2.1).
	for i, id := range ids {
		if want := uint64(i * 4); id != want {
			t.Fatalf("stream %d got ID %d, want %d", i, id, want)
		}
	}
	if c.NumStreams() != 4 {
		t.Fatalf("NumStreams = %d, want 4", c.NumStreams())
	}
	if c.Stream(4) == nil || c.Stream(2) != nil {
		t.Fatalf("stream lookup: want ID 4 present, ID 2 absent")
	}
	c.Close()
	if _, err := c.OpenStream(); err != ErrConnClosed {
		t.Fatalf("OpenStream after Close: err = %v, want ErrConnClosed", err)
	}
}

func TestPathRTTs(t *testing.T) {
	cases := []struct {
		path    Path
		rtts    float64
		zeroRTT bool
	}{
		{Path{Resumed: true, TokenHit: true}, 0, true},
		{Path{Resumed: true, TokenHit: false}, 2, false},
		{Path{Resumed: false, TokenHit: true}, 1, false},
		{Path{Resumed: false, TokenHit: false}, 2, false},
	}
	for _, c := range cases {
		if got := c.path.RTTs(); got != c.rtts {
			t.Errorf("%+v: RTTs = %v, want %v", c.path, got, c.rtts)
		}
		if got := c.path.ZeroRTT(); got != c.zeroRTT {
			t.Errorf("%+v: ZeroRTT = %v, want %v", c.path, got, c.zeroRTT)
		}
	}
}

func TestEstablishWarmPath(t *testing.T) {
	sans := []string{"www.example.com", "cdn.example.com"}
	c := cache.New(cache.Options{})

	// Cold: nothing to redeem, but the handshake mints ticket + token.
	p := Establish(c, "www.example.com", sans)
	if p.Resumed || p.TokenHit {
		t.Fatalf("cold establish: path %+v, want neither resumed nor token", p)
	}
	// Warm revisit to a *different* covered hostname: cross-hostname
	// resumption and shared address validation both apply.
	p = Establish(c, "cdn.example.com", sans)
	if !p.Resumed || !p.TokenHit || !p.ZeroRTT() {
		t.Fatalf("warm establish: path %+v, want 0-RTT via shared SAN coverage", p)
	}
	// A hostname outside the coverage gets nothing.
	p = Establish(c, "other.example.org", []string{"other.example.org"})
	if p.Resumed || p.TokenHit {
		t.Fatalf("uncovered establish: path %+v, want cold", p)
	}
}

func TestEstablishNilCacheIsCold(t *testing.T) {
	p := Establish(nil, "www.example.com", []string{"www.example.com"})
	if p.Resumed || p.TokenHit || p.RTTs() != 2 {
		t.Fatalf("nil-cache establish: %+v (RTTs %v), want cold 2-RTT path", p, p.RTTs())
	}
}

func TestHandshakeTimeStreamContract(t *testing.T) {
	// Every path consumes exactly one jitter draw: after pricing any
	// path, the next draw from an identically-seeded network matches.
	paths := []Path{
		{Resumed: true, TokenHit: true},
		{Resumed: true, TokenHit: false},
		{Resumed: false, TokenHit: true},
		{Resumed: false, TokenHit: false},
	}
	params := netsim.DefaultParams()
	var wantNext float64
	for i, p := range paths {
		n := netsim.New(params, 42)
		p.HandshakeTime(n, 3)
		next := n.Float64()
		if i == 0 {
			wantNext = next
			continue
		}
		if next != wantNext {
			t.Fatalf("path %+v consumed a different number of draws (next draw %v, want %v)",
				p, next, wantNext)
		}
	}

	// 0-RTT is free of round trips; the retry path pays two.
	noJitter := params
	noJitter.JitterMs = 0
	n := netsim.New(noJitter, 1)
	if d := (Path{Resumed: true, TokenHit: true}).HandshakeTime(n, 0); d != 0 {
		t.Fatalf("0-RTT handshake time = %v, want 0", d)
	}
	if d := (Path{}).HandshakeTime(n, 0); d != 2*noJitter.RTTMs+noJitter.CertVerifyMs {
		t.Fatalf("cold handshake time = %v, want %v", d, 2*noJitter.RTTMs+noJitter.CertVerifyMs)
	}
}

func TestDeliverHoLComparison(t *testing.T) {
	sizes := []int64{10_000, 50_000, 200_000}
	const bw = 6250.0

	// Without loss the transports are identical.
	q := DeliverNoHoL(sizes, bw, nil)
	h := DeliverTCPHoL(sizes, bw, nil)
	for i := range q {
		if q[i] != h[i] {
			t.Fatalf("no-loss completions differ at %d: quic %v, tcp %v", i, q[i], h[i])
		}
	}
	// Completions are ordered by size under fair sharing.
	if !(q[0] < q[1] && q[1] < q[2]) {
		t.Fatalf("fair-share completions not size-ordered: %v", q)
	}

	// One early loss on stream 2: QUIC stalls only stream 2, TCP
	// stalls every stream still in flight.
	loss := []LossEvent{{AtMs: 1, StallMs: 100, StreamIdx: 2}}
	q = DeliverNoHoL(sizes, bw, loss)
	h = DeliverTCPHoL(sizes, bw, loss)
	base := DeliverNoHoL(sizes, bw, nil)
	for i := 0; i < 2; i++ {
		if q[i] != base[i] {
			t.Errorf("quic: unrelated stream %d shifted by loss: %v -> %v", i, base[i], q[i])
		}
		if h[i] != base[i]+100 {
			t.Errorf("tcp: stream %d not stalled by HoL blocking: %v, want %v", i, h[i], base[i]+100)
		}
	}
	if q[2] != base[2]+100 || h[2] != base[2]+100 {
		t.Errorf("lost stream not stalled: quic %v, tcp %v, want %v", q[2], h[2], base[2]+100)
	}

	// A loss after a stream completed does not reach back in time.
	late := []LossEvent{{AtMs: base[2] + 1, StallMs: 50, StreamIdx: 0}}
	if got := DeliverNoHoL(sizes, bw, late); got[0] != base[0] {
		t.Errorf("loss after completion stalled stream 0: %v, want %v", got[0], base[0])
	}

	// Bandwidth off: zero completions, mirroring netsim.TransferTime.
	for _, v := range DeliverNoHoL(sizes, 0, nil) {
		if v != 0 {
			t.Fatalf("bandwidth-off completion %v, want 0", v)
		}
	}
}
