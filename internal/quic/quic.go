// Package quic is the QUIC-lite transport layer of the ORIGIN stack:
// just enough of RFC 9000 to extend the coalescing cost model to
// HTTP/3. It models the pieces whose costs differ from TLS-over-TCP —
//
//   - connection IDs drawn deterministically from a caller-owned
//     stream, so a connection's identity survives path migration
//     without depending on the 4-tuple;
//   - stream multiplexing with independent per-stream delivery: a lost
//     packet stalls only the stream it carried, not the whole
//     connection (no h2-style TCP head-of-line blocking — see
//     DeliverNoHoL vs DeliverTCPHoL);
//   - the 1-RTT vs 0-RTT handshake paths and the address-validation
//     Retry round trip, with tokens stored in internal/cache alongside
//     TLS session tickets and shared across hostnames by certificate
//     SAN coverage (the shared-address-validation model);
//   - a wire frame subset (PADDING, PING, CRYPTO, NEW_TOKEN, STREAM,
//     MAX_STREAM_DATA, NEW_CONNECTION_ID) with RFC 9000 §16 varints and
//     the same bounds discipline as the hpack/qpack decoders.
//
// Like every layer of the stack it is deterministic: no wall-clock
// reads, no package-level RNG — every draw comes from a seeded stream
// the caller owns.
package quic

import (
	"encoding/hex"
	"errors"
	"math/rand"
)

// ConnIDLen is the fixed connection ID length this stack mints (RFC
// 9000 allows 0-20 bytes; 8 matches common server deployments).
const ConnIDLen = 8

// ConnID is a QUIC connection identifier.
type ConnID [ConnIDLen]byte

// NewConnID draws a connection ID from the caller's seeded stream.
func NewConnID(r *rand.Rand) ConnID {
	var id ConnID
	for i := 0; i < ConnIDLen; i += 4 {
		v := r.Uint32()
		id[i] = byte(v >> 24)
		id[i+1] = byte(v >> 16)
		id[i+2] = byte(v >> 8)
		id[i+3] = byte(v)
	}
	return id
}

func (id ConnID) String() string { return hex.EncodeToString(id[:]) }

// ErrConnClosed reports stream operations on a closed connection.
var ErrConnClosed = errors.New("quic: connection closed")

// Stream is one bidirectional stream of a connection.
type Stream struct {
	ID    uint64 // client-initiated bidirectional: 0, 4, 8, …
	Bytes int64  // application bytes written so far
	Fin   bool   // FIN sent; no further writes
}

// Conn is a QUIC-lite connection: an identity plus a set of multiplexed
// streams. It is not safe for concurrent use, matching the browser
// pool's single-context discipline.
type Conn struct {
	ID   ConnID
	Host string   // hostname the connection was opened for
	SANs []string // server certificate coverage (coalescing authority)

	nextStream uint64
	streams    map[uint64]*Stream
	closed     bool
}

// NewConn opens a connection for host with the given certificate
// coverage, minting its connection ID from the caller's stream.
func NewConn(r *rand.Rand, host string, sans []string) *Conn {
	return &Conn{
		ID:      NewConnID(r),
		Host:    host,
		SANs:    sans,
		streams: make(map[uint64]*Stream),
	}
}

// OpenStream opens the next client-initiated bidirectional stream
// (IDs 0, 4, 8, … per RFC 9000 §2.1).
func (c *Conn) OpenStream() (*Stream, error) {
	if c.closed {
		return nil, ErrConnClosed
	}
	s := &Stream{ID: c.nextStream}
	c.streams[s.ID] = s
	c.nextStream += 4
	return s, nil
}

// Stream returns the stream with the given ID, or nil.
func (c *Conn) Stream(id uint64) *Stream { return c.streams[id] }

// NumStreams reports how many streams have been opened.
func (c *Conn) NumStreams() int { return len(c.streams) }

// Close closes the connection; further OpenStream calls fail.
func (c *Conn) Close() { c.closed = true }

// Closed reports whether Close was called.
func (c *Conn) Closed() bool { return c.closed }
