package quic

import "errors"

// Variable-length integer encoding, RFC 9000 §16: the two high bits of
// the first byte select a 1-, 2-, 4- or 8-byte encoding holding 6, 14,
// 30 or 62 value bits.

// MaxVarint is the largest value a QUIC varint can carry (2^62-1).
const MaxVarint = 1<<62 - 1

// maxFrameData bounds the payload a single CRYPTO/STREAM/NEW_TOKEN
// frame may carry, mirroring the hpack/qpack string-length discipline:
// a hostile length prefix must not commit the decoder to an unbounded
// allocation.
const maxFrameData = 1 << 20

// Frame decoding errors.
var (
	// ErrTruncated is returned when a frame ends mid-field.
	ErrTruncated = errors.New("quic: truncated frame")

	// ErrVarintRange is returned when a value exceeds MaxVarint on
	// encode (varints cannot represent it).
	ErrVarintRange = errors.New("quic: value exceeds varint range")

	// ErrUnknownFrame is returned for a frame type outside the QUIC-lite
	// subset.
	ErrUnknownFrame = errors.New("quic: unknown frame type")

	// ErrDataLength is returned when a frame's payload length exceeds
	// the decoder's bound.
	ErrDataLength = errors.New("quic: frame payload too long")

	// ErrFrameEncoding is returned for semantically invalid frames (an
	// empty NEW_TOKEN token, a connection ID length outside 1-20).
	ErrFrameEncoding = errors.New("quic: invalid frame encoding")
)

// AppendVarint appends the minimal-length RFC 9000 §16 encoding of v.
// Values above MaxVarint cannot be represented and panic; frame
// encoders validate their fields first and return ErrVarintRange.
func AppendVarint(dst []byte, v uint64) []byte {
	switch {
	case v < 1<<6:
		return append(dst, byte(v))
	case v < 1<<14:
		return append(dst, 0x40|byte(v>>8), byte(v))
	case v < 1<<30:
		return append(dst, 0x80|byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	case v <= MaxVarint:
		return append(dst, 0xc0|byte(v>>56), byte(v>>48), byte(v>>40),
			byte(v>>32), byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	default:
		panic("quic: value exceeds varint range")
	}
}

// ReadVarint decodes one varint from buf, returning the value and the
// number of bytes consumed.
func ReadVarint(buf []byte) (v uint64, n int, err error) {
	if len(buf) == 0 {
		return 0, 0, ErrTruncated
	}
	n = 1 << (buf[0] >> 6)
	if len(buf) < n {
		return 0, 0, ErrTruncated
	}
	v = uint64(buf[0] & 0x3f)
	for i := 1; i < n; i++ {
		v = v<<8 | uint64(buf[i])
	}
	return v, n, nil
}

// Frame types of the QUIC-lite subset (RFC 9000 §19). STREAM frames
// occupy 0x08-0x0f: the low three bits are the OFF, LEN and FIN flags,
// and parsing canonicalizes all eight variants to FrameStream.
const (
	FramePadding         = 0x00
	FramePing            = 0x01
	FrameCrypto          = 0x06
	FrameNewToken        = 0x07
	FrameStream          = 0x08
	FrameMaxStreamData   = 0x11
	FrameNewConnectionID = 0x18
)

const (
	streamFlagFin = 0x01
	streamFlagLen = 0x02
	streamFlagOff = 0x04
)

// Frame is one parsed QUIC-lite frame. Type is the canonical base type
// (FrameStream for every 0x08-0x0f variant); the other fields are
// populated per type:
//
//	CRYPTO              Offset, Data
//	NEW_TOKEN           Token
//	STREAM              StreamID, Offset, Fin, Data
//	MAX_STREAM_DATA     StreamID, Max
//	NEW_CONNECTION_ID   Seq, RetirePrior, CID, ResetToken
type Frame struct {
	Type uint64

	StreamID    uint64
	Offset      uint64
	Fin         bool
	Data        []byte
	Token       []byte
	Max         uint64
	Seq         uint64
	RetirePrior uint64
	CID         []byte
	ResetToken  [16]byte
}

// checkVarints reports ErrVarintRange if any field to be
// varint-encoded exceeds MaxVarint.
func (f *Frame) checkVarints() error {
	for _, v := range []uint64{f.StreamID, f.Offset, f.Max, f.Seq, f.RetirePrior} {
		if v > MaxVarint {
			return ErrVarintRange
		}
	}
	return nil
}

// AppendFrame appends the canonical encoding of f: minimal varints,
// and STREAM frames always carry an explicit length (self-delimiting),
// with the OFF bit set only for nonzero offsets. Round-tripping any
// parsed frame through AppendFrame and ReadFrame yields an identical
// Frame value.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if err := f.checkVarints(); err != nil {
		return dst, err
	}
	switch f.Type {
	case FramePadding, FramePing:
		return append(dst, byte(f.Type)), nil
	case FrameCrypto:
		if len(f.Data) > maxFrameData {
			return dst, ErrDataLength
		}
		dst = append(dst, FrameCrypto)
		dst = AppendVarint(dst, f.Offset)
		dst = AppendVarint(dst, uint64(len(f.Data)))
		return append(dst, f.Data...), nil
	case FrameNewToken:
		if len(f.Token) == 0 {
			return dst, ErrFrameEncoding // RFC 9000 §19.7: token must be non-empty
		}
		if len(f.Token) > maxFrameData {
			return dst, ErrDataLength
		}
		dst = append(dst, FrameNewToken)
		dst = AppendVarint(dst, uint64(len(f.Token)))
		return append(dst, f.Token...), nil
	case FrameStream:
		if len(f.Data) > maxFrameData {
			return dst, ErrDataLength
		}
		t := byte(FrameStream | streamFlagLen)
		if f.Offset > 0 {
			t |= streamFlagOff
		}
		if f.Fin {
			t |= streamFlagFin
		}
		dst = append(dst, t)
		dst = AppendVarint(dst, f.StreamID)
		if f.Offset > 0 {
			dst = AppendVarint(dst, f.Offset)
		}
		dst = AppendVarint(dst, uint64(len(f.Data)))
		return append(dst, f.Data...), nil
	case FrameMaxStreamData:
		dst = append(dst, FrameMaxStreamData)
		dst = AppendVarint(dst, f.StreamID)
		return AppendVarint(dst, f.Max), nil
	case FrameNewConnectionID:
		if len(f.CID) < 1 || len(f.CID) > 20 {
			return dst, ErrFrameEncoding // RFC 9000 §19.15: length 1-20
		}
		dst = append(dst, FrameNewConnectionID)
		dst = AppendVarint(dst, f.Seq)
		dst = AppendVarint(dst, f.RetirePrior)
		dst = append(dst, byte(len(f.CID)))
		dst = append(dst, f.CID...)
		return append(dst, f.ResetToken[:]...), nil
	default:
		return dst, ErrUnknownFrame
	}
}

// ReadFrame parses one frame from buf, returning it and the remaining
// bytes. Payload slices alias buf. STREAM frames without the LEN bit
// extend to the end of buf, per RFC 9000 §19.8.
func ReadFrame(buf []byte) (Frame, []byte, error) {
	t, n, err := ReadVarint(buf)
	if err != nil {
		return Frame{}, nil, err
	}
	buf = buf[n:]
	switch {
	case t == FramePadding, t == FramePing:
		return Frame{Type: t}, buf, nil
	case t == FrameCrypto:
		f := Frame{Type: t}
		if f.Offset, buf, err = readVarintField(buf); err != nil {
			return Frame{}, nil, err
		}
		if f.Data, buf, err = readLengthPrefixed(buf); err != nil {
			return Frame{}, nil, err
		}
		return f, buf, nil
	case t == FrameNewToken:
		f := Frame{Type: t}
		if f.Token, buf, err = readLengthPrefixed(buf); err != nil {
			return Frame{}, nil, err
		}
		if len(f.Token) == 0 {
			return Frame{}, nil, ErrFrameEncoding
		}
		return f, buf, nil
	case t >= FrameStream && t <= FrameStream|0x07:
		f := Frame{Type: FrameStream, Fin: t&streamFlagFin != 0}
		if f.StreamID, buf, err = readVarintField(buf); err != nil {
			return Frame{}, nil, err
		}
		if t&streamFlagOff != 0 {
			if f.Offset, buf, err = readVarintField(buf); err != nil {
				return Frame{}, nil, err
			}
		}
		if t&streamFlagLen != 0 {
			if f.Data, buf, err = readLengthPrefixed(buf); err != nil {
				return Frame{}, nil, err
			}
		} else {
			if len(buf) > maxFrameData {
				return Frame{}, nil, ErrDataLength
			}
			f.Data, buf = buf, nil
		}
		return f, buf, nil
	case t == FrameMaxStreamData:
		f := Frame{Type: t}
		if f.StreamID, buf, err = readVarintField(buf); err != nil {
			return Frame{}, nil, err
		}
		if f.Max, buf, err = readVarintField(buf); err != nil {
			return Frame{}, nil, err
		}
		return f, buf, nil
	case t == FrameNewConnectionID:
		f := Frame{Type: t}
		if f.Seq, buf, err = readVarintField(buf); err != nil {
			return Frame{}, nil, err
		}
		if f.RetirePrior, buf, err = readVarintField(buf); err != nil {
			return Frame{}, nil, err
		}
		if len(buf) == 0 {
			return Frame{}, nil, ErrTruncated
		}
		cidLen := int(buf[0])
		buf = buf[1:]
		if cidLen < 1 || cidLen > 20 {
			return Frame{}, nil, ErrFrameEncoding
		}
		if len(buf) < cidLen+16 {
			return Frame{}, nil, ErrTruncated
		}
		f.CID = buf[:cidLen]
		copy(f.ResetToken[:], buf[cidLen:cidLen+16])
		return f, buf[cidLen+16:], nil
	default:
		return Frame{}, nil, ErrUnknownFrame
	}
}

func readVarintField(buf []byte) (uint64, []byte, error) {
	v, n, err := ReadVarint(buf)
	if err != nil {
		return 0, nil, err
	}
	return v, buf[n:], nil
}

// readLengthPrefixed reads a varint length then that many bytes,
// bounded by maxFrameData before any slice is taken.
func readLengthPrefixed(buf []byte) ([]byte, []byte, error) {
	n, consumed, err := ReadVarint(buf)
	if err != nil {
		return nil, nil, err
	}
	buf = buf[consumed:]
	if n > maxFrameData {
		return nil, nil, ErrDataLength
	}
	if uint64(len(buf)) < n {
		return nil, nil, ErrTruncated
	}
	return buf[:n], buf[n:], nil
}
