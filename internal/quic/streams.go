package quic

import "sort"

// LossEvent is one retransmission stall: at AtMs a packet belonging to
// stream StreamIdx is lost and its retransmission takes StallMs.
// Whether the stall blocks one stream or the whole connection is the
// transport's choice — exactly the difference between QUIC stream
// multiplexing and h2-over-TCP.
type LossEvent struct {
	AtMs      float64
	StallMs   float64
	StreamIdx int
}

// fairShareCompletions returns the processor-sharing completion time of
// each of n concurrent transfers over a shared bandwidth (KB/s = bytes
// per ms): all active streams split the link evenly, so the smallest
// remaining transfer finishes first and frees its share for the rest.
// This is the multiplexed-delivery baseline both transports share;
// they differ only in how losses propagate.
func fairShareCompletions(sizes []int64, bandwidthKBps float64) []float64 {
	out := make([]float64, len(sizes))
	if len(sizes) == 0 {
		return out
	}
	if bandwidthKBps <= 0 {
		return out // transfer model off, matching netsim.TransferTime
	}
	type ent struct {
		size int64
		idx  int
	}
	order := make([]ent, len(sizes))
	for i, s := range sizes {
		order[i] = ent{size: s, idx: i}
	}
	// Equal sizes complete at the same instant, but the tie key keeps
	// the walk order itself deterministic.
	sort.Slice(order, func(i, j int) bool {
		if order[i].size != order[j].size {
			return order[i].size < order[j].size
		}
		return order[i].idx < order[j].idx
	})
	t, prev := 0.0, int64(0)
	active := len(order)
	for _, e := range order {
		t += float64(e.size-prev) * float64(active) / bandwidthKBps
		out[e.idx] = t
		prev = e.size
		active--
	}
	return out
}

// DeliverNoHoL returns per-stream completion times for sizes delivered
// over one QUIC connection: streams are independent, so a loss stalls
// only the stream whose packet was lost — every other stream's
// delivery is unaffected (RFC 9000 §2.2, no transport-level
// head-of-line blocking).
func DeliverNoHoL(sizes []int64, bandwidthKBps float64, losses []LossEvent) []float64 {
	out := fairShareCompletions(sizes, bandwidthKBps)
	for _, l := range losses {
		if l.StreamIdx < 0 || l.StreamIdx >= len(out) {
			continue
		}
		if out[l.StreamIdx] > l.AtMs {
			out[l.StreamIdx] += l.StallMs
		}
	}
	return out
}

// DeliverTCPHoL returns per-stream completion times for the same
// multiplexed delivery over h2-on-TCP: TCP presents one ordered byte
// stream, so a lost segment stalls every h2 stream still in flight
// until the retransmission lands — the head-of-line blocking QUIC's
// per-stream delivery removes. Identical inputs without losses yield
// identical completions to DeliverNoHoL; the transports only diverge
// under loss.
func DeliverTCPHoL(sizes []int64, bandwidthKBps float64, losses []LossEvent) []float64 {
	out := fairShareCompletions(sizes, bandwidthKBps)
	for _, l := range losses {
		for i := range out {
			if out[i] > l.AtMs {
				out[i] += l.StallMs
			}
		}
	}
	return out
}
