package quic

import (
	"bytes"
	"testing"
)

func TestVarintRoundTrip(t *testing.T) {
	values := []uint64{0, 1, 63, 64, 16383, 16384, 1<<30 - 1, 1 << 30, MaxVarint}
	wantLen := []int{1, 1, 1, 2, 2, 4, 4, 8, 8}
	for i, v := range values {
		enc := AppendVarint(nil, v)
		if len(enc) != wantLen[i] {
			t.Errorf("varint %d encoded to %d bytes, want %d", v, len(enc), wantLen[i])
		}
		got, n, err := ReadVarint(enc)
		if err != nil || got != v || n != len(enc) {
			t.Errorf("ReadVarint(%d): got %d (n=%d, err=%v)", v, got, n, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("AppendVarint(MaxVarint+1) did not panic")
		}
	}()
	AppendVarint(nil, MaxVarint+1)
}

func TestVarintTruncated(t *testing.T) {
	if _, _, err := ReadVarint(nil); err != ErrTruncated {
		t.Errorf("empty buf: err = %v, want ErrTruncated", err)
	}
	// 4-byte encoding cut to 2 bytes.
	enc := AppendVarint(nil, 1<<20)
	if _, _, err := ReadVarint(enc[:2]); err != ErrTruncated {
		t.Errorf("cut varint: err = %v, want ErrTruncated", err)
	}
}

func frameEqual(a, b Frame) bool {
	return a.Type == b.Type && a.StreamID == b.StreamID && a.Offset == b.Offset &&
		a.Fin == b.Fin && bytes.Equal(a.Data, b.Data) && bytes.Equal(a.Token, b.Token) &&
		a.Max == b.Max && a.Seq == b.Seq && a.RetirePrior == b.RetirePrior &&
		bytes.Equal(a.CID, b.CID) && a.ResetToken == b.ResetToken
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FramePadding},
		{Type: FramePing},
		{Type: FrameCrypto, Offset: 1200, Data: []byte("client hello")},
		{Type: FrameNewToken, Token: []byte{0xde, 0xad, 0xbe, 0xef}},
		{Type: FrameStream, StreamID: 4, Data: []byte("GET /")},
		{Type: FrameStream, StreamID: 8, Offset: 65536, Fin: true, Data: []byte("x")},
		{Type: FrameStream, StreamID: 0, Fin: true},
		{Type: FrameMaxStreamData, StreamID: 12, Max: 1 << 20},
		{Type: FrameNewConnectionID, Seq: 3, RetirePrior: 1,
			CID: []byte{1, 2, 3, 4, 5, 6, 7, 8}, ResetToken: [16]byte{9: 0xaa}},
	}
	var buf []byte
	for _, f := range frames {
		var err error
		if buf, err = AppendFrame(buf, f); err != nil {
			t.Fatalf("AppendFrame(%+v): %v", f, err)
		}
	}
	rest := buf
	for i, want := range frames {
		var got Frame
		var err error
		if got, rest, err = ReadFrame(rest); err != nil {
			t.Fatalf("ReadFrame #%d: %v", i, err)
		}
		if !frameEqual(got, want) {
			t.Fatalf("frame #%d: got %+v, want %+v", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after all frames", len(rest))
	}
}

func TestFrameStreamNoLenExtendsToEnd(t *testing.T) {
	// STREAM without the LEN bit: data runs to the end of the packet.
	raw := []byte{FrameStream | streamFlagFin, 0x04, 'h', 'i'}
	f, rest, err := ReadFrame(raw)
	if err != nil || len(rest) != 0 {
		t.Fatalf("ReadFrame: err=%v rest=%d", err, len(rest))
	}
	if f.Type != FrameStream || f.StreamID != 4 || !f.Fin || string(f.Data) != "hi" {
		t.Fatalf("parsed %+v", f)
	}
	// Canonical re-encoding (with LEN) round-trips to the same value.
	enc, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	g, _, err := ReadFrame(enc)
	if err != nil || !frameEqual(f, g) {
		t.Fatalf("re-parse: %+v (err %v), want %+v", g, err, f)
	}
}

func TestFrameErrors(t *testing.T) {
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"unknown type", []byte{0x21}, ErrUnknownFrame},
		{"crypto cut mid-length", []byte{FrameCrypto, 0x00}, ErrTruncated},
		{"crypto short payload", []byte{FrameCrypto, 0x00, 0x05, 'a'}, ErrTruncated},
		{"empty new_token", []byte{FrameNewToken, 0x00}, ErrFrameEncoding},
		{"ncid zero cid len", append([]byte{FrameNewConnectionID, 0x00, 0x00, 0x00}, make([]byte, 16)...), ErrFrameEncoding},
		{"ncid cut reset token", []byte{FrameNewConnectionID, 0x00, 0x00, 0x01, 0xab}, ErrTruncated},
	}
	for _, c := range cases {
		if _, _, err := ReadFrame(c.buf); err != c.want {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}

	// Oversized length prefix is rejected before any allocation.
	big := AppendVarint([]byte{FrameNewToken}, maxFrameData+1)
	if _, _, err := ReadFrame(big); err != ErrDataLength {
		t.Errorf("oversized token length: err = %v, want ErrDataLength", err)
	}
	if _, err := AppendFrame(nil, Frame{Type: FrameStream, Data: make([]byte, maxFrameData+1)}); err != ErrDataLength {
		t.Errorf("oversized stream encode: err = %v, want ErrDataLength", err)
	}
	if _, err := AppendFrame(nil, Frame{Type: FrameStream, StreamID: MaxVarint + 1}); err != ErrVarintRange {
		t.Errorf("out-of-range stream ID: err = %v, want ErrVarintRange", err)
	}
	if _, err := AppendFrame(nil, Frame{Type: 0x99}); err != ErrUnknownFrame {
		t.Errorf("unknown type encode: err = %v, want ErrUnknownFrame", err)
	}
}
