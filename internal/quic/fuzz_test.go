package quic

import "testing"

// FuzzQUICFrameRoundTrip throws arbitrary bytes at the frame parser.
// The parser must never panic; when it accepts a frame, re-encoding it
// canonically (minimal varints, explicit STREAM lengths) and re-parsing
// must yield an identical Frame value — the canonicalization is
// idempotent even when the original wire form was non-minimal.
func FuzzQUICFrameRoundTrip(f *testing.F) {
	f.Add([]byte{FramePing})
	f.Add([]byte{FrameCrypto, 0x00, 0x03, 'a', 'b', 'c'})
	f.Add([]byte{FrameNewToken, 0x02, 0xca, 0xfe})
	f.Add([]byte{FrameStream | 0x07, 0x04, 0x19, 0x01, 'x'}) // OFF|LEN|FIN
	f.Add([]byte{FrameStream, 0x00, 'n', 'o', 'l', 'e', 'n'})
	f.Add([]byte{FrameMaxStreamData, 0x08, 0x44, 0x00})
	f.Add(append([]byte{FrameNewConnectionID, 0x02, 0x01, 0x08, 1, 2, 3, 4, 5, 6, 7, 8}, make([]byte, 16)...))
	f.Add([]byte{0x40, 0x01}) // non-minimal varint type encoding of PING
	f.Fuzz(func(t *testing.T, data []byte) {
		f1, _, err := ReadFrame(data)
		if err != nil {
			return
		}
		enc, err := AppendFrame(nil, f1)
		if err != nil {
			t.Fatalf("parsed frame %+v failed to encode: %v", f1, err)
		}
		f2, rest, err := ReadFrame(enc)
		if err != nil {
			t.Fatalf("canonical encoding of %+v failed to parse: %v", f1, err)
		}
		if len(rest) != 0 {
			t.Fatalf("canonical encoding of %+v left %d trailing bytes", f1, len(rest))
		}
		if !frameEqual(f1, f2) {
			t.Fatalf("round trip changed frame: %+v -> %+v", f1, f2)
		}
	})
}
