package quic

import (
	"respectorigin/internal/cache"
	"respectorigin/internal/netsim"
)

// Path describes how one QUIC connection establishment proceeds, as
// determined by the client's warm state:
//
//   - Resumed: a protocol-keyed TLS session ticket (PSK) covered the
//     host, so the cryptographic handshake is abbreviated and no
//     certificate chain is presented or validated.
//   - TokenHit: a live address-validation token covered the host, so
//     the server skips its Retry and the validation round trip is free.
//
// The four combinations price out as:
//
//	resumed + token  → 0-RTT: application data rides the first flight
//	resumed, no token → 1 RTT handshake + 1 RTT Retry
//	full + token      → 1 RTT handshake
//	full, no token    → 1 RTT handshake + 1 RTT Retry
//
// A cold client (nil cache) takes the full-no-token path: 2 RTTs,
// still cheaper than the default TCP+TLS1.2 profile's 3.
type Path struct {
	Resumed  bool
	TokenHit bool
}

// ZeroRTT reports whether the establishment sends application data in
// the first flight: it needs both a PSK to encrypt under and a token
// so the server accepts the data before validating the path.
func (p Path) ZeroRTT() bool { return p.Resumed && p.TokenHit }

// RTTs returns the round trips the establishment costs before
// application data flows.
func (p Path) RTTs() float64 {
	rtts := 1.0
	if p.ZeroRTT() {
		rtts = 0
	}
	if !p.TokenHit {
		rtts++ // address validation via Retry
	}
	return rtts
}

// HandshakeTime prices the establishment on the network model: the
// path's round trips, plus chain validation for full handshakes.
// Exactly one jitter draw regardless of path (the netsim stream
// contract), so warm and cold h3 runs stay comparable draw for draw.
func (p Path) HandshakeTime(n *netsim.Network, sanCount int) float64 {
	return n.QUICHandshakeTime(p.RTTs(), !p.Resumed, sanCount)
}

// Establish consults the warm-path cache for one fresh h3 connection
// to host and returns the handshake path, minting a fresh session
// ticket and address-validation token for the certificate's coverage
// either way (the NewSessionTicket + NEW_TOKEN flow every handshake
// completes with). Both redemptions and both mints are keyed by
// ProtoWireH3: state minted by TCP-based protocols never matches, and
// state minted here never resumes an h1/h2 session. A nil cache is the
// cold path: Path{}, costing the full 2-RTT establishment.
func Establish(c *cache.Cache, host string, sans []string) Path {
	p := Path{
		Resumed:  c.RedeemTicketProto(host, cache.ProtoWireH3),
		TokenHit: c.RedeemToken(host, cache.ProtoWireH3),
	}
	c.StoreTicketProto(sans, cache.ProtoWireH3)
	c.StoreToken(sans, cache.ProtoWireH3)
	return p
}
