package faults

import (
	"net/netip"

	"respectorigin/internal/browser"
)

// Env wraps a browser.Environment with fault injection at the network
// boundary the browser sees:
//
//   - Lookup fails with SERVFAIL or a resolver timeout,
//   - fresh connection attempts fail their TLS handshake (reported
//     through the browser.ConnectFailer extension),
//   - reuse authorization flaps (stale origin sets / de-provisioned
//     edges), so reuse attempts bounce with 421 as in §5.3.
//
// Certificate SANs and origin sets pass through unchanged: the fault is
// the edge no longer honoring what it advertised, not the advertisement
// itself.
type Env struct {
	Inner browser.Environment
	Inj   *Injector
}

var (
	_ browser.Environment   = (*Env)(nil)
	_ browser.ConnectFailer = (*Env)(nil)
	_ browser.TTLLookuper   = (*Env)(nil)
	_ browser.AltSvcer      = (*Env)(nil)
)

// Lookup resolves through the inner environment unless a DNS fault
// fires first.
func (e *Env) Lookup(host string) ([]netip.Addr, error) {
	if e.Inj.Hit(KindDNSFail) {
		return nil, ErrDNSServFail
	}
	if e.Inj.Hit(KindDNSTimeout) {
		return nil, ErrDNSTimeout
	}
	return e.Inner.Lookup(host)
}

// LookupTTL implements browser.TTLLookuper with the same fault draws as
// Lookup, so a cache-carrying browser sees an identical fault stream.
// When the inner environment does not expose TTLs the answer is
// reported uncacheable (TTL 0).
func (e *Env) LookupTTL(host string) ([]netip.Addr, uint32, error) {
	if e.Inj.Hit(KindDNSFail) {
		return nil, 0, ErrDNSServFail
	}
	if e.Inj.Hit(KindDNSTimeout) {
		return nil, 0, ErrDNSTimeout
	}
	if tl, ok := e.Inner.(browser.TTLLookuper); ok {
		return tl.LookupTTL(host)
	}
	addrs, err := e.Inner.Lookup(host)
	return addrs, 0, err
}

// CertSANs passes through.
func (e *Env) CertSANs(host string, ip netip.Addr) []string {
	return e.Inner.CertSANs(host, ip)
}

// OriginSet passes through.
func (e *Env) OriginSet(host string, ip netip.Addr) []string {
	return e.Inner.OriginSet(host, ip)
}

// Reachable consults the inner environment and then rolls the
// stale-origin fault: a hit downgrades an authoritative edge to a 421,
// the fail-open behaviour the paper observed for misconfigured origin
// sets.
func (e *Env) Reachable(host string, ip netip.Addr) bool {
	ok := e.Inner.Reachable(host, ip)
	if ok && e.Inj.Hit(KindStaleOrigin) {
		return false
	}
	return ok
}

// SupportsH3 passes through Alt-Svc advertisement: the fault layer
// degrades the network, not what the server says it speaks. Inner
// environments without the extension support h3 everywhere, matching
// the browser's own default for extension-less environments.
func (e *Env) SupportsH3(host string) bool {
	if as, ok := e.Inner.(browser.AltSvcer); ok {
		return as.SupportsH3(host)
	}
	return true
}

// ConnectFail implements browser.ConnectFailer: fresh connections fail
// their TLS handshake with the plan's TLSFailProb.
func (e *Env) ConnectFail(host string, ip netip.Addr) error {
	if e.Inj.Hit(KindTLSFail) {
		return ErrTLSHandshake
	}
	return nil
}
