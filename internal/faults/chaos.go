package faults

import (
	"net"
	"sync"
	"time"
)

// A ChaosConn wraps a live net.Conn with plan-driven transport faults
// for the live ORIGIN stack (cmd/origincurl -chaos):
//
//   - KindReset: the connection is torn down after a seeded byte budget,
//     modelling a TCP RST mid-stream (a small budget lands inside the
//     TLS handshake, reproducing handshake failures too);
//   - LossPct: every read is delayed by an RTO-like penalty with the
//     plan's loss probability, inflating observed latency the same way
//     InflationFactor inflates the simulator's cost model.
//
// The fault schedule is drawn from the injector at construction, so two
// connections built from injectors with the same plan and seed fail at
// the same byte offsets.
type ChaosConn struct {
	net.Conn
	inj *Injector

	mu     sync.Mutex
	budget int64 // bytes (both directions) until an injected reset; <0 = never
	delay  time.Duration
}

// NewChaosConn wraps nc. The reset decision and its byte budget are
// sampled immediately from inj's stream.
func NewChaosConn(nc net.Conn, inj *Injector) *ChaosConn {
	c := &ChaosConn{Conn: nc, inj: inj, budget: -1}
	if inj.Hit(KindReset) {
		// Somewhere between mid-handshake and a few response bodies.
		c.budget = int64(512 + inj.Intn(64<<10))
	}
	if loss := inj.Plan().LossPct; loss > 0 {
		// Per-read RTO penalty scaled by the loss rate; deterministic in
		// duration, applied probabilistically per read below.
		c.delay = time.Duration(loss * float64(3*time.Millisecond))
	}
	return c
}

// Budget reports the remaining bytes until the injected reset fires;
// negative means no reset is scheduled. It exists so tests can pin the
// seeded schedule.
func (c *ChaosConn) Budget() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budget
}

// spend consumes n bytes of the reset budget, reporting whether the
// injected reset has fired.
func (c *ChaosConn) spend(n int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget < 0 {
		return false
	}
	c.budget -= int64(n)
	return c.budget <= 0
}

func (c *ChaosConn) Read(p []byte) (int, error) {
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	n, err := c.Conn.Read(p)
	if c.spend(n) {
		_ = c.Conn.Close()
		return n, ErrConnReset
	}
	return n, err
}

func (c *ChaosConn) Write(p []byte) (int, error) {
	if c.spend(len(p)) {
		_ = c.Conn.Close()
		return 0, ErrConnReset
	}
	return c.Conn.Write(p)
}
