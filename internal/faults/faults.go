// Package faults is a seeded, deterministic fault-plan engine for the
// ORIGIN stack. The paper's §5 deployment succeeded only because the
// production CDN tolerated churned zones, anonymous-fetch pools, and
// misconfigured origin sets (the 421 fail-open path of §5.3); this
// package makes those failure modes — plus the transport-level ones the
// deployment logs hint at — first-class, reproducible inputs to the
// simulators and the live HTTP/2 stack:
//
//   - DNS SERVFAIL and resolver timeouts,
//   - TLS handshake failures and TCP resets mid-stream,
//   - server GOAWAY drains,
//   - stale origin sets producing 421 storms,
//   - loss-driven latency inflation for the netsim cost model,
//   - telemetry restarts that lose per-connection log state.
//
// Everything is driven by a Plan (per-fault probabilities) and an
// Injector seeded independently of every other RNG stream in the
// repository, so that a zero plan leaves all outputs byte-identical
// and a fixed nonzero plan is reproducible run to run.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind identifies one injectable fault class.
type Kind int

// Fault kinds.
const (
	// KindDNSFail is a resolver SERVFAIL: the lookup returns an error
	// immediately.
	KindDNSFail Kind = iota
	// KindDNSTimeout is a resolver timeout: the lookup fails after the
	// full timeout budget (latency inflation plus an error).
	KindDNSTimeout
	// KindTLSFail is a failed TLS handshake on a fresh connection.
	KindTLSFail
	// KindReset is a TCP reset tearing down an established connection
	// mid-stream.
	KindReset
	// KindGoAway is a graceful server GOAWAY: in-flight streams finish,
	// but the connection accepts no new requests.
	KindGoAway
	// KindStaleOrigin is a stale or misconfigured origin set: the server
	// advertised a hostname its edge no longer serves, so reuse attempts
	// bounce with 421 Misdirected Request (the §5.3 fail-open path).
	KindStaleOrigin
	// KindLogRestart is a telemetry-pipeline restart that loses the
	// per-connection bookkeeping accumulated so far (arrival orders keep
	// counting on the wire, but the collector starts over).
	KindLogRestart

	numKinds
)

var kindNames = [numKinds]string{
	KindDNSFail:     "dnsfail",
	KindDNSTimeout:  "dnstimeout",
	KindTLSFail:     "tlsfail",
	KindReset:       "reset",
	KindGoAway:      "goaway",
	KindStaleOrigin: "stale",
	KindLogRestart:  "logrestart",
}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Injected fault errors. They are sentinel values so retry layers can
// classify failures with errors.Is.
var (
	ErrDNSServFail  = errors.New("faults: injected DNS SERVFAIL")
	ErrDNSTimeout   = errors.New("faults: injected DNS timeout")
	ErrTLSHandshake = errors.New("faults: injected TLS handshake failure")
	ErrConnReset    = errors.New("faults: injected connection reset")
)

// Plan is a fault plan: one independent probability per fault kind plus
// a packet-loss rate. The zero value disables everything.
type Plan struct {
	// DNSFailProb is the per-lookup SERVFAIL probability.
	DNSFailProb float64
	// DNSTimeoutProb is the per-lookup resolver-timeout probability.
	DNSTimeoutProb float64
	// TLSFailProb is the per-connection-attempt handshake failure
	// probability.
	TLSFailProb float64
	// ResetProb is the per-opportunity probability of a TCP reset on an
	// established connection (per pool request in the simulator, per
	// byte-budget window on a live chaos connection).
	ResetProb float64
	// GoAwayProb is the per-opportunity probability of a graceful server
	// GOAWAY on an established connection.
	GoAwayProb float64
	// StaleOriginProb is the per-reuse-attempt probability that the
	// authoritative check fails even though the origin set (or DNS)
	// authorized the reuse, producing a 421.
	StaleOriginProb float64
	// LogRestartProb is the per-opportunity probability of a telemetry
	// restart losing per-connection log state.
	LogRestartProb float64
	// LossPct is the packet-loss percentage (0–100) driving latency
	// inflation via InflationFactor.
	LossPct float64
}

// Zero reports whether the plan injects nothing.
func (p Plan) Zero() bool { return p == Plan{} }

// prob returns the probability configured for kind k.
func (p Plan) prob(k Kind) float64 {
	switch k {
	case KindDNSFail:
		return p.DNSFailProb
	case KindDNSTimeout:
		return p.DNSTimeoutProb
	case KindTLSFail:
		return p.TLSFailProb
	case KindReset:
		return p.ResetProb
	case KindGoAway:
		return p.GoAwayProb
	case KindStaleOrigin:
		return p.StaleOriginProb
	case KindLogRestart:
		return p.LogRestartProb
	default:
		return 0
	}
}

// Validate checks every probability is in [0, 1] and the loss rate is a
// percentage in [0, 100).
func (p Plan) Validate() error {
	for k := Kind(0); k < numKinds; k++ {
		if pr := p.prob(k); pr < 0 || pr > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0, 1]", k, pr)
		}
	}
	if p.LossPct < 0 || p.LossPct >= 100 {
		return fmt.Errorf("faults: loss percentage %v outside [0, 100)", p.LossPct)
	}
	return nil
}

// String renders the plan in ParsePlan's spec syntax, omitting zero
// entries; the zero plan renders as "none".
func (p Plan) String() string {
	var parts []string
	for k := Kind(0); k < numKinds; k++ {
		if pr := p.prob(k); pr > 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", k, pr))
		}
	}
	if p.LossPct > 0 {
		parts = append(parts, fmt.Sprintf("loss=%v", p.LossPct))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses a comma-separated key=value spec, e.g.
// "reset=0.05,dnsfail=0.01,stale=0.02,loss=2". Keys are the Kind names
// plus "loss"; an empty spec or "none" is the zero plan.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return p, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return Plan{}, fmt.Errorf("faults: bad spec entry %q (want key=value)", part)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return Plan{}, fmt.Errorf("faults: bad value in %q: %v", part, err)
		}
		switch kv[0] {
		case "dnsfail":
			p.DNSFailProb = v
		case "dnstimeout":
			p.DNSTimeoutProb = v
		case "tlsfail":
			p.TLSFailProb = v
		case "reset":
			p.ResetProb = v
		case "goaway":
			p.GoAwayProb = v
		case "stale":
			p.StaleOriginProb = v
		case "logrestart":
			p.LogRestartProb = v
		case "loss":
			p.LossPct = v
		default:
			return Plan{}, fmt.Errorf("faults: unknown fault %q", kv[0])
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// InflationFactor converts a packet-loss percentage into a latency
// multiplier: each lost packet is recovered after a retransmission
// timeout of roughly three RTTs, so the expected per-phase cost grows by
// 3·p/(1−p) for loss rate p. 0% loss returns exactly 1.
func InflationFactor(lossPct float64) float64 {
	p := lossPct / 100
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		p = 0.99
	}
	return 1 + 3*p/(1-p)
}

// An Injector rolls fault decisions from a Plan against its own seeded
// RNG stream, counting rolls and hits per kind. It is safe for
// concurrent use, but deterministic replay requires callers to roll in
// a deterministic order (the simulators are single-threaded per run).
type Injector struct {
	plan Plan

	mu    sync.Mutex
	rng   *rand.Rand
	rolls [numKinds]int64
	hits  [numKinds]int64
}

// NewInjector returns an injector for the plan. A zero plan yields an
// inert injector that never draws from its RNG.
func NewInjector(p Plan, seed int64) *Injector {
	return &Injector{plan: p, rng: rand.New(rand.NewSource(seed))}
}

// Plan returns the injector's fault plan.
func (in *Injector) Plan() Plan { return in.plan }

// Enabled reports whether the injector can inject anything.
func (in *Injector) Enabled() bool { return in != nil && !in.plan.Zero() }

// Hit rolls the plan's probability for kind k, recording the roll.
// Inert injectors (nil, or zero plan) never draw and always miss, so a
// disabled fault layer consumes no randomness at all.
func (in *Injector) Hit(k Kind) bool {
	if !in.Enabled() {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rolls[k]++
	// Draw even for zero-probability kinds so that the stream consumed
	// per opportunity is fixed and tweaking one knob cannot silently
	// realign every other fault in the plan.
	if in.rng.Float64() < in.plan.prob(k) {
		in.hits[k]++
		return true
	}
	return false
}

// Intn draws an integer from the injector's stream (for byte budgets
// and similar fault parameters). It returns 0 on inert injectors.
func (in *Injector) Intn(n int) int {
	if !in.Enabled() || n <= 0 {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Intn(n)
}

// Counts returns rolls and hits for kind k.
func (in *Injector) Counts(k Kind) (rolls, hits int64) {
	if in == nil {
		return 0, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rolls[k], in.hits[k]
}

// Report renders per-kind accounting, one "kind: hits/rolls" line per
// kind that was rolled at least once, sorted by kind name.
func (in *Injector) Report() string {
	if !in.Enabled() {
		return "faults: disabled"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	type row struct {
		name        string
		rolls, hits int64
	}
	var rows []row
	for k := Kind(0); k < numKinds; k++ {
		if in.rolls[k] > 0 {
			rows = append(rows, row{k.String(), in.rolls[k], in.hits[k]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	var sb strings.Builder
	fmt.Fprintf(&sb, "fault plan %s (injected/opportunities):\n", in.plan)
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-11s %d/%d\n", r.name+":", r.hits, r.rolls)
	}
	return sb.String()
}
