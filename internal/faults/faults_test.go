package faults

import (
	"errors"
	"math"
	"net/netip"
	"testing"

	"respectorigin/internal/browser"
)

func TestParsePlanRoundTrip(t *testing.T) {
	specs := []string{
		"reset=0.05,dnsfail=0.01,stale=0.02,loss=2",
		"goaway=0.1",
		"dnstimeout=0.5,tlsfail=1,logrestart=0.25",
		"none",
		"",
	}
	for _, spec := range specs {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", spec, err)
		}
		q, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("ParsePlan(%q.String()=%q): %v", spec, p.String(), err)
		}
		if p != q {
			t.Fatalf("round trip of %q: %+v != %+v", spec, p, q)
		}
	}
}

func TestParsePlanRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"reset",          // no value
		"reset=x",        // non-numeric
		"bogus=0.1",      // unknown kind
		"reset=1.5",      // probability out of range
		"loss=100",       // loss must stay below 100
		"dnsfail=-0.1",   // negative probability
		"reset=0.1,,x=1", // malformed entry
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted a bad spec", spec)
		}
	}
}

func TestZeroPlanIsInert(t *testing.T) {
	var p Plan
	if !p.Zero() {
		t.Fatal("zero value not Zero()")
	}
	inj := NewInjector(p, 1)
	if inj.Enabled() {
		t.Fatal("zero-plan injector reports Enabled")
	}
	for k := Kind(0); k < numKinds; k++ {
		for i := 0; i < 100; i++ {
			if inj.Hit(k) {
				t.Fatalf("zero-plan injector hit %v", k)
			}
		}
		if rolls, hits := inj.Counts(k); rolls != 0 || hits != 0 {
			t.Fatalf("zero-plan injector recorded %d rolls / %d hits for %v", rolls, hits, k)
		}
	}
	if inj.Intn(1000) != 0 {
		t.Fatal("zero-plan injector drew from its RNG via Intn")
	}
	var nilInj *Injector
	if nilInj.Enabled() || nilInj.Hit(KindReset) {
		t.Fatal("nil injector not inert")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	plan := Plan{DNSFailProb: 0.1, ResetProb: 0.3, StaleOriginProb: 0.05, TLSFailProb: 0.2}
	sequence := func(seed int64) []bool {
		inj := NewInjector(plan, seed)
		var out []bool
		for i := 0; i < 500; i++ {
			out = append(out, inj.Hit(Kind(i%int(numKinds))))
		}
		return out
	}
	a, b := sequence(99), sequence(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("roll %d differs for identical seeds", i)
		}
	}
	c := sequence(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("hit sequence identical across different seeds")
	}
}

func TestHitDrawsEvenAtZeroProbability(t *testing.T) {
	// A plan with one nonzero knob must still consume one draw per roll
	// of every kind, so enabling a second knob later cannot realign the
	// stream of the first.
	onlyReset := NewInjector(Plan{ResetProb: 0.5}, 7)
	both := NewInjector(Plan{ResetProb: 0.5, GoAwayProb: 0}, 7)
	for i := 0; i < 200; i++ {
		_ = onlyReset.Hit(KindGoAway) // zero-probability kind: must draw anyway
		_ = both.Hit(KindGoAway)
		if onlyReset.Hit(KindReset) != both.Hit(KindReset) {
			t.Fatalf("roll %d: reset stream realigned by a zero-probability roll", i)
		}
	}
	if rolls, _ := onlyReset.Counts(KindGoAway); rolls != 200 {
		t.Fatalf("zero-probability kind recorded %d rolls, want 200", rolls)
	}
}

func TestInflationFactor(t *testing.T) {
	if got := InflationFactor(0); got != 1 {
		t.Fatalf("InflationFactor(0) = %v, want exactly 1", got)
	}
	if got := InflationFactor(-3); got != 1 {
		t.Fatalf("InflationFactor(-3) = %v, want 1", got)
	}
	// 1% loss: 1 + 3·0.01/0.99.
	want := 1 + 3*0.01/0.99
	if got := InflationFactor(1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("InflationFactor(1) = %v, want %v", got, want)
	}
	if InflationFactor(5) <= InflationFactor(1) {
		t.Fatal("inflation not monotone in loss")
	}
}

// memEnv is a minimal deterministic environment for Env tests.
type memEnv struct{ addr netip.Addr }

func (m memEnv) Lookup(host string) ([]netip.Addr, error) { return []netip.Addr{m.addr}, nil }
func (m memEnv) CertSANs(string, netip.Addr) []string     { return []string{"*.example"} }
func (m memEnv) OriginSet(string, netip.Addr) []string    { return []string{"https://a.example"} }
func (m memEnv) Reachable(string, netip.Addr) bool        { return true }

func TestEnvInjectsAtEachBoundary(t *testing.T) {
	inner := memEnv{addr: netip.MustParseAddr("192.0.2.1")}
	env := &Env{Inner: inner, Inj: NewInjector(Plan{
		DNSFailProb:     1,
		StaleOriginProb: 1,
	}, 3)}
	if _, err := env.Lookup("a.example"); !errors.Is(err, ErrDNSServFail) {
		t.Fatalf("Lookup error = %v, want ErrDNSServFail", err)
	}
	if env.Reachable("a.example", inner.addr) {
		t.Fatal("Reachable true despite certain stale-origin plan")
	}
	// Pass-throughs must not be touched by the plan.
	if got := env.CertSANs("a.example", inner.addr); len(got) != 1 || got[0] != "*.example" {
		t.Fatalf("CertSANs perturbed: %v", got)
	}
	if got := env.OriginSet("a.example", inner.addr); len(got) != 1 {
		t.Fatalf("OriginSet perturbed: %v", got)
	}

	env2 := &Env{Inner: inner, Inj: NewInjector(Plan{DNSTimeoutProb: 1}, 3)}
	if _, err := env2.Lookup("a.example"); !errors.Is(err, ErrDNSTimeout) {
		t.Fatalf("Lookup error = %v, want ErrDNSTimeout", err)
	}
	env3 := &Env{Inner: inner, Inj: NewInjector(Plan{TLSFailProb: 1}, 3)}
	if err := env3.ConnectFail("a.example", inner.addr); !errors.Is(err, ErrTLSHandshake) {
		t.Fatalf("ConnectFail = %v, want ErrTLSHandshake", err)
	}
	var _ browser.Environment = env // compile-time shape check for the test double
}

func TestEnvZeroPlanPassesThrough(t *testing.T) {
	inner := memEnv{addr: netip.MustParseAddr("192.0.2.1")}
	env := &Env{Inner: inner, Inj: NewInjector(Plan{}, 3)}
	if _, err := env.Lookup("a.example"); err != nil {
		t.Fatalf("Lookup under zero plan: %v", err)
	}
	if !env.Reachable("a.example", inner.addr) {
		t.Fatal("Reachable false under zero plan")
	}
	if err := env.ConnectFail("a.example", inner.addr); err != nil {
		t.Fatalf("ConnectFail under zero plan: %v", err)
	}
}

func TestReportCountsRolls(t *testing.T) {
	inj := NewInjector(Plan{ResetProb: 1}, 5)
	for i := 0; i < 10; i++ {
		inj.Hit(KindReset)
	}
	rolls, hits := inj.Counts(KindReset)
	if rolls != 10 || hits != 10 {
		t.Fatalf("Counts = %d rolls / %d hits, want 10/10", rolls, hits)
	}
	rep := inj.Report()
	if rep == "" || rep == "faults: disabled" {
		t.Fatalf("Report() = %q", rep)
	}
}
