package report

import (
	"reflect"
	"testing"

	"respectorigin/internal/cache"
	"respectorigin/internal/core"
	"respectorigin/internal/netsim"
	"respectorigin/internal/webgen"
)

// The sweep's h2 entry must equal the legacy WarmCold replay exactly:
// the protocol thread is pure plumbing on the default path.
func TestProtoSweepH2EntryMatchesWarmCold(t *testing.T) {
	c := testCorpus(t, 300)
	opts := cache.Options{}
	sweep := c.ProtoSweep(3, opts)
	if len(sweep) != len(core.Protocols) {
		t.Fatalf("sweep has %d entries, want %d", len(sweep), len(core.Protocols))
	}
	legacy := c.WarmCold(3, opts)
	for _, pc := range sweep {
		if pc.Proto != core.ProtoH2 {
			continue
		}
		if !reflect.DeepEqual(pc.Visits, legacy) {
			t.Fatalf("h2 sweep entry differs from WarmCold:\n got %+v\nwant %+v", pc.Visits, legacy)
		}
		return
	}
	t.Fatal("sweep has no h2 entry")
}

// The rendered sweep table is byte-identical for any worker count —
// the acceptance gate for -proto-sweep determinism.
func TestProtoSweepTableWorkerInvariance(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Sites = 300
	ds, err := webgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := cache.Options{}
	p := netsim.DefaultParams()
	want := ProtoSweepTable(NewCorpusWorkers(ds, 1).ProtoSweep(2, opts), p, "inv")
	if want == "" {
		t.Fatal("empty sweep table")
	}
	for _, w := range []int{4, 16} {
		got := ProtoSweepTable(NewCorpusWorkers(ds, w).ProtoSweep(2, opts), p, "inv")
		if got != want {
			t.Errorf("workers=%d sweep table differs from workers=1:\n%s\nvs\n%s", w, got, want)
		}
	}
}

// The warm h3 visit must beat the warm h1 visit on arithmetic setup
// cost (0-RTT plus token sharing versus keep-alive with full TLS), and
// the deployment-level sweep must stay consistent per visit.
func TestProtoSweepFrontierOrdering(t *testing.T) {
	c := testCorpus(t, 300)
	sweep := c.ProtoSweep(2, cache.Options{})
	p := netsim.DefaultParams()
	byProto := map[core.Protocol]core.VisitCosts{}
	for _, pc := range sweep {
		for v, vc := range pc.Visits {
			if !vc.Consistent() {
				t.Fatalf("%s visit %d: inconsistent ledger %+v", pc.Proto, v+1, vc)
			}
		}
		byProto[pc.Proto] = pc.Visits[len(pc.Visits)-1]
	}
	h1 := protoSetupMs(byProto[core.ProtoH1], core.ProtoH1, p)
	h2 := protoSetupMs(byProto[core.ProtoH2], core.ProtoH2, p)
	h3 := protoSetupMs(byProto[core.ProtoH3], core.ProtoH3, p)
	if !(h3 < h2 && h2 < h1) {
		t.Fatalf("warm setup cost not ordered h3 < h2 < h1: h1=%.1f h2=%.1f h3=%.1f", h1, h2, h3)
	}
	if byProto[core.ProtoH3].ZeroRTT == 0 {
		t.Fatal("warm h3 visit achieved no 0-RTT handshakes")
	}
}
