package report

import (
	"strings"
	"testing"

	"respectorigin/internal/loadgen"
)

func TestUnderLoadTable(t *testing.T) {
	cfg := loadgen.DefaultConfig()
	cfg.Users = 1500
	cfg.PoPs = 2
	cfg.PoPServers = 2
	results, err := loadgen.Sweep(cfg, []float64{0.5, 8})
	if err != nil {
		t.Fatal(err)
	}
	txt := UnderLoadTable(results)
	if !strings.Contains(txt, "Serving under load") || !strings.Contains(txt, "p99.9") {
		t.Fatalf("table missing headings:\n%s", txt)
	}
	if got := strings.Count(strings.TrimRight(txt, "\n"), "\n"); got != 4 {
		t.Fatalf("table has %d lines, want 4 (title + 2 headers + 2 rows):\n%s", got+1, txt)
	}
	// The high-load row must show a worse tail than the light-load row.
	if results[1].P999Ms <= results[0].P999Ms {
		t.Errorf("p99.9 %.1f at 8x not above %.1f at 0.5x", results[1].P999Ms, results[0].P999Ms)
	}
	if results[1].SLOAttainment >= results[0].SLOAttainment {
		t.Errorf("SLO %.3f at 8x not below %.3f at 0.5x",
			results[1].SLOAttainment, results[0].SLOAttainment)
	}
}
