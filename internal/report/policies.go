package report

import (
	"fmt"
	"net/netip"
	"strings"

	"respectorigin/internal/browser"
	"respectorigin/internal/har"
	"respectorigin/internal/measure"
	"respectorigin/internal/parallel"
)

// pageEnv adapts one recorded page into a browser.Environment: DNS
// answers come from the recorded answer sets, certificates from the
// recorded SANs, and — when originDeployed — every server advertises
// the page's same-AS hostnames in its ORIGIN frame with an ideally
// extended certificate, the §4 best-case deployment.
type pageEnv struct {
	hosts          map[string]*pageHost
	byASN          map[uint32][]string
	originDeployed bool
	lookups        int
}

type pageHost struct {
	addrs  []netip.Addr
	asn    uint32
	sans   []string
	secure bool
}

func newPageEnv(p *har.Page, originDeployed bool) *pageEnv {
	env := &pageEnv{
		hosts:          map[string]*pageHost{},
		byASN:          map[uint32][]string{},
		originDeployed: originDeployed,
	}
	for i := range p.Entries {
		e := &p.Entries[i]
		h, ok := env.hosts[e.Host]
		if !ok {
			h = &pageHost{asn: e.ServerASN}
			env.hosts[e.Host] = h
			env.byASN[e.ServerASN] = append(env.byASN[e.ServerASN], e.Host)
		}
		if len(e.DNSAnswer) > 0 && len(h.addrs) == 0 {
			h.addrs = e.DNSAnswer
		}
		if len(h.addrs) == 0 && e.ServerIP.IsValid() {
			h.addrs = []netip.Addr{e.ServerIP}
		}
		if len(e.CertSANs) > 0 && len(h.sans) == 0 {
			h.sans = e.CertSANs
		}
		if e.Secure {
			h.secure = true
		}
	}
	return env
}

func (env *pageEnv) Lookup(host string) ([]netip.Addr, error) {
	env.lookups++
	h, ok := env.hosts[host]
	if !ok {
		return nil, fmt.Errorf("report: unknown host %s", host)
	}
	return h.addrs, nil
}

func (env *pageEnv) CertSANs(host string, ip netip.Addr) []string {
	h, ok := env.hosts[host]
	if !ok {
		return nil
	}
	if env.originDeployed {
		// The §4.3 least-effort deployment: the certificate covers the
		// host plus every same-service hostname.
		return append(append([]string(nil), host), env.byASN[h.asn]...)
	}
	if len(h.sans) > 0 {
		return h.sans
	}
	return []string{host}
}

func (env *pageEnv) OriginSet(host string, ip netip.Addr) []string {
	if !env.originDeployed {
		return nil
	}
	h, ok := env.hosts[host]
	if !ok {
		return nil
	}
	return env.byASN[h.asn]
}

func (env *pageEnv) Reachable(host string, ip netip.Addr) bool {
	target, ok := env.hosts[host]
	if !ok {
		return false
	}
	// The model's core assumption (§4.1): every server in an AS can
	// serve all content of that AS.
	for _, sibling := range env.byASN[target.asn] {
		for _, a := range env.hosts[sibling].addrs {
			if a == ip {
				return true
			}
		}
	}
	return false
}

// PolicyStats summarizes one policy over the corpus.
type PolicyStats struct {
	Policy            string
	OriginDeployed    bool
	MedianConnections float64
	MedianDNSQueries  float64
}

// PolicyComparison replays every page's host sequence through the three
// real client policies — Chromium, Firefox, Firefox+ORIGIN (the last
// against the §4 ideal ORIGIN deployment) — and reports per-policy
// connection and DNS medians. It cross-validates the analytic model of
// Figure 3 with the executable policy implementations from §2.3.
func (c *Corpus) PolicyComparison() ([]PolicyStats, string) {
	configs := []struct {
		name     string
		policy   browser.Policy
		deployed bool
	}{
		{"chromium (exact IP)", browser.PolicyChromium, false},
		{"firefox (transitive IP)", browser.PolicyFirefox, false},
		{"firefox+origin, ideal deployment", browser.PolicyFirefoxOrigin, true},
	}
	var out []PolicyStats
	for _, cfgEntry := range configs {
		// Each page replay is independent: a private environment and
		// browser per page, so the policy loop parallelizes cleanly.
		perPage := parallel.Map(len(c.DS.Pages), c.workers, func(i int) [2]float64 {
			p := c.DS.Pages[i]
			env := newPageEnv(p, cfgEntry.deployed)
			b := browser.New(cfgEntry.policy)
			for _, host := range p.Hosts() {
				b.Request(env, host)
			}
			return [2]float64{float64(b.TotalNewConn), float64(b.TotalDNS)}
		})
		conns := make([]float64, 0, len(perPage))
		dns := make([]float64, 0, len(perPage))
		for _, v := range perPage {
			conns = append(conns, v[0])
			dns = append(dns, v[1])
		}
		out = append(out, PolicyStats{
			Policy:            cfgEntry.name,
			OriginDeployed:    cfgEntry.deployed,
			MedianConnections: measure.Median(conns),
			MedianDNSQueries:  measure.Median(dns),
		})
	}
	var sb strings.Builder
	sb.WriteString("Policy cross-validation: real §2.3 client policies replayed over the corpus\n")
	sb.WriteString("  policy                                  median-conns  median-dns\n")
	for _, s := range out {
		fmt.Fprintf(&sb, "  %-40s %11.0f %11.0f\n", s.Policy, s.MedianConnections, s.MedianDNSQueries)
	}
	sb.WriteString("  (compare with Figure 3: the executable policies land where the model predicts)\n")
	return out, sb.String()
}
