package report

import (
	"bytes"
	"strings"
	"testing"

	"respectorigin/internal/cdn"
	"respectorigin/internal/core"
	"respectorigin/internal/faults"
	"respectorigin/internal/obs"
	"respectorigin/internal/webgen"
)

func smallDataset(t *testing.T) *webgen.Dataset {
	t.Helper()
	cfg := webgen.DefaultConfig()
	cfg.Sites = 80
	cfg.Seed = 7
	ds, err := webgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestFunnelCrossChecksFigure3 is the tentpole's correctness anchor:
// the funnel rebuilt from a crawl trace must reproduce the Figure 3
// inputs exactly — same measured DNS/TLS sums, same ideal-IP and
// ideal-ORIGIN predictions — because the page_end events carry the
// §4.2 counts and the per-event streams sum to the same tallies.
func TestFunnelCrossChecksFigure3(t *testing.T) {
	ds := smallDataset(t)
	trace := obs.NewTrace()
	for _, p := range ds.Pages {
		core.EmitPageEvents(trace, p)
	}
	f := FunnelFromEvents(trace.Events())

	if f.Pages != len(ds.Pages) || f.SummaryPages != len(ds.Pages) {
		t.Fatalf("pages = %d/%d, want %d", f.Pages, f.SummaryPages, len(ds.Pages))
	}

	c := NewCorpus(ds)
	var dns, tls, ip, origin int
	for _, pc := range c.Counts() {
		dns += pc.MeasuredDNS
		tls += pc.MeasuredTLS
		ip += pc.IdealIP
		origin += pc.IdealOrigin
	}
	if f.MeasuredDNS != dns || f.MeasuredTLS != tls {
		t.Errorf("summary sums: DNS=%d TLS=%d, want %d and %d", f.MeasuredDNS, f.MeasuredTLS, dns, tls)
	}
	if f.IdealIP != ip || f.IdealOrigin != origin {
		t.Errorf("ideal sums: IP=%d ORIGIN=%d, want %d and %d", f.IdealIP, f.IdealOrigin, ip, origin)
	}
	// The per-event stream must agree with the page_end summaries: one
	// dns_query event per measured query, one tls_handshake per
	// measured handshake (including the race-effect extras).
	if f.DNSQueries != dns {
		t.Errorf("dns_query events = %d, want %d", f.DNSQueries, dns)
	}
	if f.TLSHandshakes != tls {
		t.Errorf("tls_handshake events = %d, want %d", f.TLSHandshakes, tls)
	}

	text := f.TableString()
	if !strings.Contains(text, "Model cross-check") {
		t.Errorf("crawl funnel missing model section:\n%s", text)
	}
	if !strings.Contains(text, "ideal ORIGIN") {
		t.Errorf("funnel missing ORIGIN row:\n%s", text)
	}
}

// TestFunnelNDJSONRoundTrip checks that a funnel computed from a trace
// written to NDJSON and read back is identical to one computed from
// the in-memory events.
func TestFunnelNDJSONRoundTrip(t *testing.T) {
	ds := smallDataset(t)
	trace := obs.NewTrace()
	for _, p := range ds.Pages {
		core.EmitPageEvents(trace, p)
	}
	var buf bytes.Buffer
	if err := trace.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := FunnelFromEvents(evs), FunnelFromEvents(trace.Events()); got != want {
		t.Errorf("round-tripped funnel differs:\n got %+v\nwant %+v", got, want)
	}
}

// TestDeploymentTraceFunnel traces a faulted deployment run and checks
// the funnel reflects the experiment's own accounting, and that two
// identical runs serialize to byte-identical NDJSON.
func TestDeploymentTraceFunnel(t *testing.T) {
	run := func() (*obs.Trace, *obs.Metrics, *Deployment) {
		d := NewDeploymentWithFaults(150, 3, faults.Plan{ResetProb: 0.05, DNSFailProb: 0.02}, 2)
		trace := obs.NewTrace()
		metrics := obs.NewMetrics()
		d.Exp.SetRecorder(obs.Multi(trace, metrics))
		d.Exp.RunDay(0)
		return trace, metrics, d
	}
	trace, metrics, _ := run()

	f := FunnelFromEvents(trace.Events())
	if got := metrics.Get("cdn.visits"); int64(f.Pages) != got {
		t.Errorf("funnel pages = %d, cdn.visits = %d", f.Pages, got)
	}
	if f.SummaryPages != 0 {
		t.Errorf("deployment trace carried %d §4.2 summaries, want 0", f.SummaryPages)
	}
	if int64(f.Retries) != metrics.Get("cdn.retries") {
		t.Errorf("retry events = %d, cdn.retries = %d", f.Retries, metrics.Get("cdn.retries"))
	}
	if int64(f.Misdirected421) != metrics.Get("cdn.misdirected_421") {
		t.Errorf("421 events = %d, cdn.misdirected_421 = %d", f.Misdirected421, metrics.Get("cdn.misdirected_421"))
	}
	if strings.Contains(f.TableString(), "Model cross-check") {
		t.Error("deployment funnel printed a model section with no summaries")
	}

	var a, b bytes.Buffer
	if err := trace.WriteNDJSON(&a); err != nil {
		t.Fatal(err)
	}
	trace2, _, _ := run()
	if err := trace2.WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical traced runs serialized differently")
	}
}

// TestRecorderDoesNotPerturbDeployment is the byte-identity guarantee
// at the unit level: the same deployment run with and without a
// recorder must emit identical log records and visit results.
func TestRecorderDoesNotPerturbDeployment(t *testing.T) {
	runDay := func(rec obs.Recorder) []cdn.LogRecord {
		d := NewDeploymentWithFaults(120, 5, faults.Plan{ResetProb: 0.03}, 1)
		if rec != nil {
			d.Exp.SetRecorder(rec)
		}
		d.Exp.RunDay(0)
		return d.CDN.Pipeline().Records()
	}
	plain := runDay(nil)
	traced := runDay(obs.Multi(obs.NewTrace(), obs.NewMetrics()))
	if len(plain) != len(traced) {
		t.Fatalf("record counts differ: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, plain[i], traced[i])
		}
	}
}
