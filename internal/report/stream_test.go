package report

import (
	"bytes"
	"testing"

	"respectorigin/internal/cache"
	"respectorigin/internal/core"
	"respectorigin/internal/corpus"
	"respectorigin/internal/webgen"
)

// encodeDS writes a dataset's pages in the given corpus format.
func encodeDS(t *testing.T, ds *webgen.Dataset, f corpus.Format) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := corpus.NewWriter(&buf, f)
	for _, p := range ds.Pages {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// A corpus read back through either encoding must analyze identically
// to the in-memory dataset it came from — the property that makes
// cmd/report over crawl output equivalent to generating inline.
func TestNewCorpusFromReaderMatchesInMemory(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Sites = 150
	ds, err := webgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The baseline rebuilds the ASDB from pages exactly as the reader
	// path does, isolating the serialization under test.
	base := NewCorpusWorkers(&webgen.Dataset{Pages: ds.Pages, Failures: ds.Failures, ASDB: webgen.RebuildASDB(ds.Pages)}, 2)
	_, wantT1 := base.Table1(5)
	_, wantT2 := base.Table2(10)
	_, wantHL := base.Headline()

	for _, f := range []corpus.Format{corpus.FormatNDJSON, corpus.FormatColumnar} {
		raw := encodeDS(t, ds, f)
		c, err := NewCorpusFromReader(corpus.NewReader(bytes.NewReader(raw), f), ds.Failures, 2)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if _, got := c.Table1(5); got != wantT1 {
			t.Fatalf("%s: Table1 differs from in-memory corpus", f)
		}
		if _, got := c.Table2(10); got != wantT2 {
			t.Fatalf("%s: Table2 differs from in-memory corpus", f)
		}
		if _, got := c.Headline(); got != wantHL {
			t.Fatalf("%s: Headline differs from in-memory corpus", f)
		}
	}
}

// The streaming replay fold must equal the in-memory map-reduce: same
// pages, same per-visit ledgers, for every protocol and both formats.
func TestReplayReaderSequenceMatchesWarmCold(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Sites = 120
	ds, err := webgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCorpusWorkers(ds, 4)
	opts := cache.Options{}
	const revisits = 2
	for _, f := range []corpus.Format{corpus.FormatNDJSON, corpus.FormatColumnar} {
		raw := encodeDS(t, ds, f)
		for _, proto := range core.Protocols {
			want := c.WarmColdProto(revisits, opts, proto)
			got, pages, err := core.ReplayReaderSequence(corpus.NewReader(bytes.NewReader(raw), f), revisits, opts, proto)
			if err != nil {
				t.Fatalf("%s/%s: %v", f, proto, err)
			}
			if pages != len(ds.Pages) {
				t.Fatalf("%s/%s: streamed %d pages, corpus has %d", f, proto, pages, len(ds.Pages))
			}
			if len(got) != len(want) {
				t.Fatalf("%s/%s: %d visits, want %d", f, proto, len(got), len(want))
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s/%s visit %d: streaming ledger %+v differs from map-reduce %+v",
						f, proto, v+1, got[v], want[v])
				}
			}
		}
	}
}
