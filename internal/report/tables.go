// Package report regenerates every table and figure of the paper's
// evaluation from a corpus (internal/webgen) and a deployment
// simulation (internal/cdn). Each Table*/Figure* function returns a
// structured result plus a formatted text rendering, so the same code
// backs the cmd/report binary, the benchmark harness, and EXPERIMENTS.md.
//
// Every per-page pass runs as a parallel map-reduce
// (internal/parallel): pages fold into shard-local accumulators whose
// associative merges recombine in page order, so output text is
// byte-identical to a sequential pass for any worker count.
package report

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"respectorigin/internal/asn"
	"respectorigin/internal/core"
	"respectorigin/internal/har"
	"respectorigin/internal/measure"
	"respectorigin/internal/parallel"
	"respectorigin/internal/webgen"
)

// Corpus wraps a generated dataset with memoized per-page analyses.
type Corpus struct {
	DS *webgen.Dataset

	workers int
	counts  []core.PageCounts
	plans   []core.CertPlan

	summaryOnce sync.Once
	summary     core.CertPlanSummary
}

// NewCorpus builds a Corpus with the default worker count (GOMAXPROCS).
func NewCorpus(ds *webgen.Dataset) *Corpus { return NewCorpusWorkers(ds, 0) }

// NewCorpusWorkers builds a Corpus whose per-page passes — the memoized
// §4.2 counts and §4.3 cert plans computed here, and every later
// table/figure pass — fan out across workers goroutines (≤ 0 selects
// GOMAXPROCS). Results are identical for every worker count.
func NewCorpusWorkers(ds *webgen.Dataset, workers int) *Corpus {
	c := &Corpus{DS: ds, workers: parallel.Normalize(workers)}
	c.counts = parallel.Map(len(ds.Pages), c.workers, func(i int) core.PageCounts {
		return core.CountPage(ds.Pages[i])
	})
	c.plans = parallel.Map(len(ds.Pages), c.workers, func(i int) core.CertPlan {
		return core.PlanCertChanges(ds.Pages[i])
	})
	return c
}

// Counts returns the memoized per-page §4.2 counts.
func (c *Corpus) Counts() []core.PageCounts { return c.counts }

// Plans returns the memoized per-page §4.3 certificate plans.
func (c *Corpus) Plans() []core.CertPlan { return c.plans }

func (c *Corpus) orgOf(a uint32) string { return c.DS.ASDB.Org(asn.ASN(a)) }

// mapPages runs a per-page corpus pass as a parallel map-reduce.
func mapPages[A any](c *Corpus, newAcc func() A, fold func(A, *har.Page) A, merge func(A, A) A) A {
	return parallel.MapReduce(c.DS.Pages, c.workers, newAcc, fold, merge)
}

// countPages is mapPages specialized to the commonest shape: one
// measure.Counter fed per page.
func countPages(c *Corpus, fold func(*measure.Counter, *har.Page)) *measure.Counter {
	return mapPages(c, measure.NewCounter,
		func(cnt *measure.Counter, p *har.Page) *measure.Counter {
			fold(cnt, p)
			return cnt
		},
		func(a, b *measure.Counter) *measure.Counter {
			a.Merge(b)
			return a
		})
}

// certSummary memoizes the corpus-level §4.3 summary behind Table 8,
// Figures 4-5 and the headline, computed as a parallel map-reduce over
// the per-page plans.
func (c *Corpus) certSummary() core.CertPlanSummary {
	c.summaryOnce.Do(func() {
		c.summary = parallel.Fold(len(c.plans), c.workers,
			func() core.CertPlanSummary { return core.CertPlanSummary{} },
			func(s core.CertPlanSummary, i int) core.CertPlanSummary {
				s.AddPlan(&c.plans[i])
				return s
			},
			func(a, b core.CertPlanSummary) core.CertPlanSummary {
				a.Merge(b)
				return a
			})
	})
	return c.summary
}

// Table1Row is one popularity bucket of Table 1.
type Table1Row struct {
	Bucket     string
	Success    int
	MedianReqs float64
	MedianPLT  float64
	MedianDNS  float64
	MedianTLS  float64
}

// table1Acc accumulates per-bucket and total samples; shard merges
// concatenate bucket-wise, preserving page order.
type table1Acc struct {
	buckets []table1Samples
	total   table1Samples
}

type table1Samples struct {
	reqs, plt, dns, tls []float64
}

func (s *table1Samples) add(p *har.Page) {
	s.reqs = append(s.reqs, float64(len(p.Entries)))
	s.plt = append(s.plt, p.PLT())
	s.dns = append(s.dns, float64(p.DNSQueries()))
	s.tls = append(s.tls, float64(p.TLSConnections()))
}

func (s *table1Samples) merge(o *table1Samples) {
	s.reqs = append(s.reqs, o.reqs...)
	s.plt = append(s.plt, o.plt...)
	s.dns = append(s.dns, o.dns...)
	s.tls = append(s.tls, o.tls...)
}

// Table1 reproduces Table 1: per-rank-bucket successes and medians.
func (c *Corpus) Table1(buckets int) ([]Table1Row, string) {
	if buckets <= 0 {
		buckets = 5
	}
	maxRank := 0
	for _, p := range c.DS.Pages {
		if p.Rank > maxRank {
			maxRank = p.Rank
		}
	}
	size := (maxRank + buckets - 1) / buckets
	if size == 0 {
		size = 1
	}
	acc := mapPages(c,
		func() *table1Acc { return &table1Acc{buckets: make([]table1Samples, buckets)} },
		func(a *table1Acc, p *har.Page) *table1Acc {
			b := (p.Rank - 1) / size
			if b >= buckets {
				b = buckets - 1
			}
			a.buckets[b].add(p)
			a.total.add(p)
			return a
		},
		func(a, b *table1Acc) *table1Acc {
			for i := range a.buckets {
				a.buckets[i].merge(&b.buckets[i])
			}
			a.total.merge(&b.total)
			return a
		})
	var rows []Table1Row
	var sb strings.Builder
	sb.WriteString("Table 1: successful collection with median page-level attributes\n")
	sb.WriteString("Rank bucket        Success   #Reqs   PLT(ms)   #DNS  #TLS\n")
	for b := 0; b < buckets; b++ {
		a := acc.buckets[b]
		row := Table1Row{
			Bucket:     fmt.Sprintf("%d-%d", b*size+1, (b+1)*size),
			Success:    len(a.reqs),
			MedianReqs: measure.Median(a.reqs),
			MedianPLT:  measure.Median(a.plt),
			MedianDNS:  measure.Median(a.dns),
			MedianTLS:  measure.Median(a.tls),
		}
		rows = append(rows, row)
		fmt.Fprintf(&sb, "%-18s %7d   %5.0f   %7.0f   %4.0f  %4.0f\n",
			row.Bucket, row.Success, row.MedianReqs, row.MedianPLT, row.MedianDNS, row.MedianTLS)
	}
	fmt.Fprintf(&sb, "%-18s %7d   %5.0f   %7.0f   %4.0f  %4.0f   (failures: %d)\n",
		"Total", len(c.DS.Pages), measure.Median(acc.total.reqs), measure.Median(acc.total.plt),
		measure.Median(acc.total.dns), measure.Median(acc.total.tls), c.DS.Failures)
	return rows, sb.String()
}

// Table2 reproduces Table 2: top destination ASes by requests.
func (c *Corpus) Table2(n int) ([]measure.RankedEntry, string) {
	cnt := countPages(c, func(cnt *measure.Counter, p *har.Page) {
		for i := range p.Entries {
			e := &p.Entries[i]
			org := c.orgOf(e.ServerASN)
			cnt.Add(fmt.Sprintf("AS%d %s", e.ServerASN, org), 1)
		}
	})
	top := cnt.Top(n)
	return top, cnt.TableString("Table 2: top destination ASes for resource requests", n)
}

// table3Acc accumulates the protocol counter plus the secure share.
type table3Acc struct {
	cnt           *measure.Counter
	secure, total int64
}

// Table3 reproduces Table 3: request protocol mix and secure share.
func (c *Corpus) Table3() (map[string]int64, float64, string) {
	acc := mapPages(c,
		func() *table3Acc { return &table3Acc{cnt: measure.NewCounter()} },
		func(a *table3Acc, p *har.Page) *table3Acc {
			for i := range p.Entries {
				a.cnt.Add(p.Entries[i].Protocol, 1)
				a.total++
				if p.Entries[i].Secure {
					a.secure++
				}
			}
			return a
		},
		func(a, b *table3Acc) *table3Acc {
			a.cnt.Merge(b.cnt)
			a.secure += b.secure
			a.total += b.total
			return a
		})
	out := map[string]int64{}
	for _, e := range acc.cnt.Top(0) {
		out[e.Key] = e.Count
	}
	secShare := 100 * float64(acc.secure) / float64(acc.total)
	s := acc.cnt.TableString("Table 3: requests by application protocol", 0) +
		fmt.Sprintf("Secure share: %.2f%% (%d of %d)\n", secShare, acc.secure, acc.total)
	return out, secShare, s
}

// Table4 reproduces Table 4: top certificate issuers by validations.
func (c *Corpus) Table4(n int) ([]measure.RankedEntry, string) {
	cnt := countPages(c, func(cnt *measure.Counter, p *har.Page) {
		for i := range p.Entries {
			e := &p.Entries[i]
			if e.NewTLS && e.CertIssuer != "" {
				cnt.Add(e.CertIssuer, 1)
			}
		}
	})
	return cnt.Top(n), cnt.TableString("Table 4: top certificate issuers by validations", n)
}

// Table5 reproduces Table 5: requests by content type.
func (c *Corpus) Table5(n int) ([]measure.RankedEntry, string) {
	cnt := countPages(c, func(cnt *measure.Counter, p *har.Page) {
		for i := range p.Entries {
			cnt.Add(p.Entries[i].MimeType, 1)
		}
	})
	return cnt.Top(n), cnt.TableString("Table 5: requests by content type", n)
}

// Table6Row is one AS section of Table 6.
type Table6Row struct {
	AS    string
	Types []measure.RankedEntry
}

// table6Acc accumulates request counts per AS and content-type counts
// per AS.
type table6Acc struct {
	asCnt   *measure.Counter
	typeCnt map[string]*measure.Counter
}

// Table6 reproduces Table 6: top content types per top AS.
func (c *Corpus) Table6(topAS, topTypes int) ([]Table6Row, string) {
	acc := mapPages(c,
		func() *table6Acc {
			return &table6Acc{asCnt: measure.NewCounter(), typeCnt: map[string]*measure.Counter{}}
		},
		func(a *table6Acc, p *har.Page) *table6Acc {
			for i := range p.Entries {
				e := &p.Entries[i]
				org := c.orgOf(e.ServerASN)
				a.asCnt.Add(org, 1)
				tc, ok := a.typeCnt[org]
				if !ok {
					tc = measure.NewCounter()
					a.typeCnt[org] = tc
				}
				tc.Add(e.MimeType, 1)
			}
			return a
		},
		func(a, b *table6Acc) *table6Acc {
			a.asCnt.Merge(b.asCnt)
			for org, tc := range b.typeCnt {
				mine, ok := a.typeCnt[org]
				if !ok {
					a.typeCnt[org] = tc
					continue
				}
				mine.Merge(tc)
			}
			return a
		})
	var rows []Table6Row
	var sb strings.Builder
	sb.WriteString("Table 6: top content types per top AS\n")
	for _, as := range acc.asCnt.Top(topAS) {
		row := Table6Row{AS: as.Key, Types: acc.typeCnt[as.Key].Top(topTypes)}
		rows = append(rows, row)
		fmt.Fprintf(&sb, "%s (%.2f%% of requests)\n", as.Key, as.Share)
		for _, tr := range row.Types {
			fmt.Fprintf(&sb, "    %-32s %10d  %6.2f%%\n", tr.Key, tr.Count, tr.Share)
		}
	}
	return rows, sb.String()
}

// Table7 reproduces Table 7: top subresource hostnames.
func (c *Corpus) Table7(n int) ([]measure.RankedEntry, string) {
	cnt := countPages(c, func(cnt *measure.Counter, p *har.Page) {
		for i := 1; i < len(p.Entries); i++ { // subresources only
			cnt.Add(p.Entries[i].Host, 1)
		}
	})
	return cnt.Top(n), cnt.TableString("Table 7: top subresource hostnames", n)
}

// Table8 reproduces Table 8: ranked SAN-size distribution, measured vs
// ideal after the §4.3 modifications.
func (c *Corpus) Table8(n int) ([]core.SANRankRow, string) {
	rows := core.SANRankTable(c.certSummary(), n)
	var sb strings.Builder
	sb.WriteString("Table 8: SAN-size ranking, measured vs ideal\n")
	sb.WriteString("Rank  Measured(size,count)    Ideal(size,count)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%4d  size=%-4d n=%-10d size=%-4d n=%d\n",
			r.Rank, r.MeasuredSize, r.MeasuredCount, r.IdealSize, r.IdealCount)
	}
	return rows, sb.String()
}

// Table9 reproduces Table 9: top providers and the most frequently
// needed hostnames to include in their customers' certificates.
func (c *Corpus) Table9(topProviders, topHosts int) ([]core.ProviderChange, string) {
	usage := parallel.Fold(len(c.DS.Pages), c.workers, core.NewProviderUsage,
		func(u *core.ProviderUsage, i int) *core.ProviderUsage {
			u.AddSite(c.orgOf(c.DS.Pages[i].Entries[0].ServerASN), &c.plans[i])
			return u
		},
		func(a, b *core.ProviderUsage) *core.ProviderUsage {
			a.Merge(b)
			return a
		})
	changes := usage.Rank(topProviders, topHosts)
	var sb strings.Builder
	sb.WriteString("Table 9: top hostnames to include per top provider\n")
	for _, pc := range changes {
		fmt.Fprintf(&sb, "%s (%d sites)\n", pc.Provider, pc.SiteCount)
		for _, h := range pc.TopHosts {
			fmt.Fprintf(&sb, "    %-36s %8d  %6.2f%% of its sites\n", h.Key, h.Count, h.Share)
		}
	}
	return changes, sb.String()
}

// headlineFromCounts computes the §7 headline reductions.
type Headline struct {
	MedianMeasuredDNS   float64
	MedianMeasuredTLS   float64
	MedianIdealIP       float64
	MedianIdealOrigin   float64
	DNSReductionPct     float64
	TLSReductionPct     float64
	NoChangeSitesPct    float64
	AtMostTenChangesPct float64
}

// Headline computes the paper's headline numbers.
func (c *Corpus) Headline() (Headline, string) {
	var dns, tls, ip, origin []float64
	for _, pc := range c.counts {
		dns = append(dns, float64(pc.MeasuredDNS))
		tls = append(tls, float64(pc.MeasuredTLS))
		ip = append(ip, float64(pc.IdealIP))
		origin = append(origin, float64(pc.IdealOrigin))
	}
	s := c.certSummary()
	h := Headline{
		MedianMeasuredDNS: measure.Median(dns),
		MedianMeasuredTLS: measure.Median(tls),
		MedianIdealIP:     measure.Median(ip),
		MedianIdealOrigin: measure.Median(origin),
	}
	h.DNSReductionPct = measure.ReductionPct(h.MedianMeasuredDNS, h.MedianIdealOrigin)
	h.TLSReductionPct = measure.ReductionPct(h.MedianMeasuredTLS, h.MedianIdealOrigin)
	if s.Sites > 0 {
		h.NoChangeSitesPct = 100 * float64(s.NoChangeSites) / float64(s.Sites)
		h.AtMostTenChangesPct = 100 * float64(s.AtMostTenChanges) / float64(s.Sites)
	}
	txt := fmt.Sprintf(`Headline (paper §7 / §4):
  median DNS queries:      measured %.0f -> ideal ORIGIN %.0f  (-%.1f%%; paper -64.28%%)
  median TLS connections:  measured %.0f -> ideal ORIGIN %.0f  (-%.1f%%; paper -68.75%%)
  median ideal IP:         %.0f (paper 13)
  sites needing no cert changes: %.1f%% (paper 62.41%%)
  sites coalescing with <=10 changes: %.1f%% (paper 92.66%%)
`,
		h.MedianMeasuredDNS, h.MedianIdealOrigin, h.DNSReductionPct,
		h.MedianMeasuredTLS, h.MedianIdealOrigin, h.TLSReductionPct,
		h.MedianIdealIP, h.NoChangeSitesPct, h.AtMostTenChangesPct)
	return h, txt
}

// sortedCopy is a small helper for deterministic output in figures.
func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}
