package report

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"respectorigin/internal/cdn"
	"respectorigin/internal/faults"
	"respectorigin/internal/measure"
	"respectorigin/internal/netsim"
)

// Figure9DeploymentData carries the Figure 9 (bottom) PLT CDFs.
type Figure9DeploymentData struct {
	Control    []measure.CDFPoint
	Experiment []measure.CDFPoint

	MedianControl    float64
	MedianExperiment float64
	ImprovementPct   float64
}

// Figure9Deployment reproduces Figure 9 (bottom): measured PLTs at the
// deployment CDN with ORIGIN support. Each sample zone's page load time
// is the base page time plus the third-party fetch critical path; when
// the visit coalesces, the third-party DNS + TCP + TLS setup disappears
// from that path. The result matches the paper's observation: ≈1%
// median improvement — "no worse", not "faster" (§6.1).
func (d *Deployment) Figure9Deployment(seed int64) (Figure9DeploymentData, string) {
	d.CDN.EnterPhaseOrigin(isolatedAddr)
	defer d.CDN.ExitExperiment()

	rng := rand.New(rand.NewSource(seed))
	params := netsim.DefaultParams()
	if inj := d.Exp.Injector(); inj.Enabled() {
		// Degraded networks stretch every setup phase on the critical
		// path by the loss-driven retransmission penalty.
		params.LatencyScale = faults.InflationFactor(inj.Plan().LossPct)
	}
	net := netsim.New(params, seed)

	var ctl, exp []float64
	for _, z := range d.Exp.SampleZones {
		// Base PLT: lognormal around the paper's ~5.7 s median; the
		// third-party setup is one small component of it.
		base := math.Exp(math.Log(5400) + 0.45*rng.NormFloat64())
		res := d.Exp.Visit(z, "firefox", -1)
		plt := base
		if !z.Churned {
			// Non-coalesced third-party fetches put DNS+TCP+TLS on the
			// page's critical path with some probability (the resource
			// may or may not be render-blocking).
			setup := net.DNSTime() + net.ConnectTime() + net.TLSTime(3, 1)
			onCritical := rng.Float64() < 0.30
			if res.NewThirdParty > 0 && onCritical {
				plt += setup
			}
		}
		switch z.Treatment {
		case cdn.TreatmentControl:
			ctl = append(ctl, plt)
		case cdn.TreatmentExperiment:
			exp = append(exp, plt)
		}
	}
	out := Figure9DeploymentData{
		Control:          measure.CDF(ctl),
		Experiment:       measure.CDF(exp),
		MedianControl:    measure.Median(ctl),
		MedianExperiment: measure.Median(exp),
	}
	out.ImprovementPct = measure.ReductionPct(out.MedianControl, out.MedianExperiment)
	var sb strings.Builder
	sb.WriteString("Figure 9 (bottom): measured PLTs at the deployment CDN\n")
	fmt.Fprintf(&sb, "  control median PLT:    %8.0f ms\n", out.MedianControl)
	fmt.Fprintf(&sb, "  experiment median PLT: %8.0f ms (-%.1f%%; paper ~-1%%, 'no worse')\n",
		out.MedianExperiment, out.ImprovementPct)
	return out, sb.String()
}
