package report

import (
	"fmt"
	"strings"

	"respectorigin/internal/privacy"
	"respectorigin/internal/sched"
)

// PrivacyReport runs the §6.2 privacy-exposure comparison over the
// corpus: baseline vs coalescing vs DoH/ECH vs both.
func (c *Corpus) PrivacyReport() ([]privacy.CorpusExposure, string) {
	rows := privacy.AnalyzeCorpus(c.DS.Pages, privacy.StandardScenarios())
	return rows, privacy.Report(rows)
}

// SchedulingReport runs the §6.1 delivery-ordering comparison on a
// representative page workload derived from the corpus: the resources
// of the first page with ≥ 12 entries, prioritized by content type.
func (c *Corpus) SchedulingReport(connections int) (sched.Comparison, string) {
	var resources []sched.Resource
	for _, p := range c.DS.Pages {
		if len(p.Entries) < 12 {
			continue
		}
		for i := range p.Entries {
			e := &p.Entries[i]
			resources = append(resources, sched.Resource{
				ID:       uint32(2*i + 1),
				Priority: priorityForMime(e.MimeType),
				Bytes:    float64(e.BodySize),
			})
			if len(resources) == 24 {
				break
			}
		}
		break
	}
	cmp := sched.Compare(resources, sched.ParallelParams{
		Connections:       connections,
		BandwidthKBps:     6250,
		HandshakeMs:       150,
		HandshakeJitterMs: 180,
		SlowStartPenalty:  2,
		Seed:              1,
	})
	var sb strings.Builder
	sb.WriteString(cmp.Report())
	fmt.Fprintf(&sb, "  (workload: %d resources over %d parallel connections vs 1 coalesced)\n",
		len(resources), connections)
	return cmp, sb.String()
}

// priorityForMime maps content types to render priorities (0 = most
// critical).
func priorityForMime(mime string) int {
	switch {
	case mime == "text/html":
		return 0
	case mime == "text/css":
		return 1
	case strings.Contains(mime, "javascript"):
		return 2
	case strings.HasPrefix(mime, "font/"):
		return 3
	default:
		return 4
	}
}
