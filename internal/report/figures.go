package report

import (
	"fmt"
	"strings"

	"respectorigin/internal/core"
	"respectorigin/internal/har"
	"respectorigin/internal/measure"
	"respectorigin/internal/parallel"
)

// Figure1 reproduces Figure 1: the frequency distribution and CDF of
// unique ASes contacted per page.
func (c *Corpus) Figure1() (hist map[int]int, cdf []measure.CDFPoint, text string) {
	xs := parallel.Map(len(c.DS.Pages), c.workers, func(i int) int {
		return len(c.DS.Pages[i].UniqueASNs())
	})
	fs := make([]float64, len(xs))
	for i, n := range xs {
		fs[i] = float64(n)
	}
	hist = measure.Histogram(xs)
	cdf = measure.CDF(fs)
	var sb strings.Builder
	sb.WriteString("Figure 1: unique ASes contacted per page\n")
	total := len(xs)
	for n := 1; n <= 12; n++ {
		fmt.Fprintf(&sb, "  %2d ASes: %5.1f%%  (cdf %.2f)\n",
			n, 100*float64(hist[n])/float64(total), measure.CDFAt(cdf, float64(n)))
	}
	fmt.Fprintf(&sb, "  median: %.0f (paper: ~6 for 50%% of pages)\n", measure.Median(fs))
	return hist, cdf, sb.String()
}

// Figure2 reproduces Figure 2: one page's waterfall before and after
// ORIGIN-frame reconstruction.
func (c *Corpus) Figure2(pageIdx, width int) string {
	if pageIdx < 0 || pageIdx >= len(c.DS.Pages) {
		pageIdx = 0
	}
	p := c.DS.Pages[pageIdx]
	q := core.Reconstruct(p, core.ModeOrigin, 0)
	var sb strings.Builder
	sb.WriteString("Figure 2: timeline reconstruction (top: measured, bottom: coalesced)\n\n")
	sb.WriteString(har.Waterfall(p, width))
	sb.WriteString("\n")
	sb.WriteString(har.Waterfall(q, width))
	fmt.Fprintf(&sb, "\nTime saved: %.0f ms (%.1f%%)\n", p.PLT()-q.PLT(),
		measure.ReductionPct(p.PLT(), q.PLT()))
	return sb.String()
}

// Figure3Data carries the four CDFs of Figure 3.
type Figure3Data struct {
	MeasuredDNS []measure.CDFPoint
	MeasuredTLS []measure.CDFPoint
	IdealIP     []measure.CDFPoint
	IdealOrigin []measure.CDFPoint
}

// Figure3 reproduces Figure 3: CDFs of per-page DNS queries and TLS
// connections, measured vs ideal IP vs ideal ORIGIN coalescing.
func (c *Corpus) Figure3() (Figure3Data, string) {
	var dns, tls, ip, origin []float64
	for _, pc := range c.counts {
		dns = append(dns, float64(pc.MeasuredDNS))
		tls = append(tls, float64(pc.MeasuredTLS))
		ip = append(ip, float64(pc.IdealIP))
		origin = append(origin, float64(pc.IdealOrigin))
	}
	d := Figure3Data{
		MeasuredDNS: measure.CDF(dns),
		MeasuredTLS: measure.CDF(tls),
		IdealIP:     measure.CDF(ip),
		IdealOrigin: measure.CDF(origin),
	}
	var sb strings.Builder
	sb.WriteString("Figure 3: DNS queries / TLS connections per page\n")
	sb.WriteString(measure.FormatCDF("  measured DNS", dns) + "\n")
	sb.WriteString(measure.FormatCDF("  measured TLS", tls) + "\n")
	sb.WriteString(measure.FormatCDF("  ideal IP coalescing", ip) + "\n")
	sb.WriteString(measure.FormatCDF("  ideal ORIGIN coalescing", origin) + "\n")
	return d, sb.String()
}

// Figure4 reproduces Figure 4: CDFs of SAN counts in existing vs ideal
// certificates.
func (c *Corpus) Figure4() (existing, ideal []measure.CDFPoint, text string) {
	s := c.certSummary()
	ex := make([]float64, len(s.ExistingSizes))
	id := make([]float64, len(s.IdealSizes))
	for i := range s.ExistingSizes {
		ex[i] = float64(s.ExistingSizes[i])
		id[i] = float64(s.IdealSizes[i])
	}
	var sb strings.Builder
	sb.WriteString("Figure 4: DNS SAN names per certificate (existing vs ideal)\n")
	sb.WriteString(measure.FormatCDF("  existing certificates", ex) + "\n")
	sb.WriteString(measure.FormatCDF("  ideal certificates", id) + "\n")
	fmt.Fprintf(&sb, "  median shift: %.0f -> %.0f (paper: 2 -> 3); p75 %.0f -> %.0f (paper: 3 -> 7)\n",
		measure.Median(ex), measure.Median(id), measure.Quantile(ex, 0.75), measure.Quantile(id, 0.75))
	return measure.CDF(ex), measure.CDF(id), sb.String()
}

// Figure5Point is one site in the Figure 5 scatter.
type Figure5Point struct {
	RankByExisting int
	Existing       int
	Added          int
	Ideal          int
}

// Figure5 reproduces Figure 5: sites ranked by existing SAN size with
// the per-site additions and resulting ideal sizes.
func (c *Corpus) Figure5() ([]Figure5Point, string) {
	s := c.certSummary()
	pts := make([]Figure5Point, len(s.ExistingSizes))
	for i := range pts {
		pts[i] = Figure5Point{
			Existing: s.ExistingSizes[i],
			Added:    s.AdditionSizes[i],
			Ideal:    s.IdealSizes[i],
		}
	}
	// Rank by existing size descending.
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	for i := range pts {
		pts[i].RankByExisting = 0
	}
	sortPointsByExisting(pts)
	for i := range pts {
		pts[i].RankByExisting = i + 1
	}
	var sb strings.Builder
	sb.WriteString("Figure 5: tail distribution of SAN entries (ranked by existing size)\n")
	fmt.Fprintf(&sb, "  sites: %d; no-change sites: %d (%.1f%%; paper 62.41%%)\n",
		s.Sites, s.NoChangeSites, 100*float64(s.NoChangeSites)/float64(maxi(s.Sites, 1)))
	fmt.Fprintf(&sb, "  >250-SAN certificates: existing %d -> ideal %d (paper: 230 -> 529)\n",
		s.Over250Existing, s.Over250Ideal)
	fmt.Fprintf(&sb, "  largest ideal certificate: %d SANs (paper: 1951)\n", s.MaxIdeal)
	for _, r := range []int{0, 9, 99, 999} {
		if r < len(pts) {
			fmt.Fprintf(&sb, "  rank %4d: existing=%d added=%d ideal=%d\n",
				r+1, pts[r].Existing, pts[r].Added, pts[r].Ideal)
		}
	}
	return pts, sb.String()
}

func sortPointsByExisting(pts []Figure5Point) {
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j].Existing > pts[j-1].Existing; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Figure9ModelData carries the PLT CDFs of Figure 9 (top).
type Figure9ModelData struct {
	Measured    []measure.CDFPoint
	IdealIP     []measure.CDFPoint
	IdealOrigin []measure.CDFPoint
	CDNOrigin   []measure.CDFPoint

	MedianMeasured  float64
	MedianIP        float64
	MedianOrigin    float64
	MedianCDNOrigin float64
}

// Figure9Model reproduces Figure 9 (top): model-predicted PLT CDFs for
// measured, ideal IP, ideal ORIGIN, and ORIGIN-at-one-CDN coalescing.
// cdnASN identifies the deployment CDN (Cloudflare in the paper).
func (c *Corpus) Figure9Model(cdnASN uint32) (Figure9ModelData, string) {
	// The three Reconstruct passes per page dominate report time; run
	// them as one parallel map over pages.
	type plts struct{ meas, ip, origin, cdnOnly float64 }
	perPage := parallel.Map(len(c.DS.Pages), c.workers, func(i int) plts {
		p := c.DS.Pages[i]
		return plts{
			meas:    p.PLT(),
			ip:      core.Reconstruct(p, core.ModeIP, 0).PLT(),
			origin:  core.Reconstruct(p, core.ModeOrigin, 0).PLT(),
			cdnOnly: core.Reconstruct(p, core.ModeOriginCDN, cdnASN).PLT(),
		}
	})
	meas := make([]float64, 0, len(perPage))
	ip := make([]float64, 0, len(perPage))
	origin := make([]float64, 0, len(perPage))
	cdnOnly := make([]float64, 0, len(perPage))
	for _, v := range perPage {
		meas = append(meas, v.meas)
		ip = append(ip, v.ip)
		origin = append(origin, v.origin)
		cdnOnly = append(cdnOnly, v.cdnOnly)
	}
	d := Figure9ModelData{
		Measured:        measure.CDF(meas),
		IdealIP:         measure.CDF(ip),
		IdealOrigin:     measure.CDF(origin),
		CDNOrigin:       measure.CDF(cdnOnly),
		MedianMeasured:  measure.Median(meas),
		MedianIP:        measure.Median(ip),
		MedianOrigin:    measure.Median(origin),
		MedianCDNOrigin: measure.Median(cdnOnly),
	}
	var sb strings.Builder
	sb.WriteString("Figure 9 (top): model-predicted page load times\n")
	fmt.Fprintf(&sb, "  measured median PLT:            %8.0f ms\n", d.MedianMeasured)
	fmt.Fprintf(&sb, "  ideal IP coalescing:            %8.0f ms (-%.1f%%; paper ~-10%%)\n",
		d.MedianIP, measure.ReductionPct(d.MedianMeasured, d.MedianIP))
	fmt.Fprintf(&sb, "  ideal ORIGIN coalescing:        %8.0f ms (-%.1f%%; paper ~-27%%)\n",
		d.MedianOrigin, measure.ReductionPct(d.MedianMeasured, d.MedianOrigin))
	fmt.Fprintf(&sb, "  ORIGIN at deployment CDN only:  %8.0f ms (-%.1f%%; paper ~-1.5%%)\n",
		d.MedianCDNOrigin, measure.ReductionPct(d.MedianMeasured, d.MedianCDNOrigin))
	return d, sb.String()
}
