package report

import (
	"strings"
	"testing"

	"respectorigin/internal/cdn"
	"respectorigin/internal/webgen"
)

func testCorpus(t *testing.T, sites int) *Corpus {
	t.Helper()
	cfg := webgen.DefaultConfig()
	cfg.Sites = sites
	ds, err := webgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewCorpus(ds)
}

func TestTable1(t *testing.T) {
	c := testCorpus(t, 1000)
	rows, txt := c.Table1(5)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.Success
		if r.MedianReqs <= 0 || r.MedianPLT <= 0 {
			t.Errorf("empty bucket row: %+v", r)
		}
	}
	if total != len(c.DS.Pages) {
		t.Errorf("bucket totals %d != pages %d", total, len(c.DS.Pages))
	}
	if !strings.Contains(txt, "Table 1") {
		t.Error("missing title")
	}
	// Popularity trend: top bucket sees more requests than the bottom.
	if rows[0].MedianReqs <= rows[4].MedianReqs-15 {
		t.Errorf("request trend inverted: %v vs %v", rows[0].MedianReqs, rows[4].MedianReqs)
	}
}

func TestTable2TopASes(t *testing.T) {
	c := testCorpus(t, 1000)
	top, txt := c.Table2(10)
	if len(top) != 10 {
		t.Fatalf("top = %d", len(top))
	}
	if !strings.Contains(top[0].Key, "AS15169") {
		t.Errorf("top AS = %s, want Google AS15169", top[0].Key)
	}
	var cum float64
	for _, e := range top {
		cum += e.Share
	}
	if cum < 45 || cum > 80 {
		t.Errorf("top-10 share = %.1f%%, paper 63.68%%", cum)
	}
	_ = txt
}

func TestTable3Protocols(t *testing.T) {
	c := testCorpus(t, 500)
	counts, secure, txt := c.Table3()
	if counts["h2"] == 0 || counts["http/1.1"] == 0 {
		t.Error("protocol counts empty")
	}
	if secure < 97 || secure > 100 {
		t.Errorf("secure share = %.2f", secure)
	}
	if !strings.Contains(txt, "Secure share") {
		t.Error("missing secure share")
	}
}

func TestTable4Issuers(t *testing.T) {
	c := testCorpus(t, 500)
	top, _ := c.Table4(10)
	if len(top) == 0 {
		t.Fatal("no issuers")
	}
	if top[0].Key != "Google Trust Services CA 101" {
		t.Errorf("top issuer = %s", top[0].Key)
	}
}

func TestTable5ContentTypes(t *testing.T) {
	c := testCorpus(t, 500)
	top, _ := c.Table5(12)
	found := false
	for _, e := range top[:3] {
		if e.Key == "application/javascript" {
			found = true
		}
	}
	if !found {
		t.Errorf("javascript not in top-3: %v", top[:3])
	}
}

func TestTable6PerASTypes(t *testing.T) {
	c := testCorpus(t, 500)
	rows, txt := c.Table6(3, 4)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Types) != 4 {
			t.Errorf("AS %s has %d types", r.AS, len(r.Types))
		}
	}
	if !strings.Contains(txt, "Google") {
		t.Error("Google missing from Table 6")
	}
}

func TestTable7Hostnames(t *testing.T) {
	c := testCorpus(t, 1000)
	top, _ := c.Table7(10)
	names := map[string]bool{}
	for _, e := range top {
		names[e.Key] = true
	}
	if !names["fonts.gstatic.com"] && !names["www.google-analytics.com"] {
		t.Errorf("popular hostnames missing from top-10: %v", top)
	}
}

func TestTable8And9(t *testing.T) {
	c := testCorpus(t, 1000)
	rows, txt := c.Table8(10)
	if len(rows) != 10 {
		t.Fatalf("table 8 rows = %d", len(rows))
	}
	if rows[0].MeasuredSize != 2 {
		t.Errorf("most common measured SAN size = %d, paper 2", rows[0].MeasuredSize)
	}
	if !strings.Contains(txt, "Rank") {
		t.Error("table 8 format")
	}
	changes, txt9 := c.Table9(3, 5)
	if len(changes) != 3 || changes[0].Provider != "Cloudflare" {
		t.Errorf("table 9 providers: %+v", changes)
	}
	if !strings.Contains(txt9, "Cloudflare") {
		t.Error("table 9 format")
	}
}

func TestFigure1(t *testing.T) {
	c := testCorpus(t, 800)
	hist, cdf, txt := c.Figure1()
	if len(hist) == 0 || len(cdf) == 0 {
		t.Fatal("empty figure 1")
	}
	if cdf[len(cdf)-1].P != 1 {
		t.Error("CDF does not reach 1")
	}
	if !strings.Contains(txt, "median") {
		t.Error("figure 1 format")
	}
}

func TestFigure2(t *testing.T) {
	c := testCorpus(t, 50)
	txt := c.Figure2(0, 70)
	if !strings.Contains(txt, "Time saved") {
		t.Error("figure 2 missing time saved")
	}
	// Out-of-range index falls back to 0.
	if c.Figure2(-5, 70) == "" {
		t.Error("figure 2 fallback")
	}
}

func TestFigure3Ordering(t *testing.T) {
	c := testCorpus(t, 1000)
	d, txt := c.Figure3()
	if len(d.MeasuredDNS) == 0 || len(d.IdealOrigin) == 0 {
		t.Fatal("empty CDFs")
	}
	// The ORIGIN CDF dominates (shifts left of) the measured TLS CDF.
	atFive := func(pts []float64) float64 { return pts[0] }
	_ = atFive
	if !strings.Contains(txt, "ideal ORIGIN") {
		t.Error("figure 3 format")
	}
}

func TestFigure4And5(t *testing.T) {
	c := testCorpus(t, 1000)
	ex, id, txt := c.Figure4()
	if len(ex) == 0 || len(id) == 0 {
		t.Fatal("empty figure 4")
	}
	if !strings.Contains(txt, "median shift") {
		t.Error("figure 4 format")
	}
	pts, txt5 := c.Figure5()
	if len(pts) != len(c.DS.Pages) {
		t.Fatalf("figure 5 points = %d", len(pts))
	}
	// Ranked by existing size descending.
	for i := 1; i < len(pts); i++ {
		if pts[i].Existing > pts[i-1].Existing {
			t.Fatal("figure 5 not sorted")
		}
	}
	if !strings.Contains(txt5, "largest ideal certificate") {
		t.Error("figure 5 format")
	}
}

func TestFigure9Model(t *testing.T) {
	c := testCorpus(t, 400)
	d, txt := c.Figure9Model(13335)
	if d.MedianOrigin > d.MedianMeasured {
		t.Errorf("ORIGIN PLT median %.0f worse than measured %.0f", d.MedianOrigin, d.MedianMeasured)
	}
	if d.MedianIP > d.MedianMeasured {
		t.Errorf("IP PLT median worse than measured")
	}
	// ORIGIN improves more than CDN-only ORIGIN; the CDN-only line is a
	// modest improvement (paper: ~1.5% vs ~27%).
	if d.MedianOrigin > d.MedianCDNOrigin {
		t.Errorf("full ORIGIN (%.0f) worse than CDN-only (%.0f)", d.MedianOrigin, d.MedianCDNOrigin)
	}
	if !strings.Contains(txt, "deployment CDN") {
		t.Error("figure 9 format")
	}
}

func TestHeadlineReport(t *testing.T) {
	c := testCorpus(t, 1500)
	h, txt := c.Headline()
	if h.MedianIdealOrigin >= h.MedianMeasuredTLS {
		t.Errorf("headline: origin %.0f not better than measured %.0f",
			h.MedianIdealOrigin, h.MedianMeasuredTLS)
	}
	if h.DNSReductionPct < 30 || h.TLSReductionPct < 40 {
		t.Errorf("reductions too small: %+v", h)
	}
	if !strings.Contains(txt, "paper") {
		t.Error("headline format")
	}
}

func TestDeploymentFigures(t *testing.T) {
	d := NewDeployment(800, 3)
	f6 := d.Figure6()
	if !strings.Contains(f6, d.CDN.ThirdParty) || !strings.Contains(f6, d.CDN.ControlName) {
		t.Error("figure 6 missing domains")
	}

	ctl, exp, txt := d.Figure7(cdn.PhaseIP)
	if exp.Frac(0) <= ctl.Frac(0) {
		t.Errorf("7a: experiment zero-share %.2f not above control %.2f", exp.Frac(0), ctl.Frac(0))
	}
	if !strings.Contains(txt, "7a") {
		t.Error("figure 7a format")
	}

	ctl2, exp2, txt2 := d.Figure7(cdn.PhaseOrigin)
	if exp2.Frac(0) <= ctl2.Frac(0) {
		t.Error("7b: experiment not better than control")
	}
	if !strings.Contains(txt2, "7b") {
		t.Error("figure 7b format")
	}

	_, ptxt := d.PassiveIP(3)
	if !strings.Contains(ptxt, "reduction") {
		t.Error("passive format")
	}

	c, e, txt8 := d.Figure8(14, 4, 10)
	if len(c.Values) != 14 || len(e.Values) != 14 {
		t.Fatal("figure 8 series length")
	}
	during := e.Mean(4, 10) / nz(c.Mean(4, 10))
	if during > 0.75 {
		t.Errorf("figure 8 deployment ratio = %.2f", during)
	}
	if !strings.Contains(txt8, "deployment") {
		t.Error("figure 8 format")
	}
}

func TestFigure9Deployment(t *testing.T) {
	d := NewDeployment(1000, 5)
	data, txt := d.Figure9Deployment(5)
	if data.MedianControl <= 0 || data.MedianExperiment <= 0 {
		t.Fatal("empty figure 9 deployment")
	}
	// The paper's key qualitative result: coalescing is 'no worse' and
	// at most a minor improvement at a single CDN.
	if data.ImprovementPct < -4 || data.ImprovementPct > 12 {
		t.Errorf("deployment PLT improvement = %.1f%%, paper ≈1%%", data.ImprovementPct)
	}
	if !strings.Contains(txt, "no worse") {
		t.Error("figure 9 deployment format")
	}
}

func TestPrivacyReportIntegration(t *testing.T) {
	c := testCorpus(t, 300)
	rows, txt := c.PrivacyReport()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].MedianLeakedHosts >= rows[0].MedianLeakedHosts {
		t.Error("coalescing did not reduce leaked hosts")
	}
	if !strings.Contains(txt, "Privacy exposure") {
		t.Error("privacy report format")
	}
}

func TestSchedulingReportIntegration(t *testing.T) {
	c := testCorpus(t, 100)
	cmp, txt := c.SchedulingReport(6)
	if cmp.CoalescedInversions != 0 {
		t.Errorf("coalesced inversions = %d", cmp.CoalescedInversions)
	}
	if cmp.ParallelInversions == 0 {
		t.Error("parallel produced no inversions")
	}
	if !strings.Contains(txt, "Scheduling comparison") {
		t.Error("scheduling report format")
	}
}

func TestPolicyComparisonCrossValidatesModel(t *testing.T) {
	c := testCorpus(t, 800)
	stats, txt := c.PolicyComparison()
	if len(stats) != 3 {
		t.Fatalf("stats = %d", len(stats))
	}
	chromium, firefox, origin := stats[0], stats[1], stats[2]
	// Ordering: ORIGIN < firefox <= chromium.
	if origin.MedianConnections >= firefox.MedianConnections {
		t.Errorf("origin conns %.0f not below firefox %.0f",
			origin.MedianConnections, firefox.MedianConnections)
	}
	if firefox.MedianConnections > chromium.MedianConnections {
		t.Errorf("firefox conns %.0f above chromium %.0f",
			firefox.MedianConnections, chromium.MedianConnections)
	}
	// The executable ORIGIN policy should land near the analytic
	// Figure 3 prediction (ideal origin median).
	h, _ := c.Headline()
	diff := origin.MedianConnections - h.MedianIdealOrigin
	if diff < -2.5 || diff > 2.5 {
		t.Errorf("policy origin median %.0f far from model prediction %.0f",
			origin.MedianConnections, h.MedianIdealOrigin)
	}
	if !strings.Contains(txt, "cross-validation") {
		t.Error("policy report format")
	}
}

// Every table and figure rendering must be byte-identical between a
// sequential corpus and a parallel one over the same dataset — the
// report-side half of the determinism contract (the webgen side is
// TestGenerateWorkersByteIdentical).
func TestReportParallelMatchesSequential(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Sites = 600
	ds, err := webgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq := NewCorpusWorkers(ds, 1)
	par := NewCorpusWorkers(ds, 8)

	render := func(c *Corpus) map[string]string {
		out := map[string]string{}
		_, out["table1"] = c.Table1(5)
		_, out["table2"] = c.Table2(10)
		_, _, out["table3"] = c.Table3()
		_, out["table4"] = c.Table4(10)
		_, out["table5"] = c.Table5(10)
		_, out["table6"] = c.Table6(3, 3)
		_, out["table7"] = c.Table7(10)
		_, out["table8"] = c.Table8(10)
		_, out["table9"] = c.Table9(5, 5)
		_, _, out["figure1"] = c.Figure1()
		out["figure2"] = c.Figure2(0, 60)
		_, out["figure3"] = c.Figure3()
		_, _, out["figure4"] = c.Figure4()
		_, out["figure5"] = c.Figure5()
		_, out["figure9"] = c.Figure9Model(13335)
		_, out["headline"] = c.Headline()
		_, out["policies"] = c.PolicyComparison()
		return out
	}
	a, b := render(seq), render(par)
	for name, want := range a {
		if got := b[name]; got != want {
			t.Errorf("%s differs between workers=1 and workers=8:\n--- seq ---\n%s\n--- par ---\n%s", name, want, got)
		}
	}
}
