package report

import (
	"fmt"
	"strings"

	"respectorigin/internal/loadgen"
)

// UnderLoadTable renders a sweep of open-loop serving runs as the
// under-load report: one row per offered-load point, showing how the
// latency tail, SLO attainment, and coalescing rate move as demand
// grows — the serving-side counterpart of Figure 9, where coalescing's
// value appears as handshake work the PoPs never had to queue.
func UnderLoadTable(results []loadgen.Result) string {
	var b strings.Builder
	b.WriteString("Serving under load (open-loop arrivals):\n")
	b.WriteString("  offered       p50       p90       p99     p99.9      wait    SLO%   coalesce  fresh-conns\n")
	b.WriteString("   req/s         ms        ms        ms        ms        ms\n")
	for _, r := range results {
		fmt.Fprintf(&b, "  %7.0f  %8.1f  %8.1f  %8.1f  %8.1f  %8.1f  %6.2f  %8.3f  %11d\n",
			r.OfferedRPS, r.P50Ms, r.P90Ms, r.P99Ms, r.P999Ms,
			r.MeanWaitMs, 100*r.SLOAttainment, r.CoalesceRate, r.FreshConns)
	}
	return b.String()
}
