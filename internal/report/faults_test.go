package report

import (
	"strconv"
	"strings"
	"testing"

	"respectorigin/internal/faults"
)

// TestZeroPlanDeploymentMatchesDefault: NewDeploymentWithFaults under
// the zero plan is NewDeployment, down to every rendered byte.
func TestZeroPlanDeploymentMatchesDefault(t *testing.T) {
	a := NewDeployment(120, 7)
	b := NewDeploymentWithFaults(120, 7, faults.Plan{}, 0)
	if a.Figure6() != b.Figure6() {
		t.Error("Figure 6 differs under a zero fault plan")
	}
	_, _, ta := a.Figure8(8, 2, 6)
	_, _, tb := b.Figure8(8, 2, 6)
	if ta != tb {
		t.Errorf("Figure 8 differs under a zero fault plan:\n%s\nvs\n%s", ta, tb)
	}
	if got := b.FaultReport(); got != "faults: disabled" {
		t.Errorf("FaultReport under zero plan = %q", got)
	}
}

// TestFaultSweepDeterministicAndMonotoneOpportunities pins the sweep's
// shape: same inputs render identically, the zero-rate row injects
// nothing, and higher rates inject strictly more resets.
func TestFaultSweepDeterministicAndMonotoneOpportunities(t *testing.T) {
	rates := []float64{0, 1, 5}
	a := FaultSweep(150, 3, 8, 2, 6, rates)
	if b := FaultSweep(150, 3, 8, 2, 6, rates); a != b {
		t.Errorf("sweep not deterministic:\n%s\nvs\n%s", a, b)
	}
	lines := strings.Split(strings.TrimSpace(a), "\n")
	if len(lines) != 2+len(rates) {
		t.Fatalf("sweep rendered %d lines, want %d:\n%s", len(lines), 2+len(rates), a)
	}
	var prev int64 = -1
	for i, ln := range lines[2:] {
		fields := strings.Fields(ln)
		if len(fields) != 3 {
			t.Fatalf("row %d malformed: %q", i, ln)
		}
		resets, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			t.Fatalf("row %d resets %q: %v", i, fields[2], err)
		}
		if i == 0 && resets != 0 {
			t.Errorf("zero-rate row injected %d resets", resets)
		}
		if resets <= prev && i > 0 {
			t.Errorf("row %d resets %d not above previous %d", i, resets, prev)
		}
		prev = resets
	}
}
