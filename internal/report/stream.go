package report

import (
	"respectorigin/internal/corpus"
	"respectorigin/internal/webgen"
)

// NewCorpusFromReader drains a corpus reader — a single file opened
// with corpus.Open, or shard files chained by corpus.OpenManifest —
// into an analysis Corpus. The IP→ASN database is rebuilt from the
// observed pages, exactly as the historical NDJSON -in path did, so a
// merged multi-shard corpus produces tables byte-identical to a
// single-process run. The reader is drained but not closed; failures
// is the crawl's failed-attempt count (0 when unknown).
//
// The tables and figures make repeated passes over the pages, so this
// entry point materializes them in memory; what sharding removes is
// any intermediate merged corpus file — shards stream straight off
// disk through the manifest reader into the accumulator here.
func NewCorpusFromReader(r corpus.Reader, failures, workers int) (*Corpus, error) {
	pages, err := corpus.ReadAll(r)
	if err != nil {
		return nil, err
	}
	ds := &webgen.Dataset{Pages: pages, Failures: failures, ASDB: webgen.RebuildASDB(pages)}
	return NewCorpusWorkers(ds, workers), nil
}
