package report

import (
	"strings"
	"testing"

	"respectorigin/internal/cache"
	"respectorigin/internal/webgen"
)

// TestWarmColdWorkerInvariance checks the cache-merge determinism
// contract: the corpus warm/cold replay renders byte-identically for 1,
// 4, and 16 workers, because per-page cache sequences are independent
// and ledger addition is associative and commutative.
func TestWarmColdWorkerInvariance(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Sites = 400
	ds, err := webgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := cache.Options{}
	want := SavingsTable(NewCorpusWorkers(ds, 1).WarmCold(3, opts), "inv")
	for _, w := range []int{4, 16} {
		got := SavingsTable(NewCorpusWorkers(ds, w).WarmCold(3, opts), "inv")
		if got != want {
			t.Errorf("workers=%d table differs from workers=1:\n%s\nvs\n%s", w, got, want)
		}
	}
}

// TestWarmColdSecondVisitStrictlyCheaper checks the acceptance
// criterion: with the cache on, the second visit issues strictly fewer
// DNS queries, full handshakes, and chain validations than the cold
// load, and the per-cause decomposition is exact (demand identities
// hold, so every avoided unit is attributed with no remainder).
func TestWarmColdSecondVisitStrictlyCheaper(t *testing.T) {
	c := testCorpus(t, 400)
	costs := c.WarmCold(2, cache.Options{})
	if len(costs) != 2 {
		t.Fatalf("visits = %d", len(costs))
	}
	cold, warm := costs[0], costs[1]
	if warm.DNSQueries >= cold.DNSQueries {
		t.Errorf("warm DNS queries %d not below cold %d", warm.DNSQueries, cold.DNSQueries)
	}
	if warm.FullHandshakes >= cold.FullHandshakes {
		t.Errorf("warm handshakes %d not below cold %d", warm.FullHandshakes, cold.FullHandshakes)
	}
	if warm.Validations >= cold.Validations {
		t.Errorf("warm validations %d not below cold %d", warm.Validations, cold.Validations)
	}
	if !cold.Consistent() || !warm.Consistent() {
		t.Errorf("ledger identities violated: cold=%+v warm=%+v", cold, warm)
	}
	// Demand is fixed by the page structure, so per-visit totals must
	// match; this is what makes the savings decomposition exact.
	if cold.LookupsNeeded() != warm.LookupsNeeded() {
		t.Errorf("DNS demand drifted: cold %d, warm %d", cold.LookupsNeeded(), warm.LookupsNeeded())
	}
	if cold.ConnsNeeded != warm.ConnsNeeded {
		t.Errorf("conn demand drifted: cold %d, warm %d", cold.ConnsNeeded, warm.ConnsNeeded)
	}
	table := SavingsTable(costs, "test")
	if strings.Contains(table, "MISMATCH") || strings.Contains(table, "WARNING") {
		t.Errorf("decomposition not exact:\n%s", table)
	}
	if !strings.Contains(table, "[exact]") {
		t.Errorf("missing exactness marker:\n%s", table)
	}
}

// TestWarmColdTicketsDisabledFallsBackToMemo checks that with
// resumption off the warm visit still avoids validations — via the
// chain memo — while full handshakes stay flat aside from coalescing.
func TestWarmColdTicketsDisabledFallsBackToMemo(t *testing.T) {
	c := testCorpus(t, 200)
	costs := c.WarmCold(2, cache.Options{TicketLifetimeSeconds: cache.TicketsDisabled})
	cold, warm := costs[0], costs[1]
	if warm.ResumedTLS != 0 || cold.ResumedTLS != 0 {
		t.Errorf("resumption occurred with tickets disabled: cold %d, warm %d",
			cold.ResumedTLS, warm.ResumedTLS)
	}
	if warm.CertMemoHits <= cold.CertMemoHits {
		t.Errorf("memo hits did not grow: cold %d, warm %d", cold.CertMemoHits, warm.CertMemoHits)
	}
	if warm.Validations >= cold.Validations {
		t.Errorf("warm validations %d not below cold %d", warm.Validations, cold.Validations)
	}
	if table := SavingsTable(costs, "test"); strings.Contains(table, "MISMATCH") {
		t.Errorf("decomposition not exact:\n%s", table)
	}
}
