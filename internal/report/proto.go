package report

import (
	"fmt"
	"strings"

	"respectorigin/internal/cache"
	"respectorigin/internal/core"
	"respectorigin/internal/har"
	"respectorigin/internal/measure"
	"respectorigin/internal/netsim"
)

// ProtoCosts is one protocol's warm/cold visit sequence.
type ProtoCosts struct {
	Proto  core.Protocol
	Visits []core.VisitCosts
}

// ProtoSweep replays every corpus page revisits times under each
// protocol (h1, h2, h3 — sweep order), each against a fresh per-page
// per-protocol cache, and sums the per-visit ledgers across pages. The
// three replays are independent passes over the same immutable pages,
// so the result is identical for any worker count, and the h2 entry is
// byte-identical to WarmCold (it delegates to the same replay).
func (c *Corpus) ProtoSweep(revisits int, opts cache.Options) []ProtoCosts {
	if revisits <= 0 {
		return nil
	}
	out := make([]ProtoCosts, 0, len(core.Protocols))
	for _, proto := range core.Protocols {
		out = append(out, ProtoCosts{Proto: proto, Visits: c.WarmColdProto(revisits, opts, proto)})
	}
	return out
}

// WarmColdProto is WarmCold under one explicit protocol (identical to
// WarmCold at ProtoH2 — the h2 replay is the same code path).
func (c *Corpus) WarmColdProto(revisits int, opts cache.Options, proto core.Protocol) []core.VisitCosts {
	if revisits <= 0 {
		return nil
	}
	return mapPages(c,
		func() []core.VisitCosts { return make([]core.VisitCosts, revisits) },
		func(acc []core.VisitCosts, p *har.Page) []core.VisitCosts {
			for v, vc := range core.ProtocolReplaySequence(p, revisits, opts, proto) {
				acc[v].Add(vc)
			}
			return acc
		},
		func(a, b []core.VisitCosts) []core.VisitCosts {
			for v := range a {
				a[v].Add(b[v])
			}
			return a
		})
}

// WarmColdProto is Deployment.WarmCold under one explicit protocol
// (identical to WarmCold at ProtoH2), run during the IP-coalescing
// phase with the baseline restored afterwards.
func (d *Deployment) WarmColdProto(revisits int, opts cache.Options, proto core.Protocol) []core.VisitCosts {
	d.CDN.EnterPhaseIP()
	costs := d.Exp.WarmColdProto(revisits, opts, proto)
	d.CDN.ExitExperiment()
	return costs
}

// ProtoSweep runs the deployment experiment's returning-visitor
// measurement under each protocol during the IP-coalescing phase,
// restoring baseline afterwards.
func (d *Deployment) ProtoSweep(revisits int, opts cache.Options) []ProtoCosts {
	d.CDN.EnterPhaseIP()
	out := make([]ProtoCosts, 0, len(core.Protocols))
	for _, proto := range core.Protocols {
		out = append(out, ProtoCosts{Proto: proto, Visits: d.Exp.WarmColdProto(revisits, opts, proto)})
	}
	d.CDN.ExitExperiment()
	return out
}

// protoSetupMs prices one ledger's connection setups in milliseconds of
// pure arithmetic on the network parameters — no RNG, no jitter — so
// the sweep table is deterministic by construction:
//
//	h1/h2 resumed:  TCP (1 RTT) + TLS round trips
//	h1/h2 full:     the above + certificate verification
//	h3 0-RTT:       free (ticket + token, data in the first flight)
//	h3 1-RTT:       1 RTT, +1 Retry RTT when no token covers the host,
//	                +certificate verification unless resumed
//
// Reused (coalesced) connections cost nothing by definition.
func protoSetupMs(vc core.VisitCosts, proto core.Protocol, p netsim.Params) float64 {
	rtt, verify := p.RTTMs, p.CertVerifyMs
	if proto != core.ProtoH3 {
		base := rtt + p.TLSRoundTrips*rtt
		return float64(vc.ResumedTLS)*base + float64(vc.FullHandshakes)*(base+verify)
	}
	// Decompose fresh h3 connections by (resumed, token) from the exact
	// ledger identities: AddrTokenHits + AddrValidations = fresh conns.
	zero := vc.ZeroRTT                       // resumed + token: 0 RTT
	resNoTok := vc.ResumedTLS - zero         // resumed, Retry: 2 RTT
	fullTok := vc.AddrTokenHits - zero       // full + token: 1 RTT
	fullNoTok := vc.FullHandshakes - fullTok // full, Retry: 2 RTT
	return float64(resNoTok)*2*rtt +
		float64(fullTok)*(rtt+verify) +
		float64(fullNoTok)*(2*rtt+verify)
}

// ProtoSweepTable renders a per-protocol savings decomposition: the
// per-visit ledgers for h1, h2 and h3 side by side, the arithmetic
// setup cost of each, and a frontier comparison of the three coalescing
// mechanisms the sweep isolates — ORIGIN-equivalent coalescing (reuse),
// cross-hostname H3 resumption (tickets), and shared address validation
// (tokens). DNS accounting is held identical across protocols, so every
// difference in the table is a transport effect.
func ProtoSweepTable(sweep []ProtoCosts, p netsim.Params, label string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Protocol sweep (%s):\n", label)
	if len(sweep) == 0 {
		return sb.String()
	}
	sb.WriteString("  proto  visit    dns_q  reused  resumed  full_hs  0rtt  tok_hit  addr_val   setup_ms\n")
	for _, pc := range sweep {
		for v, vc := range pc.Visits {
			fmt.Fprintf(&sb, "  %-5s  %5d %8d %7d %8d %8d %5d %8d %9d %10.1f\n",
				pc.Proto, v+1, vc.DNSQueries, vc.ReusedConns, vc.ResumedTLS,
				vc.FullHandshakes, vc.ZeroRTT, vc.AddrTokenHits, vc.AddrValidations,
				protoSetupMs(vc, pc.Proto, p))
			if !vc.Consistent() {
				fmt.Fprintf(&sb, "  WARNING: %s visit %d ledger inconsistent\n", pc.Proto, v+1)
			}
		}
	}
	// Frontier comparison on the warmest visit of each protocol.
	last := len(sweep[0].Visits) - 1
	if last < 0 {
		return sb.String()
	}
	byProto := map[core.Protocol]core.VisitCosts{}
	for _, pc := range sweep {
		if len(pc.Visits) == len(sweep[0].Visits) {
			byProto[pc.Proto] = pc.Visits[last]
		}
	}
	h1, ok1 := byProto[core.ProtoH1]
	h2, ok2 := byProto[core.ProtoH2]
	h3, ok3 := byProto[core.ProtoH3]
	if !ok1 || !ok2 || !ok3 {
		return sb.String()
	}
	c1 := protoSetupMs(h1, core.ProtoH1, p)
	c2 := protoSetupMs(h2, core.ProtoH2, p)
	c3 := protoSetupMs(h3, core.ProtoH3, p)
	fmt.Fprintf(&sb, "Coalescing frontier at visit %d (vs h1 keep-alive, %.1f ms setup):\n", last+1, c1)
	fmt.Fprintf(&sb, "  ORIGIN-equivalent coalescing (h2): %+d reused conns, setup %.1f ms (-%.1f%%)\n",
		h2.ReusedConns-h1.ReusedConns, c2, measure.ReductionPct(c1, c2))
	fmt.Fprintf(&sb, "  H3 resumption:                     %d resumed (%d 0-RTT), setup %.1f ms (-%.1f%%)\n",
		h3.ResumedTLS, h3.ZeroRTT, c3, measure.ReductionPct(c1, c3))
	fmt.Fprintf(&sb, "  shared address validation:         %d token hits avoided %d Retry RTTs (%.1f ms)\n",
		h3.AddrTokenHits, h3.AddrTokenHits, float64(h3.AddrTokenHits)*p.RTTMs)
	return sb.String()
}
