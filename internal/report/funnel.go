package report

import (
	"fmt"
	"strings"

	"respectorigin/internal/measure"
	"respectorigin/internal/obs"
)

// Funnel aggregates a trace's events into the coalescing funnel: how
// many connection setups a crawl or deployment run paid, how many
// requests rode existing connections, and how often coalescing was
// refused (421) or retried. Crawl traces additionally carry the §4.2
// model counts on their page_end events, which the funnel sums so its
// totals can be cross-checked against the Figure 3 inputs exactly.
type Funnel struct {
	Pages          int // page_start events (one per traced page load)
	DNSQueries     int
	DNSCacheHits   int // lookups served from the warm-path DNS cache
	DNSFailures    int
	TLSHandshakes  int
	TLSResumed     int // connections established via ticket resumption
	CertMemoHits   int // chain validations skipped via the memo
	ConnectFails   int
	StreamsOpened  int
	OriginFrames   int
	CoalesceHits   int
	Misdirected421 int
	Retries        int
	GoAways        int
	Resets         int

	// Sums of the §4.2 per-page summaries carried by page_end events;
	// SummaryPages counts how many page_end events carried one (zero
	// for deployment traces, which have no reconstruction model).
	SummaryPages int
	MeasuredDNS  int
	MeasuredTLS  int
	IdealIP      int
	IdealOrigin  int
}

// FunnelFromEvents folds a stream of trace events into a Funnel. Order
// does not matter; the fold is a pure sum, so shard traces can be
// concatenated in any order and funnel identically.
func FunnelFromEvents(evs []obs.Event) Funnel {
	var f Funnel
	for _, ev := range evs {
		switch ev.Kind {
		case obs.KindPageStart:
			f.Pages++
		case obs.KindDNSQuery:
			f.DNSQueries++
		case obs.KindDNSCacheHit:
			f.DNSCacheHits++
		case obs.KindDNSFail:
			f.DNSFailures++
		case obs.KindTLSHandshake:
			f.TLSHandshakes++
		case obs.KindTLSResume:
			f.TLSResumed++
		case obs.KindCertMemoHit:
			f.CertMemoHits++
		case obs.KindConnectFail:
			f.ConnectFails++
		case obs.KindStreamOpen:
			f.StreamsOpened++
		case obs.KindOriginFrame:
			f.OriginFrames++
		case obs.KindCoalesceHit:
			f.CoalesceHits++
		case obs.KindMisdirected:
			f.Misdirected421++
		case obs.KindRetry:
			f.Retries++
		case obs.KindGoAway:
			f.GoAways++
		case obs.KindReset:
			f.Resets++
		case obs.KindPageEnd:
			if ev.DNS != 0 || ev.TLS != 0 || ev.IdealIP != 0 || ev.IdealOrigin != 0 {
				f.SummaryPages++
				f.MeasuredDNS += ev.DNS
				f.MeasuredTLS += ev.TLS
				f.IdealIP += ev.IdealIP
				f.IdealOrigin += ev.IdealOrigin
			}
		}
	}
	return f
}

// TableString renders the funnel. The model cross-check section only
// appears when the trace carried page_end summaries.
func (f Funnel) TableString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Coalescing funnel: %d traced page loads\n", f.Pages)
	row := func(name string, n int) {
		fmt.Fprintf(&b, "  %-28s %8d\n", name, n)
	}
	row("DNS queries", f.DNSQueries)
	row("DNS failures", f.DNSFailures)
	row("TLS handshakes", f.TLSHandshakes)
	row("connect failures", f.ConnectFails)
	row("coalesce hits (reuse)", f.CoalesceHits)
	row("421 fallbacks", f.Misdirected421)
	row("retries", f.Retries)
	if f.DNSCacheHits > 0 || f.TLSResumed > 0 || f.CertMemoHits > 0 {
		row("DNS cache hits", f.DNSCacheHits)
		row("TLS resumptions", f.TLSResumed)
		row("cert memo hits", f.CertMemoHits)
	}
	if f.StreamsOpened > 0 || f.OriginFrames > 0 {
		row("H2 streams opened", f.StreamsOpened)
		row("ORIGIN frames", f.OriginFrames)
	}
	if f.GoAways > 0 || f.Resets > 0 {
		row("GOAWAY drains", f.GoAways)
		row("TCP resets", f.Resets)
	}
	if f.SummaryPages > 0 {
		fmt.Fprintf(&b, "Model cross-check (%d pages with §4.2 summaries):\n", f.SummaryPages)
		fmt.Fprintf(&b, "  DNS:  measured %d -> ideal ORIGIN %d  (saved %d, -%.1f%%)\n",
			f.MeasuredDNS, f.IdealOrigin, f.MeasuredDNS-f.IdealOrigin,
			measure.ReductionPct(float64(f.MeasuredDNS), float64(f.IdealOrigin)))
		fmt.Fprintf(&b, "  TLS:  measured %d -> ideal IP %d (-%.1f%%) -> ideal ORIGIN %d (-%.1f%%)\n",
			f.MeasuredTLS,
			f.IdealIP, measure.ReductionPct(float64(f.MeasuredTLS), float64(f.IdealIP)),
			f.IdealOrigin, measure.ReductionPct(float64(f.MeasuredTLS), float64(f.IdealOrigin)))
	}
	return b.String()
}
