package report

import (
	"fmt"
	"net/netip"
	"strings"

	"respectorigin/internal/cdn"
	"respectorigin/internal/faults"
	"respectorigin/internal/measure"
)

// isolatedAddr is the dedicated anycast address the sample group moves
// to during the ORIGIN phase for observability (§5.3).
var isolatedAddr = netip.MustParseAddr("104.19.99.99")

// Deployment wraps a §5 experiment and renders Figures 6, 7 and 8 and
// the passive-measurement headlines.
type Deployment struct {
	CDN *cdn.CDN
	Exp *cdn.Experiment
}

// NewDeployment sets up a CDN and sample group.
func NewDeployment(sampleSize int, seed int64) *Deployment {
	return NewDeploymentWithFaults(sampleSize, seed, faults.Plan{}, 0)
}

// NewDeploymentWithFaults is NewDeployment under a fault plan: every
// visit samples the plan, browsers get the given retry budget, and the
// zero plan reduces exactly to NewDeployment.
func NewDeploymentWithFaults(sampleSize int, seed int64, plan faults.Plan, retries int) *Deployment {
	c := cdn.New(cdn.Config{SampleRate: 1, Seed: seed})
	cfg := cdn.DefaultExperimentConfig()
	cfg.SampleSize = sampleSize
	cfg.Seed = seed
	cfg.Faults = plan
	cfg.FaultRetries = retries
	e := cdn.SetupExperiment(c, cfg)
	return &Deployment{CDN: c, Exp: e}
}

// FaultReport renders the injector's per-kind accounting, or a disabled
// notice under a zero plan.
func (d *Deployment) FaultReport() string {
	return d.Exp.Injector().Report()
}

// FaultSweep regenerates the Figure 8 deployment-window ratio across
// reset rates (each run a fresh deployment with the same seed, so the
// only difference between rows is the plan). It reports, per rate, the
// experiment/control ratio during the window and the per-kind fault
// counts — the "how much degradation until the coalescing signal
// drowns" view of EXPERIMENTS.md.
func FaultSweep(sampleSize int, seed int64, totalDays, phaseStart, phaseEnd int, resetRates []float64) string {
	var sb strings.Builder
	sb.WriteString("Fault sweep: Figure 8 deployment-window ratio vs. injected reset rate\n")
	sb.WriteString("  reset%   exp/ctl ratio   resets injected\n")
	for _, rate := range resetRates {
		d := NewDeploymentWithFaults(sampleSize, seed, faults.Plan{ResetProb: rate / 100}, 1)
		control, experiment := d.Exp.Longitudinal(totalDays, phaseStart, phaseEnd,
			cdn.PhaseOrigin, isolatedAddr, "firefox")
		ratio := experiment.Mean(phaseStart, phaseEnd) / nz(control.Mean(phaseStart, phaseEnd))
		var hits int64
		if inj := d.Exp.Injector(); inj != nil {
			_, hits = inj.Counts(faults.KindReset)
		}
		fmt.Fprintf(&sb, "  %5.1f    %13.2f   %15d\n", rate, ratio, hits)
	}
	return sb.String()
}

// Figure6 renders the certificate issuance setup.
func (d *Deployment) Figure6() string {
	var exp, ctl *cdn.Zone
	for _, z := range d.Exp.SampleZones {
		if exp == nil && z.Treatment == cdn.TreatmentExperiment {
			exp = z
		}
		if ctl == nil && z.Treatment == cdn.TreatmentControl {
			ctl = z
		}
		if exp != nil && ctl != nil {
			break
		}
	}
	var sb strings.Builder
	sb.WriteString("Figure 6: experiment certificate issuance\n")
	fmt.Fprintf(&sb, "  third-party domain:   %s (%d bytes)\n", d.CDN.ThirdParty, len(d.CDN.ThirdParty))
	fmt.Fprintf(&sb, "  control domain:       %s (%d bytes)\n", d.CDN.ControlName, len(d.CDN.ControlName))
	if exp != nil {
		fmt.Fprintf(&sb, "  experiment cert SANs: %v\n", exp.SANs)
	}
	if ctl != nil {
		fmt.Fprintf(&sb, "  control cert SANs:    %v\n", ctl.SANs)
	}
	fmt.Fprintf(&sb, "  sample: %d kept, %d removed (subpage-only; paper removed 22%%)\n",
		len(d.Exp.SampleZones), d.Exp.Removed)
	return sb.String()
}

// ActiveCDF summarizes an active-measurement histogram as per-value
// fractions (the Figure 7 CDFs).
type ActiveCDF struct {
	Counts map[int]int
	Total  int
}

// Frac returns the fraction of sites with exactly n new connections.
func (a ActiveCDF) Frac(n int) float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.Counts[n]) / float64(a.Total)
}

// CumFrac returns the fraction of sites with ≤ n new connections.
func (a ActiveCDF) CumFrac(n int) float64 {
	if a.Total == 0 {
		return 0
	}
	c := 0
	for v, k := range a.Counts {
		if v <= n {
			c += k
		}
	}
	return float64(c) / float64(a.Total)
}

func activeCDF(xs []int) ActiveCDF {
	return ActiveCDF{Counts: measure.Histogram(xs), Total: len(xs)}
}

// Figure7 runs the active measurement in the given phase and returns
// the control and experiment new-connection distributions (7a for
// PhaseIP, 7b for PhaseOrigin).
func (d *Deployment) Figure7(phase cdn.Phase) (control, experiment ActiveCDF, text string) {
	switch phase {
	case cdn.PhaseIP:
		d.CDN.EnterPhaseIP()
	case cdn.PhaseOrigin:
		d.CDN.EnterPhaseOrigin(isolatedAddr)
	}
	ctl, exp := d.Exp.ActiveMeasurement()
	d.CDN.ExitExperiment()
	control, experiment = activeCDF(ctl), activeCDF(exp)
	name := "7a (IP coalescing)"
	if phase == cdn.PhaseOrigin {
		name = "7b (ORIGIN frame)"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure %s: new connections to the third party per page load\n", name)
	sb.WriteString("  #conns   control   experiment\n")
	for n := 0; n <= 7; n++ {
		fmt.Fprintf(&sb, "  %6d   %6.1f%%   %9.1f%%\n", n, 100*control.Frac(n), 100*experiment.Frac(n))
	}
	fmt.Fprintf(&sb, "  zero-connection (full coalescing) share: control %.0f%%, experiment %.0f%%\n",
		100*control.Frac(0), 100*experiment.Frac(0))
	return control, experiment, sb.String()
}

// Figure8 runs the longitudinal ORIGIN deployment and returns the two
// daily new-TLS-connection series.
func (d *Deployment) Figure8(totalDays, phaseStart, phaseEnd int) (control, experiment measure.Series, text string) {
	control, experiment = d.Exp.Longitudinal(totalDays, phaseStart, phaseEnd,
		cdn.PhaseOrigin, isolatedAddr, "firefox")
	var sb strings.Builder
	sb.WriteString("Figure 8: daily new TLS connections to the third party (Firefox)\n")
	sb.WriteString("  day   control   experiment\n")
	for i := range control.Values {
		marker := ""
		if i >= phaseStart && i < phaseEnd {
			marker = "  <- deployment"
		}
		fmt.Fprintf(&sb, "  %3d   %7.0f   %10.0f%s\n", i, control.Values[i], experiment.Values[i], marker)
	}
	during := experiment.Mean(phaseStart, phaseEnd) / nz(control.Mean(phaseStart, phaseEnd))
	fmt.Fprintf(&sb, "  deployment-window experiment/control ratio: %.2f (paper: ~0.5)\n", during)
	return control, experiment, sb.String()
}

// PassiveIP runs the §5.2 passive measurement and reports the headline
// reduction.
func (d *Deployment) PassiveIP(days int) (cdn.PassiveCounts, string) {
	d.CDN.Pipeline().Reset()
	d.CDN.EnterPhaseIP()
	for day := 0; day < days; day++ {
		d.Exp.RunDay(day)
	}
	d.CDN.ExitExperiment()
	pc := cdn.CountPassive(d.CDN.Pipeline().Records(), d.CDN.ThirdParty, "")
	txt := fmt.Sprintf("Passive IP-coalescing measurement (§5.2):\n"+
		"  new third-party TLS conns: control %d, experiment %d\n"+
		"  reduction: %.1f%% (paper: 56%%)\n",
		pc.NewTLSConns[cdn.TreatmentControl], pc.NewTLSConns[cdn.TreatmentExperiment], pc.ReductionPct())
	return pc, txt
}

func nz(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}
