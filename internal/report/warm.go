package report

import (
	"fmt"
	"strings"

	"respectorigin/internal/cache"
	"respectorigin/internal/core"
	"respectorigin/internal/har"
	"respectorigin/internal/measure"
)

// WarmCold replays every corpus page revisits times against a fresh
// per-page warm-path cache and sums the per-visit cost ledgers across
// pages. The pass fans out across the corpus workers; per-page
// sequences are independent and ledger addition is associative, so the
// result is identical for any worker count.
func (c *Corpus) WarmCold(revisits int, opts cache.Options) []core.VisitCosts {
	if revisits <= 0 {
		return nil
	}
	return mapPages(c,
		func() []core.VisitCosts { return make([]core.VisitCosts, revisits) },
		func(acc []core.VisitCosts, p *har.Page) []core.VisitCosts {
			for v, vc := range core.WarmReplaySequence(p, revisits, opts) {
				acc[v].Add(vc)
			}
			return acc
		},
		func(a, b []core.VisitCosts) []core.VisitCosts {
			for v := range a {
				a[v].Add(b[v])
			}
			return a
		})
}

// WarmCold runs the deployment experiment's returning-visitor
// measurement under the IP-coalescing phase (where cross-host
// coalescing is strongest) and restores baseline afterwards.
func (d *Deployment) WarmCold(revisits int, opts cache.Options) []core.VisitCosts {
	d.CDN.EnterPhaseIP()
	costs := d.Exp.WarmCold(revisits, opts)
	d.CDN.ExitExperiment()
	return costs
}

// NewDeploymentSession is NewDeployment wired through a core.Session:
// the session's fault plan and retry budget parameterize the
// experiment (flowing through ExperimentConfig, so the injector stream
// is seeded exactly as a config-driven run would) and its recorder is
// installed on the experiment.
func NewDeploymentSession(sampleSize int, s *core.Session) *Deployment {
	d := NewDeploymentWithFaults(sampleSize, s.Seed, s.Plan, s.Retries)
	d.Exp.UseSession(s)
	return d
}

// SavingsTable renders a warm/cold visit sequence: per-visit measured
// costs, then the warm-visit savings against the cold load decomposed
// into the four causes — coalescing reuse, DNS cache, TLS resumption,
// and the cert memo. The decomposition is computed from per-cause
// counters attributed at avoidance time, and each savings line is
// checked against the measured difference: "exact" means the cause sum
// equals the total reduction with no remainder, "MISMATCH" flags a
// bookkeeping error (and should never appear).
func SavingsTable(costs []core.VisitCosts, label string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Warm vs. cold page loads (%s, %d visit(s)):\n", label, len(costs))
	if len(costs) == 0 {
		return sb.String()
	}
	sb.WriteString("  visit      dns_q  dns_hit  reused  resumed  full_hs  validations  memo_hit\n")
	for v, vc := range costs {
		fmt.Fprintf(&sb, "  %5d   %8d %8d %7d %8d %8d %12d %9d\n",
			v+1, vc.DNSQueries, vc.DNSCacheHits+vc.DNSNegHits, vc.ReusedConns,
			vc.ResumedTLS, vc.FullHandshakes, vc.Validations, vc.CertMemoHits)
	}
	cold := costs[0]
	if !cold.Consistent() {
		sb.WriteString("  WARNING: cold-visit ledger inconsistent\n")
	}
	for v := 1; v < len(costs); v++ {
		warm := costs[v]
		fmt.Fprintf(&sb, "Savings of visit %d vs. cold:\n", v+1)
		check := func(total, sum int) string {
			if total == sum {
				return "exact"
			}
			return fmt.Sprintf("MISMATCH (unattributed %d)", total-sum)
		}
		// DNS: total lookup demand is constant across visits, so the
		// drop in wire queries equals the growth of the three
		// query-avoiding causes.
		dDNS := cold.DNSQueries - warm.DNSQueries
		dHit := warm.DNSCacheHits - cold.DNSCacheHits
		dNeg := warm.DNSNegHits - cold.DNSNegHits
		dSkip := warm.DNSCoalesced - cold.DNSCoalesced
		fmt.Fprintf(&sb, "  DNS queries     -%d (-%.1f%%): dns-cache %+d, neg-cache %+d, coalescing %+d  [%s]\n",
			dDNS, measure.ReductionPct(float64(cold.DNSQueries), float64(warm.DNSQueries)),
			dHit, dNeg, dSkip, check(dDNS, dHit+dNeg+dSkip))
		// Full handshakes: connection demand is constant, so avoided
		// handshakes split between extra reuse and resumption.
		dFull := cold.FullHandshakes - warm.FullHandshakes
		dReuse := warm.ReusedConns - cold.ReusedConns
		dRes := warm.ResumedTLS - cold.ResumedTLS
		fmt.Fprintf(&sb, "  full handshakes -%d (-%.1f%%): coalescing %+d, tls-resumption %+d  [%s]\n",
			dFull, measure.ReductionPct(float64(cold.FullHandshakes), float64(warm.FullHandshakes)),
			dReuse, dRes, check(dFull, dReuse+dRes))
		// Validations: every avoided full handshake also avoids its
		// validation; the memo removes some of the rest.
		dVal := cold.Validations - warm.Validations
		dMemo := warm.CertMemoHits - cold.CertMemoHits
		fmt.Fprintf(&sb, "  validations     -%d (-%.1f%%): coalescing %+d, tls-resumption %+d, cert-memo %+d  [%s]\n",
			dVal, measure.ReductionPct(float64(cold.Validations), float64(warm.Validations)),
			dReuse, dRes, dMemo, check(dVal, dReuse+dRes+dMemo))
		if !warm.Consistent() {
			fmt.Fprintf(&sb, "  WARNING: visit %d ledger inconsistent\n", v+1)
		}
	}
	return sb.String()
}
