package corpus_test

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"respectorigin/internal/corpus"
	"respectorigin/internal/har"
)

// writeShard writes pages[lo-1:hi-1] (ranks lo..hi-1) as one shard
// file plus its single-shard manifest, mirroring what a `crawl -shards
// N -shard i` process emits, and returns the manifest path.
func writeShard(t *testing.T, dir string, f corpus.Format, pages []*har.Page, id, lo, hi, sites int) string {
	t.Helper()
	path := filepath.Join(dir, string(f)+shardName(id))
	sw, err := corpus.CreateShard(path, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pages {
		if p.Rank >= lo && p.Rank < hi {
			if err := sw.Write(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	m := corpus.Manifest{
		Schema: corpus.ManifestSchema, Format: f, Version: f.Version(),
		Seed: 1, Sites: sites,
		Shards: []corpus.ShardInfo{sw.Info(id, lo, hi)},
	}
	mp := path + ".manifest.json"
	if err := corpus.WriteManifest(mp, m); err != nil {
		t.Fatal(err)
	}
	return mp
}

func shardName(id int) string { return "-shard" + string(rune('0'+id)) + ".corpus" }

func TestShardRangePartitions(t *testing.T) {
	for _, tc := range []struct{ sites, shards int }{{400, 2}, {10, 3}, {1, 2}, {7, 7}, {5, 8}} {
		next := 1
		total := 0
		for i := 0; i < tc.shards; i++ {
			lo, hi := corpus.ShardRange(tc.sites, tc.shards, i)
			if lo != next {
				t.Fatalf("sites=%d shards=%d: shard %d starts at %d, want %d", tc.sites, tc.shards, i, lo, next)
			}
			if hi < lo {
				t.Fatalf("sites=%d shards=%d: shard %d range [%d,%d) inverted", tc.sites, tc.shards, i, lo, hi)
			}
			total += hi - lo
			next = hi
		}
		if next != tc.sites+1 || total != tc.sites {
			t.Fatalf("sites=%d shards=%d: ranges cover %d ranks ending at %d", tc.sites, tc.shards, total, next)
		}
	}
}

func TestManifestMergeRoundTrip(t *testing.T) {
	for _, f := range []corpus.Format{corpus.FormatNDJSON, corpus.FormatColumnar} {
		pages := testPages(41)
		dir := t.TempDir()
		lo0, hi0 := corpus.ShardRange(41, 2, 0)
		lo1, hi1 := corpus.ShardRange(41, 2, 1)
		m0 := writeShard(t, dir, f, pages, 0, lo0, hi0, 41)
		m1 := writeShard(t, dir, f, pages, 1, lo1, hi1, 41)

		r, err := corpus.OpenManifest(m0, m1)
		if err != nil {
			t.Fatalf("%s: OpenManifest: %v", f, err)
		}
		got, err := corpus.ReadAll(r)
		if cerr := r.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatalf("%s: reading merged shards: %v", f, err)
		}
		if len(got) != len(pages) {
			t.Fatalf("%s: merged read returned %d pages, want %d", f, len(got), len(pages))
		}
		for i := range got {
			if got[i].Rank != pages[i].Rank {
				t.Fatalf("%s: page %d has rank %d, want %d (rank order broken)", f, i, got[i].Rank, pages[i].Rank)
			}
		}
	}
}

func TestManifestRejectsOverlappingShards(t *testing.T) {
	m := corpus.Manifest{
		Schema: corpus.ManifestSchema, Format: corpus.FormatColumnar,
		Version: corpus.ColumnarVersion, Seed: 1, Sites: 100,
		Shards: []corpus.ShardInfo{
			{ID: 0, RankLo: 1, RankHi: 60, Pages: 10, File: "a", Checksum: "x"},
			{ID: 1, RankLo: 50, RankHi: 101, Pages: 10, File: "b", Checksum: "y"},
		},
	}
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("overlapping ranges validated: err = %v", err)
	}
	// Merging two single-shard manifests with the same range must fail too.
	a := m
	a.Shards = m.Shards[:1]
	b := m
	b.Shards = []corpus.ShardInfo{{ID: 1, RankLo: 30, RankHi: 40, Pages: 1, File: "b", Checksum: "y"}}
	if _, err := corpus.Merge(a, b); err == nil {
		t.Fatal("Merge accepted overlapping shard ranges")
	}
}

func TestManifestMergeRejectsMismatchedRuns(t *testing.T) {
	base := corpus.Manifest{
		Schema: corpus.ManifestSchema, Format: corpus.FormatColumnar,
		Version: corpus.ColumnarVersion, Seed: 1, Sites: 100,
		Shards: []corpus.ShardInfo{{ID: 0, RankLo: 1, RankHi: 51, Pages: 1, File: "a", Checksum: "x"}},
	}
	other := base
	other.Shards = []corpus.ShardInfo{{ID: 1, RankLo: 51, RankHi: 101, Pages: 1, File: "b", Checksum: "y"}}

	seed := other
	seed.Seed = 2
	if _, err := corpus.Merge(base, seed); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("merge across seeds: err = %v", err)
	}
	sites := other
	sites.Sites = 200
	if _, err := corpus.Merge(base, sites); err == nil || !strings.Contains(err.Error(), "sites") {
		t.Fatalf("merge across sites: err = %v", err)
	}
	format := other
	format.Format = corpus.FormatNDJSON
	format.Version = corpus.FormatNDJSON.Version()
	if _, err := corpus.Merge(base, format); err == nil {
		t.Fatal("merge across formats succeeded")
	}
}

func TestManifestChecksumMismatch(t *testing.T) {
	pages := testPages(10)
	dir := t.TempDir()
	mp := writeShard(t, dir, corpus.FormatColumnar, pages, 0, 1, 11, 10)
	m, err := corpus.ReadManifest(mp)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte in the middle of the shard file.
	raw, err := os.ReadFile(m.Shards[0].File)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(m.Shards[0].File, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := corpus.OpenManifest(mp)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, err = corpus.ReadAll(r)
	if err == nil {
		t.Fatal("corrupted shard file read cleanly")
	}
	// Either the decoder trips on the corruption or the checksum catches
	// it; a flipped byte that still decodes MUST be caught by checksum.
	if !strings.Contains(err.Error(), "checksum") && !strings.Contains(err.Error(), "corpus:") {
		t.Fatalf("unexpected error shape: %v", err)
	}
}

func TestManifestChecksumCatchesCleanDecodeCorruption(t *testing.T) {
	// Append a trailing byte NDJSON decoding would never see consumed:
	// the drain ensures the hash still covers it.
	pages := testPages(5)
	dir := t.TempDir()
	mp := writeShard(t, dir, corpus.FormatNDJSON, pages, 0, 1, 6, 5)
	m, _ := corpus.ReadManifest(mp)
	f, err := os.OpenFile(m.Shards[0].File, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(f, "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	r, err := corpus.OpenManifest(mp)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := corpus.ReadAll(r); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("appended byte not caught by checksum: err = %v", err)
	}
}

func TestManifestMissingShardFile(t *testing.T) {
	pages := testPages(10)
	dir := t.TempDir()
	mp := writeShard(t, dir, corpus.FormatColumnar, pages, 0, 1, 11, 10)
	m, _ := corpus.ReadManifest(mp)
	if err := os.Remove(m.Shards[0].File); err != nil {
		t.Fatal(err)
	}
	if _, err := corpus.OpenManifest(mp); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing shard file: err = %v", err)
	}
}

func TestManifestEmptyShardRoundTrips(t *testing.T) {
	for _, f := range []corpus.Format{corpus.FormatNDJSON, corpus.FormatColumnar} {
		dir := t.TempDir()
		// Shard over an empty rank range: zero pages, still a valid file.
		mp := writeShard(t, dir, f, nil, 0, 1, 1, 4)
		r, err := corpus.OpenManifest(mp)
		if err != nil {
			t.Fatalf("%s: OpenManifest on empty shard: %v", f, err)
		}
		got, err := corpus.ReadAll(r)
		if cerr := r.Close(); err == nil {
			err = cerr
		}
		if err != nil || len(got) != 0 {
			t.Fatalf("%s: empty shard: %d pages, %v", f, len(got), err)
		}
	}
}

func TestManifestVersionMismatch(t *testing.T) {
	pages := testPages(4)
	dir := t.TempDir()
	mp := writeShard(t, dir, corpus.FormatColumnar, pages, 0, 1, 5, 4)
	raw, err := os.ReadFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(string(raw), `"version": 1`, `"version": 99`, 1)
	if doctored == string(raw) {
		t.Fatal("test setup: version field not found in manifest")
	}
	if err := os.WriteFile(mp, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := corpus.OpenManifest(mp); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("manifest version mismatch: err = %v", err)
	}
}

func TestManifestPageCountMismatch(t *testing.T) {
	pages := testPages(6)
	dir := t.TempDir()
	mp := writeShard(t, dir, corpus.FormatColumnar, pages, 0, 1, 7, 6)
	raw, err := os.ReadFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(string(raw), `"pages": 6`, `"pages": 7`, 1)
	if doctored == string(raw) {
		t.Fatal("test setup: pages field not found in manifest")
	}
	if err := os.WriteFile(mp, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := corpus.OpenManifest(mp)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := corpus.ReadAll(r); err == nil || !strings.Contains(err.Error(), "pages") {
		t.Fatalf("page-count mismatch: err = %v", err)
	}
}

func TestOpenSniffsFormats(t *testing.T) {
	pages := testPages(8)
	dir := t.TempDir()
	for _, f := range []corpus.Format{corpus.FormatNDJSON, corpus.FormatColumnar} {
		path := filepath.Join(dir, "c."+string(f))
		sw, err := corpus.CreateShard(path, f)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pages {
			if err := sw.Write(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := corpus.Open(path)
		if err != nil {
			t.Fatalf("Open(%s): %v", f, err)
		}
		got, err := corpus.ReadAll(r)
		if cerr := r.Close(); err == nil {
			err = cerr
		}
		if err != nil || len(got) != len(pages) {
			t.Fatalf("Open(%s): %d pages, %v", f, len(got), err)
		}
	}
}
