// Package corpus is the unified corpus I/O surface: every producer and
// consumer of page corpora — cmd/crawl, cmd/report, the determinism
// harness, the benchmark suites — reads and writes through the Reader
// and Writer interfaces defined here rather than concrete NDJSON
// streams or *har.Page slices.
//
// Two interchangeable encodings implement the interfaces:
//
//   - NDJSON: one JSON page per line, byte-identical to the historical
//     cmd/crawl output (the golden byte-identity gates diff it).
//   - Columnar: a compact binary format with length-prefixed column
//     blocks — page fields, entries, DNS answers and certificate SANs
//     as separate streams — that decodes several times faster with a
//     fraction of the allocations, sized for 10M-page corpora.
//
// A corpus may be split across per-shard files described by a
// merge-safe manifest (manifest.go), so crawl and report can run as
// independent OS processes over disjoint rank ranges and merge without
// materializing intermediates. The two formats are interchangeable by
// construction: decoding a columnar corpus and re-encoding it as
// NDJSON reproduces the direct NDJSON bytes exactly, a property the
// conformance harness and CI hold at worker counts 1/4/16.
package corpus

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"respectorigin/internal/har"
)

// Writer appends pages to a corpus. Close finalizes the stream (end
// markers, buffered bytes) and must be checked: on a full disk the
// final flush is where the error surfaces, and ignoring it truncates
// the corpus silently.
type Writer interface {
	Write(p *har.Page) error
	Close() error
}

// Reader streams pages from a corpus in rank order. Next returns
// io.EOF after the last page; Close releases any underlying files.
type Reader interface {
	Next() (*har.Page, error)
	Close() error
}

// Format identifies a corpus encoding.
type Format string

// The two supported encodings (the -format flag values).
const (
	FormatNDJSON   Format = "ndjson"
	FormatColumnar Format = "columnar"
)

// ParseFormat parses a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatNDJSON, FormatColumnar:
		return Format(s), nil
	}
	return "", fmt.Errorf("corpus: unknown format %q (want %q or %q)", s, FormatNDJSON, FormatColumnar)
}

// Version returns the current encoding version of the format, the
// value recorded in shard manifests.
func (f Format) Version() int {
	switch f {
	case FormatColumnar:
		return ColumnarVersion
	default:
		return 1
	}
}

// NewWriter returns a Writer emitting pages to w in the given format.
// The Writer does not buffer beyond what the format requires and does
// not close w; wrap files in a bufio.Writer (or use CreateShard, which
// owns buffering, hashing and the file).
func NewWriter(w io.Writer, f Format) Writer {
	if f == FormatColumnar {
		return NewColumnarWriter(w)
	}
	return NewNDJSONWriter(w)
}

// NewReader returns a Reader decoding pages from r in the given format.
func NewReader(r io.Reader, f Format) Reader {
	if f == FormatColumnar {
		return NewColumnarReader(r)
	}
	return NewNDJSONReader(r)
}

// ReadAll drains a Reader into a page slice.
func ReadAll(r Reader) ([]*har.Page, error) {
	var out []*har.Page
	for {
		p, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}

// ForEach streams every page from r through fn in order, stopping on
// the first error fn returns. It is the constant-memory consumption
// primitive: the page slice ReadAll would build never exists.
func ForEach(r Reader, fn func(*har.Page) error) error {
	for {
		p, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(p); err != nil {
			return err
		}
	}
}

// Copy streams every page from src into dst and returns the page
// count. It closes neither side: callers own Close (and must check
// dst's).
func Copy(dst Writer, src Reader) (int, error) {
	n := 0
	for {
		p, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := dst.Write(p); err != nil {
			return n, err
		}
		n++
	}
}

// DetectFormat sniffs the encoding of a corpus stream from its leading
// bytes without consuming them. A columnar magic prefix with an
// unsupported version is an error rather than a silent NDJSON
// fallback.
func DetectFormat(br *bufio.Reader) (Format, error) {
	head, err := br.Peek(len(columnarMagic))
	if err != nil && len(head) == 0 && err != io.EOF {
		return "", err
	}
	if len(head) >= len(columnarMagicPrefix) && string(head[:len(columnarMagicPrefix)]) == columnarMagicPrefix {
		if len(head) < len(columnarMagic) || head[len(columnarMagic)-1] != ColumnarVersion {
			got := -1
			if len(head) >= len(columnarMagic) {
				got = int(head[len(columnarMagic)-1])
			}
			return "", fmt.Errorf("corpus: columnar format version %d not supported (this build reads version %d)", got, ColumnarVersion)
		}
		return FormatColumnar, nil
	}
	return FormatNDJSON, nil
}

// fileReader is an Open result: a format reader plus the file it owns.
type fileReader struct {
	Reader
	f *os.File
}

func (fr *fileReader) Close() error {
	err := fr.Reader.Close()
	if cerr := fr.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Open opens a single-file corpus, sniffing the encoding from its
// magic bytes, so callers need not know how a corpus was written.
// The returned Reader owns the file.
func Open(path string) (Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	format, err := DetectFormat(br)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &fileReader{Reader: NewReader(br, format), f: f}, nil
}
