package corpus_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"reflect"
	"strings"
	"testing"

	"respectorigin/internal/corpus"
	"respectorigin/internal/har"
)

// testPages builds a small synthetic corpus exercising every encoded
// field: IPv4/IPv6/zoned/invalid addresses, empty and long SAN lists,
// zero timings, negative initiators, unicode strings.
func testPages(n int) []*har.Page {
	var out []*har.Page
	for r := 1; r <= n; r++ {
		p := &har.Page{
			URL:       fmt.Sprintf("https://www.site-%d.example/", r),
			Host:      fmt.Sprintf("www.site-%d.example", r),
			Rank:      r,
			DOMLoadMs: 123.456 + float64(r)*0.001,
			OnLoadMs:  999.25 * float64(r),
			ExtraDNS:  r % 3,
			ExtraTLS:  r % 2,
		}
		root := har.Entry{
			URL: p.URL, Host: p.Host, Method: "GET", Protocol: "h2",
			Status: 200, MimeType: "text/html", BodySize: int64(1000 * r),
			Secure: true, NewDNS: true, NewTLS: true,
			ServerIP:  netip.MustParseAddr("104.16.0.7"),
			ServerASN: 13335,
			DNSAnswer: []netip.Addr{netip.MustParseAddr("104.16.0.7"), netip.MustParseAddr("2606:4700::6810:7")},
			CertSANs:  []string{p.Host, "*.site.example"},
			Initiator: -1, RenderBlocking: true,
			Timings: har.Timings{Blocked: 0, DNS: 12.5, Connect: 30.25, SSL: 41.125, Send: 0.5, Wait: 80, Receive: 10.0625},
		}
		p.Entries = append(p.Entries, root)
		for i := 1; i <= r%5; i++ {
			e := har.Entry{
				URL: fmt.Sprintf("https://cdn-%d.example/r/%d.js", i, i), Host: fmt.Sprintf("cdn-%d.example", i),
				Method: "GET", Protocol: "http/1.1", Status: 200, MimeType: "application/javascript",
				BodySize: int64(64 * i), Secure: i%2 == 0, NewDNS: i%2 == 1,
				ServerASN: uint32(1000 + i), Initiator: 0,
				Timings: har.Timings{Wait: float64(i) * 1.5, Receive: 3},
			}
			if i == 1 {
				e.ServerIP = netip.MustParseAddr("fe80::1%eth0")
				e.CertIssuer = "Let's Encrypt ✓"
			}
			p.Entries = append(p.Entries, e)
		}
		out = append(out, p)
	}
	return out
}

func encode(t *testing.T, pages []*har.Page, f corpus.Format) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := corpus.NewWriter(&buf, f)
	for _, p := range pages {
		if err := w.Write(p); err != nil {
			t.Fatalf("%s write: %v", f, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("%s close: %v", f, err)
	}
	return buf.Bytes()
}

func decode(t *testing.T, raw []byte, f corpus.Format) []*har.Page {
	t.Helper()
	pages, err := corpus.ReadAll(corpus.NewReader(bytes.NewReader(raw), f))
	if err != nil {
		t.Fatalf("%s read: %v", f, err)
	}
	return pages
}

func TestColumnarRoundTrip(t *testing.T) {
	// Enough pages to cross several block boundaries.
	pages := testPages(700)
	raw := encode(t, pages, corpus.FormatColumnar)
	got := decode(t, raw, corpus.FormatColumnar)
	if len(got) != len(pages) {
		t.Fatalf("round trip lost pages: wrote %d, read %d", len(pages), len(got))
	}
	for i := range pages {
		if !reflect.DeepEqual(pages[i], got[i]) {
			t.Fatalf("page %d differs after columnar round trip:\nwrote %+v\nread  %+v", i, pages[i], got[i])
		}
	}
}

// TestCrossFormatByteIdentity is the package-level form of the crown
// jewel gate: decoding a columnar corpus and re-encoding it as NDJSON
// must reproduce the direct NDJSON bytes exactly.
func TestCrossFormatByteIdentity(t *testing.T) {
	pages := testPages(300)
	direct := encode(t, pages, corpus.FormatNDJSON)
	viaColumnar := encode(t, decode(t, encode(t, pages, corpus.FormatColumnar), corpus.FormatColumnar), corpus.FormatNDJSON)
	if !bytes.Equal(direct, viaColumnar) {
		t.Fatalf("columnar->decode->NDJSON differs from direct NDJSON (lens %d vs %d)", len(direct), len(viaColumnar))
	}
}

func TestNDJSONMatchesHarStreamWriter(t *testing.T) {
	pages := testPages(20)
	var want bytes.Buffer
	if err := har.WriteJSON(&want, pages); err != nil {
		t.Fatal(err)
	}
	got := encode(t, pages, corpus.FormatNDJSON)
	if !bytes.Equal(want.Bytes(), got) {
		t.Fatal("corpus NDJSON writer diverges from har.WriteJSON bytes")
	}
}

func TestEmptyCorpusRoundTrip(t *testing.T) {
	for _, f := range []corpus.Format{corpus.FormatNDJSON, corpus.FormatColumnar} {
		raw := encode(t, nil, f)
		got := decode(t, raw, f)
		if len(got) != 0 {
			t.Fatalf("%s: empty corpus decoded to %d pages", f, len(got))
		}
	}
}

func TestCopy(t *testing.T) {
	pages := testPages(40)
	src := corpus.NewReader(bytes.NewReader(encode(t, pages, corpus.FormatColumnar)), corpus.FormatColumnar)
	var buf bytes.Buffer
	dst := corpus.NewWriter(&buf, corpus.FormatNDJSON)
	n, err := corpus.Copy(dst, src)
	if err != nil || n != len(pages) {
		t.Fatalf("Copy = %d, %v; want %d, nil", n, err, len(pages))
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), encode(t, pages, corpus.FormatNDJSON)) {
		t.Fatal("Copy transcode is not byte-identical to direct NDJSON")
	}
}

func TestDetectFormat(t *testing.T) {
	pages := testPages(3)
	for _, tc := range []struct {
		raw  []byte
		want corpus.Format
	}{
		{encode(t, pages, corpus.FormatColumnar), corpus.FormatColumnar},
		{encode(t, pages, corpus.FormatNDJSON), corpus.FormatNDJSON},
		{nil, corpus.FormatNDJSON}, // empty stream: NDJSON with zero pages
	} {
		br := bufio.NewReader(bytes.NewReader(tc.raw))
		got, err := corpus.DetectFormat(br)
		if err != nil || got != tc.want {
			t.Fatalf("DetectFormat = %q, %v; want %q", got, err, tc.want)
		}
		// Sniffing must not consume: the reader still decodes.
		if pages, err := corpus.ReadAll(corpus.NewReader(br, got)); err != nil || len(pages) != func() int {
			if tc.raw == nil {
				return 0
			}
			return 3
		}() {
			t.Fatalf("decode after sniff: %d pages, %v", len(pages), err)
		}
	}
}

func TestColumnarVersionMismatch(t *testing.T) {
	raw := encode(t, testPages(2), corpus.FormatColumnar)
	raw[6] = 99 // the version byte after "RCORP\x00"

	if _, err := corpus.DetectFormat(bufio.NewReader(bytes.NewReader(raw))); err == nil ||
		!strings.Contains(err.Error(), "version 99") {
		t.Fatalf("DetectFormat on version 99: err = %v, want version mismatch", err)
	}
	_, err := corpus.ReadAll(corpus.NewReader(bytes.NewReader(raw), corpus.FormatColumnar))
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("read on version 99: err = %v, want version mismatch", err)
	}
}

func TestColumnarTruncationDetected(t *testing.T) {
	raw := encode(t, testPages(10), corpus.FormatColumnar)
	for _, cut := range []int{len(raw) - 1, len(raw) / 2, 8} {
		_, err := corpus.ReadAll(corpus.NewReader(bytes.NewReader(raw[:cut]), corpus.FormatColumnar))
		if err == nil {
			t.Fatalf("truncation at %d of %d bytes passed silently", cut, len(raw))
		}
	}
	// A flipped trailer count must be caught too.
	raw2 := encode(t, nil, corpus.FormatColumnar)
	raw2[len(raw2)-1]++ // trailer total: 0 -> 1
	if _, err := corpus.ReadAll(corpus.NewReader(bytes.NewReader(raw2), corpus.FormatColumnar)); err == nil {
		t.Fatal("trailer page-count mismatch passed silently")
	}
}

// failWriter fails after n bytes — the full-disk stand-in.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, fmt.Errorf("disk full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWriterSurfacesWriteErrors(t *testing.T) {
	pages := testPages(600)
	for _, f := range []corpus.Format{corpus.FormatNDJSON, corpus.FormatColumnar} {
		w := corpus.NewWriter(&failWriter{n: 4096}, f)
		var err error
		for _, p := range pages {
			if err = w.Write(p); err != nil {
				break
			}
		}
		if cerr := w.Close(); err == nil {
			err = cerr
		}
		if err == nil || !strings.Contains(err.Error(), "disk full") {
			t.Fatalf("%s: disk-full error was swallowed (err = %v)", f, err)
		}
	}
}

func TestColumnarWriteAfterClose(t *testing.T) {
	w := corpus.NewWriter(io.Discard, corpus.FormatColumnar)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(testPages(1)[0]); err == nil {
		t.Fatal("write after Close succeeded")
	}
}
