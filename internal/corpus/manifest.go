package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"

	"respectorigin/internal/har"
)

// ManifestSchema identifies the manifest file layout.
const ManifestSchema = "respectorigin-corpus/1"

// Manifest describes a sharded corpus: which rank ranges live in which
// files, under which encoding, generated from which seed. Manifests
// written by independent crawl processes over disjoint shard ranges
// merge losslessly (Merge), which is what lets a multi-process crawl
// feed a single report run without intermediate files.
type Manifest struct {
	Schema  string      `json:"schema"`
	Format  Format      `json:"format"`
	Version int         `json:"version"` // encoding version (Format.Version at write time)
	Seed    int64       `json:"seed"`
	Sites   int         `json:"sites"` // total rank space of the corpus
	Shards  []ShardInfo `json:"shards"`
}

// ShardInfo is one shard file's entry in a manifest. File is relative
// to the manifest's directory when not absolute.
type ShardInfo struct {
	ID       int    `json:"id"`
	RankLo   int    `json:"rank_lo"` // first rank, inclusive
	RankHi   int    `json:"rank_hi"` // last rank, exclusive
	Pages    int    `json:"pages"`   // successful page loads in the file
	File     string `json:"file"`
	Checksum string `json:"checksum"` // fnv1a64 of the file bytes
}

// ShardRange returns the contiguous rank range [lo, hi) shard i of
// shards covers over a sites-rank corpus. Ranges partition [1,
// sites+1) exactly, so shard outputs concatenated in id order
// reproduce a single-process crawl byte for byte.
func ShardRange(sites, shards, i int) (lo, hi int) {
	return 1 + i*sites/shards, 1 + (i+1)*sites/shards
}

// Pages returns the total successful page count across shards.
func (m *Manifest) Pages() int {
	n := 0
	for _, s := range m.Shards {
		n += s.Pages
	}
	return n
}

// Validate checks manifest invariants: supported schema and encoding
// version, well-formed shard entries, unique ids, and non-overlapping
// rank ranges. Gaps are legal (a partial corpus analyzes fine);
// overlaps would double-count pages and are rejected.
func (m *Manifest) Validate() error {
	if m.Schema != ManifestSchema {
		return fmt.Errorf("corpus: manifest schema %q not supported (want %q)", m.Schema, ManifestSchema)
	}
	if _, err := ParseFormat(string(m.Format)); err != nil {
		return err
	}
	if m.Version != m.Format.Version() {
		return fmt.Errorf("corpus: manifest records %s format version %d; this build reads version %d",
			m.Format, m.Version, m.Format.Version())
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("corpus: manifest has no shards")
	}
	byLo := append([]ShardInfo(nil), m.Shards...)
	sort.Slice(byLo, func(i, j int) bool { return byLo[i].RankLo < byLo[j].RankLo })
	seen := map[int]bool{}
	for i, s := range byLo {
		if s.RankLo < 1 || s.RankHi < s.RankLo {
			return fmt.Errorf("corpus: shard %d has invalid rank range [%d, %d)", s.ID, s.RankLo, s.RankHi)
		}
		if s.File == "" {
			return fmt.Errorf("corpus: shard %d has no file", s.ID)
		}
		if seen[s.ID] {
			return fmt.Errorf("corpus: duplicate shard id %d", s.ID)
		}
		seen[s.ID] = true
		if i > 0 && s.RankLo < byLo[i-1].RankHi {
			return fmt.Errorf("corpus: shard %d ranks [%d, %d) overlap shard %d ranks [%d, %d)",
				s.ID, s.RankLo, s.RankHi, byLo[i-1].ID, byLo[i-1].RankLo, byLo[i-1].RankHi)
		}
	}
	return nil
}

// Merge combines manifests from independent shard crawls of the same
// corpus into one, ordered by rank. The runs must agree on seed, total
// sites, format and version — a mismatch means the shards came from
// different corpora and merging them would be silent corruption.
func Merge(ms ...Manifest) (Manifest, error) {
	if len(ms) == 0 {
		return Manifest{}, fmt.Errorf("corpus: no manifests to merge")
	}
	out := ms[0]
	out.Shards = append([]ShardInfo(nil), ms[0].Shards...)
	for _, m := range ms[1:] {
		switch {
		case m.Seed != out.Seed:
			return Manifest{}, fmt.Errorf("corpus: cannot merge manifests with seeds %d and %d", out.Seed, m.Seed)
		case m.Sites != out.Sites:
			return Manifest{}, fmt.Errorf("corpus: cannot merge manifests with sites %d and %d", out.Sites, m.Sites)
		case m.Format != out.Format || m.Version != out.Version:
			return Manifest{}, fmt.Errorf("corpus: cannot merge %s/v%d and %s/v%d manifests",
				out.Format, out.Version, m.Format, m.Version)
		}
		out.Shards = append(out.Shards, m.Shards...)
	}
	sort.Slice(out.Shards, func(i, j int) bool { return out.Shards[i].RankLo < out.Shards[j].RankLo })
	if err := out.Validate(); err != nil {
		return Manifest{}, err
	}
	return out, nil
}

// WriteManifest writes a manifest as indented JSON.
func WriteManifest(path string, m Manifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReadManifest reads and validates a manifest, resolving relative
// shard file paths against the manifest's directory.
func ReadManifest(path string) (Manifest, error) {
	var m Manifest
	raw, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return m, fmt.Errorf("corpus: parsing manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return m, fmt.Errorf("%s: %w", path, err)
	}
	dir := filepath.Dir(path)
	for i := range m.Shards {
		if !filepath.IsAbs(m.Shards[i].File) {
			m.Shards[i].File = filepath.Join(dir, m.Shards[i].File)
		}
	}
	return m, nil
}

// checksumString formats a shard checksum.
func checksumString(sum uint64) string { return fmt.Sprintf("fnv1a64:%016x", sum) }

// OpenManifest reads, merges and validates the given manifests, then
// returns a Reader streaming every shard's pages in rank order. Each
// shard file is hashed as it streams and its checksum and page count
// are verified at shard end, so a missing, swapped or truncated shard
// file fails loudly instead of skewing the analysis. A single pass,
// no intermediates.
func OpenManifest(paths ...string) (Reader, error) {
	ms := make([]Manifest, 0, len(paths))
	for _, p := range paths {
		m, err := ReadManifest(p)
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	m, err := Merge(ms...)
	if err != nil {
		return nil, err
	}
	for _, s := range m.Shards {
		if _, err := os.Stat(s.File); err != nil {
			return nil, fmt.Errorf("corpus: shard %d file missing: %w", s.ID, err)
		}
	}
	return &manifestReader{m: m}, nil
}

// manifestReader chains shard files, verifying each as it completes.
type manifestReader struct {
	m   Manifest
	idx int

	cur   Reader
	f     *os.File
	tee   io.Reader // file bytes, hashed as read
	h     hash.Hash64
	pages int
	err   error
}

func (mr *manifestReader) Next() (*har.Page, error) {
	if mr.err != nil {
		return nil, mr.err
	}
	for {
		if mr.cur == nil {
			if mr.idx >= len(mr.m.Shards) {
				return nil, io.EOF
			}
			if err := mr.openShard(mr.m.Shards[mr.idx]); err != nil {
				mr.err = err
				return nil, err
			}
		}
		p, err := mr.cur.Next()
		if err == nil {
			mr.pages++
			return p, nil
		}
		if err != io.EOF {
			mr.err = fmt.Errorf("corpus: shard %d (%s): %w", mr.m.Shards[mr.idx].ID, mr.m.Shards[mr.idx].File, err)
			mr.closeShard()
			return nil, mr.err
		}
		if err := mr.finishShard(); err != nil {
			mr.err = err
			return nil, err
		}
	}
}

func (mr *manifestReader) openShard(s ShardInfo) error {
	f, err := os.Open(s.File)
	if err != nil {
		return fmt.Errorf("corpus: opening shard %d: %w", s.ID, err)
	}
	mr.f = f
	mr.h = fnv.New64a()
	mr.tee = io.TeeReader(f, mr.h)
	mr.cur = NewReader(bufio.NewReaderSize(mr.tee, 1<<16), mr.m.Format)
	mr.pages = 0
	return nil
}

// finishShard verifies the completed shard against its manifest entry:
// the streamed hash must match the recorded checksum and the page
// count must match. The drain pulls any bytes the decoder's buffering
// skipped, so the hash always covers the whole file.
func (mr *manifestReader) finishShard() error {
	s := mr.m.Shards[mr.idx]
	if _, err := io.Copy(io.Discard, mr.tee); err != nil {
		mr.closeShard()
		return fmt.Errorf("corpus: draining shard %d: %w", s.ID, err)
	}
	if got := checksumString(mr.h.Sum64()); got != s.Checksum {
		mr.closeShard()
		return fmt.Errorf("corpus: shard %d (%s) checksum %s does not match manifest %s (file modified or truncated?)",
			s.ID, s.File, got, s.Checksum)
	}
	if mr.pages != s.Pages {
		mr.closeShard()
		return fmt.Errorf("corpus: shard %d carried %d pages, manifest records %d", s.ID, mr.pages, s.Pages)
	}
	if err := mr.closeShard(); err != nil {
		return err
	}
	mr.idx++
	return nil
}

func (mr *manifestReader) closeShard() error {
	var err error
	if mr.cur != nil {
		err = mr.cur.Close()
	}
	if mr.f != nil {
		if cerr := mr.f.Close(); err == nil {
			err = cerr
		}
	}
	mr.cur, mr.f, mr.tee, mr.h = nil, nil, nil, nil
	return err
}

func (mr *manifestReader) Close() error { return mr.closeShard() }

// ShardWriter writes one shard file: a format Writer over a buffered,
// hashed file, counting pages, so a crawl process can record the
// shard's manifest entry after Close. Close flushes and closes the
// file and reports any write error that was previously hidden behind
// a deferred close (the full-disk truncation path).
type ShardWriter struct {
	path   string
	format Format
	f      *os.File
	bw     *bufio.Writer
	h      hash.Hash64
	w      Writer
	pages  int
	closed bool
}

// CreateShard creates path and returns a ShardWriter encoding pages
// into it in the given format.
func CreateShard(path string, format Format) (*ShardWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	bw := bufio.NewWriterSize(io.MultiWriter(f, h), 1<<20)
	return &ShardWriter{path: path, format: format, f: f, bw: bw, h: h, w: NewWriter(bw, format)}, nil
}

// Write appends one page to the shard.
func (s *ShardWriter) Write(p *har.Page) error {
	if err := s.w.Write(p); err != nil {
		return err
	}
	s.pages++
	return nil
}

// Close finalizes the encoding, flushes buffers and closes the file.
// Every error on that path is returned: an unflushed tail silently
// dropped here is a truncated corpus.
func (s *ShardWriter) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.w.Close()
	if ferr := s.bw.Flush(); err == nil {
		err = ferr
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Pages returns the number of pages written.
func (s *ShardWriter) Pages() int { return s.pages }

// Info returns the shard's manifest entry. Call it after Close; the
// checksum covers exactly the bytes flushed to disk. The recorded file
// path is the base name, relative to the manifest that will sit next
// to it.
func (s *ShardWriter) Info(id, rankLo, rankHi int) ShardInfo {
	return ShardInfo{
		ID:       id,
		RankLo:   rankLo,
		RankHi:   rankHi,
		Pages:    s.pages,
		File:     filepath.Base(s.path),
		Checksum: checksumString(s.h.Sum64()),
	}
}
