package corpus

import (
	"encoding/json"
	"io"

	"respectorigin/internal/har"
)

// ndjsonWriter emits one JSON page per line via the har codec, so its
// bytes are identical to the historical har.StreamWriter output the
// golden byte-identity gates were recorded against.
type ndjsonWriter struct {
	sw *har.StreamWriter
}

// NewNDJSONWriter returns a Writer encoding pages as newline-delimited
// JSON to w. Close is a no-op (the encoding has no trailer); file
// flushing belongs to whoever owns the file.
func NewNDJSONWriter(w io.Writer) Writer {
	return &ndjsonWriter{sw: har.NewStreamWriter(w)}
}

func (n *ndjsonWriter) Write(p *har.Page) error { return n.sw.Write(p) }
func (n *ndjsonWriter) Close() error            { return nil }

// ndjsonReader streams pages out of a newline-delimited JSON corpus.
type ndjsonReader struct {
	dec *json.Decoder
}

// NewNDJSONReader returns a Reader decoding newline-delimited JSON
// pages from r.
func NewNDJSONReader(r io.Reader) Reader {
	return &ndjsonReader{dec: json.NewDecoder(r)}
}

func (n *ndjsonReader) Next() (*har.Page, error) {
	var p har.Page
	if err := n.dec.Decode(&p); err != nil {
		return nil, err // io.EOF passes through at end of stream
	}
	return &p, nil
}

func (n *ndjsonReader) Close() error { return nil }
