package corpus

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net/netip"

	"respectorigin/internal/har"
)

// The columnar encoding: a magic header, then a sequence of page
// blocks, then an end marker.
//
//	file  := magic block* end
//	magic := "RCORP\x00" version:byte   (version = 1)
//	block := uvarint(npages>0) col{4}   (meta, entries, dns, sans)
//	col   := uvarint(len) bytes
//	end   := uvarint(0) uvarint(total pages)
//
// Within a block the four column streams carry, page by page:
//
//	meta    := url host rank dom_ms on_ms extra_dns extra_tls nentries
//	entries := nentries × fixed entry fields (timings, flags, IP, …)
//	dns     := nentries × (naddr naddr×addr)   — the DNS answer sets
//	sans    := nentries × (nsan nsan×string)   — certificate SANs
//
// Strings are uvarint-length-prefixed bytes; floats are IEEE 754 bits
// little-endian (exact round trip, so re-encoding to NDJSON reproduces
// encoding/json's shortest float rendering byte for byte); addresses
// are raw 4/16-byte forms (17 with a zone). Splitting entries from
// their variable-length answer and SAN sets keeps the hot fixed-stride
// entry decode tight while the rarely-large streams stay out of its
// way.

// ColumnarVersion is the version byte written after the magic prefix.
const ColumnarVersion = 1

const (
	columnarMagicPrefix = "RCORP\x00"
	columnarMagic       = columnarMagicPrefix + "\x01" // prefix + version
)

// columnarBlockPages is the number of pages batched per block: large
// enough to amortize framing, small enough that a streaming reader's
// working set stays a few megabytes regardless of corpus size.
const columnarBlockPages = 256

const (
	entrySecure = 1 << iota
	entryNewDNS
	entryNewTLS
	entryRenderBlocking
)

// --- encoding ---

// colBuf is an append-only column buffer.
type colBuf struct{ b []byte }

func (c *colBuf) reset()             { c.b = c.b[:0] }
func (c *colBuf) uvarint(x uint64)   { c.b = binary.AppendUvarint(c.b, x) }
func (c *colBuf) svarint(x int64)    { c.b = binary.AppendVarint(c.b, x) }
func (c *colBuf) f64(v float64)      { c.b = binary.LittleEndian.AppendUint64(c.b, math.Float64bits(v)) }
func (c *colBuf) byte(v byte)        { c.b = append(c.b, v) }
func (c *colBuf) str(s string) {
	c.b = binary.AppendUvarint(c.b, uint64(len(s)))
	c.b = append(c.b, s...)
}

func (c *colBuf) addr(a netip.Addr) {
	switch {
	case !a.IsValid():
		c.byte(0)
	case a.Zone() != "":
		c.byte(17)
		v := a.WithZone("").As16()
		c.b = append(c.b, v[:]...)
		c.str(a.Zone())
	case a.Is4():
		c.byte(4)
		v := a.As4()
		c.b = append(c.b, v[:]...)
	default:
		c.byte(16)
		v := a.As16()
		c.b = append(c.b, v[:]...)
	}
}

type columnarWriter struct {
	w       io.Writer
	meta    colBuf
	ents    colBuf
	dns     colBuf
	sans    colBuf
	hdr     []byte
	n       int // pages in the open block
	total   int
	started bool
	closed  bool
	err     error
}

// NewColumnarWriter returns a Writer emitting the columnar binary
// encoding to w. Close writes the end marker and must be checked.
func NewColumnarWriter(w io.Writer) Writer { return &columnarWriter{w: w} }

func (cw *columnarWriter) start() error {
	if cw.started {
		return nil
	}
	cw.started = true
	_, err := io.WriteString(cw.w, columnarMagic)
	return err
}

func (cw *columnarWriter) Write(p *har.Page) error {
	if cw.err != nil {
		return cw.err
	}
	if cw.closed {
		return fmt.Errorf("corpus: write to closed columnar writer")
	}
	if err := cw.start(); err != nil {
		cw.err = err
		return err
	}
	m := &cw.meta
	m.str(p.URL)
	m.str(p.Host)
	m.uvarint(uint64(p.Rank))
	m.f64(p.DOMLoadMs)
	m.f64(p.OnLoadMs)
	m.uvarint(uint64(p.ExtraDNS))
	m.uvarint(uint64(p.ExtraTLS))
	m.uvarint(uint64(len(p.Entries)))
	for i := range p.Entries {
		e := &p.Entries[i]
		c := &cw.ents
		c.f64(e.StartedMs)
		c.str(e.URL)
		c.str(e.Host)
		c.str(e.Method)
		c.str(e.Protocol)
		c.svarint(int64(e.Status))
		c.str(e.MimeType)
		c.svarint(e.BodySize)
		var flags byte
		if e.Secure {
			flags |= entrySecure
		}
		if e.NewDNS {
			flags |= entryNewDNS
		}
		if e.NewTLS {
			flags |= entryNewTLS
		}
		if e.RenderBlocking {
			flags |= entryRenderBlocking
		}
		c.byte(flags)
		c.addr(e.ServerIP)
		c.uvarint(uint64(e.ServerASN))
		c.str(e.CertIssuer)
		c.svarint(int64(e.Initiator))
		t := &e.Timings
		c.f64(t.Blocked)
		c.f64(t.DNS)
		c.f64(t.Connect)
		c.f64(t.SSL)
		c.f64(t.Send)
		c.f64(t.Wait)
		c.f64(t.Receive)

		cw.dns.uvarint(uint64(len(e.DNSAnswer)))
		for _, a := range e.DNSAnswer {
			cw.dns.addr(a)
		}
		cw.sans.uvarint(uint64(len(e.CertSANs)))
		for _, s := range e.CertSANs {
			cw.sans.str(s)
		}
	}
	cw.n++
	cw.total++
	if cw.n >= columnarBlockPages {
		if err := cw.flushBlock(); err != nil {
			cw.err = err
			return err
		}
	}
	return nil
}

func (cw *columnarWriter) flushBlock() error {
	if cw.n == 0 {
		return nil
	}
	cw.hdr = cw.hdr[:0]
	cw.hdr = binary.AppendUvarint(cw.hdr, uint64(cw.n))
	cols := [4]*colBuf{&cw.meta, &cw.ents, &cw.dns, &cw.sans}
	for _, c := range cols {
		cw.hdr = binary.AppendUvarint(cw.hdr, uint64(len(c.b)))
	}
	if _, err := cw.w.Write(cw.hdr); err != nil {
		return err
	}
	for _, c := range cols {
		if _, err := cw.w.Write(c.b); err != nil {
			return err
		}
		c.reset()
	}
	cw.n = 0
	return nil
}

func (cw *columnarWriter) Close() error {
	if cw.err != nil {
		return cw.err
	}
	if cw.closed {
		return nil
	}
	cw.closed = true
	if err := cw.start(); err != nil {
		cw.err = err
		return err
	}
	if err := cw.flushBlock(); err != nil {
		cw.err = err
		return err
	}
	var end []byte
	end = binary.AppendUvarint(end, 0)
	end = binary.AppendUvarint(end, uint64(cw.total))
	if _, err := cw.w.Write(end); err != nil {
		cw.err = err
		return err
	}
	return nil
}

// --- decoding ---

var errTruncated = fmt.Errorf("corpus: truncated columnar stream")

// colDec decodes one column's bytes with a sticky error, so the
// per-field reads stay branch-light on the hot path.
type colDec struct {
	b   []byte
	off int
	err error
}

func (d *colDec) fail() {
	if d.err == nil {
		d.err = errTruncated
	}
}

func (d *colDec) uvarint() uint64 {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *colDec) svarint() int64 {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *colDec) f64() float64 {
	if d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return math.Float64frombits(v)
}

func (d *colDec) byte() byte {
	if d.off >= len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *colDec) bytes(n int) []byte {
	if n < 0 || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *colDec) str() string {
	n := int(d.uvarint())
	b := d.bytes(n)
	if d.err != nil || n == 0 {
		return ""
	}
	return string(b)
}

// strInterned reads a string drawn from a small value set (methods,
// protocol names, MIME types, issuers) through the intern table so
// repeated values share one allocation across the whole corpus.
func (d *colDec) strInterned(in map[string]string) string {
	n := int(d.uvarint())
	b := d.bytes(n)
	if d.err != nil || n == 0 {
		return ""
	}
	if s, ok := in[string(b)]; ok { // compiler elides the conversion
		return s
	}
	s := string(b)
	in[s] = s
	return s
}

func (d *colDec) addr() netip.Addr {
	switch n := d.byte(); n {
	case 0:
		return netip.Addr{}
	case 4:
		b := d.bytes(4)
		if d.err != nil {
			return netip.Addr{}
		}
		return netip.AddrFrom4([4]byte(b))
	case 16:
		b := d.bytes(16)
		if d.err != nil {
			return netip.Addr{}
		}
		return netip.AddrFrom16([16]byte(b))
	case 17:
		b := d.bytes(16)
		if d.err != nil {
			return netip.Addr{}
		}
		a := netip.AddrFrom16([16]byte(b))
		return a.WithZone(d.str())
	default:
		d.fail()
		return netip.Addr{}
	}
}

func (d *colDec) done() bool { return d.err == nil && d.off == len(d.b) }

type columnarReader struct {
	br        *bufio.Reader
	meta      colDec
	ents      colDec
	dns       colDec
	sans      colDec
	bufs      [4][]byte // reused block column storage
	remaining int       // pages left in the open block
	read      int       // pages decoded so far
	intern    map[string]string
	started   bool
	done      bool
	err       error
}

// NewColumnarReader returns a Reader decoding the columnar binary
// encoding from r.
func NewColumnarReader(r io.Reader) Reader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	return &columnarReader{br: br, intern: make(map[string]string, 64)}
}

func (cr *columnarReader) fail(err error) (*har.Page, error) {
	cr.err = err
	return nil, err
}

func (cr *columnarReader) Next() (*har.Page, error) {
	if cr.err != nil {
		return nil, cr.err
	}
	if cr.done {
		return nil, io.EOF
	}
	if !cr.started {
		head := make([]byte, len(columnarMagic))
		if _, err := io.ReadFull(cr.br, head); err != nil {
			return cr.fail(fmt.Errorf("corpus: reading columnar header: %w", err))
		}
		if string(head[:len(columnarMagicPrefix)]) != columnarMagicPrefix {
			return cr.fail(fmt.Errorf("corpus: not a columnar corpus (bad magic)"))
		}
		if v := head[len(columnarMagic)-1]; v != ColumnarVersion {
			return cr.fail(fmt.Errorf("corpus: columnar format version %d not supported (this build reads version %d)", v, ColumnarVersion))
		}
		cr.started = true
	}
	if cr.remaining == 0 {
		if err := cr.readBlock(); err != nil {
			if err != io.EOF {
				cr.err = err
			}
			return nil, err
		}
	}
	p, err := cr.decodePage()
	if err != nil {
		return cr.fail(err)
	}
	cr.remaining--
	cr.read++
	if cr.remaining == 0 {
		// A block's columns must be consumed exactly by its pages.
		for name, d := range map[string]*colDec{"meta": &cr.meta, "entries": &cr.ents, "dns": &cr.dns, "sans": &cr.sans} {
			if !d.done() {
				return cr.fail(fmt.Errorf("corpus: columnar %s column not fully consumed (corrupt block)", name))
			}
		}
	}
	return p, nil
}

// readBlock loads the next block's columns, or observes the end marker
// and returns io.EOF after verifying the trailing page total.
func (cr *columnarReader) readBlock() error {
	npages, err := binary.ReadUvarint(cr.br)
	if err != nil {
		return fmt.Errorf("corpus: reading columnar block header: %w", err)
	}
	if npages == 0 {
		total, err := binary.ReadUvarint(cr.br)
		if err != nil {
			return fmt.Errorf("corpus: reading columnar trailer: %w", err)
		}
		if int(total) != cr.read {
			return fmt.Errorf("corpus: columnar trailer records %d pages, stream carried %d", total, cr.read)
		}
		cr.done = true
		return io.EOF
	}
	decs := [4]*colDec{&cr.meta, &cr.ents, &cr.dns, &cr.sans}
	var lens [4]uint64
	for i := range lens {
		if lens[i], err = binary.ReadUvarint(cr.br); err != nil {
			return fmt.Errorf("corpus: reading columnar block header: %w", err)
		}
		if lens[i] > 1<<31 {
			return fmt.Errorf("corpus: columnar column block of %d bytes exceeds the 2 GiB bound", lens[i])
		}
	}
	for i, d := range decs {
		n := int(lens[i])
		if cap(cr.bufs[i]) < n {
			cr.bufs[i] = make([]byte, n)
		}
		cr.bufs[i] = cr.bufs[i][:n]
		if _, err := io.ReadFull(cr.br, cr.bufs[i]); err != nil {
			return fmt.Errorf("corpus: reading columnar block: %w", err)
		}
		*d = colDec{b: cr.bufs[i]}
	}
	cr.remaining = int(npages)
	return nil
}

func (cr *columnarReader) decodePage() (*har.Page, error) {
	m := &cr.meta
	p := &har.Page{
		URL:  m.str(),
		Host: m.str(),
		Rank: int(m.uvarint()),
	}
	p.DOMLoadMs = m.f64()
	p.OnLoadMs = m.f64()
	p.ExtraDNS = int(m.uvarint())
	p.ExtraTLS = int(m.uvarint())
	nent := int(m.uvarint())
	if m.err != nil {
		return nil, m.err
	}
	if nent > len(cr.ents.b) { // each entry is ≥ 1 byte in its column
		return nil, fmt.Errorf("corpus: columnar page declares %d entries, column has %d bytes", nent, len(cr.ents.b))
	}
	if nent > 0 {
		p.Entries = make([]har.Entry, nent)
	}
	for i := 0; i < nent; i++ {
		e := &p.Entries[i]
		c := &cr.ents
		e.StartedMs = c.f64()
		e.URL = c.str()
		e.Host = c.str()
		e.Method = c.strInterned(cr.intern)
		e.Protocol = c.strInterned(cr.intern)
		e.Status = int(c.svarint())
		e.MimeType = c.strInterned(cr.intern)
		e.BodySize = c.svarint()
		flags := c.byte()
		e.Secure = flags&entrySecure != 0
		e.NewDNS = flags&entryNewDNS != 0
		e.NewTLS = flags&entryNewTLS != 0
		e.RenderBlocking = flags&entryRenderBlocking != 0
		e.ServerIP = c.addr()
		e.ServerASN = uint32(c.uvarint())
		e.CertIssuer = c.strInterned(cr.intern)
		e.Initiator = int(c.svarint())
		t := &e.Timings
		t.Blocked = c.f64()
		t.DNS = c.f64()
		t.Connect = c.f64()
		t.SSL = c.f64()
		t.Send = c.f64()
		t.Wait = c.f64()
		t.Receive = c.f64()

		if naddr := int(cr.dns.uvarint()); cr.dns.err == nil && naddr > 0 {
			if naddr > len(cr.dns.b) {
				return nil, fmt.Errorf("corpus: columnar DNS answer set of %d exceeds column size", naddr)
			}
			e.DNSAnswer = make([]netip.Addr, naddr)
			for j := range e.DNSAnswer {
				e.DNSAnswer[j] = cr.dns.addr()
			}
		}
		if nsan := int(cr.sans.uvarint()); cr.sans.err == nil && nsan > 0 {
			if nsan > len(cr.sans.b) {
				return nil, fmt.Errorf("corpus: columnar SAN set of %d exceeds column size", nsan)
			}
			e.CertSANs = make([]string, nsan)
			for j := range e.CertSANs {
				e.CertSANs[j] = cr.sans.str()
			}
		}
	}
	for _, d := range [4]*colDec{m, &cr.ents, &cr.dns, &cr.sans} {
		if d.err != nil {
			return nil, d.err
		}
	}
	return p, nil
}

func (cr *columnarReader) Close() error { return nil }
