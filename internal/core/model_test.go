package core

import (
	"net/netip"
	"testing"

	"respectorigin/internal/har"
	"respectorigin/internal/measure"
	"respectorigin/internal/webgen"
)

func ip(s string) netip.Addr { return netip.MustParseAddr(s) }

// modelPage builds the Figure 2 example: a base page plus five
// subresources, four on the same CDN (coalescable) and one on an
// unrelated tracker AS.
func modelPage() *har.Page {
	const cdnASN = 13335
	const trackerASN = 64500
	mk := func(start float64, host string, asn uint32, addr string, init int, dns, conn, ssl float64) har.Entry {
		return har.Entry{
			StartedMs: start, URL: "https://" + host + "/", Host: host,
			Method: "GET", Protocol: "h2", Status: 200, Secure: true,
			ServerIP: ip(addr), ServerASN: asn, Initiator: init,
			NewDNS: dns > 0, NewTLS: ssl > 0,
			Timings: har.Timings{DNS: dns, Connect: conn, SSL: ssl, Send: 1, Wait: 30, Receive: 10},
		}
	}
	p := &har.Page{
		URL: "https://www.example.com/", Host: "www.example.com",
		Entries: []har.Entry{
			mk(0, "www.example.com", cdnASN, "203.0.113.1", -1, 20, 25, 30),
			// Two coalescable requests starting "at the same time" with
			// different DNS times (the conservative-min example).
			mk(120, "static.example.com", cdnASN, "203.0.113.2", 0, 20, 25, 30),
			mk(130, "assets.cdnhost.com", cdnASN, "203.0.113.3", 0, 35, 25, 30),
			// A later coalescable font request.
			mk(300, "fonts.cdnhost.com", cdnASN, "203.0.113.4", 2, 15, 25, 30),
			// Not coalescable: different AS.
			mk(310, "analytics.tracker.com", trackerASN, "198.51.100.9", 1, 18, 25, 30),
			// Same-IP repeat of the tracker (IP-coalescable).
			mk(420, "analytics.tracker.com", trackerASN, "198.51.100.9", 4, 18, 25, 30),
		},
	}
	p.Entries[0].CertSANs = []string{"www.example.com", "example.com"}
	p.OnLoadMs = p.LastEntryEnd()
	return p
}

func TestCoalescableOriginMode(t *testing.T) {
	p := modelPage()
	c := Coalescable(p, ModeOrigin, 0)
	want := []bool{false, true, true, true, false, true}
	for i := range want {
		if c[i] != want[i] {
			t.Errorf("entry %d coalescable = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestCoalescableIPMode(t *testing.T) {
	p := modelPage()
	c := Coalescable(p, ModeIP, 0)
	// Only the repeated tracker request shares an exact IP.
	want := []bool{false, false, false, false, false, true}
	for i := range want {
		if c[i] != want[i] {
			t.Errorf("entry %d coalescable = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestCoalescableCDNMode(t *testing.T) {
	p := modelPage()
	c := Coalescable(p, ModeOriginCDN, 13335)
	want := []bool{false, true, true, true, false, false}
	for i := range want {
		if c[i] != want[i] {
			t.Errorf("entry %d coalescable = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestRootNeverCoalescable(t *testing.T) {
	p := modelPage()
	for _, mode := range []Mode{ModeIP, ModeOrigin, ModeOriginCDN} {
		if Coalescable(p, mode, 13335)[0] {
			t.Errorf("root coalescable under %v", mode)
		}
	}
}

func TestReconstructRemovesSetupPhases(t *testing.T) {
	p := modelPage()
	q := Reconstruct(p, ModeOrigin, 0)
	if err := q.Validate(); err != nil {
		t.Fatalf("reconstructed page invalid: %v", err)
	}
	// Coalesced entries lose Connect and SSL.
	for _, i := range []int{1, 2, 3, 5} {
		tm := q.Entries[i].Timings
		if tm.Connect != 0 || tm.SSL != 0 {
			t.Errorf("entry %d kept connect/ssl: %+v", i, tm)
		}
		if q.Entries[i].NewTLS {
			t.Errorf("entry %d still marked NewTLS", i)
		}
	}
	// Root unchanged.
	if q.Entries[0].Timings != p.Entries[0].Timings {
		t.Error("root timings modified")
	}
	// Non-coalescable tracker keeps its phases.
	if q.Entries[4].Timings.SSL == 0 {
		t.Error("non-coalescable entry lost SSL phase")
	}
}

func TestReconstructConservativeMinDNS(t *testing.T) {
	p := modelPage()
	q := Reconstruct(p, ModeOrigin, 0)
	// Entries 1 (DNS 20) and 2 (DNS 35) start within the same window:
	// the minimum (20) is subtracted from both, retaining the 15 ms
	// difference on entry 2 (§4.1).
	if q.Entries[1].Timings.DNS != 0 {
		t.Errorf("entry 1 DNS = %v, want 0", q.Entries[1].Timings.DNS)
	}
	if q.Entries[2].Timings.DNS != 15 {
		t.Errorf("entry 2 DNS = %v, want 15", q.Entries[2].Timings.DNS)
	}
	// Entry 3 is alone in its window: its whole DNS time is removed.
	if q.Entries[3].Timings.DNS != 0 {
		t.Errorf("entry 3 DNS = %v, want 0", q.Entries[3].Timings.DNS)
	}
}

func TestReconstructImprovesPLT(t *testing.T) {
	p := modelPage()
	for _, mode := range []Mode{ModeIP, ModeOrigin, ModeOriginCDN} {
		measured, rec := PLTImprovement(p, mode, 13335)
		if rec > measured {
			t.Errorf("%v: reconstruction worsened PLT: %v -> %v", mode, measured, rec)
		}
	}
	// ORIGIN must beat IP here: four same-AS requests vs one same-IP.
	_, recIP := PLTImprovement(p, ModeIP, 0)
	_, recOrigin := PLTImprovement(p, ModeOrigin, 0)
	if recOrigin >= recIP {
		t.Errorf("origin PLT %v not better than IP PLT %v", recOrigin, recIP)
	}
}

func TestReconstructPreservesDependencyGaps(t *testing.T) {
	p := modelPage()
	q := Reconstruct(p, ModeOrigin, 0)
	// Child 3's gap after parent 2 must be preserved exactly.
	origGap := p.Entries[3].StartedMs - p.Entries[2].EndMs()
	newGap := q.Entries[3].StartedMs - q.Entries[2].EndMs()
	if diff := origGap - newGap; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("gap changed: %v -> %v", origGap, newGap)
	}
}

func TestCountPage(t *testing.T) {
	p := modelPage()
	pc := CountPage(p)
	if pc.MeasuredDNS != 6 || pc.MeasuredTLS != 6 {
		t.Errorf("measured = %+v", pc)
	}
	// 5 unique IPs; 3 services (CDN AS, tracker AS... tracker secure
	// AS-coalesces too) → services: as:13335, as:64500 → 2.
	if pc.IdealIP != 5 {
		t.Errorf("ideal IP = %d, want 5", pc.IdealIP)
	}
	if pc.IdealOrigin != 2 {
		t.Errorf("ideal origin = %d, want 2", pc.IdealOrigin)
	}
	if pc.MeasuredValidations != pc.MeasuredTLS {
		t.Error("validations != TLS handshakes")
	}
}

func TestCountPageOrderingInvariant(t *testing.T) {
	// On any generated page: ideal origin ≤ ideal IP ≤ measured TLS.
	cfg := webgen.DefaultConfig()
	cfg.Sites = 300
	ds, err := webgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Pages {
		pc := CountPage(p)
		if pc.IdealOrigin > pc.IdealIP {
			t.Fatalf("page %s: origin %d > ip %d", p.Host, pc.IdealOrigin, pc.IdealIP)
		}
		if pc.IdealIP > pc.MeasuredTLS+pc.MeasuredDNS {
			t.Fatalf("page %s: ideal IP %d exceeds measured activity", p.Host, pc.IdealIP)
		}
	}
}

func TestReconstructMonotoneOnCorpus(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Sites = 200
	ds, err := webgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Pages {
		for _, mode := range []Mode{ModeIP, ModeOrigin} {
			q := Reconstruct(p, mode, 0)
			if err := q.Validate(); err != nil {
				t.Fatalf("page %s mode %v: %v", p.Host, mode, err)
			}
			if q.PLT() > p.PLT()+1e-6 {
				t.Fatalf("page %s mode %v: PLT worsened %v -> %v", p.Host, mode, p.PLT(), q.PLT())
			}
		}
	}
}

// TestHeadlineNumbers reproduces the paper's §7 headline: ORIGIN
// coalescing reduces median DNS queries by ~64% and TLS connections
// (certificate validations) by ~67-69%, down to a median of ~5 each
// (§4.2, Figure 3).
func TestHeadlineNumbers(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Sites = 3000
	ds, err := webgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mDNS, mTLS, idealIP, idealOrigin []float64
	for _, p := range ds.Pages {
		pc := CountPage(p)
		mDNS = append(mDNS, float64(pc.MeasuredDNS))
		mTLS = append(mTLS, float64(pc.MeasuredTLS))
		idealIP = append(idealIP, float64(pc.IdealIP))
		idealOrigin = append(idealOrigin, float64(pc.IdealOrigin))
	}
	medDNS := measure.Median(mDNS)
	medTLS := measure.Median(mTLS)
	medIP := measure.Median(idealIP)
	medOrigin := measure.Median(idealOrigin)

	t.Logf("medians: DNS=%.1f TLS=%.1f idealIP=%.1f idealOrigin=%.1f", medDNS, medTLS, medIP, medOrigin)

	// Paper: measured 14/16, ideal IP 13, ideal ORIGIN 5.
	if medOrigin > 9 {
		t.Errorf("ideal origin median = %.1f, want ≈5", medOrigin)
	}
	dnsRed := measure.ReductionPct(medDNS, medOrigin)
	tlsRed := measure.ReductionPct(medTLS, medOrigin)
	if dnsRed < 40 || dnsRed > 80 {
		t.Errorf("DNS reduction = %.1f%%, paper ≈64%%", dnsRed)
	}
	if tlsRed < 45 || tlsRed > 85 {
		t.Errorf("TLS reduction = %.1f%%, paper ≈67%%", tlsRed)
	}
	// IP-only coalescing is a small improvement (paper: ~7% DNS, ~19% TLS).
	ipRedTLS := measure.ReductionPct(medTLS, medIP)
	if ipRedTLS < 2 || ipRedTLS > 45 {
		t.Errorf("IP TLS reduction = %.1f%%, paper ≈19%%", ipRedTLS)
	}
	// Ordering: origin wins over IP.
	if medOrigin >= medIP {
		t.Errorf("origin median %.1f not better than IP median %.1f", medOrigin, medIP)
	}
}

func TestModeStrings(t *testing.T) {
	if ModeIP.String() != "ideal-ip" || ModeOrigin.String() != "ideal-origin" ||
		ModeOriginCDN.String() != "cdn-origin" || Mode(9).String() != "unknown" {
		t.Error("mode strings")
	}
}

func TestClampNonNegative(t *testing.T) {
	if ClampNonNegative(-1) != 0 || ClampNonNegative(2) != 2 {
		t.Error("clamp")
	}
}
