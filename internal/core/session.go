// Session consolidates the client-side experiment wiring that the cmd
// mains and example programs used to hand-assemble piecewise: one value
// carries the resolver, the network model, the fault plan and retry
// budget, the observability recorder, and the warm-path cache policy,
// and hands out consistently-configured browsers, environments and
// caches on demand.
package core

import (
	"respectorigin/internal/browser"
	"respectorigin/internal/cache"
	"respectorigin/internal/dns"
	"respectorigin/internal/faults"
	"respectorigin/internal/netsim"
	"respectorigin/internal/obs"
)

// DefaultRetryBackoffMs is the base backoff browsers get under a
// nonzero fault plan, matching the deployment experiment's schedule.
const DefaultRetryBackoffMs = 250

// Session is the shared client-side configuration of one experiment
// run. The zero value is usable: no faults, no recorder, no cache, the
// default network model, and no resolver until WithAuthority installs
// one. Fields are set at construction via SessionOptions and read-only
// afterwards.
type Session struct {
	Seed     int64
	Resolver *dns.Resolver
	Net      netsim.Params

	// Fault policy: the plan every environment wrapped by WrapEnv
	// samples, and the retry budget browsers get when it is nonzero.
	Plan      faults.Plan
	Retries   int
	BackoffMs float64

	// Rec receives every layer's counters and trace events; nil (the
	// default) keeps observation off everywhere.
	Rec obs.Recorder

	// Protocol is the application protocol browsers minted by NewBrowser
	// speak. The zero value (ProtoH2) preserves historical behaviour.
	Protocol Protocol

	// CacheOpts parameterizes the warm-path caches NewCache mints;
	// cacheOn gates whether NewCache mints at all.
	CacheOpts cache.Options
	cacheOn   bool

	inj *faults.Injector
}

// SessionOption configures a Session at construction.
type SessionOption func(*Session)

// NewSession builds a Session seeded for deterministic replay.
func NewSession(seed int64, opts ...SessionOption) *Session {
	s := &Session{Seed: seed, Net: netsim.DefaultParams(), BackoffMs: DefaultRetryBackoffMs}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// WithAuthority installs a stub resolver over the given authority,
// wired to the session's recorder and (when caching is on) a shared
// warm-path cache.
func WithAuthority(a *dns.Authority) SessionOption {
	return func(s *Session) {
		s.Resolver = dns.NewResolver(a)
		s.Resolver.SetRecorder(s.Rec)
		if s.cacheOn {
			s.Resolver.UseCache(cache.New(s.CacheOpts))
		}
	}
}

// WithNetwork overrides the network model parameters.
func WithNetwork(p netsim.Params) SessionOption {
	return func(s *Session) { s.Net = p }
}

// WithFaults installs a degradation plan and the browser retry budget
// that accompanies it. The injector draws from its own seeded stream
// (Seed ^ 0x5fa17e, the same derivation the deployment experiment
// uses), so fault sampling never perturbs an experiment's own
// randomness and a zero plan leaves every output byte-identical.
func WithFaults(plan faults.Plan, retries int) SessionOption {
	return func(s *Session) {
		s.Plan = plan
		s.Retries = retries
		if !plan.Zero() {
			s.inj = faults.NewInjector(plan, s.Seed^0x5fa17e)
		}
	}
}

// WithRecorder installs the observability recorder. Order matters:
// pass it before WithAuthority so the resolver picks it up.
func WithRecorder(rec obs.Recorder) SessionOption {
	return func(s *Session) { s.Rec = rec }
}

// WithCache turns the warm-path cache subsystem on with the given
// options (zero values select the cache package defaults).
func WithCache(opts cache.Options) SessionOption {
	return func(s *Session) {
		s.CacheOpts = opts
		s.cacheOn = true
	}
}

// WithProtocol selects the application protocol session browsers speak
// (h1 keep-alive, the h2 baseline, or h3 over QUIC).
func WithProtocol(p Protocol) SessionOption {
	return func(s *Session) { s.Protocol = p }
}

// CacheEnabled reports whether WithCache was applied.
func (s *Session) CacheEnabled() bool { return s.cacheOn }

// NewCache mints a fresh warm-path cache under the session's policy,
// or nil when caching is off — one per simulated client, since warm
// state must never be shared across distinct clients (that would model
// a shared OS cache, not a returning visitor).
func (s *Session) NewCache() *cache.Cache {
	if !s.cacheOn {
		return nil
	}
	return cache.New(s.CacheOpts)
}

// Injector returns the session's fault injector (nil under a zero
// plan).
func (s *Session) Injector() *faults.Injector { return s.inj }

// NewBrowser hands out a browser configured with the session's retry
// budget, recorder and a fresh warm-path cache.
func (s *Session) NewBrowser(p browser.Policy) *browser.Browser {
	return browser.New(p,
		browser.WithRetries(s.Retries, s.BackoffMs),
		browser.WithRecorder(s.Rec, 0),
		browser.WithCache(s.NewCache()),
		browser.WithProtocol(s.Protocol),
	)
}

// WrapEnv layers the session's fault plan over an environment; under a
// zero plan the environment is returned unchanged, preserving the
// fault-free fast path exactly.
func (s *Session) WrapEnv(env browser.Environment) browser.Environment {
	if s.inj == nil {
		return env
	}
	return &faults.Env{Inner: env, Inj: s.inj}
}
