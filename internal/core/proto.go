package core

import (
	"respectorigin/internal/browser"
	"respectorigin/internal/cache"
	"respectorigin/internal/har"
)

// Protocol re-exports the browser package's protocol enum so callers
// configuring a Session need not import browser directly.
type Protocol = browser.Protocol

// Protocol values, zero value (h2) first.
const (
	ProtoH2 = browser.ProtoH2
	ProtoH1 = browser.ProtoH1
	ProtoH3 = browser.ProtoH3
)

// Protocols lists every protocol in sweep order (h1, h2, h3).
var Protocols = browser.Protocols

// ParseProtocol parses "h1", "h2" and "h3" (the -proto flag values).
func ParseProtocol(s string) (Protocol, error) { return browser.ParseProtocol(s) }

// ProtocolReplayCosts replays one recorded page load under the given
// protocol and returns what the visit paid. ProtoH2 is exactly
// WarmReplayCosts — the paper's baseline, byte for byte. The other two
// protocols reinterpret the page's connection structure while keeping
// its DNS accounting identical, deliberately isolating the transport
// effect from resolution effects so per-protocol ledgers stay directly
// comparable (LookupsNeeded is invariant across protocols):
//
//   - ProtoH1: no cross-host coalescing. A request reuses a connection
//     only when an earlier request in the same visit already connected
//     to the same hostname (keep-alive); every first contact with a
//     hostname pays a connection, whatever the recorded h2 coalescing
//     said. Tickets are redeemed and minted under the h1 key.
//   - ProtoH3: the recorded coalescing structure holds (the SAN rules
//     authorizing h2 coalescing authorize h3 pooling equally), but every
//     fresh connection additionally settles address validation: a
//     stored token covering the host skips the Retry round trip
//     (AddrTokenHits), otherwise validation is performed
//     (AddrValidations). A ticket and a token together make the
//     handshake 0-RTT. Both are redeemed and minted under the h3 key,
//     so h2 state never leaks into an h3 replay.
//
// A nil cache replays the pure cold visit for every protocol.
func ProtocolReplayCosts(p *har.Page, proto Protocol, c *cache.Cache) VisitCosts {
	if proto == ProtoH2 {
		return WarmReplayCosts(p, c)
	}
	vc := VisitCosts{Pages: 1}
	connected := map[string]bool{}
	for i := range p.Entries {
		e := &p.Entries[i]
		if e.NewDNS {
			if _, negative, ok := c.LookupDNS(e.Host); ok {
				if negative {
					vc.DNSNegHits++
				} else {
					vc.DNSCacheHits++
				}
			} else {
				vc.DNSQueries++
				if len(e.DNSAnswer) > 0 {
					c.PutDNS(e.Host, e.DNSAnswer, c.DefaultTTL())
				}
			}
		} else {
			vc.DNSCoalesced++
		}
		if !e.Secure {
			continue
		}
		vc.ConnsNeeded++
		reused := !e.NewTLS
		if proto == ProtoH1 {
			// Keep-alive only: reuse requires a live same-host connection.
			reused = connected[e.Host]
			connected[e.Host] = true
		}
		if reused {
			vc.ReusedConns++
			continue
		}
		sans := e.CertSANs
		if len(sans) == 0 {
			sans = []string{e.Host}
		}
		wire := proto.Wire()
		if c.RedeemTicketProto(e.Host, wire) {
			vc.ResumedTLS++
			if proto == ProtoH3 && c.RedeemToken(e.Host, wire) {
				vc.AddrTokenHits++
				vc.ZeroRTT++
			} else if proto == ProtoH3 {
				vc.AddrValidations++
			}
		} else {
			vc.FullHandshakes++
			if c.ValidateChain(e.CertIssuer, sans) {
				vc.CertMemoHits++
			} else {
				vc.Validations++
			}
			if proto == ProtoH3 {
				if c.RedeemToken(e.Host, wire) {
					vc.AddrTokenHits++
				} else {
					vc.AddrValidations++
				}
			}
		}
		c.StoreTicketProto(sans, wire)
		if proto == ProtoH3 {
			c.StoreToken(sans, wire)
		}
	}
	// Races fire before any warm state could be consulted; under h3 the
	// speculative connections also pay address validation.
	vc.DNSQueries += p.ExtraDNS
	vc.ConnsNeeded += p.ExtraTLS
	vc.FullHandshakes += p.ExtraTLS
	vc.Validations += p.ExtraTLS
	if proto == ProtoH3 {
		vc.AddrValidations += p.ExtraTLS
	}
	return vc
}

// ProtocolReplaySequence replays a page visits times under one protocol
// against one fresh cache built from opts, advancing the cache clock by
// the configured revisit interval between visits — the per-protocol
// analogue of WarmReplaySequence (to which it is byte-identical at
// ProtoH2).
func ProtocolReplaySequence(p *har.Page, visits int, opts cache.Options, proto Protocol) []VisitCosts {
	if visits <= 0 {
		return nil
	}
	c := cache.New(opts)
	out := make([]VisitCosts, visits)
	for v := 0; v < visits; v++ {
		if v > 0 {
			c.Clock().AdvanceMs(c.Opts().RevisitIntervalMs)
		}
		out[v] = ProtocolReplayCosts(p, proto, c)
	}
	return out
}
