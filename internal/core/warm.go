package core

import (
	"respectorigin/internal/cache"
	"respectorigin/internal/har"
)

// VisitCosts is the per-visit cost ledger of a warm/cold page-load
// sequence: what one visit (or a sum of visits) actually paid in DNS
// queries, TLS handshakes and certificate validations, with every
// avoided unit attributed to exactly one cause — coalescing reuse,
// DNS cache, ticket resumption, or the cert memo — at the moment it
// was avoided. That discipline makes the savings decomposition exact
// by construction:
//
//	ConnsNeeded    = ReusedConns + ResumedTLS + FullHandshakes
//	FullHandshakes = Validations + CertMemoHits
//	lookups needed = DNSQueries + DNSCacheHits + DNSNegHits + DNSCoalesced
//
// so differences between two visits of the same page decompose into
// per-cause differences with no remainder.
type VisitCosts struct {
	Pages int // page loads folded into this ledger

	// DNS lookups by how they were satisfied.
	DNSQueries   int // wire queries actually issued
	DNSCacheHits int // served from the positive DNS cache
	DNSNegHits   int // answered by the negative DNS cache
	DNSCoalesced int // skipped entirely (request rode existing state)

	// TLS connections by how they were satisfied.
	ConnsNeeded    int // secure requests that needed a connection
	ReusedConns    int // satisfied by coalescing/pool reuse
	ResumedTLS     int // established via session-ticket resumption
	FullHandshakes int // full TLS handshakes performed

	// Chain validations within the full handshakes.
	Validations  int // validations actually performed
	CertMemoHits int // skipped via the validated-chain memo

	// h3-only decomposition, all zero for h1/h2 replays. Every fresh h3
	// connection either redeems an address-validation token or performs
	// address validation (the Retry round trip), so for an h3 ledger
	//
	//	AddrTokenHits + AddrValidations = ResumedTLS + FullHandshakes
	//
	// and ZeroRTT counts the resumed connections that also hit a token.
	ZeroRTT         int // 0-RTT handshakes (ticket + token both redeemed)
	AddrTokenHits   int // address-validation tokens redeemed
	AddrValidations int // address validations performed (no token cover)
}

// Add folds o into v field-wise. Addition is associative and
// commutative, so per-page ledgers merge identically for any shard
// order or worker count.
func (v *VisitCosts) Add(o VisitCosts) {
	v.Pages += o.Pages
	v.DNSQueries += o.DNSQueries
	v.DNSCacheHits += o.DNSCacheHits
	v.DNSNegHits += o.DNSNegHits
	v.DNSCoalesced += o.DNSCoalesced
	v.ConnsNeeded += o.ConnsNeeded
	v.ReusedConns += o.ReusedConns
	v.ResumedTLS += o.ResumedTLS
	v.FullHandshakes += o.FullHandshakes
	v.Validations += o.Validations
	v.CertMemoHits += o.CertMemoHits
	v.ZeroRTT += o.ZeroRTT
	v.AddrTokenHits += o.AddrTokenHits
	v.AddrValidations += o.AddrValidations
}

// LookupsNeeded is the visit's total DNS demand, however satisfied.
// It is constant across revisits of the same page, which is what makes
// per-cause DNS savings exact.
func (v VisitCosts) LookupsNeeded() int {
	return v.DNSQueries + v.DNSCacheHits + v.DNSNegHits + v.DNSCoalesced
}

// Consistent reports whether the ledger's internal identities hold;
// a false return means some unit was double-counted or dropped and the
// savings decomposition cannot be exact.
func (v VisitCosts) Consistent() bool {
	if v.ConnsNeeded != v.ReusedConns+v.ResumedTLS+v.FullHandshakes ||
		v.FullHandshakes != v.Validations+v.CertMemoHits {
		return false
	}
	// The h3 address-validation identity is "zero or exact": h1/h2
	// ledgers carry no token state at all, h3 ledgers must account every
	// fresh connection as either a token hit or a validation.
	addr := v.AddrTokenHits + v.AddrValidations
	return addr == 0 || addr == v.ResumedTLS+v.FullHandshakes
}

// WarmReplayCosts replays one recorded page load against a warm-path
// cache and returns what the visit paid. The page itself is the visit
// structure — which requests issued fresh DNS queries and handshakes
// (NewDNS/NewTLS) versus riding existing state — and the cache decides,
// per fresh setup, whether warm state makes it cheaper:
//
//   - a NewDNS entry consults the DNS cache before "querying"; misses
//     populate it with the entry's answer set under the cache's default
//     TTL (HAR records carry no TTLs);
//   - a NewTLS entry redeems a session ticket when one covers the host
//     (skipping the full handshake and validation entirely), otherwise
//     performs a full handshake whose chain validation the memo may
//     skip; either way the handshake's certificate mints a ticket;
//   - entries reusing connections (!NewTLS, secure) count as coalescing
//     reuse; race extras (ExtraDNS/ExtraTLS) are speculative and bypass
//     every cache, so they cost the same on every visit.
//
// A nil cache replays the pure cold visit: the returned DNSQueries and
// FullHandshakes then equal the page's measured §4.2 counts exactly
// (p.DNSQueries() and p.TLSConnections()).
func WarmReplayCosts(p *har.Page, c *cache.Cache) VisitCosts {
	vc := VisitCosts{Pages: 1}
	for i := range p.Entries {
		e := &p.Entries[i]
		if e.NewDNS {
			if _, negative, ok := c.LookupDNS(e.Host); ok {
				if negative {
					vc.DNSNegHits++
				} else {
					vc.DNSCacheHits++
				}
			} else {
				vc.DNSQueries++
				if len(e.DNSAnswer) > 0 {
					c.PutDNS(e.Host, e.DNSAnswer, c.DefaultTTL())
				}
			}
		} else {
			vc.DNSCoalesced++
		}
		if !e.Secure {
			continue
		}
		if !e.NewTLS {
			vc.ConnsNeeded++
			vc.ReusedConns++
			continue
		}
		vc.ConnsNeeded++
		sans := e.CertSANs
		if len(sans) == 0 {
			sans = []string{e.Host}
		}
		if c.RedeemTicket(e.Host) {
			vc.ResumedTLS++
		} else {
			vc.FullHandshakes++
			if c.ValidateChain(e.CertIssuer, sans) {
				vc.CertMemoHits++
			} else {
				vc.Validations++
			}
		}
		c.StoreTicket(sans)
	}
	// Happy-eyeballs and speculative-connection races (§4.2) fire
	// before any answer or ticket could be consulted.
	vc.DNSQueries += p.ExtraDNS
	vc.ConnsNeeded += p.ExtraTLS
	vc.FullHandshakes += p.ExtraTLS
	vc.Validations += p.ExtraTLS
	return vc
}

// WarmReplaySequence replays a page visits times against one fresh
// cache built from opts, advancing the cache clock by the configured
// revisit interval between visits. Element i of the result is what
// visit i+1 paid; visit 1 is the cold load. A zero visits count
// returns nil.
func WarmReplaySequence(p *har.Page, visits int, opts cache.Options) []VisitCosts {
	if visits <= 0 {
		return nil
	}
	c := cache.New(opts)
	out := make([]VisitCosts, visits)
	for v := 0; v < visits; v++ {
		if v > 0 {
			c.Clock().AdvanceMs(c.Opts().RevisitIntervalMs)
		}
		out[v] = WarmReplayCosts(p, c)
	}
	return out
}
