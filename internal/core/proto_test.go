package core

import (
	"reflect"
	"testing"

	"respectorigin/internal/cache"
	"respectorigin/internal/har"
	"respectorigin/internal/webgen"
)

func protoTestPages(t *testing.T) []*har.Page {
	t.Helper()
	cfg := webgen.DefaultConfig()
	cfg.Sites = 150
	cfg.Seed = 5
	ds, err := webgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Pages
}

// The h2 protocol replay IS the legacy warm replay: threading the
// protocol through must not move a single count on the default path.
func TestProtocolReplayH2MatchesWarmReplay(t *testing.T) {
	opts := cache.Options{}
	for _, p := range protoTestPages(t) {
		want := WarmReplaySequence(p, 3, opts)
		got := ProtocolReplaySequence(p, 3, opts, ProtoH2)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("page %s: h2 protocol replay differs from WarmReplaySequence:\n got %+v\nwant %+v",
				p.Host, got, want)
		}
	}
}

// Every h3 visit ledger must hold the exact address-validation
// identity (every fresh connection is a token hit or a validation),
// and h1/h2 ledgers must carry no h3 state at all.
func TestProtocolReplayLedgerIdentities(t *testing.T) {
	opts := cache.Options{}
	pages := protoTestPages(t)
	var warmZeroRTT int
	for _, p := range pages {
		for proto, seq := range map[Protocol][]VisitCosts{
			ProtoH1: ProtocolReplaySequence(p, 3, opts, ProtoH1),
			ProtoH2: ProtocolReplaySequence(p, 3, opts, ProtoH2),
			ProtoH3: ProtocolReplaySequence(p, 3, opts, ProtoH3),
		} {
			for v, vc := range seq {
				if !vc.Consistent() {
					t.Fatalf("page %s %s visit %d: inconsistent ledger %+v", p.Host, proto, v+1, vc)
				}
				if proto != ProtoH3 {
					if vc.ZeroRTT != 0 || vc.AddrTokenHits != 0 || vc.AddrValidations != 0 {
						t.Fatalf("page %s %s visit %d: non-h3 ledger carries h3 state %+v", p.Host, proto, v+1, vc)
					}
					continue
				}
				fresh := vc.ResumedTLS + vc.FullHandshakes - p.ExtraTLS
				if got := vc.AddrTokenHits + vc.AddrValidations - p.ExtraTLS; fresh > 0 && got != fresh {
					t.Fatalf("page %s h3 visit %d: token accounting %d != fresh conns %d (%+v)",
						p.Host, v+1, got, fresh, vc)
				}
				if v > 0 {
					warmZeroRTT += vc.ZeroRTT
				}
			}
		}
	}
	if warmZeroRTT == 0 {
		t.Fatal("no warm h3 visit achieved 0-RTT across the corpus — tokens or tickets are not redeeming")
	}
}
