package core

import (
	"reflect"
	"testing"

	"respectorigin/internal/asn"
	"respectorigin/internal/har"
	"respectorigin/internal/webgen"
)

func TestPlanCertChanges(t *testing.T) {
	p := modelPage()
	plan := PlanCertChanges(p)
	if plan.Site != "www.example.com" {
		t.Errorf("site = %s", plan.Site)
	}
	// Coalescable: the three same-AS hosts (static, assets, fonts).
	wantCoal := []string{"assets.cdnhost.com", "fonts.cdnhost.com", "static.example.com"}
	if len(plan.Coalescable) != 3 {
		t.Fatalf("coalescable = %v", plan.Coalescable)
	}
	for i, h := range wantCoal {
		if plan.Coalescable[i] != h {
			t.Errorf("coalescable[%d] = %s, want %s", i, plan.Coalescable[i], h)
		}
	}
	// None are covered by the existing SANs, so all need adding.
	if len(plan.Additions) != 3 {
		t.Errorf("additions = %v", plan.Additions)
	}
	if plan.ExistingCount() != 2 || plan.IdealCount() != 5 {
		t.Errorf("counts: existing=%d ideal=%d", plan.ExistingCount(), plan.IdealCount())
	}
}

func TestPlanRespectsWildcards(t *testing.T) {
	p := modelPage()
	p.Entries[0].CertSANs = []string{"www.example.com", "*.example.com", "*.cdnhost.com"}
	plan := PlanCertChanges(p)
	if len(plan.Additions) != 0 {
		t.Errorf("wildcard-covered hosts still added: %v", plan.Additions)
	}
	if len(plan.Coalescable) != 3 {
		t.Errorf("coalescable = %v", plan.Coalescable)
	}
}

func TestPlanInsecureRoot(t *testing.T) {
	p := modelPage()
	p.Entries[0].Secure = false
	plan := PlanCertChanges(p)
	if len(plan.Additions) != 0 || len(plan.Coalescable) != 0 {
		t.Errorf("insecure root produced a plan: %+v", plan)
	}
}

func TestPlanSkipsOtherASHosts(t *testing.T) {
	p := modelPage()
	plan := PlanCertChanges(p)
	for _, h := range plan.Additions {
		if h == "analytics.tracker.com" {
			t.Error("cross-AS host planned into certificate")
		}
	}
}

func TestSummarizeCertPlans(t *testing.T) {
	p1 := modelPage() // 3 additions
	p2 := modelPage()
	p2.Entries[0].CertSANs = []string{"www.example.com", "*.example.com", "*.cdnhost.com"} // 0 additions
	plans := []CertPlan{PlanCertChanges(p1), PlanCertChanges(p2)}
	s := SummarizeCertPlans(plans)
	if s.Sites != 2 || s.NoChangeSites != 1 || s.AtMostTenChanges != 2 || s.Over78Changes != 0 {
		t.Errorf("summary = %+v", s)
	}
	if s.MaxIdeal != 5 {
		t.Errorf("max ideal = %d", s.MaxIdeal)
	}
}

func TestSANRankTable(t *testing.T) {
	s := CertPlanSummary{
		ExistingSizes: []int{2, 2, 2, 3, 3, 1},
		IdealSizes:    []int{2, 2, 5, 5, 5, 3},
	}
	rows := SANRankTable(s, 2)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].MeasuredSize != 2 || rows[0].MeasuredCount != 3 {
		t.Errorf("row 0 measured = %+v", rows[0])
	}
	if rows[0].IdealSize != 5 || rows[0].IdealCount != 3 {
		t.Errorf("row 0 ideal = %+v", rows[0])
	}
}

func TestMostEffectiveChanges(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Sites = 2000
	ds, err := webgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plans := make([]CertPlan, len(ds.Pages))
	for i, p := range ds.Pages {
		plans[i] = PlanCertChanges(p)
	}
	orgOf := func(a uint32) string { return ds.ASDB.Org(asn.ASN(a)) }
	changes := MostEffectiveChanges(ds.Pages, plans, orgOf, 3, 5)
	if len(changes) != 3 {
		t.Fatalf("providers = %d", len(changes))
	}
	// Cloudflare hosts the most sites (Table 9: 24.74%).
	if changes[0].Provider != "Cloudflare" {
		t.Errorf("top provider = %s, want Cloudflare", changes[0].Provider)
	}
	// Its top candidate hostnames include the cdnjs-style shared hosts.
	found := false
	for _, h := range changes[0].TopHosts {
		if h.Key == "cdnjs.cloudflare.com" || h.Key == "cdn.shopify.com" {
			found = true
		}
		if h.Share <= 0 || h.Share > 100 {
			t.Errorf("share out of range: %+v", h)
		}
	}
	if !found {
		t.Errorf("expected shared CDN hostnames in %v", changes[0].TopHosts)
	}
}

// TestCorpusCertHeadlines checks the §4.3/§7 aggregate shape: a
// majority of sites need no changes, ≥90% coalesce with ≤10 additions,
// and only a small tail needs more than 78.
func TestCorpusCertHeadlines(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Sites = 3000
	ds, err := webgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plans := make([]CertPlan, len(ds.Pages))
	for i, p := range ds.Pages {
		plans[i] = PlanCertChanges(p)
	}
	s := SummarizeCertPlans(plans)
	noChange := float64(s.NoChangeSites) / float64(s.Sites)
	// Paper: 62.41% need no modifications.
	if noChange < 0.35 || noChange > 0.85 {
		t.Errorf("no-change fraction = %.2f, paper 0.62", noChange)
	}
	leTen := float64(s.AtMostTenChanges) / float64(s.Sites)
	// Paper: 92.66% coalesce with ≤10 changes.
	if leTen < 0.85 {
		t.Errorf("≤10-change fraction = %.2f, paper 0.93", leTen)
	}
	tail := float64(s.Over78Changes) / float64(s.Sites)
	if tail > 0.05 {
		t.Errorf(">78-change tail = %.3f, paper 0.01", tail)
	}
}

func TestSanCovers(t *testing.T) {
	sans := []string{"a.example.com", "*.b.example.com"}
	cases := []struct {
		host string
		want bool
	}{
		{"a.example.com", true},
		{"x.b.example.com", true},
		{"x.y.b.example.com", false},
		{"b.example.com", false},
		{"c.example.com", false},
	}
	for _, c := range cases {
		if got := sanCovers(sans, c.host); got != c.want {
			t.Errorf("sanCovers(%s) = %v", c.host, got)
		}
	}
}

func TestPlanHandlesDuplicateHosts(t *testing.T) {
	p := modelPage()
	// Duplicate a coalescable entry; additions must stay deduped.
	p.Entries = append(p.Entries, p.Entries[1])
	p.Entries[len(p.Entries)-1].Initiator = 0
	plan := PlanCertChanges(p)
	if len(plan.Additions) != 3 {
		t.Errorf("duplicates not deduped: %v", plan.Additions)
	}
	_ = har.Entry{}
}

// Summarizing contiguous shards and merging equals summarizing the
// whole corpus — the invariant the parallel report passes rely on.
func TestCertPlanSummaryMergeMatchesSequential(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Sites = 300
	ds, err := webgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plans := make([]CertPlan, len(ds.Pages))
	for i, p := range ds.Pages {
		plans[i] = PlanCertChanges(p)
	}
	want := SummarizeCertPlans(plans)
	var got CertPlanSummary
	for lo := 0; lo < len(plans); lo += 50 {
		hi := lo + 50
		if hi > len(plans) {
			hi = len(plans)
		}
		got.Merge(SummarizeCertPlans(plans[lo:hi]))
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged summary differs from sequential:\n got %+v\nwant %+v", got, want)
	}
}

// Sharded ProviderUsage accumulators rank identically to the sequential
// MostEffectiveChanges aggregation.
func TestProviderUsageMergeMatchesSequential(t *testing.T) {
	cfg := webgen.DefaultConfig()
	cfg.Sites = 400
	ds, err := webgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plans := make([]CertPlan, len(ds.Pages))
	for i, p := range ds.Pages {
		plans[i] = PlanCertChanges(p)
	}
	orgOf := func(as uint32) string { return ds.ASDB.Org(asn.ASN(as)) }
	want := MostEffectiveChanges(ds.Pages, plans, orgOf, 3, 5)

	merged := NewProviderUsage()
	for lo := 0; lo < len(ds.Pages); lo += 64 {
		hi := lo + 64
		if hi > len(ds.Pages) {
			hi = len(ds.Pages)
		}
		shard := NewProviderUsage()
		for i := lo; i < hi; i++ {
			shard.AddSite(orgOf(ds.Pages[i].Entries[0].ServerASN), &plans[i])
		}
		merged.Merge(shard)
	}
	if got := merged.Rank(3, 5); !reflect.DeepEqual(got, want) {
		t.Errorf("merged rank differs:\n got %+v\nwant %+v", got, want)
	}
}
