package core

import (
	"respectorigin/internal/har"
	"respectorigin/internal/obs"
)

// EmitPageEvents replays one measured page load into rec as a trace
// span ranked by the page's popularity rank: page_start, one dns_query
// per fresh lookup (plus the ExtraDNS race effects), one tls_handshake
// per fresh handshake (plus ExtraTLS), one coalesce_hit per request
// that rode an existing connection, and a page_end carrying the §4.2
// model counts (measured DNS/TLS and the ideal-IP/ideal-ORIGIN
// predictions of CountPage). Event counts are exact: a span's
// dns_query events sum to p.DNSQueries() and its tls_handshake events
// to p.TLSConnections(), so funnel totals rebuilt from a trace match
// the Figure 3 inputs byte for byte.
//
// Sequence numbers follow entry order, which is deterministic for a
// given corpus seed; a nil recorder emits nothing.
func EmitPageEvents(rec obs.Recorder, p *har.Page) {
	if rec == nil || p == nil {
		return
	}
	seq := 0
	next := func() int { s := seq; seq++; return s }
	obs.Count(rec, "crawl.pages", 1)
	obs.Emit(rec, obs.Event{Rank: p.Rank, Seq: next(), Kind: obs.KindPageStart, Host: p.Host, N: len(p.Entries)})
	for i := range p.Entries {
		e := &p.Entries[i]
		if e.NewDNS {
			obs.Count(rec, "crawl.dns_queries", 1)
			obs.Emit(rec, obs.Event{Rank: p.Rank, Seq: next(), Kind: obs.KindDNSQuery, Host: e.Host, MS: e.Timings.DNS})
		}
		if e.NewTLS {
			obs.Count(rec, "crawl.tls_handshakes", 1)
			obs.Emit(rec, obs.Event{Rank: p.Rank, Seq: next(), Kind: obs.KindTLSHandshake, Host: e.Host, MS: e.Timings.SSL, Detail: e.ServerIP.String()})
		} else if i > 0 {
			obs.Count(rec, "crawl.reused_conns", 1)
			obs.Emit(rec, obs.Event{Rank: p.Rank, Seq: next(), Kind: obs.KindCoalesceHit, Host: e.Host, Detail: "reuse"})
		}
	}
	for i := 0; i < p.ExtraDNS; i++ {
		obs.Count(rec, "crawl.dns_queries", 1)
		obs.Emit(rec, obs.Event{Rank: p.Rank, Seq: next(), Kind: obs.KindDNSQuery, Host: p.Host, Detail: "race"})
	}
	for i := 0; i < p.ExtraTLS; i++ {
		obs.Count(rec, "crawl.tls_handshakes", 1)
		obs.Emit(rec, obs.Event{Rank: p.Rank, Seq: next(), Kind: obs.KindTLSHandshake, Host: p.Host, Detail: "race"})
	}
	pc := CountPage(p)
	obs.Emit(rec, obs.Event{
		Rank: p.Rank, Seq: next(), Kind: obs.KindPageEnd, Host: p.Host, N: len(p.Entries),
		DNS: pc.MeasuredDNS, TLS: pc.MeasuredTLS, IdealIP: pc.IdealIP, IdealOrigin: pc.IdealOrigin,
	})
}
