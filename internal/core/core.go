package core
