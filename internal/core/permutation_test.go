package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// SANRankTable ranks histogram buckets by (count desc, size asc); the
// sizes are unique histogram keys, so the ranking is a strict total
// order and must not depend on the order sites were sampled in.
func TestSANRankTableSampleOrderInvariant(t *testing.T) {
	existing := []int{1, 1, 1, 2, 2, 5, 5, 5, 9, 9, 9, 12} // counts 3,2,3,3,1: ties
	ideal := []int{2, 2, 4, 4, 6, 6, 8, 8, 3, 3, 3, 7}
	rank := func(exOrder, idOrder []int) []SANRankRow {
		s := CertPlanSummary{}
		for _, i := range exOrder {
			s.ExistingSizes = append(s.ExistingSizes, existing[i])
		}
		for _, i := range idOrder {
			s.IdealSizes = append(s.IdealSizes, ideal[i])
		}
		return SANRankTable(s, 5)
	}
	ident := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	want := rank(ident, ident)
	rs := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		got := rank(rs.Perm(len(existing)), rs.Perm(len(ideal)))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: SANRankTable depends on sample order:\ngot  %v\nwant %v", trial, got, want)
		}
	}
}
