package core

import (
	"sort"
	"strings"

	"respectorigin/internal/har"
	"respectorigin/internal/measure"
)

// CertPlan is the §4.3 least-effort certificate modification for one
// website: the hostnames that must be added to the site's existing
// certificate so that every same-service subresource can coalesce onto
// the base-page connection.
type CertPlan struct {
	Site     string
	Rank     int
	Existing []string // current SAN entries of the root certificate
	// Additions are the coalescable hostnames absent from the SANs.
	Additions []string
	// Coalescable are all hostnames reachable on the base-page service.
	Coalescable []string
}

// ExistingCount returns the current SAN size.
func (cp CertPlan) ExistingCount() int { return len(cp.Existing) }

// IdealCount returns the SAN size after modification.
func (cp CertPlan) IdealCount() int { return len(cp.Existing) + len(cp.Additions) }

// PlanCertChanges computes the least-effort SAN additions for a page:
// hostnames of secure subresource requests whose service matches the
// base page's (same origin AS, per the model assumption) and that the
// existing certificate does not already cover.
//
// Only the certificate of the visited website changes (§4.3: "we change
// only the certificate for the website visited").
func PlanCertChanges(p *har.Page) CertPlan {
	root := &p.Entries[0]
	plan := CertPlan{
		Site:     p.Host,
		Rank:     p.Rank,
		Existing: append([]string(nil), root.CertSANs...),
	}
	if !root.Secure {
		// No certificate to modify; the site would first need HTTPS.
		return plan
	}
	seen := map[string]bool{p.Host: true}
	for i := 1; i < len(p.Entries); i++ {
		e := &p.Entries[i]
		if !e.Secure || e.ServerASN != root.ServerASN {
			continue
		}
		h := strings.ToLower(e.Host)
		if seen[h] {
			continue
		}
		seen[h] = true
		plan.Coalescable = append(plan.Coalescable, h)
		if !sanCovers(plan.Existing, h) {
			plan.Additions = append(plan.Additions, h)
		}
	}
	sort.Strings(plan.Coalescable)
	sort.Strings(plan.Additions)
	return plan
}

// sanCovers reports whether the SAN list covers host (exact or
// single-label wildcard).
func sanCovers(sans []string, host string) bool {
	for _, san := range sans {
		if san == host {
			return true
		}
		if strings.HasPrefix(san, "*.") {
			suffix := san[1:]
			if strings.HasSuffix(host, suffix) {
				label := host[:len(host)-len(suffix)]
				if label != "" && !strings.Contains(label, ".") {
					return true
				}
			}
		}
	}
	return false
}

// CertPlanSummary aggregates §4.3 statistics across a corpus.
type CertPlanSummary struct {
	Sites int
	// NoChangeSites need no SAN modifications at all.
	NoChangeSites int
	// AtMostTenChanges counts sites needing ≤10 additions.
	AtMostTenChanges int
	// Over78Changes counts the long tail needing >78 additions.
	Over78Changes int
	// Existing and Ideal SAN size samples, index-aligned by site.
	ExistingSizes []int
	IdealSizes    []int
	AdditionSizes []int
	// Over250Existing / Over250Ideal count certificates above 250 SANs.
	Over250Existing int
	Over250Ideal    int
	// MaxIdeal is the largest post-change SAN size.
	MaxIdeal int
}

// SummarizeCertPlans computes the corpus-level §4.3 numbers.
func SummarizeCertPlans(plans []CertPlan) CertPlanSummary {
	var s CertPlanSummary
	for i := range plans {
		s.AddPlan(&plans[i])
	}
	return s
}

// AddPlan folds one site's plan into the summary.
func (s *CertPlanSummary) AddPlan(p *CertPlan) {
	add := len(p.Additions)
	ex := p.ExistingCount()
	id := p.IdealCount()
	s.Sites++
	s.ExistingSizes = append(s.ExistingSizes, ex)
	s.IdealSizes = append(s.IdealSizes, id)
	s.AdditionSizes = append(s.AdditionSizes, add)
	if add == 0 {
		s.NoChangeSites++
	}
	if add <= 10 {
		s.AtMostTenChanges++
	}
	if add > 78 {
		s.Over78Changes++
	}
	if ex > 250 {
		s.Over250Existing++
	}
	if id > 250 {
		s.Over250Ideal++
	}
	if id > s.MaxIdeal {
		s.MaxIdeal = id
	}
}

// Merge folds another summary into s. The operation is associative with
// respect to plan-slice concatenation: summarizing contiguous shards
// and merging left-to-right equals summarizing the whole corpus, which
// is what lets the report layer compute Tables 8 and Figures 4-5 with
// a parallel map-reduce.
func (s *CertPlanSummary) Merge(o CertPlanSummary) {
	s.Sites += o.Sites
	s.NoChangeSites += o.NoChangeSites
	s.AtMostTenChanges += o.AtMostTenChanges
	s.Over78Changes += o.Over78Changes
	s.ExistingSizes = append(s.ExistingSizes, o.ExistingSizes...)
	s.IdealSizes = append(s.IdealSizes, o.IdealSizes...)
	s.AdditionSizes = append(s.AdditionSizes, o.AdditionSizes...)
	s.Over250Existing += o.Over250Existing
	s.Over250Ideal += o.Over250Ideal
	if o.MaxIdeal > s.MaxIdeal {
		s.MaxIdeal = o.MaxIdeal
	}
}

// SANRankRow is one row of Table 8: a SAN size and how many sites have
// it, for the measured and ideal distributions.
type SANRankRow struct {
	Rank          int
	MeasuredSize  int
	MeasuredCount int
	IdealSize     int
	IdealCount    int
}

// SANRankTable computes the Table 8 top-n ranking of SAN sizes.
func SANRankTable(s CertPlanSummary, n int) []SANRankRow {
	rank := func(sizes []int) []struct{ size, count int } {
		h := measure.Histogram(sizes)
		out := make([]struct{ size, count int }, 0, len(h))
		for size, count := range h {
			out = append(out, struct{ size, count int }{size, count})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].count != out[j].count {
				return out[i].count > out[j].count
			}
			return out[i].size < out[j].size
		})
		return out
	}
	m := rank(s.ExistingSizes)
	id := rank(s.IdealSizes)
	var rows []SANRankRow
	for i := 0; i < n && i < len(m) && i < len(id); i++ {
		rows = append(rows, SANRankRow{
			Rank:          i + 1,
			MeasuredSize:  m[i].size,
			MeasuredCount: m[i].count,
			IdealSize:     id[i].size,
			IdealCount:    id[i].count,
		})
	}
	return rows
}

// ProviderChange is one row of Table 9: a hosting provider, the number
// of its sites in the corpus, and the most frequently needed hostnames
// to add to its customers' certificates.
type ProviderChange struct {
	Provider  string
	SiteCount int
	TopHosts  []measure.RankedEntry
}

// ProviderUsage accumulates the Table 9 aggregation — per-provider site
// counts and per-provider coalescable-hostname counts. Shards build
// private accumulators and recombine with Merge.
type ProviderUsage struct {
	siteCount *measure.Counter
	hosts     map[string]*measure.Counter
}

// NewProviderUsage returns an empty accumulator.
func NewProviderUsage() *ProviderUsage {
	return &ProviderUsage{
		siteCount: measure.NewCounter(),
		hosts:     map[string]*measure.Counter{},
	}
}

// AddSite folds one site into the accumulator: org is the base page's
// hosting provider (empty skips the site), plan its certificate plan.
func (u *ProviderUsage) AddSite(org string, plan *CertPlan) {
	if org == "" {
		return
	}
	u.siteCount.Add(org, 1)
	hc, ok := u.hosts[org]
	if !ok {
		hc = measure.NewCounter()
		u.hosts[org] = hc
	}
	for _, h := range plan.Coalescable {
		hc.Add(h, 1)
	}
}

// Merge folds another accumulator in; associative and commutative.
func (u *ProviderUsage) Merge(o *ProviderUsage) {
	if o == nil || o == u {
		return
	}
	u.siteCount.Merge(o.siteCount)
	for org, hc := range o.hosts {
		mine, ok := u.hosts[org]
		if !ok {
			u.hosts[org] = hc
			continue
		}
		mine.Merge(hc)
	}
}

// Rank produces the Table 9 rows: the topProviders providers by site
// count, each with its topHosts most frequently needed hostnames, with
// shares relative to the provider's site count ("requested by x% of
// websites served by P").
func (u *ProviderUsage) Rank(topProviders, topHosts int) []ProviderChange {
	var out []ProviderChange
	for _, pe := range u.siteCount.Top(topProviders) {
		hc := u.hosts[pe.Key]
		var hosts []measure.RankedEntry
		if hc != nil {
			hosts = hc.Top(topHosts)
			for i := range hosts {
				hosts[i].Share = 100 * float64(hosts[i].Count) / float64(pe.Count)
			}
		}
		out = append(out, ProviderChange{
			Provider:  pe.Key,
			SiteCount: int(pe.Count),
			TopHosts:  hosts,
		})
	}
	return out
}

// MostEffectiveChanges aggregates cert-plan additions by hosting
// provider (Table 9): for each provider (identified by the base page's
// origin AS → org name via orgOf), the hostnames most often needed.
func MostEffectiveChanges(pages []*har.Page, plans []CertPlan, orgOf func(asn uint32) string, topProviders, topHosts int) []ProviderChange {
	u := NewProviderUsage()
	for i, p := range pages {
		u.AddSite(orgOf(p.Entries[0].ServerASN), &plans[i])
	}
	return u.Rank(topProviders, topHosts)
}
