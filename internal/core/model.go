// Package core implements the paper's primary contribution: the
// best-case connection-coalescing model of §4.
//
// Given a corpus of page-load timelines (internal/har), the model
//
//   - identifies which subresource requests could have been coalesced
//     under IP-based coalescing, ORIGIN-frame coalescing, or
//     ORIGIN-frame coalescing restricted to a single CDN (§4.1);
//   - reconstructs each timeline conservatively, removing only the
//     smallest DNS time among concurrently-issued coalescable requests
//     and the connection-establishment phases (§4.1, Figure 2);
//   - predicts the resulting DNS query, TLS connection and certificate
//     validation counts (§4.2, Figure 3);
//   - computes the least-effort certificate SAN changes that enable the
//     coalescing (§4.3, Figures 4–5, Tables 8–9).
//
// The model's central assumption, stated in §4.1, is that every server
// in an autonomous system can authoritatively serve all content of that
// AS; a "service" is therefore identified with an origin AS.
package core

import (
	"math"
	"sort"

	"respectorigin/internal/har"
)

// Mode selects the coalescing discipline being modelled.
type Mode int

// Modes.
const (
	// ModeIP models ideal IP-based coalescing: connections to the same
	// server address collapse ("missed opportunities", no changes).
	ModeIP Mode = iota
	// ModeOrigin models ideal ORIGIN-frame coalescing: connections to
	// the same service (origin AS) collapse.
	ModeOrigin
	// ModeOriginCDN models ORIGIN-frame coalescing deployed at a single
	// CDN only: requests collapse only within that CDN's AS.
	ModeOriginCDN
)

func (m Mode) String() string {
	switch m {
	case ModeIP:
		return "ideal-ip"
	case ModeOrigin:
		return "ideal-origin"
	case ModeOriginCDN:
		return "cdn-origin"
	default:
		return "unknown"
	}
}

// concurrencyWindowMs groups coalescable requests that start within
// this window as "starting at the same time" for the conservative
// minimum-DNS subtraction of §4.1.
const concurrencyWindowMs = 50

// serviceKeyFn returns the service identity of an entry under a mode,
// and whether the entry participates in coalescing at all.
func serviceKeyFn(mode Mode, cdnASN uint32) func(e *har.Entry) (string, bool) {
	switch mode {
	case ModeIP:
		return func(e *har.Entry) (string, bool) {
			// IP coalescing requires a secure connection to validate
			// authority, or at least an established TCP connection; the
			// paper collapses by exact connected address.
			return "ip:" + e.ServerIP.String(), true
		}
	case ModeOriginCDN:
		return func(e *har.Entry) (string, bool) {
			if e.ServerASN != cdnASN || !e.Secure {
				return "", false
			}
			return "as:cdn", true
		}
	default: // ModeOrigin
		return func(e *har.Entry) (string, bool) {
			if !e.Secure {
				// Cleartext requests cannot ride an authenticated
				// connection; they still coalesce by IP only.
				return "ip:" + e.ServerIP.String(), true
			}
			return "as:" + itoa(uint64(e.ServerASN)), true
		}
	}
}

// Coalescable returns, for each entry index, whether the request could
// have been coalesced onto an earlier connection under the mode.
//
// Connection openers — entries that paid DNS + connection setup
// (NewDNS) — are compared per service: the service's earliest opener
// keeps its connection; every later opener of the same service is
// coalescable and sheds its setup. Entries that reuse an existing
// connection are marked coalescable whenever their service has an
// opener, but they carry no setup to remove. Entry 0 (the base-page
// request) is never coalescable (§4.1).
func Coalescable(p *har.Page, mode Mode, cdnASN uint32) []bool {
	key := serviceKeyFn(mode, cdnASN)
	out := make([]bool, len(p.Entries))

	// Pass 1: order connection openers per service by start time; all
	// but the first are coalescable.
	firstOpener := make(map[string]int, 8)
	order := entryOrderByStart(p)
	for _, i := range order {
		e := &p.Entries[i]
		if !e.NewDNS {
			continue
		}
		k, ok := key(e)
		if !ok {
			continue
		}
		if j, seen := firstOpener[k]; !seen {
			firstOpener[k] = i
		} else if i != j && i != 0 {
			out[i] = true
		}
	}
	// Pass 2: reuse entries ride their service's connection.
	for i := 1; i < len(p.Entries); i++ {
		e := &p.Entries[i]
		if e.NewDNS {
			continue
		}
		k, ok := key(e)
		if !ok {
			continue
		}
		if _, seen := firstOpener[k]; seen {
			out[i] = true
		}
	}
	out[0] = false
	return out
}

// entryOrderByStart returns entry indexes sorted by start time with the
// root first (stable for ties).
func entryOrderByStart(p *har.Page) []int {
	order := make([]int, len(p.Entries))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return p.Entries[order[a]].StartedMs < p.Entries[order[b]].StartedMs
	})
	return order
}

// Reconstruct rebuilds the page timeline under the assumption that all
// coalescable requests ride existing connections (§4.1):
//
//   - coalescable entries lose their Connect and SSL phases entirely
//     and keep no DNS time except the conservative adjustment below;
//   - among coalescable requests to the same service starting within
//     concurrencyWindowMs of each other, only the minimum DNS time is
//     subtracted from each; the excess over the minimum is retained,
//     modelling queries that were already in flight together;
//   - the CPU/dependency gap between an initiator's end and a child's
//     start is preserved, so the dependency-graph computation time is
//     unchanged;
//   - non-coalescable entries keep their phase durations and shift
//     with their initiators.
//
// The input page is not modified. ExtraDNS/ExtraTLS race effects are
// dropped in the reconstruction: coalesced connections are not raced.
func Reconstruct(p *har.Page, mode Mode, cdnASN uint32) *har.Page {
	q := p.Clone()
	coal := Coalescable(p, mode, cdnASN)
	key := serviceKeyFn(mode, cdnASN)

	// Conservative DNS subtraction: group coalescable entries by
	// (service, start window) and find each group's minimum DNS.
	type groupKey struct {
		svc  string
		slot int64
	}
	minDNS := make(map[groupKey]float64)
	for i := range p.Entries {
		if !coal[i] {
			continue
		}
		e := &p.Entries[i]
		svc, _ := key(e)
		gk := groupKey{svc, int64(e.StartedMs / concurrencyWindowMs)}
		if v, ok := minDNS[gk]; !ok || e.Timings.DNS < v {
			minDNS[gk] = e.Timings.DNS
		}
	}

	// Adjust phase durations on coalesced entries.
	for i := range q.Entries {
		if !coal[i] {
			continue
		}
		e := &q.Entries[i]
		orig := &p.Entries[i]
		svc, _ := key(orig)
		gk := groupKey{svc, int64(orig.StartedMs / concurrencyWindowMs)}
		sub := minDNS[gk]
		e.Timings.DNS = orig.Timings.DNS - sub
		if e.Timings.DNS < 0 {
			e.Timings.DNS = 0
		}
		e.Timings.Connect = 0
		e.Timings.SSL = 0
		e.NewDNS = false
		e.NewTLS = false
		e.CertIssuer = ""
		e.CertSANs = nil
	}

	// Rebuild start times along the initiator graph, preserving the
	// original gap between parent end and child start.
	newStart := make([]float64, len(q.Entries))
	order := topoOrder(p)
	for _, i := range order {
		e := &q.Entries[i]
		if e.Initiator < 0 {
			newStart[i] = p.Entries[i].StartedMs
			continue
		}
		parent := e.Initiator
		gap := p.Entries[i].StartedMs - p.Entries[parent].EndMs()
		ns := newStart[parent] + q.Entries[parent].Timings.Total() + gap
		if ns < 0 {
			ns = 0
		}
		newStart[i] = ns
	}
	for i := range q.Entries {
		q.Entries[i].StartedMs = newStart[i]
	}

	q.ExtraDNS = 0
	q.ExtraTLS = 0
	q.OnLoadMs = q.LastEntryEnd()
	dom := 0.0
	for _, e := range q.Entries {
		if e.RenderBlocking || e.Initiator == -1 {
			if v := e.EndMs(); v > dom {
				dom = v
			}
		}
	}
	if dom == 0 || dom > q.OnLoadMs {
		dom = q.OnLoadMs
	}
	q.DOMLoadMs = dom
	return q
}

// topoOrder returns entry indexes in initiator order (parents before
// children). Entries reference earlier indexes, so index order works.
func topoOrder(p *har.Page) []int {
	order := make([]int, len(p.Entries))
	for i := range order {
		order[i] = i
	}
	return order
}

// PageCounts are the §4.2 per-page quantities.
type PageCounts struct {
	MeasuredDNS int
	MeasuredTLS int
	// MeasuredValidations equals measured TLS handshakes (every fresh
	// handshake validates a chain).
	MeasuredValidations int

	IdealIP     int // connections under ideal IP coalescing
	IdealOrigin int // connections (= DNS = validations) under ORIGIN
}

// CountPage computes the §4.2 counts for one page.
//
// Services are identified per host: a host served over HTTPS at least
// once groups into its origin AS (the ORIGIN-frame service); a host
// only ever reached over cleartext HTTP can coalesce by address only.
func CountPage(p *har.Page) PageCounts {
	pc := PageCounts{
		MeasuredDNS:         p.DNSQueries(),
		MeasuredTLS:         p.TLSConnections(),
		MeasuredValidations: p.TLSConnections(),
	}
	type hostState struct {
		ip     string
		asn    uint32
		secure bool
	}
	hosts := map[string]*hostState{}
	for i := range p.Entries {
		e := &p.Entries[i]
		hs, ok := hosts[e.Host]
		if !ok {
			hs = &hostState{ip: e.ServerIP.String(), asn: e.ServerASN}
			hosts[e.Host] = hs
		}
		if e.Secure {
			hs.secure = true
		}
	}
	ips := map[string]bool{}
	services := map[string]bool{}
	for _, hs := range hosts {
		ips[hs.ip] = true
		if hs.secure {
			services["as:"+itoa(uint64(hs.asn))] = true
		} else {
			services["ip:"+hs.ip] = true
		}
	}
	pc.IdealIP = len(ips)
	pc.IdealOrigin = len(services)
	return pc
}

// PLTImprovement returns (measured PLT, reconstructed PLT) for a page
// under a mode.
func PLTImprovement(p *har.Page, mode Mode, cdnASN uint32) (measured, reconstructed float64) {
	return p.PLT(), Reconstruct(p, mode, cdnASN).PLT()
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// ClampNonNegative is a defensive helper used by reconstruction
// consumers; exported for reuse in reports.
func ClampNonNegative(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}
