package core

import (
	"respectorigin/internal/cache"
	"respectorigin/internal/corpus"
	"respectorigin/internal/har"
)

// ReplayReaderSequence streams pages out of a corpus reader and folds
// each page's warm/cold replay into aggregate per-visit ledgers, so a
// multi-gigabyte on-disk corpus replays in constant memory: no page
// slice is ever materialized. Element v of the result is what visit
// v+1 paid summed over every page; pages-read is returned alongside.
//
// Ledger addition is associative and commutative, so the totals are
// identical to replaying an in-memory page slice (report.WarmColdProto
// over the same pages) — the property the streaming migration's tests
// pin down. The reader is left at end of stream; closing it stays with
// the caller.
func ReplayReaderSequence(r corpus.Reader, visits int, opts cache.Options, proto Protocol) ([]VisitCosts, int, error) {
	if visits <= 0 {
		visits = 1
	}
	acc := make([]VisitCosts, visits)
	pages := 0
	err := corpus.ForEach(r, func(p *har.Page) error {
		for v, vc := range ProtocolReplaySequence(p, visits, opts, proto) {
			acc[v].Add(vc)
		}
		pages++
		return nil
	})
	if err != nil {
		return nil, pages, err
	}
	return acc, pages, nil
}
