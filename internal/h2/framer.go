package h2

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"
)

// A Framer reads and writes HTTP/2 frames on an underlying reader and
// writer. Reads must come from a single goroutine; writes are serialized
// internally and may come from many goroutines.
//
// Read frames alias an internal buffer: a frame returned by ReadFrame is
// valid only until the next ReadFrame call.
type Framer struct {
	r    io.Reader
	rbuf []byte
	fc   frameCache

	wmu  sync.Mutex
	w    io.Writer
	wbuf []byte

	// maxReadSize is the largest frame payload this endpoint advertised
	// (SETTINGS_MAX_FRAME_SIZE); larger frames are a FRAME_SIZE_ERROR.
	maxReadSize uint32

	// rdl, when non-nil, gets a fresh read deadline armed before every
	// frame read, bounding how long the peer may stay silent.
	rdl         interface{ SetReadDeadline(time.Time) error }
	readTimeout time.Duration

	// AllowIllegalWrites disables write-side validation. It is used by
	// tests and by the non-compliance harness to produce malformed
	// frames on purpose.
	AllowIllegalWrites bool
}

// NewFramer returns a Framer reading from r and writing to w.
func NewFramer(w io.Writer, r io.Reader) *Framer {
	return &Framer{
		r:           r,
		w:           w,
		rbuf:        make([]byte, frameHeaderLen, frameHeaderLen+minMaxFrameSize),
		maxReadSize: minMaxFrameSize,
	}
}

// SetMaxReadFrameSize sets the largest payload ReadFrame accepts.
func (fr *Framer) SetMaxReadFrameSize(n uint32) {
	if n < minMaxFrameSize {
		n = minMaxFrameSize
	}
	if n > maxMaxFrameSize {
		n = maxMaxFrameSize
	}
	fr.maxReadSize = n
}

// SetReadTimeout arms a read deadline of d on c before every subsequent
// ReadFrame: a peer silent for longer than d between frames fails the
// read with a timeout error (IsTimeout reports true for it). Endpoints
// running keepalive PINGs must keep d above the ping interval or the
// idle timer fires before the liveness probe does. It must be called
// before the read loop starts; a zero d disarms.
func (fr *Framer) SetReadTimeout(c interface{ SetReadDeadline(time.Time) error }, d time.Duration) {
	fr.rdl = c
	fr.readTimeout = d
}

// ReadFrame reads and parses one frame. It returns ConnectionError for
// protocol violations that must tear down the connection.
func (fr *Framer) ReadFrame() (Frame, error) {
	if fr.rdl != nil && fr.readTimeout > 0 {
		_ = fr.rdl.SetReadDeadline(time.Now().Add(fr.readTimeout))
	}
	hdr, err := readFrameHeader(fr.r, fr.rbuf[:frameHeaderLen])
	if err != nil {
		return nil, err
	}
	if hdr.Length > fr.maxReadSize {
		return nil, connError(ErrCodeFrameSize, fmt.Sprintf("frame of %d bytes exceeds SETTINGS_MAX_FRAME_SIZE", hdr.Length))
	}
	if cap(fr.rbuf) < int(hdr.Length) {
		// Grow-and-reuse: at least double so a run of growing frames
		// settles after O(log n) allocations, clamped to the advertised
		// maximum so one connection never holds more than it could need.
		newCap := 2 * cap(fr.rbuf)
		if newCap < int(hdr.Length) {
			newCap = int(hdr.Length)
		}
		if limit := int(fr.maxReadSize) + frameHeaderLen; newCap > limit {
			newCap = limit
		}
		putBuf(fr.rbuf)
		fr.rbuf = getBuf(newCap)
	}
	payload := fr.rbuf[:hdr.Length]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return parseFrame(&fr.fc, hdr, payload)
}

// frameCache holds one reusable frame value per type. Returned frames
// already alias the Framer's read buffer and are documented as valid
// only until the next ReadFrame call, so handing back the same struct
// (fully overwritten) makes the steady-state read path allocation-free.
// A nil *frameCache makes every parse function allocate fresh frames.
type frameCache struct {
	data         DataFrame
	headers      HeadersFrame
	priority     PriorityFrame
	rstStream    RSTStreamFrame
	settings     SettingsFrame
	pushPromise  PushPromiseFrame
	ping         PingFrame
	goAway       GoAwayFrame
	windowUpdate WindowUpdateFrame
	continuation ContinuationFrame
	altSvc       AltSvcFrame
	origin       OriginFrame
	unknown      UnknownFrame
}

// The getters allocate only on the nil (uncached) path; keeping the
// composite literal inside the branch is what lets escape analysis keep
// the cached path allocation-free.
func (fc *frameCache) getDataFrame() *DataFrame {
	if fc == nil {
		return &DataFrame{}
	}
	return &fc.data
}

func (fc *frameCache) getHeadersFrame() *HeadersFrame {
	if fc == nil {
		return &HeadersFrame{}
	}
	return &fc.headers
}

func (fc *frameCache) getPriorityFrame() *PriorityFrame {
	if fc == nil {
		return &PriorityFrame{}
	}
	return &fc.priority
}

func (fc *frameCache) getRSTStreamFrame() *RSTStreamFrame {
	if fc == nil {
		return &RSTStreamFrame{}
	}
	return &fc.rstStream
}

func (fc *frameCache) getSettingsFrame() *SettingsFrame {
	if fc == nil {
		return &SettingsFrame{}
	}
	return &fc.settings
}

func (fc *frameCache) getPushPromiseFrame() *PushPromiseFrame {
	if fc == nil {
		return &PushPromiseFrame{}
	}
	return &fc.pushPromise
}

func (fc *frameCache) getPingFrame() *PingFrame {
	if fc == nil {
		return &PingFrame{}
	}
	return &fc.ping
}

func (fc *frameCache) getGoAwayFrame() *GoAwayFrame {
	if fc == nil {
		return &GoAwayFrame{}
	}
	return &fc.goAway
}

func (fc *frameCache) getWindowUpdateFrame() *WindowUpdateFrame {
	if fc == nil {
		return &WindowUpdateFrame{}
	}
	return &fc.windowUpdate
}

func (fc *frameCache) getContinuationFrame() *ContinuationFrame {
	if fc == nil {
		return &ContinuationFrame{}
	}
	return &fc.continuation
}

func (fc *frameCache) getAltSvcFrame() *AltSvcFrame {
	if fc == nil {
		return &AltSvcFrame{}
	}
	return &fc.altSvc
}

func (fc *frameCache) getOriginFrame() *OriginFrame {
	if fc == nil {
		return &OriginFrame{}
	}
	return &fc.origin
}

func (fc *frameCache) getUnknownFrame() *UnknownFrame {
	if fc == nil {
		return &UnknownFrame{}
	}
	return &fc.unknown
}

func parseFrame(fc *frameCache, hdr FrameHeader, p []byte) (Frame, error) {
	switch hdr.Type {
	case FrameData:
		return parseDataFrame(fc, hdr, p)
	case FrameHeaders:
		return parseHeadersFrame(fc, hdr, p)
	case FramePriority:
		return parsePriorityFrame(fc, hdr, p)
	case FrameRSTStream:
		return parseRSTStreamFrame(fc, hdr, p)
	case FrameSettings:
		return parseSettingsFrame(fc, hdr, p)
	case FramePushPromise:
		return parsePushPromiseFrame(fc, hdr, p)
	case FramePing:
		return parsePingFrame(fc, hdr, p)
	case FrameGoAway:
		return parseGoAwayFrame(fc, hdr, p)
	case FrameWindowUpdate:
		return parseWindowUpdateFrame(fc, hdr, p)
	case FrameContinuation:
		f := &ContinuationFrame{}
		if fc != nil {
			f = &fc.continuation
		}
		*f = ContinuationFrame{FrameHeader: hdr, BlockFragment: p}
		return f, nil
	case FrameAltSvc:
		return parseAltSvcFrame(fc, hdr, p)
	case FrameOrigin:
		return parseOriginFrame(fc, hdr, p)
	default:
		f := &UnknownFrame{}
		if fc != nil {
			f = &fc.unknown
		}
		*f = UnknownFrame{FrameHeader: hdr, Payload: p}
		return f, nil
	}
}

// stripPadding removes the §6.1 pad-length octet and trailing padding.
func stripPadding(hdr FrameHeader, p []byte) ([]byte, error) {
	if !hdr.Flags.Has(FlagPadded) {
		return p, nil
	}
	if len(p) == 0 {
		return nil, connError(ErrCodeProtocol, "padded frame missing pad length")
	}
	padLen := int(p[0])
	p = p[1:]
	if padLen > len(p) {
		return nil, connError(ErrCodeProtocol, "pad length exceeds payload")
	}
	return p[:len(p)-padLen], nil
}

func parseDataFrame(fc *frameCache, hdr FrameHeader, p []byte) (Frame, error) {
	if hdr.StreamID == 0 {
		return nil, connError(ErrCodeProtocol, "DATA on stream 0")
	}
	data, err := stripPadding(hdr, p)
	if err != nil {
		return nil, err
	}
	f := fc.getDataFrame()
	*f = DataFrame{FrameHeader: hdr, Data: data}
	return f, nil
}

func parseHeadersFrame(fc *frameCache, hdr FrameHeader, p []byte) (Frame, error) {
	if hdr.StreamID == 0 {
		return nil, connError(ErrCodeProtocol, "HEADERS on stream 0")
	}
	p, err := stripPadding(hdr, p)
	if err != nil {
		return nil, err
	}
	f := fc.getHeadersFrame()
	*f = HeadersFrame{FrameHeader: hdr}
	if hdr.Flags.Has(FlagPriority) {
		if len(p) < 5 {
			return nil, connError(ErrCodeProtocol, "HEADERS priority fields truncated")
		}
		dep := binary.BigEndian.Uint32(p[:4])
		f.Priority = PriorityParam{
			StreamDep: dep & (1<<31 - 1),
			Exclusive: dep>>31 == 1,
			Weight:    p[4],
		}
		p = p[5:]
	}
	f.BlockFragment = p
	return f, nil
}

func parsePriorityFrame(fc *frameCache, hdr FrameHeader, p []byte) (Frame, error) {
	if hdr.StreamID == 0 {
		return nil, connError(ErrCodeProtocol, "PRIORITY on stream 0")
	}
	if len(p) != 5 {
		return nil, streamError(hdr.StreamID, ErrCodeFrameSize, "PRIORITY payload must be 5 bytes")
	}
	dep := binary.BigEndian.Uint32(p[:4])
	f := fc.getPriorityFrame()
	*f = PriorityFrame{
		FrameHeader: hdr,
		PriorityParam: PriorityParam{
			StreamDep: dep & (1<<31 - 1),
			Exclusive: dep>>31 == 1,
			Weight:    p[4],
		},
	}
	return f, nil
}

func parseRSTStreamFrame(fc *frameCache, hdr FrameHeader, p []byte) (Frame, error) {
	if hdr.StreamID == 0 {
		return nil, connError(ErrCodeProtocol, "RST_STREAM on stream 0")
	}
	if len(p) != 4 {
		return nil, connError(ErrCodeFrameSize, "RST_STREAM payload must be 4 bytes")
	}
	f := fc.getRSTStreamFrame()
	*f = RSTStreamFrame{FrameHeader: hdr, ErrCode: ErrCode(binary.BigEndian.Uint32(p))}
	return f, nil
}

func parseSettingsFrame(fc *frameCache, hdr FrameHeader, p []byte) (Frame, error) {
	if hdr.StreamID != 0 {
		return nil, connError(ErrCodeProtocol, "SETTINGS on non-zero stream")
	}
	f := fc.getSettingsFrame()
	settings := f.Settings[:0] // keep the cached frame's slice capacity
	*f = SettingsFrame{FrameHeader: hdr}
	if hdr.Flags.Has(FlagAck) {
		if len(p) != 0 {
			return nil, connError(ErrCodeFrameSize, "SETTINGS ack with payload")
		}
		return f, nil
	}
	if len(p)%6 != 0 {
		return nil, connError(ErrCodeFrameSize, "SETTINGS payload not a multiple of 6")
	}
	for i := 0; i < len(p); i += 6 {
		s := Setting{
			ID:  SettingID(binary.BigEndian.Uint16(p[i : i+2])),
			Val: binary.BigEndian.Uint32(p[i+2 : i+6]),
		}
		if err := s.Valid(); err != nil {
			return nil, err
		}
		settings = append(settings, s)
	}
	f.Settings = settings
	return f, nil
}

func parsePushPromiseFrame(fc *frameCache, hdr FrameHeader, p []byte) (Frame, error) {
	if hdr.StreamID == 0 {
		return nil, connError(ErrCodeProtocol, "PUSH_PROMISE on stream 0")
	}
	p, err := stripPadding(hdr, p)
	if err != nil {
		return nil, err
	}
	if len(p) < 4 {
		return nil, connError(ErrCodeFrameSize, "PUSH_PROMISE truncated")
	}
	f := fc.getPushPromiseFrame()
	*f = PushPromiseFrame{
		FrameHeader:   hdr,
		PromiseID:     binary.BigEndian.Uint32(p[:4]) & (1<<31 - 1),
		BlockFragment: p[4:],
	}
	return f, nil
}

func parsePingFrame(fc *frameCache, hdr FrameHeader, p []byte) (Frame, error) {
	if hdr.StreamID != 0 {
		return nil, connError(ErrCodeProtocol, "PING on non-zero stream")
	}
	if len(p) != 8 {
		return nil, connError(ErrCodeFrameSize, "PING payload must be 8 bytes")
	}
	f := fc.getPingFrame()
	*f = PingFrame{FrameHeader: hdr}
	copy(f.Data[:], p)
	return f, nil
}

func parseGoAwayFrame(fc *frameCache, hdr FrameHeader, p []byte) (Frame, error) {
	if hdr.StreamID != 0 {
		return nil, connError(ErrCodeProtocol, "GOAWAY on non-zero stream")
	}
	if len(p) < 8 {
		return nil, connError(ErrCodeFrameSize, "GOAWAY truncated")
	}
	f := fc.getGoAwayFrame()
	*f = GoAwayFrame{
		FrameHeader:  hdr,
		LastStreamID: binary.BigEndian.Uint32(p[:4]) & (1<<31 - 1),
		ErrCode:      ErrCode(binary.BigEndian.Uint32(p[4:8])),
		DebugData:    p[8:],
	}
	return f, nil
}

func parseWindowUpdateFrame(fc *frameCache, hdr FrameHeader, p []byte) (Frame, error) {
	if len(p) != 4 {
		return nil, connError(ErrCodeFrameSize, "WINDOW_UPDATE payload must be 4 bytes")
	}
	inc := binary.BigEndian.Uint32(p) & (1<<31 - 1)
	if inc == 0 {
		// §6.9: zero increment is PROTOCOL_ERROR; stream-level when on
		// a stream, connection-level when on stream 0.
		if hdr.StreamID == 0 {
			return nil, connError(ErrCodeProtocol, "WINDOW_UPDATE increment 0")
		}
		return nil, streamError(hdr.StreamID, ErrCodeProtocol, "WINDOW_UPDATE increment 0")
	}
	f := fc.getWindowUpdateFrame()
	*f = WindowUpdateFrame{FrameHeader: hdr, Increment: inc}
	return f, nil
}

func parseAltSvcFrame(fc *frameCache, hdr FrameHeader, p []byte) (Frame, error) {
	if len(p) < 2 {
		return nil, connError(ErrCodeFrameSize, "ALTSVC truncated")
	}
	originLen := int(binary.BigEndian.Uint16(p[:2]))
	if len(p) < 2+originLen {
		return nil, connError(ErrCodeFrameSize, "ALTSVC origin truncated")
	}
	f := fc.getAltSvcFrame()
	*f = AltSvcFrame{
		FrameHeader: hdr,
		Origin:      string(p[2 : 2+originLen]),
		FieldValue:  string(p[2+originLen:]),
	}
	return f, nil
}

// parseOriginFrame decodes an RFC 8336 ORIGIN frame: a sequence of
// origin entries, each a 16-bit length followed by an ASCII origin.
//
// Per RFC 8336 §2.1 an ORIGIN frame on a non-zero stream or with flags
// set "MUST be ignored"; the connection layer handles that by checking
// the returned header, so parsing stays permissive here. A malformed
// payload, however, is a connection error of type FRAME_SIZE_ERROR.
func parseOriginFrame(fc *frameCache, hdr FrameHeader, p []byte) (Frame, error) {
	f := fc.getOriginFrame()
	origins := f.Origins[:0] // keep the cached frame's slice capacity
	*f = OriginFrame{FrameHeader: hdr}
	for len(p) > 0 {
		if len(p) < 2 {
			return nil, connError(ErrCodeFrameSize, "ORIGIN entry length truncated")
		}
		n := int(binary.BigEndian.Uint16(p[:2]))
		p = p[2:]
		if len(p) < n {
			return nil, connError(ErrCodeFrameSize, "ORIGIN entry truncated")
		}
		origins = append(origins, string(p[:n]))
		p = p[n:]
	}
	f.Origins = origins
	return f, nil
}

// --- Writing ---

// The write path assembles every frame directly into fr.wbuf between
// startWrite and endWrite, so steady-state writes touch no intermediate
// payload slices and stay allocation-free. Validation that can fail must
// run before startWrite: endWrite is the only path that releases the
// write lock.

// startWrite locks the writer and begins a frame with a zero-length
// header; endWrite patches the real length in.
func (fr *Framer) startWrite(typ FrameType, flags Flags, streamID uint32) {
	fr.wmu.Lock()
	fr.wbuf = appendFrameHeader(fr.wbuf[:0], FrameHeader{
		Type: typ, Flags: flags, StreamID: streamID,
	})
}

// endWrite back-patches the payload length, flushes the frame, and
// releases the write lock.
func (fr *Framer) endWrite() error {
	length := len(fr.wbuf) - frameHeaderLen
	if length > maxMaxFrameSize {
		fr.wmu.Unlock()
		return fmt.Errorf("h2: frame payload %d exceeds protocol maximum", length)
	}
	fr.wbuf[0] = byte(length >> 16)
	fr.wbuf[1] = byte(length >> 8)
	fr.wbuf[2] = byte(length)
	_, err := fr.w.Write(fr.wbuf)
	fr.wmu.Unlock()
	return err
}

// writeFrame serializes one complete frame from a caller-owned payload.
func (fr *Framer) writeFrame(typ FrameType, flags Flags, streamID uint32, payload []byte) error {
	if len(payload) > maxMaxFrameSize {
		return fmt.Errorf("h2: frame payload %d exceeds protocol maximum", len(payload))
	}
	fr.startWrite(typ, flags, streamID)
	fr.wbuf = append(fr.wbuf, payload...)
	return fr.endWrite()
}

// WriteData writes a DATA frame. The caller is responsible for honoring
// flow control and SETTINGS_MAX_FRAME_SIZE.
func (fr *Framer) WriteData(streamID uint32, endStream bool, data []byte) error {
	if streamID == 0 && !fr.AllowIllegalWrites {
		return fmt.Errorf("h2: DATA on stream 0")
	}
	var flags Flags
	if endStream {
		flags |= FlagEndStream
	}
	fr.startWrite(FrameData, flags, streamID)
	fr.wbuf = append(fr.wbuf, data...)
	return fr.endWrite()
}

// HeadersFrameParam configures WriteHeaders.
type HeadersFrameParam struct {
	StreamID      uint32
	BlockFragment []byte
	EndStream     bool
	EndHeaders    bool
	Priority      *PriorityParam
}

// WriteHeaders writes a HEADERS frame.
func (fr *Framer) WriteHeaders(p HeadersFrameParam) error {
	var flags Flags
	if p.EndStream {
		flags |= FlagEndStream
	}
	if p.EndHeaders {
		flags |= FlagEndHeaders
	}
	if p.Priority != nil {
		flags |= FlagPriority
	}
	fr.startWrite(FrameHeaders, flags, p.StreamID)
	if p.Priority != nil {
		dep := p.Priority.StreamDep
		if p.Priority.Exclusive {
			dep |= 1 << 31
		}
		fr.wbuf = binary.BigEndian.AppendUint32(fr.wbuf, dep)
		fr.wbuf = append(fr.wbuf, p.Priority.Weight)
	}
	fr.wbuf = append(fr.wbuf, p.BlockFragment...)
	return fr.endWrite()
}

// WriteContinuation writes a CONTINUATION frame.
func (fr *Framer) WriteContinuation(streamID uint32, endHeaders bool, frag []byte) error {
	var flags Flags
	if endHeaders {
		flags |= FlagEndHeaders
	}
	fr.startWrite(FrameContinuation, flags, streamID)
	fr.wbuf = append(fr.wbuf, frag...)
	return fr.endWrite()
}

// WritePriority writes a PRIORITY frame.
func (fr *Framer) WritePriority(streamID uint32, p PriorityParam) error {
	dep := p.StreamDep
	if p.Exclusive {
		dep |= 1 << 31
	}
	fr.startWrite(FramePriority, 0, streamID)
	fr.wbuf = binary.BigEndian.AppendUint32(fr.wbuf, dep)
	fr.wbuf = append(fr.wbuf, p.Weight)
	return fr.endWrite()
}

// WriteRSTStream writes an RST_STREAM frame.
func (fr *Framer) WriteRSTStream(streamID uint32, code ErrCode) error {
	fr.startWrite(FrameRSTStream, 0, streamID)
	fr.wbuf = binary.BigEndian.AppendUint32(fr.wbuf, uint32(code))
	return fr.endWrite()
}

// WriteSettings writes a SETTINGS frame with the given parameters.
func (fr *Framer) WriteSettings(settings ...Setting) error {
	fr.startWrite(FrameSettings, 0, 0)
	for _, s := range settings {
		fr.wbuf = binary.BigEndian.AppendUint16(fr.wbuf, uint16(s.ID))
		fr.wbuf = binary.BigEndian.AppendUint32(fr.wbuf, s.Val)
	}
	return fr.endWrite()
}

// WriteSettingsAck acknowledges the peer's SETTINGS frame.
func (fr *Framer) WriteSettingsAck() error {
	fr.startWrite(FrameSettings, FlagAck, 0)
	return fr.endWrite()
}

// WritePing writes a PING frame.
func (fr *Framer) WritePing(ack bool, data [8]byte) error {
	var flags Flags
	if ack {
		flags |= FlagAck
	}
	fr.startWrite(FramePing, flags, 0)
	fr.wbuf = append(fr.wbuf, data[:]...)
	return fr.endWrite()
}

// WriteGoAway writes a GOAWAY frame.
func (fr *Framer) WriteGoAway(lastStreamID uint32, code ErrCode, debug []byte) error {
	fr.startWrite(FrameGoAway, 0, 0)
	fr.wbuf = binary.BigEndian.AppendUint32(fr.wbuf, lastStreamID)
	fr.wbuf = binary.BigEndian.AppendUint32(fr.wbuf, uint32(code))
	fr.wbuf = append(fr.wbuf, debug...)
	return fr.endWrite()
}

// WriteWindowUpdate writes a WINDOW_UPDATE frame.
func (fr *Framer) WriteWindowUpdate(streamID, incr uint32) error {
	if (incr == 0 || incr > maxWindow) && !fr.AllowIllegalWrites {
		return fmt.Errorf("h2: illegal window increment %d", incr)
	}
	fr.startWrite(FrameWindowUpdate, 0, streamID)
	fr.wbuf = binary.BigEndian.AppendUint32(fr.wbuf, incr)
	return fr.endWrite()
}

// WriteAltSvc writes an ALTSVC frame (RFC 7838 §4).
func (fr *Framer) WriteAltSvc(streamID uint32, origin, fieldValue string) error {
	fr.startWrite(FrameAltSvc, 0, streamID)
	fr.wbuf = binary.BigEndian.AppendUint16(fr.wbuf, uint16(len(origin)))
	fr.wbuf = append(fr.wbuf, origin...)
	fr.wbuf = append(fr.wbuf, fieldValue...)
	return fr.endWrite()
}

// WriteOrigin writes an RFC 8336 ORIGIN frame carrying the given origin
// set on stream 0.
func (fr *Framer) WriteOrigin(origins []string) error {
	for _, o := range origins {
		if len(o) > 65535 {
			return fmt.Errorf("h2: origin %q too long for ORIGIN frame", o)
		}
	}
	fr.startWrite(FrameOrigin, 0, 0)
	for _, o := range origins {
		fr.wbuf = binary.BigEndian.AppendUint16(fr.wbuf, uint16(len(o)))
		fr.wbuf = append(fr.wbuf, o...)
	}
	return fr.endWrite()
}

// WriteRawFrame writes an arbitrary frame; used by tests and the
// non-compliance harness.
func (fr *Framer) WriteRawFrame(typ FrameType, flags Flags, streamID uint32, payload []byte) error {
	return fr.writeFrame(typ, flags, streamID, payload)
}
