package h2

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"
)

// A Framer reads and writes HTTP/2 frames on an underlying reader and
// writer. Reads must come from a single goroutine; writes are serialized
// internally and may come from many goroutines.
//
// Read frames alias an internal buffer: a frame returned by ReadFrame is
// valid only until the next ReadFrame call.
type Framer struct {
	r    io.Reader
	rbuf []byte

	wmu  sync.Mutex
	w    io.Writer
	wbuf []byte

	// maxReadSize is the largest frame payload this endpoint advertised
	// (SETTINGS_MAX_FRAME_SIZE); larger frames are a FRAME_SIZE_ERROR.
	maxReadSize uint32

	// rdl, when non-nil, gets a fresh read deadline armed before every
	// frame read, bounding how long the peer may stay silent.
	rdl         interface{ SetReadDeadline(time.Time) error }
	readTimeout time.Duration

	// AllowIllegalWrites disables write-side validation. It is used by
	// tests and by the non-compliance harness to produce malformed
	// frames on purpose.
	AllowIllegalWrites bool
}

// NewFramer returns a Framer reading from r and writing to w.
func NewFramer(w io.Writer, r io.Reader) *Framer {
	return &Framer{
		r:           r,
		w:           w,
		rbuf:        make([]byte, frameHeaderLen, frameHeaderLen+minMaxFrameSize),
		maxReadSize: minMaxFrameSize,
	}
}

// SetMaxReadFrameSize sets the largest payload ReadFrame accepts.
func (fr *Framer) SetMaxReadFrameSize(n uint32) {
	if n < minMaxFrameSize {
		n = minMaxFrameSize
	}
	if n > maxMaxFrameSize {
		n = maxMaxFrameSize
	}
	fr.maxReadSize = n
}

// SetReadTimeout arms a read deadline of d on c before every subsequent
// ReadFrame: a peer silent for longer than d between frames fails the
// read with a timeout error (IsTimeout reports true for it). Endpoints
// running keepalive PINGs must keep d above the ping interval or the
// idle timer fires before the liveness probe does. It must be called
// before the read loop starts; a zero d disarms.
func (fr *Framer) SetReadTimeout(c interface{ SetReadDeadline(time.Time) error }, d time.Duration) {
	fr.rdl = c
	fr.readTimeout = d
}

// ReadFrame reads and parses one frame. It returns ConnectionError for
// protocol violations that must tear down the connection.
func (fr *Framer) ReadFrame() (Frame, error) {
	if fr.rdl != nil && fr.readTimeout > 0 {
		_ = fr.rdl.SetReadDeadline(time.Now().Add(fr.readTimeout))
	}
	hdr, err := readFrameHeader(fr.r, fr.rbuf[:frameHeaderLen])
	if err != nil {
		return nil, err
	}
	if hdr.Length > fr.maxReadSize {
		return nil, connError(ErrCodeFrameSize, fmt.Sprintf("frame of %d bytes exceeds SETTINGS_MAX_FRAME_SIZE", hdr.Length))
	}
	if cap(fr.rbuf) < int(hdr.Length) {
		fr.rbuf = make([]byte, hdr.Length)
	}
	payload := fr.rbuf[:hdr.Length]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return parseFrame(hdr, payload)
}

func parseFrame(hdr FrameHeader, p []byte) (Frame, error) {
	switch hdr.Type {
	case FrameData:
		return parseDataFrame(hdr, p)
	case FrameHeaders:
		return parseHeadersFrame(hdr, p)
	case FramePriority:
		return parsePriorityFrame(hdr, p)
	case FrameRSTStream:
		return parseRSTStreamFrame(hdr, p)
	case FrameSettings:
		return parseSettingsFrame(hdr, p)
	case FramePushPromise:
		return parsePushPromiseFrame(hdr, p)
	case FramePing:
		return parsePingFrame(hdr, p)
	case FrameGoAway:
		return parseGoAwayFrame(hdr, p)
	case FrameWindowUpdate:
		return parseWindowUpdateFrame(hdr, p)
	case FrameContinuation:
		return &ContinuationFrame{FrameHeader: hdr, BlockFragment: p}, nil
	case FrameAltSvc:
		return parseAltSvcFrame(hdr, p)
	case FrameOrigin:
		return parseOriginFrame(hdr, p)
	default:
		return &UnknownFrame{FrameHeader: hdr, Payload: p}, nil
	}
}

// stripPadding removes the §6.1 pad-length octet and trailing padding.
func stripPadding(hdr FrameHeader, p []byte) ([]byte, error) {
	if !hdr.Flags.Has(FlagPadded) {
		return p, nil
	}
	if len(p) == 0 {
		return nil, connError(ErrCodeProtocol, "padded frame missing pad length")
	}
	padLen := int(p[0])
	p = p[1:]
	if padLen > len(p) {
		return nil, connError(ErrCodeProtocol, "pad length exceeds payload")
	}
	return p[:len(p)-padLen], nil
}

func parseDataFrame(hdr FrameHeader, p []byte) (Frame, error) {
	if hdr.StreamID == 0 {
		return nil, connError(ErrCodeProtocol, "DATA on stream 0")
	}
	data, err := stripPadding(hdr, p)
	if err != nil {
		return nil, err
	}
	return &DataFrame{FrameHeader: hdr, Data: data}, nil
}

func parseHeadersFrame(hdr FrameHeader, p []byte) (Frame, error) {
	if hdr.StreamID == 0 {
		return nil, connError(ErrCodeProtocol, "HEADERS on stream 0")
	}
	p, err := stripPadding(hdr, p)
	if err != nil {
		return nil, err
	}
	f := &HeadersFrame{FrameHeader: hdr}
	if hdr.Flags.Has(FlagPriority) {
		if len(p) < 5 {
			return nil, connError(ErrCodeProtocol, "HEADERS priority fields truncated")
		}
		dep := binary.BigEndian.Uint32(p[:4])
		f.Priority = PriorityParam{
			StreamDep: dep & (1<<31 - 1),
			Exclusive: dep>>31 == 1,
			Weight:    p[4],
		}
		p = p[5:]
	}
	f.BlockFragment = p
	return f, nil
}

func parsePriorityFrame(hdr FrameHeader, p []byte) (Frame, error) {
	if hdr.StreamID == 0 {
		return nil, connError(ErrCodeProtocol, "PRIORITY on stream 0")
	}
	if len(p) != 5 {
		return nil, streamError(hdr.StreamID, ErrCodeFrameSize, "PRIORITY payload must be 5 bytes")
	}
	dep := binary.BigEndian.Uint32(p[:4])
	return &PriorityFrame{
		FrameHeader: hdr,
		PriorityParam: PriorityParam{
			StreamDep: dep & (1<<31 - 1),
			Exclusive: dep>>31 == 1,
			Weight:    p[4],
		},
	}, nil
}

func parseRSTStreamFrame(hdr FrameHeader, p []byte) (Frame, error) {
	if hdr.StreamID == 0 {
		return nil, connError(ErrCodeProtocol, "RST_STREAM on stream 0")
	}
	if len(p) != 4 {
		return nil, connError(ErrCodeFrameSize, "RST_STREAM payload must be 4 bytes")
	}
	return &RSTStreamFrame{FrameHeader: hdr, ErrCode: ErrCode(binary.BigEndian.Uint32(p))}, nil
}

func parseSettingsFrame(hdr FrameHeader, p []byte) (Frame, error) {
	if hdr.StreamID != 0 {
		return nil, connError(ErrCodeProtocol, "SETTINGS on non-zero stream")
	}
	if hdr.Flags.Has(FlagAck) {
		if len(p) != 0 {
			return nil, connError(ErrCodeFrameSize, "SETTINGS ack with payload")
		}
		return &SettingsFrame{FrameHeader: hdr}, nil
	}
	if len(p)%6 != 0 {
		return nil, connError(ErrCodeFrameSize, "SETTINGS payload not a multiple of 6")
	}
	f := &SettingsFrame{FrameHeader: hdr}
	for i := 0; i < len(p); i += 6 {
		s := Setting{
			ID:  SettingID(binary.BigEndian.Uint16(p[i : i+2])),
			Val: binary.BigEndian.Uint32(p[i+2 : i+6]),
		}
		if err := s.Valid(); err != nil {
			return nil, err
		}
		f.Settings = append(f.Settings, s)
	}
	return f, nil
}

func parsePushPromiseFrame(hdr FrameHeader, p []byte) (Frame, error) {
	if hdr.StreamID == 0 {
		return nil, connError(ErrCodeProtocol, "PUSH_PROMISE on stream 0")
	}
	p, err := stripPadding(hdr, p)
	if err != nil {
		return nil, err
	}
	if len(p) < 4 {
		return nil, connError(ErrCodeFrameSize, "PUSH_PROMISE truncated")
	}
	return &PushPromiseFrame{
		FrameHeader:   hdr,
		PromiseID:     binary.BigEndian.Uint32(p[:4]) & (1<<31 - 1),
		BlockFragment: p[4:],
	}, nil
}

func parsePingFrame(hdr FrameHeader, p []byte) (Frame, error) {
	if hdr.StreamID != 0 {
		return nil, connError(ErrCodeProtocol, "PING on non-zero stream")
	}
	if len(p) != 8 {
		return nil, connError(ErrCodeFrameSize, "PING payload must be 8 bytes")
	}
	f := &PingFrame{FrameHeader: hdr}
	copy(f.Data[:], p)
	return f, nil
}

func parseGoAwayFrame(hdr FrameHeader, p []byte) (Frame, error) {
	if hdr.StreamID != 0 {
		return nil, connError(ErrCodeProtocol, "GOAWAY on non-zero stream")
	}
	if len(p) < 8 {
		return nil, connError(ErrCodeFrameSize, "GOAWAY truncated")
	}
	return &GoAwayFrame{
		FrameHeader:  hdr,
		LastStreamID: binary.BigEndian.Uint32(p[:4]) & (1<<31 - 1),
		ErrCode:      ErrCode(binary.BigEndian.Uint32(p[4:8])),
		DebugData:    p[8:],
	}, nil
}

func parseWindowUpdateFrame(hdr FrameHeader, p []byte) (Frame, error) {
	if len(p) != 4 {
		return nil, connError(ErrCodeFrameSize, "WINDOW_UPDATE payload must be 4 bytes")
	}
	inc := binary.BigEndian.Uint32(p) & (1<<31 - 1)
	if inc == 0 {
		// §6.9: zero increment is PROTOCOL_ERROR; stream-level when on
		// a stream, connection-level when on stream 0.
		if hdr.StreamID == 0 {
			return nil, connError(ErrCodeProtocol, "WINDOW_UPDATE increment 0")
		}
		return nil, streamError(hdr.StreamID, ErrCodeProtocol, "WINDOW_UPDATE increment 0")
	}
	return &WindowUpdateFrame{FrameHeader: hdr, Increment: inc}, nil
}

func parseAltSvcFrame(hdr FrameHeader, p []byte) (Frame, error) {
	if len(p) < 2 {
		return nil, connError(ErrCodeFrameSize, "ALTSVC truncated")
	}
	originLen := int(binary.BigEndian.Uint16(p[:2]))
	if len(p) < 2+originLen {
		return nil, connError(ErrCodeFrameSize, "ALTSVC origin truncated")
	}
	return &AltSvcFrame{
		FrameHeader: hdr,
		Origin:      string(p[2 : 2+originLen]),
		FieldValue:  string(p[2+originLen:]),
	}, nil
}

// parseOriginFrame decodes an RFC 8336 ORIGIN frame: a sequence of
// origin entries, each a 16-bit length followed by an ASCII origin.
//
// Per RFC 8336 §2.1 an ORIGIN frame on a non-zero stream or with flags
// set "MUST be ignored"; the connection layer handles that by checking
// the returned header, so parsing stays permissive here. A malformed
// payload, however, is a connection error of type FRAME_SIZE_ERROR.
func parseOriginFrame(hdr FrameHeader, p []byte) (Frame, error) {
	f := &OriginFrame{FrameHeader: hdr}
	for len(p) > 0 {
		if len(p) < 2 {
			return nil, connError(ErrCodeFrameSize, "ORIGIN entry length truncated")
		}
		n := int(binary.BigEndian.Uint16(p[:2]))
		p = p[2:]
		if len(p) < n {
			return nil, connError(ErrCodeFrameSize, "ORIGIN entry truncated")
		}
		f.Origins = append(f.Origins, string(p[:n]))
		p = p[n:]
	}
	return f, nil
}

// --- Writing ---

// writeFrame serializes one complete frame under the write lock.
func (fr *Framer) writeFrame(typ FrameType, flags Flags, streamID uint32, payload []byte) error {
	if len(payload) > maxMaxFrameSize {
		return fmt.Errorf("h2: frame payload %d exceeds protocol maximum", len(payload))
	}
	fr.wmu.Lock()
	defer fr.wmu.Unlock()
	fr.wbuf = appendFrameHeader(fr.wbuf[:0], FrameHeader{
		Type: typ, Flags: flags, StreamID: streamID, Length: uint32(len(payload)),
	})
	fr.wbuf = append(fr.wbuf, payload...)
	_, err := fr.w.Write(fr.wbuf)
	return err
}

// WriteData writes a DATA frame. The caller is responsible for honoring
// flow control and SETTINGS_MAX_FRAME_SIZE.
func (fr *Framer) WriteData(streamID uint32, endStream bool, data []byte) error {
	if streamID == 0 && !fr.AllowIllegalWrites {
		return fmt.Errorf("h2: DATA on stream 0")
	}
	var flags Flags
	if endStream {
		flags |= FlagEndStream
	}
	return fr.writeFrame(FrameData, flags, streamID, data)
}

// HeadersFrameParam configures WriteHeaders.
type HeadersFrameParam struct {
	StreamID      uint32
	BlockFragment []byte
	EndStream     bool
	EndHeaders    bool
	Priority      *PriorityParam
}

// WriteHeaders writes a HEADERS frame.
func (fr *Framer) WriteHeaders(p HeadersFrameParam) error {
	var flags Flags
	if p.EndStream {
		flags |= FlagEndStream
	}
	if p.EndHeaders {
		flags |= FlagEndHeaders
	}
	payload := p.BlockFragment
	if p.Priority != nil {
		flags |= FlagPriority
		hdr := make([]byte, 5, 5+len(p.BlockFragment))
		dep := p.Priority.StreamDep
		if p.Priority.Exclusive {
			dep |= 1 << 31
		}
		binary.BigEndian.PutUint32(hdr[:4], dep)
		hdr[4] = p.Priority.Weight
		payload = append(hdr, p.BlockFragment...)
	}
	return fr.writeFrame(FrameHeaders, flags, p.StreamID, payload)
}

// WriteContinuation writes a CONTINUATION frame.
func (fr *Framer) WriteContinuation(streamID uint32, endHeaders bool, frag []byte) error {
	var flags Flags
	if endHeaders {
		flags |= FlagEndHeaders
	}
	return fr.writeFrame(FrameContinuation, flags, streamID, frag)
}

// WritePriority writes a PRIORITY frame.
func (fr *Framer) WritePriority(streamID uint32, p PriorityParam) error {
	buf := make([]byte, 5)
	dep := p.StreamDep
	if p.Exclusive {
		dep |= 1 << 31
	}
	binary.BigEndian.PutUint32(buf[:4], dep)
	buf[4] = p.Weight
	return fr.writeFrame(FramePriority, 0, streamID, buf)
}

// WriteRSTStream writes an RST_STREAM frame.
func (fr *Framer) WriteRSTStream(streamID uint32, code ErrCode) error {
	buf := make([]byte, 4)
	binary.BigEndian.PutUint32(buf, uint32(code))
	return fr.writeFrame(FrameRSTStream, 0, streamID, buf)
}

// WriteSettings writes a SETTINGS frame with the given parameters.
func (fr *Framer) WriteSettings(settings ...Setting) error {
	buf := make([]byte, 0, 6*len(settings))
	for _, s := range settings {
		buf = binary.BigEndian.AppendUint16(buf, uint16(s.ID))
		buf = binary.BigEndian.AppendUint32(buf, s.Val)
	}
	return fr.writeFrame(FrameSettings, 0, 0, buf)
}

// WriteSettingsAck acknowledges the peer's SETTINGS frame.
func (fr *Framer) WriteSettingsAck() error {
	return fr.writeFrame(FrameSettings, FlagAck, 0, nil)
}

// WritePing writes a PING frame.
func (fr *Framer) WritePing(ack bool, data [8]byte) error {
	var flags Flags
	if ack {
		flags |= FlagAck
	}
	return fr.writeFrame(FramePing, flags, 0, data[:])
}

// WriteGoAway writes a GOAWAY frame.
func (fr *Framer) WriteGoAway(lastStreamID uint32, code ErrCode, debug []byte) error {
	buf := make([]byte, 8, 8+len(debug))
	binary.BigEndian.PutUint32(buf[:4], lastStreamID)
	binary.BigEndian.PutUint32(buf[4:8], uint32(code))
	return fr.writeFrame(FrameGoAway, 0, 0, append(buf, debug...))
}

// WriteWindowUpdate writes a WINDOW_UPDATE frame.
func (fr *Framer) WriteWindowUpdate(streamID, incr uint32) error {
	if (incr == 0 || incr > maxWindow) && !fr.AllowIllegalWrites {
		return fmt.Errorf("h2: illegal window increment %d", incr)
	}
	buf := make([]byte, 4)
	binary.BigEndian.PutUint32(buf, incr)
	return fr.writeFrame(FrameWindowUpdate, 0, streamID, buf)
}

// WriteAltSvc writes an ALTSVC frame (RFC 7838 §4).
func (fr *Framer) WriteAltSvc(streamID uint32, origin, fieldValue string) error {
	buf := make([]byte, 0, 2+len(origin)+len(fieldValue))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(origin)))
	buf = append(buf, origin...)
	buf = append(buf, fieldValue...)
	return fr.writeFrame(FrameAltSvc, 0, streamID, buf)
}

// WriteOrigin writes an RFC 8336 ORIGIN frame carrying the given origin
// set on stream 0.
func (fr *Framer) WriteOrigin(origins []string) error {
	var buf []byte
	for _, o := range origins {
		if len(o) > 65535 {
			return fmt.Errorf("h2: origin %q too long for ORIGIN frame", o)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(o)))
		buf = append(buf, o...)
	}
	return fr.writeFrame(FrameOrigin, 0, 0, buf)
}

// WriteRawFrame writes an arbitrary frame; used by tests and the
// non-compliance harness.
func (fr *Framer) WriteRawFrame(typ FrameType, flags Flags, streamID uint32, payload []byte) error {
	return fr.writeFrame(typ, flags, streamID, payload)
}
