package h2

import (
	"encoding/binary"
	"fmt"
	"io"
)

// A FrameType identifies an HTTP/2 frame type (RFC 9113 §6, RFC 7838,
// RFC 8336).
type FrameType uint8

// Frame types.
const (
	FrameData         FrameType = 0x0
	FrameHeaders      FrameType = 0x1
	FramePriority     FrameType = 0x2
	FrameRSTStream    FrameType = 0x3
	FrameSettings     FrameType = 0x4
	FramePushPromise  FrameType = 0x5
	FramePing         FrameType = 0x6
	FrameGoAway       FrameType = 0x7
	FrameWindowUpdate FrameType = 0x8
	FrameContinuation FrameType = 0x9
	FrameAltSvc       FrameType = 0xa // RFC 7838
	FrameOrigin       FrameType = 0xc // RFC 8336
)

var frameTypeNames = map[FrameType]string{
	FrameData:         "DATA",
	FrameHeaders:      "HEADERS",
	FramePriority:     "PRIORITY",
	FrameRSTStream:    "RST_STREAM",
	FrameSettings:     "SETTINGS",
	FramePushPromise:  "PUSH_PROMISE",
	FramePing:         "PING",
	FrameGoAway:       "GOAWAY",
	FrameWindowUpdate: "WINDOW_UPDATE",
	FrameContinuation: "CONTINUATION",
	FrameAltSvc:       "ALTSVC",
	FrameOrigin:       "ORIGIN",
}

func (t FrameType) String() string {
	if s, ok := frameTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("UNKNOWN_FRAME_TYPE_%d", uint8(t))
}

// Flags is the 8-bit frame flags field.
type Flags uint8

// Has reports whether all bits of f are set in fl.
func (fl Flags) Has(f Flags) bool { return fl&f == f }

// Frame flags (per-type meanings).
const (
	FlagEndStream  Flags = 0x1 // DATA, HEADERS
	FlagAck        Flags = 0x1 // SETTINGS, PING
	FlagEndHeaders Flags = 0x4 // HEADERS, PUSH_PROMISE, CONTINUATION
	FlagPadded     Flags = 0x8 // DATA, HEADERS, PUSH_PROMISE
	FlagPriority   Flags = 0x20
)

// Protocol constants from RFC 9113.
const (
	// ClientPreface is the fixed connection preface the client sends.
	ClientPreface = "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"

	frameHeaderLen = 9

	// minMaxFrameSize and maxMaxFrameSize bound SETTINGS_MAX_FRAME_SIZE.
	minMaxFrameSize = 1 << 14
	maxMaxFrameSize = 1<<24 - 1

	// initialWindowSize is the default flow-control window (§6.9.2).
	initialWindowSize = 65535

	// maxWindow is the maximum flow-control window (§6.9.1).
	maxWindow = 1<<31 - 1
)

// A FrameHeader is the fixed 9-octet header of every frame.
type FrameHeader struct {
	Type     FrameType
	Flags    Flags
	Length   uint32 // 24-bit payload length
	StreamID uint32 // 31-bit stream identifier
}

func (h FrameHeader) String() string {
	return fmt.Sprintf("[%v flags=0x%x stream=%d len=%d]", h.Type, uint8(h.Flags), h.StreamID, h.Length)
}

func readFrameHeader(r io.Reader, buf []byte) (FrameHeader, error) {
	if _, err := io.ReadFull(r, buf[:frameHeaderLen]); err != nil {
		return FrameHeader{}, err
	}
	return FrameHeader{
		Length:   uint32(buf[0])<<16 | uint32(buf[1])<<8 | uint32(buf[2]),
		Type:     FrameType(buf[3]),
		Flags:    Flags(buf[4]),
		StreamID: binary.BigEndian.Uint32(buf[5:9]) & (1<<31 - 1),
	}, nil
}

func appendFrameHeader(dst []byte, h FrameHeader) []byte {
	return append(dst,
		byte(h.Length>>16), byte(h.Length>>8), byte(h.Length),
		byte(h.Type), byte(h.Flags),
		byte(h.StreamID>>24), byte(h.StreamID>>16), byte(h.StreamID>>8), byte(h.StreamID),
	)
}

// A Frame is a decoded HTTP/2 frame.
type Frame interface {
	Header() FrameHeader
}

// DataFrame carries request or response bytes (§6.1). Data aliases the
// Framer's read buffer and is valid only until the next ReadFrame call.
type DataFrame struct {
	FrameHeader
	Data []byte
}

// HeadersFrame opens or continues a stream with a header block fragment
// (§6.2). The priority fields are parsed when FlagPriority is set.
type HeadersFrame struct {
	FrameHeader
	BlockFragment []byte
	Priority      PriorityParam
}

// EndStream reports whether the END_STREAM flag is set.
func (f *HeadersFrame) EndStream() bool { return f.Flags.Has(FlagEndStream) }

// EndHeaders reports whether the END_HEADERS flag is set.
func (f *HeadersFrame) EndHeaders() bool { return f.Flags.Has(FlagEndHeaders) }

// PriorityParam are the stream dependency fields of PRIORITY and HEADERS.
type PriorityParam struct {
	StreamDep uint32
	Exclusive bool
	Weight    uint8
}

// PriorityFrame carries deprecated stream priority information (§6.3).
type PriorityFrame struct {
	FrameHeader
	PriorityParam
}

// RSTStreamFrame abruptly terminates a stream (§6.4).
type RSTStreamFrame struct {
	FrameHeader
	ErrCode ErrCode
}

// Setting is a single SETTINGS parameter.
type Setting struct {
	ID  SettingID
	Val uint32
}

func (s Setting) String() string { return fmt.Sprintf("%v=%d", s.ID, s.Val) }

// A SettingID identifies a SETTINGS parameter (§6.5.2).
type SettingID uint16

// SETTINGS parameters.
const (
	SettingHeaderTableSize      SettingID = 0x1
	SettingEnablePush           SettingID = 0x2
	SettingMaxConcurrentStreams SettingID = 0x3
	SettingInitialWindowSize    SettingID = 0x4
	SettingMaxFrameSize         SettingID = 0x5
	SettingMaxHeaderListSize    SettingID = 0x6
)

var settingNames = map[SettingID]string{
	SettingHeaderTableSize:      "HEADER_TABLE_SIZE",
	SettingEnablePush:           "ENABLE_PUSH",
	SettingMaxConcurrentStreams: "MAX_CONCURRENT_STREAMS",
	SettingInitialWindowSize:    "INITIAL_WINDOW_SIZE",
	SettingMaxFrameSize:         "MAX_FRAME_SIZE",
	SettingMaxHeaderListSize:    "MAX_HEADER_LIST_SIZE",
}

func (id SettingID) String() string {
	if s, ok := settingNames[id]; ok {
		return s
	}
	return fmt.Sprintf("UNKNOWN_SETTING_%d", uint16(id))
}

// Valid checks the §6.5.2 value constraints.
func (s Setting) Valid() error {
	switch s.ID {
	case SettingEnablePush:
		if s.Val != 0 && s.Val != 1 {
			return connError(ErrCodeProtocol, "ENABLE_PUSH must be 0 or 1")
		}
	case SettingInitialWindowSize:
		if s.Val > maxWindow {
			return connError(ErrCodeFlowControl, "INITIAL_WINDOW_SIZE above 2^31-1")
		}
	case SettingMaxFrameSize:
		if s.Val < minMaxFrameSize || s.Val > maxMaxFrameSize {
			return connError(ErrCodeProtocol, "MAX_FRAME_SIZE out of range")
		}
	}
	return nil
}

// SettingsFrame conveys configuration parameters (§6.5).
type SettingsFrame struct {
	FrameHeader
	Settings []Setting
}

// IsAck reports whether this is a SETTINGS acknowledgement.
func (f *SettingsFrame) IsAck() bool { return f.Flags.Has(FlagAck) }

// Value returns the last value for id in the frame.
func (f *SettingsFrame) Value(id SettingID) (uint32, bool) {
	for i := len(f.Settings) - 1; i >= 0; i-- {
		if f.Settings[i].ID == id {
			return f.Settings[i].Val, true
		}
	}
	return 0, false
}

// PushPromiseFrame announces a server-initiated stream (§6.6).
type PushPromiseFrame struct {
	FrameHeader
	PromiseID     uint32
	BlockFragment []byte
}

// PingFrame measures round-trip time or checks liveness (§6.7).
type PingFrame struct {
	FrameHeader
	Data [8]byte
}

// IsAck reports whether this is a PING acknowledgement.
func (f *PingFrame) IsAck() bool { return f.Flags.Has(FlagAck) }

// GoAwayFrame initiates connection shutdown (§6.8).
type GoAwayFrame struct {
	FrameHeader
	LastStreamID uint32
	ErrCode      ErrCode
	DebugData    []byte
}

// WindowUpdateFrame implements flow control (§6.9).
type WindowUpdateFrame struct {
	FrameHeader
	Increment uint32
}

// ContinuationFrame continues a header block (§6.10).
type ContinuationFrame struct {
	FrameHeader
	BlockFragment []byte
}

// EndHeaders reports whether the END_HEADERS flag is set.
func (f *ContinuationFrame) EndHeaders() bool { return f.Flags.Has(FlagEndHeaders) }

// AltSvcFrame advertises an alternative service (RFC 7838 §4).
type AltSvcFrame struct {
	FrameHeader
	Origin     string
	FieldValue string
}

// OriginFrame carries the connection's origin set (RFC 8336 §2).
// It is only valid on stream 0 and carries ASCII origin serializations.
type OriginFrame struct {
	FrameHeader
	Origins []string
}

// UnknownFrame is any frame of a type this implementation does not
// recognize. RFC 9113 §4.1 requires implementations to ignore these.
type UnknownFrame struct {
	FrameHeader
	Payload []byte
}

// Header implements the Frame interface for each concrete frame.
func (h FrameHeader) Header() FrameHeader { return h }
