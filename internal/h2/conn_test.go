package h2

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"respectorigin/internal/hpack"
)

// startPair wires a Server to a ClientConn over net.Pipe and returns the
// client plus a shutdown func.
func startPair(t *testing.T, srv *Server, opts ClientConnOptions) (*ClientConn, func()) {
	t.Helper()
	cn, sn := net.Pipe()
	serverDone := make(chan error, 1)
	go func() { serverDone <- srv.ServeConn(sn) }()
	cc, err := NewClientConn(cn, opts)
	if err != nil {
		t.Fatal(err)
	}
	return cc, func() {
		cc.Close()
		select {
		case <-serverDone:
		case <-time.After(2 * time.Second):
			t.Error("server did not shut down")
		}
	}
}

func echoHandler() Handler {
	return HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.WriteHeader(200,
			hpack.HeaderField{Name: "content-type", Value: "text/plain"},
			hpack.HeaderField{Name: "x-authority", Value: r.Authority},
		)
		fmt.Fprintf(w, "%s %s", r.Method, r.Path)
		if len(r.Body) > 0 {
			w.Write(r.Body)
		}
	})
}

func TestRoundTripBasic(t *testing.T) {
	cc, stop := startPair(t, &Server{Handler: echoHandler()}, ClientConnOptions{Origin: "example.com"})
	defer stop()

	resp, err := cc.Get("example.com", "/hello")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Errorf("status = %d", resp.Status)
	}
	if string(resp.Body) != "GET /hello" {
		t.Errorf("body = %q", resp.Body)
	}
	if resp.HeaderValue("content-type") != "text/plain" {
		t.Errorf("content-type = %q", resp.HeaderValue("content-type"))
	}
	if resp.HeaderValue("x-authority") != "example.com" {
		t.Errorf("x-authority = %q", resp.HeaderValue("x-authority"))
	}
}

func TestRoundTripWithBody(t *testing.T) {
	cc, stop := startPair(t, &Server{Handler: echoHandler()}, ClientConnOptions{})
	defer stop()

	body := bytes.Repeat([]byte("q"), 10000)
	resp, err := cc.RoundTrip(&Request{
		Method: "POST", Scheme: "https", Authority: "example.com", Path: "/up",
		Body: body,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "POST /up" + string(body)
	if string(resp.Body) != want {
		t.Errorf("body len = %d, want %d", len(resp.Body), len(want))
	}
}

func TestLargeResponseCrossesFlowControlWindow(t *testing.T) {
	// 300 KiB response: forces multiple DATA frames, stream and
	// connection WINDOW_UPDATE exchanges.
	const size = 300 << 10
	srv := &Server{Handler: HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.Write(bytes.Repeat([]byte{'z'}, size))
	})}
	cc, stop := startPair(t, srv, ClientConnOptions{})
	defer stop()

	resp, err := cc.Get("example.com", "/big")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Body) != size {
		t.Errorf("got %d bytes, want %d", len(resp.Body), size)
	}
}

func TestConcurrentStreams(t *testing.T) {
	cc, stop := startPair(t, &Server{Handler: echoHandler()}, ClientConnOptions{})
	defer stop()

	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/req/%d", i)
			resp, err := cc.Get("example.com", path)
			if err != nil {
				errs <- err
				return
			}
			if string(resp.Body) != "GET "+path {
				errs <- fmt.Errorf("bad body %q for %s", resp.Body, path)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestLargeHeadersUseContinuation(t *testing.T) {
	// A >16KiB header block must be split into HEADERS+CONTINUATION.
	big := strings.Repeat("v", 40000)
	srv := &Server{Handler: HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.WriteHeader(200, hpack.HeaderField{Name: "x-big", Value: r.HeaderValue("x-big")})
	})}
	cc, stop := startPair(t, srv, ClientConnOptions{})
	defer stop()

	resp, err := cc.RoundTrip(&Request{
		Method: "GET", Scheme: "https", Authority: "example.com", Path: "/",
		Header: []hpack.HeaderField{{Name: "x-big", Value: big, Sensitive: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.HeaderValue("x-big") != big {
		t.Errorf("x-big lost: got %d bytes", len(resp.HeaderValue("x-big")))
	}
}

func TestOriginFrameDelivered(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	srv := &Server{
		Handler:   echoHandler(),
		OriginSet: []string{"shard1.example.com", "shard2.example.com"},
	}
	cc, stop := startPair(t, srv, ClientConnOptions{
		Origin: "www.example.com",
		OnOrigin: func(origins []string) {
			mu.Lock()
			seen = append(seen, origins...)
			mu.Unlock()
		},
	})
	defer stop()

	// Any round trip guarantees the ORIGIN frame (sent before the first
	// response) has been processed.
	if _, err := cc.Get("www.example.com", "/"); err != nil {
		t.Fatal(err)
	}
	if cc.OriginFramesSeen() != 1 {
		t.Fatalf("origin frames seen = %d", cc.OriginFramesSeen())
	}
	os := cc.OriginSet()
	for _, want := range []string{"www.example.com", "shard1.example.com", "shard2.example.com"} {
		if !os.Contains(want) {
			t.Errorf("origin set missing %s (have %v)", want, os.All())
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Errorf("OnOrigin saw %v", seen)
	}
}

func TestOriginFrameIgnoredByUnsupportingClient(t *testing.T) {
	srv := &Server{
		Handler:   echoHandler(),
		OriginSet: []string{"shard1.example.com"},
	}
	cc, stop := startPair(t, srv, ClientConnOptions{
		Origin:             "www.example.com",
		IgnoreOriginFrames: true,
	})
	defer stop()

	if _, err := cc.Get("www.example.com", "/"); err != nil {
		t.Fatal(err)
	}
	if cc.OriginFramesSeen() != 0 {
		t.Error("client counted an ignored ORIGIN frame")
	}
	if cc.OriginSet().Contains("shard1.example.com") {
		t.Error("ignored ORIGIN frame still populated origin set")
	}
}

func TestCanRequestUsesOriginSetAndSANCheck(t *testing.T) {
	srv := &Server{
		Handler:   echoHandler(),
		OriginSet: []string{"covered.example.com", "uncovered.example.com"},
	}
	certSANs := map[string]bool{
		"www.example.com":     true,
		"covered.example.com": true,
	}
	cc, stop := startPair(t, srv, ClientConnOptions{
		Origin:       "www.example.com",
		VerifyOrigin: func(host string) bool { return certSANs[host] },
	})
	defer stop()

	if _, err := cc.Get("www.example.com", "/"); err != nil {
		t.Fatal(err)
	}
	if !cc.CanRequest("covered.example.com") {
		t.Error("in origin set + SAN: should be requestable")
	}
	if cc.CanRequest("uncovered.example.com") {
		t.Error("in origin set but not in SAN: must not be requestable")
	}
	if cc.CanRequest("unrelated.example.com") {
		t.Error("not in origin set: must not be requestable")
	}
}

func TestMisdirectedRequestGets421(t *testing.T) {
	srv := &Server{
		Handler:       echoHandler(),
		Authoritative: func(authority string) bool { return authority == "served.example.com" },
	}
	cc, stop := startPair(t, srv, ClientConnOptions{})
	defer stop()

	resp, err := cc.Get("served.example.com", "/")
	if err != nil || resp.Status != 200 {
		t.Fatalf("authoritative request: %v %v", resp, err)
	}
	resp, err = cc.Get("other.example.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 421 {
		t.Errorf("status = %d, want 421 Misdirected Request", resp.Status)
	}
}

func TestUnknownExtensionFrameIgnoredEndToEnd(t *testing.T) {
	// RFC 9113 §4.1: implementations must ignore unknown frame types.
	srv := &Server{Handler: echoHandler()}
	cn, sn := net.Pipe()
	go srv.ServeConn(sn)
	cc, err := NewClientConn(cn, ClientConnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	if err := cc.fr.WriteRawFrame(FrameType(0xee), 0, 0, []byte("mystery")); err != nil {
		t.Fatal(err)
	}
	resp, err := cc.Get("example.com", "/after-unknown")
	if err != nil || resp.Status != 200 {
		t.Fatalf("request after unknown frame: %v %v", resp, err)
	}
}

// nonCompliantClient models the §6.7 anti-virus middlebox that tears
// down the TLS connection when it sees an unknown frame type instead of
// ignoring it.
func TestNonCompliantPeerTearsDownOnOrigin(t *testing.T) {
	srv := &Server{
		Handler:   echoHandler(),
		OriginSet: []string{"shard.example.com"},
	}
	cn, sn := net.Pipe()
	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.ServeConn(sn) }()

	// Hand-rolled client: preface, SETTINGS, then read frames and kill
	// the connection on any unknown type (ORIGIN, for this client).
	if _, err := io.WriteString(cn, ClientPreface); err != nil {
		t.Fatal(err)
	}
	fr := NewFramer(cn, cn)
	if err := fr.WriteSettings(); err != nil {
		t.Fatal(err)
	}
	sawOrigin := false
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("reading: %v", err)
		}
		if f.Header().Type == FrameOrigin {
			sawOrigin = true
			cn.Close() // the non-compliant teardown
			break
		}
		if _, ok := f.(*SettingsFrame); ok {
			continue
		}
	}
	if !sawOrigin {
		t.Fatal("never saw ORIGIN frame")
	}
	select {
	case err := <-serverErr:
		// The server observes an unexpected connection loss, exactly
		// what the CDN saw as "an increased number of failed
		// connections" in §6.7.
		if err == nil {
			t.Error("expected connection failure, got clean shutdown")
		}
	case <-time.After(2 * time.Second):
		t.Error("server did not notice teardown")
	}
}

func TestRefusedStreamOverConcurrencyLimit(t *testing.T) {
	release := make(chan struct{})
	srv := &Server{
		MaxConcurrentStreams: 2,
		Handler: HandlerFunc(func(w *ResponseWriter, r *Request) {
			<-release
			w.WriteHeader(200)
		}),
	}
	cc, stop := startPair(t, srv, ClientConnOptions{})
	defer stop()
	defer close(release)

	// Occupy both stream slots.
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			cc.Get("example.com", "/slow")
			done <- struct{}{}
		}()
	}
	// Give the two streams time to open.
	time.Sleep(50 * time.Millisecond)
	_, err := cc.Get("example.com", "/third")
	se, ok := err.(StreamError)
	if !ok || se.Code != ErrCodeRefusedStream {
		t.Errorf("third stream: err = %v, want REFUSED_STREAM", err)
	}
}

func TestServerCounters(t *testing.T) {
	got := make(chan ConnCounters, 1)
	srv := &Server{
		Handler:     echoHandler(),
		OriginSet:   []string{"x.example.com"},
		CountersFor: func(c ConnCounters) { got <- c },
	}
	cc, stop := startPair(t, srv, ClientConnOptions{})
	cc.Get("example.com", "/1")
	cc.Get("example.com", "/2")
	stop()
	c := <-got
	if c.StreamsOpened != 2 {
		t.Errorf("streams opened = %d", c.StreamsOpened)
	}
	if !c.OriginAdvertised {
		t.Error("origin not advertised")
	}
}

func TestClientRejectsServerPush(t *testing.T) {
	// A server violating our ENABLE_PUSH=0 must trigger a connection error.
	cn, remote := net.Pipe()
	go func() {
		// Hand-rolled misbehaving server.
		io.ReadFull(remote, make([]byte, len(ClientPreface)))
		rfr := NewFramer(remote, remote)
		rfr.WriteSettings()
		rfr.WriteRawFrame(FramePushPromise, FlagEndHeaders, 1, []byte{0, 0, 0, 2})
		io.Copy(io.Discard, remote) // drain client frames until it closes
	}()
	cc, err := NewClientConn(cn, ClientConnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for cc.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("client never errored on PUSH_PROMISE")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if ce, ok := cc.Err().(ConnectionError); !ok || ce.Code != ErrCodeProtocol {
		t.Errorf("err = %v", cc.Err())
	}
}
