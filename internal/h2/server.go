package h2

import (
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"respectorigin/internal/hpack"
	"respectorigin/internal/obs"
)

// A Request is a fully received HTTP/2 request.
type Request struct {
	Method    string
	Scheme    string
	Authority string
	Path      string
	Header    []hpack.HeaderField // regular (non-pseudo) fields
	Body      []byte
	StreamID  uint32
}

// HeaderValue returns the first value of the named regular header.
func (r *Request) HeaderValue(name string) string {
	for _, f := range r.Header {
		if f.Name == name {
			return f.Value
		}
	}
	return ""
}

// A Handler responds to HTTP/2 requests.
type Handler interface {
	ServeHTTP2(w *ResponseWriter, r *Request)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(w *ResponseWriter, r *Request)

// ServeHTTP2 calls f(w, r).
func (f HandlerFunc) ServeHTTP2(w *ResponseWriter, r *Request) { f(w, r) }

// A Server terminates HTTP/2 connections. The zero value is unusable;
// Handler must be set.
//
// Server implements the missing piece the paper identifies (§5.3): a
// production-style server-side ORIGIN frame. When OriginSet is non-empty
// (or OriginSetFunc returns entries), the server announces the set on
// stream 0 immediately after its SETTINGS frame, as RFC 8336 §2.2
// recommends, so clients learn coalescable hostnames before the first
// response.
type Server struct {
	// Handler receives every request. Required.
	Handler Handler

	// OriginSet is the static origin set advertised on every connection.
	OriginSet []string

	// OriginSetFunc, when non-nil, computes the origin set per
	// connection (e.g. from the SNI of the TLS handshake). It overrides
	// OriginSet when it returns a non-nil slice.
	OriginSetFunc func(conn net.Conn) []string

	// Authoritative, when non-nil, reports whether this server can
	// authoritatively serve the given :authority. Requests for other
	// hosts receive 421 Misdirected Request, the behaviour described in
	// §2.2 of the paper. When nil every authority is accepted.
	Authoritative func(authority string) bool

	// MaxConcurrentStreams caps simultaneously active streams per
	// connection; 0 means the implementation default of 250.
	MaxConcurrentStreams uint32

	// MaxFrameSize advertises SETTINGS_MAX_FRAME_SIZE; 0 means 16384.
	MaxFrameSize uint32

	// DisableHuffman turns off Huffman coding in response headers
	// (used by the HPACK ablation benchmarks).
	DisableHuffman bool

	// CountersFor, when non-nil, receives the per-connection counters
	// when a connection finishes, for measurement harnesses.
	CountersFor func(ConnCounters)

	// ReadTimeout bounds client silence: it covers the preface read and
	// is re-armed before every frame, so an idle or dead client releases
	// the connection instead of holding it forever. Zero disables.
	ReadTimeout time.Duration

	// WriteTimeout bounds each flush of the write queue toward a client
	// that stopped reading. Zero disables.
	WriteTimeout time.Duration

	// Recorder, when non-nil, receives "h2.server.*" counters and
	// connection-level trace events (origin frames sent, GOAWAYs, 421s).
	// Observation only; a nil recorder changes nothing.
	Recorder obs.Recorder

	// FlowHook, when non-nil, observes every flow-control transition on
	// each served connection (see FlowOp* constants). Used by the
	// conformance invariant checker; nil changes nothing.
	FlowHook FlowHook
}

// ConnCounters aggregates per-connection observability counters.
type ConnCounters struct {
	StreamsOpened    int
	FramesRead       int
	FramesWritten    int
	BytesRead        int64
	Misdirected      int // 421 responses sent
	OriginAdvertised bool
}

func (s *Server) maxStreams() uint32 {
	if s.MaxConcurrentStreams == 0 {
		return 250
	}
	return s.MaxConcurrentStreams
}

func (s *Server) maxFrameSize() uint32 {
	if s.MaxFrameSize == 0 {
		return minMaxFrameSize
	}
	return s.MaxFrameSize
}

// ServeConn serves one HTTP/2 connection until the peer goes away or a
// protocol error occurs. It returns nil on clean shutdown (EOF or
// GOAWAY exchange) and the fatal error otherwise.
func (s *Server) ServeConn(nc net.Conn) error {
	_, err := s.serveConn(nc, nil)
	return err
}

// ServeConnGraceful is ServeConn with a shutdown hook: when the
// returned stop function is called, the server announces GOAWAY with
// the last accepted stream, refuses new streams, finishes in-flight
// responses, and closes the connection once the connection drains.
func (s *Server) ServeConnGraceful(nc net.Conn) (stop func(), done <-chan error) {
	stopCh := make(chan struct{})
	doneCh := make(chan error, 1)
	var once sync.Once
	go func() {
		_, err := s.serveConn(nc, stopCh)
		doneCh <- err
	}()
	return func() { once.Do(func() { close(stopCh) }) }, doneCh
}

func (s *Server) serveConn(nc net.Conn, stopCh <-chan struct{}) (*serverConn, error) {
	obs.Count(s.Recorder, "h2.server.conns", 1)
	aw := newAsyncWriter(nc)
	defer aw.Close()
	sc := &serverConn{
		srv:          s,
		nc:           nc,
		aw:           aw,
		fr:           NewFramer(aw, nc),
		streams:      make(map[uint32]*serverStream),
		sendFlow:     newSendFlow(),
		recvFlow:     newRecvFlow(),
		maxSendFrame: minMaxFrameSize,
	}
	sc.sendFlow.hook = s.FlowHook
	sc.recvFlow.hook = s.FlowHook
	sc.hw = &headerWriter{fr: sc.fr, enc: hpack.NewEncoder(), maxFrameSize: minMaxFrameSize}
	if s.DisableHuffman {
		sc.hw.enc.SetHuffman(false)
	}
	sc.hr = &headerReader{dec: hpack.NewDecoder()}
	if s.ReadTimeout > 0 {
		sc.fr.SetReadTimeout(nc, s.ReadTimeout)
	}
	if s.WriteTimeout > 0 {
		aw.setWriteTimeout(nc, s.WriteTimeout)
	}
	if stopCh != nil {
		go func() {
			<-stopCh
			sc.beginDrain()
		}()
	}
	err := sc.serve()
	if s.CountersFor != nil {
		s.CountersFor(sc.counters)
	}
	if s.Recorder != nil {
		obs.Count(s.Recorder, "h2.server.streams", int64(sc.counters.StreamsOpened))
		obs.Count(s.Recorder, "h2.server.frames_read", int64(sc.counters.FramesRead))
		obs.Count(s.Recorder, "h2.server.frames_written", int64(sc.counters.FramesWritten))
		obs.Count(s.Recorder, "h2.server.bytes_read", sc.counters.BytesRead)
		obs.Count(s.Recorder, "h2.server.misdirected_421", int64(sc.counters.Misdirected))
	}
	return sc, err
}

// beginDrain announces graceful shutdown: GOAWAY with the last accepted
// stream ID. Streams at or below it complete normally; later HEADERS
// are refused. Once no streams remain active the connection closes.
func (sc *serverConn) beginDrain() {
	sc.mu.Lock()
	if sc.draining {
		sc.mu.Unlock()
		return
	}
	sc.draining = true
	last := sc.lastStreamID
	active := sc.activeStreams
	sc.mu.Unlock()
	_ = sc.fr.WriteGoAway(last, ErrCodeNo, []byte("graceful shutdown"))
	obs.Count(sc.srv.Recorder, "h2.server.goaway_sent", 1)
	obs.Emit(sc.srv.Recorder, obs.Event{Kind: obs.KindGoAway, N: int(last), Detail: "graceful shutdown"})
	if active == 0 {
		sc.shutdownTransport()
	}
}

// shutdownTransport flushes queued frames and closes the connection.
func (sc *serverConn) shutdownTransport() {
	_ = sc.aw.Close() // drains the write queue first
	_ = sc.nc.Close()
}

type serverConn struct {
	srv *Server
	nc  net.Conn
	aw  *asyncWriter
	fr  *Framer

	hwmu sync.Mutex // serializes header encoding + HEADERS/CONTINUATION writes
	hw   *headerWriter
	hr   *headerReader

	sendFlow *sendFlow
	recvFlow *recvFlow

	mu             sync.Mutex
	streams        map[uint32]*serverStream
	lastStreamID   uint32
	activeStreams  uint32
	maxSendFrame   uint32 // peer's SETTINGS_MAX_FRAME_SIZE
	goAwayReceived bool
	draining       bool // graceful shutdown announced with GOAWAY

	counters ConnCounters
}

type serverStream struct {
	id              uint32
	req             *Request
	gotEnd          bool // END_STREAM received
	halfClosedLocal bool
	bodyLen         int
}

func (sc *serverConn) serve() error {
	if err := sc.readPreface(); err != nil {
		return err
	}
	settings := []Setting{
		{SettingMaxConcurrentStreams, sc.srv.maxStreams()},
		{SettingMaxFrameSize, sc.srv.maxFrameSize()},
		{SettingEnablePush, 0},
	}
	if err := sc.fr.WriteSettings(settings...); err != nil {
		return err
	}
	sc.fr.SetMaxReadFrameSize(sc.srv.maxFrameSize())

	origins := sc.srv.OriginSet
	if sc.srv.OriginSetFunc != nil {
		if o := sc.srv.OriginSetFunc(sc.nc); o != nil {
			origins = o
		}
	}
	if len(origins) > 0 {
		canon := make([]string, 0, len(origins))
		for _, o := range origins {
			c, err := CanonicalOrigin(o)
			if err != nil {
				return fmt.Errorf("h2: bad configured origin %q: %w", o, err)
			}
			canon = append(canon, c)
		}
		if err := sc.fr.WriteOrigin(canon); err != nil {
			return err
		}
		sc.counters.OriginAdvertised = true
		obs.Count(sc.srv.Recorder, "h2.server.origin_frames_sent", 1)
		obs.Emit(sc.srv.Recorder, obs.Event{Kind: obs.KindOriginFrame, N: len(canon), Detail: "sent"})
	}

	for {
		f, err := sc.fr.ReadFrame()
		if err != nil {
			return sc.fatal(err)
		}
		sc.counters.FramesRead++
		if sc.hr.expectingContinuation() {
			cf, ok := f.(*ContinuationFrame)
			if !ok {
				return sc.fatal(connError(ErrCodeProtocol, "expected CONTINUATION"))
			}
			if err := sc.onContinuation(cf); err != nil {
				if err := sc.handleError(err); err != nil {
					return err
				}
			}
			continue
		}
		if err := sc.dispatch(f); err != nil {
			if err := sc.handleError(err); err != nil {
				return err
			}
		}
	}
}

func (sc *serverConn) readPreface() error {
	if d := sc.srv.ReadTimeout; d > 0 {
		_ = sc.nc.SetReadDeadline(time.Now().Add(d))
	}
	buf := make([]byte, len(ClientPreface))
	if _, err := io.ReadFull(sc.nc, buf); err != nil {
		return fmt.Errorf("h2: reading client preface: %w", err)
	}
	if string(buf) != ClientPreface {
		return connError(ErrCodeProtocol, "invalid client preface")
	}
	return nil
}

// fatal normalizes read-loop exit: EOF after GOAWAY or clean close maps
// to nil.
func (sc *serverConn) fatal(err error) error {
	sc.sendFlow.close()
	sc.mu.Lock()
	sawGoAway := sc.goAwayReceived
	draining := sc.draining
	sc.mu.Unlock()
	if draining {
		// We initiated a graceful shutdown; however the transport ends
		// now (EOF, or our own close after the drain), it is clean.
		return nil
	}
	if err == io.EOF {
		// EOF is a clean shutdown only after the peer announced it with
		// GOAWAY; a bare close mid-connection (the §6.7 middlebox
		// behaviour) is an abnormal termination.
		if sawGoAway {
			return nil
		}
		return io.ErrUnexpectedEOF
	}
	if ce, ok := err.(ConnectionError); ok {
		sc.mu.Lock()
		last := sc.lastStreamID
		sc.mu.Unlock()
		_ = sc.fr.WriteGoAway(last, ce.Code, []byte(ce.Reason))
		_ = sc.nc.Close()
		if ce.Code == ErrCodeNo {
			return nil
		}
		return ce
	}
	return err
}

// handleError handles stream-level errors inline and escalates
// connection errors.
func (sc *serverConn) handleError(err error) error {
	if se, ok := err.(StreamError); ok {
		sc.closeStream(se.StreamID)
		if werr := sc.fr.WriteRSTStream(se.StreamID, se.Code); werr != nil {
			return sc.fatal(werr)
		}
		return nil
	}
	return sc.fatal(err)
}

func (sc *serverConn) dispatch(f Frame) error {
	switch f := f.(type) {
	case *HeadersFrame:
		meta, err := sc.hr.onHeaders(f)
		if err != nil {
			return err
		}
		if meta != nil {
			return sc.onRequestHeaders(meta)
		}
		return nil
	case *ContinuationFrame:
		return connError(ErrCodeProtocol, "CONTINUATION without HEADERS")
	case *DataFrame:
		return sc.onData(f)
	case *SettingsFrame:
		return sc.onSettings(f)
	case *PingFrame:
		if f.IsAck() {
			return nil
		}
		sc.counters.FramesWritten++
		return sc.fr.WritePing(true, f.Data)
	case *WindowUpdateFrame:
		if !sc.sendFlow.add(f.StreamID, int64(f.Increment)) {
			if f.StreamID == 0 {
				return connError(ErrCodeFlowControl, "connection window overflow")
			}
			return streamError(f.StreamID, ErrCodeFlowControl, "stream window overflow")
		}
		return nil
	case *RSTStreamFrame:
		sc.closeStream(f.StreamID)
		return nil
	case *PriorityFrame:
		return nil // deprecated; accepted and ignored
	case *GoAwayFrame:
		sc.mu.Lock()
		sc.goAwayReceived = true
		active := sc.activeStreams
		if f.ErrCode == ErrCodeNo && active > 0 {
			// Graceful client shutdown with responses still in flight:
			// keep serving until they finish (closeStream shuts the
			// transport once the last one drains). The draining flag
			// also refuses any stray new streams.
			sc.draining = true
			sc.mu.Unlock()
			return nil
		}
		sc.mu.Unlock()
		return io.EOF // peer is going away; drain and exit
	case *PushPromiseFrame:
		return connError(ErrCodeProtocol, "client sent PUSH_PROMISE")
	case *OriginFrame:
		// RFC 8336 §2: "The ORIGIN frame ... is sent from servers to
		// clients"; clients do not send it. A server MUST ignore it.
		return nil
	default:
		return nil // unknown frames are ignored (§4.1)
	}
}

func (sc *serverConn) onContinuation(cf *ContinuationFrame) error {
	meta, err := sc.hr.onContinuation(cf)
	if err != nil {
		return err
	}
	if meta != nil {
		return sc.onRequestHeaders(meta)
	}
	return nil
}

func (sc *serverConn) onRequestHeaders(meta *MetaHeadersFrame) error {
	id := meta.StreamID
	if id%2 == 0 {
		return connError(ErrCodeProtocol, "client used even stream ID")
	}
	sc.mu.Lock()
	if id <= sc.lastStreamID {
		sc.mu.Unlock()
		return connError(ErrCodeProtocol, "stream ID not monotonically increasing")
	}
	if sc.draining {
		sc.mu.Unlock()
		// Streams above the GOAWAY watermark are refused; the client
		// retries them elsewhere (RFC 9113 §6.8).
		return streamError(id, ErrCodeRefusedStream, "connection is draining")
	}
	sc.lastStreamID = id
	if sc.activeStreams >= sc.srv.maxStreams() {
		sc.mu.Unlock()
		return streamError(id, ErrCodeRefusedStream, "too many concurrent streams")
	}
	req := &Request{
		Method:    meta.PseudoValue("method"),
		Scheme:    meta.PseudoValue("scheme"),
		Authority: meta.PseudoValue("authority"),
		Path:      meta.PseudoValue("path"),
		Header:    meta.RegularFields(),
		StreamID:  id,
	}
	st := &serverStream{id: id, req: req, gotEnd: meta.EndStream()}
	sc.streams[id] = st
	sc.activeStreams++
	sc.counters.StreamsOpened++
	sc.mu.Unlock()
	sc.sendFlow.openStream(id)

	if req.Method == "" || req.Scheme == "" || req.Path == "" {
		return streamError(id, ErrCodeProtocol, "missing required pseudo-headers")
	}
	if st.gotEnd {
		sc.startHandler(st)
	}
	return nil
}

func (sc *serverConn) onData(f *DataFrame) error {
	n := int64(f.Length) // padding counts toward flow control
	inc, ok := sc.recvFlow.consume(n)
	if !ok {
		return connError(ErrCodeFlowControl, "peer exceeded connection window")
	}
	if inc > 0 {
		sc.counters.FramesWritten++
		if err := sc.fr.WriteWindowUpdate(0, uint32(inc)); err != nil {
			return err
		}
	}
	sc.mu.Lock()
	st, ok := sc.streams[f.StreamID]
	sc.mu.Unlock()
	if !ok || st.gotEnd {
		return streamError(f.StreamID, ErrCodeStreamClosed, "DATA on closed stream")
	}
	st.req.Body = append(st.req.Body, f.Data...)
	st.bodyLen += len(f.Data)
	// Replenish the stream window (padding included) so the peer can
	// keep sending.
	if f.Length > 0 {
		if err := sc.fr.WriteWindowUpdate(f.StreamID, f.Length); err != nil {
			return err
		}
	}
	if f.Flags.Has(FlagEndStream) {
		st.gotEnd = true
		sc.startHandler(st)
	}
	return nil
}

func (sc *serverConn) onSettings(f *SettingsFrame) error {
	if f.IsAck() {
		return nil
	}
	for _, s := range f.Settings {
		switch s.ID {
		case SettingInitialWindowSize:
			if !sc.sendFlow.setInitial(int64(s.Val)) {
				return connError(ErrCodeFlowControl, "initial window change overflows stream window")
			}
		case SettingMaxFrameSize:
			sc.mu.Lock()
			sc.maxSendFrame = s.Val
			sc.mu.Unlock()
			sc.hwmu.Lock()
			sc.hw.maxFrameSize = s.Val
			sc.hwmu.Unlock()
		case SettingHeaderTableSize:
			sc.hwmu.Lock()
			sc.hw.enc.SetMaxDynamicTableSize(s.Val)
			sc.hwmu.Unlock()
		}
	}
	sc.counters.FramesWritten++
	return sc.fr.WriteSettingsAck()
}

func (sc *serverConn) startHandler(st *serverStream) {
	w := &ResponseWriter{sc: sc, streamID: st.id}
	authoritative := sc.srv.Authoritative == nil || st.req.Authority == "" ||
		sc.srv.Authoritative(st.req.Authority)
	go func() {
		defer func() {
			_ = w.Close()
			sc.closeStream(st.id)
		}()
		if !authoritative {
			sc.mu.Lock()
			sc.counters.Misdirected++
			sc.mu.Unlock()
			obs.Emit(sc.srv.Recorder, obs.Event{Kind: obs.KindMisdirected, Host: st.req.Authority})
			w.WriteHeader(421)
			return
		}
		sc.srv.Handler.ServeHTTP2(w, st.req)
	}()
}

func (sc *serverConn) closeStream(id uint32) {
	sc.sendFlow.closeStream(id)
	sc.mu.Lock()
	if _, ok := sc.streams[id]; ok {
		delete(sc.streams, id)
		sc.activeStreams--
	}
	drainDone := sc.draining && sc.activeStreams == 0
	sc.mu.Unlock()
	if drainDone {
		// Last in-flight response finished after a graceful shutdown:
		// flush and close the transport, ending the read loop.
		sc.shutdownTransport()
	}
}

// A ResponseWriter sends a response on one stream. It is safe for use by
// a single handler goroutine.
type ResponseWriter struct {
	sc          *serverConn
	streamID    uint32
	wroteHeader bool
	closed      bool
	err         error
}

// WriteHeader sends the response HEADERS with the given status and
// additional fields. It may be called once; later calls are no-ops.
func (w *ResponseWriter) WriteHeader(status int, fields ...hpack.HeaderField) {
	if w.wroteHeader || w.closed {
		return
	}
	w.wroteHeader = true
	hf := make([]hpack.HeaderField, 0, len(fields)+1)
	hf = append(hf, hpack.HeaderField{Name: ":status", Value: strconv.Itoa(status)})
	for _, f := range fields {
		f.Name = strings.ToLower(f.Name)
		hf = append(hf, f)
	}
	w.sc.hwmu.Lock()
	w.err = w.sc.hw.writeHeaders(w.streamID, hf, false)
	w.sc.hwmu.Unlock()
}

// Write sends body bytes, implicitly sending a 200 header first if
// WriteHeader was not called. It honors connection and stream flow
// control and the peer's SETTINGS_MAX_FRAME_SIZE.
func (w *ResponseWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("h2: write on closed stream %d", w.streamID)
	}
	if !w.wroteHeader {
		w.WriteHeader(200)
	}
	if w.err != nil {
		return 0, w.err
	}
	total := 0
	for len(p) > 0 {
		w.sc.mu.Lock()
		maxFrame := int64(w.sc.maxSendFrame)
		w.sc.mu.Unlock()
		want := int64(len(p))
		if want > maxFrame {
			want = maxFrame
		}
		n := w.sc.sendFlow.take(w.streamID, want)
		if n == 0 {
			w.err = fmt.Errorf("h2: stream %d closed while writing", w.streamID)
			return total, w.err
		}
		if err := w.sc.fr.WriteData(w.streamID, false, p[:n]); err != nil {
			w.err = err
			return total, err
		}
		w.sc.sendFlow.noteData(w.streamID, n)
		total += int(n)
		p = p[n:]
	}
	return total, nil
}

// Close ends the stream. If nothing was written, an empty response is
// sent. Close is idempotent.
func (w *ResponseWriter) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if !w.wroteHeader {
		w.WriteHeader(200)
	}
	if w.err != nil {
		return w.err
	}
	w.err = w.sc.fr.WriteData(w.streamID, true, nil)
	return w.err
}
