// Package h2 is a from-scratch implementation of the HTTP/2 framing and
// connection layer (RFC 9113) extended with the ORIGIN frame (RFC 8336).
//
// The package provides:
//
//   - a Framer for reading and writing all standard frame types plus
//     ORIGIN and ALTSVC;
//   - a Server that terminates HTTP/2 connections over any net.Conn and
//     can advertise an origin set on stream 0, the capability the paper
//     found missing from every production web server;
//   - a ClientConn that issues requests, consumes ORIGIN frames, and
//     exposes the connection's authoritative origin set so a connection
//     pool can coalesce requests for additional hostnames.
//
// The implementation is intentionally self-contained (Go standard
// library only) so it can run over crypto/tls connections, net.Pipe
// test connections, or the in-memory network simulator elsewhere in
// this repository.
package h2

import (
	"errors"
	"fmt"
	"net"
)

// An ErrCode is an HTTP/2 error code from RFC 9113 §7.
type ErrCode uint32

// Error codes defined by RFC 9113 §7.
const (
	ErrCodeNo                 ErrCode = 0x0
	ErrCodeProtocol           ErrCode = 0x1
	ErrCodeInternal           ErrCode = 0x2
	ErrCodeFlowControl        ErrCode = 0x3
	ErrCodeSettingsTimeout    ErrCode = 0x4
	ErrCodeStreamClosed       ErrCode = 0x5
	ErrCodeFrameSize          ErrCode = 0x6
	ErrCodeRefusedStream      ErrCode = 0x7
	ErrCodeCancel             ErrCode = 0x8
	ErrCodeCompression        ErrCode = 0x9
	ErrCodeConnect            ErrCode = 0xa
	ErrCodeEnhanceYourCalm    ErrCode = 0xb
	ErrCodeInadequateSecurity ErrCode = 0xc
	ErrCodeHTTP11Required     ErrCode = 0xd
)

var errCodeNames = map[ErrCode]string{
	ErrCodeNo:                 "NO_ERROR",
	ErrCodeProtocol:           "PROTOCOL_ERROR",
	ErrCodeInternal:           "INTERNAL_ERROR",
	ErrCodeFlowControl:        "FLOW_CONTROL_ERROR",
	ErrCodeSettingsTimeout:    "SETTINGS_TIMEOUT",
	ErrCodeStreamClosed:       "STREAM_CLOSED",
	ErrCodeFrameSize:          "FRAME_SIZE_ERROR",
	ErrCodeRefusedStream:      "REFUSED_STREAM",
	ErrCodeCancel:             "CANCEL",
	ErrCodeCompression:        "COMPRESSION_ERROR",
	ErrCodeConnect:            "CONNECT_ERROR",
	ErrCodeEnhanceYourCalm:    "ENHANCE_YOUR_CALM",
	ErrCodeInadequateSecurity: "INADEQUATE_SECURITY",
	ErrCodeHTTP11Required:     "HTTP_1_1_REQUIRED",
}

func (e ErrCode) String() string {
	if s, ok := errCodeNames[e]; ok {
		return s
	}
	return fmt.Sprintf("unknown error code 0x%x", uint32(e))
}

// ConnectionError terminates the whole connection (RFC 9113 §5.4.1).
type ConnectionError struct {
	Code   ErrCode
	Reason string
}

func (e ConnectionError) Error() string {
	if e.Reason == "" {
		return fmt.Sprintf("h2: connection error: %v", e.Code)
	}
	return fmt.Sprintf("h2: connection error: %v: %s", e.Code, e.Reason)
}

func connError(code ErrCode, reason string) ConnectionError {
	return ConnectionError{Code: code, Reason: reason}
}

// StreamError terminates a single stream (RFC 9113 §5.4.2).
type StreamError struct {
	StreamID uint32
	Code     ErrCode
	Reason   string
}

func (e StreamError) Error() string {
	return fmt.Sprintf("h2: stream %d error: %v: %s", e.StreamID, e.Code, e.Reason)
}

func streamError(id uint32, code ErrCode, reason string) StreamError {
	return StreamError{StreamID: id, Code: code, Reason: reason}
}

// GoAwayError is returned to request issuers when the peer shut down the
// connection with GOAWAY.
type GoAwayError struct {
	LastStreamID uint32
	Code         ErrCode
	DebugData    string
}

func (e GoAwayError) Error() string {
	return fmt.Sprintf("h2: peer sent GOAWAY (last stream %d, %v, %q)",
		e.LastStreamID, e.Code, e.DebugData)
}

// IsTimeout reports whether err is (or wraps) a network timeout — the
// error shape a Framer read/write deadline produces when the peer goes
// silent past the configured ReadTimeout/WriteTimeout.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
