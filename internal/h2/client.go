package h2

import (
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"respectorigin/internal/hpack"
	"respectorigin/internal/obs"
)

// A Response is a fully received HTTP/2 response.
type Response struct {
	Status   int
	Header   []hpack.HeaderField
	Body     []byte
	StreamID uint32
}

// HeaderValue returns the first value of the named regular header.
func (r *Response) HeaderValue(name string) string {
	for _, f := range r.Header {
		if f.Name == name {
			return f.Value
		}
	}
	return ""
}

// ClientConnOptions configures NewClientConn.
type ClientConnOptions struct {
	// Origin is the origin this connection was established for
	// (hostname or https:// origin). It seeds the origin set.
	Origin string

	// VerifyOrigin, when non-nil, reports whether the connection's
	// certificate covers the given hostname. RFC 8336 §2.4 requires
	// clients to use an origin-set member only when the connection is
	// authoritative for it, which in practice means a certificate SAN
	// check. When nil and the conn is a *tls.Conn, the leaf
	// certificate's VerifyHostname is used; otherwise every name in the
	// origin set is trusted (useful for in-memory simulations).
	VerifyOrigin func(host string) bool

	// IgnoreOriginFrames makes the client drop ORIGIN frames, modelling
	// browsers without client-side support (every browser but Firefox,
	// per the paper).
	IgnoreOriginFrames bool

	// OnOrigin, when non-nil, is invoked with the contents of every
	// ORIGIN frame accepted on the connection.
	OnOrigin func(origins []string)

	// DisableHuffman turns off Huffman coding of request headers.
	DisableHuffman bool

	// MaxFrameSize advertises SETTINGS_MAX_FRAME_SIZE; 0 means 16384.
	MaxFrameSize uint32

	// ReadTimeout bounds peer silence: a fresh read deadline is armed
	// before every frame read, and a connection quiet for longer fails
	// with a timeout error (IsTimeout reports true). With PingInterval
	// set, ReadTimeout must exceed it or the idle timer fires before the
	// liveness probe. Zero disables.
	ReadTimeout time.Duration

	// WriteTimeout bounds each flush of the write queue, so a peer that
	// stops reading cannot wedge the writer forever. Zero disables.
	WriteTimeout time.Duration

	// PingInterval, when positive, runs a keepalive goroutine that sends
	// a PING every interval and tears the connection down when the ack
	// does not arrive within PingTimeout — the liveness check a browser
	// needs before trusting a pooled connection for coalesced requests.
	PingInterval time.Duration

	// PingTimeout is the keepalive ack deadline; 0 means PingInterval.
	PingTimeout time.Duration

	// Recorder, when non-nil, receives "h2.client.*" counters and
	// connection-level trace events (streams opened, ORIGIN frames
	// received, GOAWAYs). Observation only; nil changes nothing.
	Recorder obs.Recorder

	// FlowHook, when non-nil, observes every flow-control transition on
	// the connection (see FlowOp* constants). Used by the conformance
	// invariant checker; nil changes nothing.
	FlowHook FlowHook
}

// A ClientConn is the client side of an HTTP/2 connection. Its methods
// are safe for concurrent use; requests on one connection are
// multiplexed over streams.
type ClientConn struct {
	nc   net.Conn
	aw   *asyncWriter
	fr   *Framer
	opts ClientConnOptions

	hwmu sync.Mutex
	hw   *headerWriter
	hr   *headerReader

	sendFlow *sendFlow
	recvFlow *recvFlow

	mu              sync.Mutex
	nextStreamID    uint32
	streams         map[uint32]*clientStream
	maxSendFrame    uint32
	peerMaxStreams  uint32
	closed          bool // no new requests (set by Close, Shutdown, GOAWAY, read-loop exit)
	transportClosed bool // nc torn down; distinct from closed so Close
	// after a graceful GOAWAY still releases the socket and read loop
	connErr error
	drained chan struct{} // lazily made by Shutdown; closed when streams empties

	originSet        *OriginSet
	originFramesSeen int
	altSvcs          []AltSvc

	pingMu   sync.Mutex
	pingWait map[[8]byte]chan struct{}

	readerDone chan struct{}
}

// AltSvc is an alternative-service advertisement received on the
// connection (RFC 7838).
type AltSvc struct {
	Origin     string
	FieldValue string
}

type clientStream struct {
	id   uint32
	resp Response
	done chan struct{}
	err  error
}

// NewClientConn performs the client half of the HTTP/2 connection
// preface on nc and starts the read loop.
func NewClientConn(nc net.Conn, opts ClientConnOptions) (*ClientConn, error) {
	obs.Count(opts.Recorder, "h2.client.conns", 1)
	aw := newAsyncWriter(nc)
	cc := &ClientConn{
		nc:             nc,
		aw:             aw,
		fr:             NewFramer(aw, nc),
		opts:           opts,
		sendFlow:       newSendFlow(),
		recvFlow:       newRecvFlow(),
		nextStreamID:   1,
		streams:        make(map[uint32]*clientStream),
		maxSendFrame:   minMaxFrameSize,
		peerMaxStreams: ^uint32(0),
		originSet:      NewOriginSet(),
		pingWait:       make(map[[8]byte]chan struct{}),
		readerDone:     make(chan struct{}),
	}
	cc.sendFlow.hook = opts.FlowHook
	cc.recvFlow.hook = opts.FlowHook
	cc.hw = &headerWriter{fr: cc.fr, enc: hpack.NewEncoder(), maxFrameSize: minMaxFrameSize}
	if opts.DisableHuffman {
		cc.hw.enc.SetHuffman(false)
	}
	cc.hr = &headerReader{dec: hpack.NewDecoder()}
	if opts.Origin != "" {
		cc.originSet.Add(opts.Origin)
	}

	if _, err := io.WriteString(nc, ClientPreface); err != nil {
		// The write pump is already running; release it and the conn.
		_ = aw.Close()
		_ = nc.Close()
		return nil, err
	}
	mfs := opts.MaxFrameSize
	if mfs == 0 {
		mfs = minMaxFrameSize
	}
	cc.fr.SetMaxReadFrameSize(mfs)
	if opts.ReadTimeout > 0 {
		cc.fr.SetReadTimeout(nc, opts.ReadTimeout)
	}
	if opts.WriteTimeout > 0 {
		aw.setWriteTimeout(nc, opts.WriteTimeout)
	}
	// Start reading before sending SETTINGS: over fully synchronous
	// transports (net.Pipe) the server's preface write would otherwise
	// deadlock against ours.
	go cc.readLoop()
	if err := cc.fr.WriteSettings(
		Setting{SettingEnablePush, 0},
		Setting{SettingMaxFrameSize, mfs},
	); err != nil {
		// readLoop is already running; tear the transport down and wait
		// for it so a failed dial never leaks connection goroutines.
		_ = cc.closeTransport()
		<-cc.readerDone
		return nil, err
	}
	if opts.PingInterval > 0 {
		go cc.keepalive()
	}
	return cc, nil
}

// OriginSet returns the connection's origin set: the connection's own
// origin plus any origins advertised by the server via ORIGIN frames.
func (cc *ClientConn) OriginSet() *OriginSet { return cc.originSet }

// OriginFramesSeen reports how many ORIGIN frames were accepted.
func (cc *ClientConn) OriginFramesSeen() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.originFramesSeen
}

// CanRequest reports whether this connection may be coalesced for host:
// the host's https origin must be in the origin set and the connection
// must be authoritative for it (certificate SAN coverage).
func (cc *ClientConn) CanRequest(host string) bool {
	origin, err := CanonicalOrigin(host)
	if err != nil {
		return false
	}
	if !cc.originSet.Contains(origin) {
		return false
	}
	return cc.verifyHost(OriginHost(origin))
}

func (cc *ClientConn) verifyHost(host string) bool {
	if cc.opts.VerifyOrigin != nil {
		return cc.opts.VerifyOrigin(host)
	}
	if tc, ok := cc.nc.(*tls.Conn); ok {
		cs := tc.ConnectionState()
		if len(cs.PeerCertificates) == 0 {
			return false
		}
		return cs.PeerCertificates[0].VerifyHostname(host) == nil
	}
	return true
}

// RoundTrip sends req and waits for the complete response.
func (cc *ClientConn) RoundTrip(req *Request) (*Response, error) {
	cs, err := cc.startRequest(req)
	if err != nil {
		return nil, err
	}
	<-cs.done
	if cs.err != nil {
		return nil, cs.err
	}
	resp := cs.resp
	resp.StreamID = cs.id
	return &resp, nil
}

// Get issues a simple GET for the given authority and path.
func (cc *ClientConn) Get(authority, path string) (*Response, error) {
	return cc.RoundTrip(&Request{Method: "GET", Scheme: "https", Authority: authority, Path: path})
}

func (cc *ClientConn) startRequest(req *Request) (*clientStream, error) {
	fields := make([]hpack.HeaderField, 0, len(req.Header)+4)
	fields = append(fields,
		hpack.HeaderField{Name: ":method", Value: req.Method},
		hpack.HeaderField{Name: ":scheme", Value: req.Scheme},
	)
	if req.Authority != "" {
		fields = append(fields, hpack.HeaderField{Name: ":authority", Value: req.Authority})
	}
	fields = append(fields, hpack.HeaderField{Name: ":path", Value: req.Path})
	fields = append(fields, req.Header...)

	cc.mu.Lock()
	if cc.closed {
		err := cc.connErr
		cc.mu.Unlock()
		if err == nil {
			err = errors.New("h2: client connection closed")
		}
		return nil, err
	}
	id := cc.nextStreamID
	cc.nextStreamID += 2
	cs := &clientStream{id: id, done: make(chan struct{})}
	cc.streams[id] = cs
	cc.mu.Unlock()
	cc.sendFlow.openStream(id)
	obs.Count(cc.opts.Recorder, "h2.client.streams", 1)
	obs.Emit(cc.opts.Recorder, obs.Event{Kind: obs.KindStreamOpen, Host: req.Authority, N: int(id)})

	endStream := len(req.Body) == 0

	// Hold the header-writer lock across the HEADERS(+CONTINUATION)
	// sequence so HPACK state and stream-ID ordering stay consistent.
	cc.hwmu.Lock()
	err := cc.hw.writeHeaders(id, fields, endStream)
	cc.hwmu.Unlock()
	if err != nil {
		cc.abortStream(cs, err)
		return cs, err
	}
	if !endStream {
		if err := cc.writeBody(cs, req.Body); err != nil {
			cc.abortStream(cs, err)
			return cs, err
		}
	}
	return cs, nil
}

func (cc *ClientConn) writeBody(cs *clientStream, body []byte) error {
	for {
		cc.mu.Lock()
		maxFrame := int64(cc.maxSendFrame)
		cc.mu.Unlock()
		want := int64(len(body))
		if want > maxFrame {
			want = maxFrame
		}
		n := cc.sendFlow.take(cs.id, want)
		if n == 0 && len(body) > 0 {
			return fmt.Errorf("h2: stream %d closed while sending body", cs.id)
		}
		end := int(n) == len(body)
		if err := cc.fr.WriteData(cs.id, end, body[:n]); err != nil {
			return err
		}
		cc.sendFlow.noteData(cs.id, n)
		body = body[n:]
		if end {
			return nil
		}
	}
}

func (cc *ClientConn) abortStream(cs *clientStream, err error) {
	cc.mu.Lock()
	if _, ok := cc.streams[cs.id]; ok {
		delete(cc.streams, cs.id)
		cs.err = err
		close(cs.done)
	}
	cc.signalDrainedLocked()
	cc.mu.Unlock()
	cc.sendFlow.closeStream(cs.id)
}

func (cc *ClientConn) finishStream(cs *clientStream) {
	cc.mu.Lock()
	if _, ok := cc.streams[cs.id]; ok {
		delete(cc.streams, cs.id)
		close(cs.done)
	}
	cc.signalDrainedLocked()
	cc.mu.Unlock()
	cc.sendFlow.closeStream(cs.id)
}

// signalDrainedLocked wakes a waiting Shutdown once the last in-flight
// stream is gone. Callers hold cc.mu.
func (cc *ClientConn) signalDrainedLocked() {
	if cc.drained != nil && len(cc.streams) == 0 {
		select {
		case <-cc.drained:
		default:
			close(cc.drained)
		}
	}
}

// closeTransport tears the transport down exactly once, however many
// paths (Close, Shutdown, keepalive failure) race to it.
func (cc *ClientConn) closeTransport() error {
	cc.mu.Lock()
	if cc.transportClosed {
		cc.mu.Unlock()
		return nil
	}
	cc.transportClosed = true
	cc.closed = true
	cc.mu.Unlock()
	_ = cc.aw.Close()
	return cc.nc.Close()
}

// Close tears down the connection, sending GOAWAY(NO_ERROR) first when
// the connection is still live. After a peer GOAWAY or a fatal error the
// frames stop, but the transport and read loop are still released —
// Close must never leave the socket or its goroutines behind.
func (cc *ClientConn) Close() error {
	cc.mu.Lock()
	if cc.transportClosed {
		cc.mu.Unlock()
		<-cc.readerDone
		return nil
	}
	wasClosed := cc.closed
	cc.closed = true
	last := cc.nextStreamID - 2
	cc.mu.Unlock()
	if !wasClosed {
		_ = cc.fr.WriteGoAway(last, ErrCodeNo, nil)
	}
	err := cc.closeTransport()
	<-cc.readerDone
	return err
}

// Shutdown drains the connection gracefully: it announces GOAWAY, stops
// accepting new requests, waits up to timeout for in-flight streams to
// finish, then closes the transport. It returns nil when the drain
// completed in time and a timeout error when streams were cut off.
func (cc *ClientConn) Shutdown(timeout time.Duration) error {
	cc.mu.Lock()
	wasClosed := cc.closed
	cc.closed = true
	last := cc.nextStreamID - 2
	if cc.drained == nil {
		cc.drained = make(chan struct{})
	}
	drained := cc.drained
	cc.signalDrainedLocked()
	cc.mu.Unlock()
	if !wasClosed {
		_ = cc.fr.WriteGoAway(last, ErrCodeNo, []byte("client shutdown"))
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	var derr error
	select {
	case <-drained:
	case <-cc.readerDone:
	case <-timer.C:
		derr = fmt.Errorf("h2: shutdown timed out after %v with streams in flight", timeout)
	}
	_ = cc.closeTransport()
	<-cc.readerDone
	return derr
}

// AltSvcs returns the alternative services advertised on the
// connection so far.
func (cc *ClientConn) AltSvcs() []AltSvc {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return append([]AltSvc(nil), cc.altSvcs...)
}

// sendPing registers and writes a PING, returning the channel its ack
// closes.
func (cc *ClientConn) sendPing(data [8]byte) (chan struct{}, error) {
	ch := make(chan struct{})
	cc.pingMu.Lock()
	if _, dup := cc.pingWait[data]; dup {
		cc.pingMu.Unlock()
		return nil, errors.New("h2: ping with duplicate payload in flight")
	}
	cc.pingWait[data] = ch
	cc.pingMu.Unlock()
	if err := cc.fr.WritePing(false, data); err != nil {
		cc.pingMu.Lock()
		delete(cc.pingWait, data)
		cc.pingMu.Unlock()
		return nil, err
	}
	return ch, nil
}

// Ping sends a PING frame and blocks until its acknowledgement arrives
// or the connection fails, measuring connection liveness.
func (cc *ClientConn) Ping(data [8]byte) error {
	ch, err := cc.sendPing(data)
	if err != nil {
		return err
	}
	select {
	case <-ch:
		return nil
	case <-cc.readerDone:
		return errors.New("h2: connection closed before ping ack")
	}
}

// PingTimeout is Ping with a deadline: an ack that does not arrive
// within d is a liveness failure (IsTimeout is false for it — the error
// is a plain deadline miss, not a transport timeout).
func (cc *ClientConn) PingTimeout(data [8]byte, d time.Duration) error {
	ch, err := cc.sendPing(data)
	if err != nil {
		return err
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ch:
		return nil
	case <-cc.readerDone:
		return errors.New("h2: connection closed before ping ack")
	case <-timer.C:
		cc.pingMu.Lock()
		delete(cc.pingWait, data)
		cc.pingMu.Unlock()
		return fmt.Errorf("h2: no ping ack within %v", d)
	}
}

// keepalivePrefix tags keepalive probe payloads so they never collide
// with caller-issued Ping payloads.
const keepalivePrefix = uint32(0x6b70616c) // "kpal"

// keepalive probes the connection every PingInterval and tears the
// transport down when the peer stops acknowledging — so pooled
// connections held open for coalescing cannot silently die and wedge
// every later request that trusts them.
func (cc *ClientConn) keepalive() {
	timeout := cc.opts.PingTimeout
	if timeout <= 0 {
		timeout = cc.opts.PingInterval
	}
	ticker := time.NewTicker(cc.opts.PingInterval)
	defer ticker.Stop()
	var seq uint32
	for {
		select {
		case <-cc.readerDone:
			return
		case <-ticker.C:
		}
		seq++
		var data [8]byte
		binary.BigEndian.PutUint32(data[:4], keepalivePrefix)
		binary.BigEndian.PutUint32(data[4:], seq)
		if err := cc.PingTimeout(data, timeout); err != nil {
			cc.mu.Lock()
			if cc.connErr == nil {
				cc.connErr = fmt.Errorf("h2: keepalive failed: %w", err)
			}
			cc.mu.Unlock()
			_ = cc.closeTransport()
			return
		}
	}
}

// Err returns the fatal connection error, if any.
func (cc *ClientConn) Err() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.connErr
}

func (cc *ClientConn) readLoop() {
	defer close(cc.readerDone)
	err := cc.readFrames()
	cc.sendFlow.close()
	cc.mu.Lock()
	cc.closed = true
	if cc.connErr == nil {
		cc.connErr = err
	}
	streams := cc.streams
	cc.streams = make(map[uint32]*clientStream)
	cc.signalDrainedLocked()
	cc.mu.Unlock()
	for _, cs := range streams {
		cs.err = err
		if cs.err == nil {
			cs.err = io.ErrUnexpectedEOF
		}
		close(cs.done)
	}
	if ce, ok := err.(ConnectionError); ok {
		_ = cc.fr.WriteGoAway(0, ce.Code, []byte(ce.Reason))
		_ = cc.nc.Close()
	}
}

func (cc *ClientConn) readFrames() error {
	for {
		f, err := cc.fr.ReadFrame()
		if err != nil {
			return err
		}
		if cc.hr.expectingContinuation() {
			cf, ok := f.(*ContinuationFrame)
			if !ok {
				return connError(ErrCodeProtocol, "expected CONTINUATION")
			}
			meta, err := cc.hr.onContinuation(cf)
			if err != nil {
				return err
			}
			if meta != nil {
				if err := cc.onResponseHeaders(meta); err != nil {
					return err
				}
			}
			continue
		}
		if err := cc.dispatch(f); err != nil {
			if se, ok := err.(StreamError); ok {
				cc.failStream(se.StreamID, se)
				_ = cc.fr.WriteRSTStream(se.StreamID, se.Code)
				continue
			}
			return err
		}
	}
}

func (cc *ClientConn) dispatch(f Frame) error {
	switch f := f.(type) {
	case *HeadersFrame:
		meta, err := cc.hr.onHeaders(f)
		if err != nil {
			return err
		}
		if meta != nil {
			return cc.onResponseHeaders(meta)
		}
		return nil
	case *DataFrame:
		return cc.onData(f)
	case *SettingsFrame:
		return cc.onSettings(f)
	case *PingFrame:
		if f.IsAck() {
			cc.pingMu.Lock()
			if ch, ok := cc.pingWait[f.Data]; ok {
				delete(cc.pingWait, f.Data)
				close(ch)
			}
			cc.pingMu.Unlock()
			return nil
		}
		return cc.fr.WritePing(true, f.Data)
	case *WindowUpdateFrame:
		if !cc.sendFlow.add(f.StreamID, int64(f.Increment)) {
			if f.StreamID == 0 {
				return connError(ErrCodeFlowControl, "connection window overflow")
			}
			return streamError(f.StreamID, ErrCodeFlowControl, "stream window overflow")
		}
		return nil
	case *RSTStreamFrame:
		cc.failStream(f.StreamID, streamError(f.StreamID, f.ErrCode, "reset by peer"))
		return nil
	case *GoAwayFrame:
		return cc.onGoAway(f)
	case *OriginFrame:
		return cc.onOrigin(f)
	case *AltSvcFrame:
		cc.mu.Lock()
		cc.altSvcs = append(cc.altSvcs, AltSvc{Origin: f.Origin, FieldValue: f.FieldValue})
		cc.mu.Unlock()
		return nil
	case *PushPromiseFrame:
		// We advertised ENABLE_PUSH=0; a PUSH_PROMISE is a protocol error.
		return connError(ErrCodeProtocol, "PUSH_PROMISE with push disabled")
	case *PriorityFrame, *ContinuationFrame:
		return nil
	default:
		return nil // ignore unknown extension frames (§4.1)
	}
}

// onGoAway handles graceful and abrupt shutdown (RFC 9113 §6.8):
// streams above the last-stream-id are failed so callers can retry
// elsewhere; streams at or below it continue to completion. With
// NO_ERROR the connection stays open for those in-flight streams and
// only stops accepting new requests; any other code is fatal.
func (cc *ClientConn) onGoAway(f *GoAwayFrame) error {
	gerr := GoAwayError{LastStreamID: f.LastStreamID, Code: f.ErrCode, DebugData: string(f.DebugData)}
	obs.Count(cc.opts.Recorder, "h2.client.goaway_received", 1)
	obs.Emit(cc.opts.Recorder, obs.Event{Kind: obs.KindGoAway, Host: cc.opts.Origin, N: int(f.LastStreamID), Detail: f.ErrCode.String()})
	cc.mu.Lock()
	cc.closed = true // no new requests
	if cc.connErr == nil {
		cc.connErr = gerr
	}
	var refused []*clientStream
	for id, cs := range cc.streams {
		if id > f.LastStreamID {
			refused = append(refused, cs)
			delete(cc.streams, id)
		}
	}
	cc.signalDrainedLocked()
	cc.mu.Unlock()
	for _, cs := range refused {
		cs.err = gerr
		close(cs.done)
		cc.sendFlow.closeStream(cs.id)
	}
	if f.ErrCode != ErrCodeNo {
		return gerr
	}
	return nil // keep reading: in-flight streams will still complete
}

// onOrigin applies RFC 8336 client rules: frames on a non-zero stream
// are ignored, flagged frames' flags are ignored, and clients that do
// not support the extension drop the frame entirely (fail-open).
func (cc *ClientConn) onOrigin(f *OriginFrame) error {
	if f.StreamID != 0 {
		return nil // §2.1: MUST be ignored
	}
	if cc.opts.IgnoreOriginFrames {
		return nil
	}
	cc.originSet.Replace(f.Origins)
	if cc.opts.Origin != "" {
		cc.originSet.Add(cc.opts.Origin)
	}
	cc.mu.Lock()
	cc.originFramesSeen++
	cc.mu.Unlock()
	obs.Count(cc.opts.Recorder, "h2.client.origin_frames", 1)
	obs.Emit(cc.opts.Recorder, obs.Event{Kind: obs.KindOriginFrame, Host: cc.opts.Origin, N: len(f.Origins), Detail: "received"})
	if cc.opts.OnOrigin != nil {
		cc.opts.OnOrigin(f.Origins)
	}
	return nil
}

func (cc *ClientConn) onSettings(f *SettingsFrame) error {
	if f.IsAck() {
		return nil
	}
	for _, s := range f.Settings {
		switch s.ID {
		case SettingInitialWindowSize:
			if !cc.sendFlow.setInitial(int64(s.Val)) {
				return connError(ErrCodeFlowControl, "initial window change overflows stream window")
			}
		case SettingMaxFrameSize:
			cc.mu.Lock()
			cc.maxSendFrame = s.Val
			cc.mu.Unlock()
			cc.hwmu.Lock()
			cc.hw.maxFrameSize = s.Val
			cc.hwmu.Unlock()
		case SettingHeaderTableSize:
			cc.hwmu.Lock()
			cc.hw.enc.SetMaxDynamicTableSize(s.Val)
			cc.hwmu.Unlock()
		case SettingMaxConcurrentStreams:
			cc.mu.Lock()
			cc.peerMaxStreams = s.Val
			cc.mu.Unlock()
		}
	}
	return cc.fr.WriteSettingsAck()
}

func (cc *ClientConn) onData(f *DataFrame) error {
	inc, ok := cc.recvFlow.consume(int64(f.Length))
	if !ok {
		return connError(ErrCodeFlowControl, "peer exceeded connection window")
	}
	if inc > 0 {
		if err := cc.fr.WriteWindowUpdate(0, uint32(inc)); err != nil {
			return err
		}
	}
	cc.mu.Lock()
	cs := cc.streams[f.StreamID]
	cc.mu.Unlock()
	if cs == nil {
		return streamError(f.StreamID, ErrCodeStreamClosed, "DATA on unknown stream")
	}
	cs.resp.Body = append(cs.resp.Body, f.Data...)
	if f.Length > 0 {
		if err := cc.fr.WriteWindowUpdate(f.StreamID, f.Length); err != nil {
			return err
		}
	}
	if f.Flags.Has(FlagEndStream) {
		cc.finishStream(cs)
	}
	return nil
}

func (cc *ClientConn) onResponseHeaders(meta *MetaHeadersFrame) error {
	cc.mu.Lock()
	cs := cc.streams[meta.StreamID]
	cc.mu.Unlock()
	if cs == nil {
		return streamError(meta.StreamID, ErrCodeStreamClosed, "HEADERS on unknown stream")
	}
	statusStr := meta.PseudoValue("status")
	status, err := strconv.Atoi(statusStr)
	if err != nil {
		return streamError(meta.StreamID, ErrCodeProtocol, "bad :status "+statusStr)
	}
	cs.resp.Status = status
	cs.resp.Header = append(cs.resp.Header, meta.RegularFields()...)
	if meta.EndStream() {
		cc.finishStream(cs)
	}
	return nil
}

func (cc *ClientConn) failStream(id uint32, err error) {
	cc.mu.Lock()
	cs := cc.streams[id]
	if cs != nil {
		delete(cc.streams, id)
	}
	cc.signalDrainedLocked()
	cc.mu.Unlock()
	if cs != nil {
		cs.err = err
		close(cs.done)
		cc.sendFlow.closeStream(id)
	}
}
