package h2

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// --- satellite: add/setInitial must be atomic on overflow failure ---

// TestAddConnOverflowAtomic pins the partial-mutation bug: add used to
// credit f.conn before noticing the 2^31-1 overflow, so the "rejected"
// WINDOW_UPDATE still corrupted the window the connection then kept
// using while tearing down.
func TestAddConnOverflowAtomic(t *testing.T) {
	f := newSendFlow()
	if !f.add(0, maxWindow-initialWindowSize) {
		t.Fatal("add to exactly maxWindow rejected")
	}
	if f.conn != maxWindow {
		t.Fatalf("conn window = %d, want %d", f.conn, int64(maxWindow))
	}
	if f.add(0, 1) {
		t.Fatal("add past maxWindow accepted")
	}
	if f.conn != maxWindow {
		t.Errorf("rejected add mutated conn window: %d, want %d", f.conn, int64(maxWindow))
	}
}

func TestAddStreamOverflowAtomic(t *testing.T) {
	f := newSendFlow()
	f.openStream(1)
	if !f.add(1, maxWindow-initialWindowSize) {
		t.Fatal("add to exactly maxWindow rejected")
	}
	if f.add(1, 1) {
		t.Fatal("add past maxWindow accepted")
	}
	if got := f.streams[1]; got != maxWindow {
		t.Errorf("rejected add mutated stream window: %d, want %d", got, int64(maxWindow))
	}
	if f.conn != initialWindowSize {
		t.Errorf("stream-level add touched conn window: %d", f.conn)
	}
}

// TestAddUnknownStreamIgnored: WINDOW_UPDATE racing stream closure is
// legal (RFC 9113 §5.1) and must not be treated as an error.
func TestAddUnknownStreamIgnored(t *testing.T) {
	f := newSendFlow()
	if !f.add(7, 100) {
		t.Error("WINDOW_UPDATE for closed stream reported as overflow")
	}
}

// TestSetInitialOverflowAtomic: with several open streams, a
// SETTINGS_INITIAL_WINDOW_SIZE change that overflows ANY stream must
// leave EVERY stream (and the initial value) untouched. The old code
// adjusted streams in map order and bailed mid-loop.
func TestSetInitialOverflowAtomic(t *testing.T) {
	f := newSendFlow()
	f.openStream(1)
	f.openStream(3)
	// Push stream 1 to the ceiling so any positive delta overflows it.
	if !f.add(1, maxWindow-initialWindowSize) {
		t.Fatal("setup add rejected")
	}
	if f.setInitial(initialWindowSize + 10) {
		t.Fatal("overflowing setInitial accepted")
	}
	if got := f.streams[1]; got != maxWindow {
		t.Errorf("stream 1 window = %d after rejected setInitial, want %d", got, int64(maxWindow))
	}
	if got := f.streams[3]; got != initialWindowSize {
		t.Errorf("stream 3 window = %d after rejected setInitial, want %d (partial mutation)", got, int64(initialWindowSize))
	}
	if f.initial != initialWindowSize {
		t.Errorf("initial = %d after rejected setInitial, want %d", f.initial, int64(initialWindowSize))
	}
}

// TestSetInitialNegativeThenUnblock exercises RFC 9113 §6.9.2: shrinking
// SETTINGS_INITIAL_WINDOW_SIZE may drive an open stream's window
// negative; the stream must stay blocked (not error) until enough
// WINDOW_UPDATE credit arrives to bring it positive again.
func TestSetInitialNegativeThenUnblock(t *testing.T) {
	f := newSendFlow()
	f.openStream(1)
	if n := f.take(1, 1000); n != 1000 {
		t.Fatalf("take = %d, want 1000", n)
	}
	if !f.setInitial(0) {
		t.Fatal("shrinking setInitial rejected")
	}
	if got := f.streams[1]; got != -1000 {
		t.Fatalf("stream window = %d after shrink, want -1000", got)
	}

	got := make(chan int64, 1)
	go func() { got <- f.take(1, 1000) }()
	select {
	case n := <-got:
		t.Fatalf("take returned %d from a negative window", n)
	case <-time.After(50 * time.Millisecond):
	}
	// 1500 of credit leaves the window at +500; the blocked take must wake
	// and reserve exactly that.
	if !f.add(1, 1500) {
		t.Fatal("unblocking add rejected")
	}
	select {
	case n := <-got:
		if n != 500 {
			t.Errorf("take after unblock = %d, want 500", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("take still blocked after window went positive")
	}
	if got := f.streams[1]; got != 0 {
		t.Errorf("stream window = %d after unblocked take, want 0", got)
	}
}

// --- satellite: take semantics audit (§6.9/§6.9.1) ---

// TestTakeNeverOverReserves: take hands out min(max, stream window,
// connection window) and therefore never drives a window negative — it
// must not invent the "at least 1 byte" the old doc comment promised
// when the peer has granted nothing.
func TestTakeNeverOverReserves(t *testing.T) {
	f := newSendFlow()
	f.openStream(1)
	if n := f.take(1, maxWindow); n != initialWindowSize {
		t.Fatalf("take(maxWindow) = %d, want the full window %d", n, int64(initialWindowSize))
	}
	if f.streams[1] != 0 || f.conn != 0 {
		t.Fatalf("windows after draining take: stream=%d conn=%d, want 0,0", f.streams[1], f.conn)
	}
	// Both windows empty: a further take must block, not return 1.
	got := make(chan int64, 1)
	go func() { got <- f.take(1, 1) }()
	select {
	case n := <-got:
		t.Fatalf("take on empty window returned %d", n)
	case <-time.After(50 * time.Millisecond):
	}
	f.close()
	if n := <-got; n != 0 {
		t.Errorf("take after close = %d, want 0", n)
	}
}

// TestTakeConnWindowLimits: the connection window caps takes across
// streams (§6.9.1: both windows must have room).
func TestTakeConnWindowLimits(t *testing.T) {
	f := newSendFlow()
	f.openStream(1)
	f.openStream(3)
	if !f.add(1, 1000) || !f.add(3, 1000) {
		t.Fatal("setup add rejected")
	}
	if n := f.take(1, initialWindowSize); n != initialWindowSize {
		t.Fatalf("first take = %d, want %d", n, int64(initialWindowSize))
	}
	// Connection window is now 0 even though stream 3 has credit.
	got := make(chan int64, 1)
	go func() { got <- f.take(3, 100) }()
	select {
	case n := <-got:
		t.Fatalf("take succeeded (%d) with empty connection window", n)
	case <-time.After(50 * time.Millisecond):
	}
	if !f.add(0, 40) {
		t.Fatal("conn add rejected")
	}
	if n := <-got; n != 40 {
		t.Errorf("take after conn credit = %d, want 40 (conn-window capped)", n)
	}
}

func TestTakeZeroMaxAndClosedStream(t *testing.T) {
	f := newSendFlow()
	f.openStream(1)
	if n := f.take(1, 0); n != 0 {
		t.Errorf("take(max=0) = %d, want 0", n)
	}
	f.closeStream(1)
	if n := f.take(1, 10); n != 0 {
		t.Errorf("take on closed stream = %d, want 0", n)
	}
}

// --- satellite: zero-increment WINDOW_UPDATE is PROTOCOL_ERROR (§6.9.1) ---

func TestZeroIncrementWindowUpdateParse(t *testing.T) {
	zero := []byte{0, 0, 0, 0}
	_, err := parseWindowUpdateFrame(nil, FrameHeader{Type: FrameWindowUpdate, StreamID: 0, Length: 4}, zero)
	var ce ConnectionError
	if !errors.As(err, &ce) || ce.Code != ErrCodeProtocol {
		t.Errorf("stream-0 zero increment: err = %v, want connection PROTOCOL_ERROR", err)
	}
	_, err = parseWindowUpdateFrame(nil, FrameHeader{Type: FrameWindowUpdate, StreamID: 3, Length: 4}, zero)
	var se StreamError
	if !errors.As(err, &se) || se.Code != ErrCodeProtocol || se.StreamID != 3 {
		t.Errorf("stream-3 zero increment: err = %v, want stream 3 PROTOCOL_ERROR", err)
	}
}

// TestZeroIncrementWindowUpdateTeardown drives the zero-increment case
// end to end: a raw fake server completes the h2 handshake, then sends
// WINDOW_UPDATE(stream 0, increment 0). The client must fail the whole
// connection with a protocol error rather than ignore the frame or hang.
func TestZeroIncrementWindowUpdateTeardown(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	srvErr := make(chan error, 1)
	go func() {
		srvErr <- func() error {
			preface := make([]byte, len(ClientPreface))
			if _, err := io.ReadFull(serverEnd, preface); err != nil {
				return err
			}
			fr := NewFramer(serverEnd, serverEnd)
			fr.AllowIllegalWrites = true
			if err := fr.WriteSettings(); err != nil {
				return err
			}
			if err := fr.WriteWindowUpdate(0, 0); err != nil {
				return err
			}
			// Drain until the client tears the transport down.
			for {
				if _, err := fr.ReadFrame(); err != nil {
					return nil
				}
			}
		}()
	}()

	cc, err := NewClientConn(clientEnd, ClientConnOptions{Origin: "a.example"})
	if err != nil {
		t.Fatalf("NewClientConn: %v", err)
	}
	defer cc.Close()
	waitUntil(t, func() bool { return cc.Err() != nil })
	var ce ConnectionError
	if err := cc.Err(); !errors.As(err, &ce) || ce.Code != ErrCodeProtocol {
		t.Errorf("connection error = %v, want PROTOCOL_ERROR", err)
	}
	_ = cc.Close()
	if err := <-srvErr; err != nil {
		t.Fatalf("fake server: %v", err)
	}
	assertNoH2Goroutines(t)
}
