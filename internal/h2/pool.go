package h2

import "sync"

// Buffer recycling for the frame codec. Connections churn constantly at
// crawl scale, and every connection owns a Framer read buffer and an
// asyncWriter queue; recycling them through power-of-two size classes
// keeps steady-state frame I/O off the allocator entirely.
const (
	bufPoolMinShift = 10 // smallest pooled cap: 1 KiB
	bufPoolMaxShift = 20 // largest pooled cap: 1 MiB
	bufPoolClasses  = bufPoolMaxShift - bufPoolMinShift + 1
)

var bufPools [bufPoolClasses]sync.Pool

// getBuf returns a zero-length buffer with cap ≥ n, recycled when a
// suitable one is pooled. Requests beyond the largest class fall back to
// a plain allocation.
func getBuf(n int) []byte {
	if n > 1<<bufPoolMaxShift {
		return make([]byte, 0, n)
	}
	c := 0
	for 1<<(bufPoolMinShift+c) < n {
		c++
	}
	if v := bufPools[c].Get(); v != nil {
		return (*(v.(*[]byte)))[:0]
	}
	return make([]byte, 0, 1<<(bufPoolMinShift+c))
}

// putBuf recycles b. The buffer lands in the largest class whose size it
// can satisfy, so a later getBuf from that class always has enough cap;
// buffers outside the pooled range are dropped for the GC.
func putBuf(b []byte) {
	c := cap(b)
	if c < 1<<bufPoolMinShift || c > 1<<bufPoolMaxShift {
		return
	}
	cls := 0
	for cls+1 < bufPoolClasses && 1<<(bufPoolMinShift+cls+1) <= c {
		cls++
	}
	b = b[:0]
	bufPools[cls].Put(&b)
}
