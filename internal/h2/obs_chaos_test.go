package h2

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"respectorigin/internal/conformance"
	"respectorigin/internal/faults"
	"respectorigin/internal/obs"
)

// TestChaosRecorderWiring drives several concurrent client/server
// pairs — one clean, the rest over ChaosConn with reset plans — with a
// shared Metrics+Trace recorder wired into both halves. Run under
// -race (the CI observability job does) this checks that recorder
// callbacks from the server's serve loop, the client's read loop, and
// request goroutines never race, and that no h2 goroutine outlives its
// connection when instrumentation is on.
func TestChaosRecorderWiring(t *testing.T) {
	metrics := obs.NewMetrics()
	trace := obs.NewTrace()
	rec := obs.Multi(metrics, trace)

	const pairs = 6
	// One invariant checker per connection endpoint: under fault injection
	// the continuous flow-control invariants must still hold on both sides.
	checkers := make([]*conformance.FlowChecker, 0, pairs*2)
	var wg sync.WaitGroup
	for i := 0; i < pairs; i++ {
		clientCheck := conformance.NewFlowChecker(fmt.Sprintf("pair %d client", i))
		serverCheck := conformance.NewFlowChecker(fmt.Sprintf("pair %d server", i))
		checkers = append(checkers, clientCheck, serverCheck)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			srv := &Server{
				Handler: HandlerFunc(func(w *ResponseWriter, r *Request) {
					_, _ = w.Write([]byte("ok:" + r.Path))
				}),
				OriginSet: []string{"a.example", "b.example"},
				Recorder:  rec,
				FlowHook:  serverCheck,
			}
			clientEnd, serverEnd := net.Pipe()
			done := make(chan error, 1)
			go func() { done <- srv.ServeConn(serverEnd) }()

			var nc net.Conn = clientEnd
			if i > 0 {
				// Per-pair injector: concurrent goroutines must not share
				// one injector's RNG.
				inj := faults.NewInjector(faults.Plan{ResetProb: 0.4}, int64(100+i))
				nc = faults.NewChaosConn(clientEnd, inj)
			}
			cc, err := NewClientConn(nc, ClientConnOptions{
				Origin:      "a.example",
				ReadTimeout: 2 * time.Second,
				Recorder:    rec,
				FlowHook:    clientCheck,
			})
			if err != nil {
				_ = serverEnd.Close()
				<-done
				return
			}
			for j := 0; j < 6; j++ {
				if _, err := cc.Get("a.example", "/r"); err != nil {
					break
				}
			}
			_ = cc.Close()
			_ = serverEnd.Close()
			<-done
		}(i)
	}
	wg.Wait()
	assertNoH2Goroutines(t)

	for _, fc := range checkers {
		for _, v := range fc.Check() {
			t.Error(v)
		}
	}

	// Connection counters fire before any fault can interfere.
	if got := metrics.Get("h2.client.conns"); got != pairs {
		t.Errorf("h2.client.conns = %d, want %d", got, pairs)
	}
	if got := metrics.Get("h2.server.conns"); got != pairs {
		t.Errorf("h2.server.conns = %d, want %d", got, pairs)
	}
	// The clean pair guarantees at least one full request cycle and one
	// ORIGIN frame in each direction, whatever the chaos pairs suffered.
	if metrics.Get("h2.client.streams") == 0 || metrics.Get("h2.server.streams") == 0 {
		t.Errorf("no streams recorded: client=%d server=%d",
			metrics.Get("h2.client.streams"), metrics.Get("h2.server.streams"))
	}
	if metrics.Get("h2.server.origin_frames_sent") == 0 {
		t.Error("no ORIGIN frames recorded despite a configured origin set")
	}
	if metrics.Get("h2.client.origin_frames") == 0 {
		t.Error("client recorded no ORIGIN frame receipts")
	}
	if trace.Len() == 0 {
		t.Error("trace recorded no events")
	}
	// The trace must serialize cleanly even with interleaved emitters.
	evs := trace.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Rank < evs[i-1].Rank ||
			(evs[i].Rank == evs[i-1].Rank && evs[i].Seq < evs[i-1].Seq) {
			t.Fatalf("events out of (rank, seq) order at %d: %+v then %+v", i, evs[i-1], evs[i])
		}
	}
}
