package h2

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// rawFrame serializes a 9-octet frame header plus payload, bypassing all
// Framer write-side validation — the fuzzer's job is to hit the parser
// with frames a conforming peer would never send.
func rawFrame(typ uint8, flags uint8, streamID uint32, payload []byte) []byte {
	buf := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	buf[0] = byte(len(payload) >> 16)
	buf[1] = byte(len(payload) >> 8)
	buf[2] = byte(len(payload))
	buf[3] = typ
	buf[4] = flags
	binary.BigEndian.PutUint32(buf[5:], streamID&(1<<31-1))
	return append(buf, payload...)
}

// FuzzFrameParse feeds arbitrary bytes to Framer.ReadFrame. Any input
// must produce frames or a clean error — never a panic or a hung parse.
func FuzzFrameParse(f *testing.F) {
	f.Add([]byte{})
	f.Add(rawFrame(uint8(FrameData), uint8(FlagEndStream), 1, []byte("hello")))
	f.Add(rawFrame(uint8(FrameData), uint8(FlagPadded), 1, []byte{0x10, 'x'})) // pad length past payload
	f.Add(rawFrame(uint8(FrameSettings), 0, 0, make([]byte, 6)))
	f.Add(rawFrame(uint8(FrameWindowUpdate), 0, 0, []byte{0, 0, 0, 0})) // zero increment
	f.Add(rawFrame(uint8(FrameGoAway), 0, 0, make([]byte, 8)))
	f.Add(rawFrame(uint8(FramePing), 0, 0, make([]byte, 8)))
	f.Add(rawFrame(uint8(FrameOrigin), 0, 0, []byte{0x00, 0x05, 'h', 't', 't', 'p', 's'}))
	f.Add(rawFrame(uint8(FrameAltSvc), 0, 0, []byte{0x00, 0x00, 'h', '3'}))
	f.Add(rawFrame(0xfe, 0xff, 1<<31-1, []byte("unknown type")))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFramer(io.Discard, bytes.NewReader(data))
		for i := 0; i < 1024; i++ {
			f, err := fr.ReadFrame()
			if err != nil {
				return
			}
			_ = f.Header().String()
		}
	})
}

// FuzzFrameRoundTrip builds a syntactically well-formed frame from
// fuzzer-chosen parts and checks that the parser either rejects it or
// reports exactly the header that was on the wire.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(FrameData), uint8(0), uint32(1), []byte("body"))
	f.Add(uint8(FrameHeaders), uint8(FlagEndHeaders), uint32(3), []byte{0x82})
	f.Add(uint8(FrameRSTStream), uint8(0), uint32(5), []byte{0, 0, 0, 1})
	f.Add(uint8(FrameWindowUpdate), uint8(0), uint32(0), []byte{0, 0, 1, 0})
	f.Add(uint8(0xc), uint8(0), uint32(0), []byte{0x00, 0x01, 'a'})
	f.Add(uint8(0x42), uint8(0x99), uint32(1<<31-1), []byte("opaque"))
	f.Fuzz(func(t *testing.T, typ uint8, flags uint8, streamID uint32, payload []byte) {
		if len(payload) > minMaxFrameSize {
			t.Skip("oversize payloads are covered by FuzzFrameParse")
		}
		wire := rawFrame(typ, flags, streamID, payload)
		fr := NewFramer(io.Discard, bytes.NewReader(wire))
		parsed, err := fr.ReadFrame()
		if err != nil {
			return
		}
		hdr := parsed.Header()
		if hdr.Type != FrameType(typ) {
			t.Fatalf("parsed type %v, wire had %#x", hdr.Type, typ)
		}
		if hdr.StreamID != streamID&(1<<31-1) {
			t.Fatalf("parsed stream %d, wire had %d", hdr.StreamID, streamID&(1<<31-1))
		}
		if hdr.Length != uint32(len(payload)) {
			t.Fatalf("parsed length %d, wire had %d", hdr.Length, len(payload))
		}
		if u, ok := parsed.(*UnknownFrame); ok && !bytes.Equal(u.Payload, payload) {
			t.Fatalf("unknown-frame payload %x, wire had %x", u.Payload, payload)
		}
	})
}

// FuzzSettingsDecode checks that every SETTINGS payload the parser
// accepts re-serializes to the identical bytes — decoding loses nothing,
// including unknown setting IDs, which RFC 9113 §6.5.2 requires an
// endpoint to ignore but a proxy to be able to forward.
func FuzzSettingsDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x04, 0x00, 0x01, 0x00, 0x00})             // INITIAL_WINDOW_SIZE 65536
	f.Add([]byte{0x00, 0x04, 0x80, 0x00, 0x00, 0x00})             // INITIAL_WINDOW_SIZE 2^31: invalid
	f.Add([]byte{0x00, 0x05, 0x00, 0x00, 0x00, 0x01})             // MAX_FRAME_SIZE below 16384: invalid
	f.Add([]byte{0x00, 0x02, 0x00, 0x00, 0x00, 0x02})             // ENABLE_PUSH 2: invalid
	f.Add([]byte{0xff, 0xff, 0x12, 0x34, 0x56, 0x78})             // unknown ID survives
	f.Add([]byte{0x00, 0x03, 0x00, 0x00, 0x00, 0x64, 0x00, 0x06}) // trailing partial record
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr := FrameHeader{Type: FrameSettings, Length: uint32(len(data))}
		parsed, err := parseSettingsFrame(nil, hdr, data)
		if err != nil {
			return
		}
		sf := parsed.(*SettingsFrame)
		var buf bytes.Buffer
		if err := NewFramer(&buf, nil).WriteSettings(sf.Settings...); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if got := buf.Bytes()[frameHeaderLen:]; !bytes.Equal(got, data) {
			t.Fatalf("re-serialized payload %x, want %x", got, data)
		}
	})
}
