package h2

import (
	"net"
	"testing"
	"time"
)

// TestGracefulShutdownDrainsInFlight: stop() during an in-flight
// response sends GOAWAY, the response still completes, new streams are
// refused, and the connection then closes cleanly.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	srv := &Server{Handler: HandlerFunc(func(w *ResponseWriter, r *Request) {
		if r.Path == "/slow" {
			started <- struct{}{}
			<-release
		}
		w.Write([]byte("done " + r.Path))
	})}
	cn, sn := net.Pipe()
	stop, done := srv.ServeConnGraceful(sn)
	cc, err := NewClientConn(cn, ClientConnOptions{})
	if err != nil {
		t.Fatal(err)
	}

	respCh := make(chan *Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := cc.Get("example.com", "/slow")
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()
	<-started

	// Shut down while the response is in flight.
	stop()
	time.Sleep(20 * time.Millisecond)

	// A new stream after GOAWAY is refused.
	_, err = cc.Get("example.com", "/new")
	if err == nil {
		t.Error("new stream accepted during drain")
	}

	// The in-flight response still completes.
	close(release)
	select {
	case resp := <-respCh:
		if resp.Status != 200 || string(resp.Body) != "done /slow" {
			t.Errorf("in-flight response = %d %q", resp.Status, resp.Body)
		}
	case err := <-errCh:
		t.Fatalf("in-flight request failed: %v", err)
	case <-time.After(3 * time.Second):
		t.Fatal("in-flight response never completed")
	}

	// The server exits cleanly once drained.
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("server exit = %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("server never exited after drain")
	}
	cc.Close()
}

// TestGracefulShutdownIdleConnection: stopping an idle connection
// closes it immediately and cleanly.
func TestGracefulShutdownIdleConnection(t *testing.T) {
	srv := &Server{Handler: echoHandler()}
	cn, sn := net.Pipe()
	stop, done := srv.ServeConnGraceful(sn)
	cc, err := NewClientConn(cn, ClientConnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// One completed request, then idle.
	if _, err := cc.Get("example.com", "/"); err != nil {
		t.Fatal(err)
	}
	stop()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("idle shutdown = %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("idle connection never closed")
	}
	cc.Close()
}

// TestGracefulShutdownIdempotent: calling stop twice is safe.
func TestGracefulShutdownIdempotent(t *testing.T) {
	srv := &Server{Handler: echoHandler()}
	cn, sn := net.Pipe()
	stop, done := srv.ServeConnGraceful(sn)
	if _, err := NewClientConn(cn, ClientConnOptions{}); err != nil {
		t.Fatal(err)
	}
	stop()
	stop()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("shutdown hung")
	}
}
