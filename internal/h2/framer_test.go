package h2

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"testing/quick"
)

// pipeFramer returns a framer pair: frames written on w are read on r.
func pipeFramer() (w *Framer, r *Framer, buf *bytes.Buffer) {
	buf = &bytes.Buffer{}
	w = NewFramer(buf, bytes.NewReader(nil))
	r = NewFramer(io.Discard, buf)
	return
}

func TestFrameHeaderRoundTrip(t *testing.T) {
	f := func(length uint32, typ, flags uint8, stream uint32) bool {
		h := FrameHeader{
			Length:   length & (1<<24 - 1),
			Type:     FrameType(typ),
			Flags:    Flags(flags),
			StreamID: stream & (1<<31 - 1),
		}
		enc := appendFrameHeader(nil, h)
		got, err := readFrameHeader(bytes.NewReader(enc), make([]byte, frameHeaderLen))
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDataFrameRoundTrip(t *testing.T) {
	w, r, _ := pipeFramer()
	if err := w.WriteData(5, true, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	df, ok := f.(*DataFrame)
	if !ok {
		t.Fatalf("got %T", f)
	}
	if df.StreamID != 5 || !df.Flags.Has(FlagEndStream) || string(df.Data) != "hello" {
		t.Errorf("frame = %+v", df)
	}
}

func TestDataOnStreamZeroRejected(t *testing.T) {
	w, r, _ := pipeFramer()
	w.AllowIllegalWrites = true
	if err := w.WriteData(0, false, []byte("x")); err != nil {
		t.Fatal(err)
	}
	_, err := r.ReadFrame()
	ce, ok := err.(ConnectionError)
	if !ok || ce.Code != ErrCodeProtocol {
		t.Errorf("want protocol ConnectionError, got %v", err)
	}
}

func TestSettingsRoundTrip(t *testing.T) {
	w, r, _ := pipeFramer()
	in := []Setting{
		{SettingHeaderTableSize, 8192},
		{SettingMaxFrameSize, 65536},
		{SettingEnablePush, 0},
	}
	if err := w.WriteSettings(in...); err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	sf := f.(*SettingsFrame)
	if !reflect.DeepEqual(sf.Settings, in) {
		t.Errorf("settings = %v, want %v", sf.Settings, in)
	}
	if v, ok := sf.Value(SettingMaxFrameSize); !ok || v != 65536 {
		t.Errorf("Value(MAX_FRAME_SIZE) = %d, %v", v, ok)
	}
	if err := w.WriteSettingsAck(); err != nil {
		t.Fatal(err)
	}
	f, err = r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if !f.(*SettingsFrame).IsAck() {
		t.Error("expected SETTINGS ack")
	}
}

func TestSettingsValidation(t *testing.T) {
	w, r, _ := pipeFramer()
	// ENABLE_PUSH=2 is invalid.
	if err := w.WriteSettings(Setting{SettingEnablePush, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadFrame(); err == nil {
		t.Error("invalid ENABLE_PUSH accepted")
	}
}

func TestPingGoAwayWindowUpdate(t *testing.T) {
	w, r, _ := pipeFramer()
	var data [8]byte
	copy(data[:], "12345678")
	if err := w.WritePing(false, data); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteGoAway(7, ErrCodeEnhanceYourCalm, []byte("slow down")); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteWindowUpdate(3, 1000); err != nil {
		t.Fatal(err)
	}

	f, _ := r.ReadFrame()
	pf := f.(*PingFrame)
	if pf.Data != data || pf.IsAck() {
		t.Errorf("ping = %+v", pf)
	}
	f, _ = r.ReadFrame()
	gf := f.(*GoAwayFrame)
	if gf.LastStreamID != 7 || gf.ErrCode != ErrCodeEnhanceYourCalm || string(gf.DebugData) != "slow down" {
		t.Errorf("goaway = %+v", gf)
	}
	f, _ = r.ReadFrame()
	wf := f.(*WindowUpdateFrame)
	if wf.StreamID != 3 || wf.Increment != 1000 {
		t.Errorf("window update = %+v", wf)
	}
}

func TestZeroWindowIncrementErrors(t *testing.T) {
	w, r, _ := pipeFramer()
	w.AllowIllegalWrites = true
	if err := w.WriteWindowUpdate(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadFrame(); err == nil {
		t.Error("zero connection window increment accepted")
	}
	w2, r2, _ := pipeFramer()
	w2.AllowIllegalWrites = true
	if err := w2.WriteWindowUpdate(9, 0); err != nil {
		t.Fatal(err)
	}
	_, err := r2.ReadFrame()
	se, ok := err.(StreamError)
	if !ok || se.StreamID != 9 {
		t.Errorf("want StreamError on 9, got %v", err)
	}
}

func TestHeadersWithPriorityRoundTrip(t *testing.T) {
	w, r, _ := pipeFramer()
	err := w.WriteHeaders(HeadersFrameParam{
		StreamID:      11,
		BlockFragment: []byte{0x82},
		EndStream:     true,
		EndHeaders:    true,
		Priority:      &PriorityParam{StreamDep: 3, Exclusive: true, Weight: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	hf := f.(*HeadersFrame)
	if !hf.EndStream() || !hf.EndHeaders() {
		t.Error("flags lost")
	}
	want := PriorityParam{StreamDep: 3, Exclusive: true, Weight: 200}
	if hf.Priority != want {
		t.Errorf("priority = %+v", hf.Priority)
	}
	if !bytes.Equal(hf.BlockFragment, []byte{0x82}) {
		t.Errorf("fragment = %x", hf.BlockFragment)
	}
}

func TestOriginFrameRoundTrip(t *testing.T) {
	w, r, _ := pipeFramer()
	origins := []string{"https://example.com", "https://cdn.example.com", "https://fonts.example.net:8443"}
	if err := w.WriteOrigin(origins); err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	of := f.(*OriginFrame)
	if of.StreamID != 0 {
		t.Errorf("ORIGIN stream = %d", of.StreamID)
	}
	if !reflect.DeepEqual(of.Origins, origins) {
		t.Errorf("origins = %v", of.Origins)
	}
}

func TestOriginFrameRoundTripQuick(t *testing.T) {
	f := func(entries [][]byte) bool {
		var origins []string
		for _, e := range entries {
			if len(e) > 1000 {
				e = e[:1000]
			}
			origins = append(origins, string(e))
		}
		w, r, _ := pipeFramer()
		if err := w.WriteOrigin(origins); err != nil {
			return false
		}
		fr, err := r.ReadFrame()
		if err != nil {
			return false
		}
		of, ok := fr.(*OriginFrame)
		if !ok {
			return false
		}
		if len(origins) == 0 {
			return len(of.Origins) == 0
		}
		return reflect.DeepEqual(of.Origins, origins)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOriginFrameTruncatedPayload(t *testing.T) {
	w, r, _ := pipeFramer()
	// Entry claims 10 bytes but only 3 follow.
	if err := w.WriteRawFrame(FrameOrigin, 0, 0, []byte{0x00, 0x0a, 'a', 'b', 'c'}); err != nil {
		t.Fatal(err)
	}
	_, err := r.ReadFrame()
	ce, ok := err.(ConnectionError)
	if !ok || ce.Code != ErrCodeFrameSize {
		t.Errorf("want FRAME_SIZE_ERROR, got %v", err)
	}
}

func TestAltSvcRoundTrip(t *testing.T) {
	w, r, _ := pipeFramer()
	if err := w.WriteAltSvc(0, "example.com", `h3=":443"`); err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	af := f.(*AltSvcFrame)
	if af.Origin != "example.com" || af.FieldValue != `h3=":443"` {
		t.Errorf("altsvc = %+v", af)
	}
}

func TestUnknownFrameIgnoredByParser(t *testing.T) {
	w, r, _ := pipeFramer()
	if err := w.WriteRawFrame(FrameType(0xfb), 0x7, 9, []byte("anything")); err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	uf, ok := f.(*UnknownFrame)
	if !ok || string(uf.Payload) != "anything" {
		t.Errorf("frame = %#v", f)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	w, r, _ := pipeFramer()
	if err := w.WriteRawFrame(FrameData, 0, 1, make([]byte, minMaxFrameSize+1)); err != nil {
		t.Fatal(err)
	}
	_, err := r.ReadFrame()
	ce, ok := err.(ConnectionError)
	if !ok || ce.Code != ErrCodeFrameSize {
		t.Errorf("want FRAME_SIZE_ERROR, got %v", err)
	}
}

func TestPaddingHandling(t *testing.T) {
	w, r, _ := pipeFramer()
	// DATA with 4 bytes padding: padlen byte + data + pad.
	payload := append([]byte{4}, append([]byte("body"), 0, 0, 0, 0)...)
	if err := w.WriteRawFrame(FrameData, FlagPadded, 1, payload); err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if string(f.(*DataFrame).Data) != "body" {
		t.Errorf("data = %q", f.(*DataFrame).Data)
	}

	// Pad length exceeding payload is a protocol error.
	w2, r2, _ := pipeFramer()
	if err := w2.WriteRawFrame(FrameData, FlagPadded, 1, []byte{200, 'x'}); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.ReadFrame(); err == nil {
		t.Error("excessive padding accepted")
	}
}

func TestRSTStreamRoundTrip(t *testing.T) {
	w, r, _ := pipeFramer()
	if err := w.WriteRSTStream(21, ErrCodeRefusedStream); err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	rf := f.(*RSTStreamFrame)
	if rf.StreamID != 21 || rf.ErrCode != ErrCodeRefusedStream {
		t.Errorf("rst = %+v", rf)
	}
}

func TestErrCodeStrings(t *testing.T) {
	if ErrCodeProtocol.String() != "PROTOCOL_ERROR" {
		t.Error(ErrCodeProtocol.String())
	}
	if ErrCode(0x99).String() == "" {
		t.Error("empty string for unknown code")
	}
	if FrameOrigin.String() != "ORIGIN" {
		t.Error(FrameOrigin.String())
	}
}
