package h2_test

import (
	"crypto/tls"
	"net"
	"testing"

	"respectorigin/internal/certs"
	"respectorigin/internal/h2"
	"respectorigin/internal/hpack"
)

// TestTLSEndToEndOriginCoalescing runs the full stack the paper's
// deployment needed: a TLS server presenting a certificate whose SANs
// cover both the site and the shared third-party domain, speaking
// HTTP/2 with an ORIGIN frame, and a client that verifies the
// certificate, receives the origin set, and issues a request for the
// second hostname on the same connection.
func TestTLSEndToEndOriginCoalescing(t *testing.T) {
	const (
		site  = "www.site.example"
		third = "cdnjs.shared.example"
	)
	ca, err := certs.NewCA("E2E Test CA")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.Issue(site, third)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	srv := &h2.Server{
		Handler: h2.HandlerFunc(func(w *h2.ResponseWriter, r *h2.Request) {
			w.WriteHeader(200, hpack.HeaderField{Name: "x-served-host", Value: r.Authority})
			w.Write([]byte("payload for " + r.Authority + r.Path))
		}),
		OriginSet: []string{third},
		Authoritative: func(authority string) bool {
			return authority == site || authority == third
		},
	}
	serverTLS := &tls.Config{
		Certificates: []tls.Certificate{leaf.TLSCertificate()},
		NextProtos:   []string{"h2"},
	}
	serverErr := make(chan error, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			serverErr <- err
			return
		}
		serverErr <- srv.ServeConn(tls.Server(nc, serverTLS))
	}()

	clientTLS := &tls.Config{
		RootCAs:    ca.Pool(),
		ServerName: site,
		NextProtos: []string{"h2"},
	}
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tc := tls.Client(raw, clientTLS)
	if err := tc.Handshake(); err != nil {
		t.Fatal(err)
	}
	if tc.ConnectionState().NegotiatedProtocol != "h2" {
		t.Fatalf("ALPN = %q", tc.ConnectionState().NegotiatedProtocol)
	}

	cc, err := h2.NewClientConn(tc, h2.ClientConnOptions{Origin: site})
	if err != nil {
		t.Fatal(err)
	}

	// First request: the site itself.
	resp, err := cc.Get(site, "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "payload for "+site+"/index.html" {
		t.Fatalf("site response: %d %q", resp.Status, resp.Body)
	}

	// The ORIGIN frame arrived before the first response; the client's
	// origin set plus the real certificate authorize the third party.
	if !cc.OriginSet().Contains(third) {
		t.Fatalf("origin set missing %s: %v", third, cc.OriginSet().All())
	}
	if !cc.CanRequest(third) {
		t.Fatal("CanRequest(third) = false despite ORIGIN + SAN coverage")
	}

	// Coalesced request on the SAME connection, different authority.
	resp, err = cc.Get(third, "/lib.js")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("third-party status = %d", resp.Status)
	}
	if got := resp.HeaderValue("x-served-host"); got != third {
		t.Errorf("served host = %q", got)
	}

	// A host outside the certificate must not be requestable even if a
	// rogue ORIGIN frame listed it.
	if cc.CanRequest("evil.example") {
		t.Error("CanRequest accepted uncovered host")
	}

	// An authority the server does not serve yields 421.
	resp, err = cc.Get("unrelated.example", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 421 {
		t.Errorf("unrelated authority status = %d, want 421", resp.Status)
	}

	cc.Close()
	if err := <-serverErr; err != nil {
		t.Errorf("server: %v", err)
	}
}

// TestTLSCertificateSANVerification checks the default VerifyOrigin
// path: CanRequest must consult the real leaf certificate when the
// transport is crypto/tls.
func TestTLSCertificateSANVerification(t *testing.T) {
	const site = "www.covered.example"
	ca, _ := certs.NewCA("E2E CA 2")
	leaf, _ := ca.Issue(site, "also.covered.example")

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srv := &h2.Server{
		Handler:   h2.HandlerFunc(func(w *h2.ResponseWriter, r *h2.Request) { w.WriteHeader(204) }),
		OriginSet: []string{"also.covered.example", "not-covered.example"},
	}
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		srv.ServeConn(tls.Server(nc, &tls.Config{
			Certificates: []tls.Certificate{leaf.TLSCertificate()},
			NextProtos:   []string{"h2"},
		}))
	}()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tc := tls.Client(raw, &tls.Config{RootCAs: ca.Pool(), ServerName: site, NextProtos: []string{"h2"}})
	cc, err := h2.NewClientConn(tc, h2.ClientConnOptions{Origin: site})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if _, err := cc.Get(site, "/"); err != nil {
		t.Fatal(err)
	}

	if !cc.CanRequest("also.covered.example") {
		t.Error("SAN-covered origin rejected")
	}
	// In the origin set but NOT in the certificate: must be rejected by
	// the default tls.Conn SAN verification.
	if cc.CanRequest("not-covered.example") {
		t.Error("origin without SAN coverage accepted")
	}
}
