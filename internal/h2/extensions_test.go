package h2

import (
	"io"
	"math/rand"
	"net"
	"testing"
	"testing/quick"
	"time"
)

func TestClientPing(t *testing.T) {
	cc, stop := startPair(t, &Server{Handler: echoHandler()}, ClientConnOptions{})
	defer stop()
	var data [8]byte
	copy(data[:], "ping0001")
	done := make(chan error, 1)
	go func() { done <- cc.Ping(data) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ping never acked")
	}
}

func TestClientPingDuplicateRejected(t *testing.T) {
	// Two concurrent pings with the same payload: the second must error
	// rather than silently sharing the ack.
	cc, stop := startPair(t, &Server{Handler: echoHandler()}, ClientConnOptions{})
	defer stop()
	var data [8]byte
	cc.pingMu.Lock()
	cc.pingWait[data] = make(chan struct{})
	cc.pingMu.Unlock()
	if err := cc.Ping(data); err == nil {
		t.Error("duplicate ping accepted")
	}
}

func TestClientCollectsAltSvc(t *testing.T) {
	srv := &Server{Handler: echoHandler()}
	cn, sn := net.Pipe()
	go srv.ServeConn(sn)
	cc, err := NewClientConn(cn, ClientConnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	// Inject an ALTSVC frame from a raw peer side: use a second pipe
	// pair where we control the server bytes.
	cn2, remote := net.Pipe()
	go func() {
		io.ReadFull(remote, make([]byte, len(ClientPreface)))
		fr := NewFramer(remote, remote)
		fr.WriteSettings()
		fr.WriteAltSvc(0, "example.com", `h3=":443"; ma=3600`)
		io.Copy(io.Discard, remote)
	}()
	cc2, err := NewClientConn(cn2, ClientConnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cc2.Close()
	deadline := time.After(2 * time.Second)
	for len(cc2.AltSvcs()) == 0 {
		select {
		case <-deadline:
			t.Fatal("alt-svc never recorded")
		case <-time.After(5 * time.Millisecond):
		}
	}
	as := cc2.AltSvcs()[0]
	if as.Origin != "example.com" || as.FieldValue != `h3=":443"; ma=3600` {
		t.Errorf("altsvc = %+v", as)
	}
}

// TestParserNeverPanics feeds random frame payloads through the parser;
// any outcome but a panic is acceptable.
func TestParserNeverPanics(t *testing.T) {
	f := func(typ uint8, flags uint8, stream uint32, payload []byte) bool {
		if len(payload) > minMaxFrameSize {
			payload = payload[:minMaxFrameSize]
		}
		hdr := FrameHeader{
			Type:     FrameType(typ),
			Flags:    Flags(flags),
			StreamID: stream & (1<<31 - 1),
			Length:   uint32(len(payload)),
		}
		_, _ = parseFrame(nil, hdr, payload)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanicsOnMutatedValidFrames mutates real frames.
func TestParserNeverPanicsOnMutatedValidFrames(t *testing.T) {
	w, r, buf := pipeFramer()
	w.WriteSettings(Setting{SettingMaxFrameSize, 65536})
	w.WriteOrigin([]string{"https://a.example", "https://b.example"})
	w.WriteHeaders(HeadersFrameParam{StreamID: 1, BlockFragment: []byte{0x82, 0x84}, EndHeaders: true})
	w.WriteData(1, true, []byte("payload"))
	w.WriteGoAway(1, ErrCodeNo, []byte("bye"))
	raw := append([]byte(nil), buf.Bytes()...)

	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3000; trial++ {
		mutated := append([]byte(nil), raw...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			mutated[rng.Intn(len(mutated))] ^= byte(1 << rng.Intn(8))
		}
		fr := NewFramer(io.Discard, newByteReader(mutated))
		for {
			if _, err := fr.ReadFrame(); err != nil {
				break
			}
		}
	}
	_ = r
}

type byteReader struct {
	b []byte
}

func newByteReader(b []byte) *byteReader { return &byteReader{b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
