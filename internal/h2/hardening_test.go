package h2

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"respectorigin/internal/hpack"
)

// TestContinuationFloodCutOff: a peer streaming endless CONTINUATION
// frames must be cut off with ENHANCE_YOUR_CALM rather than buffering
// without bound.
func TestContinuationFloodCutOff(t *testing.T) {
	srv := &Server{Handler: echoHandler()}
	cn, sn := net.Pipe()
	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.ServeConn(sn) }()

	if _, err := io.WriteString(cn, ClientPreface); err != nil {
		t.Fatal(err)
	}
	fr := NewFramer(cn, cn)
	if err := fr.WriteSettings(); err != nil {
		t.Fatal(err)
	}
	// Open a header block and never finish it.
	enc := hpack.NewEncoder()
	frag := enc.AppendHeaderBlock(nil, []hpack.HeaderField{
		{Name: ":method", Value: "GET"}, {Name: ":scheme", Value: "https"},
		{Name: ":path", Value: "/"},
	})
	if err := fr.WriteHeaders(HeadersFrameParam{StreamID: 1, BlockFragment: frag}); err != nil {
		t.Fatal(err)
	}
	junk := bytes.Repeat([]byte{0x00}, 16000) // literal fragments, never END_HEADERS
	go func() {
		for i := 0; i < 200; i++ {
			if err := fr.WriteContinuation(1, false, junk); err != nil {
				return
			}
		}
	}()
	select {
	case err := <-serverErr:
		ce, ok := err.(ConnectionError)
		if !ok || ce.Code != ErrCodeEnhanceYourCalm {
			t.Errorf("server exit = %v, want ENHANCE_YOUR_CALM", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("server kept buffering the flood")
	}
	cn.Close()
}

// TestOversizedSingleHeadersFrame: one huge HEADERS fragment is also
// bounded (the server's MaxFrameSize must admit it first).
func TestOversizedSingleHeadersFrame(t *testing.T) {
	srv := &Server{Handler: echoHandler(), MaxFrameSize: 1 << 21}
	cn, sn := net.Pipe()
	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.ServeConn(sn) }()

	io.WriteString(cn, ClientPreface)
	fr := NewFramer(cn, cn)
	fr.WriteSettings()
	go io.Copy(io.Discard, cn)
	big := bytes.Repeat([]byte{0}, (1<<20)+1)
	if err := fr.WriteHeaders(HeadersFrameParam{StreamID: 1, BlockFragment: big, EndHeaders: true}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serverErr:
		ce, ok := err.(ConnectionError)
		if !ok || ce.Code != ErrCodeEnhanceYourCalm {
			t.Errorf("server exit = %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("server accepted oversized block")
	}
	cn.Close()
}

// TestInitialWindowSizeChangeMidStream: shrinking then growing
// SETTINGS_INITIAL_WINDOW_SIZE adjusts in-flight stream windows
// (RFC 9113 §6.9.2) without deadlocking the transfer.
func TestInitialWindowSizeChangeMidStream(t *testing.T) {
	release := make(chan struct{})
	srv := &Server{Handler: HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.Write(bytes.Repeat([]byte{'a'}, 40000))
		<-release
		w.Write(bytes.Repeat([]byte{'b'}, 40000))
	})}
	cn, sn := net.Pipe()
	go srv.ServeConn(sn)
	cc, err := NewClientConn(cn, ClientConnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	respCh := make(chan *Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := cc.Get("example.com", "/big")
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()
	// Mid-transfer, lower and then raise the server's send window.
	time.Sleep(20 * time.Millisecond)
	if err := cc.fr.WriteSettings(Setting{SettingInitialWindowSize, 1024}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := cc.fr.WriteSettings(Setting{SettingInitialWindowSize, 1 << 20}); err != nil {
		t.Fatal(err)
	}
	close(release)
	select {
	case resp := <-respCh:
		if len(resp.Body) != 80000 {
			t.Errorf("body = %d bytes", len(resp.Body))
		}
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("transfer stalled after window changes")
	}
}

// TestFlowControlStallAndResume: a tiny client connection window must
// stall the server until WINDOW_UPDATEs arrive, and the transfer must
// still complete.
func TestFlowControlStallAndResume(t *testing.T) {
	const size = 200_000
	srv := &Server{Handler: HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.Write(bytes.Repeat([]byte{'z'}, size))
	})}
	cc, stop := startPair(t, srv, ClientConnOptions{})
	defer stop()
	resp, err := cc.Get("example.com", "/stall")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Body) != size {
		t.Errorf("got %d bytes", len(resp.Body))
	}
}

// TestHugeHeaderValueRejectedGracefully: a header just under the block
// limit round-trips; the request still succeeds.
func TestHeaderNearLimitSucceeds(t *testing.T) {
	srv := &Server{Handler: HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.WriteHeader(200, hpack.HeaderField{Name: "x-len", Value: itoa(len(r.HeaderValue("x-big")))})
	})}
	cc, stop := startPair(t, srv, ClientConnOptions{})
	defer stop()
	val := strings.Repeat("v", 200_000)
	resp, err := cc.RoundTrip(&Request{
		Method: "GET", Scheme: "https", Authority: "example.com", Path: "/",
		Header: []hpack.HeaderField{{Name: "x-big", Value: val, Sensitive: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.HeaderValue("x-len") != itoa(len(val)) {
		t.Errorf("x-len = %s", resp.HeaderValue("x-len"))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestMalformedRequestsRejected exercises the §8.3 pseudo-header rules
// end to end.
func TestMalformedRequestsRejected(t *testing.T) {
	srv := &Server{Handler: echoHandler()}
	cn, sn := net.Pipe()
	go srv.ServeConn(sn)

	io.WriteString(cn, ClientPreface)
	fr := NewFramer(cn, cn)
	fr.WriteSettings()
	enc := hpack.NewEncoder()

	// Uppercase header name: connection is torn down with a
	// compression/protocol error signalled via GOAWAY or RST.
	frag := enc.AppendHeaderBlock(nil, []hpack.HeaderField{
		{Name: ":method", Value: "GET"}, {Name: ":scheme", Value: "https"},
		{Name: ":path", Value: "/"}, {Name: "BadHeader", Value: "x"},
	})
	fr.WriteHeaders(HeadersFrameParam{StreamID: 1, BlockFragment: frag, EndStream: true, EndHeaders: true})

	sawReset := false
	deadline := time.After(2 * time.Second)
	done := make(chan bool, 1)
	go func() {
		for {
			f, err := fr.ReadFrame()
			if err != nil {
				done <- sawReset
				return
			}
			switch f.(type) {
			case *RSTStreamFrame, *GoAwayFrame:
				sawReset = true
				done <- true
				return
			}
		}
	}()
	select {
	case ok := <-done:
		if !ok {
			t.Error("malformed request not rejected")
		}
	case <-deadline:
		t.Error("no rejection observed")
	}
	cn.Close()
}

// TestStreamIDMonotonicityEnforced: reusing a lower stream ID is a
// connection error.
func TestStreamIDMonotonicityEnforced(t *testing.T) {
	srv := &Server{Handler: echoHandler()}
	cn, sn := net.Pipe()
	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.ServeConn(sn) }()

	io.WriteString(cn, ClientPreface)
	fr := NewFramer(cn, cn)
	fr.WriteSettings()
	go io.Copy(io.Discard, cn)
	enc := hpack.NewEncoder()
	mk := func() []byte {
		return enc.AppendHeaderBlock(nil, []hpack.HeaderField{
			{Name: ":method", Value: "GET"}, {Name: ":scheme", Value: "https"}, {Name: ":path", Value: "/"},
		})
	}
	fr.WriteHeaders(HeadersFrameParam{StreamID: 5, BlockFragment: mk(), EndStream: true, EndHeaders: true})
	fr.WriteHeaders(HeadersFrameParam{StreamID: 3, BlockFragment: mk(), EndStream: true, EndHeaders: true})
	select {
	case err := <-serverErr:
		ce, ok := err.(ConnectionError)
		if !ok || ce.Code != ErrCodeProtocol {
			t.Errorf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Error("non-monotonic stream ID accepted")
	}
	cn.Close()
}
