package h2

import (
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"respectorigin/internal/conformance"
	"respectorigin/internal/faults"
)

// leakedH2Goroutines returns the stacks of goroutines still running h2
// code: read loops, writer pumps, keepalive probes, handler goroutines.
// It is a dependency-free goleak equivalent scoped to this package.
func leakedH2Goroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var leaked []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "internal/h2.(*") ||
			strings.Contains(g, "internal/h2.(Server") {
			leaked = append(leaked, g)
		}
	}
	return leaked
}

// assertNoH2Goroutines fails the test if h2 goroutines survive teardown.
// Exits race shutdown, so it retries briefly before declaring a leak.
func assertNoH2Goroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		leaked := leakedH2Goroutines()
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("leaked %d h2 goroutines:\n%s", len(leaked), strings.Join(leaked, "\n\n"))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startEchoServer serves one connection with a trivial handler and
// returns the client half plus the server's done channel. Unless the
// caller installed its own FlowHook, the server runs under the
// conformance invariant checker, verified at test cleanup.
func startEchoServer(t *testing.T, srv *Server) (net.Conn, <-chan error) {
	t.Helper()
	if srv.Handler == nil {
		srv.Handler = HandlerFunc(func(w *ResponseWriter, r *Request) {
			_, _ = w.Write([]byte("ok:" + r.Path))
		})
	}
	if srv.FlowHook == nil {
		fc := conformance.NewFlowChecker("server")
		srv.FlowHook = fc
		t.Cleanup(func() {
			for _, v := range fc.Check() {
				t.Error(v)
			}
		})
	}
	clientEnd, serverEnd := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(serverEnd) }()
	return clientEnd, done
}

// TestCloseAfterGoAwayReleasesTransport pins the fix for a leak: after
// the server's graceful GOAWAY marked the connection closed, Close used
// to no-op, leaving the socket open and the read loop plus writer pump
// alive for the life of the process.
func TestCloseAfterGoAwayReleasesTransport(t *testing.T) {
	srv := &Server{Handler: HandlerFunc(func(w *ResponseWriter, r *Request) {
		_, _ = w.Write([]byte("hi"))
	})}
	clientEnd, serverEnd := net.Pipe()
	stopped := make(chan error, 1)
	var stop func()
	var done <-chan error
	stop, done = srv.ServeConnGraceful(serverEnd)
	go func() { stopped <- <-done }()

	cc, err := NewClientConn(clientEnd, ClientConnOptions{Origin: "a.example"})
	if err != nil {
		t.Fatalf("NewClientConn: %v", err)
	}
	if _, err := cc.Get("a.example", "/"); err != nil {
		t.Fatalf("Get: %v", err)
	}
	stop() // server announces GOAWAY; client marks itself closed

	// Wait until the GOAWAY has been observed so Close exercises the
	// already-closed path.
	waitUntil(t, func() bool {
		cc.mu.Lock()
		defer cc.mu.Unlock()
		return cc.closed
	})
	if err := cc.Close(); err != nil && err != net.ErrClosed {
		t.Logf("Close after GOAWAY: %v", err)
	}
	select {
	case <-cc.readerDone:
	case <-time.After(2 * time.Second):
		t.Fatal("read loop still running after Close following GOAWAY")
	}
	<-stopped
	assertNoH2Goroutines(t)
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClientReadTimeout verifies the framer's per-frame read deadline: a
// server that goes silent fails pending requests with a timeout error
// instead of hanging them forever.
func TestClientReadTimeout(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	// A black hole: drains client bytes, never answers.
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := serverEnd.Read(buf); err != nil {
				return
			}
		}
	}()
	cc, err := NewClientConn(clientEnd, ClientConnOptions{
		Origin:      "a.example",
		ReadTimeout: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewClientConn: %v", err)
	}
	_, err = cc.Get("a.example", "/")
	if err == nil {
		t.Fatal("Get against a silent server succeeded")
	}
	if !IsTimeout(err) {
		t.Fatalf("Get error = %v; want a timeout (IsTimeout)", err)
	}
	_ = cc.Close()
	_ = serverEnd.Close()
	assertNoH2Goroutines(t)
}

// TestKeepaliveDetectsDeadPeer verifies the PING liveness probe: a peer
// that drains frames but never acks tears the connection down within a
// few intervals, failing fast instead of trusting a dead pooled conn.
func TestKeepaliveDetectsDeadPeer(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := serverEnd.Read(buf); err != nil {
				return
			}
		}
	}()
	cc, err := NewClientConn(clientEnd, ClientConnOptions{
		Origin:       "a.example",
		PingInterval: 40 * time.Millisecond,
		PingTimeout:  40 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewClientConn: %v", err)
	}
	select {
	case <-cc.readerDone:
	case <-time.After(3 * time.Second):
		t.Fatal("keepalive never tore down the dead connection")
	}
	if cc.Err() == nil {
		t.Fatal("no connection error recorded after keepalive failure")
	}
	_ = cc.Close()
	_ = serverEnd.Close()
	assertNoH2Goroutines(t)
}

// TestPingLivenessAgainstRealServer verifies the happy path: a live
// server acks the keepalive probe and requests keep flowing.
func TestPingLivenessAgainstRealServer(t *testing.T) {
	clientEnd, done := startEchoServer(t, &Server{})
	cc, err := NewClientConn(clientEnd, ClientConnOptions{
		Origin:       "a.example",
		PingInterval: 20 * time.Millisecond,
		PingTimeout:  500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewClientConn: %v", err)
	}
	if err := cc.PingTimeout([8]byte{1, 2, 3}, time.Second); err != nil {
		t.Fatalf("PingTimeout: %v", err)
	}
	time.Sleep(60 * time.Millisecond) // let a few keepalive rounds pass
	if resp, err := cc.Get("a.example", "/x"); err != nil || resp.Status != 200 {
		t.Fatalf("Get after keepalive rounds: resp=%+v err=%v", resp, err)
	}
	_ = cc.Close()
	<-done
	assertNoH2Goroutines(t)
}

// TestClientShutdownDrains verifies graceful client shutdown: a request
// in flight when Shutdown is called still completes, and the transport
// is released afterwards.
func TestClientShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	srv := &Server{Handler: HandlerFunc(func(w *ResponseWriter, r *Request) {
		<-release
		_, _ = w.Write([]byte("late"))
	})}
	clientEnd, done := startEchoServer(t, srv)
	cc, err := NewClientConn(clientEnd, ClientConnOptions{Origin: "a.example"})
	if err != nil {
		t.Fatalf("NewClientConn: %v", err)
	}
	type result struct {
		resp *Response
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := cc.Get("a.example", "/slow")
		got <- result{resp, err}
	}()
	waitUntil(t, func() bool {
		cc.mu.Lock()
		defer cc.mu.Unlock()
		return len(cc.streams) == 1
	})
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(release)
	}()
	if err := cc.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-got
	if r.err != nil || string(r.resp.Body) != "late" {
		t.Fatalf("in-flight request after Shutdown: body=%q err=%v", bodyOf(r.resp), r.err)
	}
	// New requests must be refused after Shutdown.
	if _, err := cc.Get("a.example", "/again"); err == nil {
		t.Fatal("request after Shutdown succeeded")
	}
	<-done
	assertNoH2Goroutines(t)
}

func bodyOf(r *Response) string {
	if r == nil {
		return "<nil>"
	}
	return string(r.Body)
}

// TestShutdownTimeoutCutsOff verifies the drain deadline: a handler that
// never finishes cannot hold Shutdown hostage.
func TestShutdownTimeoutCutsOff(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv := &Server{Handler: HandlerFunc(func(w *ResponseWriter, r *Request) {
		<-block
	})}
	clientEnd, done := startEchoServer(t, srv)
	cc, err := NewClientConn(clientEnd, ClientConnOptions{Origin: "a.example"})
	if err != nil {
		t.Fatalf("NewClientConn: %v", err)
	}
	go func() { _, _ = cc.Get("a.example", "/stuck") }()
	waitUntil(t, func() bool {
		cc.mu.Lock()
		defer cc.mu.Unlock()
		return len(cc.streams) == 1
	})
	if err := cc.Shutdown(50 * time.Millisecond); err == nil {
		t.Fatal("Shutdown with a stuck stream returned nil")
	}
	<-done
}

// TestServerReadTimeout verifies the server half: a client that sends
// the preface and then goes silent is cut loose by the read deadline.
func TestServerReadTimeout(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	srv := &Server{
		Handler:     HandlerFunc(func(w *ResponseWriter, r *Request) {}),
		ReadTimeout: 80 * time.Millisecond,
	}
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(serverEnd) }()
	go func() { // drain server frames so its writer never blocks
		buf := make([]byte, 4096)
		for {
			if _, err := clientEnd.Read(buf); err != nil {
				return
			}
		}
	}()
	if _, err := clientEnd.Write([]byte(ClientPreface)); err != nil {
		t.Fatalf("writing preface: %v", err)
	}
	select {
	case err := <-done:
		if !IsTimeout(err) {
			t.Fatalf("ServeConn error = %v; want a timeout (IsTimeout)", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("server kept a silent client past its ReadTimeout")
	}
	_ = clientEnd.Close()
	assertNoH2Goroutines(t)
}

// TestChaosConnResetMidStream runs a real client/server pair over a
// faults.ChaosConn with a certain-reset plan: the injected teardown must
// surface as request errors, never hangs or leaked goroutines.
func TestChaosConnResetMidStream(t *testing.T) {
	inj := faults.NewInjector(faults.Plan{ResetProb: 1}, 7)
	clientCheck := conformance.NewFlowChecker("client")
	serverCheck := conformance.NewFlowChecker("server")
	body := strings.Repeat("x", 32<<10) // larger than the smallest budget
	srv := &Server{
		Handler: HandlerFunc(func(w *ResponseWriter, r *Request) {
			_, _ = w.Write([]byte(body))
		}),
		FlowHook: serverCheck,
	}
	clientEnd, serverEnd := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(serverEnd) }()

	chaos := faults.NewChaosConn(clientEnd, inj)
	cc, err := NewClientConn(chaos, ClientConnOptions{
		Origin:      "a.example",
		ReadTimeout: 2 * time.Second,
		FlowHook:    clientCheck,
	})
	if err != nil {
		t.Fatalf("NewClientConn: %v", err)
	}
	var failed bool
	for i := 0; i < 8 && !failed; i++ {
		if _, err := cc.Get("a.example", "/big"); err != nil {
			failed = true
		}
	}
	if !failed {
		t.Fatal("no request failed despite a certain reset plan")
	}
	_ = cc.Close()
	_ = serverEnd.Close()
	<-done
	assertNoH2Goroutines(t)
	if hits, rolls := inj.Counts(faults.KindReset); hits == 0 || rolls == 0 {
		t.Fatalf("injector counters not updated: hits=%d rolls=%d", hits, rolls)
	}
	// Even with the transport torn down mid-stream, the flow-control
	// invariants must have held on both endpoints up to the failure.
	for _, v := range clientCheck.Check() {
		t.Error(v)
	}
	for _, v := range serverCheck.Check() {
		t.Error(v)
	}
}

// TestChaosDeterministicBudget pins ChaosConn's seeded schedule: two
// injectors with the same plan and seed produce identical reset budgets.
func TestChaosDeterministicBudget(t *testing.T) {
	budgets := func(seed int64) []int64 {
		inj := faults.NewInjector(faults.Plan{ResetProb: 0.5}, seed)
		var out []int64
		for i := 0; i < 16; i++ {
			a, b := net.Pipe()
			c := faults.NewChaosConn(a, inj)
			out = append(out, c.Budget())
			_ = a.Close()
			_ = b.Close()
		}
		return out
	}
	x, y := budgets(42), budgets(42)
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("budget %d: %d vs %d for same seed", i, x[i], y[i])
		}
	}
	var differs bool
	for _, z := range budgets(43) {
		if z != x[0] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("all budgets identical across seeds; schedule not seeded")
	}
}
