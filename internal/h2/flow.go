package h2

import "sync"

// sendFlow coordinates send-side flow control for a connection and its
// streams. A single mutex and condition variable cover the connection
// window and all stream windows; writers block in take until both the
// connection and their stream have room.
type sendFlow struct {
	mu      sync.Mutex
	cond    *sync.Cond
	conn    int64            // connection-level send window
	streams map[uint32]int64 // per-stream send windows
	initial int64            // SETTINGS_INITIAL_WINDOW_SIZE from peer
	closed  bool
}

func newSendFlow() *sendFlow {
	f := &sendFlow{
		conn:    initialWindowSize,
		streams: make(map[uint32]int64),
		initial: initialWindowSize,
	}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// openStream registers a stream window at the current initial size.
func (f *sendFlow) openStream(id uint32) {
	f.mu.Lock()
	f.streams[id] = f.initial
	f.mu.Unlock()
}

// closeStream removes a stream and wakes any writer blocked on it.
func (f *sendFlow) closeStream(id uint32) {
	f.mu.Lock()
	delete(f.streams, id)
	f.cond.Broadcast()
	f.mu.Unlock()
}

// close unblocks all writers; subsequent takes return 0.
func (f *sendFlow) close() {
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
}

// add credits the stream window (id != 0) or connection window (id == 0)
// in response to WINDOW_UPDATE. It reports whether the resulting window
// stays within the 2^31-1 protocol bound.
func (f *sendFlow) add(id uint32, n int64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if id == 0 {
		f.conn += n
		if f.conn > maxWindow {
			return false
		}
	} else {
		w, ok := f.streams[id]
		if ok {
			w += n
			if w > maxWindow {
				return false
			}
			f.streams[id] = w
		}
	}
	f.cond.Broadcast()
	return true
}

// setInitial applies a SETTINGS_INITIAL_WINDOW_SIZE change, adjusting
// every open stream by the delta (RFC 9113 §6.9.2). It reports whether
// all windows stay within bounds.
func (f *sendFlow) setInitial(n int64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	delta := n - f.initial
	f.initial = n
	for id, w := range f.streams {
		w += delta
		if w > maxWindow {
			return false
		}
		f.streams[id] = w
	}
	f.cond.Broadcast()
	return true
}

// take blocks until it can reserve up to max bytes for stream id,
// returning the number reserved (min of request, stream window, conn
// window, but at least 1 when max > 0). It returns 0 when the stream or
// connection has closed.
func (f *sendFlow) take(id uint32, max int64) int64 {
	if max == 0 {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.closed {
			return 0
		}
		sw, ok := f.streams[id]
		if !ok {
			return 0
		}
		avail := sw
		if f.conn < avail {
			avail = f.conn
		}
		if avail > 0 {
			n := max
			if n > avail {
				n = avail
			}
			f.conn -= n
			f.streams[id] = sw - n
			return n
		}
		f.cond.Wait()
	}
}

// recvFlow tracks receive-side flow control: how many bytes the peer may
// still send, and when to replenish with WINDOW_UPDATE. The connection
// owner calls consume for every DATA payload received and sends updates
// when the returned amounts are positive.
type recvFlow struct {
	mu         sync.Mutex
	connAvail  int64 // bytes peer may still send connection-wide
	connUnsent int64 // consumed bytes not yet returned via WINDOW_UPDATE
}

func newRecvFlow() *recvFlow {
	return &recvFlow{connAvail: initialWindowSize}
}

// consume records receipt of n payload bytes. It returns the
// connection-level WINDOW_UPDATE increment to send (0 if below the
// replenish threshold) and false if the peer overflowed our window.
func (f *recvFlow) consume(n int64) (connInc int64, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n > f.connAvail {
		return 0, false
	}
	f.connAvail -= n
	f.connUnsent += n
	// Replenish once half the window is consumed, amortizing updates.
	if f.connUnsent >= initialWindowSize/2 {
		inc := f.connUnsent
		f.connUnsent = 0
		f.connAvail += inc
		return inc, true
	}
	return 0, true
}
