package h2

import "sync"

// Flow hook op names. A FlowHook receives one event per accepted
// flow-control state transition; rejected operations (window overflow,
// which tears the connection down) emit nothing.
//
// The hook signature deliberately uses only built-in types so that
// external invariant checkers (internal/conformance) can implement it
// without importing this package — which in turn lets this package's own
// tests import the checker without an import cycle.
const (
	// FlowOpOpen: stream streamID registered; n is the window it opened
	// with (the current initial window size).
	FlowOpOpen = "open"
	// FlowOpClose: stream streamID removed.
	FlowOpClose = "close"
	// FlowOpTake: n bytes reserved for DATA on streamID (debits the
	// stream and connection windows together).
	FlowOpTake = "take"
	// FlowOpAdd: WINDOW_UPDATE credited n bytes to streamID (0 = the
	// connection window).
	FlowOpAdd = "add"
	// FlowOpSetInitial: SETTINGS_INITIAL_WINDOW_SIZE changed to n; every
	// open stream window was adjusted by the delta (RFC 9113 §6.9.2).
	FlowOpSetInitial = "set_initial"
	// FlowOpData: n DATA payload bytes were actually written for
	// streamID, consuming an earlier reservation.
	FlowOpData = "data"
	// FlowOpRecv: n received DATA payload bytes debited the receive
	// window.
	FlowOpRecv = "recv"
	// FlowOpRecvReplenish: a WINDOW_UPDATE for n bytes was returned to
	// the peer, re-crediting the receive window.
	FlowOpRecvReplenish = "recv_replenish"
)

// A FlowHook observes flow-control transitions for invariant checking.
// Implementations must be safe for concurrent use and must not call back
// into the connection; hooks run with internal locks held. Production
// code leaves it nil, which changes nothing.
type FlowHook interface {
	FlowEvent(op string, streamID uint32, n int64)
}

// sendFlow coordinates send-side flow control for a connection and its
// streams. A single mutex and condition variable cover the connection
// window and all stream windows; writers block in take until both the
// connection and their stream have room.
type sendFlow struct {
	mu      sync.Mutex
	cond    *sync.Cond
	conn    int64            // connection-level send window
	streams map[uint32]int64 // per-stream send windows
	initial int64            // SETTINGS_INITIAL_WINDOW_SIZE from peer
	closed  bool
	hook    FlowHook // observation only; set before concurrent use
}

func newSendFlow() *sendFlow {
	f := &sendFlow{
		conn:    initialWindowSize,
		streams: make(map[uint32]int64),
		initial: initialWindowSize,
	}
	f.cond = sync.NewCond(&f.mu)
	return f
}

func (f *sendFlow) emit(op string, id uint32, n int64) {
	if f.hook != nil {
		f.hook.FlowEvent(op, id, n)
	}
}

// openStream registers a stream window at the current initial size.
func (f *sendFlow) openStream(id uint32) {
	f.mu.Lock()
	f.streams[id] = f.initial
	f.emit(FlowOpOpen, id, f.initial)
	f.mu.Unlock()
}

// closeStream removes a stream and wakes any writer blocked on it.
func (f *sendFlow) closeStream(id uint32) {
	f.mu.Lock()
	if _, ok := f.streams[id]; ok {
		delete(f.streams, id)
		f.emit(FlowOpClose, id, 0)
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// close unblocks all writers; subsequent takes return 0.
func (f *sendFlow) close() {
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
}

// add credits the stream window (id != 0) or connection window (id == 0)
// in response to WINDOW_UPDATE. It reports whether the resulting window
// stays within the 2^31-1 protocol bound; on overflow NO state is
// mutated, so the caller may treat the failure as a pure signal and
// escalate it (connection teardown for id 0, RST_STREAM otherwise)
// without the windows having been corrupted first.
func (f *sendFlow) add(id uint32, n int64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if id == 0 {
		if f.conn+n > maxWindow {
			return false
		}
		f.conn += n
	} else {
		w, ok := f.streams[id]
		if !ok {
			// WINDOW_UPDATE for a stream already closed: legal per RFC
			// 9113 §5.1 (frames in flight after closure), ignored.
			return true
		}
		if w+n > maxWindow {
			return false
		}
		f.streams[id] = w + n
	}
	f.emit(FlowOpAdd, id, n)
	f.cond.Broadcast()
	return true
}

// setInitial applies a SETTINGS_INITIAL_WINDOW_SIZE change, adjusting
// every open stream by the delta (RFC 9113 §6.9.2). It reports whether
// all windows stay within the 2^31-1 bound, validating every stream
// BEFORE mutating any so a failure (a connection error at the caller)
// never leaves the windows half-adjusted. A negative resulting window is
// legal per §6.9.2: the stream simply stays blocked in take until
// WINDOW_UPDATEs bring it positive again.
func (f *sendFlow) setInitial(n int64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	delta := n - f.initial
	for _, w := range f.streams {
		if w+delta > maxWindow {
			return false
		}
	}
	f.initial = n
	for id, w := range f.streams {
		f.streams[id] = w + delta
	}
	f.emit(FlowOpSetInitial, 0, n)
	f.cond.Broadcast()
	return true
}

// take blocks until it can reserve up to max bytes for stream id,
// returning the number reserved: min(max, stream window, connection
// window), which is always ≥ 1 because take waits while either window
// is zero or negative — it never hands out credit the peer did not
// grant (RFC 9113 §6.9.1). It returns 0 only when max is 0 or the
// stream or connection has closed.
func (f *sendFlow) take(id uint32, max int64) int64 {
	if max == 0 {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.closed {
			return 0
		}
		sw, ok := f.streams[id]
		if !ok {
			return 0
		}
		avail := sw
		if f.conn < avail {
			avail = f.conn
		}
		if avail > 0 {
			n := max
			if n > avail {
				n = avail
			}
			f.conn -= n
			f.streams[id] = sw - n
			f.emit(FlowOpTake, id, n)
			return n
		}
		f.cond.Wait()
	}
}

// noteData reports n DATA payload bytes actually written for stream id,
// letting an installed FlowHook tie reservations to bytes on the wire.
func (f *sendFlow) noteData(id uint32, n int64) {
	if f.hook == nil || n == 0 {
		return
	}
	f.mu.Lock()
	f.emit(FlowOpData, id, n)
	f.mu.Unlock()
}

// recvFlow tracks receive-side flow control: how many bytes the peer may
// still send, and when to replenish with WINDOW_UPDATE. The connection
// owner calls consume for every DATA payload received and sends updates
// when the returned amounts are positive.
type recvFlow struct {
	mu         sync.Mutex
	connAvail  int64 // bytes peer may still send connection-wide
	connUnsent int64 // consumed bytes not yet returned via WINDOW_UPDATE
	hook       FlowHook
}

func newRecvFlow() *recvFlow {
	return &recvFlow{connAvail: initialWindowSize}
}

// consume records receipt of n payload bytes. It returns the
// connection-level WINDOW_UPDATE increment to send (0 if below the
// replenish threshold) and false if the peer overflowed our window.
func (f *recvFlow) consume(n int64) (connInc int64, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n > f.connAvail {
		return 0, false
	}
	f.connAvail -= n
	f.connUnsent += n
	if f.hook != nil && n > 0 {
		f.hook.FlowEvent(FlowOpRecv, 0, n)
	}
	// Replenish once half the window is consumed, amortizing updates.
	if f.connUnsent >= initialWindowSize/2 {
		inc := f.connUnsent
		f.connUnsent = 0
		f.connAvail += inc
		if f.hook != nil {
			f.hook.FlowEvent(FlowOpRecvReplenish, 0, inc)
		}
		return inc, true
	}
	return 0, true
}
