package h2

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestCanonicalOrigin(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{"example.com", "https://example.com", false},
		{"Example.COM", "https://example.com", false},
		{"https://example.com", "https://example.com", false},
		{"https://example.com:443", "https://example.com", false},
		{"https://example.com:8443", "https://example.com:8443", false},
		{"https://example.com/", "https://example.com", false},
		{"cdn.example.net:443", "https://cdn.example.net", false},
		{"https://[::1]:8443", "https://[::1]:8443", false},
		{"http://example.com", "", true},
		{"ftp://example.com", "", true},
		{"", "", true},
		{"https://example.com/path", "", true},
		{"https://exa mple.com", "", true},
		{"https://example.com:port", "", true},
		{"https://:8443", "", true},
	}
	for _, c := range cases {
		got, err := CanonicalOrigin(c.in)
		if c.err {
			if err == nil {
				t.Errorf("CanonicalOrigin(%q) = %q, want error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("CanonicalOrigin(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
}

func TestCanonicalOriginIdempotent(t *testing.T) {
	f := func(host string) bool {
		c1, err := CanonicalOrigin(host)
		if err != nil {
			return true // invalid inputs are out of scope
		}
		c2, err := CanonicalOrigin(c1)
		return err == nil && c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOriginHost(t *testing.T) {
	cases := []struct{ in, want string }{
		{"https://example.com", "example.com"},
		{"https://example.com:8443", "example.com"},
		{"https://[::1]:8443", "[::1]"},
		{"https://[::1]", "[::1]"},
	}
	for _, c := range cases {
		if got := OriginHost(c.in); got != c.want {
			t.Errorf("OriginHost(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestOriginSetReplaceSemantics(t *testing.T) {
	s := NewOriginSet()
	if s.Initialized() {
		t.Error("fresh set claims initialization")
	}
	s.Replace([]string{"a.example", "b.example"})
	if !s.Initialized() || s.Len() != 2 {
		t.Fatalf("after replace: init=%v len=%d", s.Initialized(), s.Len())
	}
	if !s.Contains("a.example") || !s.Contains("https://b.example") {
		t.Error("membership lookups failed")
	}
	// A second ORIGIN frame replaces, not merges.
	s.Replace([]string{"c.example"})
	if s.Contains("a.example") || !s.Contains("c.example") || s.Len() != 1 {
		t.Errorf("replace did not replace: %v", s.All())
	}
}

func TestOriginSetSkipsInvalidEntries(t *testing.T) {
	s := NewOriginSet()
	s.Replace([]string{"good.example", "http://bad.example", "", "also good.example/nope path"})
	if s.Len() != 1 || !s.Contains("good.example") {
		t.Errorf("set = %v", s.All())
	}
}

func TestOriginSetAll(t *testing.T) {
	s := NewOriginSet("b.example", "a.example")
	want := []string{"https://a.example", "https://b.example"}
	if got := s.All(); !reflect.DeepEqual(got, want) {
		t.Errorf("All() = %v, want %v", got, want)
	}
}

func TestOriginSetAddAndContains(t *testing.T) {
	var s OriginSet
	s.Add("www.example.com")
	if !s.Contains("WWW.example.com") {
		t.Error("case-insensitive membership failed")
	}
	s.Add("http://ignored.example")
	if s.Contains("ignored.example") {
		t.Error("non-https origin admitted")
	}
}
