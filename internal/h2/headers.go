package h2

import (
	"strings"

	"respectorigin/internal/hpack"
)

// MetaHeadersFrame is a HEADERS frame plus all of its CONTINUATIONs,
// with the header block decoded.
type MetaHeadersFrame struct {
	*HeadersFrame
	Fields []hpack.HeaderField
}

// PseudoValue returns the value of the given pseudo-header (":method",
// ":path", ...) or "".
func (f *MetaHeadersFrame) PseudoValue(name string) string {
	for _, hf := range f.Fields {
		if !strings.HasPrefix(hf.Name, ":") {
			break
		}
		if hf.Name[1:] == name {
			return hf.Value
		}
	}
	return ""
}

// RegularFields returns the non-pseudo header fields.
func (f *MetaHeadersFrame) RegularFields() []hpack.HeaderField {
	for i, hf := range f.Fields {
		if !strings.HasPrefix(hf.Name, ":") {
			return f.Fields[i:]
		}
	}
	return nil
}

// validPseudoHeaders enumerates the request and response pseudo-headers
// from RFC 9113 §8.3.
var validPseudoHeaders = map[string]bool{
	":method":    true,
	":scheme":    true,
	":authority": true,
	":path":      true,
	":status":    true,
}

// checkHeaderBlock enforces the RFC 9113 §8.2 field validity rules that
// make a request or response malformed: pseudo-headers after regular
// fields, unknown pseudo-headers, uppercase field names, and
// connection-specific fields.
func checkHeaderBlock(fields []hpack.HeaderField) error {
	sawRegular := false
	for _, f := range fields {
		if strings.HasPrefix(f.Name, ":") {
			if sawRegular {
				return streamError(0, ErrCodeProtocol, "pseudo-header after regular header")
			}
			if !validPseudoHeaders[f.Name] {
				return streamError(0, ErrCodeProtocol, "unknown pseudo-header "+f.Name)
			}
			continue
		}
		sawRegular = true
		if f.Name == "" {
			return streamError(0, ErrCodeProtocol, "empty header name")
		}
		if f.Name != strings.ToLower(f.Name) {
			return streamError(0, ErrCodeProtocol, "uppercase header name "+f.Name)
		}
		switch f.Name {
		case "connection", "proxy-connection", "keep-alive", "transfer-encoding", "upgrade":
			return streamError(0, ErrCodeProtocol, "connection-specific header "+f.Name)
		case "te":
			if f.Value != "trailers" {
				return streamError(0, ErrCodeProtocol, "te header must be 'trailers'")
			}
		}
	}
	return nil
}

// headerWriter serializes a header field list into HEADERS plus
// CONTINUATION frames, splitting the block at maxFrameSize. It must be
// called with the connection's header-encode mutex held so that HPACK
// state and frame interleaving stay consistent.
type headerWriter struct {
	fr           *Framer
	enc          *hpack.Encoder
	maxFrameSize uint32
	buf          []byte
}

func (hw *headerWriter) writeHeaders(streamID uint32, fields []hpack.HeaderField, endStream bool) error {
	hw.buf = hw.enc.AppendHeaderBlock(hw.buf[:0], fields)
	block := hw.buf
	max := int(hw.maxFrameSize)
	first := true
	for {
		frag := block
		if len(frag) > max {
			frag = frag[:max]
		}
		block = block[len(frag):]
		end := len(block) == 0
		var err error
		if first {
			err = hw.fr.WriteHeaders(HeadersFrameParam{
				StreamID:      streamID,
				BlockFragment: frag,
				EndStream:     endStream,
				EndHeaders:    end,
			})
			first = false
		} else {
			err = hw.fr.WriteContinuation(streamID, end, frag)
		}
		if err != nil {
			return err
		}
		if end {
			return nil
		}
	}
}

// defaultMaxHeaderBlockSize bounds an assembled header block. An
// endpoint streaming unbounded CONTINUATION frames (the "CONTINUATION
// flood") is cut off with ENHANCE_YOUR_CALM once the block passes this.
const defaultMaxHeaderBlockSize = 1 << 20

// headerReader accumulates HEADERS + CONTINUATION frames into a
// MetaHeadersFrame using the connection's HPACK decoder.
type headerReader struct {
	dec *hpack.Decoder

	// maxBlockSize caps the assembled block; 0 means the default.
	maxBlockSize int

	// pending is the HEADERS frame whose block is being continued.
	pending *HeadersFrame
	frag    []byte
}

func (hr *headerReader) limit() int {
	if hr.maxBlockSize > 0 {
		return hr.maxBlockSize
	}
	return defaultMaxHeaderBlockSize
}

// expectingContinuation reports whether the next frame must be a
// CONTINUATION for the pending stream.
func (hr *headerReader) expectingContinuation() bool { return hr.pending != nil }

// onHeaders ingests a HEADERS frame. If the block is complete it returns
// the decoded meta frame; otherwise it returns nil and waits for
// CONTINUATIONs.
func (hr *headerReader) onHeaders(f *HeadersFrame) (*MetaHeadersFrame, error) {
	if hr.pending != nil {
		return nil, connError(ErrCodeProtocol, "HEADERS while expecting CONTINUATION")
	}
	if len(f.BlockFragment) > hr.limit() {
		return nil, connError(ErrCodeEnhanceYourCalm, "header block too large")
	}
	// The incoming frame aliases the framer's read buffer (and may be the
	// framer's cached frame struct), so anything that survives this call
	// needs its own copy — but only the header fields, never the raw
	// fragment: a complete block is decoded right here, before the next
	// ReadFrame can clobber it.
	owned := &HeadersFrame{FrameHeader: f.FrameHeader, Priority: f.Priority}
	if f.EndHeaders() {
		return hr.decode(owned, f.BlockFragment)
	}
	hr.pending = owned
	hr.frag = append(hr.frag[:0], f.BlockFragment...)
	return nil, nil
}

// onContinuation ingests a CONTINUATION frame, returning the decoded
// meta frame once END_HEADERS arrives.
func (hr *headerReader) onContinuation(f *ContinuationFrame) (*MetaHeadersFrame, error) {
	if hr.pending == nil {
		return nil, connError(ErrCodeProtocol, "CONTINUATION without HEADERS")
	}
	if f.StreamID != hr.pending.StreamID {
		return nil, connError(ErrCodeProtocol, "CONTINUATION on wrong stream")
	}
	if len(hr.frag)+len(f.BlockFragment) > hr.limit() {
		hr.pending = nil
		return nil, connError(ErrCodeEnhanceYourCalm, "header block too large")
	}
	hr.frag = append(hr.frag, f.BlockFragment...)
	if !f.EndHeaders() {
		return nil, nil
	}
	pending := hr.pending
	hr.pending = nil
	return hr.decode(pending, hr.frag)
}

func (hr *headerReader) decode(hf *HeadersFrame, block []byte) (*MetaHeadersFrame, error) {
	fields, err := hr.dec.DecodeFull(block)
	if err != nil {
		return nil, connError(ErrCodeCompression, err.Error())
	}
	if err := checkHeaderBlock(fields); err != nil {
		se := err.(StreamError)
		se.StreamID = hf.StreamID
		return nil, se
	}
	return &MetaHeadersFrame{HeadersFrame: hf, Fields: fields}, nil
}
