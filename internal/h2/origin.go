package h2

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// An OriginSet is the set of origins a connection is authoritative for,
// per RFC 8336 §2.3. The zero value is an empty, unusable set; use
// NewOriginSet, or let a ClientConn maintain one.
//
// Origins are stored in their ASCII serialization ("https://host[:port]",
// RFC 6454 §6.2) with the default port elided and the host lowercased.
type OriginSet struct {
	mu      sync.RWMutex
	origins map[string]struct{}

	// initialized reports whether an ORIGIN frame has been received.
	// Until then, RFC 8336 §2.3 says the set implicitly contains every
	// origin the connection would otherwise be considered authoritative
	// for; once a frame arrives the set becomes exactly its contents
	// (plus the origin of the connection itself, which clients add).
	initialized bool
}

// NewOriginSet returns an origin set seeded with the given origins.
func NewOriginSet(origins ...string) *OriginSet {
	s := &OriginSet{origins: make(map[string]struct{})}
	for _, o := range origins {
		if c, err := CanonicalOrigin(o); err == nil {
			s.origins[c] = struct{}{}
		}
	}
	if len(origins) > 0 {
		s.initialized = true
	}
	return s
}

// Initialized reports whether an ORIGIN frame has populated the set.
func (s *OriginSet) Initialized() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.initialized
}

// Replace installs the origins from an ORIGIN frame. Per RFC 8336 §2.3
// "The ORIGIN frame allows a sender to indicate what origins it would
// like the origin set to contain": each frame replaces the set. Invalid
// entries are skipped — clients are required to ignore what they cannot
// parse (fail-open).
func (s *OriginSet) Replace(origins []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.origins = make(map[string]struct{}, len(origins))
	for _, o := range origins {
		if c, err := CanonicalOrigin(o); err == nil {
			s.origins[c] = struct{}{}
		}
	}
	s.initialized = true
}

// Add inserts a single origin, e.g. the connection's own origin.
func (s *OriginSet) Add(origin string) {
	c, err := CanonicalOrigin(origin)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.origins == nil {
		s.origins = make(map[string]struct{})
	}
	s.origins[c] = struct{}{}
}

// Contains reports whether origin is in the set.
func (s *OriginSet) Contains(origin string) bool {
	c, err := CanonicalOrigin(origin)
	if err != nil {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.origins[c]
	return ok
}

// Len returns the number of origins in the set.
func (s *OriginSet) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.origins)
}

// All returns the sorted origins in the set.
func (s *OriginSet) All() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.origins))
	for o := range s.origins {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// CanonicalOrigin normalizes an origin or hostname to the RFC 6454 §6.2
// ASCII serialization with scheme https. Accepted inputs:
//
//	example.com            -> https://example.com
//	example.com:8443       -> https://example.com:8443
//	https://Example.COM:443 -> https://example.com
//
// Only https origins are meaningful for ORIGIN frames (RFC 8336 §2.1);
// any other scheme is rejected.
func CanonicalOrigin(in string) (string, error) {
	s := strings.TrimSpace(in)
	if s == "" {
		return "", fmt.Errorf("h2: empty origin")
	}
	scheme := "https"
	if i := strings.Index(s, "://"); i >= 0 {
		scheme = strings.ToLower(s[:i])
		s = s[i+3:]
	}
	if scheme != "https" {
		return "", fmt.Errorf("h2: origin scheme %q not coalescable", scheme)
	}
	if i := strings.IndexAny(s, "/?#"); i >= 0 {
		if strings.Trim(s[i:], "/") != "" {
			return "", fmt.Errorf("h2: origin %q has a path", in)
		}
		s = s[:i]
	}
	host, port := s, ""
	if i := strings.LastIndexByte(s, ':'); i >= 0 && !strings.Contains(s, "]") {
		host, port = s[:i], s[i+1:]
	} else if j := strings.LastIndex(s, "]:"); j >= 0 {
		host, port = s[:j+1], s[j+2:]
	}
	host = strings.ToLower(host)
	if host == "" {
		return "", fmt.Errorf("h2: origin %q missing host", in)
	}
	for _, r := range host {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' ||
			r == '.' || r == '-' || r == '[' || r == ']' || r == ':' || r == '_' {
			continue
		}
		return "", fmt.Errorf("h2: origin host %q has invalid character %q", host, r)
	}
	if port == "" || port == "443" {
		return scheme + "://" + host, nil
	}
	for _, r := range port {
		if r < '0' || r > '9' {
			return "", fmt.Errorf("h2: origin port %q invalid", port)
		}
	}
	return scheme + "://" + host + ":" + port, nil
}

// OriginHost extracts the host (without port) from a canonical origin.
func OriginHost(origin string) string {
	s := strings.TrimPrefix(origin, "https://")
	if i := strings.LastIndexByte(s, ':'); i >= 0 && !strings.HasSuffix(s, "]") {
		if !strings.Contains(s[i+1:], "]") {
			s = s[:i]
		}
	}
	return s
}
