package h2

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

// loopReader replays one encoded frame forever, so read benchmarks
// measure the parse path rather than buffer refills.
type loopReader struct {
	frame []byte
	off   int
}

func (lr *loopReader) Read(p []byte) (int, error) {
	n := copy(p, lr.frame[lr.off:])
	lr.off = (lr.off + n) % len(lr.frame)
	return n, nil
}

func encodeDataFrame(tb testing.TB, size int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	fr := NewFramer(&buf, nil)
	if err := fr.WriteData(1, false, make([]byte, size)); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkFramerReadFrame measures the steady-state frame read path
// across payload sizes. This is the regression gate for the read-buffer
// reuse fix: allocs/op must stay flat (zero) as frames grow, where the
// old code allocated a fresh payload buffer per frame.
func BenchmarkFramerReadFrame(b *testing.B) {
	for _, size := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			enc := encodeDataFrame(b, size)
			fr := NewFramer(io.Discard, &loopReader{frame: enc})
			fr.SetMaxReadFrameSize(1 << 20)
			b.SetBytes(int64(len(enc)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fr.ReadFrame(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFramerReadFrameMixed interleaves frame types so every cached
// frame struct in the frameCache is exercised.
func BenchmarkFramerReadFrameMixed(b *testing.B) {
	var buf bytes.Buffer
	w := NewFramer(&buf, nil)
	if err := w.WriteData(1, false, make([]byte, 512)); err != nil {
		b.Fatal(err)
	}
	if err := w.WriteWindowUpdate(1, 512); err != nil {
		b.Fatal(err)
	}
	if err := w.WritePing(false, [8]byte{1}); err != nil {
		b.Fatal(err)
	}
	if err := w.WriteSettings(Setting{ID: SettingInitialWindowSize, Val: 65535}); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	fr := NewFramer(io.Discard, &loopReader{frame: enc})
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 4; j++ {
			if _, err := fr.ReadFrame(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFramerWriteData measures the direct-into-wbuf write path.
func BenchmarkFramerWriteData(b *testing.B) {
	for _, size := range []int{64, 16384} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			fr := NewFramer(io.Discard, nil)
			data := make([]byte, size)
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := fr.WriteData(1, false, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFramerWriteControl measures the small-control-frame write
// path (the frames the read loop emits constantly).
func BenchmarkFramerWriteControl(b *testing.B) {
	fr := NewFramer(io.Discard, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fr.WriteWindowUpdate(1, 4096); err != nil {
			b.Fatal(err)
		}
		if err := fr.WritePing(true, [8]byte{}); err != nil {
			b.Fatal(err)
		}
		if err := fr.WriteSettingsAck(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFramerReadFrameNoAllocsSteadyState is the hard gate behind the
// benchmark: once the read buffer has grown to fit the stream's largest
// frame, ReadFrame must not allocate at all.
func TestFramerReadFrameNoAllocsSteadyState(t *testing.T) {
	for _, size := range []int{64, 1024, 16384} {
		enc := encodeDataFrame(t, size)
		fr := NewFramer(io.Discard, &loopReader{frame: enc})
		fr.SetMaxReadFrameSize(1 << 20)
		// Warm up: buffer growth and pool population happen here.
		for i := 0; i < 4; i++ {
			if _, err := fr.ReadFrame(); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := fr.ReadFrame(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("size %d: ReadFrame allocates %.1f per op in steady state, want 0", size, allocs)
		}
	}
}

// TestFramerWriteNoAllocsSteadyState: same gate for the write side.
func TestFramerWriteNoAllocsSteadyState(t *testing.T) {
	fr := NewFramer(io.Discard, nil)
	data := make([]byte, 16384)
	for i := 0; i < 4; i++ {
		if err := fr.WriteData(1, false, data); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := fr.WriteData(1, false, data); err != nil {
			t.Fatal(err)
		}
		if err := fr.WriteWindowUpdate(1, 4096); err != nil {
			t.Fatal(err)
		}
		if err := fr.WriteSettingsAck(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("write path allocates %.1f per op in steady state, want 0", allocs)
	}
}
