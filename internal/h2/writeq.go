package h2

import (
	"errors"
	"io"
	"sync"
	"time"
)

// asyncWriter decouples frame production from the transport: writes are
// appended to an in-memory queue drained by a single pump goroutine.
//
// This removes a whole class of deadlocks on synchronous transports
// (net.Pipe, the in-memory simulator): the read loop may emit control
// frames (SETTINGS acks, PING acks, WINDOW_UPDATE) without ever blocking
// on the peer's reader. Real kernels provide the equivalent buffering
// for TCP sockets.
//
// The queue is unbounded; connection owners rely on HTTP/2 flow control,
// not transport backpressure, to bound buffered data.
type asyncWriter struct {
	w io.Writer

	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	err    error
	closed bool
	done   chan struct{}

	// wdl, when non-nil, gets a write deadline of wtimeout armed before
	// every chunk the pump flushes, so a peer that stops reading cannot
	// wedge the pump (and with it Close) forever.
	wdl      interface{ SetWriteDeadline(time.Time) error }
	wtimeout time.Duration
}

// setWriteTimeout arms per-chunk write deadlines on c; zero d disarms.
func (aw *asyncWriter) setWriteTimeout(c interface{ SetWriteDeadline(time.Time) error }, d time.Duration) {
	aw.mu.Lock()
	aw.wdl = c
	aw.wtimeout = d
	aw.mu.Unlock()
}

func newAsyncWriter(w io.Writer) *asyncWriter {
	aw := &asyncWriter{w: w, done: make(chan struct{}), buf: getBuf(1 << bufPoolMinShift)}
	aw.cond = sync.NewCond(&aw.mu)
	go aw.pump()
	return aw
}

// Write queues p. It returns any error previously reported by the
// underlying writer; the data producing that error may have been queued
// earlier.
func (aw *asyncWriter) Write(p []byte) (int, error) {
	aw.mu.Lock()
	defer aw.mu.Unlock()
	if aw.err != nil {
		return 0, aw.err
	}
	if aw.closed {
		return 0, errors.New("h2: write on closed connection")
	}
	// Grow through the size-class pool so the queue buffer is recycled
	// across connections instead of re-grown from scratch each time.
	if need := len(aw.buf) + len(p); need > cap(aw.buf) {
		nb := getBuf(need)
		nb = append(nb, aw.buf...)
		putBuf(aw.buf)
		aw.buf = nb
	}
	aw.buf = append(aw.buf, p...)
	aw.cond.Signal()
	return len(p), nil
}

// Close stops the pump after draining queued data.
func (aw *asyncWriter) Close() error {
	aw.mu.Lock()
	if aw.closed {
		aw.mu.Unlock()
		<-aw.done
		return nil
	}
	aw.closed = true
	aw.cond.Signal()
	aw.mu.Unlock()
	<-aw.done
	return nil
}

func (aw *asyncWriter) pump() {
	defer close(aw.done)
	chunk := getBuf(1 << bufPoolMinShift)
	// Once the pump exits, Write refuses all data (err set or closed), so
	// both buffers are dead and can go back to the pool.
	defer func() {
		putBuf(chunk)
		aw.mu.Lock()
		putBuf(aw.buf)
		aw.buf = nil
		aw.mu.Unlock()
	}()
	for {
		aw.mu.Lock()
		for len(aw.buf) == 0 && !aw.closed && aw.err == nil {
			aw.cond.Wait()
		}
		if aw.err != nil || (aw.closed && len(aw.buf) == 0) {
			aw.mu.Unlock()
			return
		}
		if cap(chunk) < len(aw.buf) {
			putBuf(chunk)
			chunk = getBuf(len(aw.buf))
		}
		chunk = append(chunk[:0], aw.buf...)
		aw.buf = aw.buf[:0]
		wdl, wt := aw.wdl, aw.wtimeout
		aw.mu.Unlock()

		if wdl != nil && wt > 0 {
			_ = wdl.SetWriteDeadline(time.Now().Add(wt))
		}
		if _, err := aw.w.Write(chunk); err != nil {
			aw.mu.Lock()
			aw.err = err
			aw.mu.Unlock()
			return
		}
	}
}
