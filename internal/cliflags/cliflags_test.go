package cliflags

import (
	"os"
	"path/filepath"
	"testing"
)

func TestOpenOutputStdout(t *testing.T) {
	for _, path := range []string{"", "-"} {
		o, err := OpenOutput(path)
		if err != nil {
			t.Fatalf("OpenOutput(%q): %v", path, err)
		}
		if !o.Stdout() {
			t.Fatalf("OpenOutput(%q) did not resolve to stdout", path)
		}
		if err := o.Close(); err != nil {
			t.Fatalf("closing stdout output: %v", err)
		}
	}
}

func TestOpenOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.out")
	o, err := OpenOutput(path)
	if err != nil {
		t.Fatal(err)
	}
	if o.Stdout() {
		t.Fatal("file output reported as stdout")
	}
	if _, err := o.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil || string(raw) != "hi" {
		t.Fatalf("read back %q, %v", raw, err)
	}
	// Double close surfaces the file's error rather than hiding it.
	if err := o.Close(); err == nil {
		t.Fatal("second Close returned nil")
	}
}

func TestOpenOutputBadPath(t *testing.T) {
	if _, err := OpenOutput(filepath.Join(t.TempDir(), "no", "such", "dir", "x")); err == nil {
		t.Fatal("OpenOutput into a missing directory succeeded")
	}
}
