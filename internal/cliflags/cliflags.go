// Package cliflags centralizes the flag plumbing the binaries were
// each duplicating — the deterministic -seed, the -workers goroutine
// count, the -out destination with its "-"-for-stdout convention —
// so every command describes and parses them identically. Commands
// register only the flags they support; defaults stay per-command.
package cliflags

import (
	"flag"
	"io"
	"os"
)

// Seed registers -seed: the deterministic generator seed every
// reproducible run hangs off.
func Seed(def int64) *int64 {
	return flag.Int64("seed", def, "deterministic seed (same seed and flags => byte-identical output)")
}

// Workers registers -workers. Every consumer normalizes via
// internal/parallel, so values ≤ 0 select all cores and any count
// yields identical output.
func Workers(def int) *int {
	return flag.Int("workers", def, "worker goroutines (<=0 selects all cores; output is identical for any count)")
}

// Sites registers -sites, the corpus size.
func Sites(def int) *int {
	return flag.Int("sites", def, "number of ranked sites to attempt")
}

// Out registers -out; what names the artifact in the usage line.
func Out(def, what string) *string {
	return flag.String("out", def, "write "+what+" to this file (- for stdout)")
}

// Output is a resolved -out destination.
type Output struct {
	io.Writer
	file *os.File
}

// Stdout reports whether the destination is standard output.
func (o *Output) Stdout() bool { return o.file == nil }

// Close closes the underlying file and returns its error — on a full
// disk the close is where truncation surfaces, so callers must check
// it. Closing a stdout Output is a no-op.
func (o *Output) Close() error {
	if o.file == nil {
		return nil
	}
	return o.file.Close()
}

// OpenOutput resolves an -out value: "-" (or empty) is stdout,
// anything else is created fresh.
func OpenOutput(path string) (*Output, error) {
	if path == "" || path == "-" {
		return &Output{Writer: os.Stdout}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Output{Writer: f, file: f}, nil
}
