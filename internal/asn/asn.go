// Package asn provides an IP-to-ASN mapping database with
// longest-prefix-match lookup over a binary radix trie, standing in for
// the internal database the paper used to resolve destination IPs to
// origin autonomous systems (§3.1, §4.1).
//
// The trie stores IPv4 and IPv6 prefixes uniformly as bit strings; a
// lookup walks at most 128 levels and returns the most specific
// registered prefix containing the address.
package asn

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strings"
	"sync"
)

// ASN is an autonomous system number.
type ASN uint32

// Entry describes one registered prefix.
type Entry struct {
	Prefix netip.Prefix
	ASN    ASN
	Org    string
}

// DB maps IP addresses to autonomous systems.
type DB struct {
	mu   sync.RWMutex
	v4   *node
	v6   *node
	orgs map[ASN]string
	n    int
}

type node struct {
	children [2]*node
	entry    *Entry
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{v4: &node{}, v6: &node{}, orgs: make(map[ASN]string)}
}

// Add registers a prefix for an ASN. A more specific prefix added later
// wins for addresses it covers. Adding the same prefix twice overwrites.
func (db *DB) Add(prefix netip.Prefix, as ASN, org string) error {
	if !prefix.IsValid() {
		return fmt.Errorf("asn: invalid prefix %v", prefix)
	}
	prefix = prefix.Masked()
	db.mu.Lock()
	defer db.mu.Unlock()
	root := db.v4
	if prefix.Addr().Is6() {
		root = db.v6
	}
	bits := addrBits(prefix.Addr())
	n := root
	for i := 0; i < prefix.Bits(); i++ {
		b := bit(bits, i)
		if n.children[b] == nil {
			n.children[b] = &node{}
		}
		n = n.children[b]
	}
	if n.entry == nil {
		db.n++
	}
	n.entry = &Entry{Prefix: prefix, ASN: as, Org: org}
	if org != "" {
		db.orgs[as] = org
	}
	return nil
}

// Merge registers every entry of other into db. Overlapping or equal
// prefixes follow Add semantics (the merged entry overwrites), so
// merging shard databases left-to-right in shard order is deterministic.
// Organization names registered in other survive even when a prefix was
// overwritten there. Merging a database into itself is a no-op.
func (db *DB) Merge(other *DB) error {
	if other == nil || other == db {
		return nil
	}
	entries := other.Entries()
	other.mu.RLock()
	orgs := make(map[ASN]string, len(other.orgs))
	for as, org := range other.orgs {
		orgs[as] = org
	}
	other.mu.RUnlock()
	for _, e := range entries {
		if err := db.Add(e.Prefix, e.ASN, e.Org); err != nil {
			return err
		}
	}
	db.mu.Lock()
	for as, org := range orgs {
		if org != "" {
			db.orgs[as] = org
		}
	}
	db.mu.Unlock()
	return nil
}

// Len returns the number of registered prefixes.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.n
}

// Lookup returns the most specific entry covering addr.
func (db *DB) Lookup(addr netip.Addr) (Entry, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if addr.Is4In6() {
		addr = addr.Unmap()
	}
	root := db.v4
	maxBits := 32
	if addr.Is6() {
		root = db.v6
		maxBits = 128
	}
	bits := addrBits(addr)
	var best *Entry
	n := root
	for i := 0; ; i++ {
		if n.entry != nil {
			best = n.entry
		}
		if i >= maxBits {
			break
		}
		n = n.children[bit(bits, i)]
		if n == nil {
			break
		}
	}
	if best == nil {
		return Entry{}, false
	}
	return *best, true
}

// LookupASN is Lookup returning just the AS number (0 when unknown).
func (db *DB) LookupASN(addr netip.Addr) ASN {
	e, ok := db.Lookup(addr)
	if !ok {
		return 0
	}
	return e.ASN
}

// Org returns the organization name registered for an ASN.
func (db *DB) Org(as ASN) string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.orgs[as]
}

// Entries returns all registered entries sorted by prefix string.
func (db *DB) Entries() []Entry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Entry
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.entry != nil {
			out = append(out, *n.entry)
		}
		walk(n.children[0])
		walk(n.children[1])
	}
	walk(db.v4)
	walk(db.v6)
	// Each trie node stores at most one entry and sits at a distinct
	// prefix, so the keys are unique and the unstable sort is total.
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.String() < out[j].Prefix.String() })
	return out
}

// Load reads "prefix asn org-name..." lines (comments with #, blank
// lines skipped), the common interchange format for routing snapshots.
func (db *DB) Load(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	count := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return count, fmt.Errorf("asn: line %d: need 'prefix asn [org]'", line)
		}
		prefix, err := netip.ParsePrefix(fields[0])
		if err != nil {
			return count, fmt.Errorf("asn: line %d: %w", line, err)
		}
		var as ASN
		if _, err := fmt.Sscanf(strings.TrimPrefix(fields[1], "AS"), "%d", &as); err != nil {
			return count, fmt.Errorf("asn: line %d: bad ASN %q", line, fields[1])
		}
		org := ""
		if len(fields) > 2 {
			org = strings.Join(fields[2:], " ")
		}
		if err := db.Add(prefix, as, org); err != nil {
			return count, err
		}
		count++
	}
	return count, sc.Err()
}

func addrBits(a netip.Addr) []byte {
	if a.Is4() {
		v := a.As4()
		return v[:]
	}
	v := a.As16()
	return v[:]
}

func bit(bits []byte, i int) int {
	return int(bits[i/8]>>(7-i%8)) & 1
}
