package asn

import (
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

func TestLongestPrefixMatch(t *testing.T) {
	db := NewDB()
	db.Add(pfx("192.0.0.0/8"), 100, "Coarse")
	db.Add(pfx("192.0.2.0/24"), 200, "Fine")
	db.Add(pfx("192.0.2.128/25"), 300, "Finest")

	cases := []struct {
		addr string
		want ASN
	}{
		{"192.1.1.1", 100},
		{"192.0.2.5", 200},
		{"192.0.2.200", 300},
	}
	for _, c := range cases {
		if got := db.LookupASN(ip(c.addr)); got != c.want {
			t.Errorf("LookupASN(%s) = %d, want %d", c.addr, got, c.want)
		}
	}
	if _, ok := db.Lookup(ip("10.0.0.1")); ok {
		t.Error("found entry for unregistered space")
	}
}

func TestLookupIPv6(t *testing.T) {
	db := NewDB()
	db.Add(pfx("2001:db8::/32"), 64512, "DocNet")
	db.Add(pfx("2001:db8:ff::/48"), 64513, "DocNet-Fine")
	if got := db.LookupASN(ip("2001:db8::1")); got != 64512 {
		t.Errorf("v6 coarse = %d", got)
	}
	if got := db.LookupASN(ip("2001:db8:ff::9")); got != 64513 {
		t.Errorf("v6 fine = %d", got)
	}
	if got := db.LookupASN(ip("2002::1")); got != 0 {
		t.Errorf("unregistered v6 = %d", got)
	}
}

func TestV4MappedV6Unmapped(t *testing.T) {
	db := NewDB()
	db.Add(pfx("198.51.100.0/24"), 7, "Mapped")
	mapped := netip.AddrFrom16(netip.MustParseAddr("::ffff:198.51.100.9").As16())
	if got := db.LookupASN(mapped); got != 7 {
		t.Errorf("v4-mapped lookup = %d, want 7", got)
	}
}

func TestOverwriteSamePrefix(t *testing.T) {
	db := NewDB()
	db.Add(pfx("203.0.113.0/24"), 1, "One")
	db.Add(pfx("203.0.113.0/24"), 2, "Two")
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
	if got := db.LookupASN(ip("203.0.113.77")); got != 2 {
		t.Errorf("overwrite lost: %d", got)
	}
}

func TestOrgRegistry(t *testing.T) {
	db := NewDB()
	db.Add(pfx("192.0.2.0/24"), 13335, "Cloudflare")
	if db.Org(13335) != "Cloudflare" {
		t.Error("org lookup failed")
	}
	if db.Org(99999) != "" {
		t.Error("org for unknown ASN")
	}
}

func TestEntriesEnumeration(t *testing.T) {
	db := NewDB()
	db.Add(pfx("10.0.0.0/8"), 1, "A")
	db.Add(pfx("192.0.2.0/24"), 2, "B")
	db.Add(pfx("2001:db8::/32"), 3, "C")
	if got := len(db.Entries()); got != 3 {
		t.Errorf("entries = %d", got)
	}
}

func TestLoad(t *testing.T) {
	input := `
# comment
192.0.2.0/24 AS13335 Cloudflare Inc
198.51.100.0/24 15169 Google LLC

2001:db8::/32 AS64512
`
	db := NewDB()
	n, err := db.Load(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("loaded %d", n)
	}
	if db.LookupASN(ip("192.0.2.1")) != 13335 {
		t.Error("cloudflare prefix lost")
	}
	if db.Org(15169) != "Google LLC" {
		t.Errorf("org = %q", db.Org(15169))
	}
}

func TestLoadErrors(t *testing.T) {
	for _, bad := range []string{"nonsense", "192.0.2.0/24", "badprefix AS1", "192.0.2.0/24 ASxyz"} {
		db := NewDB()
		if _, err := db.Load(strings.NewReader(bad)); err == nil {
			t.Errorf("Load(%q) succeeded", bad)
		}
	}
}

func TestMergeOverlappingPrefixesAndDuplicateASNs(t *testing.T) {
	a := NewDB()
	a.Add(pfx("10.0.0.0/8"), 100, "CoarseA")
	a.Add(pfx("192.0.2.0/24"), 200, "SharedOrg")
	a.Add(pfx("198.51.100.0/24"), 300, "OnlyA")

	b := NewDB()
	// Equal prefix with a different ASN: merged entry must overwrite.
	b.Add(pfx("192.0.2.0/24"), 201, "Overwriter")
	// More specific prefix overlapping a's /8: both must survive, with
	// longest-prefix-match picking the finer one.
	b.Add(pfx("10.1.0.0/16"), 101, "FineB")
	// Duplicate ASN under a different prefix: both prefixes map to it.
	b.Add(pfx("203.0.113.0/24"), 300, "OnlyA")

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.LookupASN(ip("192.0.2.9")); got != 201 {
		t.Errorf("equal prefix not overwritten: AS%d", got)
	}
	if got := a.LookupASN(ip("10.1.2.3")); got != 101 {
		t.Errorf("finer merged prefix lost: AS%d", got)
	}
	if got := a.LookupASN(ip("10.200.0.1")); got != 100 {
		t.Errorf("coarse original prefix lost: AS%d", got)
	}
	for _, addr := range []string{"198.51.100.7", "203.0.113.7"} {
		if got := a.LookupASN(ip(addr)); got != 300 {
			t.Errorf("duplicate-ASN prefix %s -> AS%d, want 300", addr, got)
		}
	}
	if a.Len() != 5 {
		t.Errorf("Len = %d, want 5", a.Len())
	}
	if a.Org(201) != "Overwriter" || a.Org(300) != "OnlyA" {
		t.Errorf("orgs after merge: %q %q", a.Org(201), a.Org(300))
	}
	// b is untouched by the merge.
	if b.Len() != 3 || b.LookupASN(ip("10.200.0.1")) != 0 {
		t.Error("merge mutated the source database")
	}
}

func TestMergeSelfAndNil(t *testing.T) {
	db := NewDB()
	db.Add(pfx("192.0.2.0/24"), 1, "X")
	if err := db.Merge(db); err != nil {
		t.Fatal(err)
	}
	if err := db.Merge(nil); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d after self/nil merge", db.Len())
	}
}

// Merging shard databases left-to-right equals registering everything
// into one database in shard order — the corpus shard-merge invariant.
func TestMergeEquivalentToSequentialAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type reg struct {
		p   netip.Prefix
		as  ASN
		org string
	}
	var regs []reg
	for i := 0; i < 300; i++ {
		a := netip.AddrFrom4([4]byte{byte(rng.Intn(223) + 1), byte(rng.Intn(64)), 0, 0})
		regs = append(regs, reg{netip.PrefixFrom(a, 16).Masked(), ASN(rng.Intn(50) + 1), "Org"})
	}
	seq := NewDB()
	for _, r := range regs {
		seq.Add(r.p, r.as, r.org)
	}
	merged := NewDB()
	for lo := 0; lo < len(regs); lo += 100 {
		shard := NewDB()
		for _, r := range regs[lo : lo+100] {
			shard.Add(r.p, r.as, r.org)
		}
		if err := merged.Merge(shard); err != nil {
			t.Fatal(err)
		}
	}
	se, me := seq.Entries(), merged.Entries()
	if len(se) != len(me) {
		t.Fatalf("entry counts differ: %d vs %d", len(se), len(me))
	}
	for i := range se {
		if se[i] != me[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, se[i], me[i])
		}
	}
}

// Property: for random /16s and addresses inside them, lookup returns
// the registered entry, and containment always holds.
func TestLookupPropertyQuick(t *testing.T) {
	db := NewDB()
	rng := rand.New(rand.NewSource(7))
	type reg struct {
		p  netip.Prefix
		as ASN
	}
	var regs []reg
	for i := 0; i < 200; i++ {
		a := netip.AddrFrom4([4]byte{byte(rng.Intn(223) + 1), byte(rng.Intn(256)), 0, 0})
		p := netip.PrefixFrom(a, 16).Masked()
		as := ASN(i + 1)
		db.Add(p, as, "")
		regs = append(regs, reg{p, as})
	}
	f := func(i uint16, lo uint16) bool {
		r := regs[int(i)%len(regs)]
		base := r.p.Addr().As4()
		addr := netip.AddrFrom4([4]byte{base[0], base[1], byte(lo >> 8), byte(lo)})
		e, ok := db.Lookup(addr)
		return ok && e.Prefix.Contains(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
