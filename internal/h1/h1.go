// Package h1 is a minimal HTTP/1.1 implementation (RFC 9112): a
// keep-alive server and a persistent-connection client over any
// net.Conn.
//
// It exists as the baseline the paper's background contrasts with
// (§1–2): HTTP/1.1 processes one request per connection at a time, so
// pages shard resources across hostnames to trick browsers into opening
// parallel connections — exactly the practice connection coalescing
// unwinds. The benchmarks race this substrate against the h2 package on
// identical workloads.
package h1

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// maxHeaderBytes bounds request/response header sections.
const maxHeaderBytes = 1 << 20

// Request is a parsed HTTP/1.1 request.
type Request struct {
	Method string
	Target string
	Proto  string
	Header map[string]string // lower-cased field names
	Body   []byte
	Host   string
}

// Response is a parsed HTTP/1.1 response.
type Response struct {
	Status int
	Header map[string]string
	Body   []byte
}

// Handler responds to requests.
type Handler interface {
	ServeHTTP1(w *ResponseWriter, r *Request)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(w *ResponseWriter, r *Request)

// ServeHTTP1 calls f.
func (f HandlerFunc) ServeHTTP1(w *ResponseWriter, r *Request) { f(w, r) }

// Server serves HTTP/1.1 connections.
type Server struct {
	Handler Handler
}

// ServeConn handles one keep-alive connection until EOF, "Connection:
// close", or a parse error.
func (s *Server) ServeConn(nc net.Conn) error {
	defer nc.Close()
	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)
	for {
		req, err := ReadRequest(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		w := &ResponseWriter{bw: bw}
		s.Handler.ServeHTTP1(w, req)
		if err := w.finish(); err != nil {
			return err
		}
		if strings.EqualFold(req.Header["connection"], "close") {
			return nil
		}
	}
}

// ReadRequest parses one request from br.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 {
		return nil, fmt.Errorf("h1: malformed request line %q", line)
	}
	req := &Request{Method: parts[0], Target: parts[1], Proto: parts[2], Header: map[string]string{}}
	if req.Proto != "HTTP/1.1" && req.Proto != "HTTP/1.0" {
		return nil, fmt.Errorf("h1: unsupported protocol %q", req.Proto)
	}
	if err := readHeaders(br, req.Header); err != nil {
		return nil, err
	}
	req.Host = req.Header["host"]
	if req.Host == "" && req.Proto == "HTTP/1.1" {
		return nil, errors.New("h1: HTTP/1.1 request without Host")
	}
	if cl := req.Header["content-length"]; cl != "" {
		n, err := strconv.Atoi(cl)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("h1: bad content-length %q", cl)
		}
		req.Body = make([]byte, n)
		if _, err := io.ReadFull(br, req.Body); err != nil {
			return nil, err
		}
	}
	return req, nil
}

// ResponseWriter accumulates one response.
type ResponseWriter struct {
	bw     *bufio.Writer
	status int
	header map[string]string
	body   bytes.Buffer
}

// WriteHeader sets the status code; the first call wins.
func (w *ResponseWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
}

// SetHeader sets a response header field.
func (w *ResponseWriter) SetHeader(name, value string) {
	if w.header == nil {
		w.header = map[string]string{}
	}
	w.header[strings.ToLower(name)] = value
}

// Write appends body bytes (buffered; Content-Length framing).
func (w *ResponseWriter) Write(p []byte) (int, error) { return w.body.Write(p) }

func (w *ResponseWriter) finish() error {
	if w.status == 0 {
		w.status = 200
	}
	fmt.Fprintf(w.bw, "HTTP/1.1 %d %s\r\n", w.status, statusText(w.status))
	keys := make([]string, 0, len(w.header))
	for k := range w.header {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w.bw, "%s: %s\r\n", k, w.header[k])
	}
	fmt.Fprintf(w.bw, "content-length: %d\r\n\r\n", w.body.Len())
	if _, err := w.bw.Write(w.body.Bytes()); err != nil {
		return err
	}
	return w.bw.Flush()
}

// Client is a persistent HTTP/1.1 connection. Requests are strictly
// sequential: HTTP/1.1 has no multiplexing, which is the whole point
// of the comparison.
type Client struct {
	mu sync.Mutex
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// NewClient wraps an established connection.
func NewClient(nc net.Conn) *Client {
	return &Client{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.nc.Close() }

// Get performs a blocking GET; the next request cannot start until the
// response fully arrives (head-of-line blocking by construction).
func (c *Client) Get(host, path string) (*Response, error) {
	return c.Do("GET", host, path, nil)
}

// Do performs one request/response exchange.
func (c *Client) Do(method, host, path string, body []byte) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(c.bw, "%s %s HTTP/1.1\r\nhost: %s\r\n", method, path, host)
	if len(body) > 0 {
		fmt.Fprintf(c.bw, "content-length: %d\r\n", len(body))
	}
	io.WriteString(c.bw, "\r\n")
	c.bw.Write(body)
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	return readResponse(c.br)
}

func readResponse(br *bufio.Reader) (*Response, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return nil, fmt.Errorf("h1: malformed status line %q", line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("h1: bad status %q", parts[1])
	}
	resp := &Response{Status: status, Header: map[string]string{}}
	if err := readHeaders(br, resp.Header); err != nil {
		return nil, err
	}
	if cl := resp.Header["content-length"]; cl != "" {
		n, err := strconv.Atoi(cl)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("h1: bad content-length %q", cl)
		}
		resp.Body = make([]byte, n)
		if _, err := io.ReadFull(br, resp.Body); err != nil {
			return nil, err
		}
	}
	return resp, nil
}

func readHeaders(br *bufio.Reader, dst map[string]string) error {
	total := 0
	for {
		line, err := readLine(br)
		if err != nil {
			return err
		}
		if line == "" {
			return nil
		}
		total += len(line)
		if total > maxHeaderBytes {
			return errors.New("h1: header section too large")
		}
		i := strings.IndexByte(line, ':')
		if i <= 0 {
			return fmt.Errorf("h1: malformed header %q", line)
		}
		name := strings.ToLower(strings.TrimSpace(line[:i]))
		dst[name] = strings.TrimSpace(line[i+1:])
	}
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		if err == io.EOF && line == "" {
			return "", io.EOF
		}
		if err == io.EOF {
			return "", io.ErrUnexpectedEOF
		}
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 204:
		return "No Content"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 421:
		return "Misdirected Request"
	case 500:
		return "Internal Server Error"
	default:
		return "Status"
	}
}
