package h1

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func startH1(t *testing.T, h Handler) (*Client, func()) {
	t.Helper()
	cn, sn := net.Pipe()
	done := make(chan error, 1)
	srv := &Server{Handler: h}
	go func() { done <- srv.ServeConn(sn) }()
	c := NewClient(cn)
	return c, func() {
		c.Close()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Error("server did not exit")
		}
	}
}

func echo() Handler {
	return HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.SetHeader("content-type", "text/plain")
		w.SetHeader("x-host", r.Host)
		fmt.Fprintf(w, "%s %s", r.Method, r.Target)
		w.Write(r.Body)
	})
}

func TestGetRoundTrip(t *testing.T) {
	c, stop := startH1(t, echo())
	defer stop()
	resp, err := c.Get("www.example.com", "/page")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "GET /page" {
		t.Errorf("resp = %d %q", resp.Status, resp.Body)
	}
	if resp.Header["x-host"] != "www.example.com" {
		t.Errorf("x-host = %q", resp.Header["x-host"])
	}
}

func TestKeepAliveSequentialRequests(t *testing.T) {
	c, stop := startH1(t, echo())
	defer stop()
	for i := 0; i < 20; i++ {
		path := fmt.Sprintf("/req/%d", i)
		resp, err := c.Get("h.example", path)
		if err != nil {
			t.Fatal(err)
		}
		if string(resp.Body) != "GET "+path {
			t.Fatalf("body = %q", resp.Body)
		}
	}
}

func TestPostBody(t *testing.T) {
	c, stop := startH1(t, echo())
	defer stop()
	body := strings.Repeat("d", 5000)
	resp, err := c.Do("POST", "h.example", "/up", []byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "POST /up"+body {
		t.Errorf("body len = %d", len(resp.Body))
	}
}

func TestMissingHostRejected(t *testing.T) {
	cn, sn := net.Pipe()
	srv := &Server{Handler: echo()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ServeConn(sn) }()
	fmt.Fprintf(cn, "GET / HTTP/1.1\r\n\r\n")
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("host-less HTTP/1.1 request accepted")
		}
	case <-time.After(2 * time.Second):
		t.Error("server hung")
	}
	cn.Close()
}

func TestMalformedRequestLine(t *testing.T) {
	for _, bad := range []string{"GARBAGE\r\n\r\n", "GET /\r\n\r\n", "GET / SPDY/3\r\n\r\n"} {
		br := bufio.NewReader(strings.NewReader(bad))
		if _, err := ReadRequest(br); err == nil {
			t.Errorf("ReadRequest(%q) succeeded", bad)
		}
	}
}

func TestBadContentLength(t *testing.T) {
	br := bufio.NewReader(strings.NewReader("GET / HTTP/1.1\r\nhost: x\r\ncontent-length: -5\r\n\r\n"))
	if _, err := ReadRequest(br); err == nil {
		t.Error("negative content-length accepted")
	}
	br = bufio.NewReader(strings.NewReader("GET / HTTP/1.1\r\nhost: x\r\ncontent-length: abc\r\n\r\n"))
	if _, err := ReadRequest(br); err == nil {
		t.Error("non-numeric content-length accepted")
	}
}

func TestConnectionClose(t *testing.T) {
	cn, sn := net.Pipe()
	srv := &Server{Handler: echo()}
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(sn) }()
	c := NewClient(cn)
	fmt.Fprintf(c.bw, "GET / HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n")
	c.bw.Flush()
	resp, err := readResponse(c.br)
	if err != nil || resp.Status != 200 {
		t.Fatalf("resp = %v err = %v", resp, err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("server exit = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Error("server ignored connection: close")
	}
	cn.Close()
}

func TestHeaderRoundTripQuick(t *testing.T) {
	f := func(rawName, rawValue string) bool {
		name := sanitizeToken(rawName)
		value := sanitizeValue(rawValue)
		if name == "" {
			return true
		}
		input := fmt.Sprintf("GET / HTTP/1.1\r\nhost: h\r\n%s: %s\r\n\r\n", name, value)
		req, err := ReadRequest(bufio.NewReader(strings.NewReader(input)))
		if err != nil {
			return false
		}
		return req.Header[strings.ToLower(name)] == value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sanitizeToken(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '-' {
			b.WriteRune(r)
		}
		if b.Len() >= 30 {
			break
		}
	}
	return b.String()
}

func sanitizeValue(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 0x21 && r <= 0x7e && r != ':' {
			b.WriteRune(r)
		}
		if b.Len() >= 60 {
			break
		}
	}
	return strings.TrimSpace(b.String())
}

func TestHeadOfLineBlockingByConstruction(t *testing.T) {
	// A slow response delays the next request on the same connection —
	// the §1 motivation for sharding.
	slow := HandlerFunc(func(w *ResponseWriter, r *Request) {
		if r.Target == "/slow" {
			time.Sleep(60 * time.Millisecond)
		}
		w.Write([]byte(r.Target))
	})
	c, stop := startH1(t, slow)
	defer stop()
	start := time.Now()
	if _, err := c.Get("h.example", "/slow"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("h.example", "/fast"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("requests overlapped: %v", elapsed)
	}
}
