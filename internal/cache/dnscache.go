package cache

import (
	"net/netip"
	"strconv"
	"sync"
)

// DNSTransport tags a DNS cache entry with the resolver transport that
// produced it. Answers are not interchangeable across transports: a
// Do53 NXDOMAIN says nothing about what the DoH resolver would answer
// (different resolver, different view, different filtering), so when a
// sweep toggles resolver transport mid-run, entries minted under one
// transport must never be served to lookups under the other.
type DNSTransport uint8

// Resolver transports.
const (
	// TransportDo53 is classic UDP/TCP port-53 resolution — the zero
	// value, so every historical call site keys its entries here and
	// behaviour stays byte-identical.
	TransportDo53 DNSTransport = iota
	// TransportDoH is RFC 8484 DNS-over-HTTPS resolution.
	TransportDoH
)

func (t DNSTransport) String() string {
	switch t {
	case TransportDo53:
		return "do53"
	case TransportDoH:
		return "doh"
	default:
		return "unknown"
	}
}

// DNSCache is a TTL-aware answer cache with an LRU capacity bound.
// Entries are keyed by (transport, name, query type); both positive
// answers and negative results (failed lookups) are stored. Eviction
// order is deterministic: the least recently used entry goes first,
// and "use" means a non-expired Get or a Put. All transports share one
// capacity bound — a client has one DNS cache, however it resolves.
type DNSCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*dnsEntry

	// Intrusive LRU list: head is most recent, tail is next to evict.
	head, tail *dnsEntry

	hits, negHits, misses, expired, evictions int64
}

type dnsEntry struct {
	key       string
	addrs     []netip.Addr
	negative  bool
	expiresMs int64

	prev, next *dnsEntry
}

func newDNSCache(capacity int) *DNSCache {
	return &DNSCache{capacity: capacity, entries: make(map[string]*dnsEntry)}
}

// dnsKey builds the cache key for a (transport, name, type) question.
func dnsKey(t DNSTransport, name string, typ uint16) string {
	return strconv.Itoa(int(t)) + "/" + strconv.Itoa(int(typ)) + "/" + name
}

// Get returns the cached Do53-transport answer for (name, typ); see
// GetVia for the transport-keyed form.
func (d *DNSCache) Get(name string, typ uint16, nowMs int64) (addrs []netip.Addr, negative, ok bool) {
	return d.GetVia(TransportDo53, name, typ, nowMs)
}

// GetVia returns the cached answer for (transport, name, typ) at
// simulated time nowMs. negative reports a cached failure; ok is false
// on a miss. An entry whose deadline equals nowMs is already expired:
// TTLs are "seconds remaining", so at the instant the budget reaches
// zero the answer may no longer be served. Entries minted under a
// different transport never match.
func (d *DNSCache) GetVia(t DNSTransport, name string, typ uint16, nowMs int64) (addrs []netip.Addr, negative, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, found := d.entries[d.canon(t, name, typ)]
	if !found {
		d.misses++
		return nil, false, false
	}
	if nowMs >= e.expiresMs {
		d.remove(e)
		d.misses++
		d.expired++
		return nil, false, false
	}
	d.touch(e)
	if e.negative {
		d.negHits++
		return nil, true, true
	}
	d.hits++
	return append([]netip.Addr(nil), e.addrs...), false, true
}

// Put stores a positive Do53-transport answer; see PutVia.
func (d *DNSCache) Put(name string, typ uint16, addrs []netip.Addr, ttlSeconds uint32, nowMs int64) {
	d.PutVia(TransportDo53, name, typ, addrs, ttlSeconds, nowMs)
}

// PutVia stores a positive answer under its resolver transport with
// the given TTL. Zero-TTL answers are uncacheable and dropped on the
// floor (they would expire at the very instant of the next lookup
// anyway).
func (d *DNSCache) PutVia(t DNSTransport, name string, typ uint16, addrs []netip.Addr, ttlSeconds uint32, nowMs int64) {
	if ttlSeconds == 0 || len(addrs) == 0 {
		return
	}
	d.put(&dnsEntry{
		key:       d.canon(t, name, typ),
		addrs:     append([]netip.Addr(nil), addrs...),
		expiresMs: nowMs + int64(ttlSeconds)*1000,
	})
}

// PutNegative stores a failed Do53-transport lookup; see PutNegativeVia.
func (d *DNSCache) PutNegative(name string, typ uint16, ttlSeconds uint32, nowMs int64) {
	d.PutNegativeVia(TransportDo53, name, typ, ttlSeconds, nowMs)
}

// PutNegativeVia stores a failed lookup under its resolver transport
// with the given negative TTL.
func (d *DNSCache) PutNegativeVia(t DNSTransport, name string, typ uint16, ttlSeconds uint32, nowMs int64) {
	if ttlSeconds == 0 {
		return
	}
	d.put(&dnsEntry{
		key:       d.canon(t, name, typ),
		negative:  true,
		expiresMs: nowMs + int64(ttlSeconds)*1000,
	})
}

func (d *DNSCache) put(e *dnsEntry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if old, ok := d.entries[e.key]; ok {
		d.remove(old)
	}
	d.entries[e.key] = e
	d.pushFront(e)
	for len(d.entries) > d.capacity {
		d.remove(d.tail)
		d.evictions++
	}
}

// Len reports the current entry count.
func (d *DNSCache) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

func (d *DNSCache) canon(t DNSTransport, name string, typ uint16) string {
	return dnsKey(t, canonical(name), typ)
}

// canonical lower-cases a hostname and strips one trailing dot,
// mirroring the dns package's canonicalName without importing it.
func canonical(name string) string {
	if n := len(name); n > 0 && name[n-1] == '.' {
		name = name[:n-1]
	}
	lower := true
	for i := 0; i < len(name); i++ {
		if c := name[i]; 'A' <= c && c <= 'Z' {
			lower = false
			break
		}
	}
	if lower {
		return name
	}
	b := []byte(name)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// --- intrusive LRU list (callers hold d.mu) ---

func (d *DNSCache) pushFront(e *dnsEntry) {
	e.prev, e.next = nil, d.head
	if d.head != nil {
		d.head.prev = e
	}
	d.head = e
	if d.tail == nil {
		d.tail = e
	}
}

func (d *DNSCache) unlink(e *dnsEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		d.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		d.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (d *DNSCache) remove(e *dnsEntry) {
	d.unlink(e)
	delete(d.entries, e.key)
}

func (d *DNSCache) touch(e *dnsEntry) {
	d.unlink(e)
	d.pushFront(e)
}

func (d *DNSCache) addStats(s *Stats) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s.DNSHits += d.hits
	s.DNSNegativeHits += d.negHits
	s.DNSMisses += d.misses
	s.DNSExpired += d.expired
	s.DNSEvictions += d.evictions
}
