package cache

import (
	"net/netip"
	"testing"
)

func ip(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestDNSCacheTTLExpiryBoundary(t *testing.T) {
	c := New(Options{})
	c.PutDNS("a.example", []netip.Addr{ip("192.0.2.1")}, 5) // expires at t=5000ms

	if _, _, ok := c.LookupDNS("a.example"); !ok {
		t.Fatal("fresh entry should hit")
	}
	c.Clock().AdvanceMs(4999)
	if _, _, ok := c.LookupDNS("a.example"); !ok {
		t.Fatal("entry one ms before expiry should hit")
	}
	c.Clock().AdvanceMs(1) // now exactly at the expiry instant
	if _, _, ok := c.LookupDNS("a.example"); ok {
		t.Fatal("entry expiring exactly at the lookup instant must miss")
	}
	s := c.Stats()
	if s.DNSHits != 2 || s.DNSMisses != 1 || s.DNSExpired != 1 {
		t.Fatalf("stats = %+v, want 2 hits, 1 miss, 1 expired", s)
	}
}

func TestDNSCacheZeroTTLNotCached(t *testing.T) {
	c := New(Options{})
	c.PutDNS("zero.example", []netip.Addr{ip("192.0.2.2")}, 0)
	if c.DNS.Len() != 0 {
		t.Fatal("zero-TTL answer must not be cached")
	}
	if _, _, ok := c.LookupDNS("zero.example"); ok {
		t.Fatal("zero-TTL answer must miss on the next lookup")
	}
}

func TestDNSCacheNegativeHit(t *testing.T) {
	c := New(Options{NegativeTTLSeconds: 30})
	c.PutNegativeDNS("missing.example")
	_, negative, ok := c.LookupDNS("missing.example")
	if !ok || !negative {
		t.Fatalf("negative entry: ok=%v negative=%v, want hit on previously failed name", ok, negative)
	}
	c.Clock().AdvanceMs(30_000)
	if _, _, ok := c.LookupDNS("missing.example"); ok {
		t.Fatal("negative entry must expire at its deadline")
	}
	if s := c.Stats(); s.DNSNegativeHits != 1 {
		t.Fatalf("DNSNegativeHits = %d, want 1", s.DNSNegativeHits)
	}
}

func TestDNSCacheLRUEvictionDeterministic(t *testing.T) {
	c := New(Options{DNSCapacity: 2})
	a := []netip.Addr{ip("192.0.2.3")}
	c.PutDNS("one.example", a, 300)
	c.PutDNS("two.example", a, 300)
	// Touch "one" so "two" becomes least recently used.
	if _, _, ok := c.LookupDNS("one.example"); !ok {
		t.Fatal("one.example should hit")
	}
	c.PutDNS("three.example", a, 300) // evicts "two"
	if _, _, ok := c.LookupDNS("two.example"); ok {
		t.Fatal("LRU entry two.example should have been evicted")
	}
	if _, _, ok := c.LookupDNS("one.example"); !ok {
		t.Fatal("recently used one.example should survive")
	}
	if _, _, ok := c.LookupDNS("three.example"); !ok {
		t.Fatal("new three.example should be present")
	}
	if s := c.Stats(); s.DNSEvictions != 1 {
		t.Fatalf("DNSEvictions = %d, want 1", s.DNSEvictions)
	}
}

func TestDNSCacheCaseAndDotInsensitive(t *testing.T) {
	c := New(Options{})
	c.PutDNS("WWW.Example.COM.", []netip.Addr{ip("192.0.2.9")}, 60)
	if _, _, ok := c.LookupDNS("www.example.com"); !ok {
		t.Fatal("lookup must canonicalize names like the resolver does")
	}
}

func TestTicketResumptionAcrossHostnames(t *testing.T) {
	c := New(Options{TicketLifetimeSeconds: 100})
	c.StoreTicket([]string{"www.zone.example", "cdnjs.cloudflare.com", "*.shared.example"})

	if !c.RedeemTicket("cdnjs.cloudflare.com") {
		t.Fatal("ticket must resume any hostname its certificate covers")
	}
	if !c.RedeemTicket("a.shared.example") {
		t.Fatal("wildcard coverage must allow resumption")
	}
	if c.RedeemTicket("b.c.shared.example") {
		t.Fatal("wildcard matches exactly one label")
	}
	if c.RedeemTicket("other.example") {
		t.Fatal("uncovered host must not resume")
	}
}

func TestTicketLifetimeAndSingleUse(t *testing.T) {
	c := New(Options{TicketLifetimeSeconds: 10, SingleUseTickets: true})
	c.StoreTicket([]string{"h.example"})
	if !c.RedeemTicket("h.example") {
		t.Fatal("first redemption should succeed")
	}
	if c.RedeemTicket("h.example") {
		t.Fatal("single-use ticket must be consumed by redemption")
	}
	c.StoreTicket([]string{"h.example"})
	c.Clock().AdvanceMs(10_000) // exactly the lifetime: dead
	if c.RedeemTicket("h.example") {
		t.Fatal("ticket expiring exactly at redemption instant must miss")
	}

	// TicketsDisabled turns the store off entirely.
	off := New(Options{TicketLifetimeSeconds: TicketsDisabled})
	if off.Tickets.Enabled() {
		t.Fatal("zero ticket lifetime must disable resumption")
	}
	off.StoreTicket([]string{"h.example"})
	if off.RedeemTicket("h.example") {
		t.Fatal("disabled store must never resume")
	}
}

func TestCertMemo(t *testing.T) {
	c := New(Options{})
	sans := []string{"b.example", "a.example"}
	if c.ValidateChain("CA", sans) {
		t.Fatal("first validation of a chain is a miss")
	}
	// SAN order must not matter: same chain, reordered list.
	if !c.ValidateChain("CA", []string{"a.example", "b.example"}) {
		t.Fatal("second validation of the same chain must hit the memo")
	}
	if c.ValidateChain("OtherCA", sans) {
		t.Fatal("a different issuer is a different chain")
	}
	if s := c.Stats(); s.ChainHits != 1 || s.ChainMisses != 2 {
		t.Fatalf("chain stats = %+v, want 1 hit / 2 misses", s)
	}
}

func TestStatsMergeAssociative(t *testing.T) {
	a := Stats{DNSHits: 1, TicketHits: 2, ChainMisses: 3}
	b := Stats{DNSHits: 10, DNSEvictions: 4, TicketsIssued: 5}
	c := Stats{DNSNegativeHits: 7, ChainHits: 8}

	ab := a
	ab.Merge(b)
	abc1 := ab
	abc1.Merge(c)

	bc := b
	bc.Merge(c)
	abc2 := a
	abc2.Merge(bc)

	if abc1 != abc2 {
		t.Fatalf("merge not associative: %+v vs %+v", abc1, abc2)
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	if c.Enabled() {
		t.Fatal("nil cache must report disabled")
	}
	c.PutDNS("x", []netip.Addr{ip("192.0.2.1")}, 300)
	if _, _, ok := c.LookupDNS("x"); ok {
		t.Fatal("nil cache must miss")
	}
	c.PutNegativeDNS("x")
	c.StoreTicket([]string{"x"})
	if c.RedeemTicket("x") {
		t.Fatal("nil cache must not resume")
	}
	if c.ValidateChain("CA", []string{"x"}) {
		t.Fatal("nil cache must not memoize")
	}
	c.Clock().AdvanceMs(1000) // must not panic
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", s)
	}
}
