package cache

import "sync"

// TokenStore models QUIC address-validation tokens (RFC 9000 §8.1.3
// NEW_TOKEN): a server that has validated a client's address hands it a
// token, and presenting a live token on a later connection lets the
// server skip the Retry round trip. Following the shared-address-
// validation proposal ("Surfing the Web quicker than QUIC via a shared
// Address Validation"), tokens are keyed by certificate SAN coverage
// exactly like session tickets, so one token covers every hostname of
// the issuing deployment and a revisit to any covered host skips the
// validation RTT — the address being validated is the client's, not
// the server's, so sharing across a provider's hostnames is sound.
//
// Tokens are additionally keyed by wire protocol: only QUIC mints or
// redeems them, and the exact-match discipline mirrors the ticket
// store's, so warm state can never leak across protocol versions.
// Unlike single-use TLS 1.3 tickets, a token serves until it expires
// (the shared-validation model re-presents one token across
// connections); redemption scans oldest-first so two runs with the
// same visit schedule redeem identically.
type TokenStore struct {
	mu         sync.Mutex
	lifetimeMs int64 // 0 disables the store
	tokens     []token

	issued, hits, misses, expiredN int64
}

type token struct {
	sans      []string
	expiresMs int64
	proto     int
}

func newTokenStore(lifetimeMs int64) *TokenStore {
	return &TokenStore{lifetimeMs: lifetimeMs}
}

// Enabled reports whether tokens are issued at all.
func (t *TokenStore) Enabled() bool { return t.lifetimeMs > 0 }

// Store issues an address-validation token for a connection whose
// certificate carries the given SANs, keyed by the wire protocol that
// minted it.
func (t *TokenStore) Store(sans []string, proto int, nowMs int64) {
	if !t.Enabled() || len(sans) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.issued++
	t.tokens = append(t.tokens, token{
		sans:      append([]string(nil), sans...),
		expiresMs: nowMs + t.lifetimeMs,
		proto:     proto,
	})
}

// Redeem reports whether a live token minted under the same wire
// protocol covers host, dropping expired tokens encountered during the
// scan. A token expiring exactly at nowMs is dead. Redemption does not
// consume the token.
func (t *TokenStore) Redeem(host string, proto int, nowMs int64) bool {
	if !t.Enabled() {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.tokens[:0]
	hit := false
	for _, tk := range t.tokens {
		if nowMs >= tk.expiresMs {
			t.expiredN++
			continue
		}
		if !hit && tk.proto == proto && SANsCover(tk.sans, host) {
			hit = true
		}
		kept = append(kept, tk)
	}
	t.tokens = kept
	if hit {
		t.hits++
	} else {
		t.misses++
	}
	return hit
}

// Len reports the live token count (expired tokens may linger until the
// next Redeem scan).
func (t *TokenStore) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.tokens)
}

func (t *TokenStore) addStats(s *Stats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s.TokensIssued += t.issued
	s.TokenHits += t.hits
	s.TokenMisses += t.misses
	s.TokensExpired += t.expiredN
}
