package cache

import (
	"net/netip"
	"sort"
	"sync"
)

// CertMemo remembers which certificate chains this client has already
// validated, keyed by chain hash. A fresh TLS handshake presenting a
// chain the memo has seen skips the cryptographic validation — the
// "cert validations saved" component of the paper's Figure 3 metrics.
// Validation results have no TTL here: within a warm/cold visit
// sequence the chains' validity windows dwarf the simulated horizon.
type CertMemo struct {
	mu   sync.Mutex
	seen map[uint64]bool

	hits, misses int64
}

func newCertMemo() *CertMemo {
	return &CertMemo{seen: make(map[uint64]bool)}
}

// Validate records one validation of the chain with the given hash and
// reports whether it was a memo hit (validation skipped) or a miss (a
// full validation performed and memoized).
func (m *CertMemo) Validate(chainHash uint64) (hit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.seen[chainHash] {
		m.hits++
		return true
	}
	m.seen[chainHash] = true
	m.misses++
	return false
}

// Seen reports whether the chain has been validated before, without
// recording anything.
func (m *CertMemo) Seen(chainHash uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seen[chainHash]
}

// Len reports how many distinct chains have been validated.
func (m *CertMemo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.seen)
}

func (m *CertMemo) addStats(s *Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s.ChainHits += m.hits
	s.ChainMisses += m.misses
}

// ChainHash derives a deterministic identity for a certificate chain
// from its issuer and SAN set (the simulator's certificates are fully
// determined by both). The SANs are hashed order-independently, so
// reordered SAN lists of the same certificate collide as they should.
func ChainHash(issuer string, sans []string) uint64 {
	sorted := append([]string(nil), sans...)
	sort.Strings(sorted)
	h := fnvOffset
	h = fnvString(h, issuer)
	for _, s := range sorted {
		h = fnvString(h, "|")
		h = fnvString(h, s)
	}
	return h
}

// FNV-1a, inlined to keep the package dependency-free.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// --- nil-tolerant convenience surface over the three stores ---
// The protocol layers call these instead of reaching into the stores,
// so a disabled cache costs one nil check.

// LookupDNS consults the DNS cache for a Do53-resolved A-type answer
// at the current simulated time. Transport-aware call sites (DoH
// clients, the scenario matrix) should use LookupDNSVia: entries are
// keyed by resolver transport and never match across it.
func (c *Cache) LookupDNS(name string) (addrs []netip.Addr, negative, ok bool) {
	return c.LookupDNSVia(TransportDo53, name)
}

// LookupDNSVia consults the DNS cache for an A-type answer resolved
// over the given transport at the current simulated time.
func (c *Cache) LookupDNSVia(t DNSTransport, name string) (addrs []netip.Addr, negative, ok bool) {
	if c == nil {
		return nil, false, false
	}
	return c.DNS.GetVia(t, name, 1, c.clock.NowMs())
}

// PutDNS stores a positive Do53-resolved A answer under the
// authority's TTL. A zero TTL means uncacheable and stores nothing;
// sources that carry no TTL at all (HAR replays) should pass
// DefaultTTL().
func (c *Cache) PutDNS(name string, addrs []netip.Addr, ttlSeconds uint32) {
	c.PutDNSVia(TransportDo53, name, addrs, ttlSeconds)
}

// PutDNSVia stores a positive A answer under its resolver transport
// and the authority's TTL.
func (c *Cache) PutDNSVia(t DNSTransport, name string, addrs []netip.Addr, ttlSeconds uint32) {
	if c == nil {
		return
	}
	c.DNS.PutVia(t, name, 1, addrs, ttlSeconds, c.clock.NowMs())
}

// DefaultTTL returns the configured positive TTL for answer sources
// that carry none.
func (c *Cache) DefaultTTL() uint32 {
	if c == nil {
		return 0
	}
	return uint32(c.opts.DefaultTTLSeconds)
}

// PutNegativeDNS stores a failed Do53-resolved A lookup under the
// negative TTL.
func (c *Cache) PutNegativeDNS(name string) {
	c.PutNegativeDNSVia(TransportDo53, name)
}

// PutNegativeDNSVia stores a failed A lookup under its resolver
// transport and the negative TTL.
func (c *Cache) PutNegativeDNSVia(t DNSTransport, name string) {
	if c == nil {
		return
	}
	c.DNS.PutNegativeVia(t, name, 1, uint32(c.opts.NegativeTTLSeconds), c.clock.NowMs())
}

// RedeemTicket attempts TLS resumption for host under the legacy h2
// protocol key (ProtoWireH2). Protocol-aware call sites should use
// RedeemTicketProto.
func (c *Cache) RedeemTicket(host string) bool {
	return c.RedeemTicketProto(host, ProtoWireH2)
}

// RedeemTicketProto attempts TLS resumption for host with a ticket
// minted under the given wire protocol. Tickets never match across
// protocols: an h2 ticket cannot resume an h3 session.
func (c *Cache) RedeemTicketProto(host string, proto int) bool {
	if c == nil {
		return false
	}
	return c.Tickets.RedeemProto(host, proto, c.clock.NowMs())
}

// StoreTicket issues a session ticket covering the given SANs under
// the legacy h2 protocol key (ProtoWireH2). Protocol-aware call sites
// should use StoreTicketProto.
func (c *Cache) StoreTicket(sans []string) {
	c.StoreTicketProto(sans, ProtoWireH2)
}

// StoreTicketProto issues a session ticket covering the given SANs,
// keyed by the wire protocol that minted it.
func (c *Cache) StoreTicketProto(sans []string, proto int) {
	if c == nil {
		return
	}
	c.Tickets.StoreProto(sans, proto, c.clock.NowMs())
}

// RedeemToken reports whether a live address-validation token minted
// under the given wire protocol covers host (skipping the QUIC Retry
// round trip). Only h3 connections mint or redeem tokens.
func (c *Cache) RedeemToken(host string, proto int) bool {
	if c == nil {
		return false
	}
	return c.Tokens.Redeem(host, proto, c.clock.NowMs())
}

// StoreToken issues an address-validation token covering the given
// SANs, keyed by the wire protocol that minted it.
func (c *Cache) StoreToken(sans []string, proto int) {
	if c == nil {
		return
	}
	c.Tokens.Store(sans, proto, c.clock.NowMs())
}

// ValidateChain records a chain validation, reporting whether the memo
// made it free.
func (c *Cache) ValidateChain(issuer string, sans []string) (hit bool) {
	if c == nil {
		return false
	}
	return c.Chains.Validate(ChainHash(issuer, sans))
}
