package cache

import (
	"net/netip"
	"testing"
)

func mustAddrs(ss ...string) []netip.Addr {
	out := make([]netip.Addr, 0, len(ss))
	for _, s := range ss {
		out = append(out, netip.MustParseAddr(s))
	}
	return out
}

// A negative entry minted under one resolver transport must never
// answer a lookup under the other: a Do53 NXDOMAIN says nothing about
// the DoH resolver's view, and vice versa. This is the mid-sweep
// transport-toggle regression: one shared client cache, two resolver
// transports, no cross-contamination.
func TestNegativeEntriesAreTransportKeyed(t *testing.T) {
	c := New(Options{})

	c.PutNegativeDNSVia(TransportDo53, "missing.example.com")
	if _, neg, ok := c.LookupDNSVia(TransportDo53, "missing.example.com"); !ok || !neg {
		t.Fatalf("Do53 negative entry not served to Do53 lookup: ok=%v neg=%v", ok, neg)
	}
	if _, neg, ok := c.LookupDNSVia(TransportDoH, "missing.example.com"); ok || neg {
		t.Fatalf("Do53 NXDOMAIN served to a DoH lookup: ok=%v neg=%v", ok, neg)
	}

	c.PutNegativeDNSVia(TransportDoH, "gone.example.com")
	if _, neg, ok := c.LookupDNSVia(TransportDoH, "gone.example.com"); !ok || !neg {
		t.Fatalf("DoH negative entry not served to DoH lookup: ok=%v neg=%v", ok, neg)
	}
	if _, neg, ok := c.LookupDNSVia(TransportDo53, "gone.example.com"); ok || neg {
		t.Fatalf("DoH NXDOMAIN served to a Do53 lookup: ok=%v neg=%v", ok, neg)
	}
}

// Positive answers are transport-keyed too, and the two transports'
// entries for the same name coexist without clobbering each other.
func TestPositiveEntriesAreTransportKeyed(t *testing.T) {
	c := New(Options{})
	do53 := mustAddrs("192.0.2.1")
	doh := mustAddrs("198.51.100.7", "198.51.100.8")

	c.PutDNSVia(TransportDo53, "www.example.com", do53, 300)
	if _, _, ok := c.LookupDNSVia(TransportDoH, "www.example.com"); ok {
		t.Fatal("Do53 answer served to a DoH lookup")
	}
	c.PutDNSVia(TransportDoH, "www.example.com", doh, 300)

	got53, neg, ok := c.LookupDNSVia(TransportDo53, "www.example.com")
	if !ok || neg || len(got53) != 1 || got53[0] != do53[0] {
		t.Fatalf("Do53 lookup after DoH put: %v neg=%v ok=%v", got53, neg, ok)
	}
	gotDoH, neg, ok := c.LookupDNSVia(TransportDoH, "www.example.com")
	if !ok || neg || len(gotDoH) != 2 {
		t.Fatalf("DoH lookup: %v neg=%v ok=%v", gotDoH, neg, ok)
	}
}

// The legacy non-Via surface is exactly the Do53 key: existing call
// sites (the dns.Resolver, the browser without a transport option)
// keep their behaviour byte for byte.
func TestLegacyMethodsAreDo53Keyed(t *testing.T) {
	c := New(Options{})
	addrs := mustAddrs("203.0.113.9")
	c.PutDNS("a.example.com", addrs, 300)
	if got, _, ok := c.LookupDNSVia(TransportDo53, "a.example.com"); !ok || got[0] != addrs[0] {
		t.Fatalf("PutDNS did not land under the Do53 key: %v ok=%v", got, ok)
	}
	c.PutNegativeDNS("b.example.com")
	if _, neg, ok := c.LookupDNSVia(TransportDo53, "b.example.com"); !ok || !neg {
		t.Fatalf("PutNegativeDNS did not land under the Do53 key: neg=%v ok=%v", neg, ok)
	}
	if _, _, ok := c.LookupDNSVia(TransportDoH, "a.example.com"); ok {
		t.Fatal("legacy positive entry leaked into the DoH keyspace")
	}
}

// Both transports share the one LRU capacity bound — a client has one
// DNS cache — and eviction across the boundary stays deterministic.
func TestTransportsShareLRUCapacity(t *testing.T) {
	c := New(Options{DNSCapacity: 2})
	c.PutDNSVia(TransportDo53, "a.example.com", mustAddrs("192.0.2.1"), 300)
	c.PutDNSVia(TransportDoH, "a.example.com", mustAddrs("192.0.2.2"), 300)
	if n := c.DNS.Len(); n != 2 {
		t.Fatalf("two transports, one name: Len=%d, want 2 distinct entries", n)
	}
	// Inserting a third entry evicts the least recently used (the Do53
	// one), regardless of transport.
	c.PutDNSVia(TransportDo53, "b.example.com", mustAddrs("192.0.2.3"), 300)
	if _, _, ok := c.LookupDNSVia(TransportDo53, "a.example.com"); ok {
		t.Fatal("LRU entry survived past capacity")
	}
	if _, _, ok := c.LookupDNSVia(TransportDoH, "a.example.com"); !ok {
		t.Fatal("recently used DoH entry evicted out of order")
	}
}
