package cache

import "sync"

// TicketStore models TLS session-ticket resumption keyed by certificate
// coverage: a ticket is redeemable for any hostname the issuing
// connection's certificate covers, enabling resumption across hostnames
// (arXiv:1902.02531) exactly as coalescing reuses a connection across
// hostnames. Tickets expire after the configured lifetime and can be
// single-use; redemption scans tickets oldest-first, so the order of
// issuance fully determines which ticket serves a host and two runs
// with the same visit schedule redeem identically.
type TicketStore struct {
	mu         sync.Mutex
	lifetimeMs int64 // 0 disables the store
	singleUse  bool
	tickets    []ticket

	issued, hits, misses, expiredN int64
}

type ticket struct {
	sans      []string
	expiresMs int64
	proto     int // wire protocol the ticket was minted under
}

// Wire protocol keys for protocol-versioned warm state. A TLS session
// ticket (or an address-validation token) carries the protocol version
// of the session that minted it, and redemption requires an exact
// match: an h2 ticket must never produce a 0-RTT h3 resumption, and
// vice versa — the stores are logically separate per protocol even
// though one client holds them all. ProtoWireH2 is what the legacy
// (protocol-unaware) entry points use.
const (
	ProtoWireH1 = 1
	ProtoWireH2 = 2
	ProtoWireH3 = 3
)

func newTicketStore(lifetimeMs int64, singleUse bool) *TicketStore {
	return &TicketStore{lifetimeMs: lifetimeMs, singleUse: singleUse}
}

// Enabled reports whether tickets are issued at all (a zero lifetime
// disables resumption entirely).
func (t *TicketStore) Enabled() bool { return t.lifetimeMs > 0 }

// Store issues a session ticket under the legacy h2 protocol key.
//
// Deprecated: protocol-aware call sites should use StoreProto.
func (t *TicketStore) Store(sans []string, nowMs int64) {
	t.StoreProto(sans, ProtoWireH2, nowMs)
}

// StoreProto issues a session ticket for a connection whose certificate
// carries the given SANs, keyed by the wire protocol that minted it.
// Full and resumed handshakes both issue fresh tickets (the TLS 1.3
// NewSessionTicket flow).
func (t *TicketStore) StoreProto(sans []string, proto int, nowMs int64) {
	if !t.Enabled() || len(sans) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.issued++
	t.tickets = append(t.tickets, ticket{
		sans:      append([]string(nil), sans...),
		expiresMs: nowMs + t.lifetimeMs,
		proto:     proto,
	})
}

// Redeem attempts resumption under the legacy h2 protocol key.
//
// Deprecated: protocol-aware call sites should use RedeemProto.
func (t *TicketStore) Redeem(host string, nowMs int64) bool {
	return t.RedeemProto(host, ProtoWireH2, nowMs)
}

// RedeemProto consumes (or, for reusable tickets, touches) the oldest
// live ticket minted under the same wire protocol whose certificate
// coverage includes host, reporting whether a resumption handshake is
// possible. Tickets minted under a different protocol never match —
// the TLS session state of an h2 connection cannot resume an h3
// session. Expired tickets encountered during the scan are dropped.
// A ticket expiring exactly at nowMs is dead.
func (t *TicketStore) RedeemProto(host string, proto int, nowMs int64) bool {
	if !t.Enabled() {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.tickets[:0]
	hit := false
	for _, tk := range t.tickets {
		if nowMs >= tk.expiresMs {
			t.expiredN++
			continue
		}
		if !hit && tk.proto == proto && SANsCover(tk.sans, host) {
			hit = true
			if t.singleUse {
				continue // consumed
			}
		}
		kept = append(kept, tk)
	}
	t.tickets = kept
	if hit {
		t.hits++
	} else {
		t.misses++
	}
	return hit
}

// Len reports the live ticket count (expired tickets may linger until
// the next Redeem scan).
func (t *TicketStore) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.tickets)
}

func (t *TicketStore) addStats(s *Stats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s.TicketsIssued += t.issued
	s.TicketHits += t.hits
	s.TicketMisses += t.misses
	s.TicketsExpired += t.expiredN
}

// SANsCover reports whether a certificate SAN list covers host,
// honoring single-label wildcards (the same matching rule the browser
// pool applies before coalescing onto a connection).
func SANsCover(sans []string, host string) bool {
	for _, san := range sans {
		if san == host {
			return true
		}
		if len(san) > 2 && san[0] == '*' && san[1] == '.' {
			suffix := san[1:] // ".example.com"
			if len(host) > len(suffix) && host[len(host)-len(suffix):] == suffix {
				label := host[:len(host)-len(suffix)]
				if label != "" && !hasDot(label) {
					return true
				}
			}
		}
	}
	return false
}

func hasDot(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return true
		}
	}
	return false
}
