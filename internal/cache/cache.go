// Package cache is the warm-path state layer of the ORIGIN stack: a
// deterministic, simulated-clock-driven cache subsystem with three
// stores, modelling what a returning client keeps between page loads —
//
//   - a TTL-aware DNS answer cache (positive and negative entries,
//     per-name TTLs sourced from the authority, LRU capacity bound with
//     deterministic eviction order);
//   - a TLS session-resumption store whose tickets are keyed by
//     certificate coverage, enabling resumption across hostnames (any
//     host the issuing connection's certificate covers can redeem the
//     ticket, per arXiv:1902.02531), with ticket lifetime and
//     single-use options;
//   - a validated-certificate-chain memo keyed by chain hash, so
//     repeated validations of an already-seen chain count as cache hits
//     (the paper's "cert validations saved" metric).
//
// The design discipline mirrors the faults and obs layers: a nil
// *Cache is valid everywhere and means "off", so an uncached run takes
// no lock, draws no state, and leaves every output byte identical to a
// build without the layer. Time never comes from the wall clock — every
// expiry decision reads the cache's simulated Clock, which the driving
// experiment advances explicitly, so two runs with the same visit
// schedule are byte-identical. Entries expire at their deadline
// inclusive: a lookup at exactly the expiry instant is a miss.
package cache

import "sync"

// Clock is a simulated millisecond clock. It only moves when the
// driving experiment advances it, never from wall-clock time, so every
// expiry decision is reproducible.
type Clock struct {
	mu sync.Mutex
	ms int64
}

// NowMs returns the current simulated time in milliseconds.
func (c *Clock) NowMs() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ms
}

// AdvanceMs moves the clock forward by d milliseconds (negative values
// are ignored: simulated time never runs backwards).
func (c *Clock) AdvanceMs(d int64) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.ms += d
	c.mu.Unlock()
}

// SetMs sets the absolute simulated time (tests).
func (c *Clock) SetMs(ms int64) {
	c.mu.Lock()
	c.ms = ms
	c.mu.Unlock()
}

// Options configures a Cache.
type Options struct {
	// DNSCapacity bounds the DNS cache entry count; the least recently
	// used entry is evicted first. ≤ 0 selects DefaultDNSCapacity.
	DNSCapacity int
	// NegativeTTLSeconds is the lifetime of negative (failed-lookup)
	// DNS entries. ≤ 0 selects DefaultNegativeTTLSeconds.
	NegativeTTLSeconds int
	// DefaultTTLSeconds is the positive-entry TTL used when the answer
	// source carries none (HAR replays). ≤ 0 selects
	// DefaultDNSTTLSeconds.
	DefaultTTLSeconds int
	// TicketLifetimeSeconds bounds ticket validity. 0 (the zero value)
	// selects DefaultTicketLifetimeSeconds; TicketsDisabled (any
	// negative value) disables the resumption store entirely, so every
	// handshake is full.
	TicketLifetimeSeconds int
	// SingleUseTickets removes a ticket on redemption (TLS 1.3
	// anti-replay discipline); off, a ticket serves until it expires.
	SingleUseTickets bool
	// TokenLifetimeSeconds bounds QUIC address-validation token
	// validity. 0 selects DefaultTokenLifetimeSeconds; TicketsDisabled
	// (any negative value) disables the token store, so every h3
	// connection without 0-RTT pays the Retry round trip.
	TokenLifetimeSeconds int
	// RevisitIntervalMs is the simulated time between successive visits
	// in warm/cold sequences. ≤ 0 selects DefaultRevisitIntervalMs.
	RevisitIntervalMs int64
}

// Defaults for Options zero values.
const (
	DefaultDNSCapacity           = 4096
	DefaultNegativeTTLSeconds    = 60
	DefaultDNSTTLSeconds         = 300
	DefaultTicketLifetimeSeconds = 7200
	// DefaultTokenLifetimeSeconds is deliberately longer than the
	// ticket lifetime: address-validation tokens prove the client's
	// address, not a session, and servers hand them out with day-scale
	// validity in the shared-validation model.
	DefaultTokenLifetimeSeconds = 86_400
	DefaultRevisitIntervalMs    = 60_000
)

// TicketsDisabled, assigned to Options.TicketLifetimeSeconds, turns the
// resumption store off (useful to isolate the cert-memo contribution).
const TicketsDisabled = -1

// withDefaults returns o with zero values replaced by defaults.
func (o Options) withDefaults() Options {
	if o.DNSCapacity <= 0 {
		o.DNSCapacity = DefaultDNSCapacity
	}
	if o.NegativeTTLSeconds <= 0 {
		o.NegativeTTLSeconds = DefaultNegativeTTLSeconds
	}
	if o.DefaultTTLSeconds <= 0 {
		o.DefaultTTLSeconds = DefaultDNSTTLSeconds
	}
	if o.TicketLifetimeSeconds == 0 {
		o.TicketLifetimeSeconds = DefaultTicketLifetimeSeconds
	}
	if o.TokenLifetimeSeconds == 0 {
		o.TokenLifetimeSeconds = DefaultTokenLifetimeSeconds
	}
	if o.RevisitIntervalMs <= 0 {
		o.RevisitIntervalMs = DefaultRevisitIntervalMs
	}
	return o
}

// Cache bundles the three warm-path stores behind one clock. A nil
// *Cache disables everything; every method is nil-tolerant.
type Cache struct {
	opts  Options
	clock Clock

	DNS     *DNSCache
	Tickets *TicketStore
	Tokens  *TokenStore
	Chains  *CertMemo
}

// New returns a Cache with the given options (zero values select the
// documented defaults).
func New(opts Options) *Cache {
	opts = opts.withDefaults()
	c := &Cache{opts: opts}
	c.DNS = newDNSCache(opts.DNSCapacity)
	c.Tickets = newTicketStore(int64(opts.TicketLifetimeSeconds)*1000, opts.SingleUseTickets)
	c.Tokens = newTokenStore(int64(opts.TokenLifetimeSeconds) * 1000)
	c.Chains = newCertMemo()
	return c
}

// Enabled reports whether the cache layer is active.
func (c *Cache) Enabled() bool { return c != nil }

// Clock returns the cache's simulated clock (nil cache: a throwaway
// clock, so callers need not nil-check before advancing time).
func (c *Cache) Clock() *Clock {
	if c == nil {
		return &Clock{}
	}
	return &c.clock
}

// Opts returns the cache's effective options (zero value when nil).
func (c *Cache) Opts() Options {
	if c == nil {
		return Options{}
	}
	return c.opts
}

// Stats snapshots the hit/miss accounting across all three stores.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	var s Stats
	c.DNS.addStats(&s)
	c.Tickets.addStats(&s)
	c.Tokens.addStats(&s)
	c.Chains.addStats(&s)
	return s
}

// Stats is the cache subsystem's hit/miss accounting. It is a pure sum,
// so per-shard snapshots merge associatively and worker counts cannot
// change aggregate totals.
type Stats struct {
	DNSHits         int64
	DNSNegativeHits int64
	DNSMisses       int64
	DNSExpired      int64 // misses caused by an expired entry
	DNSEvictions    int64 // entries dropped by the LRU capacity bound

	TicketsIssued  int64
	TicketHits     int64
	TicketMisses   int64
	TicketsExpired int64

	TokensIssued  int64
	TokenHits     int64
	TokenMisses   int64
	TokensExpired int64

	ChainHits   int64 // validations skipped via the memo
	ChainMisses int64 // full validations performed and memoized
}

// Merge adds o into s.
func (s *Stats) Merge(o Stats) {
	s.DNSHits += o.DNSHits
	s.DNSNegativeHits += o.DNSNegativeHits
	s.DNSMisses += o.DNSMisses
	s.DNSExpired += o.DNSExpired
	s.DNSEvictions += o.DNSEvictions
	s.TicketsIssued += o.TicketsIssued
	s.TicketHits += o.TicketHits
	s.TicketMisses += o.TicketMisses
	s.TicketsExpired += o.TicketsExpired
	s.TokensIssued += o.TokensIssued
	s.TokenHits += o.TokenHits
	s.TokenMisses += o.TokenMisses
	s.TokensExpired += o.TokensExpired
	s.ChainHits += o.ChainHits
	s.ChainMisses += o.ChainMisses
}
