package cache

import "testing"

// An h2 session ticket must never produce an h3 resumption (and vice
// versa): tickets carry the wire protocol that minted them and
// redemption requires an exact match.
func TestTicketsDoNotCrossProtocols(t *testing.T) {
	sans := []string{"www.example.com", "*.example.com"}
	c := New(Options{})

	c.StoreTicketProto(sans, ProtoWireH2)
	if c.RedeemTicketProto("www.example.com", ProtoWireH3) {
		t.Fatal("h2 ticket redeemed under h3")
	}
	if c.RedeemTicketProto("www.example.com", ProtoWireH1) {
		t.Fatal("h2 ticket redeemed under h1")
	}
	if !c.RedeemTicketProto("www.example.com", ProtoWireH2) {
		t.Fatal("h2 ticket refused under h2")
	}

	c2 := New(Options{})
	c2.StoreTicketProto(sans, ProtoWireH3)
	if c2.RedeemTicketProto("static.example.com", ProtoWireH2) {
		t.Fatal("h3 ticket redeemed under h2")
	}
	if !c2.RedeemTicketProto("static.example.com", ProtoWireH3) {
		t.Fatal("h3 ticket refused under h3")
	}
}

// The legacy protocol-unaware entry points are exactly the h2 key, so
// pre-protocol callers and h2-aware callers share one store.
func TestLegacyTicketEntryPointsAreH2(t *testing.T) {
	c := New(Options{})
	c.StoreTicket([]string{"www.example.com"})
	if c.RedeemTicketProto("www.example.com", ProtoWireH3) {
		t.Fatal("legacy ticket redeemed under h3")
	}
	if !c.RedeemTicketProto("www.example.com", ProtoWireH2) {
		t.Fatal("legacy ticket refused under the h2 key")
	}
	c.StoreTicketProto([]string{"www.example.com"}, ProtoWireH2)
	if !c.RedeemTicket("www.example.com") {
		t.Fatal("h2-keyed ticket refused by the legacy entry point")
	}
}

// Address-validation tokens carry the same exact-match protocol key,
// are not consumed by redemption, and die exactly at expiry.
func TestTokenProtocolKeyReuseAndExpiry(t *testing.T) {
	sans := []string{"cdn.example.net"}
	c := New(Options{TokenLifetimeSeconds: 60})

	c.StoreToken(sans, ProtoWireH3)
	if c.RedeemToken("cdn.example.net", ProtoWireH2) {
		t.Fatal("h3 token redeemed under h2")
	}
	// Non-consuming: the same token serves repeated h3 connections.
	for i := 0; i < 3; i++ {
		if !c.RedeemToken("cdn.example.net", ProtoWireH3) {
			t.Fatalf("redemption %d: live h3 token refused", i)
		}
	}
	// One millisecond before expiry the token is live; at expiry it is
	// dead (a token expiring exactly at nowMs does not redeem).
	c.Clock().AdvanceMs(60_000 - 1)
	if !c.RedeemToken("cdn.example.net", ProtoWireH3) {
		t.Fatal("token dead 1ms before expiry")
	}
	c.Clock().AdvanceMs(1)
	if c.RedeemToken("cdn.example.net", ProtoWireH3) {
		t.Fatal("token redeemed at its exact expiry instant")
	}
}
