// Package netsim is the network cost model behind the synthetic dataset
// and the deployment simulator: a deterministic, seedable source of DNS
// lookup times, TCP and TLS handshake times, transfer times, and the
// client race behaviours (happy eyeballs, speculative connections) that
// the paper identifies as the source of the measured DNS-vs-TLS count
// gap (§4.2).
//
// All durations are in milliseconds, matching the HAR timing model.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"respectorigin/internal/obs"
)

// Params configures the latency model.
type Params struct {
	// RTTMs is the base client↔server round-trip time.
	RTTMs float64
	// JitterMs bounds the uniform jitter added to every phase.
	JitterMs float64
	// DNSMs is the base resolver latency for an uncached query.
	DNSMs float64
	// TLSRoundTrips is the handshake cost in RTTs (1 for TLS 1.3,
	// 2 for TLS 1.2).
	TLSRoundTrips float64
	// ServerThinkMs is the base time-to-first-byte at the server.
	ServerThinkMs float64
	// BandwidthKBps is the downstream bandwidth for transfer time.
	BandwidthKBps float64
	// CertVerifyMs is the client-side certificate validation cost added
	// to every fresh TLS handshake (the §4.2 cryptographic overhead).
	CertVerifyMs float64
	// ExtraCertVerifyPerSANMs grows validation cost with SAN count,
	// modelling the large-certificate concern of §6.5.
	ExtraCertVerifyPerSANMs float64

	// HappyEyeballsProb is the probability a fresh connection races a
	// second (IPv6/IPv4) connection, producing an extra DNS query.
	HappyEyeballsProb float64
	// SpeculativeProb is the probability the browser opens a
	// speculative extra connection to a host it expects to need.
	SpeculativeProb float64

	// LatencyScale multiplies every phase duration (jitter excluded);
	// values ≤ 0 mean 1. Degraded-network models (packet loss driving
	// retransmissions) set it above 1 via faults.InflationFactor.
	LatencyScale float64

	// LossRate is the packet-loss probability on the path, in [0, 1).
	// Loss drives retransmissions, so every phase duration is inflated
	// by 1/(1-LossRate) — the expected transmission count per segment.
	// The zero value leaves every duration (and every output byte)
	// identical to a loss-free build. Values outside [0, 1) are the
	// NaN/underflow hazard Validate rejects; scale() clamps them to
	// no-op so an unvalidated construction cannot poison durations.
	LossRate float64
}

// scale returns the effective latency multiplier.
func (p Params) scale() float64 {
	s := p.LatencyScale
	if s <= 0 {
		s = 1
	}
	if p.LossRate > 0 && p.LossRate < 1 {
		s *= 1 / (1 - p.LossRate)
	}
	return s
}

// CostScale exposes the effective latency multiplier (LatencyScale
// folded with loss inflation) for pure-arithmetic cost models that
// price setup phases without drawing from a Network's RNG stream.
func (p Params) CostScale() float64 { return p.scale() }

// Validate rejects parameter combinations that would produce NaN,
// infinite, or negative phase durations: a profile is only usable when
// every duration it prices is finite and non-negative and its transfer
// model is actually on. Legacy call sites that deliberately run with
// the transfer model off (BandwidthKBps <= 0 means "no transfer time")
// construct via New, which stays lenient; profile construction and the
// scenario matrix go through Validate/NewChecked.
func (p Params) Validate() error {
	check := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("netsim: %s is not finite (%v)", name, v)
		}
		if v < 0 {
			return fmt.Errorf("netsim: %s is negative (%v)", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"RTTMs", p.RTTMs},
		{"JitterMs", p.JitterMs},
		{"DNSMs", p.DNSMs},
		{"TLSRoundTrips", p.TLSRoundTrips},
		{"ServerThinkMs", p.ServerThinkMs},
		{"CertVerifyMs", p.CertVerifyMs},
		{"ExtraCertVerifyPerSANMs", p.ExtraCertVerifyPerSANMs},
		{"HappyEyeballsProb", p.HappyEyeballsProb},
		{"SpeculativeProb", p.SpeculativeProb},
	} {
		if err := check(f.name, f.v); err != nil {
			return err
		}
	}
	if math.IsNaN(p.BandwidthKBps) || math.IsInf(p.BandwidthKBps, 0) || p.BandwidthKBps <= 0 {
		return fmt.Errorf("netsim: BandwidthKBps must be positive and finite, got %v (zero/negative bandwidth would underflow transfer times)", p.BandwidthKBps)
	}
	if math.IsNaN(p.LossRate) || p.LossRate < 0 || p.LossRate >= 1 {
		return fmt.Errorf("netsim: LossRate must be in [0, 1), got %v (loss >= 1 makes retransmission inflation infinite)", p.LossRate)
	}
	if math.IsNaN(p.LatencyScale) || math.IsInf(p.LatencyScale, 0) {
		return fmt.Errorf("netsim: LatencyScale is not finite (%v)", p.LatencyScale)
	}
	return nil
}

// DefaultParams model the paper's median crawl conditions, calibrated
// against its Table 1 (median PLT 5,746 ms, median 14 DNS / 16 TLS
// events per page): a 90 ms global-median RTT (the crawl exits through
// one vantage point to servers worldwide), a TLS 1.2-era handshake mix
// of 2 round trips, a 110 ms uncached resolver path, and 50 Mbit/s
// (6,250 KB/s) downstream. They are deliberately not a TLS 1.3 LAN
// profile; the EXPERIMENTS.md §3 calibration rows depend on them.
func DefaultParams() Params {
	return Params{
		RTTMs:                   90,
		JitterMs:                8,
		DNSMs:                   110,
		TLSRoundTrips:           2,
		ServerThinkMs:           25,
		BandwidthKBps:           6250,
		CertVerifyMs:            5,
		ExtraCertVerifyPerSANMs: 0.01,
		HappyEyeballsProb:       0.10,
		SpeculativeProb:         0.35,
	}
}

// Network generates phase durations. It is safe for concurrent use.
//
// Stream contract: every phase method (DNSTime, ConnectTime, TLSTime,
// WaitTime, TransferTime) consumes exactly one jitter draw per call
// when JitterMs > 0, and none when JitterMs <= 0 — independent of any
// other parameter. Toggling BandwidthKBps (or any other knob) therefore
// never shifts the seeded stream consumed by later phases, so runs that
// differ only in such a knob stay comparable draw for draw. RaceEffects
// consumes two draws per call.
//
// Locking contract: no phase method holds the internal mutex while
// calling into the installed recorder, so a recorder may safely call
// back into the Network (e.g. to draw auxiliary randomness) without
// deadlocking.
type Network struct {
	P Params

	mu  sync.Mutex
	rng *rand.Rand
	rec obs.Recorder
}

// SetRecorder installs an observability recorder: every generated phase
// duration is also recorded into a latency histogram ("netsim.dns_ms",
// "netsim.connect_ms", "netsim.tls_ms", "netsim.wait_ms",
// "netsim.transfer_ms"). A nil recorder (the default) disables
// instrumentation; the RNG stream is never touched either way.
func (n *Network) SetRecorder(rec obs.Recorder) {
	n.mu.Lock()
	n.rec = rec
	n.mu.Unlock()
}

// New returns a deterministic network for the given seed. It accepts
// any parameters for compatibility (BandwidthKBps <= 0 means "transfer
// model off"); callers building named profiles should prefer NewChecked.
func New(p Params, seed int64) *Network {
	return &Network{P: p, rng: rand.New(rand.NewSource(seed))}
}

// NewChecked validates p and returns a deterministic network for the
// given seed, rejecting parameters that would price NaN, infinite, or
// negative durations (zero/negative bandwidth, loss >= 1, negatives).
func NewChecked(p Params, seed int64) (*Network, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return New(p, seed), nil
}

func (n *Network) jitter() float64 {
	if n.P.JitterMs <= 0 {
		return 0
	}
	return n.rng.Float64() * n.P.JitterMs
}

// DNSTime returns the duration of one DNS lookup.
func (n *Network) DNSTime() float64 {
	n.mu.Lock()
	d := n.P.DNSMs*n.P.scale() + n.jitter()
	rec := n.rec
	n.mu.Unlock()
	obs.Observe(rec, "netsim.dns_ms", d)
	return d
}

// ConnectTime returns the TCP handshake duration (one RTT).
func (n *Network) ConnectTime() float64 {
	n.mu.Lock()
	d := n.P.RTTMs*n.P.scale() + n.jitter()
	rec := n.rec
	n.mu.Unlock()
	obs.Observe(rec, "netsim.connect_ms", d)
	return d
}

// TLSTime returns the TLS handshake duration for a certificate chain
// with sanCount names spanning tlsRecords records. Chains above one TLS
// record cost an extra round trip (§6.5).
func (n *Network) TLSTime(sanCount, tlsRecords int) float64 {
	n.mu.Lock()
	rtts := n.P.TLSRoundTrips
	if tlsRecords > 1 {
		rtts += float64(tlsRecords - 1)
	}
	d := (rtts*n.P.RTTMs+n.P.CertVerifyMs+
		float64(sanCount)*n.P.ExtraCertVerifyPerSANMs)*n.P.scale() + n.jitter()
	rec := n.rec
	n.mu.Unlock()
	obs.Observe(rec, "netsim.tls_ms", d)
	return d
}

// QUICHandshakeTime returns the combined transport+cryptographic
// handshake duration for a QUIC connection establishment taking rtts
// round trips: 1 for a fresh or resumed 1-RTT handshake, 0 for 0-RTT,
// plus 1 when the server demands address validation via Retry. QUIC
// folds the transport and TLS handshakes into the same flights, so
// there is no separate ConnectTime and no TLSRoundTrips contribution.
// verifyChain adds the client-side certificate validation cost (full
// handshakes only; resumed and 0-RTT handshakes present no chain).
//
// Stream contract: exactly one jitter draw per call when JitterMs > 0,
// independent of rtts and verifyChain — an h3 run's draw count per
// fresh connection is one, exactly matching neither ConnectTime nor
// TLSTime but never varying with the handshake path, so toggling
// 0-RTT/token knobs cannot shift the seeded stream of later phases.
func (n *Network) QUICHandshakeTime(rtts float64, verifyChain bool, sanCount int) float64 {
	n.mu.Lock()
	d := rtts * n.P.RTTMs
	if verifyChain {
		d += n.P.CertVerifyMs + float64(sanCount)*n.P.ExtraCertVerifyPerSANMs
	}
	d = d*n.P.scale() + n.jitter()
	rec := n.rec
	n.mu.Unlock()
	obs.Observe(rec, "netsim.quic_handshake_ms", d)
	return d
}

// WaitTime returns time-to-first-byte after the request is sent.
func (n *Network) WaitTime() float64 {
	n.mu.Lock()
	d := (n.P.ServerThinkMs+n.P.RTTMs/2)*n.P.scale() + n.jitter()
	rec := n.rec
	n.mu.Unlock()
	obs.Observe(rec, "netsim.wait_ms", d)
	return d
}

// TransferTime returns the receive duration for a body of size bytes.
// With BandwidthKBps <= 0 the transfer model is off and the duration is
// zero, but the jitter draw is still consumed and the (zero) sample is
// still observed: skipping either would shift the seeded stream for
// every later phase and silently drop "netsim.transfer_ms" samples when
// the bandwidth knob is toggled.
func (n *Network) TransferTime(bytes int64) float64 {
	n.mu.Lock()
	j := n.jitter()
	d := 0.0
	if n.P.BandwidthKBps > 0 {
		d = float64(bytes)/n.P.BandwidthKBps*n.P.scale() + j/4
	}
	rec := n.rec
	n.mu.Unlock()
	obs.Observe(rec, "netsim.transfer_ms", d)
	return d
}

// RaceEffects reports the client race behaviours for one fresh
// connection: extraDNS counts duplicate queries from happy eyeballs,
// and speculative reports whether an extra speculative TLS connection
// is opened. These inflate measured DNS/TLS counts above the one-per-
// service ideal (§4.2).
func (n *Network) RaceEffects() (extraDNS int, speculative bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.rng.Float64() < n.P.HappyEyeballsProb {
		extraDNS++
	}
	speculative = n.rng.Float64() < n.P.SpeculativeProb
	return
}

// Float64 exposes the deterministic RNG stream for callers that need
// auxiliary randomness tied to the same seed.
func (n *Network) Float64() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Float64()
}

// Intn exposes the deterministic RNG stream.
func (n *Network) Intn(m int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Intn(m)
}

// Clock is a virtual millisecond clock for longitudinal simulations.
type Clock struct {
	mu sync.Mutex
	ms float64
}

// NowMs returns the current virtual time.
func (c *Clock) NowMs() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ms
}

// AdvanceMs moves the clock forward by d milliseconds.
func (c *Clock) AdvanceMs(d float64) {
	c.mu.Lock()
	c.ms += d
	c.mu.Unlock()
}
