package netsim

import "fmt"

// Profile is a named, validated network condition for the scenario
// matrix: a base Params set whose loss/latency values model one access
// technology. Profiles are constructed only through NewProfile (or the
// built-in constructors below), so an instantiated Profile always
// carries parameters Validate accepts — the matrix can price cells
// from it without re-checking for NaN/underflow hazards.
type Profile struct {
	Name   string
	Params Params
}

// NewProfile validates p and wraps it under name. This is the
// construction-time rejection the profile layer guarantees: a profile
// with zero/negative bandwidth or loss outside [0, 1) is an error, not
// a latent NaN in TransferTime.
func NewProfile(name string, p Params) (Profile, error) {
	if name == "" {
		return Profile{}, fmt.Errorf("netsim: profile name must be non-empty")
	}
	if err := p.Validate(); err != nil {
		return Profile{}, fmt.Errorf("profile %q: %w", name, err)
	}
	return Profile{Name: name, Params: p}, nil
}

// mustProfile backs the built-in constructors, whose literals are
// covered by tests; a panic here is a programming error, not input.
func mustProfile(name string, p Params) Profile {
	pr, err := NewProfile(name, p)
	if err != nil {
		panic(err)
	}
	return pr
}

// ProfileWired is the paper's median crawl condition (DefaultParams):
// 90 ms RTT, 50 Mbit/s downstream, lossless.
func ProfileWired() Profile { return mustProfile("wired", DefaultParams()) }

// Profile3G models a loaded 3G/HSPA path: high RTT, slow resolver,
// ~2 Mbit/s downstream, 2% residual loss.
func Profile3G() Profile {
	p := DefaultParams()
	p.RTTMs = 250
	p.JitterMs = 30
	p.DNSMs = 300
	p.BandwidthKBps = 250
	p.LossRate = 0.02
	return mustProfile("3g", p)
}

// Profile4G models LTE: moderate RTT, ~20 Mbit/s downstream, light
// residual loss.
func Profile4G() Profile {
	p := DefaultParams()
	p.RTTMs = 60
	p.JitterMs = 12
	p.DNSMs = 90
	p.BandwidthKBps = 2500
	p.LossRate = 0.005
	return mustProfile("4g", p)
}

// ProfileSatellite models a GEO satellite path: ~600 ms RTT dominates
// every handshake round trip, with decent bandwidth and bursty loss.
func ProfileSatellite() Profile {
	p := DefaultParams()
	p.RTTMs = 600
	p.JitterMs = 40
	p.DNSMs = 650
	p.BandwidthKBps = 1500
	p.LossRate = 0.01
	return mustProfile("satellite", p)
}

// Profiles returns the built-in profile set in matrix order.
func Profiles() []Profile {
	return []Profile{ProfileWired(), Profile4G(), Profile3G(), ProfileSatellite()}
}

// ProfileByName resolves a built-in profile by its name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("netsim: unknown profile %q (have wired, 4g, 3g, satellite)", name)
}

// LossGrid expands a base profile across loss rates, producing the
// loss-latency grid the matrix and the monotonicity property tests
// sweep. Each grid point revalidates, so a loss rate outside [0, 1)
// is rejected here rather than surfacing as an infinite duration.
func LossGrid(base Profile, lossRates []float64) ([]Profile, error) {
	out := make([]Profile, 0, len(lossRates))
	for _, l := range lossRates {
		p := base.Params
		p.LossRate = l
		pr, err := NewProfile(fmt.Sprintf("%s+loss%g", base.Name, l), p)
		if err != nil {
			return nil, err
		}
		out = append(out, pr)
	}
	return out, nil
}
