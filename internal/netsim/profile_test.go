package netsim

import (
	"math"
	"strings"
	"testing"
)

// Zero or negative bandwidth, loss outside [0, 1), and non-finite
// values must be rejected at construction with a clear error — never
// accepted to later produce NaN or underflowed transfer times.
func TestProfileConstructionRejectsBadParams(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
		want   string
	}{
		{"zero bandwidth", func(p *Params) { p.BandwidthKBps = 0 }, "BandwidthKBps"},
		{"negative bandwidth", func(p *Params) { p.BandwidthKBps = -100 }, "BandwidthKBps"},
		{"nan bandwidth", func(p *Params) { p.BandwidthKBps = math.NaN() }, "BandwidthKBps"},
		{"loss exactly one", func(p *Params) { p.LossRate = 1.0 }, "LossRate"},
		{"loss above one", func(p *Params) { p.LossRate = 1.5 }, "LossRate"},
		{"negative loss", func(p *Params) { p.LossRate = -0.1 }, "LossRate"},
		{"nan loss", func(p *Params) { p.LossRate = math.NaN() }, "LossRate"},
		{"negative rtt", func(p *Params) { p.RTTMs = -1 }, "RTTMs"},
		{"inf dns", func(p *Params) { p.DNSMs = math.Inf(1) }, "DNSMs"},
		{"nan scale", func(p *Params) { p.LatencyScale = math.NaN() }, "LatencyScale"},
	}
	for _, tc := range cases {
		p := DefaultParams()
		tc.mutate(&p)
		if _, err := NewProfile("bad", p); err == nil {
			t.Errorf("%s: NewProfile accepted invalid params", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.want)
		}
		if _, err := NewChecked(p, 1); err == nil {
			t.Errorf("%s: NewChecked accepted invalid params", tc.name)
		}
	}
	if _, err := NewProfile("", DefaultParams()); err == nil {
		t.Error("NewProfile accepted an empty name")
	}
}

func TestBuiltinProfilesValidate(t *testing.T) {
	ps := Profiles()
	if len(ps) < 3 {
		t.Fatalf("want at least 3 built-in profiles, got %d", len(ps))
	}
	for _, pr := range ps {
		if err := pr.Params.Validate(); err != nil {
			t.Errorf("built-in profile %q invalid: %v", pr.Name, err)
		}
		got, err := ProfileByName(pr.Name)
		if err != nil || got.Name != pr.Name {
			t.Errorf("ProfileByName(%q) = %+v, %v", pr.Name, got, err)
		}
	}
	if _, err := ProfileByName("5g"); err == nil {
		t.Error("ProfileByName accepted an unknown name")
	}
}

// Property: across the loss-latency grid of every built-in profile,
// TransferTime is finite, non-negative, and monotone — non-decreasing
// in body size at fixed loss, and non-decreasing in loss at fixed
// size (retransmissions can only slow a transfer down).
func TestTransferTimeMonotoneAcrossLossGrid(t *testing.T) {
	losses := []float64{0, 0.005, 0.01, 0.02, 0.05, 0.10, 0.25, 0.5, 0.9}
	sizes := []int64{0, 1, 512, 1 << 10, 64 << 10, 1 << 20, 64 << 20}
	for _, base := range Profiles() {
		grid, err := LossGrid(base, losses)
		if err != nil {
			t.Fatalf("%s: LossGrid: %v", base.Name, err)
		}
		// Jitter off isolates the deterministic component the property
		// speaks about; the jitter draw is additive noise on top.
		prevAtSize := make([]float64, len(sizes))
		for gi, pr := range grid {
			p := pr.Params
			p.JitterMs = 0
			n := New(p, 1)
			prev := -1.0
			for si, bytes := range sizes {
				d := n.TransferTime(bytes)
				if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
					t.Fatalf("%s bytes=%d: TransferTime not a finite non-negative duration: %v", pr.Name, bytes, d)
				}
				if d < prev {
					t.Errorf("%s: TransferTime(%d)=%v < TransferTime(previous size)=%v — not monotone in size", pr.Name, bytes, d, prev)
				}
				prev = d
				if gi > 0 && d < prevAtSize[si] {
					t.Errorf("%s bytes=%d: duration %v < %v at lower loss — not monotone in loss", pr.Name, bytes, d, prevAtSize[si])
				}
				prevAtSize[si] = d
			}
		}
	}
}

// The loss knob must obey the stream contract: it scales durations but
// never consumes extra RNG draws, so toggling it cannot shift the
// seeded stream of later phases.
func TestLossRateDoesNotShiftStream(t *testing.T) {
	base := DefaultParams()
	lossy := base
	lossy.LossRate = 0.25
	a, b := New(base, 7), New(lossy, 7)
	a.DNSTime()
	b.DNSTime()
	a.TransferTime(4096)
	b.TransferTime(4096)
	if av, bv := a.Float64(), b.Float64(); av != bv {
		t.Fatalf("loss knob shifted the RNG stream: %v vs %v", av, bv)
	}
	// And zero loss leaves durations byte-identical to the historical
	// model: scale() must be a pure pass-through.
	if s := base.CostScale(); s != 1 {
		t.Fatalf("lossless default CostScale = %v, want 1", s)
	}
	if s := lossy.CostScale(); math.Abs(s-1/(1-0.25)) > 1e-12 {
		t.Fatalf("CostScale(loss=0.25) = %v, want %v", s, 1/(1-0.25))
	}
}
