package netsim

import (
	"testing"
	"time"

	"respectorigin/internal/obs"
)

func TestDeterminism(t *testing.T) {
	a := New(DefaultParams(), 42)
	b := New(DefaultParams(), 42)
	for i := 0; i < 100; i++ {
		if a.DNSTime() != b.DNSTime() || a.TLSTime(3, 1) != b.TLSTime(3, 1) {
			t.Fatal("same seed diverged")
		}
	}
	c := New(DefaultParams(), 43)
	same := true
	for i := 0; i < 10; i++ {
		if a.DNSTime() != c.DNSTime() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestPhaseBounds(t *testing.T) {
	p := DefaultParams()
	n := New(p, 1)
	for i := 0; i < 1000; i++ {
		if d := n.DNSTime(); d < p.DNSMs || d > p.DNSMs+p.JitterMs {
			t.Fatalf("DNS time %v out of bounds", d)
		}
		if c := n.ConnectTime(); c < p.RTTMs || c > p.RTTMs+p.JitterMs {
			t.Fatalf("connect time %v out of bounds", c)
		}
		if w := n.WaitTime(); w < p.ServerThinkMs {
			t.Fatalf("wait time %v below think time", w)
		}
	}
}

func TestTLSTimeGrowsWithRecords(t *testing.T) {
	p := DefaultParams()
	p.JitterMs = 0
	n := New(p, 1)
	one := n.TLSTime(2, 1)
	three := n.TLSTime(2, 3)
	if three <= one {
		t.Errorf("3-record handshake (%v) not slower than 1-record (%v)", three, one)
	}
	if diff := three - one - 2*p.RTTMs; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("extra records cost %v, want %v", three-one, 2*p.RTTMs)
	}
}

func TestTLSTimeGrowsWithSANs(t *testing.T) {
	p := DefaultParams()
	p.JitterMs = 0
	n := New(p, 1)
	small := n.TLSTime(2, 1)
	big := n.TLSTime(2000, 1)
	if big <= small {
		t.Error("SAN count does not increase validation cost")
	}
}

func TestTransferTime(t *testing.T) {
	p := DefaultParams()
	p.JitterMs = 0
	n := New(p, 1)
	if got := n.TransferTime(6250); got != 1 {
		t.Errorf("6250 bytes at 6250 KB/s = %v ms, want 1", got)
	}
	p.BandwidthKBps = 0
	n2 := New(p, 1)
	if n2.TransferTime(100000) != 0 {
		t.Error("zero bandwidth should skip transfer model")
	}
}

func TestRaceEffectsFrequencies(t *testing.T) {
	p := DefaultParams()
	p.HappyEyeballsProb = 0.5
	p.SpeculativeProb = 0.25
	n := New(p, 99)
	he, spec := 0, 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		e, s := n.RaceEffects()
		he += e
		if s {
			spec++
		}
	}
	if f := float64(he) / trials; f < 0.45 || f > 0.55 {
		t.Errorf("happy eyeballs frequency %v, want ~0.5", f)
	}
	if f := float64(spec) / trials; f < 0.2 || f > 0.3 {
		t.Errorf("speculative frequency %v, want ~0.25", f)
	}
}

func TestRaceEffectsDisabled(t *testing.T) {
	p := DefaultParams()
	p.HappyEyeballsProb = 0
	p.SpeculativeProb = 0
	n := New(p, 1)
	for i := 0; i < 100; i++ {
		if e, s := n.RaceEffects(); e != 0 || s {
			t.Fatal("race effects fired with zero probabilities")
		}
	}
}

// reentrantRecorder calls back into the Network from Observe, the way a
// recorder that derives auxiliary randomness (or re-measures) would. If
// any phase method still held the Network mutex across the Observe
// call, this would self-deadlock.
type reentrantRecorder struct {
	net     *Network
	samples map[string]int
}

func (r *reentrantRecorder) Count(string, int64) {}
func (r *reentrantRecorder) Event(obs.Event)     {}
func (r *reentrantRecorder) Observe(hist string, ms float64) {
	r.samples[hist]++
	_ = r.net.Float64() // re-entrant: must not deadlock
}

func TestRecorderReentrancyNoDeadlock(t *testing.T) {
	n := New(DefaultParams(), 7)
	rec := &reentrantRecorder{net: n, samples: map[string]int{}}
	n.SetRecorder(rec)
	done := make(chan struct{})
	go func() {
		defer close(done)
		n.DNSTime()
		n.ConnectTime()
		n.TLSTime(3, 2)
		n.WaitTime()
		n.TransferTime(5000)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("phase method deadlocked: recorder called back into Network while the mutex was held")
	}
	for _, h := range []string{"netsim.dns_ms", "netsim.connect_ms", "netsim.tls_ms", "netsim.wait_ms", "netsim.transfer_ms"} {
		if rec.samples[h] != 1 {
			t.Errorf("%s observed %d times, want 1", h, rec.samples[h])
		}
	}
}

// TestTransferStreamInvariance pins the stream contract: toggling
// BandwidthKBps must not shift the seeded jitter stream consumed by
// later phases. Before the fix, a zero-bandwidth TransferTime returned
// early without consuming its draw, desynchronizing every subsequent
// phase from an otherwise-identical run.
func TestTransferStreamInvariance(t *testing.T) {
	pa := DefaultParams()
	pb := DefaultParams()
	pb.BandwidthKBps = 0
	a := New(pa, 42)
	b := New(pb, 42)
	for i := 0; i < 50; i++ {
		a.TransferTime(10000)
		if got := b.TransferTime(10000); got != 0 {
			t.Fatalf("zero-bandwidth transfer = %v, want 0", got)
		}
		if da, db := a.DNSTime(), b.DNSTime(); da != db {
			t.Fatalf("iteration %d: DNS draws diverged after transfer (%v vs %v): bandwidth toggle shifted the stream", i, da, db)
		}
	}
}

// TestTransferObservedWhenBandwidthOff pins the other half of the bug:
// zero-bandwidth transfers must still land in the transfer histogram
// rather than silently dropping samples.
func TestTransferObservedWhenBandwidthOff(t *testing.T) {
	p := DefaultParams()
	p.BandwidthKBps = 0
	n := New(p, 1)
	m := obs.NewMetrics()
	n.SetRecorder(m)
	for i := 0; i < 10; i++ {
		n.TransferTime(12345)
	}
	s := m.HistSummary("netsim.transfer_ms")
	if s.N != 10 {
		t.Fatalf("netsim.transfer_ms has %d samples, want 10 (zero-bandwidth transfers dropped)", s.N)
	}
	if s.Max != 0 {
		t.Errorf("zero-bandwidth transfer samples should be 0, max = %v", s.Max)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.NowMs() != 0 {
		t.Error("clock not zeroed")
	}
	c.AdvanceMs(1500)
	c.AdvanceMs(500)
	if c.NowMs() != 2000 {
		t.Errorf("clock = %v", c.NowMs())
	}
}
