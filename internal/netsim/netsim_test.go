package netsim

import (
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(DefaultParams(), 42)
	b := New(DefaultParams(), 42)
	for i := 0; i < 100; i++ {
		if a.DNSTime() != b.DNSTime() || a.TLSTime(3, 1) != b.TLSTime(3, 1) {
			t.Fatal("same seed diverged")
		}
	}
	c := New(DefaultParams(), 43)
	same := true
	for i := 0; i < 10; i++ {
		if a.DNSTime() != c.DNSTime() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestPhaseBounds(t *testing.T) {
	p := DefaultParams()
	n := New(p, 1)
	for i := 0; i < 1000; i++ {
		if d := n.DNSTime(); d < p.DNSMs || d > p.DNSMs+p.JitterMs {
			t.Fatalf("DNS time %v out of bounds", d)
		}
		if c := n.ConnectTime(); c < p.RTTMs || c > p.RTTMs+p.JitterMs {
			t.Fatalf("connect time %v out of bounds", c)
		}
		if w := n.WaitTime(); w < p.ServerThinkMs {
			t.Fatalf("wait time %v below think time", w)
		}
	}
}

func TestTLSTimeGrowsWithRecords(t *testing.T) {
	p := DefaultParams()
	p.JitterMs = 0
	n := New(p, 1)
	one := n.TLSTime(2, 1)
	three := n.TLSTime(2, 3)
	if three <= one {
		t.Errorf("3-record handshake (%v) not slower than 1-record (%v)", three, one)
	}
	if diff := three - one - 2*p.RTTMs; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("extra records cost %v, want %v", three-one, 2*p.RTTMs)
	}
}

func TestTLSTimeGrowsWithSANs(t *testing.T) {
	p := DefaultParams()
	p.JitterMs = 0
	n := New(p, 1)
	small := n.TLSTime(2, 1)
	big := n.TLSTime(2000, 1)
	if big <= small {
		t.Error("SAN count does not increase validation cost")
	}
}

func TestTransferTime(t *testing.T) {
	p := DefaultParams()
	p.JitterMs = 0
	n := New(p, 1)
	if got := n.TransferTime(6250); got != 1 {
		t.Errorf("6250 bytes at 6250 KB/s = %v ms, want 1", got)
	}
	p.BandwidthKBps = 0
	n2 := New(p, 1)
	if n2.TransferTime(100000) != 0 {
		t.Error("zero bandwidth should skip transfer model")
	}
}

func TestRaceEffectsFrequencies(t *testing.T) {
	p := DefaultParams()
	p.HappyEyeballsProb = 0.5
	p.SpeculativeProb = 0.25
	n := New(p, 99)
	he, spec := 0, 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		e, s := n.RaceEffects()
		he += e
		if s {
			spec++
		}
	}
	if f := float64(he) / trials; f < 0.45 || f > 0.55 {
		t.Errorf("happy eyeballs frequency %v, want ~0.5", f)
	}
	if f := float64(spec) / trials; f < 0.2 || f > 0.3 {
		t.Errorf("speculative frequency %v, want ~0.25", f)
	}
}

func TestRaceEffectsDisabled(t *testing.T) {
	p := DefaultParams()
	p.HappyEyeballsProb = 0
	p.SpeculativeProb = 0
	n := New(p, 1)
	for i := 0; i < 100; i++ {
		if e, s := n.RaceEffects(); e != 0 || s {
			t.Fatal("race effects fired with zero probabilities")
		}
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.NowMs() != 0 {
		t.Error("clock not zeroed")
	}
	c.AdvanceMs(1500)
	c.AdvanceMs(500)
	if c.NowMs() != 2000 {
		t.Errorf("clock = %v", c.NowMs())
	}
}
