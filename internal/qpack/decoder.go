package qpack

import "respectorigin/internal/hpack"

// Decoder reads encoded field sections in the static-only profile.
// The zero value is ready to use; a Decoder may be reused across
// sections and is not safe for concurrent use.
type Decoder struct {
	// MaxStringLength bounds a single decoded name or value; zero
	// applies DefaultMaxStringLength rather than no bound.
	MaxStringLength uint64

	scratch []byte // reused Huffman decode buffer
}

// DecodeFieldSection decodes one complete encoded field section.
// Sections requiring a dynamic table — a nonzero Required Insert
// Count, an indexed or name reference with T=0, or any post-base
// representation — are rejected with ErrDynamicUnsupported: this
// decoder advertises zero table capacity, so a compliant peer never
// sends them.
func (d *Decoder) DecodeFieldSection(buf []byte) ([]hpack.HeaderField, error) {
	// Section prefix: Encoded Required Insert Count, then Base.
	ric, buf, err := readVarInt(buf, 8)
	if err != nil {
		return nil, err
	}
	if ric != 0 {
		return nil, ErrDynamicUnsupported
	}
	// With RIC 0 the Base field must still parse; its value is
	// irrelevant because no representation may reference the dynamic
	// table below.
	if _, buf, err = readVarInt(buf, 7); err != nil {
		return nil, err
	}
	var fields []hpack.HeaderField
	for len(buf) > 0 {
		b := buf[0]
		switch {
		case b&0x80 != 0: // indexed field line
			if b&0x40 == 0 {
				return nil, ErrDynamicUnsupported // T=0: dynamic table
			}
			var idx uint64
			if idx, buf, err = readVarInt(buf, 6); err != nil {
				return nil, err
			}
			f, ok := StaticEntry(int(idx))
			if !ok {
				return nil, ErrInvalidIndex
			}
			fields = append(fields, f)
		case b&0x40 != 0: // literal with name reference
			if b&0x10 == 0 {
				return nil, ErrDynamicUnsupported // T=0: dynamic table
			}
			sensitive := b&0x20 != 0
			var idx uint64
			if idx, buf, err = readVarInt(buf, 4); err != nil {
				return nil, err
			}
			f, ok := StaticEntry(int(idx))
			if !ok {
				return nil, ErrInvalidIndex
			}
			var value string
			if value, buf, d.scratch, err = readStringN(buf, 7, d.MaxStringLength, d.scratch); err != nil {
				return nil, err
			}
			fields = append(fields, hpack.HeaderField{Name: f.Name, Value: value, Sensitive: sensitive})
		case b&0x20 != 0: // literal with literal name
			sensitive := b&0x10 != 0
			var name, value string
			if name, buf, d.scratch, err = readStringN(buf, 3, d.MaxStringLength, d.scratch); err != nil {
				return nil, err
			}
			if value, buf, d.scratch, err = readStringN(buf, 7, d.MaxStringLength, d.scratch); err != nil {
				return nil, err
			}
			fields = append(fields, hpack.HeaderField{Name: name, Value: value, Sensitive: sensitive})
		default:
			// 0001: indexed with post-base index; 0000: literal with
			// post-base name reference — both dynamic-table features.
			return nil, ErrDynamicUnsupported
		}
	}
	return fields, nil
}
