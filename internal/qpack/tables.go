package qpack

import "respectorigin/internal/hpack"

// staticTable is the QPACK static table from RFC 9204 Appendix A,
// 0-indexed (unlike HPACK's 1-indexed table). Entry order is
// normative: indices appear on the wire.
var staticTable = []hpack.HeaderField{
	{Name: ":authority"},
	{Name: ":path", Value: "/"},
	{Name: "age", Value: "0"},
	{Name: "content-disposition"},
	{Name: "content-length", Value: "0"},
	{Name: "cookie"},
	{Name: "date"},
	{Name: "etag"},
	{Name: "if-modified-since"},
	{Name: "if-none-match"},
	{Name: "last-modified"},
	{Name: "link"},
	{Name: "location"},
	{Name: "referer"},
	{Name: "set-cookie"},
	{Name: ":method", Value: "CONNECT"},
	{Name: ":method", Value: "DELETE"},
	{Name: ":method", Value: "GET"},
	{Name: ":method", Value: "HEAD"},
	{Name: ":method", Value: "OPTIONS"},
	{Name: ":method", Value: "POST"},
	{Name: ":method", Value: "PUT"},
	{Name: ":scheme", Value: "http"},
	{Name: ":scheme", Value: "https"},
	{Name: ":status", Value: "103"},
	{Name: ":status", Value: "200"},
	{Name: ":status", Value: "304"},
	{Name: ":status", Value: "404"},
	{Name: ":status", Value: "503"},
	{Name: "accept", Value: "*/*"},
	{Name: "accept", Value: "application/dns-message"},
	{Name: "accept-encoding", Value: "gzip, deflate, br"},
	{Name: "accept-ranges", Value: "bytes"},
	{Name: "access-control-allow-headers", Value: "cache-control"},
	{Name: "access-control-allow-headers", Value: "content-type"},
	{Name: "access-control-allow-origin", Value: "*"},
	{Name: "cache-control", Value: "max-age=0"},
	{Name: "cache-control", Value: "max-age=2592000"},
	{Name: "cache-control", Value: "max-age=604800"},
	{Name: "cache-control", Value: "no-cache"},
	{Name: "cache-control", Value: "no-store"},
	{Name: "cache-control", Value: "public, max-age=31536000"},
	{Name: "content-encoding", Value: "br"},
	{Name: "content-encoding", Value: "gzip"},
	{Name: "content-type", Value: "application/dns-message"},
	{Name: "content-type", Value: "application/javascript"},
	{Name: "content-type", Value: "application/json"},
	{Name: "content-type", Value: "application/x-www-form-urlencoded"},
	{Name: "content-type", Value: "image/gif"},
	{Name: "content-type", Value: "image/jpeg"},
	{Name: "content-type", Value: "image/png"},
	{Name: "content-type", Value: "text/css"},
	{Name: "content-type", Value: "text/html; charset=utf-8"},
	{Name: "content-type", Value: "text/plain"},
	{Name: "content-type", Value: "text/plain;charset=utf-8"},
	{Name: "range", Value: "bytes=0-"},
	{Name: "strict-transport-security", Value: "max-age=31536000"},
	{Name: "strict-transport-security", Value: "max-age=31536000; includesubdomains"},
	{Name: "strict-transport-security", Value: "max-age=31536000; includesubdomains; preload"},
	{Name: "vary", Value: "accept-encoding"},
	{Name: "vary", Value: "origin"},
	{Name: "x-content-type-options", Value: "nosniff"},
	{Name: "x-xss-protection", Value: "1; mode=block"},
	{Name: ":status", Value: "100"},
	{Name: ":status", Value: "204"},
	{Name: ":status", Value: "206"},
	{Name: ":status", Value: "302"},
	{Name: ":status", Value: "400"},
	{Name: ":status", Value: "403"},
	{Name: ":status", Value: "421"},
	{Name: ":status", Value: "425"},
	{Name: ":status", Value: "500"},
	{Name: "accept-language"},
	{Name: "access-control-allow-credentials", Value: "FALSE"},
	{Name: "access-control-allow-credentials", Value: "TRUE"},
	{Name: "access-control-allow-headers", Value: "*"},
	{Name: "access-control-allow-methods", Value: "get"},
	{Name: "access-control-allow-methods", Value: "get, post, options"},
	{Name: "access-control-allow-methods", Value: "options"},
	{Name: "access-control-expose-headers", Value: "content-length"},
	{Name: "access-control-request-headers", Value: "content-type"},
	{Name: "access-control-request-method", Value: "get"},
	{Name: "access-control-request-method", Value: "post"},
	{Name: "alt-svc", Value: "clear"},
	{Name: "authorization"},
	{Name: "content-security-policy", Value: "script-src 'none'; object-src 'none'; base-uri 'none'"},
	{Name: "early-data", Value: "1"},
	{Name: "expect-ct"},
	{Name: "forwarded"},
	{Name: "if-range"},
	{Name: "origin"},
	{Name: "purpose", Value: "prefetch"},
	{Name: "server"},
	{Name: "timing-allow-origin", Value: "*"},
	{Name: "upgrade-insecure-requests", Value: "1"},
	{Name: "user-agent"},
	{Name: "x-forwarded-for"},
	{Name: "x-frame-options", Value: "deny"},
	{Name: "x-frame-options", Value: "sameorigin"},
}

// StaticTableSize reports the static table's entry count (99).
func StaticTableSize() int { return len(staticTable) }

// StaticEntry returns static table entry i, or false when i is out of
// range.
func StaticEntry(i int) (hpack.HeaderField, bool) {
	if i < 0 || i >= len(staticTable) {
		return hpack.HeaderField{}, false
	}
	return staticTable[i], true
}

type nameValue struct{ name, value string }

// First-match lookup maps, built once: the encoder prefers the lowest
// index when a name (or a name/value pair) appears more than once, so
// encodings are canonical and reproducible.
var (
	staticPair = func() map[nameValue]int {
		m := make(map[nameValue]int, len(staticTable))
		for i, f := range staticTable {
			k := nameValue{f.Name, f.Value}
			if _, ok := m[k]; !ok {
				m[k] = i
			}
		}
		return m
	}()
	staticName = func() map[string]int {
		m := make(map[string]int, len(staticTable))
		for i, f := range staticTable {
			if _, ok := m[f.Name]; !ok {
				m[f.Name] = i
			}
		}
		return m
	}()
)
